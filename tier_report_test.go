package hitlist6

import (
	"bufio"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hitlist6/internal/analysis"
	"hitlist6/internal/pager"
)

// TestReportTierEquivalence holds the tiered corpus to the repo's
// exactness bar at the top of the stack: a study whose collector is
// rebuilt from the tier file — read back under a constraining RAM
// budget, and again nearly all-cold — must render the byte-identical
// Report(), and the figure folds must compute identically straight off
// the pager through the analysis.AddrSource seam, without
// materializing a collector at all.
//
// Fresh studies per leg because consecutive Report calls on one study
// legitimately differ (the backscan pool's round-robin state advances);
// the studies are seed-identical, so only the collector swap is under
// test.
func TestReportTierEquivalence(t *testing.T) {
	base := runStudy(t, 1)
	want, err := base.Report()
	if err != nil {
		t.Fatal(err)
	}
	wantSum := base.Collector.Checksum()

	path := filepath.Join(t.TempDir(), "corpus.tier")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := pager.WriteTier(base.Collector, bw); err == nil {
		err = bw.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	wantFig2a := analysis.ComputeFigure2a(base.Collector)
	legs := []struct {
		name   string
		budget int64 // 0 = unlimited; 1 byte = the one-chunk LRU floor
	}{
		{"resident", 0},
		{"budget", fi.Size() / 2},
		{"cold", 1},
	}
	for _, leg := range legs {
		leg := leg
		t.Run(leg.name, func(t *testing.T) {
			tc, err := pager.Open(path, pager.Options{RAMBudget: leg.budget})
			if err != nil {
				t.Fatal(err)
			}
			defer tc.Close()

			// The figure fold straight off the file, paging chunks as the
			// canonical walk reaches them.
			if got := analysis.ComputeFigure2a(tc); !reflect.DeepEqual(got, wantFig2a) {
				t.Fatalf("Figure 2a off the %s tier diverges: %+v vs %+v", leg.name, got, wantFig2a)
			}

			restored, err := tc.Restore()
			if err != nil {
				t.Fatal(err)
			}
			if restored.Checksum() != wantSum {
				t.Fatal("restored corpus checksum diverges from the study collector")
			}
			s := runStudy(t, 1)
			s.Collector = restored
			got, err := s.Report()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("Report() off the %s tier diverges from the resident study (%d vs %d bytes)",
					leg.name, len(got), len(want))
			}
		})
	}
}
