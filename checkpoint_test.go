package hitlist6

import (
	"io"

	"hitlist6/internal/ingest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// smallCheckpointConfig is a fast study shape for resume tests.
func smallCheckpointConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.02
	cfg.Days = 10
	cfg.SliceDay = 5
	cfg.HitlistRounds = 1
	cfg.BackscanDays = 2
	cfg.IngestShards = 4
	return cfg
}

// TestCollectPassiveResumeEquivalence is the study-level durability
// contract: interrupt a passive collection at a mid-run checkpoint,
// resume it in a fresh Study (fresh process, as far as the corpus is
// concerned), and every output of the pass — corpus, day slice, outage
// series, run stats — must be byte-identical to an uninterrupted run.
func TestCollectPassiveResumeEquivalence(t *testing.T) {
	baseline, err := NewStudy(smallCheckpointConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := baseline.CollectPassive(); err != nil {
		t.Fatal(err)
	}
	total := baseline.RunStats.Queries
	if total < 100 {
		t.Fatalf("study too small to interrupt meaningfully: %d queries", total)
	}

	// First run: checkpoint frequently; the last checkpoint lands
	// mid-replay (cadence does not divide the total), so the file left
	// behind is a genuine interruption point, not the final state.
	dir := t.TempDir()
	path := filepath.Join(dir, "study.ckpt")
	cfgA := smallCheckpointConfig()
	cfgA.CheckpointPath = path
	cfgA.CheckpointEvery = int(total/3) + 7
	runA, err := NewStudy(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	if err := runA.CollectPassive(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}

	// Second run, same config, same checkpoint path: must resume from
	// the mid-run checkpoint rather than replay from scratch, and land
	// on identical results.
	runB, err := NewStudy(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	if err := runB.CollectPassive(); err != nil {
		t.Fatal(err)
	}

	if runB.Collector.Checksum() != baseline.Collector.Checksum() {
		t.Errorf("resumed corpus differs from uninterrupted run")
	}
	if runB.DayCollector.Checksum() != baseline.DayCollector.Checksum() {
		t.Errorf("resumed day slice differs from uninterrupted run")
	}
	if runB.RunStats.Queries != baseline.RunStats.Queries ||
		runB.RunStats.UniqueClients != baseline.RunStats.UniqueClients {
		t.Errorf("resumed run stats differ: %+v vs %+v", runB.RunStats, baseline.RunStats)
	}

	sa, err := baseline.OutageSeries.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := runB.OutageSeries.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(sa) != string(sb) {
		t.Errorf("resumed outage series differs from uninterrupted run")
	}

	// And the analyses downstream of the resumed pass agree too.
	evA, err := baseline.DetectOutages(2 * baseline.Config.OutageBin)
	if err != nil {
		t.Fatal(err)
	}
	evB, err := runB.DetectOutages(2 * runB.Config.OutageBin)
	if err != nil {
		t.Fatal(err)
	}
	if len(evA) != len(evB) {
		t.Errorf("resumed outage detection found %d events, baseline %d", len(evB), len(evA))
	}
}

// TestCollectPassiveResumeRejectsMismatch: a checkpoint recorded under
// a different study configuration must be refused loudly.
func TestCollectPassiveResumeRejectsMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "study.ckpt")
	cfgA := smallCheckpointConfig()
	cfgA.Days = 6
	cfgA.SliceDay = 3
	cfgA.CheckpointPath = path
	cfgA.CheckpointEvery = 500
	runA, err := NewStudy(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	if err := runA.CollectPassive(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Skipf("run too small to checkpoint: %v", err)
	}

	cfgB := cfgA
	cfgB.Seed = cfgA.Seed + 1
	runB, err := NewStudy(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if err := runB.CollectPassive(); err == nil {
		t.Fatal("checkpoint from a different seed was accepted")
	}
}

// TestCollectPassiveResumeRejectsCorrupt: flipping one byte anywhere in
// the checkpoint file must make resume fail with an error (the study
// path is explicit; the daemon path is the one that falls back).
func TestCollectPassiveResumeRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "study.ckpt")
	cfg := smallCheckpointConfig()
	cfg.Days = 6
	cfg.SliceDay = 3
	cfg.CheckpointPath = path
	cfg.CheckpointEvery = 500
	runA, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := runA.CollectPassive(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Skipf("run too small to checkpoint: %v", err)
	}
	for _, off := range []int{0, 11, len(raw) / 3, len(raw) / 2, len(raw) - 1} {
		mutated := append([]byte(nil), raw...)
		mutated[off] ^= 0x08
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		runB, err := NewStudy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := runB.CollectPassive(); err == nil {
			t.Fatalf("corrupt checkpoint (byte %d flipped) resumed silently", off)
		}
	}
	// Truncations too.
	for _, cut := range []int{1, 12, 60, len(raw) / 2, len(raw) - 1} {
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		runB, err := NewStudy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := runB.CollectPassive(); err == nil {
			t.Fatalf("checkpoint truncated at %d resumed silently", cut)
		}
	}
}

// TestStudyCheckpointRoundTrip exercises the codec directly: meta and
// series survive a write/read cycle.
func TestStudyCheckpointRoundTrip(t *testing.T) {
	cfg := smallCheckpointConfig()
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CollectPassive(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rt.ckpt")
	bin := cfg.OutageBin
	if bin == 0 {
		bin = time.Hour
	}
	// Serialize the finished state by hand (the production path writes
	// mid-run; the codec is the same).
	_, err = ingest.AtomicWriteFile(path, func(w io.Writer) error {
		return writeStudyCheckpoint(w, metaFor(s.Config, bin, s.RunStats.Queries),
			s.OutageSeries, s.Collector, s.DayCollector)
	})
	if err != nil {
		t.Fatal(err)
	}
	ck, err := readCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.meta.events != s.RunStats.Queries || ck.meta.seed != cfg.Seed {
		t.Fatalf("meta drifted: %+v", ck.meta)
	}
	if ck.corpus.Checksum() != s.Collector.Checksum() {
		t.Fatal("corpus drifted through the checkpoint codec")
	}
	if ck.day.Checksum() != s.DayCollector.Checksum() {
		t.Fatal("day slice drifted through the checkpoint codec")
	}
	wantSeries, _ := s.OutageSeries.MarshalBinary()
	gotSeries, _ := ck.series.MarshalBinary()
	if string(wantSeries) != string(gotSeries) {
		t.Fatal("series drifted through the checkpoint codec")
	}
}
