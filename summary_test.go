package hitlist6

import (
	"encoding/json"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := runStudy(t, 11)
	sm, err := s.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if sm.UniqueAddrs != s.Collector.NumAddrs() {
		t.Errorf("unique addrs: %d", sm.UniqueAddrs)
	}
	if sm.Table1.NTPAddrs != s.NTP.Len() {
		t.Errorf("ntp addrs: %d", sm.Table1.NTPAddrs)
	}
	if sm.Entropy.NTPMedian <= sm.Entropy.CAIDAMedian {
		t.Error("entropy ordering lost in summary")
	}
	var shareSum float64
	for _, v := range sm.Tracking.ClassShares {
		shareSum += v
	}
	if sm.Tracking.Trackable > 0 && (shareSum < 0.99 || shareSum > 1.01) {
		t.Errorf("class shares sum: %v", shareSum)
	}

	raw, err := sm.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if back.Table1.NTPAddrs != sm.Table1.NTPAddrs {
		t.Error("JSON round trip lost data")
	}
}

func TestSummarizeRequiresRun(t *testing.T) {
	s, err := NewStudy(testConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Summarize(); err == nil {
		t.Error("Summarize before Run should fail")
	}
}
