package hitlist6

import (
	"strings"
	"testing"

	"hitlist6/internal/fold"
	"hitlist6/internal/telemetry"
)

// TestStudyTelemetry runs an instrumented study end to end and checks
// the two invariants of Config.Telemetry: the registry fills with the
// ingest, fold and report families as a well-formed exposition, and
// instrumentation never perturbs results — the report is byte-identical
// to an uninstrumented run of the same seed.
func TestStudyTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("full study run")
	}
	plain := runStudy(t, 7)
	plainReport, err := plain.Report()
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	cfg := testConfig(7)
	cfg.Telemetry = reg
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// NewStudy installed the process-wide fold hook; remove it so later
	// tests run unobserved.
	defer fold.SetTiming(nil)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	report, err := s.Report()
	if err != nil {
		t.Fatal(err)
	}
	if report != plainReport {
		t.Error("instrumented report differs from uninstrumented run")
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if problems := telemetry.LintExposition(text); len(problems) > 0 {
		t.Errorf("exposition not well-formed: %v", problems)
	}
	for _, want := range []string{
		// The pipeline's counter block and per-shard families.
		"ingest_events_processed_total",
		`ingest_batch_seconds_bucket{shard="0",le=`,
		`ingest_stage_seconds_bucket{stage="dayslice",le=`,
		`ingest_stage_seconds_bucket{stage="outage",le=`,
		// The analysis engine's dispatch timing.
		"fold_dispatch_seconds_count",
		// Report sections and shared-input builds, by name.
		`report_section_seconds_count{section="table1"}`,
		`report_section_seconds_count{section="geolocation"}`,
		`report_section_seconds_count{section="input:tracking"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Every report section plus every shared input ran exactly once.
	h := reg.Histogram("report_section_seconds",
		"Wall time of one report section render or shared-input build.",
		telemetry.DurationBuckets(), telemetry.L("section", "header"))
	if h.Count() != 1 {
		t.Errorf("header section observed %d times, want 1", h.Count())
	}
}
