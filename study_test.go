package hitlist6

import (
	"strings"
	"testing"
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/tracking"
)

// testConfig is a fast, small study for integration tests.
func testConfig(seed int64) Config {
	return Config{
		Seed:          seed,
		Scale:         0.05,
		Days:          45,
		SliceDay:      30,
		HitlistRounds: 2,
		BackscanDays:  2,
	}
}

func runStudy(t testing.TB, seed int64) *Study {
	t.Helper()
	s, err := NewStudy(testConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewStudyValidation(t *testing.T) {
	cfg := testConfig(1)
	cfg.Days = 0
	if _, err := NewStudy(cfg); err == nil {
		t.Error("Days=0 should fail")
	}
	cfg = testConfig(1)
	cfg.IngestShards = -1
	if _, err := NewStudy(cfg); err == nil {
		t.Error("IngestShards=-1 should fail")
	}
	cfg = testConfig(1)
	cfg.OutageBin = -time.Hour
	if _, err := NewStudy(cfg); err == nil {
		t.Error("negative OutageBin should fail")
	}
	cfg = testConfig(1)
	cfg.OutageBin = 1500 * time.Millisecond
	if _, err := NewStudy(cfg); err == nil {
		t.Error("sub-second OutageBin should fail")
	}
	// Out-of-range slice day is clamped, not an error.
	cfg = testConfig(1)
	cfg.SliceDay = 999
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Config.SliceDay != cfg.Days/2 {
		t.Errorf("slice day clamp: %d", s.Config.SliceDay)
	}
}

func TestExperimentsRequireRun(t *testing.T) {
	s, err := NewStudy(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Table1(); err == nil {
		t.Error("Table1 before Run should fail")
	}
	if _, err := s.Figure2a(); err == nil {
		t.Error("Figure2a before Run should fail")
	}
	if _, err := s.Tracking(); err == nil {
		t.Error("Tracking before Run should fail")
	}
	if _, err := s.DetectOutages(time.Hour); err == nil {
		t.Error("DetectOutages before Run should fail")
	}
	if _, err := s.Report(); err == nil {
		t.Error("Report before Run should fail")
	}
	if _, err := s.ReleaseNTP(); err == nil {
		t.Error("ReleaseNTP before Run should fail")
	}
}

// TestStudyShapeMatchesPaper is the headline integration test: the
// qualitative relationships the paper reports must hold in the
// reproduction.
func TestStudyShapeMatchesPaper(t *testing.T) {
	s := runStudy(t, 3)

	t1, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	// The NTP corpus dwarfs both active datasets (paper: 370x and 681x;
	// we only require a clear gap).
	if t1.NTP.Addrs < 5*t1.Hitlist.Addrs {
		t.Errorf("NTP (%d) should dwarf Hitlist (%d)", t1.NTP.Addrs, t1.Hitlist.Addrs)
	}
	if t1.NTP.Addrs < 5*t1.CAIDA.Addrs {
		t.Errorf("NTP (%d) should dwarf CAIDA (%d)", t1.NTP.Addrs, t1.CAIDA.Addrs)
	}
	// The overlaps are tiny relative to the NTP corpus (paper: 1.3%,
	// 0.02%).
	if frac := float64(t1.Hitlist.CommonAddrs) / float64(t1.NTP.Addrs); frac > 0.10 {
		t.Errorf("NTP∩Hitlist overlap too large: %.3f", frac)
	}
	// Address density per /48: NTP highest, CAIDA ~1 (paper: 1098 / 50 / 1).
	if t1.NTP.AvgPer48 <= t1.CAIDA.AvgPer48 {
		t.Errorf("density ordering: NTP %.1f vs CAIDA %.1f", t1.NTP.AvgPer48, t1.CAIDA.AvgPer48)
	}
	if t1.CAIDA.AvgPer48 > 3 {
		t.Errorf("CAIDA density should be ~1, got %.1f", t1.CAIDA.AvgPer48)
	}

	// Figure 1 ordering: NTP median entropy > Hitlist > CAIDA (~0).
	f1, err := s.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if !(f1.NTP.Median() > f1.Hitlist.Median()) {
		t.Errorf("entropy: NTP %.3f should exceed Hitlist %.3f",
			f1.NTP.Median(), f1.Hitlist.Median())
	}
	if f1.CAIDA.Median() > 0.3 {
		t.Errorf("CAIDA median entropy should be near zero, got %.3f", f1.CAIDA.Median())
	}
	if f1.NTP.Median() < 0.6 {
		t.Errorf("NTP median entropy should be high, got %.3f", f1.NTP.Median())
	}

	// Figure 2a: most addresses observed once; long tail exists.
	f2a, err := s.Figure2a()
	if err != nil {
		t.Fatal(err)
	}
	if f2a.ObservedOnce < 0.3 {
		t.Errorf("observed-once fraction %.2f implausibly low", f2a.ObservedOnce)
	}
	if f2a.WeekOrLonger <= 0 {
		t.Error("no week-long addresses at all")
	}
	if f2a.WeekOrLonger > 0.5 {
		t.Errorf("week+ fraction %.2f implausibly high", f2a.WeekOrLonger)
	}

	// Figure 2b: low-entropy IIDs persist longer than high-entropy ones.
	f2b, err := s.Figure2b()
	if err != nil {
		t.Fatal(err)
	}
	if low, high := f2b.WeekOrLonger[addr.LowEntropy], f2b.WeekOrLonger[addr.HighEntropy]; low <= high {
		t.Errorf("low-entropy IIDs should persist more: low %.3f vs high %.3f", low, high)
	}
}

func TestBackscanShape(t *testing.T) {
	s := runStudy(t, 4)
	bs, err := s.Backscan()
	if err != nil {
		t.Fatal(err)
	}
	if bs.ClientsProbed == 0 {
		t.Fatal("no clients probed")
	}
	// Paper: ~2/3 respond. Accept a broad band.
	if r := bs.ClientResponseRate(); r < 0.35 || r > 0.95 {
		t.Errorf("client response rate %.2f out of band", r)
	}
	// Paper: 3.5% random responses.
	if r := bs.RandomResponseRate(); r > 0.25 {
		t.Errorf("random response rate %.2f out of band", r)
	}
	hit, miss, random := Figure3(bs)
	if len(hit) == 0 || len(miss) == 0 {
		t.Fatalf("empty hit/miss series: %d/%d", len(hit), len(miss))
	}
	_ = random
}

func TestTrackingShape(t *testing.T) {
	s := runStudy(t, 5)
	tr, err := s.Tracking()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.MACs) == 0 {
		t.Fatal("no EUI-64 MACs observed")
	}
	// The unlisted share dominates (paper: 73.9%).
	if tr.UnlistedShare() < 0.4 {
		t.Errorf("unlisted share %.2f too low", tr.UnlistedShare())
	}
	// All five classes plus NotTrackable must be representable; at least
	// static and one mobility class should be populated.
	if tr.ClassCounts[tracking.MostlyStatic] == 0 {
		t.Error("no mostly-static MACs")
	}
	if tr.ClassCounts[tracking.UserMovement]+tr.ClassCounts[tracking.PrefixReassignment] == 0 {
		t.Error("no renumbering/movement MACs")
	}
	// Table 2's top row must be Unlisted.
	rows := tr.Table2()
	if len(rows) == 0 || rows[0].Manufacturer != "Unlisted" {
		t.Errorf("Table 2 top row: %+v", rows)
	}
}

func TestGeolocationShape(t *testing.T) {
	// Geolocation needs a larger EUI-64 CPE population than the other
	// shape tests: only pool-using CPE ever enter the passive corpus.
	cfg := testConfig(6)
	cfg.Scale = 0.2
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CollectPassive(); err != nil {
		t.Fatal(err)
	}
	g, err := s.Geolocation(2)
	if err != nil {
		t.Fatal(err)
	}
	if g.WiredMACs == 0 {
		t.Fatal("no wired MACs")
	}
	if len(g.Offsets) == 0 {
		t.Fatal("no offsets inferred")
	}
	if len(g.Located) == 0 {
		t.Fatal("nothing geolocated")
	}
	// Germany should lead (AVM CPE dominance, paper: 75%).
	top, topN := "", 0
	for cc, n := range g.Countries {
		if n > topN {
			top, topN = cc, n
		}
	}
	if top != "DE" {
		t.Errorf("top geolocated country %s (want DE): %v", top, g.Countries)
	}
}

func TestReportRendersAllSections(t *testing.T) {
	s := runStudy(t, 7)
	out, err := s.Report()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Table 1", "HyperLogLog", "Figure 1", "Figure 2a", "Figure 2b",
		"Section 4.2", "Figure 3", "Section 4.3", "Figure 4a", "Figure 4b",
		"Figure 5", "Section 5.1", "Table 2", "Section 5.2", "Figure 7",
		"Section 5.3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing section %q", want)
		}
	}
}

func TestReleaseNTP(t *testing.T) {
	s := runStudy(t, 8)
	rel, err := s.ReleaseNTP()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rel, "/48") {
		t.Error("release not /48 formatted")
	}
	// No full /64s or IIDs may leak: every non-comment line ends in /48.
	for _, line := range strings.Split(rel, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasSuffix(line, "/48") {
			t.Fatalf("leaky release line: %q", line)
		}
	}
}

func TestTopCountries(t *testing.T) {
	s := runStudy(t, 9)
	top, err := s.TopCountries(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 5 {
		t.Fatalf("got %d countries", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Count > top[i-1].Count {
			t.Error("not sorted")
		}
	}
	// The paper's top-5 (IN, CN, US, BR, ID) should be well represented.
	seen := make(map[string]bool)
	for _, c := range top {
		seen[c.Country] = true
	}
	hits := 0
	for _, cc := range []string{"IN", "CN", "US", "BR", "ID"} {
		if seen[cc] {
			hits++
		}
	}
	if hits < 3 {
		t.Errorf("paper's top countries underrepresented: %v", top)
	}
}

func TestStudyDeterminism(t *testing.T) {
	a := runStudy(t, 10)
	b := runStudy(t, 10)
	if a.NTP.Len() != b.NTP.Len() ||
		a.Hitlist.Dataset.Len() != b.Hitlist.Dataset.Len() ||
		a.CAIDA.Len() != b.CAIDA.Len() {
		t.Error("study not deterministic across runs")
	}
}
