// Package hitlist6 reproduces "IPv6 Hitlists at Scale: Be Careful What
// You Wish For" (Rye & Levin, SIGCOMM 2023) as a library: a passive
// NTP-Pool-based IPv6 address collection study over a simulated Internet,
// compared against active-measurement hitlists, with the paper's full
// privacy analysis (EUI-64 tracking and geolocation).
//
// The entry point is Study:
//
//	study, err := hitlist6.NewStudy(hitlist6.DefaultConfig())
//	if err != nil { ... }
//	if err := study.Run(); err != nil { ... }
//	fmt.Println(study.Table1().Render())
//
// Every experiment of the paper's evaluation is a method on Study; see
// EXPERIMENTS.md for the full index.
package hitlist6

import (
	"fmt"
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/analysis"
	"hitlist6/internal/collector"
	"hitlist6/internal/fold"
	"hitlist6/internal/geoloc"
	"hitlist6/internal/hitlist"
	"hitlist6/internal/ingest"
	"hitlist6/internal/ntppool"
	"hitlist6/internal/outage"
	"hitlist6/internal/scan"
	"hitlist6/internal/simnet"
	"hitlist6/internal/telemetry"
	"hitlist6/internal/tracking"
	"hitlist6/internal/wigle"
)

// Config controls a study run.
type Config struct {
	// Seed drives all randomness; a given seed reproduces the full study
	// bit-for-bit.
	Seed int64
	// Scale multiplies the simulated population (1.0 ≈ the default study
	// size; tests use 0.02–0.1).
	Scale float64
	// Days is the passive collection window (the paper ran 218 days,
	// 25 Jan – 31 Aug 2022).
	Days int
	// SliceDay is the study day used for the single-day analyses
	// (Figures 4b and 5; the paper uses 1 July 2022, day 157).
	SliceDay int
	// HitlistRounds is the number of active hitlist snapshot campaigns.
	HitlistRounds int
	// BackscanDays is the length of the backscanning campaign, run at
	// the end of the window (the paper ran one week in January 2023).
	BackscanDays int
	// IngestShards is the passive-collection shard count: replay fans
	// out across this many collector shards (see internal/ingest). 0
	// selects an automatic per-machine value. The merged corpus is
	// byte-identical for every shard count, so this only affects speed.
	IngestShards int
	// OutageBin is the base resolution of the per-AS outage series
	// recorded during CollectPassive; DetectOutages accepts any multiple
	// of it. It must be a positive whole number of seconds. 0 selects
	// one hour.
	OutageBin time.Duration
	// CheckpointPath, when non-empty, makes CollectPassive durable: if
	// the file exists it is loaded and the replay resumes after the
	// checkpointed position (results stay byte-identical to an
	// uninterrupted run — the corpus, day slice and outage series are
	// all restored, and the skipped replay prefix still drives vantage
	// selection), and during the replay fresh checkpoints are written
	// there every CheckpointEvery events (atomic temp-file + rename). A
	// checkpoint recorded under a different Seed/Scale/Days/SliceDay/
	// OutageBin is rejected, and a corrupt checkpoint file is an error —
	// delete it to restart from scratch.
	CheckpointPath string
	// CheckpointEvery is the checkpoint cadence in replay events. 0
	// with a CheckpointPath means restore-only (no new checkpoints).
	CheckpointEvery int
	// AnalysisWorkers is the per-fold worker count of the parallel
	// analysis engine: every figure, Table 1, the strategy inference,
	// tracking and Report's section orchestration each fan out across
	// this many workers, with the engine's total helper goroutines
	// additionally capped near GOMAXPROCS so nested folds never
	// multiply (see internal/fold). 0 selects GOMAXPROCS. Results are
	// bit-identical for every worker count, so this only affects speed.
	AnalysisWorkers int
	// Telemetry, when non-nil, is the metrics registry the study
	// instruments itself in: CollectPassive's ingest pipeline registers
	// its per-shard/per-stage families there (see ingest.Config.Registry),
	// Report times each section into report_section_seconds, and NewStudy
	// installs the process-wide fold dispatch timing hook feeding
	// fold_dispatch_seconds. A daemon exposes the registry on /metrics;
	// nil (the default) leaves the study entirely uninstrumented — no
	// timing reads on any analysis path and no global hook installed.
	// Instrumentation never changes results: the golden report remains
	// byte-identical with and without a registry.
	Telemetry *telemetry.Registry
}

// DefaultConfig returns the paper-shaped study at moderate scale.
func DefaultConfig() Config {
	return Config{
		Seed:          1,
		Scale:         1.0,
		Days:          218,
		SliceDay:      157,
		HitlistRounds: 4,
		BackscanDays:  7,
		OutageBin:     time.Hour,
	}
}

// Study owns a full reproduction run: the simulated world, the passive
// collection, the comparison datasets and every analysis.
type Study struct {
	Config Config
	World  *simnet.World
	Pool   *ntppool.Pool

	// Collector holds the full passive corpus; DayCollector the
	// single-day slice. OutageSeries is the per-AS time-binned query
	// series at Config.OutageBin resolution — all three are outputs of
	// the same single ingest pass.
	Collector    *collector.Collector
	DayCollector *collector.Collector
	OutageSeries *outage.Series
	DayStart     time.Time
	RunStats     ntppool.RunStats

	// NTP, Hitlist and CAIDA are the three Table 1 datasets. NTPDay is
	// the single-day NTP slice used by Figures 4b and 5.
	NTP     *hitlist.Dataset
	NTPDay  *hitlist.Dataset
	Hitlist *hitlist.ActiveResult
	CAIDA   *hitlist.Dataset
}

// normalizeOutageBin is the single owner of the Config.OutageBin rule:
// 0 selects one hour; the result must be a positive whole number of
// seconds (the event stream's timestamp resolution).
func normalizeOutageBin(bin time.Duration) (time.Duration, error) {
	if bin == 0 {
		bin = time.Hour
	}
	if bin < 0 || bin%time.Second != 0 {
		return 0, fmt.Errorf("hitlist6: OutageBin %v must be a positive whole number of seconds", bin)
	}
	return bin, nil
}

// NewStudy builds the simulated Internet for a configuration.
func NewStudy(cfg Config) (*Study, error) {
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("hitlist6: Days must be positive")
	}
	if cfg.IngestShards < 0 {
		return nil, fmt.Errorf("hitlist6: IngestShards must be >= 0")
	}
	if cfg.CheckpointEvery < 0 {
		return nil, fmt.Errorf("hitlist6: CheckpointEvery must be >= 0")
	}
	if cfg.CheckpointEvery > 0 && cfg.CheckpointPath == "" {
		return nil, fmt.Errorf("hitlist6: CheckpointEvery without CheckpointPath")
	}
	if cfg.AnalysisWorkers < 0 {
		return nil, fmt.Errorf("hitlist6: AnalysisWorkers must be >= 0")
	}
	bin, err := normalizeOutageBin(cfg.OutageBin)
	if err != nil {
		return nil, err
	}
	cfg.OutageBin = bin
	if cfg.SliceDay < 0 || cfg.SliceDay >= cfg.Days {
		cfg.SliceDay = cfg.Days / 2
	}
	wcfg := simnet.DefaultConfig(cfg.Seed, cfg.Scale)
	wcfg.Days = cfg.Days
	w, err := simnet.Build(wcfg)
	if err != nil {
		return nil, err
	}
	pool, err := ntppool.New(ntppool.StudyVantages())
	if err != nil {
		return nil, err
	}
	if cfg.Telemetry != nil {
		// The fold timing hook is process-wide (see fold.SetTiming): one
		// histogram sees every dispatch — figures, tracking, report
		// sections — which is exactly the granularity a daemon's /metrics
		// wants. Re-registration is idempotent, so multiple studies
		// sharing a registry share the series.
		h := cfg.Telemetry.Histogram("fold_dispatch_seconds",
			"Wall time of one parallel fold dispatch (any analysis fan-out).",
			telemetry.DurationBuckets())
		fold.SetTiming(func(jobs int, wall time.Duration) { h.ObserveDuration(wall) })
	}
	return &Study{
		Config:   cfg,
		World:    w,
		Pool:     pool,
		DayStart: w.Origin.AddDate(0, 0, cfg.SliceDay),
	}, nil
}

// CollectPassive replays the study window's NTP traffic through the
// pool into the sharded ingest pipeline and materializes the NTP
// datasets. The replay producer is sequential (vantage selection is
// order-dependent round-robin), but all per-sighting collector and
// enrichment work runs across Config.IngestShards shards; the merged
// corpus is identical to a serial ntppool.Run for any shard count.
//
// This is the study's single pass over the world: the full corpus, the
// single-day slice and the outage series all fall out of it, so every
// later analysis — DetectOutages, Tracking, Geolocation, the figures —
// reads pipeline outputs without replaying.
func (s *Study) CollectPassive() error {
	// NewStudy already normalized Config.OutageBin; re-normalizing here
	// only guards against the exported field being mutated afterwards
	// (the stage factory would otherwise panic on an invalid bin).
	bin, err := normalizeOutageBin(s.Config.OutageBin)
	if err != nil {
		return err
	}
	dayEnd := s.DayStart.Add(24 * time.Hour)
	cfg := ingest.DefaultConfig(s.Config.IngestShards)
	cfg.Registry = s.Config.Telemetry
	cfg.Stages = []ingest.StageFactory{
		ingest.DaySlice(s.DayStart.Unix(), dayEnd.Unix()),
		ingest.OutageSeries(s.World.ASDB, s.World.Origin, s.World.End, bin),
	}

	// Resume: a checkpoint restores the corpus (as the pipeline seed),
	// the day slice and the outage series, and tells the replay how many
	// leading events those already contain.
	var skip uint64
	var resume *studyCheckpoint
	if s.Config.CheckpointPath != "" {
		ck, err := readCheckpointFile(s.Config.CheckpointPath)
		if err != nil {
			return fmt.Errorf("hitlist6: resume from %s: %w", s.Config.CheckpointPath, err)
		}
		if ck != nil {
			if err := ck.meta.matches(metaFor(s.Config, bin, 0)); err != nil {
				return err
			}
			cfg.Seed = ck.corpus
			skip = ck.meta.events
			resume = ck
		}
	}

	pipe, err := ingest.New(cfg)
	if err != nil {
		return fmt.Errorf("hitlist6: ingest pipeline: %w", err)
	}
	if resume != nil {
		// On any seeding failure the pipeline's shard and merger
		// goroutines are already running: close them down before
		// surfacing the error, or every failed resume leaks a pipeline.
		fail := func(err error) error {
			pipe.Close()
			return err
		}
		if err := pipe.SeedStage("dayslice", &ingest.DaySliceStage{Col: resume.day}); err != nil {
			return fail(err)
		}
		seedOutage := ingest.OutageSeries(s.World.ASDB, s.World.Origin, s.World.End, bin)().(*ingest.OutageSeriesStage)
		if err := seedOutage.AddSeries(resume.series); err != nil {
			return fail(fmt.Errorf("hitlist6: resume outage series: %w", err))
		}
		if err := pipe.SeedStage("outage", seedOutage); err != nil {
			return fail(err)
		}
	}

	prog := ntppool.IngestProgress{Skip: skip}
	if s.Config.CheckpointPath != "" && s.Config.CheckpointEvery > 0 {
		prog.CheckpointEvery = uint64(s.Config.CheckpointEvery)
		prog.Checkpoint = func(events uint64) error {
			return s.writeCheckpoint(pipe, bin, events)
		}
	}
	stats, ckptErr := ntppool.RunIngestProgress(s.World, s.Pool, pipe, prog)
	s.RunStats = stats
	s.Collector = pipe.Close()
	if ckptErr != nil {
		return fmt.Errorf("hitlist6: checkpoint during replay: %w", ckptErr)
	}
	day, ok := pipe.Stage("dayslice").(*ingest.DaySliceStage)
	if !ok {
		return fmt.Errorf("hitlist6: ingest pipeline returned no day-slice stage")
	}
	s.DayCollector = day.Col
	series, ok := pipe.Stage("outage").(*ingest.OutageSeriesStage)
	if !ok {
		return fmt.Errorf("hitlist6: ingest pipeline returned no outage-series stage")
	}
	s.OutageSeries = series.Series()
	s.RunStats.UniqueClients = s.Collector.NumAddrs()
	s.NTP = hitlist.FromCollector("NTP Pool (passive)", s.Collector)
	s.NTPDay = hitlist.FromCollector("NTP Pool (1-day slice)", s.DayCollector)
	return nil
}

// BuildActive runs the two active campaigns: the IPv6-Hitlist-style
// pipeline and the CAIDA routed-/48 campaign.
func (s *Study) BuildActive() error {
	acfg := hitlist.DefaultActiveConfig(s.World.Origin, s.World.End, uint64(s.Config.Seed)+0xac)
	acfg.Rounds = s.Config.HitlistRounds
	res, err := hitlist.BuildActiveHitlist(s.World, acfg)
	if err != nil {
		return err
	}
	s.Hitlist = res

	caida, err := hitlist.BuildCAIDA48(s.World, hitlist.CAIDAConfig{
		At:        s.World.Origin.AddDate(0, 0, min(30, s.Config.Days/2)),
		SourceASN: 7922,
		Seed:      uint64(s.Config.Seed) + 0xca1da,
	})
	if err != nil {
		return err
	}
	s.CAIDA = caida
	return nil
}

// Run executes the whole study: the single passive-collection pass,
// then both active campaigns.
func (s *Study) Run() error {
	if err := s.CollectPassive(); err != nil {
		return err
	}
	return s.BuildActive()
}

func (s *Study) requireDatasets() error {
	if s.NTP == nil || s.Hitlist == nil || s.CAIDA == nil {
		return fmt.Errorf("hitlist6: call Run (or CollectPassive+BuildActive) first")
	}
	return nil
}

// analysisWorkers resolves Config.AnalysisWorkers (0 = GOMAXPROCS).
func (s *Study) analysisWorkers() int {
	return fold.Workers(s.Config.AnalysisWorkers)
}

// sidecar builds a dataset's attribute sidecar on the study's worker
// count.
func (s *Study) sidecar(d *hitlist.Dataset) *analysis.Sidecar {
	return analysis.BuildSidecar(d, s.World.ASDB, s.analysisWorkers())
}

// Table1 computes the dataset comparison (paper Table 1).
func (s *Study) Table1() (*analysis.Table1, error) {
	if err := s.requireDatasets(); err != nil {
		return nil, err
	}
	w := s.analysisWorkers()
	return analysis.ComputeTable1Sidecar(
		s.sidecar(s.NTP), s.sidecar(s.Hitlist.Dataset), s.sidecar(s.CAIDA), w), nil
}

// Figure1 computes the IID entropy CDFs of the three datasets and their
// intersections.
func (s *Study) Figure1() (*analysis.Figure1, error) {
	if err := s.requireDatasets(); err != nil {
		return nil, err
	}
	w := s.analysisWorkers()
	return analysis.ComputeFigure1Sidecar(
		analysis.BuildSidecar(s.NTP, nil, w),
		analysis.BuildSidecar(s.Hitlist.Dataset, nil, w),
		analysis.BuildSidecar(s.CAIDA, nil, w), w), nil
}

// Figure2a computes the address-lifetime CCDF.
func (s *Study) Figure2a() (*analysis.Figure2a, error) {
	if s.Collector == nil {
		return nil, fmt.Errorf("hitlist6: passive collection has not run")
	}
	return analysis.ComputeFigure2aWorkers(s.Collector, s.analysisWorkers()), nil
}

// Figure2b computes the IID-lifetime CDFs by entropy class.
func (s *Study) Figure2b() (*analysis.Figure2b, error) {
	if s.Collector == nil {
		return nil, fmt.Errorf("hitlist6: passive collection has not run")
	}
	return analysis.ComputeFigure2bWorkers(s.Collector, s.analysisWorkers()), nil
}

// Figure4a computes the per-AS entropy curves over the full window.
func (s *Study) Figure4a(topN int) ([]analysis.ASEntropy, error) {
	if s.NTP == nil {
		return nil, fmt.Errorf("hitlist6: passive collection has not run")
	}
	w := s.analysisWorkers()
	return analysis.TopASEntropySidecar(s.sidecar(s.NTP), s.World.ASDB, topN, w), nil
}

// Figure4b computes the per-AS entropy curves for the single-day slice.
func (s *Study) Figure4b(topN int) ([]analysis.ASEntropy, error) {
	if s.NTPDay == nil {
		return nil, fmt.Errorf("hitlist6: passive collection has not run")
	}
	w := s.analysisWorkers()
	return analysis.TopASEntropySidecar(s.sidecar(s.NTPDay), s.World.ASDB, topN, w), nil
}

// Strategies runs the §4.3 per-AS addressing-strategy inference over the
// full NTP corpus (top-N ASes).
func (s *Study) Strategies(topN int) ([]analysis.StrategyProfile, error) {
	if s.NTP == nil {
		return nil, fmt.Errorf("hitlist6: passive collection has not run")
	}
	w := s.analysisWorkers()
	return analysis.InferStrategiesSidecar(s.sidecar(s.NTP), s.World.ASDB, topN, w), nil
}

// Figure5 computes the seven-category addressing breakdown of the NTP
// day slice versus the active hitlist.
func (s *Study) Figure5() (*analysis.Figure5, error) {
	if err := s.requireDatasets(); err != nil {
		return nil, err
	}
	w := s.analysisWorkers()
	return analysis.ComputeFigure5Sidecar(
		s.sidecar(s.NTPDay), s.sidecar(s.Hitlist.Dataset), w), nil
}

// poolAdapter bridges the ntppool geo selector to scan.PoolSelector.
type poolAdapter struct{ p *ntppool.Pool }

func (a poolAdapter) Select(country string) int { return a.p.Select(country).ID }

// Backscan runs the §4.2 backscanning campaign over the final
// BackscanDays of the window and returns its statistics together with
// Figure 3's entropy distributions.
func (s *Study) Backscan() (*scan.BackscanStats, error) {
	days := s.Config.BackscanDays
	if days <= 0 {
		days = 7
	}
	start := s.World.End.AddDate(0, 0, -days)
	if start.Before(s.World.Origin) {
		start = s.World.Origin
	}
	cfg := scan.DefaultBackscanConfig(start, s.World.End, s.Config.Seed+0xb5)
	return scan.Backscan(s.World, poolAdapter{s.Pool}, cfg), nil
}

// Figure3 derives the hit/miss/random entropy distributions from a
// backscan campaign.
func Figure3(stats *scan.BackscanStats) (hit, miss, random []float64) {
	for _, o := range stats.Outcomes {
		e := o.Client.IID().NormalizedEntropy()
		if o.ClientResponded {
			hit = append(hit, e)
		} else {
			miss = append(miss, e)
		}
		if o.RandomResponded {
			random = append(random, o.Random.IID().NormalizedEntropy())
		}
	}
	return hit, miss, random
}

// DetectOutages runs the passive outage detector (a §1 application of
// large hitlists) over the outage series recorded during the single
// CollectPassive pass — no replay. bin must be a multiple of
// Config.OutageBin; the rebinned series (and hence the detected events)
// are identical to binning the raw query stream at that width directly.
func (s *Study) DetectOutages(bin time.Duration) ([]outage.Event, error) {
	if s.OutageSeries == nil {
		return nil, fmt.Errorf("hitlist6: passive collection has not run")
	}
	series, err := outage.Rebin(s.OutageSeries, bin)
	if err != nil {
		return nil, err
	}
	return outage.Detect(series, outage.DefaultConfig()), nil
}

// Tracking runs the §5.1/§5.2 EUI-64 analysis over the passive corpus —
// the merged output of the ingest pipeline, consumed directly with no
// further pass over the world.
func (s *Study) Tracking() (*tracking.Analysis, error) {
	if s.Collector == nil {
		return nil, fmt.Errorf("hitlist6: passive collection has not run")
	}
	return tracking.AnalyzeWorkers(s.Collector, s.World.ASDB, s.World.Geo, s.World.OUI,
		s.analysisWorkers()), nil
}

// GeolocationResult is the §5.3 outcome.
type GeolocationResult struct {
	// WiredMACs is how many unique EUI-64 MACs were available as input.
	WiredMACs int
	// Offsets are the inferred per-OUI wired-to-wireless offsets.
	Offsets []geoloc.OffsetCandidate
	// Located are the successful linkages.
	Located []geoloc.Geolocated
	// Countries tallies located devices per (reverse-geocoded) country.
	Countries map[string]int
}

// Geolocation runs the §5.3 pipeline: build the wardriving database from
// the world, infer per-OUI offsets from the corpus's EUI-64 MACs, and
// link them to geolocated BSSIDs. minPairs scales the paper's 500-pair
// threshold; pass 0 for an automatic corpus-proportional choice.
func (s *Study) Geolocation(minPairs int) (*GeolocationResult, error) {
	tr, err := s.Tracking()
	if err != nil {
		return nil, err
	}
	return s.geolocationFrom(tr, minPairs)
}

// geolocationFrom is Geolocation over an already computed tracking
// analysis, so Report can share one analysis between the §5.2 and §5.3
// sections instead of running it twice.
func (s *Study) geolocationFrom(tr *tracking.Analysis, minPairs int) (*GeolocationResult, error) {
	wired := make([]addr.MAC, 0, len(tr.MACs))
	for _, m := range tr.MACs {
		wired = append(wired, m.MAC)
	}
	if minPairs <= 0 {
		minPairs = len(wired) / 500
		if minPairs < 3 {
			minPairs = 3
		}
	}
	wdb := wigle.Build(s.World, wigle.DefaultBuildConfig(s.Config.Seed+0x919))
	offsets := geoloc.InferOffsets(wired, wdb, minPairs)
	located := geoloc.Apply(wired, offsets, wdb)
	return &GeolocationResult{
		WiredMACs: len(wired),
		Offsets:   offsets,
		Located:   located,
		Countries: geoloc.CountryCount(located, wigle.NearestCountry),
	}, nil
}
