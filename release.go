package hitlist6

import "hitlist6/internal/hitlist"

// releaseDataset is a thin indirection so report.go stays import-light.
func releaseDataset(d *hitlist.Dataset) string { return hitlist.Release(d) }
