package hitlist6

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/analysis"
	"hitlist6/internal/asdb"
	"hitlist6/internal/cardinality"
	"hitlist6/internal/collector"
	"hitlist6/internal/fold"
	"hitlist6/internal/geodb"
	"hitlist6/internal/oui"
	"hitlist6/internal/scan"
	"hitlist6/internal/stats"
	"hitlist6/internal/telemetry"
	"hitlist6/internal/tracking"
)

// reportSection is one named unit of Report: the name keys the
// section's timing series on /metrics and never appears in the rendered
// text, so naming sections cannot perturb the golden report.
type reportSection struct {
	name string
	fn   func() string
}

// timedTask wraps one named unit of Report work (a section render or a
// shared-input build) so its wall time feeds
// report_section_seconds{section=name} on Config.Telemetry. With no
// registry the task runs bare — zero instrumentation cost on the
// default path.
func (s *Study) timedTask(name string, fn func()) func() {
	reg := s.Config.Telemetry
	if reg == nil {
		return fn
	}
	h := reg.Histogram("report_section_seconds",
		"Wall time of one report section render or shared-input build.",
		telemetry.DurationBuckets(), telemetry.L("section", name))
	return func() {
		start := time.Now()
		fn()
		h.ObserveDuration(time.Since(start))
	}
}

// Report runs every experiment of the paper's evaluation and renders the
// results as text, one section per table/figure. It is the programmatic
// equivalent of reading the paper's §4 and §5 off this reproduction.
//
// The sections compute concurrently on Config.AnalysisWorkers workers:
// one parallel phase builds the shared per-dataset attribute sidecars,
// the tracking analysis and the backscan campaign, then every section
// renders as an independent task over those shared inputs and the texts
// join in fixed order. The output is byte-identical to the serial
// single-worker rendering at every worker count (pinned by the golden
// report test).
func (s *Study) Report() (string, error) {
	if err := s.requireDatasets(); err != nil {
		return "", err
	}
	workers := s.analysisWorkers()
	db := s.World.ASDB

	// Phase 1: the shared inputs. Sidecars are immutable once built;
	// building them here also seals every dataset before the sections
	// start reading them concurrently. Each build is timed as
	// input:<name> alongside the sections (see timedTask), so a slow
	// report points at its expensive phase directly.
	var (
		scNTP, scHL, scCAIDA, scDay *analysis.Sidecar
		tr                          *tracking.Analysis
		bs                          *scan.BackscanStats
		bsErr                       error
	)
	input := func(name string, fn func()) func() { return s.timedTask("input:"+name, fn) }
	fold.Each(workers,
		input("sidecar_ntp", func() { scNTP = analysis.BuildSidecar(s.NTP, db, workers) }),
		input("sidecar_hitlist", func() { scHL = analysis.BuildSidecar(s.Hitlist.Dataset, db, workers) }),
		input("sidecar_caida", func() { scCAIDA = analysis.BuildSidecar(s.CAIDA, db, workers) }),
		input("sidecar_day", func() { scDay = analysis.BuildSidecar(s.NTPDay, db, workers) }),
		input("tracking", func() {
			tr = tracking.AnalyzeWorkers(s.Collector, db, s.World.Geo, s.World.OUI, workers)
		}),
		input("backscan", func() { bs, bsErr = s.Backscan() }),
	)
	if bsErr != nil {
		return "", bsErr
	}

	// Phase 2: the sections, in report order. Each renders its own text
	// chunk; sec formats one "\n<body>\n" block exactly like the serial
	// renderer did.
	sec := func(format string, args ...any) string {
		return fmt.Sprintf("\n"+format+"\n", args...)
	}
	var geoErr error
	sections := []reportSection{
		{"header", // observations + HLL
			func() string { return s.reportHeader(workers) }},

		{"table1", func() string {
			return sec("%s", analysis.ComputeTable1Sidecar(scNTP, scHL, scCAIDA, workers).Render())
		}},

		{"as_types", func() string { // §4.1 AS type shares
			typeTable := stats.NewTable("", "Dataset", "Phone Provider", "ISP", "Hosting")
			for _, row := range []struct {
				name  string
				share map[asdb.ASType]float64
			}{
				{"NTP", analysis.ASTypeShareSidecar(scNTP, workers)},
				{"Hitlist", analysis.ASTypeShareSidecar(scHL, workers)},
				{"CAIDA", analysis.ASTypeShareSidecar(scCAIDA, workers)},
			} {
				typeTable.AddRow(row.name,
					stats.Pct(row.share[asdb.TypePhoneProvider], 1),
					stats.Pct(row.share[asdb.TypeISP], 1),
					stats.Pct(row.share[asdb.TypeHosting], 1))
			}
			return sec("AS-type composition (share of addresses; paper: NTP has ~14%% Phone Provider, Hitlist ~2%%)") +
				sec("%s", typeTable.String())
		}},

		{"figure1", func() string {
			f1 := analysis.ComputeFigure1Sidecar(scNTP, scHL, scCAIDA, workers)
			f1Table := stats.NewTable("", "Curve", "N", "Median entropy")
			f1Table.AddRowf("NTP", f1.NTP.N(), f1.NTP.Median())
			f1Table.AddRowf("IPv6 Hitlist", f1.Hitlist.N(), f1.Hitlist.Median())
			f1Table.AddRowf("CAIDA", f1.CAIDA.N(), f1.CAIDA.Median())
			f1Table.AddRowf("NTP ∩ Hitlist", f1.NTPxHitlist.N(), f1.NTPxHitlist.Median())
			f1Table.AddRowf("NTP ∩ CAIDA", f1.NTPxCAIDA.N(), f1.NTPxCAIDA.Median())
			return sec("Figure 1: normalized IID entropy medians (paper: NTP ~0.8, Hitlist ~0.7, CAIDA ~0)") +
				sec("%s", f1Table.String()) +
				sec("%s", stats.AsciiCDF("Figure 1 (CDF of IID entropy)", map[string][]stats.CDFPoint{
					"NTP":     f1.NTP.CDFSeries(48),
					"Hitlist": f1.Hitlist.CDFSeries(48),
					"CAIDA":   f1.CAIDA.CDFSeries(48),
				}, 48, 12))
		}},

		{"figure2a", func() string {
			f2a := analysis.ComputeFigure2aWorkers(s.Collector, workers)
			f2aTable := stats.NewTable("", "Metric", "Fraction")
			f2aTable.AddRow("observed once", stats.Pct(f2a.ObservedOnce, 1))
			f2aTable.AddRow(">= 1 week", stats.Pct(f2a.WeekOrLonger, 2))
			f2aTable.AddRow(">= 30 days", stats.Pct(f2a.MonthOrLonger, 2))
			f2aTable.AddRow("> 180 days", stats.Pct(f2a.SixMonthsOrLonger, 3))
			return sec("Figure 2a: address lifetimes (paper: >60%% observed once; 1.2%% ≥1w; 0.4%% ≥30d; 0.03%% >6mo)") +
				sec("%s", f2aTable.String())
		}},

		{"figure2b", func() string {
			f2b := analysis.ComputeFigure2bWorkers(s.Collector, workers)
			f2bTable := stats.NewTable("", "Entropy class", "IIDs", "Observed once", ">= 1 week")
			for _, cls := range []addr.EntropyClass{addr.LowEntropy, addr.MediumEntropy, addr.HighEntropy} {
				d := f2b.ByClass[cls]
				if d == nil {
					continue
				}
				f2bTable.AddRow(cls.String(), stats.Comma(int64(d.N())),
					stats.Pct(f2b.ObservedOnce[cls], 1), stats.Pct(f2b.WeekOrLonger[cls], 1))
			}
			return sec("Figure 2b: IID lifetime by entropy class (paper: 10%% of low-entropy IIDs last ≥1 week vs ≤5%% of others)") +
				sec("%s", f2bTable.String())
		}},

		{"backscan", func() string { // §4.2 backscanning + Figure 3
			return sec("%s", RenderBackscan(bs, s))
		}},

		{"figure4a", func() string {
			return sec("%s", renderFigure4("Figure 4a: top-5 AS entropy medians (full window)",
				analysis.TopASEntropySidecar(scNTP, db, 5, workers)))
		}},

		{"figure4b", func() string {
			return sec("%s", renderFigure4("Figure 4b: top-5 AS entropy medians (1-day slice)",
				analysis.TopASEntropySidecar(scDay, db, 5, workers)))
		}},

		{"strategies", func() string { // §4.3 addressing strategies
			return sec("%s", analysis.RenderStrategies(
				analysis.InferStrategiesSidecar(scNTP, db, 6, workers)))
		}},

		{"figure5", func() string {
			f5 := analysis.ComputeFigure5Sidecar(scDay, scHL, workers)
			f5Table := stats.NewTable("", "Category", "NTP", "IPv6 Hitlist")
			for c := addr.Category(0); c < addr.NumCategories; c++ {
				f5Table.AddRow(c.String(),
					stats.Pct(f5.NTP.Fractions[c], 2), stats.Pct(f5.Hitlist.Fractions[c], 2))
			}
			return sec("Figure 5: addressing categories, 1-day slice (paper: NTP ~2/3 high entropy; Hitlist low-byte heavy)") +
				sec("%s", f5Table.String())
		}},

		{"tracking", func() string { // §5.1/5.2
			return sec("%s", RenderTracking(tr, db))
		}},

		{"geolocation", func() string { // §5.3 (shares the tracking analysis)
			geo, err := s.geolocationFrom(tr, 0)
			if err != nil {
				geoErr = err
				return ""
			}
			return sec("%s", RenderGeolocation(geo))
		}},
	}
	texts := make([]string, len(sections))
	tasks := make([]func(), len(sections))
	for i := range sections {
		i := i
		fn := sections[i].fn
		tasks[i] = s.timedTask(sections[i].name, func() { texts[i] = fn() })
	}
	fold.Each(workers, tasks...)
	if geoErr != nil {
		return "", geoErr
	}
	return strings.Join(texts, ""), nil
}

// reportHeader renders the report preamble: the run parameters, the
// observation counts and the HyperLogLog estimate. At the paper's 7.9B
// scale exact sets do not fit in memory; the constant-space estimator a
// full deployment would use is shown next to the exact count this
// simulation can afford. The sketch fills as a parallel fold — per-range
// sketches merge by register-wise max, which is exactly what serial
// insertion computes.
func (s *Study) reportHeader(workers int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "IPv6 Hitlists at Scale — reproduction report (seed=%d scale=%g days=%d)\n",
		s.Config.Seed, s.Config.Scale, s.Config.Days)
	fmt.Fprintf(&b, "Observations: %s queries, %s unique addresses, %s unique IIDs\n",
		stats.Comma(int64(s.RunStats.Queries)),
		stats.Comma(int64(s.Collector.NumAddrs())),
		stats.Comma(int64(s.Collector.NumIIDs())))
	sketch := fold.Map(s.Collector.NumAddrs(), workers,
		func(lo, hi int) *cardinality.HLL {
			part, err := cardinality.NewHLL(14)
			if err != nil {
				return nil
			}
			s.Collector.AddrsRange(lo, hi, func(a addr.Addr, _ collector.AddrRecord) bool {
				part.AddAddr(a)
				return true
			})
			return part
		},
		func(dst, src *cardinality.HLL) *cardinality.HLL {
			if dst == nil {
				return src
			}
			if src != nil {
				if err := dst.Merge(src); err != nil {
					return dst
				}
			}
			return dst
		})
	if sketch == nil {
		// Empty corpus: the fold had nothing to fold; report the empty
		// sketch exactly as a serial fill would.
		sketch, _ = cardinality.NewHLL(14)
	}
	if sketch != nil {
		fmt.Fprintf(&b, "HyperLogLog estimate: %s unique addresses from a %d-byte sketch (±%.1f%%)\n",
			stats.Comma(int64(sketch.Estimate())), sketch.SizeBytes(),
			100*sketch.RelativeError())
	}
	return b.String()
}

// renderFigure4 formats one Figure 4 table.
func renderFigure4(title string, rows []analysis.ASEntropy) string {
	tb := stats.NewTable(title, "AS", "Addresses", "Median entropy", "Frac > 0.75")
	for _, r := range rows {
		tb.AddRow(fmt.Sprintf("AS%d %s", r.ASN, r.Name),
			stats.Comma(int64(r.Count)),
			fmt.Sprintf("%.3f", r.Dist.Median()),
			stats.Pct(r.Dist.CCDF(0.75), 1))
	}
	return tb.String()
}

// RenderBackscan formats the §4.2 campaign results with Figure 3's
// entropy medians.
func RenderBackscan(bs *scan.BackscanStats, s *Study) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 4.2: backscanning (paper: ~2/3 of clients respond; 3.5%% of random probes respond)\n")
	fmt.Fprintf(&b, "  clients probed:   %s\n", stats.Comma(int64(bs.ClientsProbed)))
	fmt.Fprintf(&b, "  client responses: %s (%s)\n",
		stats.Comma(int64(bs.ClientResponses)), stats.Pct(bs.ClientResponseRate(), 1))
	fmt.Fprintf(&b, "  random probes:    %s, responses %s (%s)\n",
		stats.Comma(int64(bs.RandomProbes)), stats.Comma(int64(bs.RandomResponses)),
		stats.Pct(bs.RandomResponseRate(), 2))
	fmt.Fprintf(&b, "  aliased /64s discovered: %d\n", len(bs.AliasedPrefixes))

	if s != nil && s.Hitlist != nil {
		known, novel := 0, 0
		//lint:ordered commutative known/novel counts; no order reaches the output
		for p := range bs.AliasedPrefixes {
			if s.Hitlist.Aliases.Contains(p) {
				known++
			} else {
				novel++
			}
		}
		fmt.Fprintf(&b, "  of which already in the Hitlist alias list: %d; newly discovered: %d (paper: 98%% known, plus novel)\n",
			known, novel)
	}

	hit, miss, random := Figure3(bs)
	fig3 := stats.NewTable("Figure 3: backscan entropy medians", "Series", "N", "Median entropy")
	for _, row := range []struct {
		name    string
		samples []float64
	}{{"NTP Hit", hit}, {"NTP Miss", miss}, {"Random", random}} {
		d := stats.NewDistribution(row.samples)
		fig3.AddRowf(row.name, d.N(), d.Median())
	}
	b.WriteString("\n")
	b.WriteString(fig3.String())
	return b.String()
}

// RenderTracking formats §5.1's prevalence numbers, Table 2, the §5.2
// class shares, Figure 6 summaries and one Figure 7 exemplar per class.
func RenderTracking(tr *tracking.Analysis, db *asdb.DB) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 5.1: EUI-64 prevalence\n")
	fmt.Fprintf(&b, "  EUI-64 addresses: %s (expected from randomness: %.0f)\n",
		stats.Comma(int64(tr.EUI64Addresses)), tr.ExpectedRandom)
	fmt.Fprintf(&b, "  unique embedded MACs: %s; unlisted share %s (paper: 73.9%%)\n",
		stats.Comma(int64(len(tr.MACs))), stats.Pct(tr.UnlistedShare(), 1))

	t2 := stats.NewTable("\nTable 2: MACs by manufacturer", "Manufacturer", "Count")
	rows := tr.Table2()
	if len(rows) > 10 {
		rows = rows[:10]
	}
	for _, r := range rows {
		t2.AddRow(r.Manufacturer, stats.Comma(int64(r.Count)))
	}
	b.WriteString(t2.String())

	fmt.Fprintf(&b, "\nSection 5.2: tracking classes (trackable MACs: %s = %s of all; paper: 8.7%%)\n",
		stats.Comma(int64(tr.Trackable)),
		stats.Pct(float64(tr.Trackable)/float64(max(1, len(tr.MACs))), 1))
	cls := stats.NewTable("", "Class", "Count", "Share", "Paper")
	paperShare := map[tracking.Class]string{
		tracking.MostlyStatic:       "86%",
		tracking.PrefixReassignment: "8%",
		tracking.MACReuse:           "0.01%",
		tracking.ProviderChange:     "5%",
		tracking.UserMovement:       "0.44%",
	}
	for c := tracking.MostlyStatic; c < tracking.NumClasses; c++ {
		cls.AddRow(c.String(), stats.Comma(int64(tr.ClassCounts[c])),
			stats.Pct(tr.ClassShare(c), 2), paperShare[c])
	}
	b.WriteString(cls.String())

	fmt.Fprintf(&b, "\nFigure 7 exemplars:\n")
	for c := tracking.PrefixReassignment; c < tracking.NumClasses; c++ {
		if ex := tr.Exemplar(c); ex != nil {
			b.WriteString(tracking.RenderTimeline(ex, db))
		}
	}
	return b.String()
}

// RenderGeolocation formats the §5.3 outcome.
func RenderGeolocation(g *GeolocationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 5.3: geolocation via wired-wireless MAC offset linkage\n")
	fmt.Fprintf(&b, "  wired MACs in corpus: %s\n", stats.Comma(int64(g.WiredMACs)))
	fmt.Fprintf(&b, "  per-OUI offsets inferred: %d (paper: 117 OUIs)\n", len(g.Offsets))
	fmt.Fprintf(&b, "  devices geolocated: %s (paper: 225,354; 75%% in DE from AVM CPE)\n",
		stats.Comma(int64(len(g.Located))))
	type cc struct {
		country string
		n       int
	}
	var counts []cc
	for c, n := range g.Countries {
		counts = append(counts, cc{c, n})
	}
	sort.Slice(counts, func(i, j int) bool {
		if counts[i].n != counts[j].n {
			return counts[i].n > counts[j].n
		}
		return counts[i].country < counts[j].country
	})
	total := len(g.Located)
	for i, c := range counts {
		if i >= 5 {
			break
		}
		fmt.Fprintf(&b, "    %s: %d (%s)\n", c.country, c.n,
			stats.Pct(float64(c.n)/float64(max(1, total)), 1))
	}
	return b.String()
}

// ReleaseNTP renders the NTP corpus in the paper's ethical /48-truncated
// release format.
func (s *Study) ReleaseNTP() (string, error) {
	if s.NTP == nil {
		return "", fmt.Errorf("hitlist6: passive collection has not run")
	}
	return releaseDataset(s.NTP), nil
}

// TopCountries returns the geolocated query origins (§3: top-5 countries
// carried 76% of the corpus).
func (s *Study) TopCountries(n int) ([]geodb.CountryCount, error) {
	if s.NTP == nil {
		return nil, fmt.Errorf("hitlist6: passive collection has not run")
	}
	counts := make(map[string]int)
	s.NTP.Each(func(a addr.Addr) bool {
		if c := s.World.Geo.Country(a); c != "" {
			counts[c]++
		}
		return true
	})
	return geodb.TopCountries(counts, n), nil
}

// Vendors exposes the embedded OUI registry (for examples that want to
// resolve manufacturers).
func (s *Study) Vendors() *oui.Registry { return s.World.OUI }

// StudyWindow returns the passive collection window.
func (s *Study) StudyWindow() (start, end time.Time) {
	return s.World.Origin, s.World.End
}
