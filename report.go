package hitlist6

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/analysis"
	"hitlist6/internal/asdb"
	"hitlist6/internal/cardinality"
	"hitlist6/internal/collector"
	"hitlist6/internal/geodb"
	"hitlist6/internal/oui"
	"hitlist6/internal/scan"
	"hitlist6/internal/stats"
	"hitlist6/internal/tracking"
)

// Report runs every experiment of the paper's evaluation and renders the
// results as text, one section per table/figure. It is the programmatic
// equivalent of reading the paper's §4 and §5 off this reproduction.
func (s *Study) Report() (string, error) {
	if err := s.requireDatasets(); err != nil {
		return "", err
	}
	var b strings.Builder
	sec := func(format string, args ...any) {
		fmt.Fprintf(&b, "\n"+format+"\n", args...)
	}

	fmt.Fprintf(&b, "IPv6 Hitlists at Scale — reproduction report (seed=%d scale=%g days=%d)\n",
		s.Config.Seed, s.Config.Scale, s.Config.Days)
	fmt.Fprintf(&b, "Observations: %s queries, %s unique addresses, %s unique IIDs\n",
		stats.Comma(int64(s.RunStats.Queries)),
		stats.Comma(int64(s.Collector.NumAddrs())),
		stats.Comma(int64(s.Collector.NumIIDs())))
	// At the paper's 7.9B scale exact sets do not fit in memory; show the
	// constant-space estimator a full deployment would use next to the
	// exact count this simulation can afford.
	if sketch, err := cardinality.NewHLL(14); err == nil {
		s.Collector.Addrs(func(a addr.Addr, _ collector.AddrRecord) bool {
			sketch.AddAddr(a)
			return true
		})
		fmt.Fprintf(&b, "HyperLogLog estimate: %s unique addresses from a %d-byte sketch (±%.1f%%)\n",
			stats.Comma(int64(sketch.Estimate())), sketch.SizeBytes(),
			100*sketch.RelativeError())
	}

	// ---- Table 1 ----
	t1, err := s.Table1()
	if err != nil {
		return "", err
	}
	sec("%s", t1.Render())

	// ---- §4.1 AS type shares ----
	sec("AS-type composition (share of addresses; paper: NTP has ~14%% Phone Provider, Hitlist ~2%%)")
	typeTable := stats.NewTable("", "Dataset", "Phone Provider", "ISP", "Hosting")
	for _, row := range []struct {
		name  string
		share map[asdb.ASType]float64
	}{
		{"NTP", analysis.ASTypeShare(s.NTP, s.World.ASDB)},
		{"Hitlist", analysis.ASTypeShare(s.Hitlist.Dataset, s.World.ASDB)},
		{"CAIDA", analysis.ASTypeShare(s.CAIDA, s.World.ASDB)},
	} {
		typeTable.AddRow(row.name,
			stats.Pct(row.share[asdb.TypePhoneProvider], 1),
			stats.Pct(row.share[asdb.TypeISP], 1),
			stats.Pct(row.share[asdb.TypeHosting], 1))
	}
	sec("%s", typeTable.String())

	// ---- Figure 1 ----
	f1, err := s.Figure1()
	if err != nil {
		return "", err
	}
	sec("Figure 1: normalized IID entropy medians (paper: NTP ~0.8, Hitlist ~0.7, CAIDA ~0)")
	f1Table := stats.NewTable("", "Curve", "N", "Median entropy")
	f1Table.AddRowf("NTP", f1.NTP.N(), f1.NTP.Median())
	f1Table.AddRowf("IPv6 Hitlist", f1.Hitlist.N(), f1.Hitlist.Median())
	f1Table.AddRowf("CAIDA", f1.CAIDA.N(), f1.CAIDA.Median())
	f1Table.AddRowf("NTP ∩ Hitlist", f1.NTPxHitlist.N(), f1.NTPxHitlist.Median())
	f1Table.AddRowf("NTP ∩ CAIDA", f1.NTPxCAIDA.N(), f1.NTPxCAIDA.Median())
	sec("%s", f1Table.String())
	sec("%s", stats.AsciiCDF("Figure 1 (CDF of IID entropy)", map[string][]stats.CDFPoint{
		"NTP":     f1.NTP.CDFSeries(48),
		"Hitlist": f1.Hitlist.CDFSeries(48),
		"CAIDA":   f1.CAIDA.CDFSeries(48),
	}, 48, 12))

	// ---- Figure 2 ----
	f2a, err := s.Figure2a()
	if err != nil {
		return "", err
	}
	sec("Figure 2a: address lifetimes (paper: >60%% observed once; 1.2%% ≥1w; 0.4%% ≥30d; 0.03%% >6mo)")
	f2aTable := stats.NewTable("", "Metric", "Fraction")
	f2aTable.AddRow("observed once", stats.Pct(f2a.ObservedOnce, 1))
	f2aTable.AddRow(">= 1 week", stats.Pct(f2a.WeekOrLonger, 2))
	f2aTable.AddRow(">= 30 days", stats.Pct(f2a.MonthOrLonger, 2))
	f2aTable.AddRow("> 180 days", stats.Pct(f2a.SixMonthsOrLonger, 3))
	sec("%s", f2aTable.String())

	f2b, err := s.Figure2b()
	if err != nil {
		return "", err
	}
	sec("Figure 2b: IID lifetime by entropy class (paper: 10%% of low-entropy IIDs last ≥1 week vs ≤5%% of others)")
	f2bTable := stats.NewTable("", "Entropy class", "IIDs", "Observed once", ">= 1 week")
	for _, cls := range []addr.EntropyClass{addr.LowEntropy, addr.MediumEntropy, addr.HighEntropy} {
		d := f2b.ByClass[cls]
		if d == nil {
			continue
		}
		f2bTable.AddRow(cls.String(), stats.Comma(int64(d.N())),
			stats.Pct(f2b.ObservedOnce[cls], 1), stats.Pct(f2b.WeekOrLonger[cls], 1))
	}
	sec("%s", f2bTable.String())

	// ---- §4.2 backscanning + Figure 3 ----
	bs, err := s.Backscan()
	if err != nil {
		return "", err
	}
	sec("%s", RenderBackscan(bs, s))

	// ---- Figures 4a / 4b ----
	for _, fig := range []struct {
		title string
		fn    func(int) ([]analysis.ASEntropy, error)
	}{
		{"Figure 4a: top-5 AS entropy medians (full window)", s.Figure4a},
		{"Figure 4b: top-5 AS entropy medians (1-day slice)", s.Figure4b},
	} {
		rows, err := fig.fn(5)
		if err != nil {
			return "", err
		}
		tb := stats.NewTable(fig.title, "AS", "Addresses", "Median entropy", "Frac > 0.75")
		for _, r := range rows {
			tb.AddRow(fmt.Sprintf("AS%d %s", r.ASN, r.Name),
				stats.Comma(int64(r.Count)),
				fmt.Sprintf("%.3f", r.Dist.Median()),
				stats.Pct(r.Dist.CCDF(0.75), 1))
		}
		sec("%s", tb.String())
	}

	// ---- §4.3 addressing strategies ----
	profiles, err := s.Strategies(6)
	if err != nil {
		return "", err
	}
	sec("%s", analysis.RenderStrategies(profiles))

	// ---- Figure 5 ----
	f5, err := s.Figure5()
	if err != nil {
		return "", err
	}
	sec("Figure 5: addressing categories, 1-day slice (paper: NTP ~2/3 high entropy; Hitlist low-byte heavy)")
	f5Table := stats.NewTable("", "Category", "NTP", "IPv6 Hitlist")
	for c := addr.Category(0); c < addr.NumCategories; c++ {
		f5Table.AddRow(c.String(),
			stats.Pct(f5.NTP.Fractions[c], 2), stats.Pct(f5.Hitlist.Fractions[c], 2))
	}
	sec("%s", f5Table.String())

	// ---- §5.1/5.2 tracking ----
	tr, err := s.Tracking()
	if err != nil {
		return "", err
	}
	sec("%s", RenderTracking(tr, s.World.ASDB))

	// ---- §5.3 geolocation ----
	geo, err := s.Geolocation(0)
	if err != nil {
		return "", err
	}
	sec("%s", RenderGeolocation(geo))

	return b.String(), nil
}

// RenderBackscan formats the §4.2 campaign results with Figure 3's
// entropy medians.
func RenderBackscan(bs *scan.BackscanStats, s *Study) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 4.2: backscanning (paper: ~2/3 of clients respond; 3.5%% of random probes respond)\n")
	fmt.Fprintf(&b, "  clients probed:   %s\n", stats.Comma(int64(bs.ClientsProbed)))
	fmt.Fprintf(&b, "  client responses: %s (%s)\n",
		stats.Comma(int64(bs.ClientResponses)), stats.Pct(bs.ClientResponseRate(), 1))
	fmt.Fprintf(&b, "  random probes:    %s, responses %s (%s)\n",
		stats.Comma(int64(bs.RandomProbes)), stats.Comma(int64(bs.RandomResponses)),
		stats.Pct(bs.RandomResponseRate(), 2))
	fmt.Fprintf(&b, "  aliased /64s discovered: %d\n", len(bs.AliasedPrefixes))

	if s != nil && s.Hitlist != nil {
		known, novel := 0, 0
		for p := range bs.AliasedPrefixes {
			if s.Hitlist.Aliases.Contains(p) {
				known++
			} else {
				novel++
			}
		}
		fmt.Fprintf(&b, "  of which already in the Hitlist alias list: %d; newly discovered: %d (paper: 98%% known, plus novel)\n",
			known, novel)
	}

	hit, miss, random := Figure3(bs)
	fig3 := stats.NewTable("Figure 3: backscan entropy medians", "Series", "N", "Median entropy")
	for _, row := range []struct {
		name    string
		samples []float64
	}{{"NTP Hit", hit}, {"NTP Miss", miss}, {"Random", random}} {
		d := stats.NewDistribution(row.samples)
		fig3.AddRowf(row.name, d.N(), d.Median())
	}
	b.WriteString("\n")
	b.WriteString(fig3.String())
	return b.String()
}

// RenderTracking formats §5.1's prevalence numbers, Table 2, the §5.2
// class shares, Figure 6 summaries and one Figure 7 exemplar per class.
func RenderTracking(tr *tracking.Analysis, db *asdb.DB) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 5.1: EUI-64 prevalence\n")
	fmt.Fprintf(&b, "  EUI-64 addresses: %s (expected from randomness: %.0f)\n",
		stats.Comma(int64(tr.EUI64Addresses)), tr.ExpectedRandom)
	fmt.Fprintf(&b, "  unique embedded MACs: %s; unlisted share %s (paper: 73.9%%)\n",
		stats.Comma(int64(len(tr.MACs))), stats.Pct(tr.UnlistedShare(), 1))

	t2 := stats.NewTable("\nTable 2: MACs by manufacturer", "Manufacturer", "Count")
	rows := tr.Table2()
	if len(rows) > 10 {
		rows = rows[:10]
	}
	for _, r := range rows {
		t2.AddRow(r.Manufacturer, stats.Comma(int64(r.Count)))
	}
	b.WriteString(t2.String())

	fmt.Fprintf(&b, "\nSection 5.2: tracking classes (trackable MACs: %s = %s of all; paper: 8.7%%)\n",
		stats.Comma(int64(tr.Trackable)),
		stats.Pct(float64(tr.Trackable)/float64(max(1, len(tr.MACs))), 1))
	cls := stats.NewTable("", "Class", "Count", "Share", "Paper")
	paperShare := map[tracking.Class]string{
		tracking.MostlyStatic:       "86%",
		tracking.PrefixReassignment: "8%",
		tracking.MACReuse:           "0.01%",
		tracking.ProviderChange:     "5%",
		tracking.UserMovement:       "0.44%",
	}
	for c := tracking.MostlyStatic; c < tracking.NumClasses; c++ {
		cls.AddRow(c.String(), stats.Comma(int64(tr.ClassCounts[c])),
			stats.Pct(tr.ClassShare(c), 2), paperShare[c])
	}
	b.WriteString(cls.String())

	fmt.Fprintf(&b, "\nFigure 7 exemplars:\n")
	for c := tracking.PrefixReassignment; c < tracking.NumClasses; c++ {
		if ex := tr.Exemplar(c); ex != nil {
			b.WriteString(tracking.RenderTimeline(ex, db))
		}
	}
	return b.String()
}

// RenderGeolocation formats the §5.3 outcome.
func RenderGeolocation(g *GeolocationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 5.3: geolocation via wired-wireless MAC offset linkage\n")
	fmt.Fprintf(&b, "  wired MACs in corpus: %s\n", stats.Comma(int64(g.WiredMACs)))
	fmt.Fprintf(&b, "  per-OUI offsets inferred: %d (paper: 117 OUIs)\n", len(g.Offsets))
	fmt.Fprintf(&b, "  devices geolocated: %s (paper: 225,354; 75%% in DE from AVM CPE)\n",
		stats.Comma(int64(len(g.Located))))
	type cc struct {
		country string
		n       int
	}
	var counts []cc
	for c, n := range g.Countries {
		counts = append(counts, cc{c, n})
	}
	sort.Slice(counts, func(i, j int) bool {
		if counts[i].n != counts[j].n {
			return counts[i].n > counts[j].n
		}
		return counts[i].country < counts[j].country
	})
	total := len(g.Located)
	for i, c := range counts {
		if i >= 5 {
			break
		}
		fmt.Fprintf(&b, "    %s: %d (%s)\n", c.country, c.n,
			stats.Pct(float64(c.n)/float64(max(1, total)), 1))
	}
	return b.String()
}

// ReleaseNTP renders the NTP corpus in the paper's ethical /48-truncated
// release format.
func (s *Study) ReleaseNTP() (string, error) {
	if s.NTP == nil {
		return "", fmt.Errorf("hitlist6: passive collection has not run")
	}
	return releaseDataset(s.NTP), nil
}

// TopCountries returns the geolocated query origins (§3: top-5 countries
// carried 76% of the corpus).
func (s *Study) TopCountries(n int) ([]geodb.CountryCount, error) {
	if s.NTP == nil {
		return nil, fmt.Errorf("hitlist6: passive collection has not run")
	}
	counts := make(map[string]int)
	s.NTP.Each(func(a addr.Addr) bool {
		if c := s.World.Geo.Country(a); c != "" {
			counts[c]++
		}
		return true
	})
	return geodb.TopCountries(counts, n), nil
}

// Vendors exposes the embedded OUI registry (for examples that want to
// resolve manufacturers).
func (s *Study) Vendors() *oui.Registry { return s.World.OUI }

// StudyWindow returns the passive collection window.
func (s *Study) StudyWindow() (start, end time.Time) {
	return s.World.Origin, s.World.End
}
