package hitlist6

import (
	"reflect"
	"testing"
	"time"

	"hitlist6/internal/outage"
)

// TestStudySinglePass pins the PR's acceptance contract: after the one
// CollectPassive replay, outage detection and tracking are pure readers
// of pipeline outputs — zero further GenerateQueries passes — and the
// detector's events are identical to the old replay-based path.
func TestStudySinglePass(t *testing.T) {
	s, err := NewStudy(testConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CollectPassive(); err != nil {
		t.Fatal(err)
	}
	if got := s.World.Replays(); got != 1 {
		t.Fatalf("CollectPassive used %d replays, want 1", got)
	}

	events, err := s.DetectOutages(6 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tracking(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Geolocation(2); err != nil {
		t.Fatal(err)
	}
	if s.OutageSeries == nil || len(s.OutageSeries.ByAS) == 0 {
		t.Fatal("no outage series recorded during collection")
	}
	if got := s.World.Replays(); got != 1 {
		t.Errorf("analyses replayed the world: %d replays after DetectOutages+Tracking+Geolocation, want 1", got)
	}

	// Equivalence against the replay-based reference (the reference
	// itself replays, which is fine — it is the thing being replaced).
	ref, err := outage.BuildSeries(s.World, 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	want := outage.Detect(ref, outage.DefaultConfig())
	if !reflect.DeepEqual(events, want) {
		t.Errorf("single-pass events %v differ from replay-based %v", events, want)
	}
}
