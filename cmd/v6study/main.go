// Command v6study runs the full reproduction study — passive NTP
// collection over the simulated Internet, the two active comparison
// campaigns, and every analysis of the paper's evaluation — then prints
// the report.
//
// Usage:
//
//	v6study [-seed N] [-scale F] [-days N] [-release FILE]
//
// At -scale 1.0 the run takes on the order of a minute and a few GB of
// RAM; use -scale 0.1 for a quick look.
package main

import (
	"flag"
	"fmt"
	"os"

	"hitlist6"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "deterministic study seed")
		scale   = flag.Float64("scale", 0.25, "population scale (1.0 = full study size)")
		days    = flag.Int("days", 218, "passive collection window in days")
		release = flag.String("release", "", "write the /48-truncated NTP release to this file")
		jsonOut = flag.String("json", "", "write the machine-readable summary to this file")
	)
	flag.Parse()

	cfg := hitlist6.DefaultConfig()
	cfg.Seed = *seed
	cfg.Scale = *scale
	cfg.Days = *days
	if cfg.SliceDay >= cfg.Days {
		cfg.SliceDay = cfg.Days * 2 / 3
	}

	study, err := hitlist6.NewStudy(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "built world: %d devices, %d sites; collecting %d days of NTP traffic...\n",
		len(study.World.Devices()), len(study.World.Sites()), cfg.Days)
	if err := study.Run(); err != nil {
		fatal(err)
	}

	report, err := study.Report()
	if err != nil {
		fatal(err)
	}
	fmt.Println(report)

	if *jsonOut != "" {
		sm, err := study.Summarize()
		if err != nil {
			fatal(err)
		}
		raw, err := sm.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, raw, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote summary to %s\n", *jsonOut)
	}

	if *release != "" {
		rel, err := study.ReleaseNTP()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*release, []byte(rel), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote /48 release to %s\n", *release)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "v6study:", err)
	os.Exit(1)
}
