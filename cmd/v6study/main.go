// Command v6study runs the full reproduction study — passive NTP
// collection over the simulated Internet, the two active comparison
// campaigns, and every analysis of the paper's evaluation — then prints
// the report.
//
// Usage:
//
//	v6study [-seed N] [-scale F] [-days N] [-release FILE]
//
// At -scale 1.0 the run takes on the order of a minute and a few GB of
// RAM; use -scale 0.1 for a quick look. With -debug.listen set, the run
// is observable while it executes: /metrics serves the ingest, fold and
// report-section series of the study's telemetry registry, /healthz and
// /readyz report progress (ready once the report is rendered), and
// /debug/pprof/ exposes profiles — the knob to reach for when a
// full-scale run needs a CPU profile mid-flight.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"

	"hitlist6"
	"hitlist6/internal/telemetry"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "deterministic study seed")
		scale     = flag.Float64("scale", 0.25, "population scale (1.0 = full study size)")
		days      = flag.Int("days", 218, "passive collection window in days")
		release   = flag.String("release", "", "write the /48-truncated NTP release to this file")
		jsonOut   = flag.String("json", "", "write the machine-readable summary to this file")
		debugAddr = flag.String("debug.listen", "", "serve /metrics, /healthz, /readyz and /debug/pprof on this address while the study runs")
		logLevel  = flag.String("log.level", "info", "log threshold: debug, info, warn or error")
		logFormat = flag.String("log.format", "text", "log encoding: text or json")
	)
	flag.Parse()

	log, err := telemetry.NewLogger(telemetry.LogOptions{Level: *logLevel, Format: *logFormat})
	if err != nil {
		fatal(err)
	}

	cfg := hitlist6.DefaultConfig()
	cfg.Seed = *seed
	cfg.Scale = *scale
	cfg.Days = *days
	if cfg.SliceDay >= cfg.Days {
		cfg.SliceDay = cfg.Days * 2 / 3
	}

	health := telemetry.NewHealth()
	if *debugAddr != "" {
		reg := telemetry.NewRegistry()
		cfg.Telemetry = reg
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/healthz", health.LivenessHandler())
		mux.Handle("/readyz", health.ReadinessHandler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(err)
		}
		go func() {
			if err := http.Serve(ln, mux); err != nil {
				log.Error("debug http", "error", err)
			}
		}()
		log.Info("debug surface up", "addr", ln.Addr().String())
	}

	study, err := hitlist6.NewStudy(cfg)
	if err != nil {
		fatal(err)
	}
	log.Info("built world; collecting",
		"devices", len(study.World.Devices()), "sites", len(study.World.Sites()), "days", cfg.Days)
	health.SetNotReady("collecting")
	if err := study.Run(); err != nil {
		fatal(err)
	}

	health.SetNotReady("rendering report")
	report, err := study.Report()
	if err != nil {
		fatal(err)
	}
	health.SetReady()
	fmt.Println(report)

	if *jsonOut != "" {
		sm, err := study.Summarize()
		if err != nil {
			fatal(err)
		}
		raw, err := sm.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, raw, 0o644); err != nil {
			fatal(err)
		}
		log.Info("wrote summary", "path", *jsonOut)
	}

	if *release != "" {
		rel, err := study.ReleaseNTP()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*release, []byte(rel), 0o644); err != nil {
			fatal(err)
		}
		log.Info("wrote /48 release", "path", *release)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "v6study:", err)
	os.Exit(1)
}
