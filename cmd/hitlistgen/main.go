// Command hitlistgen builds the three comparison datasets (passive NTP,
// active IPv6-Hitlist-style, CAIDA routed /48), prints the Table 1
// comparison, and optionally writes each dataset's /48-truncated release
// file — the sharing format the paper's ethics discussion mandates.
//
// Usage:
//
//	hitlistgen [-seed N] [-scale F] [-days N] [-outdir DIR]
//
//lint:durable-path -outdir writes the release artifacts
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"hitlist6"
	"hitlist6/internal/hitlist"
)

func main() {
	var (
		seed   = flag.Int64("seed", 1, "deterministic seed")
		scale  = flag.Float64("scale", 0.25, "population scale")
		days   = flag.Int("days", 90, "study length in days")
		outdir = flag.String("outdir", "", "write /48 release files into this directory")
	)
	flag.Parse()

	cfg := hitlist6.DefaultConfig()
	cfg.Seed = *seed
	cfg.Scale = *scale
	cfg.Days = *days
	if cfg.SliceDay >= cfg.Days {
		cfg.SliceDay = cfg.Days / 2
	}

	study, err := hitlist6.NewStudy(cfg)
	if err != nil {
		fatal(err)
	}
	if err := study.Run(); err != nil {
		fatal(err)
	}
	t1, err := study.Table1()
	if err != nil {
		fatal(err)
	}
	fmt.Println(t1.Render())
	fmt.Printf("Hitlist alias list: %d aliased /64s; active probes sent: %d\n",
		study.Hitlist.Aliases.Len(), study.Hitlist.ProbesSent)

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fatal(err)
		}
		rel, err := study.ReleaseNTP()
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(*outdir, "ntp-release-48.txt")
		if err := os.WriteFile(path, []byte(rel), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)

		// Binary datasets for the `dataset` tool; note these carry full
		// addresses and are for local analysis, not publication.
		for name, d := range map[string]*hitlist.Dataset{
			"ntp.hl6":     study.NTP,
			"hitlist.hl6": study.Hitlist.Dataset,
			"caida.hl6":   study.CAIDA,
		} {
			p := filepath.Join(*outdir, name)
			f, err := os.Create(p)
			if err != nil {
				fatal(err)
			}
			if _, err := d.WriteTo(f); err != nil {
				//lint:durable best-effort cleanup before the fatal exit reports the write error
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%d addresses)\n", p, d.Len())
		}

		// The alias list in the Hitlist service's textual format.
		ap := filepath.Join(*outdir, "aliased-prefixes.txt")
		af, err := os.Create(ap)
		if err != nil {
			fatal(err)
		}
		if _, err := study.Hitlist.Aliases.WriteTo(af); err != nil {
			//lint:durable best-effort cleanup before the fatal exit reports the write error
			af.Close()
			fatal(err)
		}
		if err := af.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", ap)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hitlistgen:", err)
	os.Exit(1)
}
