package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestBrokenPackageFails runs the binary's guts over the fixture
// carrying the two acceptance violations — a determinism-critical map
// range and a *string field in a slab struct — and demands exit 1 with
// both findings in the output.
func TestBrokenPackageFails(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"./testdata/src/broken"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	text := out.String()
	for _, want := range []string{"range over map", "not pointer-free", "*string"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

// TestBrokenJSON checks the machine-readable mode: a JSON array of
// findings with file/line/analyzer/message populated.
func TestBrokenJSON(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "./testdata/src/broken"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, errb.String())
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("decoding -json output: %v\n%s", err, out.String())
	}
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2: %+v", len(diags), diags)
	}
	analyzers := map[string]bool{}
	for _, d := range diags {
		if d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("incomplete finding: %+v", d)
		}
		analyzers[d.Analyzer] = true
	}
	if !analyzers["mapiter"] || !analyzers["noptrslab"] {
		t.Errorf("findings = %+v, want one mapiter and one noptrslab", diags)
	}
}

// TestCleanPackagePasses demands exit 0 and empty stdout on code with
// nothing to flag.
func TestCleanPackagePasses(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"./testdata/src/clean"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected empty output, got:\n%s", out.String())
	}
}

// TestCleanJSONShape pins the clean-tree -json contract CI scripts
// rely on: an empty array, not null.
func TestCleanJSONShape(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "./testdata/src/clean"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr: %s", code, errb.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}
}

// TestBadPatternIsOperationalFailure distinguishes "findings" from
// "could not analyze": a bogus pattern is exit 2.
func TestBadPatternIsOperationalFailure(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"./testdata/src/does-not-exist"}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit = %d, want 2\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
}
