// Command repolint runs the repo's invariant lint suite
// (internal/lint) over the given package patterns — the multichecker
// CI blocks on. With no patterns it covers the whole module.
//
//	go run ./cmd/repolint ./...          # human-readable findings
//	go run ./cmd/repolint -json ./...    # machine-readable, for CI annotations
//	go run ./cmd/repolint -vet ./...     # also run the curated go vet passes
//
// Exit status: 0 clean, 1 findings, 2 operational failure (bad
// patterns, packages that don't build).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"hitlist6/internal/lint"
)

// vetPasses is the curated go vet subset repolint -vet adds: the
// passes that, like the custom analyzers, guard invariants rather than
// style. CI runs the full `go vet ./...` separately; this flag exists
// so a local `repolint -vet` is one command for the whole story.
var vetPasses = []string{"-atomic", "-copylocks", "-lostcancel", "-sigchanyzer", "-unusedresult", "-defers", "-slog"}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	vet := fs.Bool("vet", false, "also run the curated go vet passes")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	diags := lint.Run(lint.All(), pkgs)

	// Paths come out of the loader absolute; report them relative to
	// the working directory so findings read like compiler output.
	if wd, err := os.Getwd(); err == nil {
		for i := range diags {
			if rel, err := filepath.Rel(wd, diags[i].File); err == nil && !filepath.IsAbs(rel) {
				diags[i].File = rel
				diags[i].Pos.Filename = rel
			}
		}
	}

	status := 0
	if *jsonOut {
		out := diags
		if out == nil {
			out = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "repolint: %d finding(s)\n", len(diags))
		}
		status = 1
	}

	if *vet {
		vetArgs := append(append([]string{"vet"}, vetPasses...), patterns...)
		cmd := exec.Command("go", vetArgs...)
		cmd.Stdout = stdout
		cmd.Stderr = stderr
		if err := cmd.Run(); err != nil {
			if _, ok := err.(*exec.ExitError); !ok {
				fmt.Fprintln(stderr, err)
				return 2
			}
			status = 1
		}
	}
	return status
}
