// Package broken is repolint's end-to-end fixture: the two
// acceptance-checklist violations — a fold-shape map range in
// determinism-critical code and a pointer field in a slab struct —
// that must make the binary exit non-zero.
//
//lint:deterministic
package broken

// entry is a slab element that smuggles a pointer.
//
//lint:slab
type entry struct {
	key  uint64
	name *string
}

// Merge is the fold partial-merge shape with an unsorted map range.
func Merge(dst, src map[uint64]int) map[uint64]int {
	for k, v := range src {
		dst[k] += v
	}
	return dst
}

var _ = entry{}
