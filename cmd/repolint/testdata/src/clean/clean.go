// Package clean is repolint's negative fixture: determinism-critical
// code and a slab type with nothing to flag.
//
//lint:deterministic
package clean

import "sort"

// entry is a pointer-free slab element.
//
//lint:slab
type entry struct {
	key  uint64
	when int64
}

// Keys is the canonical collect-then-sort idiom.
func Keys(m map[uint64]int) []uint64 {
	ks := make([]uint64, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

var _ = entry{}
