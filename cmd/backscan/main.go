// Command backscan reproduces the paper's §4.2 backscanning campaign in
// isolation: build the simulated world, watch NTP clients at five vantage
// servers in 10-minute batches for a window, probe each client and a
// random address in its /64, and report responsiveness and alias
// discovery.
//
// Usage:
//
//	backscan [-seed N] [-scale F] [-days N] [-window N]
package main

import (
	"flag"
	"fmt"
	"os"

	"hitlist6"
)

func main() {
	var (
		seed   = flag.Int64("seed", 1, "deterministic seed")
		scale  = flag.Float64("scale", 0.25, "population scale")
		days   = flag.Int("days", 45, "simulated study length")
		window = flag.Int("window", 7, "backscan window in days")
	)
	flag.Parse()

	cfg := hitlist6.DefaultConfig()
	cfg.Seed = *seed
	cfg.Scale = *scale
	cfg.Days = *days
	cfg.BackscanDays = *window
	if cfg.SliceDay >= cfg.Days {
		cfg.SliceDay = cfg.Days / 2
	}

	study, err := hitlist6.NewStudy(cfg)
	if err != nil {
		fatal(err)
	}
	// Backscanning compares against the Hitlist's alias list, so run the
	// active pipeline too (passive collection is not needed here, but
	// the report wants the alias cross-check).
	if err := study.Run(); err != nil {
		fatal(err)
	}
	bs, err := study.Backscan()
	if err != nil {
		fatal(err)
	}
	fmt.Println(hitlist6.RenderBackscan(bs, study))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "backscan:", err)
	os.Exit(1)
}
