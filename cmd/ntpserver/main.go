// Command ntpserver runs a real stratum-2 NTP server over UDP — the same
// measurement primitive the paper deployed 27 of in the NTP Pool — and
// logs every client source address it observes, i.e. the passive
// collection feed.
//
// Usage:
//
//	ntpserver [-listen ADDR] [-stratum N] [-quiet]
//
// Try it against itself:
//
//	ntpserver -listen '[::1]:11123' &
//	# then in another shell use any SNTP client against [::1]:11123
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"os/signal"
	"time"

	"hitlist6/internal/ntp"
)

func main() {
	var (
		listen    = flag.String("listen", "[::]:123", "UDP listen address")
		stratum   = flag.Int("stratum", 2, "stratum to report")
		quiet     = flag.Bool("quiet", false, "suppress per-query logging")
		rateLimit = flag.Duration("rate-limit", 0,
			"per-source minimum query interval (0 disables; offenders get a RATE kiss-o'-death)")
	)
	flag.Parse()

	var limiter *ntp.RateLimiter
	if *rateLimit > 0 {
		limiter = ntp.NewRateLimiter(*rateLimit, 1<<16)
	}
	count := 0
	srv, err := ntp.NewServer(ntp.ServerConfig{
		Addr:        *listen,
		Stratum:     uint8(*stratum),
		ReferenceID: 0x47505300, // "GPS\0"
		RateLimit:   limiter,
		Observer: func(src netip.Addr, at time.Time) {
			count++
			if !*quiet {
				fmt.Printf("%s %s\n", at.UTC().Format(time.RFC3339Nano), src)
			}
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ntpserver:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ntpserver: stratum-%d server listening on %s\n",
		*stratum, srv.LocalAddr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	reqs, replies, dropped := srv.Stats()
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "ntpserver: close:", err)
	}
	fmt.Fprintf(os.Stderr, "\nntpserver: %d requests, %d replies, %d dropped, %d observed sources\n",
		reqs, replies, dropped, count)
}
