//go:build linux && (amd64 || arm64)

package main

import (
	"net"
	"syscall"
	"unsafe"
)

// mmsgReader drains up to len(hdrs) datagrams per syscall with
// recvmmsg(2) into a preallocated buffer ring — the batched half of the
// wire-speed ingest path. Nothing is allocated per read: the buffers,
// iovecs and message headers are built once and the kernel scatters
// into them on every call.
//
// The stdlib syscall package exposes SYS_RECVMMSG but no wrapper, so
// the message-header vector is hand-built. struct mmsghdr is struct
// msghdr plus a uint32 received-length; on the 64-bit targets this file
// builds for (the tag matches where syscall.Msghdr.Iovlen is uint64),
// Go's natural trailing padding reproduces the C layout exactly.
type mmsgReader struct {
	rc   syscall.RawConn
	bufs [][]byte
	iovs []syscall.Iovec
	hdrs []mmsghdr
}

type mmsghdr struct {
	hdr    syscall.Msghdr
	length uint32
}

// newPlatformBatchReader wires a recvmmsg reader over conn when it is a
// real UDP socket (the raw-connection escape hatch needs one).
func newPlatformBatchReader(conn net.PacketConn, batch, bufSize int) (datagramReader, bool) {
	uc, ok := conn.(*net.UDPConn)
	if !ok {
		return nil, false
	}
	rc, err := uc.SyscallConn()
	if err != nil {
		return nil, false
	}
	r := &mmsgReader{
		rc:   rc,
		bufs: make([][]byte, batch),
		iovs: make([]syscall.Iovec, batch),
		hdrs: make([]mmsghdr, batch),
	}
	for i := range r.bufs {
		r.bufs[i] = make([]byte, bufSize)
		r.iovs[i].Base = &r.bufs[i][0]
		r.iovs[i].SetLen(bufSize)
		r.hdrs[i].hdr.Iov = &r.iovs[i]
		r.hdrs[i].hdr.Iovlen = 1
	}
	return r, true
}

func (r *mmsgReader) readBatch() (int, error) {
	var n int
	var errno syscall.Errno
	// RawConn.Read parks on the netpoller whenever the closure returns
	// false, so MSG_DONTWAIT + EAGAIN composes with the read deadline
	// set by ingestUDP: a deadline expiry surfaces as a timeout error
	// from Read itself, exactly like the portable reader's ReadFrom.
	err := r.rc.Read(func(fd uintptr) bool {
		n0, _, e := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
			uintptr(unsafe.Pointer(&r.hdrs[0])), uintptr(len(r.hdrs)),
			uintptr(syscall.MSG_DONTWAIT), 0, 0)
		if e == syscall.EAGAIN {
			return false
		}
		n, errno = int(n0), e
		return true
	})
	if err != nil {
		return 0, err
	}
	switch errno {
	case 0:
		return n, nil
	case syscall.EINTR:
		// Interrupted before anything arrived: report an empty batch and
		// let the caller's loop come around.
		return 0, nil
	default:
		return 0, errno
	}
}

func (r *mmsgReader) datagram(i int) []byte {
	return r.bufs[i][:r.hdrs[i].length]
}

func (r *mmsgReader) batched() bool { return true }
