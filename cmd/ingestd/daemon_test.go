package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hitlist6/internal/asdb"
	"hitlist6/internal/ingest"
	"hitlist6/internal/telemetry"
)

// newTestDaemon builds a daemon around a small in-memory pipeline, its
// log discarded but still mirrored into the events ring. snapDir == ""
// leaves durable snapshots disabled.
func newTestDaemon(t *testing.T, snapDir string) *daemon {
	t.Helper()
	reg := telemetry.NewRegistry()
	cfg := ingest.DefaultConfig(2)
	cfg.Registry = reg
	pipe, err := ingest.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ring := telemetry.NewEventRing(32)
	logger, err := telemetry.NewLogger(telemetry.LogOptions{Output: io.Discard, Ring: ring})
	if err != nil {
		t.Fatal(err)
	}
	d := &daemon{
		pipe: pipe, reg: reg, health: telemetry.NewHealth(), ring: ring, log: logger,
	}
	reg.GaugeFunc("ingestd_malformed_lines",
		"Input lines that failed to parse since start.",
		func() float64 { return float64(d.badLines.Load()) })
	if snapDir != "" {
		d.snapPath = snapshotPath(snapDir)
	}
	return d
}

// feed pushes a couple of events through the pipeline and waits for the
// live store to see them.
func feed(t *testing.T, d *daemon) {
	t.Helper()
	b := d.pipe.NewBatcher()
	ingestDatagram(b, []byte("1643673600 2001:db8::1 3\n1643673601 2001:db8::2 4\n"), &d.badLines)
	b.Flush()
	d.pipe.SnapshotNow()
	deadline := time.Now().Add(5 * time.Second)
	for d.pipe.Store().NumAddrs() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("store never saw the ingested events")
		}
		time.Sleep(time.Millisecond)
	}
}

// get fetches a path from the test server and returns status, the
// Content-Type header and the body.
func get(t *testing.T, base, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

// TestEndpointContentTypes pins the HTTP contract of every endpoint:
// the JSON endpoints declare application/json, /metrics declares the
// Prometheus 0.0.4 exposition type, and the probe endpoints are plain
// text. Dashboards and scrapers key off these headers.
func TestEndpointContentTypes(t *testing.T) {
	d := newTestDaemon(t, t.TempDir())
	defer d.pipe.Close()
	d.routes = new(asdb.DB) // enable /outages (shape only; no stage present)
	feed(t, d)
	srv := httptest.NewServer(d.newMux())
	defer srv.Close()

	for _, tc := range []struct {
		path string
		ct   string
	}{
		{"/stats", "application/json"},
		{"/outages", "application/json"},
		{"/metrics", telemetry.ContentType},
		{"/healthz", "text/plain; charset=utf-8"},
		{"/readyz", "text/plain; charset=utf-8"},
		{"/debug/events", "application/json"},
	} {
		status, ct, _ := get(t, srv.URL, tc.path)
		wantStatus := http.StatusOK
		if tc.path == "/readyz" { // not ready until main flips it
			wantStatus = http.StatusServiceUnavailable
		}
		if status != wantStatus {
			t.Errorf("%s: status %d, want %d", tc.path, status, wantStatus)
		}
		if ct != tc.ct {
			t.Errorf("%s: Content-Type %q, want %q", tc.path, ct, tc.ct)
		}
	}
}

// TestStatsEndpointShape decodes /stats and checks the JSON keys the
// dashboards rely on survived the registry-backed Metrics rewrite.
func TestStatsEndpointShape(t *testing.T) {
	d := newTestDaemon(t, "")
	defer d.pipe.Close()
	feed(t, d)
	srv := httptest.NewServer(d.newMux())
	defer srv.Close()

	_, _, body := get(t, srv.URL, "/stats")
	var reply statsReply
	if err := json.Unmarshal([]byte(body), &reply); err != nil {
		t.Fatalf("/stats not JSON: %v\n%s", err, body)
	}
	if reply.UniqueAddrs != 2 || reply.Metrics.Processed != 2 {
		t.Errorf("stats = %+v, want 2 addrs / 2 processed", reply)
	}
	for _, key := range []string{
		`"enqueued"`, `"processed"`, `"events_per_sec"`, `"corpus_bytes"`,
		`"checkpoints"`, `"queued_batches"`,
	} {
		if !strings.Contains(body, key) {
			t.Errorf("/stats lost key %s:\n%s", key, body)
		}
	}
}

// TestMetricsEndpoint checks the exposition end to end: well-formed
// 0.0.4 text carrying the pipeline's per-shard and distribution
// families plus the daemon's own gauges.
func TestMetricsEndpoint(t *testing.T) {
	d := newTestDaemon(t, t.TempDir())
	defer d.pipe.Close()
	feed(t, d)
	if _, err := d.pipe.CheckpointFile(d.snapPath); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.newMux())
	defer srv.Close()

	_, _, body := get(t, srv.URL, "/metrics")
	if problems := telemetry.LintExposition(body); len(problems) > 0 {
		t.Errorf("exposition not well-formed: %v", problems)
	}
	for _, want := range []string{
		`ingest_events_processed_total 2`,
		`ingest_queue_depth{shard="0"}`,
		`ingest_queue_depth{shard="1"}`,
		`ingest_batch_seconds_bucket{shard="0",le=`,
		`ingest_batch_events_sum`,
		`ingest_checkpoint_seconds_count 1`,
		`ingest_checkpoint_written_bytes_count 1`,
		`ingest_corpus_addresses 2`,
		`ingestd_malformed_lines 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestDebugEndpoints covers the introspection surface: log records
// appear on /debug/events, and the explicit pprof routes respond on
// the daemon's private mux.
func TestDebugEndpoints(t *testing.T) {
	d := newTestDaemon(t, "")
	defer d.pipe.Close()
	d.log.Info("checkpoint written", "bytes", 123)
	srv := httptest.NewServer(d.newMux())
	defer srv.Close()

	_, _, body := get(t, srv.URL, "/debug/events")
	if !strings.Contains(body, "checkpoint written") || !strings.Contains(body, `"bytes":"123"`) {
		t.Errorf("/debug/events missing the logged record:\n%s", body)
	}

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		if status, _, _ := get(t, srv.URL, path); status != http.StatusOK {
			t.Errorf("%s: status %d", path, status)
		}
	}
}

// TestSnapshotEndpointMethods pins /snapshot's method handling: GET is
// rejected, POST writes and reports the checkpoint.
func TestSnapshotEndpointMethods(t *testing.T) {
	d := newTestDaemon(t, t.TempDir())
	defer d.pipe.Close()
	feed(t, d)
	srv := httptest.NewServer(d.newMux())
	defer srv.Close()

	if status, _, _ := get(t, srv.URL, "/snapshot"); status != http.StatusMethodNotAllowed {
		t.Errorf("GET /snapshot: status %d, want 405", status)
	}
	resp, err := http.Post(srv.URL+"/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reply snapshotReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.Path != d.snapPath || reply.Bytes <= 0 {
		t.Errorf("snapshot reply %+v", reply)
	}
}

// TestGracefulShutdown drives the full drain: the readiness gate flips,
// the (fake) source is stopped and awaited, the final checkpoint lands
// on disk restorable, and the HTTP listener refuses new connections.
func TestGracefulShutdown(t *testing.T) {
	d := newTestDaemon(t, t.TempDir())
	feed(t, d)
	d.health.SetReady()

	// A stand-in source: stopSource signals it, and it closes sourceDone
	// after one last flush — the same contract ingestUDP follows.
	stop := make(chan struct{})
	d.sourceDone = make(chan struct{})
	d.stopSource = func() { close(stop) }
	go func() {
		defer close(d.sourceDone)
		<-stop
		b := d.pipe.NewBatcher()
		ingestDatagram(b, []byte("1643673700 2001:db8::99 1\n"), &d.badLines)
		b.Flush()
	}()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: d.newMux()}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	if status, _, _ := get(t, base, "/readyz"); status != http.StatusOK {
		t.Fatalf("ready daemon reports %d", status)
	}

	d.shutdown(srv)

	if ready, reason := d.health.Ready(); ready || reason != "shutting down" {
		t.Errorf("after shutdown: ready=%v reason=%q", ready, reason)
	}
	select {
	case <-d.sourceDone:
	default:
		t.Error("shutdown returned before the source stopped")
	}
	// The final checkpoint contains everything, including the event the
	// source flushed during the drain.
	c, err := ingest.RestoreFile(d.snapPath)
	if err != nil {
		t.Fatalf("final checkpoint unreadable: %v", err)
	}
	if c == nil || c.NumAddrs() != 3 {
		t.Fatalf("final checkpoint incomplete: %+v", c)
	}
	// Listener closed: fresh connections must fail.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("HTTP listener still accepting after shutdown")
	}
	d.pipe.Close()
}
