package main

import (
	"errors"
	"log/slog"
	"net"
	"sync/atomic"
	"time"

	"hitlist6/internal/ingest"
	"hitlist6/internal/telemetry"
)

const (
	// udpReadBatch is how many datagrams one readBatch call may return —
	// the recvmmsg vector length on Linux. 32 keeps the buffer ring at
	// 2 MiB while cutting per-datagram syscall overhead ~30x at
	// saturation.
	udpReadBatch = 32
	// udpBufSize accepts any UDP payload (64 KiB covers the maximum).
	udpBufSize = 1 << 16
	// udpFlushEvery bounds how long parsed events may sit in the
	// producer's partial batches before the live view sees them. Under
	// load, batches flush themselves at BatchSize and this only trims
	// the tail; when traffic trickles, the read deadline fires at this
	// cadence and flushes whatever arrived.
	udpFlushEvery = 50 * time.Millisecond
)

// datagramReader is the socket-facing half of the UDP source: one
// blocking call that surfaces one or more datagrams from a reused
// buffer ring. Two implementations exist — the portable single-recvfrom
// reader below, and the Linux recvmmsg reader in udp_linux.go that
// drains up to udpReadBatch datagrams per syscall. Both honor the
// connection's read deadline, which is what the adaptive flush rides
// on. TestUDPReaderEquivalence holds the two to identical results.
type datagramReader interface {
	// readBatch blocks until at least one datagram, an error, or the
	// read deadline; it returns how many datagrams arrived.
	readBatch() (int, error)
	// datagram returns the i-th payload of the last readBatch, valid
	// until the next call.
	datagram(i int) []byte
	// batched reports whether the reader can return more than one
	// datagram per syscall.
	batched() bool
}

// newDatagramReader picks the best reader for this platform and socket:
// recvmmsg when the build and the connection support it, one-at-a-time
// reads otherwise.
func newDatagramReader(conn net.PacketConn) datagramReader {
	if r, ok := newPlatformBatchReader(conn, udpReadBatch, udpBufSize); ok {
		return r
	}
	return newSingleReader(conn, udpBufSize)
}

// singleReader is the portable datagramReader: one ReadFrom per call.
type singleReader struct {
	conn net.PacketConn
	buf  []byte
	n    int
}

func newSingleReader(conn net.PacketConn, bufSize int) *singleReader {
	return &singleReader{conn: conn, buf: make([]byte, bufSize)}
}

func (r *singleReader) readBatch() (int, error) {
	n, _, err := r.conn.ReadFrom(r.buf)
	if err != nil {
		return 0, err
	}
	r.n = n
	return 1, nil
}

func (r *singleReader) datagram(i int) []byte {
	if i != 0 {
		panic("singleReader holds one datagram")
	}
	return r.buf[:r.n]
}

func (r *singleReader) batched() bool { return false }

// udpSource is the socket-level instrumentation of the UDP ingest path:
// datagram and parsed-event counters, the per-read batch-size
// distribution (how much recvmmsg is actually amortizing), and a
// recent-rate window over events seen at the socket — the wire-side
// twin of the pipeline's processed-events rate, so a gap between the
// two points at queueing, not parsing.
type udpSource struct {
	datagrams *telemetry.Counter
	events    *telemetry.Counter
	batchSize *telemetry.Histogram
	recent    telemetry.RateWindow
}

func newUDPSource(reg *telemetry.Registry) *udpSource {
	u := &udpSource{
		datagrams: reg.Counter("ingest_udp_datagrams_total",
			"UDP event datagrams received."),
		events: reg.Counter("ingest_udp_events_total",
			"Events parsed from UDP datagrams at the socket."),
		batchSize: reg.Histogram("ingest_udp_batch_events",
			"Datagrams received per batched socket read.",
			telemetry.CountBuckets()),
	}
	reg.GaugeFunc("ingest_udp_recent_events_per_sec",
		"Socket-level event arrival rate over the trailing window.",
		u.recentEventsPerSec)
	return u
}

// recentEventsPerSec samples the event counter into the rate window and
// returns the trailing-window arrival rate. Poll-driven: every scrape
// of /metrics or /stats contributes a sample.
func (u *udpSource) recentEventsPerSec() float64 {
	rate, ok := u.recent.Tick(time.Now(), u.events.Value())
	if !ok {
		return 0
	}
	return rate
}

// udpStatsReply is the "udp" block of /stats.
type udpStatsReply struct {
	Datagrams          uint64  `json:"datagrams"`
	Events             uint64  `json:"events"`
	RecentEventsPerSec float64 `json:"recent_events_per_sec"`
}

// statsReply renders the source for /stats; nil (daemon not ingesting
// from a socket) renders as an absent block.
func (u *udpSource) statsReply() *udpStatsReply {
	if u == nil {
		return nil
	}
	return &udpStatsReply{
		Datagrams:          u.datagrams.Value(),
		Events:             u.events.Value(),
		RecentEventsPerSec: u.recentEventsPerSec(),
	}
}

// ingestUDP feeds datagrams into the pipeline until the socket closes
// (a read error — the shutdown path closes the socket to get here).
// Reads are batched (r decides how hard) and flushes are adaptive:
// full batches flush themselves, and the read deadline fires every
// udpFlushEvery to push the partial tail, so the live view lags the
// wire by at most one flush interval no matter the traffic shape. The
// final flush makes the last partial batch durable before sourceDone
// releases the shutdown sequence to checkpoint.
func ingestUDP(pipe *ingest.Pipeline, conn net.PacketConn, r datagramReader,
	badLines *atomic.Uint64, log *slog.Logger, u *udpSource) {
	b := pipe.NewBatcher()
	defer b.Flush()
	lastFlush := time.Now()
	dirty := false
	for {
		if err := conn.SetReadDeadline(lastFlush.Add(udpFlushEvery)); err != nil {
			log.Info("udp source closed", "error", err)
			return
		}
		n, err := r.readBatch()
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if dirty {
					b.Flush()
					dirty = false
				}
				lastFlush = time.Now()
				continue
			}
			log.Info("udp source closed", "error", err)
			return
		}
		added := 0
		for i := 0; i < n; i++ {
			added += ingestDatagram(b, r.datagram(i), badLines)
		}
		u.datagrams.Add(uint64(n))
		u.batchSize.Observe(float64(n))
		if added > 0 {
			u.events.Add(uint64(added))
			dirty = true
		}
		if now := time.Now(); now.Sub(lastFlush) >= udpFlushEvery {
			if dirty {
				b.Flush()
				dirty = false
			}
			lastFlush = now
		}
	}
}
