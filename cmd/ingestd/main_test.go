package main

import (
	"sync/atomic"
	"testing"
	"time"

	"hitlist6/internal/ingest"
)

// TestIngestDatagramSkipsBlankFragments is the regression test for the
// UDP framing bug: splitting a newline-terminated datagram on '\n'
// yields an empty trailing fragment, which must not count as a parse
// error. CRLF framing, whitespace-only lines and comments are equally
// benign; only genuinely malformed lines are bad.
func TestIngestDatagramSkipsBlankFragments(t *testing.T) {
	pipe, err := ingest.New(ingest.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	b := pipe.NewBatcher()
	var bad atomic.Uint64

	if n := ingestDatagram(b, []byte("1643673600 2001:db8::1 3\n1643673601 2001:db8::2\n"), &bad); n != 2 {
		t.Errorf("newline-terminated datagram: %d events, want 2", n)
	}
	if bad.Load() != 0 {
		t.Errorf("trailing empty fragment counted as %d parse errors", bad.Load())
	}

	if n := ingestDatagram(b, []byte("1643673602 2001:db8::3 1\r\n\r\n# comment\n   \n"), &bad); n != 1 {
		t.Errorf("CRLF/blank/comment datagram: %d events, want 1", n)
	}
	if bad.Load() != 0 {
		t.Errorf("benign lines counted as %d parse errors", bad.Load())
	}

	if n := ingestDatagram(b, []byte("garbage\n1643673603 2001:db8::4\n"), &bad); n != 1 || bad.Load() != 1 {
		t.Errorf("malformed line: %d events, %d bad (want 1 and 1)", n, bad.Load())
	}

	b.Flush()
	if got := pipe.Close().TotalObservations(); got != 4 {
		t.Errorf("merged %d observations, want 4", got)
	}
}

// TestStatsCarriesCorpusTelemetry pins the /stats reply contract: after
// events land in the merged store, the embedded metrics must expose the
// memory telemetry of the flat corpus layout alongside the rates.
func TestStatsCarriesCorpusTelemetry(t *testing.T) {
	pipe, err := ingest.New(ingest.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	b := pipe.NewBatcher()
	var bad atomic.Uint64
	ingestDatagram(b, []byte("1643673600 2001:db8::1 3\n1643673601 2001:db8::2 4\n"), &bad)
	b.Flush()
	pipe.SnapshotNow()
	// The merge completes asynchronously after the shard handoff.
	deadline := time.Now().Add(5 * time.Second)
	for pipe.Store().NumAddrs() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("store never saw the ingested events")
		}
		time.Sleep(time.Millisecond)
	}
	reply := buildStats(pipe, nil)
	if reply.UniqueAddrs != 2 {
		t.Fatalf("unique addrs %d, want 2", reply.UniqueAddrs)
	}
	if reply.Metrics.CorpusBytes == 0 || reply.Metrics.BytesPerAddr <= 0 {
		t.Errorf("corpus telemetry missing: %+v", reply.Metrics)
	}
	if reply.UDP != nil {
		t.Errorf("udp block %+v on a daemon with no socket source", reply.UDP)
	}
	pipe.Close()
}

// TestDetectOutagesEndpointShape exercises the /outages reply builder
// against a pipeline with no outage stage (detection disabled path) —
// it must degrade to an empty reply rather than panic.
func TestDetectOutagesEndpointShape(t *testing.T) {
	pipe, err := ingest.New(ingest.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	reply := detectOutages(pipe, 0)
	if reply == nil || len(reply.Events) != 0 || reply.Bins != 0 {
		t.Errorf("empty-pipeline reply: %+v", reply)
	}
}
