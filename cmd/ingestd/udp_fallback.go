//go:build !linux || (!amd64 && !arm64)

package main

import "net"

// newPlatformBatchReader has no batched implementation off Linux (or on
// 32-bit targets, where syscall.Msghdr's layout differs): the UDP
// source falls back to the portable single-datagram reader.
func newPlatformBatchReader(net.PacketConn, int, int) (datagramReader, bool) {
	return nil, false
}
