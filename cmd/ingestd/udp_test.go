package main

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"hitlist6/internal/collector"
	"hitlist6/internal/ingest"
	"hitlist6/internal/telemetry"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// testPayloads renders n datagrams of several valid event lines each
// (with some framing noise sprinkled in), plus the flat list of lines
// a reference collector can replay.
func testPayloads(n int) (payloads [][]byte, lines []string) {
	for i := 0; i < n; i++ {
		var buf bytes.Buffer
		for j := 0; j < 5; j++ {
			line := fmt.Sprintf("%d 2001:db8:%x::%x %d", 1643068800+i, i%7, j+1, (i+j)%27)
			lines = append(lines, line)
			buf.WriteString(line)
			if j%2 == 0 {
				buf.WriteString("\r\n") // CRLF framing must parse too
			} else {
				buf.WriteByte('\n')
			}
		}
		buf.WriteString("# comment line\n\n") // noise: skipped, not counted bad
		payloads = append(payloads, buf.Bytes())
	}
	return payloads, lines
}

// runUDPIngest loads a fresh socket's receive buffer with payloads,
// drains it through ingestUDP using the given reader, and returns the
// merged corpus plus the socket telemetry. Sending everything before
// the reader starts keeps the test deterministic: nothing races the
// kernel buffer (the payload volume stays far under its default size).
func runUDPIngest(t *testing.T, mkReader func(net.PacketConn) datagramReader, payloads [][]byte) (*collector.Collector, *udpSource, uint64) {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sender, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads {
		if _, err := sender.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	sender.Close()

	cfg := ingest.DefaultConfig(2)
	pipe, err := ingest.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u := newUDPSource(telemetry.NewRegistry())
	var bad atomic.Uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		ingestUDP(pipe, pc, mkReader(pc), &bad, discardLogger(), u)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for u.datagrams.Value() < uint64(len(payloads)) {
		if time.Now().After(deadline) {
			t.Fatalf("reader saw %d/%d datagrams", u.datagrams.Value(), len(payloads))
		}
		time.Sleep(time.Millisecond)
	}
	pc.Close()
	<-done
	if n := bad.Load(); n != 0 {
		t.Errorf("%d lines counted malformed in a clean stream", n)
	}
	return pipe.Close(), u, bad.Load()
}

func canonical(t *testing.T, c *collector.Collector) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.WriteCanonical(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestIngestUDPLoopback runs the platform's preferred reader end to
// end: every line of every datagram must land in the merged corpus,
// byte-identical to a serial replay of the same lines, with the socket
// telemetry accounting for every datagram and event.
func TestIngestUDPLoopback(t *testing.T) {
	payloads, lines := testPayloads(40)
	serial := collector.New()
	for _, line := range lines {
		ev, err := ingest.ParseEvent(line)
		if err != nil {
			t.Fatal(err)
		}
		serial.ObserveUnix(ev.Addr, ev.Time, int(ev.Server))
	}

	merged, u, _ := runUDPIngest(t, newDatagramReader, payloads)
	if got, want := canonical(t, merged), canonical(t, serial); !bytes.Equal(got, want) {
		t.Errorf("UDP-ingested corpus differs from serial replay (%d vs %d bytes)", len(got), len(want))
	}
	if got := u.datagrams.Value(); got != uint64(len(payloads)) {
		t.Errorf("datagrams counter %d, want %d", got, len(payloads))
	}
	if got := u.events.Value(); got != uint64(len(lines)) {
		t.Errorf("socket events counter %d, want %d", got, len(lines))
	}
}

// TestUDPReaderEquivalence holds the recvmmsg reader and the portable
// single-datagram reader to identical results over the same datagram
// stream — the license for the build tags: whichever reader a platform
// gets, the corpus is the same. Skips where only one reader exists.
func TestUDPReaderEquivalence(t *testing.T) {
	probe, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	_, hasBatch := newPlatformBatchReader(probe, udpReadBatch, udpBufSize)
	probe.Close()
	if !hasBatch {
		t.Skip("no batched reader on this platform; nothing to compare")
	}

	payloads, _ := testPayloads(60)
	mergedBatch, uBatch, _ := runUDPIngest(t, func(pc net.PacketConn) datagramReader {
		r, ok := newPlatformBatchReader(pc, udpReadBatch, udpBufSize)
		if !ok {
			t.Fatal("batched reader vanished")
		}
		return r
	}, payloads)
	mergedSingle, uSingle, _ := runUDPIngest(t, func(pc net.PacketConn) datagramReader {
		return newSingleReader(pc, udpBufSize)
	}, payloads)

	if got, want := canonical(t, mergedBatch), canonical(t, mergedSingle); !bytes.Equal(got, want) {
		t.Errorf("recvmmsg and fallback readers produced different corpora (%d vs %d bytes)", len(got), len(want))
	}
	if uBatch.events.Value() != uSingle.events.Value() {
		t.Errorf("socket event counts differ: recvmmsg %d, fallback %d",
			uBatch.events.Value(), uSingle.events.Value())
	}
}

// TestIngestUDPIdleFlush pins the adaptive flush: a single datagram on
// an otherwise idle socket must reach the live store within a few flush
// ticks — the old per-datagram-Flush behavior is gone, so only the
// deadline-driven flush can publish it.
func TestIngestUDPIdleFlush(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ingest.DefaultConfig(1)
	cfg.SnapshotInterval = 10 * time.Millisecond
	pipe, err := ingest.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u := newUDPSource(telemetry.NewRegistry())
	var bad atomic.Uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		ingestUDP(pipe, pc, newDatagramReader(pc), &bad, discardLogger(), u)
	}()

	sender, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sender.Write([]byte("1643068800 2001:db8::1 3\n")); err != nil {
		t.Fatal(err)
	}
	sender.Close()

	deadline := time.Now().Add(5 * time.Second)
	for pipe.Store().NumAddrs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle flush never published the event to the live view")
		}
		time.Sleep(time.Millisecond)
	}
	pc.Close()
	<-done
	pipe.Close()
}

// BenchmarkUDPIngest measures events/sec through the whole socket path
// on loopback: datagrams of 20 event lines each, read by the platform's
// preferred reader, parsed and folded by the pipeline. The sender
// paces itself against the socket-level event counter so the kernel
// receive buffer never overflows (UDP would silently drop, corrupting
// the measurement); the reported rate is events actually processed.
func BenchmarkUDPIngest(b *testing.B) {
	const linesPerDatagram = 20
	var payload bytes.Buffer
	for j := 0; j < linesPerDatagram; j++ {
		fmt.Fprintf(&payload, "%d 2001:db8:%x::%x %d\n", 1643068800+j, j, j+1, j%27)
	}

	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	pipe, err := ingest.New(ingest.DefaultConfig(0))
	if err != nil {
		b.Fatal(err)
	}
	u := newUDPSource(telemetry.NewRegistry())
	var bad atomic.Uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		ingestUDP(pipe, pc, newDatagramReader(pc), &bad, discardLogger(), u)
	}()
	sender, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.SetBytes(int64(payload.Len()) / linesPerDatagram)
	b.ResetTimer()
	sent := 0
	for sent < b.N {
		if _, err := sender.Write(payload.Bytes()); err != nil {
			b.Fatal(err)
		}
		sent += linesPerDatagram
		// Keep at most ~2000 events in flight: well under the default
		// receive buffer, so nothing is ever dropped.
		for sent-int(u.events.Value()) > 2000 {
			time.Sleep(50 * time.Microsecond)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for u.events.Value() < uint64(sent) {
		if time.Now().After(deadline) {
			b.Fatalf("socket saw %d/%d events", u.events.Value(), sent)
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(u.events.Value())/secs, "events/sec")
	}
	sender.Close()
	pc.Close()
	<-done
	pipe.Close()
	if n := bad.Load(); n != 0 {
		b.Fatalf("%d malformed lines in a clean benchmark stream", n)
	}
}
