// Command ingestd runs the sharded ingest pipeline as a daemon: it
// consumes an NTP query-event stream — a file (or stdin), a UDP socket,
// or a simulated replay — fans it out across collector shards with
// inline enrichment (addressing categories, HyperLogLog cardinality,
// the per-AS outage series), and serves live summaries over HTTP. It is
// the single-vantage deployment shape of the paper's 27-server passive
// collection: one ingestd per pool server, snapshots merging into the
// live store that the stat endpoints read.
//
// The outage detector is the paper's headline hitlist application run
// live: the same single pass that builds the corpus feeds a per-AS
// time-binned series, and a periodic detector scans its rolling window
// for ASes that went dark — served at /outages, no probes sent.
//
// Event lines are `<unix-seconds> <ipv6-address> [<server-index>]`.
//
// Usage:
//
//	ingestd -file events.log            # replay a file, then keep serving
//	ingestd -file -                     # read stdin
//	ingestd -udp :9123                  # ingest datagrams of event lines
//	ingestd -sim -sim.scale 0.1         # generate a simnet replay stream
//
// Then:
//
//	curl http://localhost:8629/stats
//	curl http://localhost:8629/outages
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/asdb"
	"hitlist6/internal/collector"
	"hitlist6/internal/ingest"
	"hitlist6/internal/ntppool"
	"hitlist6/internal/outage"
	"hitlist6/internal/simnet"
)

func main() {
	var (
		listen    = flag.String("listen", ":8629", "HTTP stats listen address")
		file      = flag.String("file", "", "event file to replay ('-' for stdin)")
		udp       = flag.String("udp", "", "UDP listen address for event datagrams")
		sim       = flag.Bool("sim", false, "generate a simnet replay stream instead of external input")
		simScale  = flag.Float64("sim.scale", 0.1, "simnet population scale")
		simDays   = flag.Int("sim.days", 30, "simnet study window in days")
		simSeed   = flag.Int64("sim.seed", 1, "simnet world seed")
		shards    = flag.Int("shards", 0, "collector shards (0 = one per CPU, capped at 8)")
		batch     = flag.Int("batch", 0, "events per batch (0 = default)")
		queue     = flag.Int("queue", 0, "per-shard queue depth in batches (0 = default)")
		drop      = flag.Bool("drop", false, "shed events when a shard queue is full instead of blocking")
		snapshot  = flag.Duration("snapshot", 2*time.Second, "live-view snapshot interval")
		hllPrec   = flag.Uint("hll", 14, "HyperLogLog precision (4-16)")
		serverCp  = flag.Int("servers", collector.MaxServers, "vantage-server attribution cap")
		outBin    = flag.Duration("outage.bin", time.Hour, "outage series bin width (whole seconds; 0 disables the outage consumer)")
		outEvery  = flag.Duration("outage.every", 30*time.Second, "how often the live outage detector rescans the series")
		outWindow = flag.Int("outage.window", 0, "rolling detection window in complete bins (0 = whole series)")
		snapDir   = flag.String("snapshot.dir", "", "directory for durable corpus snapshots (restore on start, checkpoint while running)")
		snapEvery = flag.Duration("snapshot.every", 0, "how often to checkpoint the corpus into -snapshot.dir (0 = only on /snapshot)")
	)
	flag.Parse()

	sources := 0
	for _, on := range []bool{*file != "", *udp != "", *sim} {
		if on {
			sources++
		}
	}
	if sources != 1 {
		fmt.Fprintln(os.Stderr, "ingestd: exactly one of -file, -udp, -sim required")
		flag.Usage()
		os.Exit(2)
	}
	if *hllPrec < 4 || *hllPrec > 16 {
		fmt.Fprintf(os.Stderr, "ingestd: -hll %d out of [4,16]\n", *hllPrec)
		os.Exit(2)
	}
	if *outBin < 0 || *outBin%time.Second != 0 {
		fmt.Fprintf(os.Stderr, "ingestd: -outage.bin %v must be a non-negative whole number of seconds\n", *outBin)
		os.Exit(2)
	}
	if *outBin > 0 && *outEvery <= 0 {
		fmt.Fprintf(os.Stderr, "ingestd: -outage.every %v must be positive\n", *outEvery)
		os.Exit(2)
	}

	// The outage consumer needs a routing table to attribute events to
	// ASes. BuildASDB yields the same table a full world build would
	// (attribution-identical; see simnet.BuildASDB), without blocking
	// daemon startup on world construction — the sim replay builds its
	// world later, on the replay goroutine.
	var routes *asdb.DB
	if *outBin > 0 {
		db, err := simnet.BuildASDB(simnet.DefaultConfig(*simSeed, 1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "ingestd: routing table:", err)
			os.Exit(1)
		}
		routes = db
	}

	if *snapEvery < 0 {
		fmt.Fprintf(os.Stderr, "ingestd: -snapshot.every %v must be non-negative\n", *snapEvery)
		os.Exit(2)
	}
	if *snapEvery > 0 && *snapDir == "" {
		fmt.Fprintln(os.Stderr, "ingestd: -snapshot.every needs -snapshot.dir")
		os.Exit(2)
	}

	cfg := ingest.Config{
		Shards:           *shards,
		BatchSize:        *batch,
		QueueDepth:       *queue,
		DropOnFull:       *drop,
		SnapshotInterval: *snapshot,
		ServerCap:        *serverCp,
		Stages: []ingest.StageFactory{
			ingest.Categories(),
			ingest.Cardinality(uint8(*hllPrec)),
		},
	}
	snapPath := ""
	if *snapDir != "" {
		if err := os.MkdirAll(*snapDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "ingestd: snapshot dir:", err)
			os.Exit(1)
		}
		snapPath = snapshotPath(*snapDir)
		cfg.Seed = restoreOrEmpty(snapPath, func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		})
		cfg.CheckpointPath = snapPath
		cfg.CheckpointInterval = *snapEvery
	}
	if routes != nil {
		cfg.Stages = append(cfg.Stages, ingest.OutageSeriesLive(routes, *outBin))
	}
	pipe, err := ingest.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ingestd:", err)
		os.Exit(1)
	}

	var latestOutages atomic.Pointer[outagesReply]
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(buildStats(pipe)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/outages", func(w http.ResponseWriter, _ *http.Request) {
		if routes == nil {
			http.Error(w, "outage detection disabled (-outage.bin 0)", http.StatusNotFound)
			return
		}
		reply := latestOutages.Load()
		if reply == nil {
			// Nothing detected yet (first tick pending): scan on demand so
			// the endpoint is never stale-empty.
			reply = detectOutages(pipe, *outWindow)
			latestOutages.Store(reply)
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(reply); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if snapPath == "" {
			http.Error(w, "snapshots disabled (no -snapshot.dir)", http.StatusNotFound)
			return
		}
		if r.Method != http.MethodPost {
			http.Error(w, "POST triggers a snapshot", http.StatusMethodNotAllowed)
			return
		}
		start := time.Now()
		size, err := pipe.CheckpointFile(snapPath)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(snapshotReply{
			Path:   snapPath,
			Bytes:  size,
			Millis: time.Since(start).Milliseconds(),
		}); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	httpLn, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ingestd: listen:", err)
		os.Exit(1)
	}
	go func() {
		if err := http.Serve(httpLn, mux); err != nil {
			fmt.Fprintln(os.Stderr, "ingestd: http:", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "ingestd: %d shards, stats on http://%s/stats\n",
		pipe.NumShards(), httpLn.Addr())

	if routes != nil {
		go func() {
			t := time.NewTicker(*outEvery)
			defer t.Stop()
			for range t.C {
				latestOutages.Store(detectOutages(pipe, *outWindow))
			}
		}()
		fmt.Fprintf(os.Stderr, "ingestd: outage detector live (bin %v, rescan %v) on http://%s/outages\n",
			*outBin, *outEvery, httpLn.Addr())
	}

	var badLines atomic.Uint64
	switch {
	case *file != "":
		if err := ingestFile(pipe, *file, &badLines); err != nil {
			fmt.Fprintln(os.Stderr, "ingestd:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ingestd: stream done (%d malformed lines); serving stats, ^C to exit\n", badLines.Load())
	case *sim:
		go func() {
			n := simReplay(pipe, *simSeed, *simScale, *simDays)
			pipe.SnapshotNow()
			fmt.Fprintf(os.Stderr, "ingestd: sim replay done (%d events); serving stats, ^C to exit\n", n)
		}()
	case *udp != "":
		conn, err := net.ListenPacket("udp", *udp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ingestd: udp:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ingestd: ingesting event datagrams on %s\n", conn.LocalAddr())
		go ingestUDP(pipe, conn, &badLines)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig

	// Graceful exit writes a final checkpoint: everything ingested since
	// the last periodic tick would otherwise be lost to a clean shutdown.
	if snapPath != "" {
		if size, err := pipe.CheckpointFile(snapPath); err != nil {
			fmt.Fprintln(os.Stderr, "ingestd: final checkpoint:", err)
		} else {
			fmt.Fprintf(os.Stderr, "ingestd: final checkpoint: %d bytes to %s\n", size, snapPath)
		}
	}

	m := pipe.Metrics()
	fmt.Fprintf(os.Stderr, "\ningestd: %d processed, %d dropped, %d malformed; unique addrs %d; corpus %.1f MB (%.0f B/addr)\n",
		m.Processed, m.Dropped, badLines.Load(), pipe.Store().NumAddrs(),
		float64(m.CorpusBytes)/(1<<20), m.BytesPerAddr)
}

// snapshotPath is where the durable corpus lives inside -snapshot.dir.
func snapshotPath(dir string) string {
	return filepath.Join(dir, "corpus.snap")
}

// restoreOrEmpty loads the corpus checkpoint for daemon startup. A
// daemon must come up even when its checkpoint is damaged — losing the
// corpus and re-accumulating beats refusing to collect — so missing
// files start empty silently and unreadable/corrupt files start empty
// with a logged warning. (Batch/study runs make the opposite choice:
// see hitlist6.Config.CheckpointPath.)
func restoreOrEmpty(path string, logf func(format string, args ...any)) *collector.Collector {
	c, err := ingest.RestoreFile(path)
	if err != nil {
		logf("ingestd: WARNING: checkpoint %s unusable, starting with an empty corpus: %v", path, err)
		return nil
	}
	if c == nil {
		return nil
	}
	logf("ingestd: restored %d addresses (%d observations) from %s",
		c.NumAddrs(), c.TotalObservations(), path)
	return c
}

// snapshotReply is the /snapshot JSON shape.
type snapshotReply struct {
	Path   string `json:"path"`
	Bytes  int64  `json:"bytes"`
	Millis int64  `json:"millis"`
}

// statsReply is the /stats JSON shape.
type statsReply struct {
	Shards       int                    `json:"shards"`
	Metrics      ingest.MetricsSnapshot `json:"metrics"`
	UniqueAddrs  int                    `json:"unique_addrs"`
	UniqueIIDs   int                    `json:"unique_iids"`
	Observations uint64                 `json:"observations"`
	HLLEstimate  float64                `json:"hll_estimate"`
	Categories   map[string]uint64      `json:"categories"`
}

func buildStats(pipe *ingest.Pipeline) statsReply {
	reply := statsReply{
		Shards:       pipe.NumShards(),
		Metrics:      pipe.Metrics(),
		UniqueAddrs:  pipe.Store().NumAddrs(),
		UniqueIIDs:   pipe.Store().NumIIDs(),
		Observations: pipe.Store().TotalObservations(),
		Categories:   make(map[string]uint64),
	}
	pipe.StageView(func(stages []ingest.Stage) {
		for _, st := range stages {
			switch s := st.(type) {
			case *ingest.HLLStage:
				reply.HLLEstimate = s.H.Estimate()
			case *ingest.CategoryStage:
				for c, n := range s.Counts {
					if n > 0 {
						reply.Categories[addr.Category(c).String()] = n
					}
				}
			}
		}
	})
	return reply
}

// outagesReply is the /outages JSON shape.
type outagesReply struct {
	UpdatedUnix  int64              `json:"updated_unix"`
	Bin          string             `json:"bin"`
	Bins         int                `json:"bins"`
	CompleteBins int                `json:"complete_bins"`
	WindowBins   int                `json:"window_bins,omitempty"`
	ASes         int                `json:"ases"`
	Events       []outageEventReply `json:"events"`
}

// outageEventReply is one detected outage in /outages.
type outageEventReply struct {
	ASN          asdb.ASN  `json:"asn"`
	From         time.Time `json:"from"`
	To           time.Time `json:"to"`
	DarkBins     int       `json:"dark_bins"`
	MedianVolume float64   `json:"median_volume"`
	Summary      string    `json:"summary"`
}

// detectOutages scans the live outage series' rolling window. The stage
// view hands out a deep-copied series, so detection runs entirely off
// the merge lock.
func detectOutages(pipe *ingest.Pipeline, windowBins int) *outagesReply {
	var series *outage.Series
	pipe.StageView(func(stages []ingest.Stage) {
		for _, st := range stages {
			if s, ok := st.(*ingest.OutageSeriesStage); ok {
				series = s.Series()
			}
		}
	})
	reply := &outagesReply{
		UpdatedUnix: time.Now().Unix(),
		WindowBins:  windowBins,
		Events:      []outageEventReply{},
	}
	if series == nil {
		return reply
	}
	series = series.Tail(windowBins)
	reply.Bin = series.Bin.String()
	reply.Bins = series.Bins
	reply.CompleteBins = series.Complete
	reply.ASes = len(series.ByAS)
	for _, e := range outage.Detect(series, outage.DefaultConfig()) {
		reply.Events = append(reply.Events, outageEventReply{
			ASN:          e.ASN,
			From:         e.From,
			To:           e.To,
			DarkBins:     e.DarkBins,
			MedianVolume: e.MedianVolume,
			Summary:      e.String(),
		})
	}
	return reply
}

func ingestFile(pipe *ingest.Pipeline, path string, badLines *atomic.Uint64) error {
	in := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	b := pipe.NewBatcher()
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<16), 1<<16)
	for sc.Scan() {
		ingestLine(b, sc.Bytes(), badLines)
	}
	b.Flush()
	pipe.SnapshotNow()
	return sc.Err()
}

// ingestLine parses one event line into the batcher, tolerating blank
// lines, surrounding whitespace (including the \r of CRLF framing) and
// # comments; only genuinely malformed lines count as bad.
func ingestLine(b *ingest.Batcher, line []byte, badLines *atomic.Uint64) bool {
	line = bytes.TrimSpace(line)
	if len(line) == 0 || line[0] == '#' {
		return false
	}
	ev, err := ingest.ParseEvent(string(line))
	if err != nil {
		badLines.Add(1)
		return false
	}
	b.Add(ev)
	return true
}

// ingestDatagram splits one UDP payload into event lines. Splitting a
// newline-terminated datagram yields an empty trailing fragment, which
// must not count as a parse error — ingestLine skips blanks.
func ingestDatagram(b *ingest.Batcher, buf []byte, badLines *atomic.Uint64) int {
	added := 0
	for _, line := range bytes.Split(buf, []byte{'\n'}) {
		if ingestLine(b, line, badLines) {
			added++
		}
	}
	return added
}

// simReplay builds a simulated world and streams its NTP queries
// through the paper's pool selection into the pipeline, as a
// self-contained demo and load generator.
func simReplay(pipe *ingest.Pipeline, seed int64, scale float64, days int) uint64 {
	wcfg := simnet.DefaultConfig(seed, scale)
	wcfg.Days = days
	w, err := simnet.Build(wcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ingestd: sim:", err)
		return 0
	}
	pool, err := ntppool.New(ntppool.StudyVantages())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ingestd: sim:", err)
		return 0
	}
	stats := ntppool.RunIngest(w, pool, pipe)
	return stats.Queries
}

func ingestUDP(pipe *ingest.Pipeline, conn net.PacketConn, badLines *atomic.Uint64) {
	b := pipe.NewBatcher()
	buf := make([]byte, 1<<16)
	for {
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ingestd: udp read:", err)
			return
		}
		ingestDatagram(b, buf[:n], badLines)
		// Datagram boundaries are natural flush points: the live view
		// should never lag more than one read behind the wire.
		b.Flush()
	}
}
