// Command ingestd runs the sharded ingest pipeline as a daemon: it
// consumes an NTP query-event stream — a file (or stdin), a UDP socket,
// or a simulated replay — fans it out across collector shards with
// inline enrichment (addressing categories, HyperLogLog cardinality,
// the per-AS outage series), and serves live summaries over HTTP. It is
// the single-vantage deployment shape of the paper's 27-server passive
// collection: one ingestd per pool server, snapshots merging into the
// live store that the stat endpoints read.
//
// The outage detector is the paper's headline hitlist application run
// live: the same single pass that builds the corpus feeds a per-AS
// time-binned series, and a periodic detector scans its rolling window
// for ASes that went dark — served at /outages, no probes sent.
//
// Event lines are `<unix-seconds> <ipv6-address> [<server-index>]`.
//
// Usage:
//
//	ingestd -file events.log            # replay a file, then keep serving
//	ingestd -file -                     # read stdin
//	ingestd -udp :9123                  # ingest datagrams of event lines
//	ingestd -sim -sim.scale 0.1         # generate a simnet replay stream
//
// HTTP surface (default :8629):
//
//	/stats          live pipeline and corpus summary (JSON)
//	/outages        latest outage-detector scan (JSON)
//	/snapshot       POST: write a durable corpus checkpoint now
//	/metrics        Prometheus text exposition of every registered series
//	/healthz        liveness: 200 while the process runs
//	/readyz         readiness: 200 once restore finished and the pipeline
//	                accepts events; 503 while starting or shutting down
//	/debug/events   bounded ring of recent operational events (JSON)
//	/debug/pprof/   CPU, heap, goroutine and trace profiles
//
// Logs are structured (slog): -log.format selects text or json,
// -log.level the threshold. Every log record is also captured in the
// /debug/events ring. SIGINT/SIGTERM shut down gracefully: sources
// stop, in-flight events drain, a final checkpoint is written when
// -snapshot.dir is set, and the HTTP listener closes cleanly.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/asdb"
	"hitlist6/internal/collector"
	"hitlist6/internal/ingest"
	"hitlist6/internal/ntppool"
	"hitlist6/internal/outage"
	"hitlist6/internal/pager"
	"hitlist6/internal/simnet"
	"hitlist6/internal/telemetry"
)

// daemon ties the pipeline to its operational surface: the HTTP
// handlers, the health gate, the structured log (mirrored into the
// events ring) and the shutdown sequence. main builds exactly one;
// tests build throwaway ones around in-memory pipelines.
type daemon struct {
	pipe   *ingest.Pipeline
	reg    *telemetry.Registry
	health *telemetry.Health
	ring   *telemetry.EventRing
	log    *slog.Logger

	routes    *asdb.DB   // nil: outage detection disabled
	udp       *udpSource // nil: not ingesting from a socket
	outWindow int
	snapPath  string // "": durable snapshots disabled
	deltaMode bool   // -snapshot.delta: checkpoints run the chain protocol

	// Tiered corpus (-corpus.rambudget; see tier.go). tierMu serializes
	// every access to tier, including swapping it for a fresh file after a
	// checkpoint.
	ramBudget int64  // 0: tiering disabled
	tierPath  string // "": tiering disabled
	pagerMet  *pager.Metrics
	tierMu    sync.Mutex
	tier      *pager.Corpus // nil until the first tier file exists

	badLines      atomic.Uint64
	latestOutages atomic.Pointer[outagesReply]

	// stopSource interrupts the active event source (close the UDP
	// socket, close the replay file); nil when the source cannot be
	// interrupted (sim replay, stdin). sourceDone closes when the source
	// goroutine exits.
	stopSource func()
	sourceDone chan struct{}
}

// newMux wires the daemon's full HTTP surface (see the package comment
// for the endpoint map).
func (d *daemon) newMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", d.handleStats)
	mux.HandleFunc("/outages", d.handleOutages)
	mux.HandleFunc("/snapshot", d.handleSnapshot)
	mux.HandleFunc("/probe", d.handleProbe)
	mux.Handle("/metrics", d.reg.Handler())
	mux.Handle("/healthz", d.health.LivenessHandler())
	mux.Handle("/readyz", d.health.ReadinessHandler())
	mux.Handle("/debug/events", d.ring)
	// net/http/pprof registers on DefaultServeMux at import; this mux is
	// private, so route the profile handlers explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (d *daemon) handleStats(w http.ResponseWriter, _ *http.Request) {
	reply := buildStats(d.pipe, d.udp)
	reply.Tier = d.tierStats()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(reply); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (d *daemon) handleOutages(w http.ResponseWriter, _ *http.Request) {
	if d.routes == nil {
		http.Error(w, "outage detection disabled (-outage.bin 0)", http.StatusNotFound)
		return
	}
	reply := d.latestOutages.Load()
	if reply == nil {
		// Nothing detected yet (first tick pending): scan on demand so
		// the endpoint is never stale-empty.
		reply = detectOutages(d.pipe, d.outWindow)
		d.latestOutages.Store(reply)
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(reply); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (d *daemon) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if d.snapPath == "" {
		http.Error(w, "snapshots disabled (no -snapshot.dir)", http.StatusNotFound)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "POST triggers a snapshot", http.StatusMethodNotAllowed)
		return
	}
	start := time.Now()
	size, err := d.checkpointNow()
	if err != nil {
		d.log.Error("snapshot failed", "path", d.snapPath, "error", err)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	d.log.Info("snapshot written", "path", d.snapPath, "bytes", size)
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(snapshotReply{
		Path:   d.snapPath,
		Bytes:  size,
		Millis: time.Since(start).Milliseconds(),
	}); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// checkpointNow writes one durable checkpoint through whichever
// protocol the daemon runs — the delta chain under -snapshot.delta,
// otherwise a plain full snapshot — and, when the tiered corpus is
// enabled, refreshes the tier file to match. A tier refresh failure is
// logged but does not fail the checkpoint: the durable corpus is the
// artifact that matters; the tier is a rebuildable query index.
func (d *daemon) checkpointNow() (int64, error) {
	var size int64
	var err error
	if d.deltaMode {
		size, err = d.pipe.CheckpointChain(d.snapPath)
	} else {
		size, err = d.pipe.CheckpointFile(d.snapPath)
	}
	if err != nil {
		return 0, err
	}
	if d.tierPath != "" {
		if terr := d.refreshTier(); terr != nil {
			d.log.Error("tier refresh failed", "path", d.tierPath, "error", terr)
		}
	}
	return size, nil
}

// shutdown drains the daemon in dependency order: flip readiness off
// (load balancers stop routing), stop the event source and wait for it
// when it is interruptible, fence in-flight events with a quiesce,
// write the final durable checkpoint — everything since the last
// periodic tick would otherwise be lost to a clean exit — and close the
// HTTP listener. srv may be nil (tests exercising the drain alone).
func (d *daemon) shutdown(srv *http.Server) {
	d.health.SetNotReady("shutting down")
	if d.stopSource != nil {
		d.stopSource()
		select {
		case <-d.sourceDone:
		case <-time.After(10 * time.Second):
			d.log.Warn("event source did not stop; checkpointing anyway")
		}
	}
	d.pipe.Quiesce()
	if d.snapPath != "" {
		if size, err := d.checkpointNow(); err != nil {
			d.log.Error("final checkpoint failed", "path", d.snapPath, "error", err)
		} else {
			d.log.Info("final checkpoint", "path", d.snapPath, "bytes", size)
		}
	}
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			d.log.Warn("http shutdown", "error", err)
		}
	}
	m := d.pipe.Metrics()
	d.log.Info("ingestd exiting",
		"processed", m.Processed, "dropped", m.Dropped,
		"malformed", d.badLines.Load(),
		"unique_addrs", d.pipe.Store().NumAddrs(),
		"corpus_mb", fmt.Sprintf("%.1f", float64(m.CorpusBytes)/(1<<20)))
}

func main() {
	var (
		listen      = flag.String("listen", ":8629", "HTTP listen address")
		file        = flag.String("file", "", "event file to replay ('-' for stdin)")
		udp         = flag.String("udp", "", "UDP listen address for event datagrams")
		sim         = flag.Bool("sim", false, "generate a simnet replay stream instead of external input")
		simScale    = flag.Float64("sim.scale", 0.1, "simnet population scale")
		simDays     = flag.Int("sim.days", 30, "simnet study window in days")
		simSeed     = flag.Int64("sim.seed", 1, "simnet world seed")
		shards      = flag.Int("shards", 0, "collector shards (0 = one per CPU, capped at 8)")
		batch       = flag.Int("batch", 0, "events per batch (0 = default)")
		queue       = flag.Int("queue", 0, "per-shard queue depth in batches (0 = default)")
		drop        = flag.Bool("drop", false, "shed events when a shard queue is full instead of blocking")
		snapshot    = flag.Duration("snapshot", 2*time.Second, "live-view snapshot interval")
		hllPrec     = flag.Uint("hll", 14, "HyperLogLog precision (4-16)")
		serverCp    = flag.Int("servers", collector.MaxServers, "vantage-server attribution cap")
		outBin      = flag.Duration("outage.bin", time.Hour, "outage series bin width (whole seconds; 0 disables the outage consumer)")
		outEvery    = flag.Duration("outage.every", 30*time.Second, "how often the live outage detector rescans the series")
		outWindow   = flag.Int("outage.window", 0, "rolling detection window in complete bins (0 = whole series)")
		snapDir     = flag.String("snapshot.dir", "", "directory for durable corpus snapshots (restore on start, checkpoint while running)")
		snapEvery   = flag.Duration("snapshot.every", 0, "how often to checkpoint the corpus into -snapshot.dir (0 = only on /snapshot)")
		snapDelta   = flag.Bool("snapshot.delta", false, "checkpoint via the delta chain: full base plus per-checkpoint deltas of dirtied blocks")
		snapCompact = flag.Int("snapshot.compact", 0, "fold the delta chain into a fresh full base every N deltas (0 = default)")
		ramBudget   = flag.Int64("corpus.rambudget", 0, "tiered-corpus RAM budget in bytes for /probe chunk residency (0 disables tiering)")
		logLevel    = flag.String("log.level", "info", "log threshold: debug, info, warn or error")
		logFormat   = flag.String("log.format", "text", "log encoding: text or json")
		eventsCap   = flag.Int("debug.events", telemetry.DefaultEventRingSize, "recent-events ring capacity for /debug/events")
	)
	flag.Parse()

	ring := telemetry.NewEventRing(*eventsCap)
	logger, err := telemetry.NewLogger(telemetry.LogOptions{
		Level: *logLevel, Format: *logFormat, Ring: ring,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ingestd:", err)
		os.Exit(2)
	}

	sources := 0
	for _, on := range []bool{*file != "", *udp != "", *sim} {
		if on {
			sources++
		}
	}
	if sources != 1 {
		fmt.Fprintln(os.Stderr, "ingestd: exactly one of -file, -udp, -sim required")
		flag.Usage()
		os.Exit(2)
	}
	if *hllPrec < 4 || *hllPrec > 16 {
		fmt.Fprintf(os.Stderr, "ingestd: -hll %d out of [4,16]\n", *hllPrec)
		os.Exit(2)
	}
	if *outBin < 0 || *outBin%time.Second != 0 {
		fmt.Fprintf(os.Stderr, "ingestd: -outage.bin %v must be a non-negative whole number of seconds\n", *outBin)
		os.Exit(2)
	}
	if *outBin > 0 && *outEvery <= 0 {
		fmt.Fprintf(os.Stderr, "ingestd: -outage.every %v must be positive\n", *outEvery)
		os.Exit(2)
	}
	if *snapEvery < 0 {
		fmt.Fprintf(os.Stderr, "ingestd: -snapshot.every %v must be non-negative\n", *snapEvery)
		os.Exit(2)
	}
	if *snapEvery > 0 && *snapDir == "" {
		fmt.Fprintln(os.Stderr, "ingestd: -snapshot.every needs -snapshot.dir")
		os.Exit(2)
	}
	if (*snapDelta || *snapCompact != 0) && *snapDir == "" {
		fmt.Fprintln(os.Stderr, "ingestd: -snapshot.delta needs -snapshot.dir")
		os.Exit(2)
	}
	if *snapCompact < 0 {
		fmt.Fprintf(os.Stderr, "ingestd: -snapshot.compact %d must be non-negative\n", *snapCompact)
		os.Exit(2)
	}
	if *ramBudget < 0 {
		fmt.Fprintf(os.Stderr, "ingestd: -corpus.rambudget %d must be non-negative\n", *ramBudget)
		os.Exit(2)
	}
	if *ramBudget > 0 && *snapDir == "" {
		fmt.Fprintln(os.Stderr, "ingestd: -corpus.rambudget needs -snapshot.dir")
		os.Exit(2)
	}

	// The outage consumer needs a routing table to attribute events to
	// ASes. BuildASDB yields the same table a full world build would
	// (attribution-identical; see simnet.BuildASDB), without blocking
	// daemon startup on world construction — the sim replay builds its
	// world later, on the replay goroutine.
	var routes *asdb.DB
	if *outBin > 0 {
		db, err := simnet.BuildASDB(simnet.DefaultConfig(*simSeed, 1))
		if err != nil {
			logger.Error("routing table", "error", err)
			os.Exit(1)
		}
		routes = db
	}

	// The registry exists before the pipeline so startup work (the
	// checkpoint restore) is already on the record when /metrics comes up.
	reg := telemetry.NewRegistry()
	health := telemetry.NewHealth()

	cfg := ingest.Config{
		Shards:           *shards,
		BatchSize:        *batch,
		QueueDepth:       *queue,
		DropOnFull:       *drop,
		SnapshotInterval: *snapshot,
		ServerCap:        *serverCp,
		Registry:         reg,
		Stages: []ingest.StageFactory{
			ingest.Categories(),
			ingest.Cardinality(uint8(*hllPrec)),
		},
	}
	snapPath := ""
	if *snapDir != "" {
		if err := os.MkdirAll(*snapDir, 0o755); err != nil {
			logger.Error("snapshot dir", "error", err)
			os.Exit(1)
		}
		snapPath = snapshotPath(*snapDir)
		restoreSeconds := reg.Histogram("ingestd_restore_seconds",
			"Wall time restoring the corpus checkpoint at startup.",
			telemetry.DurationBuckets())
		start := time.Now()
		cfg.Seed = restoreOrEmpty(snapPath, *snapDelta, func(format string, args ...any) {
			msg := fmt.Sprintf(format, args...)
			if strings.Contains(msg, "WARNING") {
				logger.Warn(msg)
			} else {
				logger.Info(msg)
			}
		})
		restoreSeconds.ObserveDuration(time.Since(start))
		cfg.CheckpointPath = snapPath
		cfg.CheckpointInterval = *snapEvery
		cfg.DeltaCheckpoints = *snapDelta
		cfg.CompactEvery = *snapCompact
	}
	if routes != nil {
		cfg.Stages = append(cfg.Stages, ingest.OutageSeriesLive(routes, *outBin))
	}
	pipe, err := ingest.New(cfg)
	if err != nil {
		logger.Error("pipeline", "error", err)
		os.Exit(1)
	}

	d := &daemon{
		pipe: pipe, reg: reg, health: health, ring: ring, log: logger,
		routes: routes, outWindow: *outWindow, snapPath: snapPath,
		deltaMode: *snapDelta,
	}
	if *ramBudget > 0 {
		d.ramBudget = *ramBudget
		d.tierPath = tierPath(*snapDir)
		d.pagerMet = pager.NewMetrics(reg)
		d.openTierAtStart()
		logger.Info("tiered corpus enabled",
			"path", d.tierPath, "budget_bytes", d.ramBudget)
	}
	reg.GaugeFunc("ingestd_malformed_lines",
		"Input lines that failed to parse since start.",
		func() float64 { return float64(d.badLines.Load()) })

	httpLn, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Error("listen", "error", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: d.newMux()}
	go func() {
		if err := srv.Serve(httpLn); err != nil && err != http.ErrServerClosed {
			logger.Error("http", "error", err)
		}
	}()
	logger.Info("serving", "addr", httpLn.Addr().String(), "shards", pipe.NumShards())

	if routes != nil {
		go func() {
			t := time.NewTicker(*outEvery)
			defer t.Stop()
			for range t.C {
				d.latestOutages.Store(detectOutages(pipe, *outWindow))
			}
		}()
		logger.Info("outage detector live", "bin", outBin.String(), "rescan", outEvery.String())
	}

	switch {
	case *file != "":
		in := os.Stdin
		if *file != "-" {
			f, err := os.Open(*file)
			if err != nil {
				logger.Error("open", "error", err)
				os.Exit(1)
			}
			// Closing the file mid-replay errors the scanner: that is the
			// interrupt path a graceful shutdown uses.
			d.stopSource = func() { f.Close() }
			in = f
		}
		d.sourceDone = make(chan struct{})
		go func() {
			defer close(d.sourceDone)
			if err := ingestStream(pipe, in, &d.badLines); err != nil {
				logger.Error("file replay", "error", err)
				return
			}
			logger.Info("stream done; still serving",
				"malformed", d.badLines.Load())
		}()
	case *sim:
		// The sim replay is not interruptible (no stopSource): shutdown
		// quiesces and checkpoints around it without waiting.
		go func() {
			n := simReplay(pipe, logger, *simSeed, *simScale, *simDays)
			pipe.SnapshotNow()
			logger.Info("sim replay done; still serving", "events", n)
		}()
	case *udp != "":
		conn, err := net.ListenPacket("udp", *udp)
		if err != nil {
			logger.Error("udp listen", "error", err)
			os.Exit(1)
		}
		d.udp = newUDPSource(reg)
		r := newDatagramReader(conn)
		logger.Info("ingesting event datagrams",
			"addr", conn.LocalAddr().String(), "batched", r.batched())
		d.stopSource = func() { conn.Close() }
		d.sourceDone = make(chan struct{})
		go func() {
			defer close(d.sourceDone)
			ingestUDP(pipe, conn, r, &d.badLines, logger, d.udp)
		}()
	}
	health.SetReady()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	logger.Info("shutting down", "signal", s.String())
	d.shutdown(srv)
}

// snapshotPath is where the durable corpus lives inside -snapshot.dir.
func snapshotPath(dir string) string {
	return filepath.Join(dir, "corpus.snap")
}

// tierPath is where the tiered-corpus query file lives, next to the
// checkpoint it is derived from.
func tierPath(dir string) string {
	return filepath.Join(dir, "corpus.tier")
}

// restoreOrEmpty loads the corpus checkpoint for daemon startup — the
// delta chain when -snapshot.delta, the plain file otherwise. A
// daemon must come up even when its checkpoint is damaged — losing the
// corpus and re-accumulating beats refusing to collect — so missing
// files start empty silently and unreadable/corrupt files start empty
// with a logged warning. (Batch/study runs make the opposite choice:
// see hitlist6.Config.CheckpointPath.)
func restoreOrEmpty(path string, delta bool, logf func(format string, args ...any)) *collector.Collector {
	var c *collector.Collector
	var err error
	if delta {
		c, err = ingest.RestoreChainFiles(path)
	} else {
		c, err = ingest.RestoreFile(path)
	}
	if err != nil {
		logf("ingestd: WARNING: checkpoint %s unusable, starting with an empty corpus: %v", path, err)
		return nil
	}
	if c == nil {
		return nil
	}
	logf("ingestd: restored %d addresses (%d observations) from %s",
		c.NumAddrs(), c.TotalObservations(), path)
	return c
}

// snapshotReply is the /snapshot JSON shape.
type snapshotReply struct {
	Path   string `json:"path"`
	Bytes  int64  `json:"bytes"`
	Millis int64  `json:"millis"`
}

// statsReply is the /stats JSON shape.
type statsReply struct {
	Shards       int                    `json:"shards"`
	Metrics      ingest.MetricsSnapshot `json:"metrics"`
	UDP          *udpStatsReply         `json:"udp,omitempty"`
	Tier         *tierStatsReply        `json:"tier,omitempty"`
	UniqueAddrs  int                    `json:"unique_addrs"`
	UniqueIIDs   int                    `json:"unique_iids"`
	Observations uint64                 `json:"observations"`
	HLLEstimate  float64                `json:"hll_estimate"`
	Categories   map[string]uint64      `json:"categories"`
}

func buildStats(pipe *ingest.Pipeline, udp *udpSource) statsReply {
	reply := statsReply{
		Shards:       pipe.NumShards(),
		Metrics:      pipe.Metrics(),
		UDP:          udp.statsReply(),
		UniqueAddrs:  pipe.Store().NumAddrs(),
		UniqueIIDs:   pipe.Store().NumIIDs(),
		Observations: pipe.Store().TotalObservations(),
		Categories:   make(map[string]uint64),
	}
	pipe.StageView(func(stages []ingest.Stage) {
		for _, st := range stages {
			switch s := st.(type) {
			case *ingest.HLLStage:
				reply.HLLEstimate = s.H.Estimate()
			case *ingest.CategoryStage:
				for c, n := range s.Counts {
					if n > 0 {
						reply.Categories[addr.Category(c).String()] = n
					}
				}
			}
		}
	})
	return reply
}

// outagesReply is the /outages JSON shape.
type outagesReply struct {
	UpdatedUnix  int64              `json:"updated_unix"`
	Bin          string             `json:"bin"`
	Bins         int                `json:"bins"`
	CompleteBins int                `json:"complete_bins"`
	WindowBins   int                `json:"window_bins,omitempty"`
	ASes         int                `json:"ases"`
	Events       []outageEventReply `json:"events"`
}

// outageEventReply is one detected outage in /outages.
type outageEventReply struct {
	ASN          asdb.ASN  `json:"asn"`
	From         time.Time `json:"from"`
	To           time.Time `json:"to"`
	DarkBins     int       `json:"dark_bins"`
	MedianVolume float64   `json:"median_volume"`
	Summary      string    `json:"summary"`
}

// detectOutages scans the live outage series' rolling window. The stage
// view hands out a deep-copied series, so detection runs entirely off
// the merge lock.
func detectOutages(pipe *ingest.Pipeline, windowBins int) *outagesReply {
	var series *outage.Series
	pipe.StageView(func(stages []ingest.Stage) {
		for _, st := range stages {
			if s, ok := st.(*ingest.OutageSeriesStage); ok {
				series = s.Series()
			}
		}
	})
	reply := &outagesReply{
		UpdatedUnix: time.Now().Unix(),
		WindowBins:  windowBins,
		Events:      []outageEventReply{},
	}
	if series == nil {
		return reply
	}
	series = series.Tail(windowBins)
	reply.Bin = series.Bin.String()
	reply.Bins = series.Bins
	reply.CompleteBins = series.Complete
	reply.ASes = len(series.ByAS)
	for _, e := range outage.Detect(series, outage.DefaultConfig()) {
		reply.Events = append(reply.Events, outageEventReply{
			ASN:          e.ASN,
			From:         e.From,
			To:           e.To,
			DarkBins:     e.DarkBins,
			MedianVolume: e.MedianVolume,
			Summary:      e.String(),
		})
	}
	return reply
}

// ingestStream replays newline-framed event lines from in until EOF (or
// a read error — which is also how a graceful shutdown interrupts a
// file replay, by closing the underlying file).
func ingestStream(pipe *ingest.Pipeline, in io.Reader, badLines *atomic.Uint64) error {
	b := pipe.NewBatcher()
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<16), 1<<16)
	for sc.Scan() {
		ingestLine(b, sc.Bytes(), badLines)
	}
	b.Flush()
	pipe.SnapshotNow()
	return sc.Err()
}

// ingestLine parses one event line into the batcher, tolerating blank
// lines, surrounding whitespace (including the \r of CRLF framing) and
// # comments; only genuinely malformed lines count as bad.
func ingestLine(b *ingest.Batcher, line []byte, badLines *atomic.Uint64) bool {
	line = bytes.TrimSpace(line)
	if len(line) == 0 || line[0] == '#' {
		return false
	}
	ev, err := ingest.ParseEventBytes(line)
	if err != nil {
		badLines.Add(1)
		return false
	}
	b.Add(ev)
	return true
}

// ingestDatagram splits one UDP payload into event lines, walking
// newlines in place — bytes.Split would allocate a fragment slice per
// datagram, which at wire rate is a fragment slice per syscall. A
// newline-terminated datagram's empty trailing fragment must not count
// as a parse error — ingestLine skips blanks.
func ingestDatagram(b *ingest.Batcher, buf []byte, badLines *atomic.Uint64) int {
	added := 0
	for len(buf) > 0 {
		var line []byte
		if nl := bytes.IndexByte(buf, '\n'); nl < 0 {
			line, buf = buf, nil
		} else {
			line, buf = buf[:nl], buf[nl+1:]
		}
		if ingestLine(b, line, badLines) {
			added++
		}
	}
	return added
}

// simReplay builds a simulated world and streams its NTP queries
// through the paper's pool selection into the pipeline, as a
// self-contained demo and load generator.
func simReplay(pipe *ingest.Pipeline, log *slog.Logger, seed int64, scale float64, days int) uint64 {
	wcfg := simnet.DefaultConfig(seed, scale)
	wcfg.Days = days
	w, err := simnet.Build(wcfg)
	if err != nil {
		log.Error("sim build", "error", err)
		return 0
	}
	pool, err := ntppool.New(ntppool.StudyVantages())
	if err != nil {
		log.Error("sim pool", "error", err)
		return 0
	}
	stats := ntppool.RunIngest(w, pool, pipe)
	return stats.Queries
}
