// The daemon's tiered-corpus surface (-corpus.rambudget): alongside
// each durable checkpoint the daemon writes a tier file — the corpus as
// fixed-size canonical chunks with per-chunk filters (internal/pager) —
// and serves point lookups off it at /probe with a bounded RAM budget,
// instead of holding a second full corpus for queries. /stats grows a
// tier block and the pager's gauges/counters land on /metrics.
package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"

	"hitlist6/internal/addr"
	"hitlist6/internal/collector"
	"hitlist6/internal/ingest"
	"hitlist6/internal/pager"
)

// refreshTier rewrites the tier file from the live corpus (atomically,
// like every durable artifact) and swaps the daemon's pager onto the
// new file. Serialized with every tier read via tierMu, so the old
// corpus is never closed under an in-flight probe.
//
//lint:durable-path the tier file must survive a crash mid-rewrite
func (d *daemon) refreshTier() error {
	d.tierMu.Lock()
	defer d.tierMu.Unlock()
	if _, err := ingest.AtomicWriteFile(d.tierPath, func(w io.Writer) error {
		var inner error
		d.pipe.Store().View(func(c *collector.Collector) {
			inner = pager.WriteTier(c, w)
		})
		return inner
	}); err != nil {
		return err
	}
	return d.openTierLocked()
}

// openTierAtStart picks up a tier file left by a previous run, so
// /probe serves immediately after a restart. A missing or unreadable
// file is not fatal — the next checkpoint rewrites it.
func (d *daemon) openTierAtStart() {
	d.tierMu.Lock()
	defer d.tierMu.Unlock()
	if _, err := os.Stat(d.tierPath); err != nil {
		return
	}
	if err := d.openTierLocked(); err != nil {
		d.log.Warn("stale tier file unreadable; will rewrite at next checkpoint",
			"path", d.tierPath, "error", err)
	}
}

func (d *daemon) openTierLocked() error {
	nc, err := pager.Open(d.tierPath, pager.Options{
		RAMBudget: d.ramBudget,
		Metrics:   d.pagerMet,
	})
	if err != nil {
		return err
	}
	if d.tier != nil {
		if cerr := d.tier.Close(); cerr != nil {
			d.log.Warn("closing previous tier reader", "path", d.tierPath, "error", cerr)
		}
	}
	d.tier = nc
	return nil
}

// probeReply is the /probe JSON shape.
type probeReply struct {
	Addr    string `json:"addr"`
	Found   bool   `json:"found"`
	First   int64  `json:"first,omitempty"`
	Last    int64  `json:"last,omitempty"`
	Count   uint32 `json:"count,omitempty"`
	Servers uint32 `json:"servers,omitempty"`
}

// handleProbe serves point lookups off the tiered corpus — the cold
// -probe path: fence search, bloom filter, and at most one chunk pread,
// never touching the live store or its locks.
func (d *daemon) handleProbe(w http.ResponseWriter, r *http.Request) {
	if d.tierPath == "" {
		http.Error(w, "tiered corpus disabled (-corpus.rambudget 0)", http.StatusNotFound)
		return
	}
	a, err := addr.Parse(r.URL.Query().Get("addr"))
	if err != nil {
		http.Error(w, "probe needs ?addr=<ipv6>: "+err.Error(), http.StatusBadRequest)
		return
	}
	d.tierMu.Lock()
	defer d.tierMu.Unlock()
	if d.tier == nil {
		http.Error(w, "tier not yet written (POST /snapshot)", http.StatusServiceUnavailable)
		return
	}
	rec, ok, err := d.tier.Get(a)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	reply := probeReply{Addr: a.String(), Found: ok}
	if ok {
		reply.First, reply.Last = rec.First, rec.Last
		reply.Count, reply.Servers = rec.Count, rec.Servers
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(reply); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// tierStatsReply is the /stats tier block.
type tierStatsReply struct {
	Path          string `json:"path"`
	Budget        int64  `json:"budget_bytes"`
	Chunks        int    `json:"chunks"`
	Resident      int    `json:"resident_chunks"`
	ResidentBytes int64  `json:"resident_bytes"`
	Addrs         int    `json:"addrs"`
	FilterProbes  uint64 `json:"filter_probes"`
	FilterSkips   uint64 `json:"filter_skips"`
	ChunkLoads    uint64 `json:"chunk_loads"`
}

// tierStats snapshots the tier block for /stats; nil when the tiered
// corpus is disabled or not yet written.
func (d *daemon) tierStats() *tierStatsReply {
	if d.tierPath == "" {
		return nil
	}
	d.tierMu.Lock()
	defer d.tierMu.Unlock()
	if d.tier == nil {
		return nil
	}
	return &tierStatsReply{
		Path:          d.tierPath,
		Budget:        d.ramBudget,
		Chunks:        d.tier.NumChunks(),
		Resident:      d.tier.ResidentChunks(),
		ResidentBytes: d.tier.ResidentBytes(),
		Addrs:         d.tier.NumAddrs(),
		FilterProbes:  d.pagerMet.Probes.Value(),
		FilterSkips:   d.pagerMet.Skips.Value(),
		ChunkLoads:    d.pagerMet.Loads.Value(),
	}
}
