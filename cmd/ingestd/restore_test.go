package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"hitlist6/internal/ingest"
)

// TestRestoreOrEmpty pins the daemon's crash-recovery behaviour: a good
// checkpoint restores, a missing one starts empty silently, and a
// damaged one starts empty with a logged warning — never an abort, and
// never a partial corpus.
func TestRestoreOrEmpty(t *testing.T) {
	dir := t.TempDir()
	path := snapshotPath(dir)

	logged := func() (func(string, ...any), *[]string) {
		var lines []string
		return func(format string, args ...any) {
			lines = append(lines, fmt.Sprintf(format, args...))
		}, &lines
	}

	// Missing: empty start, no warning.
	logf, lines := logged()
	if c := restoreOrEmpty(path, false, logf); c != nil {
		t.Fatalf("missing checkpoint restored something: %v", c)
	}
	if len(*lines) != 0 {
		t.Fatalf("missing checkpoint warned: %v", *lines)
	}

	// Write a real checkpoint through the pipeline.
	pipe, err := ingest.New(ingest.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	b := pipe.NewBatcher()
	var bad atomic.Uint64
	for i := 0; i < 100; i++ {
		ingestLine(b, []byte(fmt.Sprintf("164367%04d 2001:db8::%x %d", i, i+1, i%27)), &bad)
	}
	b.Flush()
	if _, err := pipe.CheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	pipe.Close()

	// Good: restores with an informational line.
	logf, lines = logged()
	c := restoreOrEmpty(path, false, logf)
	if c == nil {
		t.Fatal("good checkpoint did not restore")
	}
	if c.NumAddrs() != 100 || c.TotalObservations() != 100 {
		t.Fatalf("restored %d addrs / %d obs, want 100/100", c.NumAddrs(), c.TotalObservations())
	}
	if len(*lines) != 1 || !strings.Contains((*lines)[0], "restored") {
		t.Fatalf("restore logging off: %v", *lines)
	}

	// Damaged, at every kind of cut: truncations at framing-ish offsets
	// and bit flips. All must fall back to empty with a warning.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	damage := map[string][]byte{
		"empty file":      {},
		"half magic":      raw[:4],
		"header only":     raw[:12],
		"mid sections":    raw[:len(raw)/2],
		"missing trailer": raw[:len(raw)-7],
	}
	flipped := append([]byte(nil), raw...)
	flipped[len(raw)/3] ^= 0x10
	damage["bit flip"] = flipped
	garbage := append([]byte(nil), raw...)
	copy(garbage, "not a corpus snapshot at all")
	damage["overwritten head"] = garbage

	for name, body := range damage {
		if err := os.WriteFile(path, body, 0o644); err != nil {
			t.Fatal(err)
		}
		logf, lines = logged()
		if c := restoreOrEmpty(path, false, logf); c != nil {
			t.Errorf("%s: damaged checkpoint restored (%d addrs)", name, c.NumAddrs())
		}
		if len(*lines) != 1 || !strings.Contains((*lines)[0], "WARNING") {
			t.Errorf("%s: expected one warning, got %v", name, *lines)
		}
	}
}

// TestSnapshotPathShape keeps the on-disk layout stable: tooling and
// operators rely on corpus.snap inside the snapshot dir.
func TestSnapshotPathShape(t *testing.T) {
	if got := snapshotPath("/var/lib/ingestd"); got != filepath.Join("/var/lib/ingestd", "corpus.snap") {
		t.Fatalf("snapshotPath = %q", got)
	}
}

// FuzzIngestDatagram hardens the UDP line handler end to end: arbitrary
// datagram payloads must never panic the batcher path, blank/comment
// fragments must never count as malformed, and the accepted-event count
// must match a line-by-line reparse. Run continuously with:
//
//	go test ./cmd/ingestd -run '^$' -fuzz '^FuzzIngestDatagram$' -fuzztime 30s
func FuzzIngestDatagram(f *testing.F) {
	f.Add([]byte("1643673600 2001:db8::1 3\n1643673601 2001:db8::2\n"))
	f.Add([]byte("garbage\n\r\n# comment\n   \n"))
	f.Add([]byte("1643673600 2001:db8::1 3"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte{0, 1, 2, 0xff})
	f.Add([]byte("1643673600 ::ffff:192.0.2.1 31\r\n"))

	pipe, err := ingest.New(ingest.DefaultConfig(1))
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		b := pipe.NewBatcher()
		var bad atomic.Uint64
		added := ingestDatagram(b, data, &bad)
		b.Flush()

		// Reconcile against a direct reparse of each fragment.
		wantAdded, wantBad := 0, uint64(0)
		for _, line := range strings.Split(string(data), "\n") {
			trimmed := strings.TrimSpace(line)
			if trimmed == "" || trimmed[0] == '#' {
				continue
			}
			if _, err := ingest.ParseEvent(trimmed); err != nil {
				wantBad++
			} else {
				wantAdded++
			}
		}
		if added != wantAdded || bad.Load() != wantBad {
			t.Fatalf("datagram %q: added %d bad %d, want %d/%d",
				data, added, bad.Load(), wantAdded, wantBad)
		}
	})
}
