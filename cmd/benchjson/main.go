// Command benchjson converts Go benchmark output (the bench-results text
// artifact CI already uploads) into machine-readable JSON, and compares
// two such JSON files so the perf trajectory is tracked per PR instead
// of eyeballed.
//
//	benchjson -in bench.txt -out BENCH_report.json
//	benchjson -compare prev/BENCH_report.json -in bench.txt
//
// The JSON carries every benchmark's ns/op, B/op, allocs/op and custom
// metrics (live_B/addr, events/sec, ...), plus a headline block with the
// numbers the ROADMAP tracks: report generation wall time (serial and
// 8-worker, from BenchmarkReport), corpus bytes per address and the
// engine allocation count. Comparison output is advisory — it prints
// per-benchmark deltas and flags regressions on stderr, but exits 0
// unless -fail-over is set, because single-run CI benchmarks are noisy.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// NsPerOp is the wall time per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// BPerOp / AllocsPerOp come from -benchmem (0 when absent).
	BPerOp      float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds every custom b.ReportMetric unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH_report.json document.
type Report struct {
	Schema int `json:"schema"`
	// Headline is the at-a-glance block: report wall times, corpus
	// bytes/addr, engine allocs.
	Headline map[string]float64 `json:"headline,omitempty"`
	// Benchmarks maps the full benchmark name (GOMAXPROCS suffix
	// stripped) to its parsed numbers.
	Benchmarks map[string]Benchmark `json:"benchmarks"`
}

// benchLine matches "BenchmarkName-8  <iters>  <fields>".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// Parse reads go test -bench output into a Report.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{Schema: 1, Benchmarks: map[string]Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name, rest := m[1], strings.Fields(m[3])
		b := Benchmark{Metrics: map[string]float64{}}
		// rest is value/unit pairs: 123 ns/op 456 B/op 7 allocs/op 1.5 x/sec
		for i := 0; i+1 < len(rest); i += 2 {
			v, err := strconv.ParseFloat(rest[i], 64)
			if err != nil {
				continue
			}
			switch unit := rest[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				b.Metrics[unit] = v
			}
		}
		if len(b.Metrics) == 0 {
			b.Metrics = nil
		}
		rep.Benchmarks[name] = b
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	rep.Headline = headline(rep.Benchmarks)
	return rep, nil
}

// headline extracts the tracked numbers when their benchmarks are
// present.
func headline(bs map[string]Benchmark) map[string]float64 {
	h := map[string]float64{}
	pick := func(key, bench string, metric string) {
		b, ok := bs[bench]
		if !ok {
			return
		}
		if metric == "" {
			h[key] = b.NsPerOp
			return
		}
		if v, ok := b.Metrics[metric]; ok {
			h[key] = v
		}
	}
	pick("report_engine_1m_serial_ns", "BenchmarkReport/engine-1M/workers=1", "")
	pick("report_engine_1m_8w_ns", "BenchmarkReport/engine-1M/workers=8", "")
	pick("report_full_serial_ns", "BenchmarkReport/full/workers=1", "")
	pick("report_full_8w_ns", "BenchmarkReport/full/workers=8", "")
	if b, ok := bs["BenchmarkReport/engine-1M/workers=1"]; ok {
		h["report_engine_1m_allocs"] = b.AllocsPerOp
	}
	pick("corpus_live_b_per_addr", "BenchmarkCollectorMemory/layout=flat", "live_B/addr")
	// Telemetry overhead proof: the off/on events-per-second pair. Their
	// ratio is the observe-path cost the instrumentation budget caps at 2%.
	pick("ingest_telemetry_off_eps", "BenchmarkTelemetryOverhead/telemetry=off", "events/sec")
	pick("ingest_telemetry_on_eps", "BenchmarkTelemetryOverhead/telemetry=on", "events/sec")
	// Wire-speed ingest: events/sec through the whole UDP socket path
	// (recvmmsg + zero-alloc parse + pipeline), the byte parser's cost
	// and its zero-allocation claim, and the chan-vs-spsc queue pair.
	pick("udp_socket_eps", "BenchmarkUDPIngest", "events/sec")
	pick("parse_event_bytes_ns", "BenchmarkParseEventBytes", "")
	if b, ok := bs["BenchmarkParseEventBytes"]; ok {
		h["parse_event_bytes_allocs"] = b.AllocsPerOp
	}
	pick("ingest_queue_chan_eps", "BenchmarkIngestQueue/queue=chan", "events/sec")
	pick("ingest_queue_spsc_eps", "BenchmarkIngestQueue/queue=spsc", "events/sec")
	// Tiered corpus (internal/pager) and the delta-chain checkpoints:
	// delta write bandwidth against the full-snapshot baseline, the cold
	// point-lookup pair (a filter miss answers without I/O; a filter hit
	// pays one chunk load), and the streaming fold's off-file walk rate.
	pick("delta_checkpoint_mb_s", "BenchmarkDeltaCheckpoint/mode=delta", "MB/s")
	pick("full_checkpoint_mb_s", "BenchmarkDeltaCheckpoint/mode=full", "MB/s")
	pick("cold_contains_ns", "BenchmarkColdContains/filter=miss", "")
	pick("cold_contains_hit_ns", "BenchmarkColdContains/filter=hit", "")
	pick("streaming_report_eps", "BenchmarkStreamingReport", "addrs/sec")
	// The scenario matrix (internal/workload/matrix): one headline pair
	// per named profile, so each workload regime's trajectory is tracked
	// on its own instead of only in aggregate. The adversarial profiles
	// add the number they exist to watch: the collision cluster's
	// probe-run tail and the backpressure cell's shed count.
	for _, prof := range []string{
		"paper", "churn", "eui64-dense", "outage-storm", "collision", "cold-replay", "backpressure",
	} {
		bench := "BenchmarkScenario/profile=" + prof
		key := "scenario_" + strings.ReplaceAll(prof, "-", "_")
		pick(key+"_eps", bench, "events/sec")
		pick(key+"_b_per_addr", bench, "B/addr")
	}
	pick("scenario_collision_probe_p99", "BenchmarkScenario/profile=collision", "probe_p99")
	pick("scenario_collision_probe_max", "BenchmarkScenario/profile=collision", "probe_max")
	pick("scenario_backpressure_drops", "BenchmarkScenario/profile=backpressure", "drops")
	if len(h) == 0 {
		return nil
	}
	return h
}

// Compare prints per-benchmark ns/op deltas of cur against prev and
// returns the worst regression ratio observed.
func Compare(w io.Writer, prev, cur *Report) float64 {
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		if _, ok := prev.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	worst := 1.0
	fmt.Fprintf(w, "%-60s %14s %14s %8s\n", "benchmark", "prev ns/op", "cur ns/op", "ratio")
	for _, name := range names {
		p, c := prev.Benchmarks[name], cur.Benchmarks[name]
		if p.NsPerOp <= 0 || c.NsPerOp <= 0 {
			continue
		}
		ratio := c.NsPerOp / p.NsPerOp
		if ratio > worst {
			worst = ratio
		}
		flag := ""
		if ratio > 1.25 {
			flag = "  << regression?"
		} else if ratio < 0.8 {
			flag = "  >> improvement"
		}
		fmt.Fprintf(w, "%-60s %14.0f %14.0f %7.2fx%s\n", name, p.NsPerOp, c.NsPerOp, ratio, flag)
	}
	for key, pv := range prev.Headline {
		if cv, ok := cur.Headline[key]; ok && pv > 0 {
			fmt.Fprintf(w, "headline %-40s %14.1f -> %14.1f (%.2fx)\n", key, pv, cv, cv/pv)
		}
	}
	return worst
}

func main() {
	in := flag.String("in", "bench.txt", "benchmark text output to parse")
	out := flag.String("out", "", "write BENCH_report.json here")
	compare := flag.String("compare", "", "previous BENCH_report.json to diff against")
	failOver := flag.Float64("fail-over", 0, "exit 1 when the worst ns/op regression ratio exceeds this (0 = never fail)")
	flag.Parse()

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rep, err := Parse(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found in", *in)
	}

	if *out != "" {
		js, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		js = append(js, '\n')
		if err := os.WriteFile(*out, js, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
	}

	if *compare != "" {
		pf, err := os.Open(*compare)
		if err != nil {
			// A missing previous artifact is normal on the first run.
			fmt.Fprintln(os.Stderr, "benchjson: no previous report to compare:", err)
			return
		}
		var prev Report
		err = json.NewDecoder(pf).Decode(&prev)
		pf.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: previous report unreadable:", err)
			return
		}
		worst := Compare(os.Stdout, &prev, rep)
		if *failOver > 0 && worst > *failOver {
			fmt.Fprintf(os.Stderr, "benchjson: worst regression %.2fx exceeds -fail-over %.2fx\n", worst, *failOver)
			os.Exit(1)
		}
	}
}
