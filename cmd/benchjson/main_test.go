package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: hitlist6
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkReport/engine-1M/workers=1         	       1	1298119250 ns/op	  524288 B/op	    1234 allocs/op	    999959 addrs
BenchmarkReport/engine-1M/workers=8-16      	       1	 310000000 ns/op	  524290 B/op	    1250 allocs/op	    999959 addrs
BenchmarkCollectorMemory/layout=flat-16     	       1	 500000000 ns/op	      58.2 live_B/addr	  97.1 B/op	       0 allocs/op
PASS
ok  	hitlist6	5.109s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b1, ok := rep.Benchmarks["BenchmarkReport/engine-1M/workers=1"]
	if !ok {
		t.Fatal("workers=1 row missing")
	}
	if b1.NsPerOp != 1298119250 || b1.AllocsPerOp != 1234 || b1.Metrics["addrs"] != 999959 {
		t.Fatalf("workers=1 parsed wrong: %+v", b1)
	}
	// GOMAXPROCS suffix must strip from the -16 variants.
	if _, ok := rep.Benchmarks["BenchmarkReport/engine-1M/workers=8"]; !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	cm := rep.Benchmarks["BenchmarkCollectorMemory/layout=flat"]
	if cm.Metrics["live_B/addr"] != 58.2 {
		t.Fatalf("live_B/addr = %v", cm.Metrics["live_B/addr"])
	}
	// Headline block.
	if rep.Headline["report_engine_1m_serial_ns"] != 1298119250 {
		t.Fatalf("headline serial ns wrong: %v", rep.Headline)
	}
	if rep.Headline["report_engine_1m_8w_ns"] != 310000000 {
		t.Fatalf("headline 8w ns wrong: %v", rep.Headline)
	}
	if rep.Headline["corpus_live_b_per_addr"] != 58.2 {
		t.Fatalf("headline b/addr wrong: %v", rep.Headline)
	}
}

const scenarioSample = `goos: linux
BenchmarkScenario/profile=paper-16             	       1	 120000000 ns/op	  310000 events/sec	  61.5 B/addr	  2 probe_p99	  5 probe_max
BenchmarkScenario/profile=eui64-dense-16       	       1	 130000000 ns/op	  280000 events/sec	  70.2 B/addr	  2 probe_p99	  6 probe_max
BenchmarkScenario/profile=collision-16         	       1	  90000000 ns/op	  150000 events/sec	  55.0 B/addr	 512 probe_p99	 640 probe_max
BenchmarkScenario/profile=backpressure-16      	       1	 140000000 ns/op	  200000 events/sec	  60.1 B/addr	  1 probe_p99	  3 probe_max	  8192 drops
PASS
`

// TestScenarioHeadline pins the per-scenario headline keys the bench
// trajectory tracks: one _eps/_b_per_addr pair per profile (dashes
// mapped to underscores), plus the collision probe tail and the
// backpressure shed count.
func TestScenarioHeadline(t *testing.T) {
	rep, err := Parse(strings.NewReader(scenarioSample))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"scenario_paper_eps":               310000,
		"scenario_paper_b_per_addr":        61.5,
		"scenario_eui64_dense_eps":         280000,
		"scenario_collision_eps":           150000,
		"scenario_collision_probe_p99":     512,
		"scenario_collision_probe_max":     640,
		"scenario_backpressure_drops":      8192,
		"scenario_backpressure_b_per_addr": 60.1,
	}
	for key, v := range want {
		if got := rep.Headline[key]; got != v {
			t.Errorf("headline[%q] = %v, want %v", key, got, v)
		}
	}
	// Profiles whose benchmarks are absent must not invent keys.
	if _, ok := rep.Headline["scenario_churn_eps"]; ok {
		t.Error("headline invented a key for an absent benchmark")
	}
}

func TestCompare(t *testing.T) {
	prev, _ := Parse(strings.NewReader(sample))
	faster := strings.ReplaceAll(sample, "1298119250", " 640000000")
	cur, err := Parse(strings.NewReader(faster))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	worst := Compare(&out, prev, cur)
	if worst > 1.01 {
		t.Fatalf("no regression expected, worst = %v", worst)
	}
	if !strings.Contains(out.String(), ">> improvement") {
		t.Fatalf("improvement not flagged:\n%s", out.String())
	}
	// And a regression in the other direction.
	var out2 strings.Builder
	worst = Compare(&out2, cur, prev)
	if worst < 1.5 {
		t.Fatalf("regression not detected, worst = %v", worst)
	}
	if !strings.Contains(out2.String(), "<< regression?") {
		t.Fatalf("regression not flagged:\n%s", out2.String())
	}
}
