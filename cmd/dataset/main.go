// Command dataset inspects and manipulates serialized hitlist datasets
// (the delta-varint binary format of internal/hitlist).
//
// Subcommands:
//
//	dataset stats  FILE           print size, /48 count, entropy summary
//	dataset diff   A B            compare two datasets (sizes, overlap)
//	dataset merge  OUT A B [C..]  union several datasets into OUT
//	dataset release FILE          print the /48-truncated release form
//	dataset export  FILE          print one address per line
//
//lint:durable-path merge writes dataset files users depend on
package main

import (
	"flag"
	"fmt"
	"os"

	"hitlist6/internal/addr"
	"hitlist6/internal/hitlist"
	"hitlist6/internal/stats"
)

func main() {
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}
	var err error
	switch args[0] {
	case "stats":
		err = cmdStats(args[1:])
	case "diff":
		err = cmdDiff(args[1:])
	case "merge":
		err = cmdMerge(args[1:])
	case "release":
		err = cmdRelease(args[1:])
	case "export":
		err = cmdExport(args[1:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dataset:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dataset stats|diff|merge|release|export ...")
	os.Exit(2)
}

func load(path string) (*hitlist.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return hitlist.ReadDataset(f)
}

func cmdStats(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("stats needs exactly one file")
	}
	d, err := load(args[0])
	if err != nil {
		return err
	}
	p48s := make(map[addr.Prefix48]struct{})
	var entropies []float64
	euis := 0
	d.Each(func(a addr.Addr) bool {
		p48s[a.P48()] = struct{}{}
		entropies = append(entropies, a.IID().NormalizedEntropy())
		if a.IID().IsEUI64() {
			euis++
		}
		return true
	})
	dist := stats.NewDistribution(entropies)
	fmt.Printf("name:            %s\n", d.Name)
	fmt.Printf("addresses:       %s\n", stats.Comma(int64(d.Len())))
	fmt.Printf("distinct /48s:   %s\n", stats.Comma(int64(len(p48s))))
	if len(p48s) > 0 {
		fmt.Printf("addrs per /48:   %.1f\n", float64(d.Len())/float64(len(p48s)))
	}
	fmt.Printf("median entropy:  %.3f\n", dist.Median())
	fmt.Printf("EUI-64 share:    %s\n", stats.Pct(float64(euis)/float64(max(1, d.Len())), 2))
	return nil
}

func cmdDiff(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("diff needs exactly two files")
	}
	a, err := load(args[0])
	if err != nil {
		return err
	}
	b, err := load(args[1])
	if err != nil {
		return err
	}
	common := hitlist.IntersectionSize(a, b)
	fmt.Printf("%s: %s addresses\n", a.Name, stats.Comma(int64(a.Len())))
	fmt.Printf("%s: %s addresses\n", b.Name, stats.Comma(int64(b.Len())))
	fmt.Printf("common: %s (%s of A, %s of B)\n",
		stats.Comma(int64(common)),
		stats.Pct(float64(common)/float64(max(1, a.Len())), 2),
		stats.Pct(float64(common)/float64(max(1, b.Len())), 2))
	fmt.Printf("only in A: %s\n", stats.Comma(int64(a.Len()-common)))
	fmt.Printf("only in B: %s\n", stats.Comma(int64(b.Len()-common)))
	return nil
}

func cmdMerge(args []string) error {
	if len(args) < 3 {
		return fmt.Errorf("merge needs OUT plus at least two inputs")
	}
	out := hitlist.NewDataset("merged")
	for _, path := range args[1:] {
		d, err := load(path)
		if err != nil {
			return err
		}
		d.Each(func(a addr.Addr) bool {
			out.Add(a)
			return true
		})
	}
	f, err := os.Create(args[0])
	if err != nil {
		return err
	}
	if _, err := out.WriteTo(f); err != nil {
		//lint:durable best-effort cleanup; the write error being returned is the root cause
		f.Close()
		return err
	}
	// Close flushes; a dropped error here could report a truncated file
	// as written.
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s addresses to %s\n", stats.Comma(int64(out.Len())), args[0])
	return nil
}

func cmdRelease(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("release needs exactly one file")
	}
	d, err := load(args[0])
	if err != nil {
		return err
	}
	fmt.Print(hitlist.Release(d))
	return nil
}

func cmdExport(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("export needs exactly one file")
	}
	d, err := load(args[0])
	if err != nil {
		return err
	}
	for _, a := range d.Addrs() {
		fmt.Println(a)
	}
	return nil
}
