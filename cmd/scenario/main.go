// Command scenario runs the workload matrix harness from the command
// line — the same runner CI's scenario-matrix job executes, so humans
// and automation share one matrix definition.
//
//	scenario list [-json]
//	scenario describe <profile> [-json]
//	scenario run [-json] [-full] [-profiles a,b | -all] [-shards 1,16]
//	             [-queues chan,spsc] [-seeds 1,2] [-scale 0.02] [-days 8]
//
// run executes every selected (profile, shards, queue, seed) cell
// through the real ingest pipeline and asserts the determinism
// invariant: byte-identical canonical corpus checksums and scenario
// reports per (profile, seed), including the checkpoint-mid-stream →
// restore leg on durable profiles. Any divergence exits non-zero
// naming the cell. The default slice is the reduced per-PR matrix
// (shard-count extremes, two seeds); -full selects the nightly matrix.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"hitlist6/internal/workload"
	"hitlist6/internal/workload/matrix"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "list":
		return cmdList(args[1:], stdout, stderr)
	case "describe":
		return cmdDescribe(args[1:], stdout, stderr)
	case "run":
		return cmdRun(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "scenario: unknown command %q\n", args[0])
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  scenario list [-json]                     show the profile catalog
  scenario describe <profile> [-json]       show one profile in full
  scenario run [flags] [profile ...]        run the determinism matrix

run flags:
  -all            run every profile (default when none named)
  -full           the nightly matrix ({1,4,16} shards, 3 seeds)
                  instead of the reduced per-PR slice ({1,16}, 2 seeds)
  -json           emit the full matrix result as JSON
  -shards LIST    comma-separated shard counts (e.g. 1,16)
  -queues LIST    comma-separated queue kinds out of chan,spsc
  -seeds LIST     comma-separated seeds (e.g. 1,2,3)
  -scale F        simnet site-scale multiplier (default 0.02)
  -days N         study window length in days (default 8)
`)
}

// profileJSON is the list/describe JSON shape.
type profileJSON struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Durable     bool   `json:"durable"`
	DropRun     bool   `json:"drop_run"`
	BatchSize   int    `json:"batch_size,omitempty"`
	QueueDepth  int    `json:"queue_depth,omitempty"`
}

func toJSON(p *workload.Profile) profileJSON {
	return profileJSON{
		Name:        p.Name,
		Description: p.Description,
		Durable:     p.Durable,
		DropRun:     p.Hints.DropRun,
		BatchSize:   p.Hints.BatchSize,
		QueueDepth:  p.Hints.QueueDepth,
	}
}

func cmdList(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("list", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *asJSON {
		out := make([]profileJSON, 0, len(workload.Profiles()))
		for _, p := range workload.Profiles() {
			out = append(out, toJSON(p))
		}
		writeJSON(stdout, out)
		return 0
	}
	for _, p := range workload.Profiles() {
		tags := ""
		if p.Durable {
			tags += " [durable]"
		}
		if p.Hints.DropRun {
			tags += " [drop-leg]"
		}
		fmt.Fprintf(stdout, "%-14s%s\n    %s\n", p.Name, tags, p.Description)
	}
	return 0
}

func cmdDescribe(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("describe", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "scenario describe: exactly one profile name required")
		return 2
	}
	p, ok := workload.Lookup(fs.Arg(0))
	if !ok {
		fmt.Fprintf(stderr, "scenario: unknown profile %q (see `scenario list`)\n", fs.Arg(0))
		return 1
	}
	if *asJSON {
		writeJSON(stdout, toJSON(p))
		return 0
	}
	fmt.Fprintf(stdout, "%s\n  %s\n", p.Name, p.Description)
	fmt.Fprintf(stdout, "  durable (checkpoint/restore leg): %v\n", p.Durable)
	fmt.Fprintf(stdout, "  load-shedding leg:                %v\n", p.Hints.DropRun)
	if p.Hints.BatchSize != 0 || p.Hints.QueueDepth != 0 {
		fmt.Fprintf(stdout, "  pipeline hints: batch=%d queue-depth=%d\n", p.Hints.BatchSize, p.Hints.QueueDepth)
	}
	return 0
}

func cmdRun(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit the matrix result as JSON")
	all := fs.Bool("all", false, "run every profile")
	full := fs.Bool("full", false, "nightly matrix instead of the reduced slice")
	shardsFlag := fs.String("shards", "", "comma-separated shard counts")
	queuesFlag := fs.String("queues", "", "comma-separated queue kinds (chan,spsc)")
	seedsFlag := fs.String("seeds", "", "comma-separated seeds")
	scale := fs.Float64("scale", 0, "simnet site-scale multiplier")
	days := fs.Int("days", 0, "study window length in days")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	opts := matrix.Reduced()
	if *full {
		opts = matrix.Default()
	}
	switch {
	case fs.NArg() > 0 && *all:
		fmt.Fprintln(stderr, "scenario run: -all and explicit profile names are mutually exclusive")
		return 2
	case fs.NArg() > 0:
		opts.Profiles = fs.Args()
	}
	var err error
	if *shardsFlag != "" {
		if opts.Shards, err = parseInts(*shardsFlag); err != nil {
			fmt.Fprintln(stderr, "scenario run: -shards:", err)
			return 2
		}
	}
	if *queuesFlag != "" {
		opts.Queues = strings.Split(*queuesFlag, ",")
	}
	if *seedsFlag != "" {
		if opts.Seeds, err = parseInt64s(*seedsFlag); err != nil {
			fmt.Fprintln(stderr, "scenario run: -seeds:", err)
			return 2
		}
	}
	if *scale != 0 {
		opts.Size.Scale = *scale
	}
	if *days != 0 {
		opts.Size.Days = *days
	}

	res, err := matrix.Run(opts)
	if err != nil {
		fmt.Fprintln(stderr, "scenario run: FAIL:", err)
		return 1
	}
	if *asJSON {
		writeJSON(stdout, res)
		return 0
	}
	fmt.Fprintf(stdout, "matrix: %d cells over %d scenarios (scale %g, %d days)\n\n",
		res.Cells, len(res.Scenarios), res.Size.Scale, res.Size.Days)
	fmt.Fprintf(stdout, "%-14s %8s %8s %12s %8s %9s %9s %8s %9s\n",
		"scenario", "cells", "events", "events/sec", "addrs", "B/addr", "probe_p99", "drops", "outages")
	for _, sc := range res.Scenarios {
		h := sc.Headline
		fmt.Fprintf(stdout, "%-14s %8d %8d %12.0f %8d %9.1f %9d %8d %9d\n",
			sc.Profile, len(sc.Cells), h.Events, h.EventsPerSec, h.Addrs,
			h.BytesPerAddr, h.ProbeP99, h.Dropped, h.Detected)
	}
	fmt.Fprintln(stdout, "\nPASS: all cells byte-identical per (profile, seed)")
	return 0
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInt64s(s string) ([]int64, error) {
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func writeJSON(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Encoding in-memory structs of primitives cannot fail.
	_ = enc.Encode(v)
}
