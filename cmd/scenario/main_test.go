package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hitlist6/internal/workload"
	"hitlist6/internal/workload/matrix"
)

func TestListShowsEveryProfile(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"list"}, &out, &errb); code != 0 {
		t.Fatalf("list exited %d: %s", code, errb.String())
	}
	for _, name := range workload.Names() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestListJSON(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"list", "-json"}, &out, &errb); code != 0 {
		t.Fatalf("list -json exited %d: %s", code, errb.String())
	}
	var profiles []profileJSON
	if err := json.Unmarshal(out.Bytes(), &profiles); err != nil {
		t.Fatalf("list -json not valid JSON: %v\n%s", err, out.String())
	}
	if len(profiles) != len(workload.Names()) {
		t.Fatalf("list -json has %d profiles, want %d", len(profiles), len(workload.Names()))
	}
}

func TestDescribe(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"describe", "outage-storm"}, &out, &errb); code != 0 {
		t.Fatalf("describe exited %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "outage-storm") {
		t.Fatalf("describe output:\n%s", out.String())
	}
	if code := run([]string{"describe", "nope"}, &out, &errb); code != 1 {
		t.Fatalf("describe of unknown profile exited %d, want 1", code)
	}
}

func TestUnknownCommand(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"frobnicate"}, &out, &errb); code != 2 {
		t.Fatalf("unknown command exited %d, want 2", code)
	}
}

// TestRunSingleCell drives the CLI end to end over the smallest slice:
// one profile, one shard count, one queue, one seed.
func TestRunSingleCell(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"run", "-shards", "2", "-queues", "chan", "-seeds", "7", "paper"}, &out, &errb)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "PASS") || !strings.Contains(out.String(), "paper") {
		t.Fatalf("run output:\n%s", out.String())
	}
}

// TestRunJSON checks the machine-readable result round-trips into the
// matrix package's own types.
func TestRunJSON(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"run", "-json", "-shards", "1,2", "-seeds", "3", "collision"}, &out, &errb)
	if code != 0 {
		t.Fatalf("run -json exited %d: %s", code, errb.String())
	}
	var res matrix.Result
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("run -json not valid JSON: %v", err)
	}
	if len(res.Scenarios) != 1 || res.Scenarios[0].Profile != "collision" {
		t.Fatalf("unexpected result: %+v", res)
	}
	if res.Scenarios[0].Headline.ProbeMax == 0 {
		t.Fatal("collision headline lost its probe stats")
	}
}

func TestRunFlagConflict(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"run", "-all", "paper"}, &out, &errb); code != 2 {
		t.Fatalf("-all with explicit profiles exited %d, want 2", code)
	}
}
