package hitlist6

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"hitlist6/internal/collector"
	"hitlist6/internal/ingest"
	"hitlist6/internal/outage"
	"hitlist6/internal/snapfmt"
)

// A study checkpoint is everything CollectPassive needs to resume a
// partially replayed window and still produce byte-identical results:
// the replay position, the corpus so far, the day-slice corpus so far,
// and the outage series so far — the corpus alone is not enough,
// because the single ingest pass feeds all three. On disk it is three
// self-delimiting streams back to back:
//
//	snapfmt "h6ckpt01": meta section (config fingerprint + replay
//	                    position), series section (outage.Series codec)
//	collector snapshot: the full corpus
//	collector snapshot: the day-slice corpus
//
// The config fingerprint pins the checkpoint to one deterministic
// replay: resuming under a different seed, scale, window or bin would
// silently weld two unrelated studies together, so it is an error.
const (
	ckptMagic   = "h6ckpt01"
	ckptVersion = 1

	ckptSecMeta   = 1
	ckptSecSeries = 2

	ckptMetaWire = 48
)

// ckptMeta is the checkpoint's replay position and config fingerprint.
type ckptMeta struct {
	events   uint64 // replay events already folded into the corpus
	seed     int64
	scale    float64
	days     int
	sliceDay int
	binSec   int64
}

func metaFor(cfg Config, bin time.Duration, events uint64) ckptMeta {
	return ckptMeta{
		events:   events,
		seed:     cfg.Seed,
		scale:    cfg.Scale,
		days:     cfg.Days,
		sliceDay: cfg.SliceDay,
		binSec:   int64(bin / time.Second),
	}
}

// matches rejects a checkpoint recorded under a different study
// configuration.
func (m ckptMeta) matches(want ckptMeta) error {
	if m.seed != want.seed || m.scale != want.scale || m.days != want.days ||
		m.sliceDay != want.sliceDay || m.binSec != want.binSec {
		return fmt.Errorf("hitlist6: checkpoint is for study (seed=%d scale=%g days=%d slice=%d bin=%ds), this study is (seed=%d scale=%g days=%d slice=%d bin=%ds)",
			m.seed, m.scale, m.days, m.sliceDay, m.binSec,
			want.seed, want.scale, want.days, want.sliceDay, want.binSec)
	}
	return nil
}

// studyCheckpoint is a fully decoded checkpoint.
type studyCheckpoint struct {
	meta   ckptMeta
	series *outage.Series
	corpus *collector.Collector
	day    *collector.Collector
}

// snapshotter is the corpus side of the checkpoint writer: both
// *collector.Store (the live mid-run view, snapshotting under its read
// lock) and *collector.Collector (a detached corpus) satisfy it.
type snapshotter interface {
	Snapshot(w io.Writer) error
}

// writeStudyCheckpoint serializes one checkpoint to w. The caller owns
// buffering and atomicity (see ingest.AtomicWriteFile).
func writeStudyCheckpoint(w io.Writer, meta ckptMeta, series *outage.Series, corpus snapshotter, day *collector.Collector) error {
	sw, err := snapfmt.NewWriter(w, ckptMagic, ckptVersion)
	if err != nil {
		return err
	}
	if err := sw.Begin(ckptSecMeta, ckptMetaWire); err != nil {
		return err
	}
	var mb [ckptMetaWire]byte
	binary.BigEndian.PutUint64(mb[0:], meta.events)
	binary.BigEndian.PutUint64(mb[8:], uint64(meta.seed))
	binary.BigEndian.PutUint64(mb[16:], math.Float64bits(meta.scale))
	binary.BigEndian.PutUint64(mb[24:], uint64(meta.days))
	binary.BigEndian.PutUint64(mb[32:], uint64(meta.sliceDay))
	binary.BigEndian.PutUint64(mb[40:], uint64(meta.binSec))
	if _, err := sw.Write(mb[:]); err != nil {
		return err
	}
	if err := sw.End(); err != nil {
		return err
	}

	sb, err := series.MarshalBinary()
	if err != nil {
		return err
	}
	if err := sw.Begin(ckptSecSeries, uint64(len(sb))); err != nil {
		return err
	}
	if _, err := sw.Write(sb); err != nil {
		return err
	}
	if err := sw.End(); err != nil {
		return err
	}
	if err := sw.Close(); err != nil {
		return err
	}

	if err := corpus.Snapshot(w); err != nil {
		return err
	}
	return day.Snapshot(w)
}

// readStudyCheckpoint decodes one checkpoint from r. Damage of any
// kind errors out; nothing partial is returned.
func readStudyCheckpoint(r io.Reader) (*studyCheckpoint, error) {
	sr, err := snapfmt.NewReader(r, ckptMagic)
	if err != nil {
		return nil, err
	}
	if v := sr.Version(); v != ckptVersion {
		return nil, fmt.Errorf("hitlist6: checkpoint version %d unsupported (have %d)", v, ckptVersion)
	}
	id, size, err := sr.Next()
	if err != nil {
		return nil, fmt.Errorf("hitlist6: checkpoint meta: %w", err)
	}
	if id != ckptSecMeta || size != ckptMetaWire {
		return nil, fmt.Errorf("hitlist6: checkpoint meta section malformed (id %d, %d bytes)", id, size)
	}
	var mb [ckptMetaWire]byte
	if _, err := io.ReadFull(sr, mb[:]); err != nil {
		return nil, fmt.Errorf("hitlist6: checkpoint meta: %w", err)
	}
	if err := sr.End(); err != nil {
		return nil, fmt.Errorf("hitlist6: checkpoint meta: %w", err)
	}
	ck := &studyCheckpoint{meta: ckptMeta{
		events:   binary.BigEndian.Uint64(mb[0:]),
		seed:     int64(binary.BigEndian.Uint64(mb[8:])),
		scale:    math.Float64frombits(binary.BigEndian.Uint64(mb[16:])),
		days:     int(int64(binary.BigEndian.Uint64(mb[24:]))),
		sliceDay: int(int64(binary.BigEndian.Uint64(mb[32:]))),
		binSec:   int64(binary.BigEndian.Uint64(mb[40:])),
	}}

	id, size, err = sr.Next()
	if err != nil {
		return nil, fmt.Errorf("hitlist6: checkpoint series: %w", err)
	}
	const maxSeriesWire = 1 << 30
	if id != ckptSecSeries || size > maxSeriesWire {
		return nil, fmt.Errorf("hitlist6: checkpoint series section malformed (id %d, %d bytes)", id, size)
	}
	sb := make([]byte, size)
	if _, err := io.ReadFull(sr, sb); err != nil {
		return nil, fmt.Errorf("hitlist6: checkpoint series: %w", err)
	}
	if err := sr.End(); err != nil {
		return nil, fmt.Errorf("hitlist6: checkpoint series: %w", err)
	}
	if ck.series, err = outage.UnmarshalSeries(sb); err != nil {
		return nil, fmt.Errorf("hitlist6: checkpoint: %w", err)
	}
	if _, _, err := sr.Next(); err != io.EOF {
		if err == nil {
			return nil, fmt.Errorf("hitlist6: checkpoint carries extra sections")
		}
		return nil, fmt.Errorf("hitlist6: checkpoint: %w", err)
	}

	if ck.corpus, err = collector.OpenSnapshot(r); err != nil {
		return nil, fmt.Errorf("hitlist6: checkpoint corpus: %w", err)
	}
	if ck.day, err = collector.OpenSnapshot(r); err != nil {
		return nil, fmt.Errorf("hitlist6: checkpoint day slice: %w", err)
	}
	return ck, nil
}

// readCheckpointFile loads a checkpoint file. A missing file returns
// (nil, nil): the fresh-start case.
func readCheckpointFile(path string) (*studyCheckpoint, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return readStudyCheckpoint(bufio.NewReaderSize(f, 1<<20))
}

// writeCheckpoint quiesces the pipeline and persists the study's
// resume state at the given replay position. Called from the paused
// replay producer (see ntppool.IngestProgress).
func (s *Study) writeCheckpoint(pipe *ingest.Pipeline, bin time.Duration, events uint64) error {
	pipe.Quiesce()
	day, _ := pipe.Stage("dayslice").(*ingest.DaySliceStage)
	out, _ := pipe.Stage("outage").(*ingest.OutageSeriesStage)
	if day == nil || out == nil {
		return fmt.Errorf("hitlist6: checkpoint: pipeline stages missing")
	}
	series := out.Series()
	_, err := ingest.AtomicWriteFile(s.Config.CheckpointPath, func(w io.Writer) error {
		return writeStudyCheckpoint(w, metaFor(s.Config, bin, events), series, pipe.Store(), day.Col)
	})
	return err
}
