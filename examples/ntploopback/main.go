// NTP loopback example: the measurement primitive itself, on real
// sockets. Starts the same stratum-2 UDP server the study's 27 vantage
// points ran, attaches a passive source-address observer (the collection
// hook), queries it with the SNTP client, and prints what the server
// learned — a one-process demonstration of "run an NTP server, harvest
// source addresses".
//
//	go run ./examples/ntploopback
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"hitlist6/internal/ntp"
)

func main() {
	observed := make(chan netip.Addr, 16)
	mkServer := func(listen string) (*ntp.Server, error) {
		return ntp.NewServer(ntp.ServerConfig{
			Addr:        listen, // ephemeral port on loopback
			Stratum:     2,
			ReferenceID: 0x47505300,
			Observer: func(src netip.Addr, at time.Time) {
				observed <- src
			},
		})
	}
	srv, err := mkServer("[::1]:0")
	if err != nil {
		// No IPv6 loopback here; the protocol is address-family agnostic.
		srv, err = mkServer("127.0.0.1:0")
	}
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("stratum-2 NTP server on", srv.LocalAddr())

	for i := 0; i < 3; i++ {
		res, err := ntp.Query(srv.LocalAddr().String(), 2*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %d: stratum %d, offset %v, delay %v\n",
			i+1, res.Stratum, res.Offset.Round(time.Microsecond),
			res.Delay.Round(time.Microsecond))
	}

	fmt.Println("\npassively observed source addresses:")
	for i := 0; i < 3; i++ {
		fmt.Println("  ", <-observed)
	}
	reqs, replies, dropped := srv.Stats()
	fmt.Printf("\nserver stats: %d requests, %d replies, %d dropped\n",
		reqs, replies, dropped)
}
