// Backscan example: reproduce §4.2 — probe NTP clients back right after
// they query, plus a random address in each client's /64 as an alias
// canary — and show why passive+active beats either alone: two thirds of
// clients answer, random IIDs answer only inside aliased networks, and
// those networks were invisible to the active hitlist.
//
//	go run ./examples/backscan
package main

import (
	"fmt"
	"log"

	"hitlist6"
)

func main() {
	cfg := hitlist6.DefaultConfig()
	cfg.Scale = 0.1
	cfg.Days = 45
	cfg.SliceDay = 30
	cfg.BackscanDays = 5

	study, err := hitlist6.NewStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := study.Run(); err != nil {
		log.Fatal(err)
	}

	stats, err := study.Backscan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(hitlist6.RenderBackscan(stats, study))

	// The §4.2 punchline: NTP clients living inside aliased prefixes are
	// invisible to active measurement (their prefix is filtered as
	// aliased), yet the passive corpus holds them.
	inAliased := 0
	for _, o := range stats.Outcomes {
		if study.World.IsAliased(o.Client.P64()) {
			inAliased++
		}
	}
	fmt.Printf("NTP clients inside aliased /64s: %d ", inAliased)
	fmt.Println("(active campaigns filter these prefixes and can never list such hosts)")
}
