// Outage example: the paper's introduction lists outage detection among
// the applications a large passive hitlist enables. This example injects
// a 36-hour outage into Telefonica Brasil, replays the NTP query stream,
// and shows the detector recovering the window purely from the passive
// feed — no probes sent.
//
//	go run ./examples/outage
package main

import (
	"fmt"
	"log"
	"time"

	"hitlist6/internal/outage"
	"hitlist6/internal/simnet"
)

func main() {
	cfg := simnet.DefaultConfig(7, 0.1)
	cfg.Days = 30
	for i := range cfg.ASes {
		if cfg.ASes[i].ASN == 27699 { // Telefonica Brasil
			cfg.ASes[i].Outages = []simnet.OutageWindow{{StartDay: 12, Hours: 36}}
		}
	}
	w, err := simnet.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}

	series, err := outage.BuildSeries(w, 6*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("binned %d ASes into %d six-hour bins\n", len(series.ByAS), series.Bins)

	events := outage.Detect(series, outage.DefaultConfig())
	fmt.Printf("detected %d outage event(s):\n", len(events))
	for _, e := range events {
		name := ""
		if as := w.ASDB.Get(e.ASN); as != nil {
			name = as.Name
		}
		fmt.Printf("  %s  [%s]\n", e, name)
	}

	truthFrom := w.Origin.AddDate(0, 0, 12)
	truthTo := truthFrom.Add(36 * time.Hour)
	fmt.Printf("\nground truth: AS27699 dark %s – %s\n",
		truthFrom.Format("02-Jan-06 15:04"), truthTo.Format("02-Jan-06 15:04"))
	for _, e := range events {
		if e.ASN == 27699 && e.Overlaps(truthFrom, truthTo) {
			fmt.Println("=> recovered from the passive feed alone")
			return
		}
	}
	fmt.Println("=> missed (try a larger -scale)")
}
