// Outage example: the paper's introduction lists outage detection among
// the applications a large passive hitlist enables. This example injects
// a 36-hour outage into Telefonica Brasil and recovers the window purely
// from the passive feed — no probes sent — using a single replay: the
// per-AS outage series is an enrichment stage of the same sharded ingest
// pass that builds the address corpus, not a second pass over the world.
//
//	go run ./examples/outage
package main

import (
	"fmt"
	"log"
	"time"

	"hitlist6/internal/ingest"
	"hitlist6/internal/ntppool"
	"hitlist6/internal/outage"
	"hitlist6/internal/simnet"
)

func main() {
	cfg := simnet.DefaultConfig(7, 0.1)
	cfg.Days = 30
	for i := range cfg.ASes {
		if cfg.ASes[i].ASN == 27699 { // Telefonica Brasil
			cfg.ASes[i].Outages = []simnet.OutageWindow{{StartDay: 12, Hours: 36}}
		}
	}
	w, err := simnet.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	pool, err := ntppool.New(ntppool.StudyVantages())
	if err != nil {
		log.Fatal(err)
	}

	// One pass feeds everything: the pipeline shards the replay into the
	// collector corpus while the outage stage bins the same events per AS.
	pcfg := ingest.DefaultConfig(0)
	pcfg.Stages = []ingest.StageFactory{
		ingest.OutageSeries(w.ASDB, w.Origin, w.End, 6*time.Hour),
	}
	pipe, err := ingest.New(pcfg)
	if err != nil {
		log.Fatal(err)
	}
	ntppool.RunIngest(w, pool, pipe)
	corpus := pipe.Close()
	stage, ok := pipe.Stage("outage").(*ingest.OutageSeriesStage)
	if !ok {
		log.Fatal("outage stage missing")
	}
	series := stage.Series()
	fmt.Printf("one pass: %d unique clients collected, %d ASes binned into %d six-hour bins (%d replays of the world)\n",
		corpus.NumAddrs(), len(series.ByAS), series.Bins, w.Replays())

	events := outage.Detect(series, outage.DefaultConfig())
	fmt.Printf("detected %d outage event(s):\n", len(events))
	for _, e := range events {
		name := ""
		if as := w.ASDB.Get(e.ASN); as != nil {
			name = as.Name
		}
		fmt.Printf("  %s  [%s]\n", e, name)
	}

	truthFrom := w.Origin.AddDate(0, 0, 12)
	truthTo := truthFrom.Add(36 * time.Hour)
	fmt.Printf("\nground truth: AS27699 dark %s – %s\n",
		truthFrom.Format("02-Jan-06 15:04"), truthTo.Format("02-Jan-06 15:04"))
	for _, e := range events {
		if e.ASN == 27699 && e.Overlaps(truthFrom, truthTo) {
			fmt.Println("=> recovered from the passive feed alone")
			return
		}
	}
	fmt.Println("=> missed (try a larger -scale)")
}
