// Quickstart: run a small end-to-end study and print the headline
// results — the Table 1 dataset comparison and the entropy medians that
// separate passive from active corpora.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hitlist6"
)

func main() {
	cfg := hitlist6.DefaultConfig()
	cfg.Scale = 0.1 // small and fast; raise toward 1.0 for study size
	cfg.Days = 60
	cfg.SliceDay = 40

	study, err := hitlist6.NewStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := study.Run(); err != nil {
		log.Fatal(err)
	}

	table1, err := study.Table1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table1.Render())

	fig1, err := study.Figure1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("median normalized IID entropy: NTP %.2f, Hitlist %.2f, CAIDA %.2f\n",
		fig1.NTP.Median(), fig1.Hitlist.Median(), fig1.CAIDA.Median())
	fmt.Println("(the passive corpus is client-heavy and random-addressed;")
	fmt.Println(" the active corpora are infrastructure-heavy and operator-addressed)")

	top, err := study.TopCountries(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop query origins:")
	for _, c := range top {
		fmt.Printf("  %s  %d addresses\n", c.Country, c.Count)
	}
}
