// Geolocation example: reproduce §5.3 — the Rye–Beverly wired-to-wireless
// MAC offset linkage. Wired MACs recovered from EUI-64 IIDs are matched
// to geolocated WiFi BSSIDs from wardriving data at a per-OUI offset
// inferred purely from the data, yielding street-level positions for home
// routers that merely asked a public server for the time.
//
//	go run ./examples/geolocation
package main

import (
	"fmt"
	"log"

	"hitlist6"
)

func main() {
	cfg := hitlist6.DefaultConfig()
	cfg.Scale = 0.25
	cfg.Days = 60
	cfg.SliceDay = 40

	study, err := hitlist6.NewStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := study.CollectPassive(); err != nil {
		log.Fatal(err)
	}

	geo, err := study.Geolocation(0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("wired MACs from EUI-64 IIDs: %d\n", geo.WiredMACs)
	fmt.Printf("per-OUI offsets inferred:    %d\n", len(geo.Offsets))
	for _, o := range geo.Offsets {
		fmt.Printf("  OUI %s  offset %+d  (%d matches)\n", o.OUI, o.Offset, o.Matches)
	}

	fmt.Printf("\ndevices geolocated: %d\n", len(geo.Located))
	for i, g := range geo.Located {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(geo.Located)-5)
			break
		}
		fmt.Printf("  wired %s -> BSSID %s @ (%.3f, %.3f)\n",
			g.Wired, g.BSSID, g.Location.Lat, g.Location.Lon)
	}

	fmt.Println("\nby country (paper: Germany dominates via AVM Fritz!Box CPE):")
	for cc, n := range geo.Countries {
		fmt.Printf("  %s: %d\n", cc, n)
	}
	fmt.Println("\nThe only defense is severing the wired-MAC-to-BSSID link:")
	fmt.Println("use random (RFC 4941/7217) IPv6 addresses, never EUI-64.")
}
