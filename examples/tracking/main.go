// Tracking example: reproduce §5.1/§5.2 — extract MAC addresses from
// EUI-64 IIDs in the passive corpus, attribute manufacturers (Table 2),
// classify each identifier's movement pattern, and print Figure 7-style
// timelines for the privacy-relevant classes.
//
//	go run ./examples/tracking
package main

import (
	"fmt"
	"log"

	"hitlist6"
	"hitlist6/internal/tracking"
)

func main() {
	cfg := hitlist6.DefaultConfig()
	cfg.Scale = 0.15
	cfg.Days = 90
	cfg.SliceDay = 60

	study, err := hitlist6.NewStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Tracking needs only the passive corpus: the single ingest pass.
	if err := study.CollectPassive(); err != nil {
		log.Fatal(err)
	}

	tr, err := study.Tracking()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("EUI-64 addresses in corpus: %d (%.2f%% of %d)\n",
		tr.EUI64Addresses,
		100*float64(tr.EUI64Addresses)/float64(study.Collector.NumAddrs()),
		study.Collector.NumAddrs())
	fmt.Printf("unique embedded MACs: %d, unlisted share %.1f%%\n\n",
		len(tr.MACs), 100*tr.UnlistedShare())

	fmt.Println("Table 2 — manufacturers:")
	for i, row := range tr.Table2() {
		if i >= 8 {
			break
		}
		fmt.Printf("  %-50s %d\n", row.Manufacturer, row.Count)
	}

	fmt.Println("\ntracking classes (share of trackable MACs):")
	for c := tracking.MostlyStatic; c < tracking.NumClasses; c++ {
		fmt.Printf("  %-30s %5.2f%%  (%d)\n", c, 100*tr.ClassShare(c), tr.ClassCounts[c])
	}

	fmt.Println("\nexemplar timelines (Figure 7):")
	for _, c := range []tracking.Class{
		tracking.PrefixReassignment, tracking.MACReuse,
		tracking.ProviderChange, tracking.UserMovement,
	} {
		if ex := tr.Exemplar(c); ex != nil {
			fmt.Println(tracking.RenderTimeline(ex, study.World.ASDB))
		}
	}
}
