package hitlist6

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index) and reports the
// headline statistics via b.ReportMetric, so `go test -bench .` doubles as
// the reproduction run. Absolute values differ from the paper — the
// substrate is a simulator, not 27 VPSs — but the shape (who wins, by
// what order of magnitude, where the distributions sit) is the claim
// under test.

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/analysis"
	"hitlist6/internal/asdb"
	"hitlist6/internal/collector"
	"hitlist6/internal/geodb"
	hitlistpkg "hitlist6/internal/hitlist"
	"hitlist6/internal/ntp"
	"hitlist6/internal/oui"
	"hitlist6/internal/outage"
	"hitlist6/internal/rdns"
	"hitlist6/internal/scan"
	"hitlist6/internal/stats"
	"hitlist6/internal/tga"
	"hitlist6/internal/tracking"
)

// benchStudy is built once and shared: the benchmarks measure the
// experiment computations, not repeated world construction.
var (
	benchOnce sync.Once
	benchS    *Study
	benchErr  error
	benchBS   *scan.BackscanStats
)

func benchConfig() Config {
	return Config{
		Seed:          42,
		Scale:         0.25,
		Days:          120,
		SliceDay:      80,
		HitlistRounds: 3,
		BackscanDays:  3,
	}
}

func sharedStudy(b *testing.B) *Study {
	b.Helper()
	benchOnce.Do(func() {
		s, err := NewStudy(benchConfig())
		if err != nil {
			benchErr = err
			return
		}
		if err := s.Run(); err != nil {
			benchErr = err
			return
		}
		benchS = s
		benchBS, benchErr = s.Backscan()
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchS
}

// ---- Pipeline benchmarks ----

func BenchmarkWorldBuild(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		s, err := NewStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = s
	}
}

func BenchmarkPassiveCollection(b *testing.B) {
	cfg := benchConfig()
	s, err := NewStudy(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.CollectPassive(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s.Collector.NumAddrs()), "addrs")
	b.ReportMetric(float64(s.RunStats.Queries), "queries")
}

// BenchmarkPassiveCollectionSharded measures the full passive replay at
// increasing ingest shard counts (see internal/ingest for the pure
// pipeline benchmarks over a pre-materialized stream; this one includes
// query generation and pool selection on the producer side).
func BenchmarkPassiveCollectionSharded(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := benchConfig()
			cfg.IngestShards = shards
			s, err := NewStudy(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.CollectPassive(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(s.RunStats.Queries)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

func BenchmarkActiveHitlistBuild(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.BuildActive(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s.Hitlist.Dataset.Len()), "hitlist_addrs")
	b.ReportMetric(float64(s.CAIDA.Len()), "caida_addrs")
}

// ---- Table 1 / Table 2 ----

func BenchmarkTable1DatasetComparison(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	var t1 *analysis.Table1
	for i := 0; i < b.N; i++ {
		var err error
		t1, err = s.Table1()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(t1.NTP.Addrs), "ntp_addrs")
	b.ReportMetric(float64(t1.Hitlist.Addrs), "hitlist_addrs")
	b.ReportMetric(float64(t1.CAIDA.Addrs), "caida_addrs")
	b.ReportMetric(t1.NTP.AvgPer48, "ntp_avg_per_48")
}

func BenchmarkTable2Manufacturers(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	var rows []tracking.VendorRow
	for i := 0; i < b.N; i++ {
		tr, err := s.Tracking()
		if err != nil {
			b.Fatal(err)
		}
		rows = tr.Table2()
	}
	if len(rows) > 0 {
		b.ReportMetric(float64(rows[0].Count), "top_vendor_macs")
	}
}

// ---- Figures ----

func BenchmarkFigure1EntropyCDF(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	var f1 *analysis.Figure1
	for i := 0; i < b.N; i++ {
		var err error
		f1, err = s.Figure1()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f1.NTP.Median(), "ntp_median_entropy")
	b.ReportMetric(f1.Hitlist.Median(), "hitlist_median_entropy")
	b.ReportMetric(f1.CAIDA.Median(), "caida_median_entropy")
}

func BenchmarkFigure2aLifetimes(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	var f *analysis.Figure2a
	for i := 0; i < b.N; i++ {
		var err error
		f, err = s.Figure2a()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f.ObservedOnce, "observed_once_frac")
	b.ReportMetric(f.WeekOrLonger, "week_plus_frac")
}

func BenchmarkFigure2bIIDLifetimes(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	var f *analysis.Figure2b
	for i := 0; i < b.N; i++ {
		var err error
		f, err = s.Figure2b()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f.WeekOrLonger[addr.LowEntropy], "low_entropy_week_plus")
	b.ReportMetric(f.WeekOrLonger[addr.HighEntropy], "high_entropy_week_plus")
}

func BenchmarkFigure3Backscan(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	var hit, miss, random []float64
	for i := 0; i < b.N; i++ {
		hit, miss, random = Figure3(benchBS)
	}
	b.ReportMetric(stats.NewDistribution(hit).Median(), "hit_median_entropy")
	b.ReportMetric(stats.NewDistribution(miss).Median(), "miss_median_entropy")
	_ = random
	_ = s
}

func BenchmarkFigure4aASEntropy(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	var rows []analysis.ASEntropy
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Figure4a(5)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) > 0 {
		b.ReportMetric(float64(rows[0].Count), "top_as_addrs")
		b.ReportMetric(rows[0].Dist.Median(), "top_as_median_entropy")
	}
}

func BenchmarkFigure4bASEntropyDay(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Figure4b(5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5Categories(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	var f5 *analysis.Figure5
	for i := 0; i < b.N; i++ {
		var err error
		f5, err = s.Figure5()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f5.NTP.Fractions[addr.CatHighEntropy], "ntp_high_entropy_frac")
	b.ReportMetric(f5.Hitlist.Fractions[addr.CatLowByte], "hitlist_low_byte_frac")
}

func BenchmarkFigure6aEUI64Lifetime(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	var d *stats.Distribution
	for i := 0; i < b.N; i++ {
		d = tracking.Figure6a(s.Collector)
	}
	b.ReportMetric(float64(d.N()), "eui64_iids")
}

func BenchmarkFigure6bPrefixSpread(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	var d *stats.Distribution
	for i := 0; i < b.N; i++ {
		d = tracking.Figure6b(s.Collector)
	}
	b.ReportMetric(d.Max(), "max_p64s_per_iid")
}

func BenchmarkFigure7Timelines(b *testing.B) {
	s := sharedStudy(b)
	tr, err := s.Tracking()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		for c := tracking.PrefixReassignment; c < tracking.NumClasses; c++ {
			if ex := tr.Exemplar(c); ex != nil {
				n += len(tracking.Timeline(ex, s.World.ASDB))
			}
		}
	}
	b.ReportMetric(float64(n)/float64(b.N), "timeline_entries")
}

// ---- Section-level experiments ----

func BenchmarkSection42AliasDiscovery(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	var bs *scan.BackscanStats
	for i := 0; i < b.N; i++ {
		var err error
		bs, err = s.Backscan()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(bs.ClientResponseRate(), "client_response_rate")
	b.ReportMetric(bs.RandomResponseRate(), "random_response_rate")
	b.ReportMetric(float64(len(bs.AliasedPrefixes)), "aliased_p64s")
}

func BenchmarkSection52TrackingClasses(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	var tr *tracking.Analysis
	for i := 0; i < b.N; i++ {
		var err error
		tr, err = s.Tracking()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Trackable), "trackable_macs")
	b.ReportMetric(tr.ClassShare(tracking.MostlyStatic), "static_share")
	b.ReportMetric(tr.UnlistedShare(), "unlisted_share")
}

func BenchmarkSection53Geolocation(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	var g *GeolocationResult
	for i := 0; i < b.N; i++ {
		var err error
		g, err = s.Geolocation(0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(g.Located)), "geolocated_devices")
	b.ReportMetric(float64(len(g.Offsets)), "ouis_with_offsets")
}

// ---- Ablations (DESIGN.md §4) ----

// BenchmarkAblationPermutationGroup measures ZMap's multiplicative-group
// iteration; BenchmarkAblationPermutationShuffle the naive alternative
// that must materialize and shuffle the whole target list.
func BenchmarkAblationPermutationGroup(b *testing.B) {
	const n = 1 << 20
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pm, err := scan.NewPermutation(n, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		var sum uint64
		for {
			v, ok := pm.Next()
			if !ok {
				break
			}
			sum += v
		}
		if sum != n*(n-1)/2 {
			b.Fatal("bad permutation sum")
		}
	}
}

func BenchmarkAblationPermutationShuffle(b *testing.B) {
	const n = 1 << 20
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		idx := make([]uint64, n)
		for j := range idx {
			idx[j] = uint64(j)
		}
		rng := rand.New(rand.NewSource(int64(i)))
		rng.Shuffle(n, func(a, c int) { idx[a], idx[c] = idx[c], idx[a] })
		var sum uint64
		for _, v := range idx {
			sum += v
		}
		if sum != n*(n-1)/2 {
			b.Fatal("bad shuffle sum")
		}
	}
}

// BenchmarkAblationAddressSet* compares the comparable-array map key the
// collector uses against string keys.
func BenchmarkAblationAddressSetArrayKey(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	addrs := make([]addr.Addr, 1<<16)
	for i := range addrs {
		addrs[i] = addr.FromParts(rng.Uint64(), rng.Uint64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := make(map[addr.Addr]struct{}, len(addrs))
		for _, a := range addrs {
			m[a] = struct{}{}
		}
		if len(m) != len(addrs) {
			b.Fatal("collision")
		}
	}
}

func BenchmarkAblationAddressSetStringKey(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	addrs := make([]addr.Addr, 1<<16)
	for i := range addrs {
		addrs[i] = addr.FromParts(rng.Uint64(), rng.Uint64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := make(map[string]struct{}, len(addrs))
		for _, a := range addrs {
			m[string(a[:])] = struct{}{}
		}
		if len(m) != len(addrs) {
			b.Fatal("collision")
		}
	}
}

// BenchmarkAblationEntropy* compares the table-backed nibble entropy used
// everywhere against a direct math.Log2 implementation.
func BenchmarkAblationEntropyTable(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	iids := make([]addr.IID, 4096)
	for i := range iids {
		iids[i] = addr.IID(rng.Uint64())
	}
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += iids[i%len(iids)].NormalizedEntropy()
	}
	_ = acc
}

func BenchmarkAblationEntropyDirect(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	iids := make([]uint64, 4096)
	for i := range iids {
		iids[i] = rng.Uint64()
	}
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += directEntropy(iids[i%len(iids)])
	}
	_ = acc
}

// directEntropy is the naive per-call math.Log2 formulation.
func directEntropy(v uint64) float64 {
	var counts [16]int
	for i := 0; i < 16; i++ {
		counts[v&0xf]++
		v >>= 4
	}
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / 16
		h -= p * log2(p)
	}
	return h / 4
}

func log2(x float64) float64 {
	// Local shim to keep math out of the hot benchmark loop shape.
	return mathLog2(x)
}

// BenchmarkAblationNTPTransport* compares the in-process NTP exchange the
// simulator uses against a real UDP loopback round trip.
func BenchmarkAblationNTPTransportInProcess(b *testing.B) {
	now := time.Now()
	var buf [ntp.PacketSize]byte
	for i := 0; i < b.N; i++ {
		req := ntp.NewClientRequest(now)
		if _, err := req.SerializeTo(buf[:]); err != nil {
			b.Fatal(err)
		}
		var decoded ntp.Packet
		if err := decoded.DecodeFromBytes(buf[:]); err != nil {
			b.Fatal(err)
		}
		reply := ntp.NewServerReply(&decoded, now, now, 2, 0x42)
		if _, err := reply.SerializeTo(buf[:]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationNTPTransportUDP(b *testing.B) {
	srv, err := ntp.NewServer(ntp.ServerConfig{Addr: "127.0.0.1:0"})
	if err != nil {
		b.Skipf("cannot bind: %v", err)
	}
	defer srv.Close()
	addrStr := srv.LocalAddr().String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ntp.Query(addrStr, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// mathLog2 isolates the math import for the ablation shim.
func mathLog2(x float64) float64 { return math.Log2(x) }

// ---- Extension benchmarks: TGA, rDNS, outage detection ----

// BenchmarkAblationHitlistSourcesFull measures the active pipeline with
// every discovery source enabled (rDNS walk + Entropy/IP TGA), and
// BenchmarkAblationHitlistSourcesBase with only traceroute seeds, so the
// marginal yield of each source is visible in the reported metrics.
func BenchmarkAblationHitlistSourcesFull(b *testing.B) {
	s := sharedStudy(b)
	cfg := hitlistpkg.DefaultActiveConfig(s.World.Origin, s.World.End, 99)
	cfg.Rounds = 2
	b.ResetTimer()
	var res *hitlistpkg.ActiveResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = hitlistpkg.BuildActiveHitlist(s.World, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Dataset.Len()), "addrs_discovered")
	b.ReportMetric(float64(res.ProbesSent), "probes_sent")
}

func BenchmarkAblationHitlistSourcesBase(b *testing.B) {
	s := sharedStudy(b)
	cfg := hitlistpkg.DefaultActiveConfig(s.World.Origin, s.World.End, 99)
	cfg.Rounds = 2
	cfg.UseEntropyIP = false
	cfg.UseRDNS = false
	b.ResetTimer()
	var res *hitlistpkg.ActiveResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = hitlistpkg.BuildActiveHitlist(s.World, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Dataset.Len()), "addrs_discovered")
	b.ReportMetric(float64(res.ProbesSent), "probes_sent")
}

// BenchmarkRDNSWalk measures the ip6.arpa NXDOMAIN tree walk over every
// routed prefix, reporting the per-record query cost.
func BenchmarkRDNSWalk(b *testing.B) {
	s := sharedStudy(b)
	at := s.World.Origin.Add(24 * time.Hour)
	zone := rdns.BuildZone(s.World, at)
	prefixes := s.World.ASDB.RoutedPrefixes()
	b.ResetTimer()
	found := 0
	for i := 0; i < b.N; i++ {
		zone.Queries = 0
		found = 0
		for _, rp := range prefixes {
			found += len(rdns.Walk(zone, rp.Prefix, 0))
		}
	}
	b.ReportMetric(float64(found), "ptr_records")
	if found > 0 {
		b.ReportMetric(float64(zone.Queries)/float64(found), "queries_per_record")
	}
}

// BenchmarkTGAEntropyIP measures model training plus candidate generation
// on the passive corpus.
func BenchmarkTGAEntropyIP(b *testing.B) {
	s := sharedStudy(b)
	seeds := s.NTP.Addrs()
	if len(seeds) > 4096 {
		seeds = seeds[:4096]
	}
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model, err := tga.NewEntropyIP(seeds)
		if err != nil {
			b.Fatal(err)
		}
		if got := model.Generate(1024, rng); len(got) == 0 {
			b.Fatal("no candidates")
		}
	}
}

// BenchmarkOutageDetection measures the replay-based outage path:
// binning the full query stream plus detection. Compare with
// BenchmarkOutageDetectionSinglePass, which reads the series the ingest
// pipeline already recorded.
func BenchmarkOutageDetection(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	var events []outage.Event
	for i := 0; i < b.N; i++ {
		series, err := outage.BuildSeries(s.World, 6*time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		events = outage.Detect(series, outage.DefaultConfig())
	}
	b.ReportMetric(float64(len(events)), "events")
}

// BenchmarkOutageDetectionSinglePass measures Study.DetectOutages over
// the series recorded during collection: rebin plus detection, no
// replay — the cost every post-refactor detection call pays.
func BenchmarkOutageDetectionSinglePass(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	var events []outage.Event
	for i := 0; i < b.N; i++ {
		var err error
		events, err = s.DetectOutages(6 * time.Hour)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(events)), "events")
}

// BenchmarkDatasetSerialization measures the delta-varint dataset codec.
func BenchmarkDatasetSerialization(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	var encoded int64
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		n, err := s.NTP.WriteTo(&buf)
		if err != nil {
			b.Fatal(err)
		}
		encoded = n
		if _, err := hitlistpkg.ReadDataset(&buf); err != nil {
			b.Fatal(err)
		}
	}
	if s.NTP.Len() > 0 {
		b.ReportMetric(float64(encoded)/float64(s.NTP.Len()), "bytes_per_addr")
	}
}

// ---- Parallel analysis engine ----

// benchEngine is the paper-shaped ~1M-address fixture for BenchmarkReport:
// a synthetic corpus with the corpus's structural mix (random, low-byte,
// EUI-64 and v4-embedded IIDs over a few hundred ASes, ~20% repeat
// sightings) plus the four datasets the report reads. Built once; the
// benchmark measures the read side only.
var (
	benchEngineOnce sync.Once
	benchEngine     struct {
		db    *asdb.DB
		col   *collector.Collector
		ntp   *hitlistpkg.Dataset
		day   *hitlistpkg.Dataset
		hl    *hitlistpkg.Dataset
		caida *hitlistpkg.Dataset
	}
)

func engineFixture(b *testing.B) {
	b.Helper()
	benchEngineOnce.Do(func() {
		const nASes = 256
		db := asdb.NewDB()
		types := []asdb.ASType{asdb.TypeISP, asdb.TypePhoneProvider, asdb.TypeHosting,
			asdb.TypeEducation, asdb.TypeEnterprise}
		for i := 0; i < nASes; i++ {
			p := addr.MustParsePrefix(fmt.Sprintf("2001:%x::/32", 0x1000+i))
			if err := db.AddAS(asdb.AS{
				ASN: asdb.ASN(1000 + i), Name: fmt.Sprintf("AS%d", 1000+i),
				Country: "DE", Type: types[i%len(types)],
				Prefixes: []addr.Prefix{p},
			}); err != nil {
				panic(err)
			}
		}
		benchEngine.db = db

		const nAddrs = 1_000_000
		rng := rand.New(rand.NewSource(1))
		col := collector.New()
		base := time.Date(2022, 1, 25, 0, 0, 0, 0, time.UTC)
		addrs := make([]addr.Addr, 0, nAddrs)
		for i := 0; i < nAddrs; i++ {
			as := rng.Intn(nASes)
			hi := 0x2001_0000_0000_0000 | uint64(0x1000+as)<<32 | uint64(rng.Intn(4096))<<16
			var lo uint64
			switch r := rng.Intn(100); {
			case r < 60: // fully random IIDs (the corpus's bulk)
				lo = rng.Uint64()
			case r < 75: // low-byte
				lo = uint64(rng.Intn(256) + 1)
			case r < 90: // low-4-byte randomization
				lo = uint64(rng.Uint32())
			case r < 97: // EUI-64
				mac := uint64(rng.Intn(1 << 20))
				lo = (mac&0xffffff)<<40 | 0xfffe<<24 | (mac >> 24 & 0xffffff) | 0x0200_0000_0000_0000
			default: // v4-embedded
				lo = 0xc0a8_0000 | uint64(rng.Intn(1<<16))
			}
			a := addr.FromParts(hi, lo)
			addrs = append(addrs, a)
			ts := base.Add(time.Duration(rng.Intn(200*24*3600)) * time.Second)
			col.Observe(a, ts, rng.Intn(27))
			if rng.Intn(5) == 0 { // repeat sighting: nonzero lifetime
				col.Observe(a, ts.Add(time.Duration(rng.Intn(40*24*3600))*time.Second), rng.Intn(27))
			}
		}
		benchEngine.col = col
		benchEngine.ntp = hitlistpkg.FromCollector("NTP (bench)", col)

		day := hitlistpkg.NewDataset("NTP day (bench)")
		hl := hitlistpkg.NewDataset("Hitlist (bench)")
		caida := hitlistpkg.NewDataset("CAIDA (bench)")
		for i, a := range addrs {
			if i%10 == 0 {
				day.Add(a)
			}
			if i%5 == 0 {
				hl.Add(a)
			}
			if i%20 == 0 {
				caida.Add(a)
			}
		}
		benchEngine.day = day
		benchEngine.hl = hl
		benchEngine.caida = caida
	})
}

// BenchmarkReport measures report generation on the parallel fold
// engine, serial baseline first.
//
// engine-1M is the acceptance benchmark: the full analysis suite —
// sidecar builds, Table 1, Figures 1/2/4/5, strategy inference, EUI-64
// tracking, HLL — over the paper-shaped ~1M-address fixture, at 1 vs 8
// workers (compare ns/op between the workers=1 and workers=8 rows of
// this bench file; single-core CI runners will show no wall-clock win,
// the same caveat as BenchmarkPassiveCollectionSharded).
//
// full runs Study.Report() end to end on the shared simulated study:
// the same worker sweep including the world-bound sections (backscan,
// geolocation) the engine cannot parallelize away.
func BenchmarkReport(b *testing.B) {
	b.Run("engine-1M", func(b *testing.B) {
		engineFixture(b)
		geo := geodb.FromASDB(benchEngine.db)
		reg := oui.NewRegistry(0)
		for _, workers := range []int{1, 2, 8} {
			b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					scNTP := analysis.BuildSidecar(benchEngine.ntp, benchEngine.db, workers)
					scHL := analysis.BuildSidecar(benchEngine.hl, benchEngine.db, workers)
					scCAIDA := analysis.BuildSidecar(benchEngine.caida, benchEngine.db, workers)
					scDay := analysis.BuildSidecar(benchEngine.day, benchEngine.db, workers)
					t1 := analysis.ComputeTable1Sidecar(scNTP, scHL, scCAIDA, workers)
					f1 := analysis.ComputeFigure1Sidecar(scNTP, scHL, scCAIDA, workers)
					f2a := analysis.ComputeFigure2aWorkers(benchEngine.col, workers)
					f2b := analysis.ComputeFigure2bWorkers(benchEngine.col, workers)
					f4a := analysis.TopASEntropySidecar(scNTP, benchEngine.db, 5, workers)
					f4b := analysis.TopASEntropySidecar(scDay, benchEngine.db, 5, workers)
					strat := analysis.InferStrategiesSidecar(scNTP, benchEngine.db, 6, workers)
					f5 := analysis.ComputeFigure5Sidecar(scDay, scHL, workers)
					share := analysis.ASTypeShareSidecar(scNTP, workers)
					tr := tracking.AnalyzeWorkers(benchEngine.col, benchEngine.db, geo, reg, workers)
					if t1.NTP.Addrs == 0 || f1.NTP.N() == 0 || f2a.ObservedOnce == 0 ||
						len(f2b.ByClass) == 0 || len(f4a) == 0 || len(f4b) == 0 ||
						len(strat) == 0 || f5.NTP.Total == 0 || len(share) == 0 ||
						len(tr.MACs) == 0 {
						b.Fatal("degenerate engine result")
					}
				}
				b.ReportMetric(float64(benchEngine.ntp.Len()), "addrs")
			})
		}
	})

	b.Run("full", func(b *testing.B) {
		s := sharedStudy(b)
		for _, workers := range []int{1, 8} {
			b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
				s.Config.AnalysisWorkers = workers
				defer func() { s.Config.AnalysisWorkers = 0 }()
				var rep string
				for i := 0; i < b.N; i++ {
					var err error
					rep, err = s.Report()
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(len(rep)), "report_bytes")
			})
		}
	})
}
