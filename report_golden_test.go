package hitlist6

import (
	"flag"
	"os"
	"testing"
)

// updateGolden regenerates the golden report fixtures:
//
//	go test -run TestReportGolden -update .
//
// golden_report_seed1.txt pins the pre-engine serial renderer's exact
// bytes and must never be regenerated casually — only when the report
// format itself changes on purpose. golden_report_seed2.txt pins a
// second, independent world so report determinism is held at two
// points, not one; it follows the same rule.
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_report_*.txt")

// TestReportGoldenAndWorkerEquivalence pins the parallel analysis
// engine's two exactness contracts at once:
//
//  1. Report() is byte-identical to the pre-engine serial implementation
//     (testdata/golden_report_seed1.txt was rendered by the map-based
//     Dataset + serial analysis code on the same configuration), and
//  2. Report() is byte-identical across worker counts — the fold/merge
//     decomposition introduces no ordering or floating-point drift.
//
// Run under -race (CI does) this also exercises the concurrent section
// orchestration against the shared sidecars, world and collector.
func TestReportGoldenAndWorkerEquivalence(t *testing.T) {
	goldenReportAt(t, 1, "testdata/golden_report_seed1.txt")
}

// TestReportGoldenSeed2 is the same contract pinned at a second,
// independent world (seed 2): a renderer change that happens to cancel
// out on seed 1's particular counts cannot also cancel on an unrelated
// world, so two fixtures make format drift strictly harder to slip by.
func TestReportGoldenSeed2(t *testing.T) {
	goldenReportAt(t, 2, "testdata/golden_report_seed2.txt")
}

// goldenReportAt checks Report() against the fixture at every worker
// count, regenerating the fixture first under -update (from the serial
// workers=1 run, so a worker-dependent bug cannot bake itself into the
// fixture it is later compared against).
func goldenReportAt(t *testing.T, seed int64, path string) {
	t.Helper()
	if *updateGolden {
		s := runStudy(t, seed)
		s.Config.AnalysisWorkers = 1
		got, err := s.Report()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden report: %v", err)
	}

	// A fresh study per worker count: the NTP pool's round-robin vantage
	// state advances on every backscan, so consecutive Report calls on
	// one study legitimately see different campaigns (pre-existing
	// behaviour). Worker equivalence is about the same inputs.
	for _, workers := range []int{1, 4, 16} {
		s := runStudy(t, seed)
		s.Config.AnalysisWorkers = workers
		got, err := s.Report()
		if err != nil {
			t.Fatalf("Report(workers=%d): %v", workers, err)
		}
		if got != string(want) {
			t.Errorf("Report(workers=%d, seed=%d) diverges from the golden report (%d vs %d bytes)",
				workers, seed, len(got), len(want))
		}
	}
}

// TestSummaryWorkerEquivalence runs the machine-readable summary across
// worker counts: every headline number the paper quotes must be exactly
// worker-independent, not just the rendered text.
func TestSummaryWorkerEquivalence(t *testing.T) {
	var base []byte
	for _, workers := range []int{1, 4, 16} {
		s := runStudy(t, 7) // fresh study per count; see the golden test
		s.Config.AnalysisWorkers = workers
		sm, err := s.Summarize()
		if err != nil {
			t.Fatalf("Summarize(workers=%d): %v", workers, err)
		}
		js, err := sm.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = js
		} else if string(js) != string(base) {
			t.Errorf("Summarize(workers=%d) diverges from workers=1", workers)
		}
	}
}
