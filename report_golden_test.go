package hitlist6

import (
	"os"
	"testing"
)

// TestReportGoldenAndWorkerEquivalence pins the parallel analysis
// engine's two exactness contracts at once:
//
//  1. Report() is byte-identical to the pre-engine serial implementation
//     (testdata/golden_report_seed1.txt was rendered by the map-based
//     Dataset + serial analysis code on the same configuration), and
//  2. Report() is byte-identical across worker counts — the fold/merge
//     decomposition introduces no ordering or floating-point drift.
//
// Run under -race (CI does) this also exercises the concurrent section
// orchestration against the shared sidecars, world and collector.
func TestReportGoldenAndWorkerEquivalence(t *testing.T) {
	want, err := os.ReadFile("testdata/golden_report_seed1.txt")
	if err != nil {
		t.Fatalf("reading golden report: %v", err)
	}

	// A fresh study per worker count: the NTP pool's round-robin vantage
	// state advances on every backscan, so consecutive Report calls on
	// one study legitimately see different campaigns (pre-existing
	// behaviour). Worker equivalence is about the same inputs.
	for _, workers := range []int{1, 4, 16} {
		s := runStudy(t, 1) // testConfig(1) is the golden configuration
		s.Config.AnalysisWorkers = workers
		got, err := s.Report()
		if err != nil {
			t.Fatalf("Report(workers=%d): %v", workers, err)
		}
		if got != string(want) {
			t.Errorf("Report(workers=%d) diverges from the serial golden report (%d vs %d bytes)",
				workers, len(got), len(want))
		}
	}
}

// TestSummaryWorkerEquivalence runs the machine-readable summary across
// worker counts: every headline number the paper quotes must be exactly
// worker-independent, not just the rendered text.
func TestSummaryWorkerEquivalence(t *testing.T) {
	var base []byte
	for _, workers := range []int{1, 4, 16} {
		s := runStudy(t, 7) // fresh study per count; see the golden test
		s.Config.AnalysisWorkers = workers
		sm, err := s.Summarize()
		if err != nil {
			t.Fatalf("Summarize(workers=%d): %v", workers, err)
		}
		js, err := sm.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = js
		} else if string(js) != string(base) {
			t.Errorf("Summarize(workers=%d) diverges from workers=1", workers)
		}
	}
}
