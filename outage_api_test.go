package hitlist6

import (
	"testing"
	"time"
)

func TestDetectOutagesAPI(t *testing.T) {
	s, err := NewStudy(testConfig(30))
	if err != nil {
		t.Fatal(err)
	}
	// The default world has no injected outages; the detector must not
	// hallucinate large events for busy ASes.
	events, err := s.DetectOutages(12 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.MedianVolume > 50 && e.DarkBins > 6 {
			t.Errorf("implausible outage on healthy world: %v", e)
		}
	}
	if _, err := s.DetectOutages(0); err == nil {
		t.Error("zero bin should fail")
	}
}
