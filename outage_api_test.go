package hitlist6

import (
	"testing"
	"time"
)

func TestDetectOutagesAPI(t *testing.T) {
	s, err := NewStudy(testConfig(30))
	if err != nil {
		t.Fatal(err)
	}
	// Detection reads the series recorded during collection — calling it
	// earlier is an error, not a hidden replay.
	if _, err := s.DetectOutages(12 * time.Hour); err == nil {
		t.Error("DetectOutages before CollectPassive should fail")
	}
	if err := s.CollectPassive(); err != nil {
		t.Fatal(err)
	}
	// The default world has no injected outages; the detector must not
	// hallucinate large events for busy ASes.
	events, err := s.DetectOutages(12 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.MedianVolume > 50 && e.DarkBins > 6 {
			t.Errorf("implausible outage on healthy world: %v", e)
		}
	}
	if _, err := s.DetectOutages(0); err == nil {
		t.Error("zero bin should fail")
	}
	// The recorded resolution is Config.OutageBin (1h default): widths
	// that are not multiples cannot be rebinned exactly and must error.
	if _, err := s.DetectOutages(90 * time.Minute); err == nil {
		t.Error("non-multiple bin should fail")
	}
}
