package ntp

import (
	"fmt"
	"net"
	"time"
)

// QueryResult is the outcome of one client exchange.
type QueryResult struct {
	// Offset is the estimated clock offset to the server.
	Offset time.Duration
	// Delay is the round-trip delay.
	Delay time.Duration
	// Stratum is the server's reported stratum.
	Stratum uint8
	// Packet is the raw decoded response.
	Packet Packet
}

// Query performs one SNTP exchange with the server at addr
// ("host:port"), waiting at most timeout for the reply.
func Query(addr string, timeout time.Duration) (*QueryResult, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("ntp: dial %s: %w", addr, err)
	}
	defer conn.Close()
	if timeout > 0 {
		if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
	}

	t1 := time.Now()
	req := NewClientRequest(t1)
	var buf [PacketSize]byte
	if _, err := req.SerializeTo(buf[:]); err != nil {
		return nil, err
	}
	if _, err := conn.Write(buf[:]); err != nil {
		return nil, fmt.Errorf("ntp: send: %w", err)
	}

	var in [512]byte
	n, err := conn.Read(in[:])
	if err != nil {
		return nil, fmt.Errorf("ntp: recv: %w", err)
	}
	t4 := time.Now()

	var resp Packet
	if err := resp.DecodeFromBytes(in[:n]); err != nil {
		return nil, err
	}
	if resp.Mode != ModeServer {
		return nil, fmt.Errorf("ntp: unexpected mode %v in reply", resp.Mode)
	}
	if resp.OriginTime != req.TransmitTime {
		return nil, fmt.Errorf("ntp: origin timestamp mismatch (possible spoof)")
	}
	if resp.Stratum == 0 || resp.Stratum > 15 {
		return nil, fmt.Errorf("ntp: kiss-o'-death or invalid stratum %d", resp.Stratum)
	}

	offset, delay := OffsetAndDelay(t1, resp.ReceiveTime.Time(), resp.TransmitTime.Time(), t4)
	return &QueryResult{
		Offset:  offset,
		Delay:   delay,
		Stratum: resp.Stratum,
		Packet:  resp,
	}, nil
}
