// Package ntp implements the NTP substrate: an RFC 5905 packet codec with
// allocation-free decode/encode (gopacket's DecodingLayer idiom), a
// stratum-2 UDP server of the kind the paper deployed 27 of, and a client.
//
// The server exposes a SourceObserver hook: the paper's entire methodology
// is "run NTP servers, record source addresses", and that hook is where the
// passive collector attaches.
package ntp

import (
	"encoding/binary"
	"fmt"
	"time"
)

// PacketSize is the size of an NTP packet without extensions.
const PacketSize = 48

// LeapIndicator is the 2-bit leap second warning field.
type LeapIndicator uint8

// Leap indicator values (RFC 5905 §7.3).
const (
	LeapNone      LeapIndicator = 0
	LeapAddSecond LeapIndicator = 1
	LeapDelSecond LeapIndicator = 2
	LeapNotInSync LeapIndicator = 3
)

// Mode is the 3-bit association mode.
type Mode uint8

// Association modes (RFC 5905 §7.3).
const (
	ModeReserved   Mode = 0
	ModeSymActive  Mode = 1
	ModeSymPassive Mode = 2
	ModeClient     Mode = 3
	ModeServer     Mode = 4
	ModeBroadcast  Mode = 5
	ModeControl    Mode = 6
	ModePrivate    Mode = 7
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeSymActive:
		return "symmetric-active"
	case ModeSymPassive:
		return "symmetric-passive"
	case ModeClient:
		return "client"
	case ModeServer:
		return "server"
	case ModeBroadcast:
		return "broadcast"
	case ModeControl:
		return "control"
	case ModePrivate:
		return "private"
	default:
		return "reserved"
	}
}

// Timestamp is the 64-bit NTP timestamp: seconds since the NTP era origin
// (1 Jan 1900) in the top 32 bits, binary fraction in the bottom 32.
type Timestamp uint64

// ntpEpochOffset is the offset between the Unix and NTP epochs in seconds
// (70 years including 17 leap days).
const ntpEpochOffset = 2208988800

// TimestampFromTime converts a time.Time to NTP format.
func TimestampFromTime(t time.Time) Timestamp {
	if t.IsZero() {
		return 0
	}
	secs := uint64(t.Unix()) + ntpEpochOffset
	frac := uint64(t.Nanosecond()) * (1 << 32) / 1e9
	return Timestamp(secs<<32 | frac)
}

// Time converts an NTP timestamp to a time.Time (UTC). The zero timestamp
// maps to the zero time.
func (ts Timestamp) Time() time.Time {
	if ts == 0 {
		return time.Time{}
	}
	secs := int64(ts>>32) - ntpEpochOffset
	nanos := (uint64(ts&0xffffffff) * 1e9) >> 32
	return time.Unix(secs, int64(nanos)).UTC()
}

// Short is the 32-bit NTP short format (16.16 fixed point seconds) used
// for root delay and dispersion.
type Short uint32

// ShortFromDuration converts a duration to NTP short format, saturating.
func ShortFromDuration(d time.Duration) Short {
	if d < 0 {
		d = 0
	}
	secs := d / time.Second
	if secs > 0xffff {
		return Short(0xffffffff)
	}
	frac := uint64(d%time.Second) * (1 << 16) / uint64(time.Second)
	return Short(uint64(secs)<<16 | frac)
}

// Duration converts NTP short format to a duration.
func (s Short) Duration() time.Duration {
	secs := time.Duration(s>>16) * time.Second
	frac := time.Duration(uint64(s&0xffff) * uint64(time.Second) >> 16)
	return secs + frac
}

// Packet is one NTP packet in decoded form. Field names follow RFC 5905.
type Packet struct {
	Leap           LeapIndicator
	Version        uint8
	Mode           Mode
	Stratum        uint8
	Poll           int8
	Precision      int8
	RootDelay      Short
	RootDispersion Short
	ReferenceID    uint32
	ReferenceTime  Timestamp
	OriginTime     Timestamp
	ReceiveTime    Timestamp
	TransmitTime   Timestamp
}

// DecodeFromBytes parses a wire-format packet without allocating,
// mirroring gopacket's DecodingLayer contract. Extension fields and MACs
// beyond the first 48 bytes are ignored, as a time server may.
func (p *Packet) DecodeFromBytes(data []byte) error {
	if len(data) < PacketSize {
		return fmt.Errorf("ntp: packet too short: %d bytes", len(data))
	}
	p.Leap = LeapIndicator(data[0] >> 6)
	p.Version = data[0] >> 3 & 0x7
	p.Mode = Mode(data[0] & 0x7)
	if p.Version < 1 || p.Version > 4 {
		return fmt.Errorf("ntp: unsupported version %d", p.Version)
	}
	p.Stratum = data[1]
	p.Poll = int8(data[2])
	p.Precision = int8(data[3])
	p.RootDelay = Short(binary.BigEndian.Uint32(data[4:]))
	p.RootDispersion = Short(binary.BigEndian.Uint32(data[8:]))
	p.ReferenceID = binary.BigEndian.Uint32(data[12:])
	p.ReferenceTime = Timestamp(binary.BigEndian.Uint64(data[16:]))
	p.OriginTime = Timestamp(binary.BigEndian.Uint64(data[24:]))
	p.ReceiveTime = Timestamp(binary.BigEndian.Uint64(data[32:]))
	p.TransmitTime = Timestamp(binary.BigEndian.Uint64(data[40:]))
	return nil
}

// SerializeTo writes the packet into buf, which must be at least
// PacketSize bytes; it returns the number of bytes written.
func (p *Packet) SerializeTo(buf []byte) (int, error) {
	if len(buf) < PacketSize {
		return 0, fmt.Errorf("ntp: buffer too small: %d bytes", len(buf))
	}
	if p.Version < 1 || p.Version > 4 {
		return 0, fmt.Errorf("ntp: invalid version %d", p.Version)
	}
	buf[0] = byte(p.Leap)<<6 | p.Version<<3 | byte(p.Mode)
	buf[1] = p.Stratum
	buf[2] = byte(p.Poll)
	buf[3] = byte(p.Precision)
	binary.BigEndian.PutUint32(buf[4:], uint32(p.RootDelay))
	binary.BigEndian.PutUint32(buf[8:], uint32(p.RootDispersion))
	binary.BigEndian.PutUint32(buf[12:], p.ReferenceID)
	binary.BigEndian.PutUint64(buf[16:], uint64(p.ReferenceTime))
	binary.BigEndian.PutUint64(buf[24:], uint64(p.OriginTime))
	binary.BigEndian.PutUint64(buf[32:], uint64(p.ReceiveTime))
	binary.BigEndian.PutUint64(buf[40:], uint64(p.TransmitTime))
	return PacketSize, nil
}

// NewClientRequest builds a client-mode request with TransmitTime set to
// now, as real SNTP clients send.
func NewClientRequest(now time.Time) Packet {
	return Packet{
		Version:      4,
		Mode:         ModeClient,
		TransmitTime: TimestampFromTime(now),
	}
}

// NewServerReply builds the server response to a request, per RFC 5905:
// the client's transmit timestamp is echoed as the origin, the server
// stamps receive/transmit times, and stratum/reference describe the
// server's clock.
func NewServerReply(req *Packet, recvAt, sendAt time.Time, stratum uint8, refID uint32) Packet {
	return Packet{
		Leap:           LeapNone,
		Version:        req.Version,
		Mode:           ModeServer,
		Stratum:        stratum,
		Poll:           req.Poll,
		Precision:      -20, // ~1µs
		RootDelay:      ShortFromDuration(2 * time.Millisecond),
		RootDispersion: ShortFromDuration(time.Millisecond),
		ReferenceID:    refID,
		ReferenceTime:  TimestampFromTime(recvAt.Add(-30 * time.Second)),
		OriginTime:     req.TransmitTime,
		ReceiveTime:    TimestampFromTime(recvAt),
		TransmitTime:   TimestampFromTime(sendAt),
	}
}

// OffsetAndDelay computes the clock offset and round-trip delay from the
// four timestamps of a completed exchange (RFC 5905 §8): t1 client send,
// t2 server receive, t3 server send, t4 client receive.
func OffsetAndDelay(t1, t2, t3, t4 time.Time) (offset, delay time.Duration) {
	offset = (t2.Sub(t1) + t3.Sub(t4)) / 2
	delay = t4.Sub(t1) - t3.Sub(t2)
	return offset, delay
}
