package ntp

import "net"

// netDialUDP is a tiny test helper kept out of ntp_test.go for clarity.
func netDialUDP(addr string) (net.Conn, error) {
	return net.Dial("udp", addr)
}
