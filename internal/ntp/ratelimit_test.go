package ntp

import (
	"net/netip"
	"strings"
	"testing"
	"time"
)

var (
	src1 = netip.MustParseAddr("2001:db8::1")
	src2 = netip.MustParseAddr("2001:db8::2")
)

func TestRateLimiterAllowsSpacedQueries(t *testing.T) {
	rl := NewRateLimiter(time.Second, 10)
	t0 := time.Date(2022, 2, 1, 0, 0, 0, 0, time.UTC)
	if !rl.Allow(src1, t0) {
		t.Fatal("first query denied")
	}
	if !rl.Allow(src1, t0.Add(2*time.Second)) {
		t.Fatal("spaced query denied")
	}
	// Distinct sources do not interfere.
	if !rl.Allow(src2, t0.Add(2*time.Second)) {
		t.Fatal("second source denied")
	}
}

func TestRateLimiterDeniesBursts(t *testing.T) {
	rl := NewRateLimiter(time.Second, 10)
	t0 := time.Date(2022, 2, 1, 0, 0, 0, 0, time.UTC)
	rl.Allow(src1, t0)
	if rl.Allow(src1, t0.Add(100*time.Millisecond)) {
		t.Fatal("burst allowed")
	}
	// Offenders reset their window: still denied one second after the
	// *denied* attempt.
	if rl.Allow(src1, t0.Add(1050*time.Millisecond)) {
		t.Fatal("window did not reset on violation")
	}
	// After a clean interval the source recovers.
	if !rl.Allow(src1, t0.Add(3*time.Second)) {
		t.Fatal("recovered source denied")
	}
}

func TestRateLimiterZeroIntervalDisables(t *testing.T) {
	rl := NewRateLimiter(0, 10)
	t0 := time.Now()
	for i := 0; i < 100; i++ {
		if !rl.Allow(src1, t0) {
			t.Fatal("disabled limiter denied")
		}
	}
}

func TestRateLimiterCapacityEviction(t *testing.T) {
	rl := NewRateLimiter(time.Second, 4)
	t0 := time.Date(2022, 2, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		src := netip.AddrFrom16([16]byte{0x20, 0x01, 15: byte(i)})
		rl.Allow(src, t0.Add(time.Duration(i)*time.Minute))
	}
	if got := rl.Tracked(); got > 4 {
		t.Errorf("tracked %d sources, capacity 4", got)
	}
}

func TestKissOfDeathPacket(t *testing.T) {
	req := NewClientRequest(time.Now())
	kod := NewKissOfDeath(&req)
	if kod.Stratum != 0 || kod.Mode != ModeServer {
		t.Errorf("kod shape: %+v", kod)
	}
	if kod.OriginTime != req.TransmitTime {
		t.Error("kod must echo origin")
	}
	code, ok := IsKissOfDeath(&kod)
	if !ok || code != "RATE" {
		t.Errorf("IsKissOfDeath: %q %v", code, ok)
	}
	normal := NewServerReply(&req, time.Now(), time.Now(), 2, 1)
	if _, ok := IsKissOfDeath(&normal); ok {
		t.Error("normal reply misdetected as KoD")
	}
}

// TestServerRateLimitEndToEnd exercises the limiter over real sockets:
// the second immediate query must come back as a RATE kiss-o'-death.
func TestServerRateLimitEndToEnd(t *testing.T) {
	srv := newLoopbackServer(t, ServerConfig{
		Stratum:   2,
		RateLimit: NewRateLimiter(500*time.Millisecond, 100),
	})
	defer srv.Close()

	if _, err := Query(srv.LocalAddr().String(), 2*time.Second); err != nil {
		t.Fatalf("first query: %v", err)
	}
	// Immediate second query: the client must see the KoD rejection
	// (Query reports it as an invalid-stratum error).
	_, err := Query(srv.LocalAddr().String(), 2*time.Second)
	if err == nil {
		t.Fatal("burst query succeeded past the limiter")
	}
	if !strings.Contains(err.Error(), "kiss") {
		t.Fatalf("unexpected error: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.KissOfDeaths() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if srv.KissOfDeaths() != 1 {
		t.Errorf("KoD counter: %d", srv.KissOfDeaths())
	}
	// After the interval, service resumes.
	time.Sleep(600 * time.Millisecond)
	if _, err := Query(srv.LocalAddr().String(), 2*time.Second); err != nil {
		t.Fatalf("post-interval query: %v", err)
	}
}
