package ntp

import (
	"net/netip"
	"sync"
	"time"
)

// RateLimiter enforces a per-source minimum inter-query interval, the
// abuse control real pool servers run. Offenders receive a kiss-o'-death
// packet (stratum 0, refid "RATE", RFC 5905 §7.4) telling well-behaved
// clients to back off.
//
// State is a bounded LRU-ish table: at capacity, the stalest entry is
// evicted, so a spoofed-source flood cannot exhaust memory.
type RateLimiter struct {
	mu       sync.Mutex
	min      time.Duration
	capacity int
	last     map[netip.Addr]time.Time
}

// NewRateLimiter builds a limiter allowing one query per source per min
// interval, tracking at most capacity sources.
func NewRateLimiter(min time.Duration, capacity int) *RateLimiter {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &RateLimiter{
		min:      min,
		capacity: capacity,
		last:     make(map[netip.Addr]time.Time, capacity),
	}
}

// Allow reports whether a query from src at time t is within policy, and
// records the query.
func (rl *RateLimiter) Allow(src netip.Addr, t time.Time) bool {
	if rl.min <= 0 {
		return true
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	prev, seen := rl.last[src]
	if seen && t.Sub(prev) < rl.min {
		rl.last[src] = t // offenders keep resetting their window
		return false
	}
	if !seen && len(rl.last) >= rl.capacity {
		rl.evictStalest()
	}
	rl.last[src] = t
	return true
}

// evictStalest removes the entry with the oldest timestamp. Called with
// the lock held; linear scan is acceptable because eviction only happens
// at capacity and the table is bounded.
func (rl *RateLimiter) evictStalest() {
	var (
		victim netip.Addr
		oldest time.Time
		first  = true
	)
	for a, ts := range rl.last {
		if first || ts.Before(oldest) {
			victim, oldest, first = a, ts, false
		}
	}
	if !first {
		delete(rl.last, victim)
	}
}

// Tracked returns the number of sources currently tracked.
func (rl *RateLimiter) Tracked() int {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return len(rl.last)
}

// KoDRate is the refid of a rate-limiting kiss-o'-death packet ("RATE").
const KoDRate uint32 = 0x52415445

// NewKissOfDeath builds the stratum-0 RATE response for an over-limit
// client.
func NewKissOfDeath(req *Packet) Packet {
	return Packet{
		Leap:        LeapNotInSync,
		Version:     req.Version,
		Mode:        ModeServer,
		Stratum:     0,
		Poll:        req.Poll,
		ReferenceID: KoDRate,
		OriginTime:  req.TransmitTime,
	}
}

// IsKissOfDeath reports whether a response is a kiss-o'-death and, if
// so, its code (e.g. "RATE").
func IsKissOfDeath(p *Packet) (code string, ok bool) {
	if p.Stratum != 0 || p.Mode != ModeServer {
		return "", false
	}
	b := []byte{
		byte(p.ReferenceID >> 24), byte(p.ReferenceID >> 16),
		byte(p.ReferenceID >> 8), byte(p.ReferenceID),
	}
	return string(b), true
}
