package ntp

import (
	"net/netip"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestTimestampRoundTrip(t *testing.T) {
	times := []time.Time{
		time.Date(2022, 1, 25, 0, 0, 0, 0, time.UTC),
		time.Date(2022, 8, 31, 23, 59, 59, 999_000_000, time.UTC),
		time.Unix(0, 0).UTC(),
		time.Date(2036, 2, 7, 6, 28, 15, 0, time.UTC), // near NTP era end
	}
	for _, in := range times {
		out := TimestampFromTime(in).Time()
		if d := out.Sub(in); d < -time.Microsecond || d > time.Microsecond {
			t.Errorf("round trip %v -> %v (delta %v)", in, out, d)
		}
	}
}

func TestTimestampZero(t *testing.T) {
	if ts := TimestampFromTime(time.Time{}); ts != 0 {
		t.Errorf("zero time: got %d", ts)
	}
	if !Timestamp(0).Time().IsZero() {
		t.Error("zero timestamp should map to zero time")
	}
}

func TestShortRoundTrip(t *testing.T) {
	cases := []time.Duration{0, time.Millisecond, time.Second, 2500 * time.Millisecond, time.Minute}
	for _, d := range cases {
		got := ShortFromDuration(d).Duration()
		if diff := got - d; diff < -time.Millisecond || diff > time.Millisecond {
			t.Errorf("short round trip %v -> %v", d, got)
		}
	}
	if ShortFromDuration(-time.Second) != 0 {
		t.Error("negative duration should clamp to 0")
	}
	if ShortFromDuration(100000*time.Second) != Short(0xffffffff) {
		t.Error("huge duration should saturate")
	}
}

func TestPacketSerializeDecodeRoundTrip(t *testing.T) {
	f := func(leap, mode uint8, stratum uint8, poll, prec int8,
		delay, disp, refid uint32, rt, ot, rcv, xmt uint64) bool {
		in := Packet{
			Leap: LeapIndicator(leap % 4), Version: 4, Mode: Mode(mode % 8),
			Stratum: stratum, Poll: poll, Precision: prec,
			RootDelay: Short(delay), RootDispersion: Short(disp),
			ReferenceID: refid, ReferenceTime: Timestamp(rt),
			OriginTime: Timestamp(ot), ReceiveTime: Timestamp(rcv),
			TransmitTime: Timestamp(xmt),
		}
		var buf [PacketSize]byte
		if _, err := in.SerializeTo(buf[:]); err != nil {
			return false
		}
		var out Packet
		if err := out.DecodeFromBytes(buf[:]); err != nil {
			return false
		}
		return out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	var p Packet
	if err := p.DecodeFromBytes(make([]byte, 10)); err == nil {
		t.Error("short packet should fail")
	}
	// Version 0 is invalid.
	raw := make([]byte, PacketSize)
	raw[0] = 0x03 // LI=0, VN=0, Mode=3
	if err := p.DecodeFromBytes(raw); err == nil {
		t.Error("version 0 should fail")
	}
	// Version 7 is invalid.
	raw[0] = 7<<3 | 3
	if err := p.DecodeFromBytes(raw); err == nil {
		t.Error("version 7 should fail")
	}
}

func TestSerializeErrors(t *testing.T) {
	p := Packet{Version: 4, Mode: ModeClient}
	if _, err := p.SerializeTo(make([]byte, 10)); err == nil {
		t.Error("small buffer should fail")
	}
	p.Version = 9
	if _, err := p.SerializeTo(make([]byte, PacketSize)); err == nil {
		t.Error("bad version should fail")
	}
}

func TestServerReplySemantics(t *testing.T) {
	reqTime := time.Date(2022, 3, 1, 12, 0, 0, 0, time.UTC)
	req := NewClientRequest(reqTime)
	recvAt := reqTime.Add(30 * time.Millisecond)
	sendAt := recvAt.Add(time.Millisecond)
	reply := NewServerReply(&req, recvAt, sendAt, 2, 0x42424242)
	if reply.Mode != ModeServer {
		t.Errorf("mode: got %v", reply.Mode)
	}
	if reply.Stratum != 2 {
		t.Errorf("stratum: got %d", reply.Stratum)
	}
	if reply.OriginTime != req.TransmitTime {
		t.Error("origin must echo client transmit")
	}
	if got := reply.ReceiveTime.Time(); !within(got, recvAt, time.Microsecond) {
		t.Errorf("receive time: got %v want %v", got, recvAt)
	}
}

func TestOffsetAndDelay(t *testing.T) {
	// Client 100ms behind server, symmetric 20ms one-way delay.
	base := time.Date(2022, 5, 1, 0, 0, 0, 0, time.UTC)
	t1 := base
	t2 := base.Add(100*time.Millisecond + 20*time.Millisecond)
	t3 := t2.Add(time.Millisecond)
	t4 := t1.Add(41 * time.Millisecond)
	offset, delay := OffsetAndDelay(t1, t2, t3, t4)
	if offset < 99*time.Millisecond || offset > 101*time.Millisecond {
		t.Errorf("offset: got %v want ~100ms", offset)
	}
	if delay < 39*time.Millisecond || delay > 41*time.Millisecond {
		t.Errorf("delay: got %v want ~40ms", delay)
	}
}

func TestModeString(t *testing.T) {
	for m := Mode(0); m < 8; m++ {
		if m.String() == "" {
			t.Errorf("mode %d unnamed", m)
		}
	}
}

// newLoopbackServer binds a test server on ::1, falling back to 127.0.0.1
// when the host lacks IPv6 loopback (the protocol is family-agnostic).
func newLoopbackServer(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	cfg.Addr = "[::1]:0"
	srv, err := NewServer(cfg)
	if err != nil {
		cfg.Addr = "127.0.0.1:0"
		srv, err = NewServer(cfg)
	}
	if err != nil {
		t.Skipf("cannot bind loopback UDP socket: %v", err)
	}
	return srv
}

// TestServerClientLoopback runs a real UDP exchange over loopback,
// exercising the same code path the paper's vantage points ran.
func TestServerClientLoopback(t *testing.T) {
	var mu sync.Mutex
	var observed []netip.Addr
	srv := newLoopbackServer(t, ServerConfig{
		Stratum:     2,
		ReferenceID: 0x7f000001,
		Observer: func(src netip.Addr, at time.Time) {
			mu.Lock()
			observed = append(observed, src)
			mu.Unlock()
		},
	})
	defer srv.Close()

	res, err := Query(srv.LocalAddr().String(), 2*time.Second)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.Stratum != 2 {
		t.Errorf("stratum: got %d", res.Stratum)
	}
	if res.Delay < 0 || res.Delay > time.Second {
		t.Errorf("implausible loopback delay %v", res.Delay)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(observed) != 1 {
		t.Fatalf("observer saw %d sources, want 1", len(observed))
	}
	if !observed[0].IsLoopback() {
		t.Errorf("observed source %v is not loopback", observed[0])
	}
	reqs, replies, _ := srv.Stats()
	if reqs != 1 || replies != 1 {
		t.Errorf("stats: %d requests / %d replies", reqs, replies)
	}
}

func TestServerIgnoresNonClientPackets(t *testing.T) {
	srv := newLoopbackServer(t, ServerConfig{})
	defer srv.Close()

	// A server-mode packet must be dropped silently.
	p := Packet{Version: 4, Mode: ModeServer, Stratum: 1}
	var buf [PacketSize]byte
	if _, err := p.SerializeTo(buf[:]); err != nil {
		t.Fatal(err)
	}
	conn, err := netDialUDP(srv.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(buf[:]); err != nil {
		t.Fatal(err)
	}
	// Also garbage.
	if _, err := conn.Write([]byte("not ntp")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		_, _, dropped := srv.Stats()
		if dropped >= 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, _, dropped := srv.Stats(); dropped < 2 {
		t.Errorf("dropped: got %d want >= 2", dropped)
	}
	if reqs, _, _ := srv.Stats(); reqs != 0 {
		t.Errorf("requests: got %d want 0", reqs)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := newLoopbackServer(t, ServerConfig{})
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func within(a, b time.Time, eps time.Duration) bool {
	d := a.Sub(b)
	return d >= -eps && d <= eps
}
