package ntp

import (
	"errors"
	"log"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"
)

// SourceObserver receives the source address and arrival time of every
// valid client request a server handles. This is the paper's measurement
// primitive: the passive collector is just a SourceObserver.
type SourceObserver func(src netip.Addr, at time.Time)

// ServerConfig configures a Server.
type ServerConfig struct {
	// Addr is the UDP listen address, e.g. "[::1]:0".
	Addr string
	// Stratum reported in replies; the paper's servers were stratum 2.
	Stratum uint8
	// ReferenceID is the 32-bit refid (for stratum >= 2, conventionally
	// derived from the upstream server).
	ReferenceID uint32
	// Observer, if non-nil, is invoked for every valid request.
	Observer SourceObserver
	// RateLimit, if non-nil, enforces per-source query pacing; offenders
	// receive a kiss-o'-death (RATE) instead of time.
	RateLimit *RateLimiter
	// Now supplies time; nil means time.Now. Injected for tests.
	Now func() time.Time
	// Logf, if non-nil, receives malformed-packet diagnostics.
	Logf func(format string, args ...any)
}

// Server is a stratum-2 NTP/UDP server. It answers client-mode requests
// and ignores everything else, like a pool server should.
type Server struct {
	cfg  ServerConfig
	conn *net.UDPConn

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup

	// Stats counters, updated atomically.
	requests atomic.Uint64
	replies  atomic.Uint64
	dropped  atomic.Uint64
	kods     atomic.Uint64
}

// NewServer binds the UDP socket and starts serving.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = "[::1]:0"
	}
	if cfg.Stratum == 0 {
		cfg.Stratum = 2
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	uaddr, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, conn: conn}
	s.wg.Add(1)
	go s.serve()
	return s, nil
}

// LocalAddr returns the bound UDP address.
func (s *Server) LocalAddr() *net.UDPAddr {
	return s.conn.LocalAddr().(*net.UDPAddr)
}

// Stats returns the request/reply/drop counters.
func (s *Server) Stats() (requests, replies, dropped uint64) {
	return s.requests.Load(), s.replies.Load(), s.dropped.Load()
}

// KissOfDeaths returns how many rate-limit KoD responses were sent.
func (s *Server) KissOfDeaths() uint64 { return s.kods.Load() }

// Close stops the server and waits for the serve loop to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

func (s *Server) serve() {
	defer s.wg.Done()
	buf := make([]byte, 512)
	out := make([]byte, PacketSize)
	var req Packet
	for {
		n, raddr, err := s.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			s.logf("ntp: read: %v", err)
			continue
		}
		recvAt := s.cfg.Now()
		if err := req.DecodeFromBytes(buf[:n]); err != nil {
			s.dropped.Add(1)
			continue
		}
		if req.Mode != ModeClient {
			s.dropped.Add(1)
			continue
		}
		s.requests.Add(1)
		if s.cfg.Observer != nil {
			s.cfg.Observer(raddr.Addr(), recvAt)
		}
		if s.cfg.RateLimit != nil && !s.cfg.RateLimit.Allow(raddr.Addr(), recvAt) {
			kod := NewKissOfDeath(&req)
			if nn, err := kod.SerializeTo(out); err == nil {
				if _, err := s.conn.WriteToUDPAddrPort(out[:nn], raddr); err == nil {
					s.kods.Add(1)
				}
			}
			continue
		}
		reply := NewServerReply(&req, recvAt, s.cfg.Now(), s.cfg.Stratum, s.cfg.ReferenceID)
		nn, err := reply.SerializeTo(out)
		if err != nil {
			s.logf("ntp: serialize: %v", err)
			continue
		}
		if _, err := s.conn.WriteToUDPAddrPort(out[:nn], raddr); err != nil {
			s.logf("ntp: write: %v", err)
			continue
		}
		s.replies.Add(1)
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}
