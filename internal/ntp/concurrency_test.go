package ntp

import (
	"net/netip"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestServerConcurrentClients hammers the server from many goroutines,
// checking that every exchange completes, counters balance, and the
// observer sees every request — the vantage points served whole countries
// at once, so the serve loop must hold up under concurrency.
func TestServerConcurrentClients(t *testing.T) {
	var observed atomic.Uint64
	srv := newLoopbackServer(t, ServerConfig{
		Stratum: 2,
		Observer: func(netip.Addr, time.Time) {
			observed.Add(1)
		},
	})
	defer srv.Close()

	const (
		goroutines = 8
		perClient  = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perClient)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				res, err := Query(srv.LocalAddr().String(), 5*time.Second)
				if err != nil {
					errs <- err
					return
				}
				if res.Stratum != 2 {
					errs <- errStratum(res.Stratum)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	want := uint64(goroutines * perClient)
	deadline := time.Now().Add(2 * time.Second)
	for observed.Load() < want && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := observed.Load(); got != want {
		t.Errorf("observer saw %d requests, want %d", got, want)
	}
	reqs, replies, dropped := srv.Stats()
	if reqs != want || replies != want {
		t.Errorf("stats: %d/%d want %d/%d", reqs, replies, want, want)
	}
	if dropped != 0 {
		t.Errorf("dropped: %d", dropped)
	}
}

type errStratum uint8

func (e errStratum) Error() string { return "unexpected stratum" }

// BenchmarkPacketDecode measures the allocation-free decode path.
func BenchmarkPacketDecode(b *testing.B) {
	req := NewClientRequest(time.Now())
	var buf [PacketSize]byte
	if _, err := req.SerializeTo(buf[:]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var p Packet
	for i := 0; i < b.N; i++ {
		if err := p.DecodeFromBytes(buf[:]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPacketSerialize measures encode.
func BenchmarkPacketSerialize(b *testing.B) {
	p := NewServerReply(&Packet{Version: 4, Mode: ModeClient}, time.Now(), time.Now(), 2, 0x42)
	var buf [PacketSize]byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SerializeTo(buf[:]); err != nil {
			b.Fatal(err)
		}
	}
}
