package outage

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"

	"hitlist6/internal/asdb"
)

// The binary series codec serializes a Series for embedding in study
// checkpoints (the durable half of the single-pass outage consumer).
// Layout, all big-endian, trailing zeros of each AS's bins trimmed:
//
//	originUnix i64, binSec i64, bins u32, complete u32, nAS u32
//	nAS × ( asn u32, n u32, n × count u32 )
//
// ASes are written in ascending ASN order so the encoding is
// deterministic. Integrity (CRC, truncation) is the containing
// stream's job; UnmarshalSeries still bounds-checks every count so
// structurally damaged input errors instead of panicking or
// over-allocating.

// seriesWireMax caps the bin and AS counts a decoder will accept, and
// seriesWireMaxCells their product: generous for any real deployment
// (16M hourly bins is ~1900 years), small enough that a lying header
// cannot trigger a huge allocation.
const (
	seriesWireMax      = 1 << 24
	seriesWireMaxCells = 1 << 26
)

// MarshalBinary encodes the series.
func (s *Series) MarshalBinary() ([]byte, error) {
	if s.Bin <= 0 || s.Bin%time.Second != 0 {
		return nil, fmt.Errorf("outage: marshal: bin %v not a positive whole-second width", s.Bin)
	}
	if s.Bins < 0 || s.Bins > seriesWireMax || s.Complete < 0 || len(s.ByAS) > seriesWireMax {
		return nil, fmt.Errorf("outage: marshal: series shape out of range (%d bins, %d ASes)", s.Bins, len(s.ByAS))
	}
	asns := make([]asdb.ASN, 0, len(s.ByAS))
	for asn := range s.ByAS {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })

	out := make([]byte, 0, 28+len(asns)*8)
	out = binary.BigEndian.AppendUint64(out, uint64(s.Origin.Unix()))
	out = binary.BigEndian.AppendUint64(out, uint64(s.Bin/time.Second))
	out = binary.BigEndian.AppendUint32(out, uint32(s.Bins))
	out = binary.BigEndian.AppendUint32(out, uint32(s.Complete))
	out = binary.BigEndian.AppendUint32(out, uint32(len(asns)))
	for _, asn := range asns {
		bins := s.ByAS[asn]
		n := len(bins)
		for n > 0 && bins[n-1] == 0 {
			n--
		}
		if n > seriesWireMax {
			return nil, fmt.Errorf("outage: marshal: AS%d spans %d bins", asn, n)
		}
		out = binary.BigEndian.AppendUint32(out, uint32(asn))
		out = binary.BigEndian.AppendUint32(out, uint32(n))
		for _, v := range bins[:n] {
			// uint64 comparison so the bound compiles (and holds) on
			// 32-bit platforms, where MaxUint32 overflows int.
			if v < 0 || uint64(v) > math.MaxUint32 {
				return nil, fmt.Errorf("outage: marshal: AS%d bin count %d unencodable", asn, v)
			}
			out = binary.BigEndian.AppendUint32(out, uint32(v))
		}
	}
	return out, nil
}

// UnmarshalSeries decodes a MarshalBinary payload. Damaged input —
// short buffers, lying counts, trailing garbage — yields an error,
// never a panic.
func UnmarshalSeries(data []byte) (*Series, error) {
	take := func(n int) ([]byte, error) {
		if len(data) < n {
			return nil, fmt.Errorf("outage: series truncated (%d bytes short)", n-len(data))
		}
		b := data[:n]
		data = data[n:]
		return b, nil
	}
	hdr, err := take(28)
	if err != nil {
		return nil, err
	}
	// Bound the raw u32 counts before converting: on 32-bit platforms an
	// unchecked int conversion could go negative and slip past the caps.
	rawBins := binary.BigEndian.Uint32(hdr[16:])
	rawComplete := binary.BigEndian.Uint32(hdr[20:])
	if rawBins > seriesWireMax || rawComplete > seriesWireMax {
		return nil, fmt.Errorf("outage: series declares %d bins (%d complete)", rawBins, rawComplete)
	}
	binSec := binary.BigEndian.Uint64(hdr[8:])
	if binSec == 0 || binSec > uint64(math.MaxInt64/time.Second) {
		return nil, fmt.Errorf("outage: series bin %ds invalid", binSec)
	}
	s := &Series{
		Origin:   time.Unix(int64(binary.BigEndian.Uint64(hdr[0:])), 0).UTC(),
		Bin:      time.Duration(binSec) * time.Second,
		Bins:     int(rawBins),
		Complete: int(rawComplete),
	}
	nAS := int(binary.BigEndian.Uint32(hdr[24:]))
	if nAS > seriesWireMax {
		return nil, fmt.Errorf("outage: series declares %d ASes", nAS)
	}
	// 64-bit product: on 32-bit platforms nAS*Bins as int could wrap
	// past the cap and admit a huge allocation.
	if nAS > 0 && uint64(nAS)*uint64(s.Bins) > seriesWireMaxCells {
		return nil, fmt.Errorf("outage: series declares %d×%d cells", nAS, s.Bins)
	}
	s.ByAS = make(map[asdb.ASN][]int, nAS)
	for i := 0; i < nAS; i++ {
		ah, err := take(8)
		if err != nil {
			return nil, err
		}
		asn := asdb.ASN(binary.BigEndian.Uint32(ah[0:]))
		rawN := binary.BigEndian.Uint32(ah[4:])
		if uint64(rawN) > uint64(s.Bins) {
			return nil, fmt.Errorf("outage: AS%d declares %d bins of %d", asn, rawN, s.Bins)
		}
		n := int(rawN)
		if _, dup := s.ByAS[asn]; dup {
			return nil, fmt.Errorf("outage: AS%d appears twice", asn)
		}
		payload, err := take(4 * n)
		if err != nil {
			return nil, err
		}
		bins := make([]int, s.Bins)
		for k := 0; k < n; k++ {
			bins[k] = int(binary.BigEndian.Uint32(payload[4*k:]))
		}
		s.ByAS[asn] = bins
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("outage: %d trailing bytes after series", len(data))
	}
	return s, nil
}
