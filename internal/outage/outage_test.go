package outage

import (
	"testing"
	"time"

	"hitlist6/internal/asdb"
	"hitlist6/internal/simnet"
)

// outageWorld builds a world where Chinanet (AS4134) goes dark for two
// days starting day 6.
func outageWorld(t *testing.T) (*simnet.World, time.Time, time.Time) {
	t.Helper()
	cfg := simnet.DefaultConfig(17, 0.08)
	cfg.Days = 20
	for i := range cfg.ASes {
		if cfg.ASes[i].ASN == 4134 {
			cfg.ASes[i].Outages = []simnet.OutageWindow{{StartDay: 6, Hours: 48}}
		}
	}
	w, err := simnet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	from := w.Origin.AddDate(0, 0, 6)
	return w, from, from.Add(48 * time.Hour)
}

func TestOutageSilencesQueriesAndProbes(t *testing.T) {
	w, from, to := outageWorld(t)
	mid := from.Add(24 * time.Hour)

	// No queries from AS4134 during the outage.
	w.GenerateQueries(func(q simnet.Query) {
		if q.Time.Before(from) || !q.Time.Before(to) {
			return
		}
		if as := w.ASDB.Lookup(q.Addr); as != nil && as.ASN == 4134 {
			t.Fatalf("query from dark AS at %v", q.Time)
		}
	})

	// Devices in the AS are unreachable mid-outage, reachable after.
	checked := false
	for _, d := range w.Devices() {
		if d.Firewalled() || d.ASNAt(mid) != 4134 {
			continue
		}
		af, at := d.ActiveWindow()
		if af.After(from) || at.Before(to.Add(24*time.Hour)) {
			continue // device window doesn't span the comparison times
		}
		if w.Probe(d.AddressAt(mid), mid).Responded {
			t.Fatalf("device in dark AS responded")
		}
		after := to.Add(24 * time.Hour)
		if !w.Probe(d.AddressAt(after), after).Responded {
			continue // may be aliased-site etc.; one positive is enough
		}
		checked = true
		break
	}
	if !checked {
		t.Log("no device verified reachable post-outage (acceptable at tiny scale)")
	}
}

func TestDetectFindsInjectedOutage(t *testing.T) {
	w, from, to := outageWorld(t)
	series, err := BuildSeries(w, 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	events := Detect(series, DefaultConfig())
	var hit *Event
	for i, e := range events {
		if e.ASN == 4134 && e.Overlaps(from, to) {
			hit = &events[i]
			break
		}
	}
	if hit == nil {
		t.Fatalf("injected outage not detected; events: %v", events)
	}
	// The detected window must cover most of the true 48h outage.
	if hit.DarkBins < 6 { // 48h / 6h bins = 8, allow edge slack
		t.Errorf("detected only %d dark bins", hit.DarkBins)
	}
	if hit.String() == "" {
		t.Error("event should render")
	}

	// No false outage reports for healthy large ASes.
	for _, e := range events {
		if e.ASN == 4134 {
			continue
		}
		med := e.MedianVolume
		if med > 20 && e.DarkBins > 4 {
			t.Errorf("suspicious false positive: %v", e)
		}
	}
}

func TestBuildSeriesValidation(t *testing.T) {
	w, _, _ := outageWorld(t)
	if _, err := BuildSeries(w, 0); err == nil {
		t.Error("zero bin should fail")
	}
}

func TestDetectEmptySeries(t *testing.T) {
	s := &Series{Bin: time.Hour, Bins: 10, ByAS: map[asdb.ASN][]int{}}
	if got := Detect(s, DefaultConfig()); len(got) != 0 {
		t.Errorf("events from empty series: %v", got)
	}
}

func TestDetectQuietASSkipped(t *testing.T) {
	s := &Series{Bin: time.Hour, Bins: 8, ByAS: map[asdb.ASN][]int{
		7: {1, 0, 0, 0, 1, 0, 0, 1}, // median below MinMedian
	}}
	if got := Detect(s, DefaultConfig()); len(got) != 0 {
		t.Errorf("quiet AS should be skipped: %v", got)
	}
}

func TestDetectRunAtSeriesEnd(t *testing.T) {
	// A dark run reaching the final bin must still be reported.
	counts := make([]int, 12)
	for i := 0; i < 12; i++ {
		counts[i] = 100
	}
	counts[10], counts[11] = 0, 0
	s := &Series{Bin: time.Hour, Bins: 12, ByAS: map[asdb.ASN][]int{42: counts}}
	events := Detect(s, DefaultConfig())
	if len(events) != 1 || events[0].DarkBins != 2 {
		t.Fatalf("events: %v", events)
	}
}

func TestMedian(t *testing.T) {
	if m := median(nil); m != 0 {
		t.Errorf("empty median: %v", m)
	}
	if m := median([]int{5}); m != 5 {
		t.Errorf("single: %v", m)
	}
	if m := median([]int{1, 3, 2}); m != 2 {
		t.Errorf("odd: %v", m)
	}
	if m := median([]int{1, 2, 3, 4}); m != 2.5 {
		t.Errorf("even: %v", m)
	}
}
