package outage

import (
	"testing"
	"time"

	"hitlist6/internal/asdb"
	"hitlist6/internal/simnet"
)

// outageWorld builds a world where Chinanet (AS4134) goes dark for two
// days starting day 6.
func outageWorld(t *testing.T) (*simnet.World, time.Time, time.Time) {
	t.Helper()
	cfg := simnet.DefaultConfig(17, 0.08)
	cfg.Days = 20
	for i := range cfg.ASes {
		if cfg.ASes[i].ASN == 4134 {
			cfg.ASes[i].Outages = []simnet.OutageWindow{{StartDay: 6, Hours: 48}}
		}
	}
	w, err := simnet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	from := w.Origin.AddDate(0, 0, 6)
	return w, from, from.Add(48 * time.Hour)
}

func TestOutageSilencesQueriesAndProbes(t *testing.T) {
	w, from, to := outageWorld(t)
	mid := from.Add(24 * time.Hour)

	// No queries from AS4134 during the outage.
	w.GenerateQueries(func(q simnet.Query) {
		if q.Time.Before(from) || !q.Time.Before(to) {
			return
		}
		if as := w.ASDB.Lookup(q.Addr); as != nil && as.ASN == 4134 {
			t.Fatalf("query from dark AS at %v", q.Time)
		}
	})

	// Devices in the AS are unreachable mid-outage, reachable after.
	checked := false
	for _, d := range w.Devices() {
		if d.Firewalled() || d.ASNAt(mid) != 4134 {
			continue
		}
		af, at := d.ActiveWindow()
		if af.After(from) || at.Before(to.Add(24*time.Hour)) {
			continue // device window doesn't span the comparison times
		}
		if w.Probe(d.AddressAt(mid), mid).Responded {
			t.Fatalf("device in dark AS responded")
		}
		after := to.Add(24 * time.Hour)
		if !w.Probe(d.AddressAt(after), after).Responded {
			continue // may be aliased-site etc.; one positive is enough
		}
		checked = true
		break
	}
	if !checked {
		t.Log("no device verified reachable post-outage (acceptable at tiny scale)")
	}
}

func TestDetectFindsInjectedOutage(t *testing.T) {
	w, from, to := outageWorld(t)
	series, err := BuildSeries(w, 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	events := Detect(series, DefaultConfig())
	var hit *Event
	for i, e := range events {
		if e.ASN == 4134 && e.Overlaps(from, to) {
			hit = &events[i]
			break
		}
	}
	if hit == nil {
		t.Fatalf("injected outage not detected; events: %v", events)
	}
	// The detected window must cover most of the true 48h outage.
	if hit.DarkBins < 6 { // 48h / 6h bins = 8, allow edge slack
		t.Errorf("detected only %d dark bins", hit.DarkBins)
	}
	if hit.String() == "" {
		t.Error("event should render")
	}

	// No false outage reports for healthy large ASes.
	for _, e := range events {
		if e.ASN == 4134 {
			continue
		}
		med := e.MedianVolume
		if med > 20 && e.DarkBins > 4 {
			t.Errorf("suspicious false positive: %v", e)
		}
	}
}

func TestBuildSeriesValidation(t *testing.T) {
	w, _, _ := outageWorld(t)
	if _, err := BuildSeries(w, 0); err == nil {
		t.Error("zero bin should fail")
	}
}

func TestDetectEmptySeries(t *testing.T) {
	s := &Series{Bin: time.Hour, Bins: 10, ByAS: map[asdb.ASN][]int{}}
	if got := Detect(s, DefaultConfig()); len(got) != 0 {
		t.Errorf("events from empty series: %v", got)
	}
}

func TestDetectQuietASSkipped(t *testing.T) {
	s := &Series{Bin: time.Hour, Bins: 8, ByAS: map[asdb.ASN][]int{
		7: {1, 0, 0, 0, 1, 0, 0, 1}, // median below MinMedian
	}}
	if got := Detect(s, DefaultConfig()); len(got) != 0 {
		t.Errorf("quiet AS should be skipped: %v", got)
	}
}

func TestDetectRunAtSeriesEnd(t *testing.T) {
	// A dark run reaching the final bin must still be reported.
	counts := make([]int, 12)
	for i := 0; i < 12; i++ {
		counts[i] = 100
	}
	counts[10], counts[11] = 0, 0
	s := &Series{Bin: time.Hour, Bins: 12, ByAS: map[asdb.ASN][]int{42: counts}}
	events := Detect(s, DefaultConfig())
	if len(events) != 1 || events[0].DarkBins != 2 {
		t.Fatalf("events: %v", events)
	}
}

func TestBuildSeriesMarksTrailingBinIncomplete(t *testing.T) {
	w, _, _ := outageWorld(t)
	// 20 days / 7h does not divide evenly: the final bin is short.
	s, err := BuildSeries(w, 7*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if s.Complete != s.Bins-1 {
		t.Errorf("Complete %d, want Bins-1 = %d", s.Complete, s.Bins-1)
	}
	// 20 days / 6h divides evenly: the extra final bin lies entirely
	// past the window and must also be excluded.
	s, err = BuildSeries(w, 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if want := int(w.End.Sub(w.Origin) / (6 * time.Hour)); s.Complete != want || s.Bins != want+1 {
		t.Errorf("Complete %d Bins %d, want %d and %d", s.Complete, s.Bins, want, want+1)
	}
}

func TestDetectIgnoresIncompleteTrailingBin(t *testing.T) {
	// Bin 10 is genuinely dark; bin 11 is a short partial bin whose low
	// volume is a window artifact. Without the Complete cutoff the two
	// together would form a >= MinBins run and report a false outage.
	counts := make([]int, 12)
	for i := range counts {
		counts[i] = 100
	}
	counts[10], counts[11] = 0, 3
	s := &Series{
		Bin: time.Hour, Bins: 12, Complete: 11,
		ByAS: map[asdb.ASN][]int{42: counts},
	}
	if events := Detect(s, DefaultConfig()); len(events) != 0 {
		t.Errorf("partial trailing bin flagged as outage: %v", events)
	}
	// The same series with no completeness information (hand-built,
	// legacy behaviour) does report it — the boundary the fix moves.
	s.Complete = 0
	if events := Detect(s, DefaultConfig()); len(events) != 1 {
		t.Errorf("legacy all-complete series: %v", events)
	}
	// A real dark run ending at the completeness boundary still reports.
	counts[9] = 0
	s.Complete = 11
	events := Detect(s, DefaultConfig())
	if len(events) != 1 || events[0].DarkBins != 2 {
		t.Errorf("dark run at boundary: %v", events)
	}
}

func TestRebin(t *testing.T) {
	base := &Series{
		Origin: time.Date(2022, 1, 25, 0, 0, 0, 0, time.UTC),
		Bin:    time.Hour, Bins: 8, Complete: 7,
		ByAS: map[asdb.ASN][]int{
			1: {1, 2, 3, 4, 5, 6, 7, 8},
			2: {1, 0, 0, 0, 0, 0, 0, 0},
		},
	}
	got, err := Rebin(base, 3*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if got.Bins != 3 || got.Complete != 2 || got.Bin != 3*time.Hour {
		t.Fatalf("rebinned shape: bins %d complete %d bin %v", got.Bins, got.Complete, got.Bin)
	}
	if want := []int{6, 15, 15}; !equalInts(got.ByAS[1], want) {
		t.Errorf("AS1 bins %v, want %v", got.ByAS[1], want)
	}
	if want := []int{1, 0, 0}; !equalInts(got.ByAS[2], want) {
		t.Errorf("AS2 bins %v, want %v", got.ByAS[2], want)
	}
	if same, err := Rebin(base, time.Hour); err != nil || same.Bins != base.Bins {
		t.Errorf("identity rebin: %v %v", same, err)
	}
	if _, err := Rebin(base, 0); err == nil {
		t.Error("zero bin should fail")
	}
	if _, err := Rebin(base, 90*time.Minute); err == nil {
		t.Error("non-multiple bin should fail")
	}
}

// TestRebinMatchesBuildSeries pins the single-pass contract: rebinning
// a fine recorded series reproduces building the coarse series from the
// raw stream directly.
func TestRebinMatchesBuildSeries(t *testing.T) {
	w, _, _ := outageWorld(t)
	base, err := BuildSeries(w, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for _, bin := range []time.Duration{time.Hour, 6 * time.Hour, 7 * time.Hour, 24 * time.Hour} {
		direct, err := BuildSeries(w, bin)
		if err != nil {
			t.Fatal(err)
		}
		rebinned, err := Rebin(base, bin)
		if err != nil {
			t.Fatal(err)
		}
		if rebinned.Bins != direct.Bins || rebinned.Complete != direct.Complete {
			t.Errorf("bin %v: shape (%d,%d) vs direct (%d,%d)",
				bin, rebinned.Bins, rebinned.Complete, direct.Bins, direct.Complete)
		}
		if !rebinned.Origin.Equal(direct.Origin) {
			t.Errorf("bin %v: origin %v vs %v", bin, rebinned.Origin, direct.Origin)
		}
		if len(rebinned.ByAS) != len(direct.ByAS) {
			t.Fatalf("bin %v: %d ASes vs %d", bin, len(rebinned.ByAS), len(direct.ByAS))
		}
		for asn, want := range direct.ByAS {
			if !equalInts(rebinned.ByAS[asn], want) {
				t.Errorf("bin %v AS%d: %v vs %v", bin, asn, rebinned.ByAS[asn], want)
			}
		}
	}
}

func TestSeriesTail(t *testing.T) {
	s := &Series{
		Origin: time.Date(2022, 1, 25, 0, 0, 0, 0, time.UTC),
		Bin:    time.Hour, Bins: 6, Complete: 5,
		ByAS: map[asdb.ASN][]int{
			1: {10, 20, 30, 40, 50, 3},
			2: {1},
		},
	}
	got := s.Tail(2)
	if got.Bins != 3 || got.Complete != 2 {
		t.Fatalf("tail shape: bins %d complete %d", got.Bins, got.Complete)
	}
	if want := s.Origin.Add(3 * time.Hour); !got.Origin.Equal(want) {
		t.Errorf("tail origin %v, want %v", got.Origin, want)
	}
	if want := []int{40, 50, 3}; !equalInts(got.ByAS[1], want) {
		t.Errorf("tail AS1 %v, want %v", got.ByAS[1], want)
	}
	if len(got.ByAS[2]) != 0 {
		t.Errorf("AS entirely before the window should be empty, got %v", got.ByAS[2])
	}
	if s.Tail(0) != s || s.Tail(5) != s || s.Tail(99) != s {
		t.Error("no-op tails should return the series unchanged")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMedian(t *testing.T) {
	if m := median(nil); m != 0 {
		t.Errorf("empty median: %v", m)
	}
	if m := median([]int{5}); m != 5 {
		t.Errorf("single: %v", m)
	}
	if m := median([]int{1, 3, 2}); m != 2 {
		t.Errorf("odd: %v", m)
	}
	if m := median([]int{1, 2, 3, 4}); m != 2.5 {
		t.Errorf("even: %v", m)
	}
}
