// Package outage implements passive outage detection, one of the hitlist
// applications the paper's introduction motivates: a sudden silence of an
// AS's NTP clients is visible in the passive feed long before any active
// probing would notice.
//
// The detector bins query arrivals per AS, estimates each AS's typical
// bin volume, and flags runs of bins that fall below a fraction of it.
package outage

import (
	"fmt"
	"sort"
	"time"

	"hitlist6/internal/asdb"
	"hitlist6/internal/simnet"
)

// Series holds per-AS query counts in fixed time bins.
type Series struct {
	Origin time.Time
	Bin    time.Duration
	Bins   int
	// Complete is the number of leading bins fully covered by the
	// collection window. A final bin that only partially overlaps the
	// window carries genuinely lower volume and would read as a false
	// outage, so Detect ignores bins at or past this index. 0 means
	// unknown: every bin is treated as complete (the behaviour of
	// hand-built series).
	Complete int
	ByAS     map[asdb.ASN][]int
}

// BuildSeries replays the world's NTP queries into per-AS time bins.
func BuildSeries(w *simnet.World, bin time.Duration) (*Series, error) {
	if bin <= 0 {
		return nil, fmt.Errorf("outage: bin must be positive")
	}
	window := w.End.Sub(w.Origin)
	total := int(window/bin) + 1
	s := &Series{
		Origin: w.Origin,
		Bin:    bin,
		Bins:   total,
		// The final bin extends past w.End (or, when bin divides the
		// window exactly, lies entirely beyond it) — never complete.
		Complete: int(window / bin),
		ByAS:     make(map[asdb.ASN][]int),
	}
	w.GenerateQueries(func(q simnet.Query) {
		as := w.ASDB.Lookup(q.Addr)
		if as == nil {
			return
		}
		idx := int(q.Time.Sub(w.Origin) / bin)
		if idx < 0 || idx >= total {
			return
		}
		counts := s.ByAS[as.ASN]
		if counts == nil {
			counts = make([]int, total)
			s.ByAS[as.ASN] = counts
		}
		counts[idx]++
	})
	return s, nil
}

// Rebin aggregates a series into coarser bins; bin must be a positive
// multiple of s.Bin. Because both resolutions bin from the same origin,
// floor(t/(k·b)) == floor(floor(t/b)/k), so rebinning the fine series
// recorded by the ingest pipeline's outage stage reproduces BuildSeries
// at the coarser width exactly — one recorded pass serves any detection
// bin width. The input series is not modified.
func Rebin(s *Series, bin time.Duration) (*Series, error) {
	if bin <= 0 {
		return nil, fmt.Errorf("outage: bin must be positive")
	}
	if s.Bin <= 0 || bin%s.Bin != 0 {
		return nil, fmt.Errorf("outage: bin %v is not a multiple of the recorded resolution %v", bin, s.Bin)
	}
	k := int(bin / s.Bin)
	if k == 1 {
		out := *s
		return &out, nil
	}
	out := &Series{
		Origin:   s.Origin,
		Bin:      bin,
		Complete: s.Complete / k,
		ByAS:     make(map[asdb.ASN][]int, len(s.ByAS)),
	}
	if s.Bins > 0 {
		out.Bins = (s.Bins-1)/k + 1
	}
	//lint:ordered per-AS rebinning is independent per key; the output is a map
	for asn, counts := range s.ByAS {
		coarse := make([]int, out.Bins)
		for i, n := range counts {
			idx := i / k
			if idx >= len(coarse) {
				break
			}
			coarse[idx] += n
		}
		out.ByAS[asn] = coarse
	}
	return out, nil
}

// Tail restricts the series to its last n complete bins (plus any
// trailing incomplete ones): the rolling window a live detector scans
// so that a long-running daemon's baseline tracks recent traffic. n <= 0,
// or n covering the whole series, returns s unchanged. The returned
// series shares count storage with s and must be treated as read-only.
func (s *Series) Tail(n int) *Series {
	complete := s.Complete
	if complete <= 0 || complete > s.Bins {
		complete = s.Bins
	}
	if n <= 0 || n >= complete {
		return s
	}
	drop := complete - n
	out := &Series{
		Origin:   s.Origin.Add(time.Duration(drop) * s.Bin),
		Bin:      s.Bin,
		Bins:     s.Bins - drop,
		Complete: n,
		ByAS:     make(map[asdb.ASN][]int, len(s.ByAS)),
	}
	//lint:ordered per-AS window slicing is independent per key; the output is a map
	for asn, counts := range s.ByAS {
		if len(counts) <= drop {
			out.ByAS[asn] = nil
			continue
		}
		out.ByAS[asn] = counts[drop:]
	}
	return out
}

// Config tunes detection.
type Config struct {
	// Threshold is the fraction of the AS's median bin volume below
	// which a bin counts as dark (default 0.2).
	Threshold float64
	// MinBins is the minimum consecutive dark bins to report (default 2).
	MinBins int
	// MinMedian skips ASes whose median bin volume is below this (too
	// quiet to judge; default 5).
	MinMedian int
}

// DefaultConfig returns sane thresholds.
func DefaultConfig() Config {
	return Config{Threshold: 0.2, MinBins: 2, MinMedian: 5}
}

// Event is one detected outage.
type Event struct {
	ASN      asdb.ASN
	From, To time.Time
	// MedianVolume is the AS's baseline bin count; DarkBins the length.
	MedianVolume float64
	DarkBins     int
}

// Detect scans the series for outages.
func Detect(s *Series, cfg Config) []Event {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 0.2
	}
	if cfg.MinBins <= 0 {
		cfg.MinBins = 2
	}
	if cfg.MinMedian <= 0 {
		cfg.MinMedian = 5
	}
	var events []Event
	asns := make([]asdb.ASN, 0, len(s.ByAS))
	for asn := range s.ByAS {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })

	for _, asn := range asns {
		counts := s.ByAS[asn]
		// Exclude the trailing incomplete bin(s): their volume is low
		// because the window ends mid-bin, not because the AS went dark,
		// and they would also drag the median baseline down.
		if n := s.Complete; n > 0 && n < len(counts) {
			counts = counts[:n]
		}
		med := median(counts)
		if med < float64(cfg.MinMedian) {
			continue
		}
		limit := cfg.Threshold * med
		run := 0
		for i := 0; i <= len(counts); i++ {
			dark := i < len(counts) && float64(counts[i]) < limit
			if dark {
				run++
				continue
			}
			if run >= cfg.MinBins {
				events = append(events, Event{
					ASN:          asn,
					From:         s.Origin.Add(time.Duration(i-run) * s.Bin),
					To:           s.Origin.Add(time.Duration(i) * s.Bin),
					MedianVolume: med,
					DarkBins:     run,
				})
			}
			run = 0
		}
	}
	return events
}

func median(counts []int) float64 {
	if len(counts) == 0 {
		return 0
	}
	sorted := append([]int(nil), counts...)
	sort.Ints(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return float64(sorted[n/2])
	}
	return float64(sorted[n/2-1]+sorted[n/2]) / 2
}

// Overlaps reports whether the event overlaps [from, to): the ground
// truth comparison helper.
func (e Event) Overlaps(from, to time.Time) bool {
	return e.From.Before(to) && from.Before(e.To)
}

// String renders the event.
func (e Event) String() string {
	return fmt.Sprintf("AS%d dark %s – %s (%d bins, baseline %.0f q/bin)",
		e.ASN, e.From.Format("02-Jan-06 15:04"), e.To.Format("02-Jan-06 15:04"),
		e.DarkBins, e.MedianVolume)
}
