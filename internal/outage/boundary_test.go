package outage_test

// Boundary coverage for Rebin and Tail driven by the workload package's
// outage-storm scenario: the engineered windows there end exactly on
// bin edges (EndsOnBinEdge), include a single-bin blackout, and run
// through the series tail, which is precisely the geometry where
// off-by-one bin arithmetic hides. The in-package tests cover the happy
// paths on hand-built worlds; these pin the edges against the scenario
// harness's ground truth.

import (
	"sync"
	"testing"
	"time"

	"hitlist6/internal/asdb"
	"hitlist6/internal/outage"
	"hitlist6/internal/simnet"
	"hitlist6/internal/workload"
)

var storm struct {
	once    sync.Once
	world   *simnet.World
	windows []workload.StormWindow
	err     error
}

// stormWorld builds the outage-storm world once for the whole file;
// every test reads it immutably (BuildSeries replays queries, it does
// not mutate the world).
func stormWorld(t *testing.T) (*simnet.World, []workload.StormWindow) {
	t.Helper()
	storm.once.Do(func() {
		cfg, windows := workload.OutageStormSpec(1, workload.SizeSmall)
		storm.windows = windows
		storm.world, storm.err = simnet.Build(cfg)
	})
	if storm.err != nil {
		t.Fatal(storm.err)
	}
	return storm.world, storm.windows
}

func stormSeries(t *testing.T) (*outage.Series, []workload.StormWindow) {
	t.Helper()
	w, windows := stormWorld(t)
	s, err := outage.BuildSeries(w, workload.StormBin)
	if err != nil {
		t.Fatal(err)
	}
	return s, windows
}

// TestStormDetectBinEdgeAlignment: every engineered window that ends
// exactly on a bin edge and trips must be reported with From/To landing
// on those exact edges — including the tail window, whose dark run is
// terminated by the Complete cutoff rather than a bright bin.
func TestStormDetectBinEdgeAlignment(t *testing.T) {
	s, windows := stormSeries(t)
	events := outage.Detect(s, outage.DefaultConfig())

	for _, w := range windows {
		var hit *outage.Event
		for i := range events {
			if events[i].ASN == w.ASN && events[i].Overlaps(w.From, w.To) {
				hit = &events[i]
				break
			}
		}
		if w.ShouldTrip && hit == nil {
			t.Errorf("AS%d window %s–%s should trip and did not", w.ASN,
				w.From.Format("02 15:04"), w.To.Format("02 15:04"))
			continue
		}
		if !w.ShouldTrip {
			if hit != nil {
				t.Errorf("AS%d window %s–%s must not trip, got %v", w.ASN,
					w.From.Format("02 15:04"), w.To.Format("02 15:04"), *hit)
			}
			continue
		}
		if w.EndsOnBinEdge {
			if !hit.From.Equal(w.From) || !hit.To.Equal(w.To) {
				t.Errorf("AS%d event %s–%s does not align to the bin-edge window %s–%s",
					w.ASN, hit.From.Format("02 15:04"), hit.To.Format("02 15:04"),
					w.From.Format("02 15:04"), w.To.Format("02 15:04"))
			}
		}
	}
}

// TestStormRebinMatchesBuildSeries: rebinning the fine recorded series
// must reproduce BuildSeries at the coarser width bin-for-bin — the
// contract that lets the ingest pipeline record once and detect at any
// width. The storm windows sit exactly on 6h edges, so any rounding
// error in the coarse index math shifts a dark bin and shows up here.
func TestStormRebinMatchesBuildSeries(t *testing.T) {
	w, _ := stormWorld(t)
	fine, _ := stormSeries(t)

	for _, coarse := range []time.Duration{12 * time.Hour, 24 * time.Hour} {
		rebinned, err := outage.Rebin(fine, coarse)
		if err != nil {
			t.Fatalf("Rebin(%v): %v", coarse, err)
		}
		direct, err := outage.BuildSeries(w, coarse)
		if err != nil {
			t.Fatal(err)
		}
		if rebinned.Bins != direct.Bins || rebinned.Complete != direct.Complete ||
			rebinned.Bin != direct.Bin || !rebinned.Origin.Equal(direct.Origin) {
			t.Fatalf("Rebin(%v) shape {bins %d complete %d} != BuildSeries {bins %d complete %d}",
				coarse, rebinned.Bins, rebinned.Complete, direct.Bins, direct.Complete)
		}
		if len(rebinned.ByAS) != len(direct.ByAS) {
			t.Fatalf("Rebin(%v) has %d ASes, BuildSeries %d", coarse, len(rebinned.ByAS), len(direct.ByAS))
		}
		for asn, want := range direct.ByAS {
			got := rebinned.ByAS[asn]
			if len(got) != len(want) {
				t.Fatalf("AS%d: rebinned %d bins, direct %d", asn, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("AS%d bin %d: rebinned %d, direct %d", asn, i, got[i], want[i])
				}
			}
		}
	}

	// A width that is not a multiple of the recorded resolution must be
	// refused, not silently rounded.
	if _, err := outage.Rebin(fine, 9*time.Hour); err == nil {
		t.Error("Rebin to a non-multiple width succeeded")
	}
	if _, err := outage.Rebin(fine, 0); err == nil {
		t.Error("Rebin to zero width succeeded")
	}
	// k == 1 is a copy, not an alias.
	same, err := outage.Rebin(fine, fine.Bin)
	if err != nil {
		t.Fatal(err)
	}
	if same == fine {
		t.Error("Rebin at the recorded width returned the input series itself")
	}
}

// TestStormRebinToSingleBin collapses the whole study into one complete
// bin: the degenerate series no detector threshold can act on (MinBins
// can never be met), which must come out shaped right, not panic.
func TestStormRebinToSingleBin(t *testing.T) {
	fine, _ := stormSeries(t)
	whole := time.Duration(fine.Complete) * fine.Bin
	s, err := outage.Rebin(fine, whole)
	if err != nil {
		t.Fatal(err)
	}
	if s.Complete != 1 {
		t.Fatalf("single-bin rebin: Complete = %d, want 1", s.Complete)
	}
	if s.Bins < 1 || s.Bins > 2 {
		t.Fatalf("single-bin rebin: Bins = %d, want 1 or 2 (trailing partial)", s.Bins)
	}
	if events := outage.Detect(s, outage.DefaultConfig()); len(events) != 0 {
		t.Fatalf("single-bin series produced events: %v", events)
	}
}

// TestStormTailWindow: Tail must slide the origin by whole bins, keep
// the engineered tail-window outage detectable inside the rolling
// window, and forget the earlier ones — with counts shared, not copied.
func TestStormTailWindow(t *testing.T) {
	s, windows := stormSeries(t)

	// n covering everything (or nonsense) returns the series itself.
	if s.Tail(0) != s || s.Tail(-3) != s || s.Tail(s.Complete) != s || s.Tail(s.Bins+5) != s {
		t.Fatal("degenerate Tail calls must return the input series")
	}

	// The last 2 days: contains only the Storm Tail window.
	n := int(48 * time.Hour / s.Bin)
	tail := s.Tail(n)
	drop := s.Complete - n
	if tail.Complete != n || tail.Bins != s.Bins-drop {
		t.Fatalf("Tail(%d): complete %d bins %d, want %d and %d", n, tail.Complete, tail.Bins, n, s.Bins-drop)
	}
	if wantOrigin := s.Origin.Add(time.Duration(drop) * s.Bin); !tail.Origin.Equal(wantOrigin) {
		t.Fatalf("Tail(%d) origin %v, want %v", n, tail.Origin, wantOrigin)
	}
	for asn, counts := range s.ByAS {
		got := tail.ByAS[asn]
		if len(got) != len(counts)-drop || (len(got) > 0 && &got[0] != &counts[drop]) {
			t.Fatalf("AS%d: tail window does not share the suffix of the recorded counts", asn)
		}
	}

	events := outage.Detect(tail, outage.DefaultConfig())
	for _, w := range windows {
		inWindow := w.From.After(tail.Origin) || w.From.Equal(tail.Origin)
		var hit bool
		for _, e := range events {
			if e.ASN == w.ASN && e.Overlaps(w.From, w.To) {
				hit = true
			}
		}
		switch {
		case inWindow && w.ShouldTrip && !hit:
			t.Errorf("AS%d: tail window lost the engineered tail outage", w.ASN)
		case !inWindow && hit:
			t.Errorf("AS%d: an outage before the rolling window leaked into the tail", w.ASN)
		}
	}

	// Tail(1): a single complete bin can never satisfy MinBins.
	if events := outage.Detect(s.Tail(1), outage.DefaultConfig()); len(events) != 0 {
		t.Fatalf("Tail(1) produced events: %v", events)
	}
}

// TestStormAllSilentAS: an AS that is present but never queries (all
// bins zero — the shape of an AS known to the AS DB whose clients all
// sit behind a firewall). It must be skipped by Detect's MinMedian
// guard rather than reported as one long outage, and survive
// Rebin/Tail with the right shapes. A short row (an AS first seen near
// the end, recorded with fewer bins) exercises Tail's len<=drop guard.
func TestStormAllSilentAS(t *testing.T) {
	base, _ := stormSeries(t)
	// Copy the series shell so the cached storm series stays pristine.
	s := &outage.Series{
		Origin: base.Origin, Bin: base.Bin, Bins: base.Bins, Complete: base.Complete,
		ByAS: make(map[asdb.ASN][]int, len(base.ByAS)+2),
	}
	for asn, counts := range base.ByAS {
		s.ByAS[asn] = counts
	}
	const silentASN = asdb.ASN(70399)
	const shortASN = asdb.ASN(70398)
	s.ByAS[silentASN] = make([]int, s.Bins)
	s.ByAS[shortASN] = []int{3, 1}

	for _, e := range outage.Detect(s, outage.DefaultConfig()) {
		if e.ASN == silentASN || e.ASN == shortASN {
			t.Fatalf("silent/short AS reported as an outage: %v", e)
		}
	}

	reb, err := outage.Rebin(s, 2*s.Bin)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range reb.ByAS[silentASN] {
		if n != 0 {
			t.Fatal("rebinned all-silent AS grew counts from nowhere")
		}
	}
	if len(reb.ByAS[silentASN]) != reb.Bins {
		t.Fatalf("rebinned silent AS has %d bins, series has %d", len(reb.ByAS[silentASN]), reb.Bins)
	}

	tail := s.Tail(4)
	if got := tail.ByAS[shortASN]; got != nil {
		t.Fatalf("short-row AS should have no counts inside the tail window, got %v", got)
	}
	if got := tail.ByAS[silentASN]; len(got) != tail.Bins {
		t.Fatalf("silent AS tail has %d bins, want %d", len(got), tail.Bins)
	}
}
