package geoloc

import (
	"testing"

	"hitlist6/internal/addr"
	"hitlist6/internal/simnet"
	"hitlist6/internal/wigle"
)

func TestInferOffsetsSynthetic(t *testing.T) {
	db := wigle.NewDB()
	o := addr.OUI{0xc8, 0x0e, 0x14} // AVM
	trueOffset := int32(3)
	var wired []addr.MAC
	// 20 devices: wired MAC m, BSSID m+3 in the database.
	for i := 0; i < 20; i++ {
		m := addr.MAC{o[0], o[1], o[2], 0, byte(i), 0x10}
		wired = append(wired, m)
		db.Add(m.AddOffset(trueOffset), wigle.Location{Lat: 51, Lon: 10})
	}
	// Noise BSSIDs far away in suffix space.
	for i := 0; i < 50; i++ {
		m := addr.MAC{o[0], o[1], o[2], 0x7f, byte(i), 0x99}
		db.Add(m, wigle.Location{Lat: 0, Lon: 0})
	}
	offs := InferOffsets(wired, db, 5)
	if len(offs) != 1 {
		t.Fatalf("inferred %d OUIs, want 1: %+v", len(offs), offs)
	}
	if offs[0].OUI != o || offs[0].Offset != trueOffset {
		t.Fatalf("inferred %+v, want offset %d", offs[0], trueOffset)
	}
	if offs[0].Matches < 20 {
		t.Errorf("matches: %d", offs[0].Matches)
	}
}

func TestInferOffsetsMinPairs(t *testing.T) {
	db := wigle.NewDB()
	o := addr.OUI{0x38, 0x10, 0xd5}
	m := addr.MAC{o[0], o[1], o[2], 1, 2, 3}
	db.Add(m.AddOffset(1), wigle.Location{})
	// One pair, threshold 5: no inference.
	if got := InferOffsets([]addr.MAC{m}, db, 5); len(got) != 0 {
		t.Errorf("under-threshold inference: %+v", got)
	}
	// Threshold 1: inferred.
	if got := InferOffsets([]addr.MAC{m}, db, 1); len(got) != 1 {
		t.Errorf("threshold-1 inference missing: %+v", got)
	}
}

func TestApply(t *testing.T) {
	db := wigle.NewDB()
	o := addr.OUI{0xc8, 0x0e, 0x14}
	loc := wigle.Location{Lat: 50.1, Lon: 8.7}
	m := addr.MAC{o[0], o[1], o[2], 9, 9, 9}
	db.Add(m.AddOffset(2), loc)
	offs := []OffsetCandidate{{OUI: o, Offset: 2, Matches: 100}}
	got := Apply([]addr.MAC{m, m}, offs, db) // duplicate wired MAC deduped
	if len(got) != 1 {
		t.Fatalf("linked %d", len(got))
	}
	if got[0].Location != loc {
		t.Errorf("location: %+v", got[0].Location)
	}
	// A MAC under an OUI without an inferred offset stays unlocated.
	other := addr.MAC{0x00, 0x3e, 0xe1, 1, 1, 1}
	if got := Apply([]addr.MAC{other}, offs, db); len(got) != 0 {
		t.Errorf("unexpected linkage: %+v", got)
	}
}

// TestEndToEndGeolocation runs the full §5.3 pipeline against a simulated
// world: collect EUI-64 CPE MACs, build the wardriving DB, infer offsets,
// geolocate, and validate against the world's ground-truth site
// positions.
func TestEndToEndGeolocation(t *testing.T) {
	cfg := simnet.DefaultConfig(61, 0.25)
	cfg.Days = 10
	w, err := simnet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wdb := wigle.Build(w, wigle.DefaultBuildConfig(3))
	if wdb.Len() == 0 {
		t.Fatal("empty wardriving DB")
	}

	// Wired MACs as the paper gets them: from EUI-64 IIDs of observed
	// addresses. Here, straight from EUI-64 CPE devices (every CPE
	// queries NTP, so the corpus would contain them).
	var wired []addr.MAC
	truth := make(map[addr.MAC]wigle.Location)
	for _, s := range w.Sites() {
		cpe := s.CPE()
		if cpe == nil || cpe.Strategy != simnet.StratEUI64 {
			continue
		}
		if m, ok := cpe.MAC(); ok {
			wired = append(wired, m)
			truth[m] = wigle.SiteLocation(s)
		}
	}
	if len(wired) < 10 {
		t.Fatalf("only %d EUI-64 CPE", len(wired))
	}

	// The paper requires 500 wired-to-BSSID pairs per OUI; scale the
	// threshold down for the test-sized corpus.
	offs := InferOffsets(wired, wdb, 2)
	if len(offs) == 0 {
		t.Fatal("no offsets inferred")
	}
	// Every inferred offset must equal the vendor's true offset.
	for _, c := range offs {
		if want := wigle.VendorOffset(c.OUI); c.Offset != want {
			t.Errorf("OUI %s: inferred %d want %d (matches=%d)",
				c.OUI, c.Offset, want, c.Matches)
		}
	}

	located := Apply(wired, offs, wdb)
	if len(located) == 0 {
		t.Fatal("nothing geolocated")
	}
	correct := 0
	for _, g := range located {
		if want, ok := truth[g.Wired]; ok && want == g.Location {
			correct++
		}
	}
	// The overwhelming majority of linkages must hit the true site
	// location (noise BSSIDs occasionally collide).
	if float64(correct) < 0.9*float64(len(located)) {
		t.Errorf("only %d/%d geolocations correct", correct, len(located))
	}
	t.Logf("geolocated %d/%d EUI-64 CPE (%d correct)", len(located), len(wired), correct)
}

func TestCountryCount(t *testing.T) {
	res := []Geolocated{
		{Location: wigle.Location{Lat: 51, Lon: 10}},
		{Location: wigle.Location{Lat: 50, Lon: 9}},
		{Location: wigle.Location{Lat: 40, Lon: -100}},
	}
	classify := func(l wigle.Location) string {
		if l.Lon > 0 {
			return "DE"
		}
		return "US"
	}
	got := CountryCount(res, classify)
	if got["DE"] != 2 || got["US"] != 1 {
		t.Errorf("counts: %v", got)
	}
}

func TestVendorOffsetProperties(t *testing.T) {
	seen := make(map[int32]bool)
	for i := 0; i < 64; i++ {
		o := addr.OUI{byte(i), 0x20, 0x30}
		off := wigle.VendorOffset(o)
		if off == 0 || off > 8 || off < -8 {
			t.Fatalf("offset %d out of band", off)
		}
		// Determinism.
		if wigle.VendorOffset(o) != off {
			t.Fatal("offset not deterministic")
		}
		seen[off] = true
	}
	if len(seen) < 4 {
		t.Errorf("offsets not diverse: %v", seen)
	}
}
