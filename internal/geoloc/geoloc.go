// Package geoloc implements the Rye–Beverly EUI-64 geolocation technique
// the paper applies in §5.3: infer, per OUI, the most common offset
// between wired MACs (recovered from EUI-64 IIDs) and wireless BSSIDs in
// wardriving data, then link each wired MAC to a geolocated BSSID at that
// offset.
package geoloc

import (
	"sort"

	"hitlist6/internal/addr"
	"hitlist6/internal/wigle"
)

// OffsetCandidate is one inferred per-OUI offset with its support.
type OffsetCandidate struct {
	OUI     addr.OUI
	Offset  int32
	Matches int
}

// maxOffsetMagnitude bounds the offsets considered during inference; real
// wired/wireless pairs sit within a few addresses of each other, and an
// unbounded tally would be dominated by coincidences.
const maxOffsetMagnitude = 64

// InferOffsets implements the paper's §5.3 procedure: for every wired MAC
// (from EUI-64 IIDs), compare against every wardriven BSSID in the same
// OUI, tally the candidate offsets, and per OUI keep the offset with the
// largest number of wired-to-BSSID matches. Only OUIs with at least
// minPairs contributing wired MACs qualify (the paper requires 500 pairs;
// pass a scaled threshold for smaller corpora).
func InferOffsets(wired []addr.MAC, db *wigle.DB, minPairs int) []OffsetCandidate {
	type key struct {
		oui addr.OUI
		off int32
	}
	tally := make(map[key]int)
	contributors := make(map[addr.OUI]map[addr.MAC]struct{})

	for _, m := range wired {
		o := m.OUI()
		bssids := db.ByOUI(o)
		if len(bssids) == 0 {
			continue
		}
		for _, b := range bssids {
			off := m.SuffixOffset(b)
			if off == 0 || off > maxOffsetMagnitude || off < -maxOffsetMagnitude {
				continue
			}
			tally[key{o, off}]++
			cset := contributors[o]
			if cset == nil {
				cset = make(map[addr.MAC]struct{})
				contributors[o] = cset
			}
			cset[m] = struct{}{}
		}
	}

	best := make(map[addr.OUI]OffsetCandidate)
	for k, n := range tally {
		cur, ok := best[k.oui]
		if !ok || n > cur.Matches || (n == cur.Matches && absLess(k.off, cur.Offset)) {
			best[k.oui] = OffsetCandidate{OUI: k.oui, Offset: k.off, Matches: n}
		}
	}
	var out []OffsetCandidate
	for o, c := range best {
		if len(contributors[o]) >= minPairs {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Matches != out[j].Matches {
			return out[i].Matches > out[j].Matches
		}
		return out[i].OUI.String() < out[j].OUI.String()
	})
	return out
}

func absLess(a, b int32) bool {
	aa, bb := a, b
	if aa < 0 {
		aa = -aa
	}
	if bb < 0 {
		bb = -bb
	}
	return aa < bb
}

// Geolocated is one successfully located device.
type Geolocated struct {
	Wired    addr.MAC
	BSSID    addr.MAC
	Location wigle.Location
}

// Apply links wired MACs to geolocated BSSIDs using the inferred per-OUI
// offsets, returning every successful linkage.
func Apply(wired []addr.MAC, offsets []OffsetCandidate, db *wigle.DB) []Geolocated {
	offByOUI := make(map[addr.OUI]int32, len(offsets))
	for _, c := range offsets {
		offByOUI[c.OUI] = c.Offset
	}
	var out []Geolocated
	seen := make(map[addr.MAC]struct{})
	for _, m := range wired {
		if _, dup := seen[m]; dup {
			continue
		}
		seen[m] = struct{}{}
		off, ok := offByOUI[m.OUI()]
		if !ok {
			continue
		}
		bssid := m.AddOffset(off)
		if loc, ok := db.Lookup(bssid); ok {
			out = append(out, Geolocated{Wired: m, BSSID: bssid, Location: loc})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return macLess(out[i].Wired, out[j].Wired)
	})
	return out
}

func macLess(x, y addr.MAC) bool {
	for i := 0; i < 6; i++ {
		if x[i] != y[i] {
			return x[i] < y[i]
		}
	}
	return false
}

// CountryCount tallies geolocated devices per country using a coordinate
// classifier. The paper reports 140 countries with Germany at 75%.
func CountryCount(results []Geolocated, countryOf func(wigle.Location) string) map[string]int {
	out := make(map[string]int)
	for _, g := range results {
		out[countryOf(g.Location)]++
	}
	return out
}
