// Package geodb is the MaxMind-GeoLite2 stand-in: a prefix-to-country
// database. The paper uses MaxMind only at country granularity (its §3
// Geolocation paragraph explicitly distrusts finer-grained results), so
// that is all this database offers.
package geodb

import (
	"sort"

	"hitlist6/internal/addr"
	"hitlist6/internal/asdb"
)

// DB maps IPv6 prefixes to ISO 3166-1 alpha-2 country codes.
type DB struct {
	table *asdb.Trie[string]
}

// New returns an empty country database.
func New() *DB {
	return &DB{table: asdb.NewTrie[string]()}
}

// Add records that a prefix geolocates to country (ISO alpha-2).
func (db *DB) Add(p addr.Prefix, country string) {
	db.table.Insert(p, country)
}

// Country returns the country for an address, or "" when unknown.
func (db *DB) Country(a addr.Addr) string {
	c, _ := db.table.Lookup(a)
	return c
}

// FromASDB builds a country database from AS registration countries: every
// routed prefix geolocates to its origin AS's country. This mirrors how
// country-level IP geolocation behaves in practice for eyeball networks.
func FromASDB(db *asdb.DB) *DB {
	g := New()
	for _, rp := range db.RoutedPrefixes() {
		if as := db.Get(rp.Origin); as != nil && as.Country != "" {
			g.Add(rp.Prefix, as.Country)
		}
	}
	return g
}

// CountryCounts tallies addresses per country, for the paper's §3 vantage
// point discussion (top countries: IN, CN, US, BR, ID with 76% combined).
func (db *DB) CountryCounts(addrs []addr.Addr) map[string]int {
	out := make(map[string]int)
	for _, a := range addrs {
		if c := db.Country(a); c != "" {
			out[c]++
		}
	}
	return out
}

// TopCountries returns the n countries with the most addresses, descending,
// ties broken alphabetically for determinism.
func TopCountries(counts map[string]int, n int) []CountryCount {
	out := make([]CountryCount, 0, len(counts))
	for c, k := range counts {
		out = append(out, CountryCount{Country: c, Count: k})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Country < out[j].Country
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// CountryCount is one row of a per-country tally.
type CountryCount struct {
	Country string
	Count   int
}
