package geodb

import (
	"testing"

	"hitlist6/internal/addr"
	"hitlist6/internal/asdb"
)

func TestCountryLookup(t *testing.T) {
	db := New()
	db.Add(addr.MustParsePrefix("2001:db8::/32"), "DE")
	db.Add(addr.MustParsePrefix("2001:db8:1::/48"), "FR")
	if got := db.Country(addr.MustParse("2001:db8::1")); got != "DE" {
		t.Errorf("got %q want DE", got)
	}
	if got := db.Country(addr.MustParse("2001:db8:1::1")); got != "FR" {
		t.Errorf("longest match: got %q want FR", got)
	}
	if got := db.Country(addr.MustParse("2a00::1")); got != "" {
		t.Errorf("unknown prefix: got %q want empty", got)
	}
}

func TestFromASDB(t *testing.T) {
	adb := asdb.NewDB()
	if err := adb.AddAS(asdb.AS{
		ASN: 55836, Name: "Reliance Jio", Country: "IN",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("2409:4000::/22")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := adb.AddAS(asdb.AS{
		ASN: 7922, Name: "Comcast", Country: "US",
		Prefixes: []addr.Prefix{addr.MustParsePrefix("2601::/20")},
	}); err != nil {
		t.Fatal(err)
	}
	g := FromASDB(adb)
	if got := g.Country(addr.MustParse("2409:4000::1")); got != "IN" {
		t.Errorf("got %q want IN", got)
	}
	if got := g.Country(addr.MustParse("2601::1")); got != "US" {
		t.Errorf("got %q want US", got)
	}
}

func TestCountryCountsAndTop(t *testing.T) {
	db := New()
	db.Add(addr.MustParsePrefix("2001:db8::/32"), "IN")
	db.Add(addr.MustParsePrefix("2001:db9::/32"), "US")
	addrs := []addr.Addr{
		addr.MustParse("2001:db8::1"),
		addr.MustParse("2001:db8::2"),
		addr.MustParse("2001:db9::1"),
		addr.MustParse("2a00::1"), // unknown, not counted
	}
	counts := db.CountryCounts(addrs)
	if counts["IN"] != 2 || counts["US"] != 1 || len(counts) != 2 {
		t.Errorf("counts: %v", counts)
	}
	top := TopCountries(counts, 1)
	if len(top) != 1 || top[0].Country != "IN" || top[0].Count != 2 {
		t.Errorf("top: %v", top)
	}
	// Tie-break alphabetically.
	top2 := TopCountries(map[string]int{"ZZ": 5, "AA": 5}, 2)
	if top2[0].Country != "AA" {
		t.Errorf("tie break: %v", top2)
	}
}
