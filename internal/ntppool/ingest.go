package ntppool

import (
	"hitlist6/internal/ingest"
	"hitlist6/internal/simnet"
)

// RunIngest replays the world's NTP client behaviour through the pool
// into a sharded ingest pipeline: the concurrent successor to Run. The
// producer side (query generation, geo lookup, vantage selection, zone
// accounting) stays on one goroutine — Pool's round-robin state is
// deliberately sequential so vantage assignment is identical to Run's —
// while the per-sighting collector and enrichment work fans out across
// the pipeline's shards. The caller owns the pipeline: install stages
// before, Close after. The returned stats carry the producer-side
// tallies only; UniqueClients is left zero because it is unknowable
// until the final snapshots merge — derive it from the merged
// collector after Close (NumAddrs), as Study.CollectPassive does.
func RunIngest(w *simnet.World, p *Pool, pipe *ingest.Pipeline) RunStats {
	stats, _ := RunIngestProgress(w, p, pipe, IngestProgress{})
	return stats
}

// IngestProgress parameterizes RunIngestProgress: the resume offset and
// the checkpoint cadence of a replay.
type IngestProgress struct {
	// Skip suppresses feeding the first Skip events into the pipeline —
	// they are assumed present already, via a restored checkpoint passed
	// as ingest.Config.Seed. The full producer loop still runs for the
	// skipped prefix (vantage selection is stateful round-robin, and the
	// stats cover the whole window), so a resumed run is byte-identical
	// to an uninterrupted one.
	Skip uint64
	// CheckpointEvery invokes Checkpoint after every CheckpointEvery
	// events fed (not counting skipped ones). 0 disables.
	CheckpointEvery uint64
	// Checkpoint runs with the producer paused and its batcher flushed:
	// events is the exact count folded into the pipeline so far (skipped
	// prefix included), which is precisely the Skip a later resume of
	// this checkpoint needs. The callback should Quiesce the pipeline
	// before serializing (Pipeline.Checkpoint and the study checkpointer
	// both do). A checkpoint error stops further checkpointing — the
	// replay itself continues — and surfaces in the return.
	Checkpoint func(events uint64) error
}

// RunIngestProgress is RunIngest with resume and periodic-checkpoint
// hooks. The producer pauses at each checkpoint boundary, so the set of
// events the pipeline has folded is always an exact prefix of the
// deterministic replay stream — the property that makes Skip-based
// resume sound.
func RunIngestProgress(w *simnet.World, p *Pool, pipe *ingest.Pipeline, prog IngestProgress) (RunStats, error) {
	stats := RunStats{
		PerVantage: make([]uint64, len(p.vantages)),
		PerZone:    make(map[string]uint64),
	}
	var ckptErr error
	var fed, sinceCkpt uint64
	b := pipe.NewBatcher()
	w.GenerateQueries(func(q simnet.Query) {
		country := w.Geo.Country(q.Addr)
		v := p.Select(country)
		stats.Queries++
		stats.PerVantage[v.ID]++
		stats.PerZone[VendorZone(q.Device.Kind)]++
		if stats.Queries <= prog.Skip {
			return
		}
		b.Add(ingest.Event{Addr: q.Addr, Time: q.Time.Unix(), Server: int32(v.ID)})
		fed++
		sinceCkpt++
		if prog.CheckpointEvery > 0 && sinceCkpt >= prog.CheckpointEvery &&
			prog.Checkpoint != nil && ckptErr == nil {
			sinceCkpt = 0
			b.Flush()
			ckptErr = prog.Checkpoint(prog.Skip + fed)
		}
	})
	b.Flush()
	return stats, ckptErr
}

// MaterializeEvents replays the world once and returns the fully
// resolved event stream (vantage already assigned): the input for
// shard-equivalence tests and ingest benchmarks, and the writer side of
// ingestd's file format via Event.AppendText.
func MaterializeEvents(w *simnet.World, p *Pool) []ingest.Event {
	events := make([]ingest.Event, 0, 1024)
	w.GenerateQueries(func(q simnet.Query) {
		v := p.Select(w.Geo.Country(q.Addr))
		events = append(events, ingest.Event{
			Addr: q.Addr, Time: q.Time.Unix(), Server: int32(v.ID),
		})
	})
	return events
}
