package ntppool

import (
	"hitlist6/internal/ingest"
	"hitlist6/internal/simnet"
)

// RunIngest replays the world's NTP client behaviour through the pool
// into a sharded ingest pipeline: the concurrent successor to Run. The
// producer side (query generation, geo lookup, vantage selection, zone
// accounting) stays on one goroutine — Pool's round-robin state is
// deliberately sequential so vantage assignment is identical to Run's —
// while the per-sighting collector and enrichment work fans out across
// the pipeline's shards. The caller owns the pipeline: install stages
// before, Close after. The returned stats carry the producer-side
// tallies only; UniqueClients is left zero because it is unknowable
// until the final snapshots merge — derive it from the merged
// collector after Close (NumAddrs), as Study.CollectPassive does.
func RunIngest(w *simnet.World, p *Pool, pipe *ingest.Pipeline) RunStats {
	stats := RunStats{
		PerVantage: make([]uint64, len(p.vantages)),
		PerZone:    make(map[string]uint64),
	}
	b := pipe.NewBatcher()
	w.GenerateQueries(func(q simnet.Query) {
		country := w.Geo.Country(q.Addr)
		v := p.Select(country)
		b.Add(ingest.Event{Addr: q.Addr, Time: q.Time.Unix(), Server: int32(v.ID)})
		stats.Queries++
		stats.PerVantage[v.ID]++
		stats.PerZone[VendorZone(q.Device.Kind)]++
	})
	b.Flush()
	return stats
}

// MaterializeEvents replays the world once and returns the fully
// resolved event stream (vantage already assigned): the input for
// shard-equivalence tests and ingest benchmarks, and the writer side of
// ingestd's file format via Event.AppendText.
func MaterializeEvents(w *simnet.World, p *Pool) []ingest.Event {
	events := make([]ingest.Event, 0, 1024)
	w.GenerateQueries(func(q simnet.Query) {
		v := p.Select(w.Geo.Country(q.Addr))
		events = append(events, ingest.Event{
			Addr: q.Addr, Time: q.Time.Unix(), Server: int32(v.ID),
		})
	})
	return events
}
