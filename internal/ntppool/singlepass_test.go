package ntppool

import (
	"reflect"
	"strconv"
	"testing"
	"time"

	"hitlist6/internal/collector"
	"hitlist6/internal/ingest"
	"hitlist6/internal/outage"
	"hitlist6/internal/simnet"
	"hitlist6/internal/tracking"
)

// singlePassWorld builds a world with an injected 48-hour outage so the
// equivalence tests cover a series with real detections in it.
func singlePassWorld(t *testing.T) *simnet.World {
	t.Helper()
	cfg := simnet.DefaultConfig(41, 0.06)
	cfg.Days = 16
	for i := range cfg.ASes {
		if cfg.ASes[i].ASN == 4134 {
			cfg.ASes[i].Outages = []simnet.OutageWindow{{StartDay: 5, Hours: 48}}
		}
	}
	w, err := simnet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func assertSeriesEqual(t *testing.T, label string, want, got *outage.Series) {
	t.Helper()
	if !got.Origin.Equal(want.Origin) || got.Bin != want.Bin ||
		got.Bins != want.Bins || got.Complete != want.Complete {
		t.Fatalf("%s: series shape (%v,%v,%d,%d) vs (%v,%v,%d,%d)", label,
			got.Origin, got.Bin, got.Bins, got.Complete,
			want.Origin, want.Bin, want.Bins, want.Complete)
	}
	if len(got.ByAS) != len(want.ByAS) {
		t.Fatalf("%s: %d ASes vs %d", label, len(got.ByAS), len(want.ByAS))
	}
	for asn, counts := range want.ByAS {
		if !reflect.DeepEqual(got.ByAS[asn], counts) {
			t.Fatalf("%s: AS%d bins %v vs %v", label, asn, got.ByAS[asn], counts)
		}
	}
}

// TestOutageStageEquivalence pins the tentpole contract: the per-AS
// series accumulated by the ingest pipeline's outage stage — at any
// shard count — is identical to replaying the world through
// outage.BuildSeries, and so are the detected events.
func TestOutageStageEquivalence(t *testing.T) {
	w := singlePassWorld(t)
	const bin = 6 * time.Hour

	ref, err := outage.BuildSeries(w, bin)
	if err != nil {
		t.Fatal(err)
	}
	refEvents := outage.Detect(ref, outage.DefaultConfig())
	if len(refEvents) == 0 {
		t.Fatal("reference replay detected nothing; the equivalence would be vacuous")
	}

	for _, shards := range []int{1, 4, 16} {
		p, err := New(StudyVantages())
		if err != nil {
			t.Fatal(err)
		}
		cfg := ingest.DefaultConfig(shards)
		cfg.Stages = []ingest.StageFactory{
			ingest.OutageSeries(w.ASDB, w.Origin, w.End, bin),
		}
		pipe, err := ingest.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		RunIngest(w, p, pipe)
		pipe.Close()
		stage, ok := pipe.Stage("outage").(*ingest.OutageSeriesStage)
		if !ok {
			t.Fatal("outage stage missing")
		}
		got := stage.Series()
		assertSeriesEqual(t, "shards="+strconv.Itoa(shards), ref, got)
		if events := outage.Detect(got, outage.DefaultConfig()); !reflect.DeepEqual(events, refEvents) {
			t.Errorf("shards=%d: events %v vs %v", shards, events, refEvents)
		}
	}
}

// TestTrackingStoreEquivalence pins the other half of the single pass:
// the §5 tracking analysis over the pipeline's merged Store — read live
// after a snapshot, and again from the detached corpus after Close — is
// identical to the analysis over a serial replay's collector.
func TestTrackingStoreEquivalence(t *testing.T) {
	w := singlePassWorld(t)

	p, err := New(StudyVantages())
	if err != nil {
		t.Fatal(err)
	}
	serial := collector.New()
	Run(w, p, serial, nil, time.Time{})
	want := tracking.Analyze(serial, w.ASDB, w.Geo, w.OUI)
	if len(want.MACs) == 0 {
		t.Fatal("serial replay produced no EUI-64 MACs; the equivalence would be vacuous")
	}

	for _, shards := range []int{1, 4, 16} {
		p2, err := New(StudyVantages())
		if err != nil {
			t.Fatal(err)
		}
		pipe, err := ingest.New(ingest.DefaultConfig(shards))
		if err != nil {
			t.Fatal(err)
		}
		RunIngest(w, p2, pipe)

		// Live read: snapshot every shard, wait for the merger to fold
		// them all in, then analyze the store mid-life.
		pipe.SnapshotNow()
		deadline := time.Now().Add(10 * time.Second)
		for pipe.Metrics().Snapshots < uint64(shards) {
			if time.Now().After(deadline) {
				t.Fatalf("shards=%d: merger never applied %d snapshots", shards, shards)
			}
			time.Sleep(time.Millisecond)
		}
		live := tracking.AnalyzeStore(pipe.Store(), w.ASDB, w.Geo, w.OUI)
		if !reflect.DeepEqual(want, live) {
			t.Errorf("shards=%d: live store analysis differs from serial replay", shards)
		}

		// Closed read: the detached corpus must agree too.
		closed := tracking.Analyze(pipe.Close(), w.ASDB, w.Geo, w.OUI)
		if !reflect.DeepEqual(want, closed) {
			t.Errorf("shards=%d: closed-corpus analysis differs from serial replay", shards)
		}
	}
}
