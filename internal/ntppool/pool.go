// Package ntppool models the NTP Pool Project's server selection: a
// DNS round-robin that prefers servers geographically near the client
// (§2.3), plus vendor zones. It also provides the study driver that
// replays a simulated world's NTP queries through the pool into a passive
// collector — the paper's §3 methodology in code.
package ntppool

import (
	"fmt"
	"time"

	"hitlist6/internal/collector"
	"hitlist6/internal/simnet"
)

// Vantage is one pool server operated by the measurement study.
type Vantage struct {
	// ID is the server index (0-based), used as the collector's server
	// bit.
	ID int
	// Country is the ISO alpha-2 country the VPS runs in.
	Country string
	// Continent is a coarse region code used as the geo fallback tier.
	Continent string
}

// Pool is the DNS round-robin selector over the study's vantage servers.
type Pool struct {
	vantages    []Vantage
	byCountry   map[string][]int
	byContinent map[string][]int
	rrState     map[string]int // round-robin cursor per selection pool key
}

// continentOf maps the countries used by the study and the simulator to
// coarse continent codes. Unknown countries fall into "XX" and use the
// global tier.
var continentOf = map[string]string{
	"US": "NA", "MX": "NA", "CA": "NA",
	"BR": "SA", "AR": "SA", "CL": "SA", "CO": "SA",
	"DE": "EU", "NL": "EU", "PL": "EU", "BG": "EU", "ES": "EU", "SE": "EU",
	"GB": "EU", "FR": "EU", "LU": "EU", "IT": "EU", "CZ": "EU", "RO": "EU",
	"UA": "EU", "TR": "EU",
	"JP": "AS", "KR": "AS", "CN": "AS", "HK": "AS", "TW": "AS", "SG": "AS",
	"IN": "AS", "ID": "AS", "BH": "AS", "VN": "AS", "TH": "AS", "MY": "AS",
	"PH": "AS",
	"AU": "OC",
	"ZA": "AF", "EG": "AF", "NG": "AF",
}

// ContinentOf returns the continent code for a country ("XX" if unknown).
func ContinentOf(country string) string {
	if c, ok := continentOf[country]; ok {
		return c
	}
	return "XX"
}

// StudyVantages returns the paper's 27 vantage points: 6 US, 2 JP, 2 DE
// and 1 each in 17 further countries (§3 "Vantage Points").
func StudyVantages() []Vantage {
	countries := []string{
		"US", "US", "US", "US", "US", "US",
		"JP", "JP",
		"DE", "DE",
		"AU", "BH", "BR", "BG", "HK", "IN", "ID", "MX", "NL", "PL",
		"SG", "ZA", "KR", "ES", "SE", "TW", "GB",
	}
	out := make([]Vantage, len(countries))
	for i, cc := range countries {
		out[i] = Vantage{ID: i, Country: cc, Continent: ContinentOf(cc)}
	}
	return out
}

// New builds a pool over the given vantage servers.
func New(vantages []Vantage) (*Pool, error) {
	if len(vantages) == 0 {
		return nil, fmt.Errorf("ntppool: no vantages")
	}
	p := &Pool{
		vantages:    append([]Vantage(nil), vantages...),
		byCountry:   make(map[string][]int),
		byContinent: make(map[string][]int),
		rrState:     make(map[string]int),
	}
	for i, v := range p.vantages {
		p.byCountry[v.Country] = append(p.byCountry[v.Country], i)
		p.byContinent[v.Continent] = append(p.byContinent[v.Continent], i)
	}
	return p, nil
}

// Vantages returns the pool's servers.
func (p *Pool) Vantages() []Vantage { return p.vantages }

// Select returns the vantage a client from the given country is directed
// to. Selection follows the pool's geo DNS behaviour: same-country servers
// first, then same-continent, then the global pool, rotating round-robin
// within the chosen tier.
func (p *Pool) Select(clientCountry string) Vantage {
	if idxs, ok := p.byCountry[clientCountry]; ok && len(idxs) > 0 {
		return p.pick("c:"+clientCountry, idxs)
	}
	cont := ContinentOf(clientCountry)
	if idxs, ok := p.byContinent[cont]; ok && len(idxs) > 0 {
		return p.pick("k:"+cont, idxs)
	}
	all := make([]int, len(p.vantages))
	for i := range all {
		all[i] = i
	}
	return p.pick("g", all)
}

func (p *Pool) pick(key string, idxs []int) Vantage {
	cur := p.rrState[key]
	p.rrState[key] = (cur + 1) % len(idxs)
	return p.vantages[idxs[cur%len(idxs)]]
}

// VendorZone returns the pool zone a device kind's software would query
// (vendor zones per §2.3: android, ubuntu, centos, ...).
func VendorZone(kind simnet.DeviceKind) string {
	switch kind {
	case simnet.KindPhone:
		return "android.pool.ntp.org"
	case simnet.KindIoT:
		return "iot.pool.ntp.org"
	case simnet.KindServer:
		return "centos.pool.ntp.org"
	case simnet.KindCPE:
		return "openwrt.pool.ntp.org"
	default:
		return "pool.ntp.org"
	}
}

// RunStats summarizes a study replay.
type RunStats struct {
	Queries       uint64
	PerVantage    []uint64
	PerZone       map[string]uint64
	UniqueClients int
}

// Run replays the world's NTP client behaviour through the pool into the
// collector. An optional dayCollector receives only queries within
// [dayStart, dayStart+24h), reproducing the paper's single-day slice
// (1 July 2022) used by Figures 4b and 5.
func Run(w *simnet.World, p *Pool, c *collector.Collector,
	dayCollector *collector.Collector, dayStart time.Time) RunStats {

	stats := RunStats{
		PerVantage: make([]uint64, len(p.vantages)),
		PerZone:    make(map[string]uint64),
	}
	dayEnd := dayStart.Add(24 * time.Hour)
	w.GenerateQueries(func(q simnet.Query) {
		country := w.Geo.Country(q.Addr)
		v := p.Select(country)
		c.Observe(q.Addr, q.Time, v.ID)
		if dayCollector != nil && !q.Time.Before(dayStart) && q.Time.Before(dayEnd) {
			dayCollector.Observe(q.Addr, q.Time, v.ID)
		}
		stats.Queries++
		stats.PerVantage[v.ID]++
		stats.PerZone[VendorZone(q.Device.Kind)]++
	})
	stats.UniqueClients = c.NumAddrs()
	return stats
}
