package ntppool

import (
	"testing"
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/collector"
	"hitlist6/internal/simnet"
)

func TestStudyVantages(t *testing.T) {
	vs := StudyVantages()
	if len(vs) != 27 {
		t.Fatalf("got %d vantages, want 27 (paper §3)", len(vs))
	}
	counts := make(map[string]int)
	for i, v := range vs {
		if v.ID != i {
			t.Errorf("vantage %d has ID %d", i, v.ID)
		}
		counts[v.Country]++
	}
	if counts["US"] != 6 || counts["JP"] != 2 || counts["DE"] != 2 {
		t.Errorf("country mix: %v", counts)
	}
}

func TestNewRequiresVantages(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty pool should fail")
	}
}

func TestSelectPrefersSameCountry(t *testing.T) {
	p, err := New(StudyVantages())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if v := p.Select("US"); v.Country != "US" {
			t.Fatalf("US client directed to %s", v.Country)
		}
	}
	// India has a vantage: must stay in-country.
	if v := p.Select("IN"); v.Country != "IN" {
		t.Errorf("IN client directed to %s", v.Country)
	}
}

func TestSelectContinentFallback(t *testing.T) {
	p, err := New(StudyVantages())
	if err != nil {
		t.Fatal(err)
	}
	// China has no vantage; fall back to an Asian server.
	for i := 0; i < 10; i++ {
		v := p.Select("CN")
		if v.Continent != "AS" {
			t.Fatalf("CN client directed to %s (%s)", v.Country, v.Continent)
		}
	}
	// Unknown country: global tier, any server is acceptable.
	v := p.Select("ZZ")
	if v.ID < 0 || v.ID >= 27 {
		t.Errorf("global fallback returned bad vantage %+v", v)
	}
}

func TestSelectRoundRobinRotates(t *testing.T) {
	p, err := New(StudyVantages())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for i := 0; i < 12; i++ {
		seen[p.Select("US").ID] = true
	}
	if len(seen) != 6 {
		t.Errorf("round robin used %d of 6 US vantages", len(seen))
	}
}

func TestVendorZones(t *testing.T) {
	if VendorZone(simnet.KindPhone) != "android.pool.ntp.org" {
		t.Error("phones should use the android vendor zone")
	}
	if VendorZone(simnet.KindComputer) != "pool.ntp.org" {
		t.Error("computers should use the default zone")
	}
}

func TestRunCollectsQueries(t *testing.T) {
	cfg := simnet.DefaultConfig(21, 0.03)
	cfg.Days = 20
	w, err := simnet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(StudyVantages())
	if err != nil {
		t.Fatal(err)
	}
	c := collector.New()
	day := collector.New()
	dayStart := w.Origin.Add(10 * 24 * time.Hour)
	stats := Run(w, p, c, day, dayStart)

	if stats.Queries == 0 {
		t.Fatal("no queries replayed")
	}
	if c.NumAddrs() == 0 {
		t.Fatal("collector empty")
	}
	if day.NumAddrs() == 0 {
		t.Fatal("day collector empty")
	}
	if day.NumAddrs() >= c.NumAddrs() {
		t.Errorf("day slice (%d) should be smaller than full corpus (%d)",
			day.NumAddrs(), c.NumAddrs())
	}
	var used int
	for _, n := range stats.PerVantage {
		if n > 0 {
			used++
		}
	}
	if used < 10 {
		t.Errorf("only %d vantages saw traffic", used)
	}
	if stats.PerZone["android.pool.ntp.org"] == 0 {
		t.Error("no android-zone queries")
	}
	// The day collector must only contain sightings within the day.
	dayEnd := dayStart.Add(24 * time.Hour)
	day.Addrs(func(a addr.Addr, r collector.AddrRecord) bool {
		if r.First < dayStart.Unix() || r.Last >= dayEnd.Unix() {
			t.Errorf("day record for %s outside window: [%d, %d]", a, r.First, r.Last)
			return false
		}
		return true
	})
}
