package ntppool

import (
	"testing"
	"time"

	"hitlist6/internal/collector"
	"hitlist6/internal/ingest"
	"hitlist6/internal/simnet"
)

// TestRunIngestMatchesRun pins the rewiring contract: the sharded
// replay driver must produce the same corpus, the same day slice and
// the same producer-side statistics as the legacy single-goroutine Run,
// because vantage selection stays on one goroutine in replay order.
func TestRunIngestMatchesRun(t *testing.T) {
	cfg := simnet.DefaultConfig(29, 0.04)
	cfg.Days = 12
	dayStart := time.Date(2022, 1, 25, 0, 0, 0, 0, time.UTC).AddDate(0, 0, 6)

	build := func() (*simnet.World, *Pool) {
		w, err := simnet.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(StudyVantages())
		if err != nil {
			t.Fatal(err)
		}
		return w, p
	}

	w, p := build()
	legacy := collector.New()
	legacyDay := collector.New()
	legacyStats := Run(w, p, legacy, legacyDay, dayStart)
	legacyStats.UniqueClients = 0 // filled from different sources; compare separately

	w2, p2 := build()
	pcfg := ingest.DefaultConfig(4)
	pcfg.Stages = []ingest.StageFactory{
		ingest.DaySlice(dayStart.Unix(), dayStart.Add(24*time.Hour).Unix()),
	}
	pipe, err := ingest.New(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	stats := RunIngest(w2, p2, pipe)
	merged := pipe.Close()
	day := pipe.Stage("dayslice").(*ingest.DaySliceStage).Col

	if merged.Checksum() != legacy.Checksum() {
		t.Error("sharded corpus differs from legacy Run")
	}
	if day.Checksum() != legacyDay.Checksum() {
		t.Error("day slice differs from legacy Run")
	}
	if stats.Queries != legacyStats.Queries {
		t.Errorf("queries %d vs %d", stats.Queries, legacyStats.Queries)
	}
	for i := range stats.PerVantage {
		if stats.PerVantage[i] != legacyStats.PerVantage[i] {
			t.Errorf("vantage %d: %d vs %d", i, stats.PerVantage[i], legacyStats.PerVantage[i])
		}
	}
	for zone, n := range legacyStats.PerZone {
		if stats.PerZone[zone] != n {
			t.Errorf("zone %s: %d vs %d", zone, stats.PerZone[zone], n)
		}
	}
	if merged.NumAddrs() != legacy.NumAddrs() {
		t.Errorf("unique clients %d vs %d", merged.NumAddrs(), legacy.NumAddrs())
	}
}

// TestMaterializeEventsMatchesRun checks the materialized stream is the
// replay: folding it serially reproduces the legacy corpus.
func TestMaterializeEventsMatchesRun(t *testing.T) {
	cfg := simnet.DefaultConfig(31, 0.03)
	cfg.Days = 8
	w, err := simnet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := New(StudyVantages())
	if err != nil {
		t.Fatal(err)
	}
	legacy := collector.New()
	Run(w, p1, legacy, nil, time.Time{})

	w2, err := simnet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := New(StudyVantages())
	if err != nil {
		t.Fatal(err)
	}
	events := MaterializeEvents(w2, p2)
	folded := collector.New()
	for _, ev := range events {
		folded.ObserveUnix(ev.Addr, ev.Time, int(ev.Server))
	}
	if folded.Checksum() != legacy.Checksum() {
		t.Error("materialized stream does not reproduce the legacy corpus")
	}
}
