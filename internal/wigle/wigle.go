// Package wigle is the stand-in for public wardriving corpora (WiGLE,
// OpenWiFi, Apple/Google location APIs): a database of WiFi BSSIDs with
// geographic coordinates. The simulator populates it from the world's
// customer sites — each CPE (and occasionally an IoT device acting as an
// access point) exposes a wireless BSSID whose 24-bit suffix sits at a
// fixed vendor-specific offset from the device's wired MAC, which is the
// structural leak the Rye–Beverly geolocation technique (§5.3) exploits.
package wigle

import (
	"math/rand"
	"sort"

	"hitlist6/internal/addr"
	"hitlist6/internal/simnet"
)

// Location is a WGS-84 coordinate.
type Location struct {
	Lat, Lon float64
}

// DB is the BSSID geolocation database.
type DB struct {
	locs  map[addr.MAC]Location
	byOUI map[addr.OUI][]addr.MAC
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{
		locs:  make(map[addr.MAC]Location),
		byOUI: make(map[addr.OUI][]addr.MAC),
	}
}

// Add records a BSSID sighting.
func (db *DB) Add(bssid addr.MAC, loc Location) {
	if _, dup := db.locs[bssid]; !dup {
		db.byOUI[bssid.OUI()] = append(db.byOUI[bssid.OUI()], bssid)
	}
	db.locs[bssid] = loc
}

// Lookup returns the location of a BSSID.
func (db *DB) Lookup(bssid addr.MAC) (Location, bool) {
	l, ok := db.locs[bssid]
	return l, ok
}

// ByOUI returns every BSSID under an OUI, sorted for determinism.
func (db *DB) ByOUI(o addr.OUI) []addr.MAC {
	ms := db.byOUI[o]
	out := append([]addr.MAC(nil), ms...)
	sort.Slice(out, func(i, j int) bool { return out[i].NICSuffix() < out[j].NICSuffix() })
	return out
}

// Len returns the number of geolocated BSSIDs.
func (db *DB) Len() int { return len(db.locs) }

// VendorOffset is the deterministic wired-to-wireless MAC suffix offset a
// vendor uses within one OUI. Offsets are small and nonzero, matching the
// empirical structure (wired and wireless interfaces of one device get
// adjacent suffixes).
func VendorOffset(o addr.OUI) int32 {
	h := uint64(o[0])<<16 | uint64(o[1])<<8 | uint64(o[2])
	h = h*0x9e3779b97f4a7c15 + 0x1234
	off := int32(h>>40)%8 + 1 // 1..8
	if h&1 == 1 {
		off = -off
	}
	return off
}

// BuildConfig controls wardriving coverage.
type BuildConfig struct {
	// Coverage is the probability a given access point was ever
	// wardriven (WiGLE covers a lot of Europe, less elsewhere).
	Coverage float64
	// IoTAPShare is the probability an EUI-64 IoT device also appears as
	// an access point (e.g. speakers with setup APs).
	IoTAPShare float64
	// Noise adds this many unrelated BSSIDs per covered OUI, modelling
	// APs whose wired twin we never observe.
	Noise int
	// Seed drives the sampling.
	Seed int64
}

// DefaultBuildConfig mirrors plausible WiGLE coverage.
func DefaultBuildConfig(seed int64) BuildConfig {
	return BuildConfig{Coverage: 0.6, IoTAPShare: 0.25, Noise: 30, Seed: seed}
}

// countryCentroids maps ISO country codes to rough centroids. Unknown
// countries land in the ocean at (0, 0) offset per-site.
var countryCentroids = map[string]Location{
	"DE": {51.2, 10.4}, "US": {39.8, -98.6}, "IN": {22.9, 79.6},
	"CN": {35.0, 103.8}, "BR": {-10.8, -52.9}, "ID": {-2.2, 117.4},
	"MX": {23.9, -102.5}, "FR": {46.6, 2.4}, "LU": {49.8, 6.1},
	"JP": {36.6, 138.0}, "KR": {36.4, 127.8}, "GB": {54.1, -2.9},
	"NL": {52.2, 5.3}, "PL": {52.1, 19.4}, "ES": {40.2, -3.6},
	"SE": {62.8, 16.7}, "AU": {-25.7, 134.5}, "ZA": {-29.0, 25.1},
	"SG": {1.35, 103.8}, "TW": {23.8, 121.0}, "HK": {22.4, 114.1},
	"BG": {42.8, 25.2}, "BH": {26.0, 50.5},
}

// NearestCountry classifies a coordinate to the closest known country
// centroid (a crude reverse geocoder sufficient for country-level
// aggregation of geolocation results). Returns "??" for an empty table.
func NearestCountry(l Location) string {
	best, bestD := "??", 0.0
	first := true
	for cc, c := range countryCentroids {
		d := (l.Lat-c.Lat)*(l.Lat-c.Lat) + (l.Lon-c.Lon)*(l.Lon-c.Lon)
		if first || d < bestD || (d == bestD && cc < best) {
			best, bestD, first = cc, d, false
		}
	}
	return best
}

// SiteLocation derives a site's physical coordinate: its country centroid
// plus a deterministic per-site jitter of up to ~2 degrees.
func SiteLocation(s *simnet.Site) Location {
	c, ok := countryCentroids[s.Country()]
	if !ok {
		c = Location{0, 0}
	}
	u, v := s.JitterUV()
	return Location{
		Lat: c.Lat + (u-0.5)*4,
		Lon: c.Lon + (v-0.5)*4,
	}
}

// Build populates the wardriving database from the world: covered CPE and
// AP-acting IoT devices contribute a BSSID at the vendor offset from
// their wired MAC, located at their site; noise BSSIDs pad each covered
// OUI.
func Build(w *simnet.World, cfg BuildConfig) *DB {
	db := NewDB()
	rng := rand.New(rand.NewSource(cfg.Seed))
	coveredOUIs := make(map[addr.OUI]bool)

	consider := func(d *simnet.Device, site *simnet.Site, prob float64) {
		mac, ok := d.MAC()
		if !ok {
			return
		}
		if rng.Float64() >= prob {
			return
		}
		bssid := mac.AddOffset(VendorOffset(mac.OUI()))
		db.Add(bssid, SiteLocation(site))
		coveredOUIs[mac.OUI()] = true
	}

	for _, site := range w.Sites() {
		if cpe := site.CPE(); cpe != nil {
			consider(cpe, site, cfg.Coverage)
		}
		for _, d := range site.Devices() {
			if d.Kind == simnet.KindIoT {
				consider(d, site, cfg.Coverage*cfg.IoTAPShare)
			}
		}
	}

	// Noise: wardriven APs whose wired twin never queried our servers.
	for o := range coveredOUIs {
		for i := 0; i < cfg.Noise; i++ {
			var m addr.MAC
			m[0], m[1], m[2] = o[0], o[1], o[2]
			suffix := uint32(rng.Int63n(1 << 24))
			m = m.WithNICSuffix(suffix)
			if _, dup := db.Lookup(m); dup {
				continue
			}
			loc := Location{Lat: rng.Float64()*140 - 70, Lon: rng.Float64()*360 - 180}
			db.Add(m, loc)
		}
	}
	return db
}
