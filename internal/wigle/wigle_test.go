package wigle

import (
	"testing"

	"hitlist6/internal/addr"
	"hitlist6/internal/simnet"
)

func TestDBAddLookup(t *testing.T) {
	db := NewDB()
	m := addr.MAC{0xc8, 0x0e, 0x14, 1, 2, 3}
	loc := Location{Lat: 51.0, Lon: 10.0}
	db.Add(m, loc)
	got, ok := db.Lookup(m)
	if !ok || got != loc {
		t.Fatalf("lookup: %+v %v", got, ok)
	}
	if _, ok := db.Lookup(addr.MAC{1, 2, 3, 4, 5, 6}); ok {
		t.Error("phantom lookup")
	}
	if db.Len() != 1 {
		t.Errorf("len: %d", db.Len())
	}
	// Re-adding updates in place without duplicating the OUI index.
	db.Add(m, Location{Lat: 1, Lon: 1})
	if db.Len() != 1 || len(db.ByOUI(m.OUI())) != 1 {
		t.Error("duplicate OUI index entry")
	}
}

func TestByOUISorted(t *testing.T) {
	db := NewDB()
	o := addr.OUI{0x38, 0x10, 0xd5}
	for _, sfx := range []uint32{0x30, 0x10, 0x20} {
		m := addr.MAC{o[0], o[1], o[2]}.WithNICSuffix(sfx)
		db.Add(m, Location{})
	}
	ms := db.ByOUI(o)
	if len(ms) != 3 {
		t.Fatalf("len: %d", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].NICSuffix() < ms[i-1].NICSuffix() {
			t.Fatal("not sorted")
		}
	}
	if got := db.ByOUI(addr.OUI{9, 9, 9}); len(got) != 0 {
		t.Errorf("unknown OUI: %v", got)
	}
}

func TestSiteLocationDeterministicAndInCountry(t *testing.T) {
	cfg := simnet.DefaultConfig(5, 0.05)
	cfg.Days = 5
	w, err := simnet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range w.Sites()[:50] {
		l1 := SiteLocation(s)
		l2 := SiteLocation(s)
		if l1 != l2 {
			t.Fatal("site location not deterministic")
		}
		if c, ok := countryCentroids[s.Country()]; ok {
			if dLat := l1.Lat - c.Lat; dLat < -2.1 || dLat > 2.1 {
				t.Fatalf("lat jitter out of band: %v vs %v", l1, c)
			}
			if dLon := l1.Lon - c.Lon; dLon < -2.1 || dLon > 2.1 {
				t.Fatalf("lon jitter out of band: %v vs %v", l1, c)
			}
		}
	}
}

func TestBuildCoverage(t *testing.T) {
	cfg := simnet.DefaultConfig(6, 0.1)
	cfg.Days = 5
	w, err := simnet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full := Build(w, BuildConfig{Coverage: 1.0, IoTAPShare: 0, Noise: 0, Seed: 1})
	none := Build(w, BuildConfig{Coverage: 0.0, IoTAPShare: 0, Noise: 0, Seed: 1})
	if none.Len() != 0 {
		t.Errorf("zero coverage produced %d entries", none.Len())
	}
	// With full coverage, every CPE with a MAC must be represented via
	// its offset BSSID.
	want := 0
	for _, s := range w.Sites() {
		if cpe := s.CPE(); cpe != nil {
			if _, ok := cpe.MAC(); ok {
				want++
			}
		}
	}
	if want == 0 {
		t.Fatal("no CPE with MACs in world")
	}
	if full.Len() < want {
		t.Errorf("coverage 1.0: %d entries, want >= %d", full.Len(), want)
	}
	// Every CPE BSSID is findable at the vendor offset.
	for _, s := range w.Sites() {
		cpe := s.CPE()
		if cpe == nil {
			continue
		}
		m, ok := cpe.MAC()
		if !ok {
			continue
		}
		bssid := m.AddOffset(VendorOffset(m.OUI()))
		if _, ok := full.Lookup(bssid); !ok {
			t.Fatalf("CPE %s BSSID %s missing", m, bssid)
		}
	}
	// Noise inflates the database deterministically.
	noisy := Build(w, BuildConfig{Coverage: 1.0, IoTAPShare: 0, Noise: 10, Seed: 1})
	if noisy.Len() <= full.Len() {
		t.Error("noise did not add entries")
	}
	again := Build(w, BuildConfig{Coverage: 1.0, IoTAPShare: 0, Noise: 10, Seed: 1})
	if again.Len() != noisy.Len() {
		t.Error("build not deterministic")
	}
}
