package asdb

import (
	"math/rand"
	"testing"

	"hitlist6/internal/addr"
)

// BenchmarkTrieLookup measures longest-prefix matching against a table of
// 10k routes, the hot path of every per-address AS attribution.
func BenchmarkTrieLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := NewTrie[int]()
	for i := 0; i < 10_000; i++ {
		bits := 24 + rng.Intn(25) // /24../48
		p, err := addr.NewPrefix(addr.FromParts(rng.Uint64(), 0), bits)
		if err != nil {
			b.Fatal(err)
		}
		tr.Insert(p, i)
	}
	probes := make([]addr.Addr, 4096)
	for i := range probes {
		probes[i] = addr.FromParts(rng.Uint64(), rng.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(probes[i%len(probes)])
	}
}

// BenchmarkTrieInsert measures route installation.
func BenchmarkTrieInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	prefixes := make([]addr.Prefix, 4096)
	for i := range prefixes {
		p, err := addr.NewPrefix(addr.FromParts(rng.Uint64(), 0), 32+rng.Intn(17))
		if err != nil {
			b.Fatal(err)
		}
		prefixes[i] = p
	}
	b.ResetTimer()
	tr := NewTrie[int]()
	for i := 0; i < b.N; i++ {
		tr.Insert(prefixes[i%len(prefixes)], i)
	}
}
