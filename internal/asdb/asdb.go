package asdb

import (
	"fmt"
	"sort"

	"hitlist6/internal/addr"
)

// ASN is an Autonomous System Number.
type ASN uint32

// ASType is the coarse ASdb category the paper uses when comparing dataset
// composition (§4.1): it reports "Computer and Information Technology /
// Internet Service Provider (ISP)" as the top type everywhere and a 14%
// "Phone Provider" share in the NTP corpus vs 2% in the IPv6 Hitlist.
type ASType uint8

const (
	// TypeISP is a fixed-line Internet Service Provider.
	TypeISP ASType = iota
	// TypePhoneProvider is a mobile carrier ("Phone Provider" ISP subtype).
	TypePhoneProvider
	// TypeHosting is cloud/hosting/data-center.
	TypeHosting
	// TypeEducation is academic and research networks.
	TypeEducation
	// TypeEnterprise is corporate networks.
	TypeEnterprise
	// TypeBackbone is transit/backbone carriers.
	TypeBackbone
	// NumASTypes is the number of AS types.
	NumASTypes
)

// String names the type with ASdb-style labels.
func (t ASType) String() string {
	switch t {
	case TypeISP:
		return "Internet Service Provider (ISP)"
	case TypePhoneProvider:
		return "Phone Provider"
	case TypeHosting:
		return "Hosting and Cloud Provider"
	case TypeEducation:
		return "Education and Research"
	case TypeEnterprise:
		return "Enterprise"
	case TypeBackbone:
		return "Backbone Carrier"
	default:
		return "Unknown"
	}
}

// AS is one Autonomous System's metadata.
type AS struct {
	ASN     ASN
	Name    string
	Country string // ISO 3166-1 alpha-2
	Type    ASType
	// Prefixes are the routed prefixes originated by this AS.
	Prefixes []addr.Prefix
}

// DB is the AS database: metadata by ASN plus a longest-prefix-match table
// from routed prefixes to origin ASN.
type DB struct {
	byASN map[ASN]*AS
	table *Trie[ASN]
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{byASN: make(map[ASN]*AS), table: NewTrie[ASN]()}
}

// AddAS registers an AS. Re-registering an ASN is an error.
func (db *DB) AddAS(as AS) error {
	if _, dup := db.byASN[as.ASN]; dup {
		return fmt.Errorf("asdb: ASN %d already registered", as.ASN)
	}
	cp := as
	cp.Prefixes = append([]addr.Prefix(nil), as.Prefixes...)
	db.byASN[as.ASN] = &cp
	for _, p := range cp.Prefixes {
		db.table.Insert(p, as.ASN)
	}
	return nil
}

// Announce adds a routed prefix to an existing AS.
func (db *DB) Announce(asn ASN, p addr.Prefix) error {
	as, ok := db.byASN[asn]
	if !ok {
		return fmt.Errorf("asdb: unknown ASN %d", asn)
	}
	as.Prefixes = append(as.Prefixes, p)
	db.table.Insert(p, asn)
	return nil
}

// OriginASN returns the origin AS of an address via longest-prefix match.
func (db *DB) OriginASN(a addr.Addr) (ASN, bool) {
	return db.table.Lookup(a)
}

// Lookup returns the AS metadata for an address, or nil when unrouted.
func (db *DB) Lookup(a addr.Addr) *AS {
	asn, ok := db.table.Lookup(a)
	if !ok {
		return nil
	}
	return db.byASN[asn]
}

// Get returns the AS metadata for an ASN, or nil.
func (db *DB) Get(asn ASN) *AS { return db.byASN[asn] }

// NumASes returns the number of registered ASes.
func (db *DB) NumASes() int { return len(db.byASN) }

// ASNs returns all registered ASNs in ascending order.
func (db *DB) ASNs() []ASN {
	out := make([]ASN, 0, len(db.byASN))
	for asn := range db.byASN {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RoutedPrefixes returns every routed prefix with its origin, in trie
// order. CAIDA-style routed /48 probing iterates exactly this list.
func (db *DB) RoutedPrefixes() []RoutedPrefix {
	var out []RoutedPrefix
	db.table.Walk(func(p addr.Prefix, asn ASN) bool {
		out = append(out, RoutedPrefix{Prefix: p, Origin: asn})
		return true
	})
	return out
}

// RoutedPrefix pairs a routed prefix with its origin AS.
type RoutedPrefix struct {
	Prefix addr.Prefix
	Origin ASN
}
