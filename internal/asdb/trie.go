// Package asdb provides the Autonomous System database the paper's
// analyses depend on: prefix-to-ASN longest-prefix matching over a 128-bit
// binary radix trie, AS metadata (name, country, ASdb-style type
// classification), and per-AS aggregation helpers.
package asdb

import (
	"fmt"

	"hitlist6/internal/addr"
)

// trieNode is one node of a binary radix trie over address bits. A node
// may carry a value (a route) and two children.
type trieNode[V any] struct {
	child [2]*trieNode[V]
	val   V
	has   bool
}

// Trie is a longest-prefix-match table from IPv6 prefixes to values. The
// zero value is not usable; create with NewTrie.
type Trie[V any] struct {
	root *trieNode[V]
	n    int
}

// NewTrie returns an empty routing trie.
func NewTrie[V any]() *Trie[V] {
	return &Trie[V]{root: &trieNode[V]{}}
}

// Len returns the number of inserted prefixes.
func (t *Trie[V]) Len() int { return t.n }

func bitAt(a addr.Addr, i int) int {
	return int(a[i/8]>>(7-i%8)) & 1
}

// Insert adds or replaces the value for a prefix.
func (t *Trie[V]) Insert(p addr.Prefix, v V) {
	n := t.root
	a := p.Addr()
	for i := 0; i < p.Bits(); i++ {
		b := bitAt(a, i)
		if n.child[b] == nil {
			n.child[b] = &trieNode[V]{}
		}
		n = n.child[b]
	}
	if !n.has {
		t.n++
	}
	n.val, n.has = v, true
}

// Lookup returns the value of the longest prefix containing a, and whether
// any prefix matched.
func (t *Trie[V]) Lookup(a addr.Addr) (V, bool) {
	var best V
	found := false
	n := t.root
	if n.has {
		best, found = n.val, true
	}
	for i := 0; i < 128; i++ {
		n = n.child[bitAt(a, i)]
		if n == nil {
			break
		}
		if n.has {
			best, found = n.val, true
		}
	}
	return best, found
}

// LookupPrefix returns the value stored for exactly p, if present.
func (t *Trie[V]) LookupPrefix(p addr.Prefix) (V, bool) {
	n := t.root
	a := p.Addr()
	for i := 0; i < p.Bits(); i++ {
		n = n.child[bitAt(a, i)]
		if n == nil {
			var zero V
			return zero, false
		}
	}
	return n.val, n.has
}

// Walk visits every stored (prefix, value) pair in lexicographic bit
// order. The callback returning false stops the walk.
func (t *Trie[V]) Walk(fn func(p addr.Prefix, v V) bool) {
	var rec func(n *trieNode[V], a addr.Addr, depth int) bool
	rec = func(n *trieNode[V], a addr.Addr, depth int) bool {
		if n == nil {
			return true
		}
		if n.has {
			p, err := addr.NewPrefix(a, depth)
			if err != nil {
				panic(fmt.Sprintf("asdb: internal depth %d: %v", depth, err))
			}
			if !fn(p, n.val) {
				return false
			}
		}
		if depth == 128 {
			return true
		}
		if !rec(n.child[0], a, depth+1) {
			return false
		}
		b := a
		b[depth/8] |= 1 << (7 - depth%8)
		return rec(n.child[1], b, depth+1)
	}
	rec(t.root, addr.Addr{}, 0)
}
