package asdb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hitlist6/internal/addr"
)

func TestTrieLongestPrefixMatch(t *testing.T) {
	tr := NewTrie[string]()
	tr.Insert(addr.MustParsePrefix("2001:db8::/32"), "coarse")
	tr.Insert(addr.MustParsePrefix("2001:db8:1::/48"), "fine")
	tr.Insert(addr.MustParsePrefix("2001:db8:1:2::/64"), "finest")

	cases := []struct {
		a    string
		want string
		ok   bool
	}{
		{"2001:db8::1", "coarse", true},
		{"2001:db8:1::1", "fine", true},
		{"2001:db8:1:2::1", "finest", true},
		{"2001:db8:1:3::1", "fine", true},
		{"2001:db9::1", "", false},
		{"::1", "", false},
	}
	for _, c := range cases {
		got, ok := tr.Lookup(addr.MustParse(c.a))
		if ok != c.ok || got != c.want {
			t.Errorf("Lookup(%s): got %q/%v want %q/%v", c.a, got, ok, c.want, c.ok)
		}
	}
}

func TestTrieInsertReplace(t *testing.T) {
	tr := NewTrie[int]()
	p := addr.MustParsePrefix("2001:db8::/32")
	tr.Insert(p, 1)
	tr.Insert(p, 2)
	if tr.Len() != 1 {
		t.Errorf("Len after replace: got %d want 1", tr.Len())
	}
	if v, ok := tr.LookupPrefix(p); !ok || v != 2 {
		t.Errorf("LookupPrefix: got %d/%v", v, ok)
	}
}

func TestTrieLookupPrefixExact(t *testing.T) {
	tr := NewTrie[int]()
	tr.Insert(addr.MustParsePrefix("2001:db8::/32"), 7)
	if _, ok := tr.LookupPrefix(addr.MustParsePrefix("2001:db8::/33")); ok {
		t.Error("longer prefix should not match exactly")
	}
	if _, ok := tr.LookupPrefix(addr.MustParsePrefix("2001:db8::/31")); ok {
		t.Error("shorter prefix should not match exactly")
	}
}

func TestTrieDefaultRoute(t *testing.T) {
	tr := NewTrie[string]()
	tr.Insert(addr.MustParsePrefix("::/0"), "default")
	if got, ok := tr.Lookup(addr.MustParse("abcd::1")); !ok || got != "default" {
		t.Errorf("default route: got %q/%v", got, ok)
	}
}

func TestTrieWalkOrderAndCompleteness(t *testing.T) {
	tr := NewTrie[int]()
	prefixes := []string{
		"2001:db8::/32", "2001:db8:1::/48", "::/0", "fe80::/10", "2001:db8:1:2::/64",
	}
	for i, s := range prefixes {
		tr.Insert(addr.MustParsePrefix(s), i)
	}
	var seen []string
	tr.Walk(func(p addr.Prefix, v int) bool {
		seen = append(seen, p.String())
		return true
	})
	if len(seen) != len(prefixes) {
		t.Fatalf("walk visited %d, want %d: %v", len(seen), len(prefixes), seen)
	}
	if seen[0] != "::/0" {
		t.Errorf("walk should start at the shortest root prefix, got %v", seen)
	}
	// Early stop.
	count := 0
	tr.Walk(func(addr.Prefix, int) bool { count++; return count < 2 })
	if count != 2 {
		t.Errorf("early stop: visited %d want 2", count)
	}
}

func TestTrieRandomizedAgainstLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := NewTrie[int]()
	type route struct {
		p addr.Prefix
		v int
	}
	var routes []route
	for i := 0; i < 300; i++ {
		hi := rng.Uint64()
		bits := 8 + rng.Intn(57) // /8 .. /64
		p, err := addr.NewPrefix(addr.FromParts(hi, 0), bits)
		if err != nil {
			t.Fatal(err)
		}
		tr.Insert(p, i)
		routes = append(routes, route{p, i})
	}
	// Replace duplicates in the linear model the same way the trie does.
	model := make(map[addr.Prefix]int)
	for _, r := range routes {
		model[r.p] = r.v
	}
	lpm := func(a addr.Addr) (int, bool) {
		best, bestBits, found := 0, -1, false
		for p, v := range model {
			if p.Contains(a) && p.Bits() > bestBits {
				best, bestBits, found = v, p.Bits(), true
			}
		}
		return best, found
	}
	for i := 0; i < 2000; i++ {
		var a addr.Addr
		if i%2 == 0 {
			// Probe inside a random route for guaranteed hits.
			r := routes[rng.Intn(len(routes))]
			a = r.p.Addr().WithIID(addr.IID(rng.Uint64()))
		} else {
			a = addr.FromParts(rng.Uint64(), rng.Uint64())
		}
		wantV, wantOK := lpm(a)
		gotV, gotOK := tr.Lookup(a)
		if gotOK != wantOK || (wantOK && gotV != wantV) {
			t.Fatalf("Lookup(%s): got %d/%v want %d/%v", a, gotV, gotOK, wantV, wantOK)
		}
	}
}

func TestDBBasics(t *testing.T) {
	db := NewDB()
	err := db.AddAS(AS{
		ASN: 21928, Name: "T-Mobile", Country: "US", Type: TypePhoneProvider,
		Prefixes: []addr.Prefix{addr.MustParsePrefix("2607:fb90::/28")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddAS(AS{ASN: 21928}); err == nil {
		t.Error("duplicate ASN should error")
	}
	a := addr.MustParse("2607:fb90::1234")
	asn, ok := db.OriginASN(a)
	if !ok || asn != 21928 {
		t.Errorf("OriginASN: got %d/%v", asn, ok)
	}
	if as := db.Lookup(a); as == nil || as.Name != "T-Mobile" {
		t.Errorf("Lookup: got %+v", as)
	}
	if db.Lookup(addr.MustParse("2a00::1")) != nil {
		t.Error("unrouted address should return nil")
	}
	if db.NumASes() != 1 {
		t.Errorf("NumASes: got %d", db.NumASes())
	}
}

func TestDBAnnounce(t *testing.T) {
	db := NewDB()
	if err := db.Announce(64512, addr.MustParsePrefix("2001:db8::/32")); err == nil {
		t.Error("Announce for unknown ASN should error")
	}
	if err := db.AddAS(AS{ASN: 64512, Name: "Test"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Announce(64512, addr.MustParsePrefix("2001:db8::/32")); err != nil {
		t.Fatal(err)
	}
	if asn, ok := db.OriginASN(addr.MustParse("2001:db8::1")); !ok || asn != 64512 {
		t.Errorf("after Announce: got %d/%v", asn, ok)
	}
	if got := len(db.Get(64512).Prefixes); got != 1 {
		t.Errorf("prefix recorded: got %d", got)
	}
}

func TestDBASNsSorted(t *testing.T) {
	db := NewDB()
	for _, asn := range []ASN{300, 100, 200} {
		if err := db.AddAS(AS{ASN: asn}); err != nil {
			t.Fatal(err)
		}
	}
	got := db.ASNs()
	if len(got) != 3 || got[0] != 100 || got[1] != 200 || got[2] != 300 {
		t.Errorf("ASNs: got %v", got)
	}
}

func TestRoutedPrefixes(t *testing.T) {
	db := NewDB()
	if err := db.AddAS(AS{ASN: 1, Prefixes: []addr.Prefix{
		addr.MustParsePrefix("2001:db8::/32"),
		addr.MustParsePrefix("2400::/24"),
	}}); err != nil {
		t.Fatal(err)
	}
	rps := db.RoutedPrefixes()
	if len(rps) != 2 {
		t.Fatalf("got %d routed prefixes", len(rps))
	}
	for _, rp := range rps {
		if rp.Origin != 1 {
			t.Errorf("origin: got %d", rp.Origin)
		}
	}
}

func TestASTypeStrings(t *testing.T) {
	for ty := ASType(0); ty < NumASTypes; ty++ {
		if ty.String() == "Unknown" || ty.String() == "" {
			t.Errorf("type %d has no label", ty)
		}
	}
}

func TestTrieInsertLookupProperty(t *testing.T) {
	f := func(hi uint64, bitsRaw uint8) bool {
		bits := int(bitsRaw) % 65 // 0..64
		tr := NewTrie[uint64]()
		p, err := addr.NewPrefix(addr.FromParts(hi, 0), bits)
		if err != nil {
			return false
		}
		tr.Insert(p, hi)
		// The base address must match its own prefix.
		v, ok := tr.Lookup(p.Addr())
		return ok && v == hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
