// Package matrix executes workload scenarios through the real ingest
// pipeline across the determinism axes — shard count × queue kind ×
// seed, plus a checkpoint-mid-stream → restore split for durable
// profiles — and asserts the repo's standing invariant cell by cell:
// every cell of one (profile, seed) must produce the byte-identical
// canonical corpus checksum and the byte-identical scenario report.
//
// Alongside the assertions it measures the headline numbers the bench
// trajectory tracks per scenario (events/sec, B/addr, probe-run
// percentiles, drop counts). Those come from wall clocks and physical
// table layout, so they are reported, never asserted.
package matrix

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"time"

	"hitlist6/internal/asdb"
	"hitlist6/internal/collector"
	"hitlist6/internal/ingest"
	"hitlist6/internal/outage"
	"hitlist6/internal/workload"
)

// Options selects the matrix slice to run. Zero-value fields take the
// full-matrix defaults (all profiles, {1,4,16} shards, both queue
// kinds, seeds 1–3, workload.SizeSmall).
type Options struct {
	Profiles []string
	Shards   []int
	Queues   []string
	Seeds    []int64
	Size     workload.Size
	// SkipDurable disables the checkpoint/restore leg durable profiles
	// otherwise get.
	SkipDurable bool
	// SkipDrop disables the load-shedding leg drop-hinted profiles
	// otherwise get.
	SkipDrop bool
}

// Default returns the full matrix the nightly CI trigger and local
// `cmd/scenario run -all` execute.
func Default() Options {
	return Options{
		Profiles: workload.Names(),
		Shards:   []int{1, 4, 16},
		Queues:   []string{"chan", "spsc"},
		Seeds:    []int64{1, 2, 3},
		Size:     workload.SizeSmall,
	}
}

// Reduced returns the per-PR CI slice: every profile, the shard-count
// extremes, both queue kinds, two seeds.
func Reduced() Options {
	o := Default()
	o.Shards = []int{1, 16}
	o.Seeds = []int64{1, 2}
	return o
}

func (o *Options) fillDefaults() {
	d := Default()
	if len(o.Profiles) == 0 {
		o.Profiles = d.Profiles
	}
	if len(o.Shards) == 0 {
		o.Shards = d.Shards
	}
	if len(o.Queues) == 0 {
		o.Queues = d.Queues
	}
	if len(o.Seeds) == 0 {
		o.Seeds = d.Seeds
	}
	if o.Size == (workload.Size{}) {
		o.Size = d.Size
	}
}

// Cell is one executed matrix cell.
type Cell struct {
	Profile string `json:"profile"`
	Shards  int    `json:"shards"`
	Queue   string `json:"queue"`
	Seed    int64  `json:"seed"`
	// Mode is "stream" (straight run), "restore" (checkpoint-mid-stream
	// → restore → finish), or "drop" (DropOnFull load-shedding; excluded
	// from the determinism assertion by design).
	Mode string `json:"mode"`
	// Checksum is the canonical corpus checksum; ReportSum the SHA-256
	// of the rendered scenario report. Both must match across every
	// stream/restore cell of one (profile, seed).
	Checksum  string `json:"checksum"`
	ReportSum string `json:"report_sum"`

	Events       int     `json:"events"`
	Addrs        int     `json:"addrs"`
	EventsPerSec float64 `json:"events_per_sec"`
	BytesPerAddr float64 `json:"bytes_per_addr"`
	ProbeP99     int     `json:"probe_p99"`
	ProbeMax     int     `json:"probe_max"`
	Enqueued     uint64  `json:"enqueued"`
	Dropped      uint64  `json:"dropped,omitempty"`
	Detected     int     `json:"detected_outages"`
}

// Scenario is one profile's matrix outcome.
type Scenario struct {
	Profile     string   `json:"profile"`
	Description string   `json:"description"`
	Seeds       []int64  `json:"seeds"`
	Cells       []Cell   `json:"cells"`
	Headline    Headline `json:"headline"`
	// Report is the asserted scenario report of the first seed, for
	// humans diffing what a checksum mismatch means.
	Report string `json:"report,omitempty"`
}

// Headline is the per-scenario block the bench trajectory tracks. The
// throughput/probe numbers come from the designated cell (first seed,
// max shard count, chan queue); drops from that seed's drop cell.
type Headline struct {
	Events       int     `json:"events"`
	Addrs        int     `json:"addrs"`
	EventsPerSec float64 `json:"events_per_sec"`
	BytesPerAddr float64 `json:"bytes_per_addr"`
	ProbeP99     int     `json:"probe_p99"`
	ProbeMax     int     `json:"probe_max"`
	Dropped      uint64  `json:"dropped"`
	Detected     int     `json:"detected_outages"`
}

// Result is one matrix run.
type Result struct {
	Size      workload.Size `json:"size"`
	Scenarios []*Scenario   `json:"scenarios"`
	Cells     int           `json:"cells"`
}

// Run executes the selected matrix slice and asserts the determinism
// invariant across every cell. The first violated invariant aborts the
// run with an error naming the divergent cell.
func Run(opts Options) (*Result, error) {
	opts.fillDefaults()
	res := &Result{Size: opts.Size}
	for _, name := range opts.Profiles {
		p, ok := workload.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("matrix: unknown profile %q", name)
		}
		sc, err := runScenario(p, opts)
		if err != nil {
			return nil, err
		}
		res.Scenarios = append(res.Scenarios, sc)
		res.Cells += len(sc.Cells)
	}
	return res, nil
}

// runScenario runs every cell of one profile and cross-checks the
// (profile, seed) equivalence classes.
func runScenario(p *workload.Profile, opts Options) (*Scenario, error) {
	sc := &Scenario{Profile: p.Name, Description: p.Description, Seeds: opts.Seeds}
	maxShards := opts.Shards[0]
	for _, s := range opts.Shards {
		if s > maxShards {
			maxShards = s
		}
	}
	// Seed-distinctness guard: two seeds collapsing to one corpus means
	// a generator is ignoring its seed.
	bySeed := make(map[int64]string)

	for _, seed := range opts.Seeds {
		st, err := p.Stream(seed, opts.Size)
		if err != nil {
			return nil, fmt.Errorf("matrix: %s: %w", p.Name, err)
		}
		var want *cellOutcome
		record := func(c Cell, out *cellOutcome) {
			sc.Cells = append(sc.Cells, c)
			if c.Mode == "drop" {
				return
			}
			if want == nil {
				want = out
				bySeed[seed] = c.Checksum
				if seed == opts.Seeds[0] {
					sc.Report = string(out.report)
				}
				return
			}
		}
		check := func(c Cell, out *cellOutcome) error {
			if want == nil || c.Mode == "drop" {
				return nil
			}
			if c.Checksum != want.cell.Checksum {
				return fmt.Errorf("matrix: %s seed %d: cell %s diverged from %s: corpus checksum %s != %s",
					p.Name, seed, cellID(c), cellID(want.cell), c.Checksum, want.cell.Checksum)
			}
			if !bytes.Equal(out.report, want.report) {
				return fmt.Errorf("matrix: %s seed %d: cell %s diverged from %s: scenario reports differ:\n--- want\n%s\n--- got\n%s",
					p.Name, seed, cellID(c), cellID(want.cell), want.report, out.report)
			}
			return nil
		}

		for _, shards := range opts.Shards {
			for _, queue := range opts.Queues {
				out, err := runCell(p, st, shards, queue, "stream")
				if err != nil {
					return nil, err
				}
				if err := check(out.cell, out); err != nil {
					return nil, err
				}
				record(out.cell, out)
			}
		}
		if p.Durable && !opts.SkipDurable {
			for _, queue := range opts.Queues {
				out, err := runCell(p, st, maxShards, queue, "restore")
				if err != nil {
					return nil, err
				}
				if err := check(out.cell, out); err != nil {
					return nil, err
				}
				record(out.cell, out)
			}
		}
		if p.Tiered && !opts.SkipDurable {
			for _, queue := range opts.Queues {
				out, err := runCell(p, st, maxShards, queue, "delta-restore")
				if err != nil {
					return nil, err
				}
				if err := check(out.cell, out); err != nil {
					return nil, err
				}
				record(out.cell, out)
			}
		}
		if p.Hints.DropRun && !opts.SkipDrop {
			out, err := runCell(p, st, maxShards, "chan", "drop")
			if err != nil {
				return nil, err
			}
			record(out.cell, out)
		}
		if p.Tiered && want != nil {
			cells, err := tierLegs(st, want)
			if err != nil {
				return nil, err
			}
			sc.Cells = append(sc.Cells, cells...)
		}
	}

	seen := make(map[string]int64)
	seeds := make([]int64, 0, len(bySeed))
	for seed := range bySeed {
		seeds = append(seeds, seed)
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	for _, seed := range seeds {
		sum := bySeed[seed]
		if other, dup := seen[sum]; dup {
			return nil, fmt.Errorf("matrix: %s: seeds %d and %d produced the identical corpus %s — generator is ignoring its seed",
				p.Name, other, seed, sum)
		}
		seen[sum] = seed
	}

	sc.Headline = headline(sc, maxShards, opts.Seeds[0])
	return sc, nil
}

// headline picks the designated cell's numbers: first seed, max shard
// count, chan queue, stream mode — plus the drop cell's shed count.
func headline(sc *Scenario, maxShards int, firstSeed int64) Headline {
	var h Headline
	for _, c := range sc.Cells {
		if c.Seed == firstSeed && c.Shards == maxShards && c.Queue == "chan" && c.Mode == "stream" {
			h.Events = c.Events
			h.Addrs = c.Addrs
			h.EventsPerSec = c.EventsPerSec
			h.BytesPerAddr = c.BytesPerAddr
			h.ProbeP99 = c.ProbeP99
			h.ProbeMax = c.ProbeMax
			h.Detected = c.Detected
		}
		if c.Seed == firstSeed && c.Mode == "drop" {
			h.Dropped = c.Dropped
		}
	}
	return h
}

func cellID(c Cell) string {
	return fmt.Sprintf("%s/shards=%d/queue=%s/seed=%d/%s", c.Profile, c.Shards, c.Queue, c.Seed, c.Mode)
}

// cellOutcome carries one cell's full result between assertion and
// recording. col is the cell's final corpus, which the tier legs re-read
// through internal/pager.
type cellOutcome struct {
	cell   Cell
	report []byte
	col    *collector.Collector
}

// cellConfig builds the pipeline config for one cell.
func cellConfig(p *workload.Profile, st *workload.Stream, shards int, queue string, drop bool) ingest.Config {
	cfg := ingest.Config{
		Shards:     shards,
		ShardQueue: queue,
		BatchSize:  p.Hints.BatchSize,
		QueueDepth: p.Hints.QueueDepth,
		DropOnFull: drop,
		Stages:     stages(st),
	}
	return cfg
}

// stages builds the enrichment-stage set a scenario report covers.
// Synthetic streams without a routing DB skip the AS-resolving stages.
func stages(st *workload.Stream) []ingest.StageFactory {
	out := []ingest.StageFactory{
		ingest.Categories(),
		ingest.Cardinality(14),
	}
	if st.ASDB != nil {
		out = append(out,
			ingest.ASNs(st.ASDB),
			ingest.OutageSeries(st.ASDB, st.Origin, st.End, st.Bin),
		)
	}
	return out
}

// runCell executes one matrix cell through the real pipeline.
//
// All modes feed through Pipeline.Ingest on the calling goroutine: a
// single producer, which is what the spsc queue requires (the
// multi-producer chan legs live in the ingest package's own equivalence
// suite).
func runCell(p *workload.Profile, st *workload.Stream, shards int, queue, mode string) (*cellOutcome, error) {
	cell := Cell{
		Profile: p.Name, Shards: shards, Queue: queue, Seed: st.Seed,
		Mode: mode, Events: len(st.Events),
	}
	start := time.Now()

	var final *ingest.Pipeline
	switch mode {
	case "stream", "drop":
		pl, err := ingest.New(cellConfig(p, st, shards, queue, mode == "drop"))
		if err != nil {
			return nil, fmt.Errorf("matrix: %s: %w", cellID(cell), err)
		}
		pl.Ingest(st.Events)
		final = pl
	case "restore":
		pl, err := restoreCell(p, st, shards, queue)
		if err != nil {
			return nil, err
		}
		final = pl
	case "delta-restore":
		pl, err := deltaRestoreCell(p, st, shards, queue)
		if err != nil {
			return nil, err
		}
		final = pl
	default:
		return nil, fmt.Errorf("matrix: unknown cell mode %q", mode)
	}

	col := final.Close()
	elapsed := time.Since(start)
	m := final.Metrics()

	if mode == "drop" {
		// The accounting invariant load shedding must keep: every fed
		// event was either admitted or counted shed, and everything
		// admitted was folded. Which side of the line an event lands on is
		// timing-dependent — the counts' consistency is not.
		if m.Enqueued+m.Dropped != uint64(len(st.Events)) {
			return nil, fmt.Errorf("matrix: %s: enqueued %d + dropped %d != fed %d",
				cellID(cell), m.Enqueued, m.Dropped, len(st.Events))
		}
		if m.Processed != m.Enqueued {
			return nil, fmt.Errorf("matrix: %s: processed %d != enqueued %d",
				cellID(cell), m.Processed, m.Enqueued)
		}
	}

	sum := col.Checksum()
	cell.Checksum = hex.EncodeToString(sum[:])
	cell.Addrs = col.NumAddrs()
	if sec := elapsed.Seconds(); sec > 0 {
		cell.EventsPerSec = float64(len(st.Events)) / sec
	}
	if cell.Addrs > 0 {
		cell.BytesPerAddr = float64(col.MemoryFootprint()) / float64(cell.Addrs)
	}
	ps := col.AddrIndexStats()
	cell.ProbeP99, cell.ProbeMax = ps.P99Probe, ps.MaxProbe
	cell.Enqueued, cell.Dropped = m.Enqueued, m.Dropped

	report := renderReport(st, col, final, &cell)
	rs := sha256.Sum256(report)
	cell.ReportSum = hex.EncodeToString(rs[:])
	return &cellOutcome{cell: cell, report: report, col: col}, nil
}

// restoreCell is the durable leg: feed half the stream, checkpoint
// through the real Quiesce + snapshot protocol, restore the checkpoint
// into a fresh pipeline (corpus via Config.Seed, stages via SeedStage),
// feed the rest, and hand the second pipeline back for closing. Its
// result must be byte-identical to the straight run's.
func restoreCell(p *workload.Profile, st *workload.Stream, shards int, queue string) (*ingest.Pipeline, error) {
	cell := Cell{Profile: p.Name, Shards: shards, Queue: queue, Seed: st.Seed, Mode: "restore"}
	half := len(st.Events) / 2

	first, err := ingest.New(cellConfig(p, st, shards, queue, false))
	if err != nil {
		return nil, fmt.Errorf("matrix: %s: %w", cellID(cell), err)
	}
	first.Ingest(st.Events[:half])
	var ckpt bytes.Buffer
	bw := bufio.NewWriter(&ckpt)
	if err := first.Checkpoint(bw); err != nil {
		return nil, fmt.Errorf("matrix: %s: checkpoint: %w", cellID(cell), err)
	}
	// Close stops the first pipeline's workers and completes its merged
	// stages; no events flowed after the checkpoint, so the merged stage
	// state is exactly the checkpoint-time state. The corpus it returns
	// is discarded — the restore leg's corpus comes from the snapshot
	// bytes, the protocol a real crash recovery uses.
	first.Close()

	restored, err := collector.OpenSnapshot(bufio.NewReader(&ckpt))
	if err != nil {
		return nil, fmt.Errorf("matrix: %s: restore: %w", cellID(cell), err)
	}
	cfg := cellConfig(p, st, shards, queue, false)
	cfg.Seed = restored
	second, err := ingest.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("matrix: %s: %w", cellID(cell), err)
	}
	for _, name := range []string{"categories", "cardinality", "asns", "outage"} {
		stg := first.Stage(name)
		if stg == nil {
			continue
		}
		if err := second.SeedStage(name, stg); err != nil {
			return nil, fmt.Errorf("matrix: %s: %w", cellID(cell), err)
		}
	}
	second.Ingest(st.Events[half:])
	return second, nil
}

// renderReport writes the deterministic scenario report: everything in
// it is a pure function of the stream, so every cell of one (profile,
// seed) must render the identical bytes. Wall-clock numbers and layout
// stats stay out by construction.
func renderReport(st *workload.Stream, col *collector.Collector, pl *ingest.Pipeline, cell *Cell) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "scenario %s seed %d\n", st.Profile, st.Seed)
	fmt.Fprintf(&b, "window %s .. %s bin %s\n",
		st.Origin.UTC().Format(time.RFC3339), st.End.UTC().Format(time.RFC3339), st.Bin)
	fmt.Fprintf(&b, "events %d\n", len(st.Events))
	fmt.Fprintf(&b, "addrs %d iids %d observations %d\n",
		col.NumAddrs(), col.NumIIDs(), col.TotalObservations())
	fmt.Fprintf(&b, "corpus %s\n", cell.Checksum)

	if cat, ok := pl.Stage("categories").(*ingest.CategoryStage); ok && cat != nil {
		b.WriteString("categories")
		for i, n := range cat.Counts {
			fmt.Fprintf(&b, " %d=%d", i, n)
		}
		b.WriteByte('\n')
	}
	if hll, ok := pl.Stage("cardinality").(*ingest.HLLStage); ok && hll != nil {
		fmt.Fprintf(&b, "cardinality %.1f\n", hll.H.Estimate())
	}
	if asns, ok := pl.Stage("asns").(*ingest.ASNStage); ok && asns != nil {
		keys := make([]asdb.ASN, 0, len(asns.Counts))
		for asn := range asns.Counts {
			keys = append(keys, asn)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		b.WriteString("asns")
		for _, asn := range keys {
			fmt.Fprintf(&b, " AS%d=%d", asn, asns.Counts[asn])
		}
		b.WriteByte('\n')
	}
	if os, ok := pl.Stage("outage").(*ingest.OutageSeriesStage); ok && os != nil {
		series := os.Series()
		fmt.Fprintf(&b, "outage bins=%d complete=%d\n", series.Bins, series.Complete)
		keys := make([]asdb.ASN, 0, len(series.ByAS))
		for asn := range series.ByAS {
			keys = append(keys, asn)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, asn := range keys {
			total := 0
			for _, n := range series.ByAS[asn] {
				total += n
			}
			fmt.Fprintf(&b, "outage AS%d total=%d\n", asn, total)
		}
		events := outage.Detect(series, outage.DefaultConfig())
		cell.Detected = len(events)
		fmt.Fprintf(&b, "detected %d\n", len(events))
		for _, ev := range events {
			fmt.Fprintf(&b, "  %s\n", ev)
		}
	}
	return b.Bytes()
}
