// The tiered-corpus matrix legs (profiles marked workload.Profile
// .Tiered): the delta-restore cell runs the chain protocol's
// checkpoint-mid-stream split through the determinism assertion, and
// the tier legs re-read the asserted corpus through internal/pager —
// fully resident, budget-constrained, and all-cold — requiring the
// byte-identical canonical checksum from every residency mode plus the
// cold path's filter-skip bar.
package matrix

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"hitlist6/internal/addr"
	"hitlist6/internal/collector"
	"hitlist6/internal/ingest"
	"hitlist6/internal/pager"
	"hitlist6/internal/telemetry"
	"hitlist6/internal/workload"
)

// deltaRestoreCell is the chain-protocol leg: feed half the stream,
// write a full checkpoint, feed to three quarters, write a delta of the
// dirtied blocks, restore base+delta into a fresh pipeline (stages via
// SeedStage, exactly like restoreCell), and feed the rest. Its corpus
// and report must be byte-identical to the straight run's.
func deltaRestoreCell(p *workload.Profile, st *workload.Stream, shards int, queue string) (*ingest.Pipeline, error) {
	cell := Cell{Profile: p.Name, Shards: shards, Queue: queue, Seed: st.Seed, Mode: "delta-restore"}
	half := len(st.Events) / 2
	threeQ := half + len(st.Events)/4

	first, err := ingest.New(cellConfig(p, st, shards, queue, false))
	if err != nil {
		return nil, fmt.Errorf("matrix: %s: %w", cellID(cell), err)
	}
	first.Ingest(st.Events[:half])
	first.Quiesce()
	var base bytes.Buffer
	bw := bufio.NewWriter(&base)
	if err := first.Store().CheckpointFull(bw); err != nil {
		return nil, fmt.Errorf("matrix: %s: full checkpoint: %w", cellID(cell), err)
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}

	first.Ingest(st.Events[half:threeQ])
	first.Quiesce()
	var delta bytes.Buffer
	dw := bufio.NewWriter(&delta)
	if err := first.Store().CheckpointDelta(dw); err != nil {
		return nil, fmt.Errorf("matrix: %s: delta checkpoint: %w", cellID(cell), err)
	}
	if err := dw.Flush(); err != nil {
		return nil, err
	}
	// Close after the delta: the first pipeline's merged stage state is
	// exactly the restore point's, so SeedStage below hands the second
	// pipeline what a crash recovery would rebuild.
	first.Close()
	if delta.Len() == 0 {
		return nil, fmt.Errorf("matrix: %s: empty delta checkpoint", cellID(cell))
	}

	restored, err := collector.RestoreChain(bufio.NewReader(&base), bufio.NewReader(&delta))
	if err != nil {
		return nil, fmt.Errorf("matrix: %s: chain restore: %w", cellID(cell), err)
	}
	cfg := cellConfig(p, st, shards, queue, false)
	cfg.Seed = restored
	second, err := ingest.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("matrix: %s: %w", cellID(cell), err)
	}
	for _, name := range []string{"categories", "cardinality", "asns", "outage"} {
		stg := first.Stage(name)
		if stg == nil {
			continue
		}
		if err := second.SeedStage(name, stg); err != nil {
			return nil, fmt.Errorf("matrix: %s: %w", cellID(cell), err)
		}
	}
	second.Ingest(st.Events[threeQ:])
	return second, nil
}

// tierLegs writes the asserted cell's corpus as a tier file and re-reads
// it through internal/pager at three residency regimes. Each leg must
// reproduce the byte-identical canonical checksum — the on-disk walk is
// the same corpus, however little of it is in RAM — and the all-cold
// leg must additionally skip at least 90% of absent probes on its
// per-chunk filters without chunk I/O.
func tierLegs(st *workload.Stream, want *cellOutcome) ([]Cell, error) {
	col := want.col
	dir, err := os.MkdirTemp("", "matrix-tier-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "corpus.tier")
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := pager.WriteTier(col, bw); err == nil {
		err = bw.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("matrix: %s seed %d: write tier: %w", st.Profile, st.Seed, err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}

	wantSum := col.Checksum()
	legs := []struct {
		mode   string
		budget int64 // 0 = unlimited; 1 byte = LRU floor of one chunk
	}{
		{"tier-resident", 0},
		{"tier-budget", fi.Size() / 2},
		{"tier-cold", 1},
	}
	var cells []Cell
	for _, leg := range legs {
		met := pager.NewMetrics(telemetry.NewRegistry())
		tc, err := pager.Open(path, pager.Options{RAMBudget: leg.budget, Metrics: met})
		if err != nil {
			return nil, fmt.Errorf("matrix: %s seed %d: %s: %w", st.Profile, st.Seed, leg.mode, err)
		}
		sum, err := tc.Checksum()
		if err != nil {
			tc.Close()
			return nil, fmt.Errorf("matrix: %s seed %d: %s checksum: %w", st.Profile, st.Seed, leg.mode, err)
		}
		if sum != wantSum {
			tc.Close()
			return nil, fmt.Errorf("matrix: %s seed %d: %s corpus diverged from the asserted cell", st.Profile, st.Seed, leg.mode)
		}
		if tc.NumAddrs() != col.NumAddrs() || tc.TotalObservations() != col.TotalObservations() {
			tc.Close()
			return nil, fmt.Errorf("matrix: %s seed %d: %s counts diverged: %d/%d addrs, %d/%d observations",
				st.Profile, st.Seed, leg.mode, tc.NumAddrs(), col.NumAddrs(), tc.TotalObservations(), col.TotalObservations())
		}
		if leg.budget > 0 && tc.ResidentChunks() > 1 && tc.ResidentBytes() > leg.budget {
			tc.Close()
			return nil, fmt.Errorf("matrix: %s seed %d: %s resident %d bytes over the %d budget",
				st.Profile, st.Seed, leg.mode, tc.ResidentBytes(), leg.budget)
		}
		if leg.mode == "tier-cold" {
			if err := probeAbsent(tc, col, met); err != nil {
				tc.Close()
				return nil, fmt.Errorf("matrix: %s seed %d: %w", st.Profile, st.Seed, err)
			}
		}
		cells = append(cells, Cell{
			Profile: st.Profile, Queue: "-", Seed: st.Seed, Mode: leg.mode,
			Checksum: want.cell.Checksum, Events: len(st.Events), Addrs: tc.NumAddrs(),
		})
		tc.Close()
	}
	return cells, nil
}

// probeAbsent drives the cold corpus with absent keys manufactured to
// land inside chunk key fences (bit-perturbed present addresses, so the
// bloom filter is the only thing standing between a probe and a chunk
// load) and asserts the filter-skip bar: at least 90% of the probes
// resolve without I/O.
func probeAbsent(tc *pager.Corpus, col *collector.Collector, met *pager.Metrics) error {
	present := make([]addr.Addr, 0, 2048)
	col.AddrsCanonical(func(a addr.Addr, _ collector.AddrRecord) bool {
		present = append(present, a)
		return len(present) < cap(present)
	})
	probes0, skips0, loads0 := met.Probes.Value(), met.Skips.Value(), met.Loads.Value()
	probed := 0
	for _, a := range present {
		b := addr.FromParts(a.Hi(), a.Lo()^0x5a5a)
		if _, hit := col.Get(b); hit {
			continue
		}
		if _, ok, err := tc.Get(b); err != nil {
			return fmt.Errorf("tier-cold probe: %w", err)
		} else if ok {
			return fmt.Errorf("tier-cold probe: absent address %v found", b)
		}
		probed++
	}
	probes := met.Probes.Value() - probes0
	skips := met.Skips.Value() - skips0
	loads := met.Loads.Value() - loads0
	if probes != uint64(probed) {
		return fmt.Errorf("tier-cold probe accounting: %d probes counted for %d Gets", probes, probed)
	}
	if skips*10 < probes*9 {
		return fmt.Errorf("tier-cold filter skipped %d of %d absent probes; want >= 90%% (chunk loads: %d)",
			skips, probes, loads)
	}
	return nil
}
