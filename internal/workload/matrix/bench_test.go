package matrix

import (
	"testing"

	"hitlist6/internal/workload"
)

// BenchmarkScenario runs each profile's designated cell (4 shards,
// chan queue, seed 1) through the real pipeline and reports the
// per-scenario headline numbers cmd/benchjson tracks: events/sec
// through the cell, live bytes per address, the probe-run p99/max of
// the final index layout, and (for drop-hinted profiles) the events
// shed by the load-shedding cell. One row per profile keeps the
// trajectory readable per scenario instead of only in aggregate.
func BenchmarkScenario(b *testing.B) {
	for _, p := range workload.Profiles() {
		p := p
		b.Run("profile="+p.Name, func(b *testing.B) {
			st, err := p.Stream(1, workload.SizeSmall)
			if err != nil {
				b.Fatal(err)
			}
			mode := "stream"
			if p.Hints.DropRun {
				mode = "drop"
			}
			b.ResetTimer()
			var out *cellOutcome
			for i := 0; i < b.N; i++ {
				out, err = runCell(p, st, 4, "chan", mode)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(out.cell.EventsPerSec, "events/sec")
			b.ReportMetric(out.cell.BytesPerAddr, "B/addr")
			b.ReportMetric(float64(out.cell.ProbeP99), "probe_p99")
			b.ReportMetric(float64(out.cell.ProbeMax), "probe_max")
			if p.Hints.DropRun {
				b.ReportMetric(float64(out.cell.Dropped), "drops")
			}
		})
	}
}
