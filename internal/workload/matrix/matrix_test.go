package matrix

import (
	"strings"
	"testing"

	"hitlist6/internal/workload"
)

// testOptions is the in-repo slice of the matrix: every profile, both
// queue kinds, the shard-count extremes, two seeds. CI's
// scenario-matrix job runs the same slice through cmd/scenario with
// -race; the nightly trigger runs Default().
func testOptions() Options {
	o := Reduced()
	if testing.Short() {
		o.Shards = []int{1, 4}
		o.Seeds = []int64{1}
	}
	return o
}

// TestMatrixReduced is the tentpole assertion: the reduced matrix runs
// clean — every (profile, seed) produces byte-identical corpus
// checksums and scenario reports across shard counts, queue kinds, and
// the checkpoint/restore split.
func TestMatrixReduced(t *testing.T) {
	res, err := Run(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != len(workload.Names()) {
		t.Fatalf("ran %d scenarios, want %d", len(res.Scenarios), len(workload.Names()))
	}
	for _, sc := range res.Scenarios {
		if len(sc.Cells) == 0 {
			t.Errorf("%s: no cells executed", sc.Profile)
			continue
		}
		if sc.Headline.Events == 0 || sc.Headline.Addrs == 0 {
			t.Errorf("%s: empty headline: %+v", sc.Profile, sc.Headline)
		}
		if sc.Report == "" {
			t.Errorf("%s: no scenario report captured", sc.Profile)
		}
		modes := map[string]int{}
		for _, c := range sc.Cells {
			modes[c.Mode]++
			if c.Mode != "drop" && c.Checksum == "" {
				t.Errorf("%s: cell %s has no checksum", sc.Profile, cellID(c))
			}
		}
		p, _ := workload.Lookup(sc.Profile)
		if p.Durable && modes["restore"] == 0 {
			t.Errorf("%s: durable profile ran no restore cells", sc.Profile)
		}
		if p.Hints.DropRun && modes["drop"] == 0 {
			t.Errorf("%s: drop-hinted profile ran no drop cells", sc.Profile)
		}
		if p.Tiered {
			for _, m := range []string{"delta-restore", "tier-resident", "tier-budget", "tier-cold"} {
				if modes[m] == 0 {
					t.Errorf("%s: tiered profile ran no %s cells", sc.Profile, m)
				}
			}
		}
	}
}

// TestMatrixCollisionSkew pins the collision profile's reason to
// exist: its probe runs must dwarf the paper baseline's.
func TestMatrixCollisionSkew(t *testing.T) {
	opts := Options{
		Profiles:    []string{"paper", "collision"},
		Shards:      []int{4},
		Queues:      []string{"chan"},
		Seeds:       []int64{1},
		SkipDurable: true,
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	var paper, collision Headline
	for _, sc := range res.Scenarios {
		switch sc.Profile {
		case "paper":
			paper = sc.Headline
		case "collision":
			collision = sc.Headline
		}
	}
	if collision.ProbeMax <= 4*paper.ProbeMax {
		t.Errorf("collision ProbeMax %d not well above paper's %d", collision.ProbeMax, paper.ProbeMax)
	}
	if collision.ProbeP99 <= paper.ProbeP99 {
		t.Errorf("collision ProbeP99 %d not above paper's %d", collision.ProbeP99, paper.ProbeP99)
	}
}

// TestMatrixStormDetects pins the outage-storm scenario report: the
// engineered windows make exactly the ShouldTrip detections through
// the real pipeline's outage stage.
func TestMatrixStormDetects(t *testing.T) {
	opts := Options{
		Profiles: []string{"outage-storm"},
		Shards:   []int{4},
		Queues:   []string{"chan"},
		Seeds:    []int64{1},
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	sc := res.Scenarios[0]
	_, windows := workload.OutageStormSpec(1, opts.Size)
	want := 0
	for _, w := range windows {
		if w.ShouldTrip {
			want++
		}
	}
	if sc.Headline.Detected != want {
		t.Fatalf("detected %d outages, want %d\nreport:\n%s", sc.Headline.Detected, want, sc.Report)
	}
	if !strings.Contains(sc.Report, "detected") {
		t.Fatalf("report missing detection block:\n%s", sc.Report)
	}
}

// TestMatrixUnknownProfile exercises the error path.
func TestMatrixUnknownProfile(t *testing.T) {
	if _, err := Run(Options{Profiles: []string{"no-such"}}); err == nil {
		t.Fatal("unknown profile accepted")
	}
}
