// Package workload generates named, seeded scenario streams for the
// matrix harness: the adversarial and regime-shifted worlds the
// standing determinism invariant (same seed ⇒ byte-identical corpus and
// report at any shard/worker count) must survive, not just the one
// paper-shaped stream the benches replay.
//
// Every profile is a pure function of (seed, Size): no wall clock, no
// global state, no ordering dependence on anything but the seed. World-
// backed profiles delegate to simnet (itself deterministic in its
// seed); synthetic profiles (collision) derive every address and
// timestamp from seeded counters. That purity is what lets the matrix
// runner assert byte-identical results across shard counts, queue
// kinds, and checkpoint/restore splits — any divergence is a pipeline
// bug, never generator noise.
//
// The profile catalog (see Profiles) covers the regimes the ingest,
// durable-corpus and analysis layers were each built under pressure
// from:
//
//   - paper: today's default world, the baseline every other profile's
//     trajectory is read against.
//   - churn: privacy-address-heavy, fast IID turnover — unique-address
//     growth far outpaces sightings, stressing index growth paths.
//   - eui64-dense: EUI-64-saturated — the tracked-IID and span-slab
//     paths carry the corpus instead of sitting at the ~10% margins.
//   - outage-storm: bursty per-AS silence windows engineered around
//     outage.Detect's bin and run-length boundaries.
//   - collision: addresses engineered to share open-addressing home
//     slots and shard-hash residues — worst-case probe runs and
//     maximal shard skew.
//   - backpressure: arrival far above drain rate at tiny queue depths,
//     exercising both ShardQueue kinds and both admission policies.
package workload

import (
	"fmt"
	"time"

	"hitlist6/internal/asdb"
	"hitlist6/internal/ingest"
	"hitlist6/internal/simnet"
)

// NumVantages is the vantage-server spread stamped onto generated
// events, matching the paper's 27-server deployment.
const NumVantages = 27

// Size scales a scenario: the simnet site multiplier and study-window
// length for world-backed profiles, and the proportional event-count
// knob for synthetic ones. Profiles may clamp (outage-storm needs
// enough days to fit its engineered windows).
type Size struct {
	// Scale multiplies every AS's site count (and the synthetic
	// profiles' address counts proportionally).
	Scale float64
	// Days is the study window length.
	Days int
}

// SizeSmall is the CI/matrix default: big enough that every profile's
// structural pressure shows, small enough for race-enabled sweeps.
var SizeSmall = Size{Scale: 0.02, Days: 8}

// SizeDefault is the local-run default.
var SizeDefault = Size{Scale: 0.03, Days: 12}

func (s Size) validate() error {
	if s.Scale <= 0 {
		return fmt.Errorf("workload: Scale must be positive, got %g", s.Scale)
	}
	if s.Days <= 0 {
		return fmt.Errorf("workload: Days must be positive, got %d", s.Days)
	}
	return nil
}

// Stream is one generated scenario stream: the fully resolved events
// plus the window and routing metadata the matrix runner needs to bin
// outages and render the scenario report.
type Stream struct {
	Profile string
	Seed    int64
	Events  []ingest.Event
	// Origin/End bound the stream's window; the outage stage bins over
	// [Origin, End] in window mode.
	Origin, End time.Time
	// Bin is the scenario's outage bin width.
	Bin time.Duration
	// ASDB resolves events to origin ASes; nil for synthetic streams
	// whose addresses are deliberately unrouted.
	ASDB *asdb.DB
}

// RunHints tune the pipeline shape the matrix runner uses for a
// profile. Zero values select the pipeline defaults.
type RunHints struct {
	// BatchSize overrides ingest.Config.BatchSize.
	BatchSize int
	// QueueDepth overrides ingest.Config.QueueDepth.
	QueueDepth int
	// DropRun asks the matrix for an additional load-shedding cell
	// (DropOnFull admission) whose drop accounting is recorded as a
	// metric — never part of the determinism assertion, since which
	// events are shed is timing-dependent by design.
	DropRun bool
}

// Profile is one named scenario generator.
type Profile struct {
	Name        string
	Description string
	// Durable marks profiles whose matrix run also exercises the
	// checkpoint-mid-stream → restore → finish split.
	Durable bool
	// Tiered marks profiles whose matrix run additionally exercises the
	// larger-than-RAM corpus paths: a checkpoint-mid-stream →
	// delta-restore leg and the tier legs (the corpus re-read through
	// internal/pager fully resident, budget-constrained, and all-cold).
	Tiered bool
	Hints  RunHints

	generate func(seed int64, size Size) (*Stream, error)
}

// Stream generates the profile's deterministic event stream for the
// given seed and size.
func (p *Profile) Stream(seed int64, size Size) (*Stream, error) {
	if err := size.validate(); err != nil {
		return nil, err
	}
	st, err := p.generate(seed, size)
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %w", p.Name, err)
	}
	st.Profile = p.Name
	st.Seed = seed
	if len(st.Events) == 0 {
		return nil, fmt.Errorf("workload: %s: generated an empty stream (seed %d, %+v)", p.Name, seed, size)
	}
	return st, nil
}

// profiles is the ordered catalog; order is the order list/run/report
// present scenarios in.
var profiles = []*Profile{
	{
		Name: "paper",
		Description: "The default paper-shaped world at matrix size: the baseline " +
			"every other profile's checksum and trajectory is read against.",
		Durable:  true,
		generate: paperStream,
	},
	{
		Name: "churn",
		Description: "Privacy-address-heavy world with fast IID turnover and daily " +
			"prefix rotation: unique-address growth far outpaces repeat sightings, " +
			"stressing index growth and the singleton-IID promotion path.",
		Durable:  true,
		generate: churnStream,
	},
	{
		Name: "eui64-dense",
		Description: "EUI-64-saturated world (IoT-heavy client mixes, EUI-64 CPE, " +
			"extra MAC reuse): tracked IIDs and the shared span slab carry the " +
			"corpus instead of sitting at the margins.",
		Durable:  true,
		generate: eui64DenseStream,
	},
	{
		Name: "outage-storm",
		Description: "Bursty per-AS silence windows engineered around the outage " +
			"detector's boundaries: bin-aligned multi-bin outages that must trip " +
			"Detect, single-bin dips that must not, and windows ending exactly on " +
			"bin edges.",
		generate: outageStormStream,
	},
	{
		Name: "collision",
		Description: "Synthetic stream whose addresses share low hash bits: " +
			"worst-case open-addressing probe runs in the collector index and " +
			"maximal shard-hash skew (the cluster lands on one shard).",
		generate: collisionStream,
	},
	{
		Name: "cold-replay",
		Description: "Paper-shaped world replayed twice — a full pass, then a " +
			"re-observation pass over the same addresses in a second window: " +
			"re-sightings dominate, so delta checkpoints carry only dirtied " +
			"blocks and the tier legs re-read a mostly-multi-sighting corpus " +
			"resident, budget-constrained, and all-cold.",
		Durable:  true,
		Tiered:   true,
		generate: coldReplayStream,
	},
	{
		Name: "backpressure",
		Description: "Burst arrival far above drain rate at tiny queue depths: " +
			"block admission for the determinism leg, plus a load-shedding cell " +
			"whose drop accounting is recorded (fed = enqueued + dropped).",
		Hints:    RunHints{BatchSize: 16, QueueDepth: 1, DropRun: true},
		generate: backpressureStream,
	},
}

// Profiles returns the scenario catalog in presentation order. Callers
// must not mutate the returned profiles.
func Profiles() []*Profile {
	out := make([]*Profile, len(profiles))
	copy(out, profiles)
	return out
}

// Names returns the profile names in catalog order.
func Names() []string {
	out := make([]string, len(profiles))
	for i, p := range profiles {
		out[i] = p.Name
	}
	return out
}

// Lookup resolves a profile by name.
func Lookup(name string) (*Profile, bool) {
	for _, p := range profiles {
		if p.Name == name {
			return p, true
		}
	}
	return nil, false
}

// materialize builds the world and resolves its query stream into
// events, stamping the deterministic vantage spread.
func materialize(cfg simnet.Config, bin time.Duration) (*Stream, error) {
	w, err := simnet.Build(cfg)
	if err != nil {
		return nil, err
	}
	events := make([]ingest.Event, 0, 4096)
	i := 0
	w.GenerateQueries(func(q simnet.Query) {
		events = append(events, ingest.Event{
			Addr:   q.Addr,
			Time:   q.Time.Unix(),
			Server: int32(i % NumVantages),
		})
		i++
	})
	return &Stream{
		Events: events,
		Origin: w.Origin,
		End:    w.End,
		Bin:    bin,
		ASDB:   w.ASDB,
	}, nil
}

// paperStream is today's default world at matrix size.
func paperStream(seed int64, size Size) (*Stream, error) {
	cfg := simnet.DefaultConfig(seed, size.Scale)
	cfg.Days = size.Days
	return materialize(cfg, 6*time.Hour)
}
