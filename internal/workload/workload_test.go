package workload

import (
	"testing"
	"time"

	"hitlist6/internal/asdb"
	"hitlist6/internal/outage"
)

// TestCatalog pins the profile roster the matrix, CLI and bench report
// all enumerate: seven named profiles in a fixed presentation order.
func TestCatalog(t *testing.T) {
	want := []string{"paper", "churn", "eui64-dense", "outage-storm", "collision", "cold-replay", "backpressure"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("catalog has %d profiles, want %d: %v", len(got), len(want), got)
	}
	for i, name := range want {
		if got[i] != name {
			t.Fatalf("catalog[%d] = %q, want %q (full: %v)", i, got[i], name, got)
		}
		p, ok := Lookup(name)
		if !ok || p.Name != name {
			t.Fatalf("Lookup(%q) = %v, %v", name, p, ok)
		}
		if p.Description == "" {
			t.Errorf("%s: empty description", name)
		}
	}
	if _, ok := Lookup("no-such-profile"); ok {
		t.Fatal("Lookup accepted an unknown name")
	}
}

// TestStreamDeterminism is the generator half of the repo's standing
// invariant: the same (profile, seed, size) must yield the identical
// event stream twice, and a different seed must not.
func TestStreamDeterminism(t *testing.T) {
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			a, err := p.Stream(1, SizeSmall)
			if err != nil {
				t.Fatal(err)
			}
			b, err := p.Stream(1, SizeSmall)
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Events) == 0 {
				t.Fatal("empty stream")
			}
			if len(a.Events) != len(b.Events) {
				t.Fatalf("same seed, different lengths: %d vs %d", len(a.Events), len(b.Events))
			}
			for i := range a.Events {
				if a.Events[i] != b.Events[i] {
					t.Fatalf("same seed diverges at event %d: %+v vs %+v", i, a.Events[i], b.Events[i])
				}
			}
			if a.Profile != p.Name || a.Seed != 1 {
				t.Fatalf("stream not stamped: profile=%q seed=%d", a.Profile, a.Seed)
			}
			if !a.Origin.Before(a.End) || a.Bin <= 0 {
				t.Fatalf("bad window: origin=%v end=%v bin=%v", a.Origin, a.End, a.Bin)
			}

			c, err := p.Stream(2, SizeSmall)
			if err != nil {
				t.Fatal(err)
			}
			same := len(a.Events) == len(c.Events)
			if same {
				for i := range a.Events {
					if a.Events[i] != c.Events[i] {
						same = false
						break
					}
				}
			}
			if same {
				t.Fatal("seed 1 and seed 2 produced identical streams")
			}
		})
	}
}

// TestStreamValidation exercises the Size guardrails.
func TestStreamValidation(t *testing.T) {
	p, _ := Lookup("paper")
	if _, err := p.Stream(1, Size{Scale: 0, Days: 8}); err == nil {
		t.Fatal("zero scale accepted")
	}
	if _, err := p.Stream(1, Size{Scale: 0.02, Days: 0}); err == nil {
		t.Fatal("zero days accepted")
	}
}

// uniqueRatio is the unique-address share of a stream's sightings.
func uniqueRatio(st *Stream) float64 {
	uniq := make(map[[2]uint64]struct{}, len(st.Events))
	for _, e := range st.Events {
		uniq[[2]uint64{e.Addr.Hi(), e.Addr.Lo()}] = struct{}{}
	}
	return float64(len(uniq)) / float64(len(st.Events))
}

// TestChurnShape asserts the churn profile actually shifts the regime it
// claims to: unique-address growth well above the paper baseline.
func TestChurnShape(t *testing.T) {
	paper, _ := Lookup("paper")
	churn, _ := Lookup("churn")
	ps, err := paper.Stream(1, SizeSmall)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := churn.Stream(1, SizeSmall)
	if err != nil {
		t.Fatal(err)
	}
	pr, cr := uniqueRatio(ps), uniqueRatio(cs)
	if cr <= pr {
		t.Fatalf("churn unique ratio %.3f not above paper baseline %.3f", cr, pr)
	}
	if cr < 0.5 {
		t.Fatalf("churn unique ratio %.3f; want >= 0.5 (observed-once dominated)", cr)
	}
}

// TestColdReplayShape asserts the replay pass re-observes instead of
// growing the corpus: double the paper baseline's sightings over the
// identical unique-address population, in a doubled window.
func TestColdReplayShape(t *testing.T) {
	paper, _ := Lookup("paper")
	cold, _ := Lookup("cold-replay")
	ps, err := paper.Stream(1, SizeSmall)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := cold.Stream(1, SizeSmall)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Events) != 2*len(ps.Events) {
		t.Fatalf("cold-replay has %d events, want 2x paper's %d", len(cs.Events), len(ps.Events))
	}
	if got, want := uniqueRatio(cs), uniqueRatio(ps)/2; got != want {
		t.Fatalf("cold-replay unique ratio %.4f, want exactly half of paper's (%.4f): replay minted new addresses", got, want)
	}
	if half := ps.End.Sub(ps.Origin); cs.End.Sub(cs.Origin) != 2*half {
		t.Fatalf("cold-replay window %v, want 2x paper's %v", cs.End.Sub(cs.Origin), half)
	}
}

// TestEUI64DenseShape asserts the EUI-64 sighting share dwarfs the
// paper baseline's ~10%.
func TestEUI64DenseShape(t *testing.T) {
	p, _ := Lookup("eui64-dense")
	st, err := p.Stream(1, SizeSmall)
	if err != nil {
		t.Fatal(err)
	}
	eui := 0
	for _, e := range st.Events {
		if e.Addr.IID().IsEUI64() {
			eui++
		}
	}
	share := float64(eui) / float64(len(st.Events))
	if share < 0.5 {
		t.Fatalf("EUI-64 sighting share %.3f; want >= 0.5", share)
	}
}

// TestCollisionShape asserts the adversarial cluster holds the
// properties the profile is named for: a dominant address mass sharing
// the low collisionBits of Hash64 (one open-addressing home slot on
// tables up to 2^collisionBits slots, one shard at 4 and 16 shards).
func TestCollisionShape(t *testing.T) {
	p, _ := Lookup("collision")
	st, err := p.Stream(1, SizeSmall)
	if err != nil {
		t.Fatal(err)
	}
	const mask = 1<<collisionBits - 1
	residues := make(map[uint64]int)
	uniq := make(map[[2]uint64]struct{})
	for _, e := range st.Events {
		key := [2]uint64{e.Addr.Hi(), e.Addr.Lo()}
		if _, seen := uniq[key]; seen {
			continue
		}
		uniq[key] = struct{}{}
		residues[e.Addr.Hash64()&mask]++
	}
	var peak int
	for _, n := range residues {
		if n > peak {
			peak = n
		}
	}
	if frac := float64(peak) / float64(len(uniq)); frac < 0.7 {
		t.Fatalf("largest hash-residue cluster holds %.2f of addresses; want >= 0.7", frac)
	}
	if len(uniq) < 256 {
		t.Fatalf("only %d unique addresses; cluster too small to stress probing", len(uniq))
	}
}

// TestOutageStormGroundTruth runs the storm profile through the real
// detector shape (per-AS bin counts over the scenario window) and
// checks every engineered window against its declared outcome: the
// multi-bin blackouts trip outage.Detect, the single-bin and
// partially-dark windows do not, and no AS outside a ShouldTrip window
// fires at all.
func TestOutageStormGroundTruth(t *testing.T) {
	p, _ := Lookup("outage-storm")
	st, err := p.Stream(1, SizeSmall)
	if err != nil {
		t.Fatal(err)
	}
	_, windows := OutageStormSpec(1, SizeSmall)
	s := binSeries(t, st)
	events := outage.Detect(s, outage.DefaultConfig())

	tripAS := make(map[asdb.ASN]bool)
	for _, w := range windows {
		hit := false
		for _, ev := range events {
			if ev.ASN == w.ASN && ev.Overlaps(w.From, w.To) {
				hit = true
			}
		}
		if hit != w.ShouldTrip {
			t.Errorf("AS%d window %v–%v: detected=%v, want %v",
				w.ASN, w.From, w.To, hit, w.ShouldTrip)
		}
		if w.ShouldTrip {
			tripAS[w.ASN] = true
		}
		if w.EndsOnBinEdge {
			if rem := w.To.Sub(st.Origin) % st.Bin; rem != 0 {
				t.Errorf("AS%d window end %v not on a bin edge (offset %v)", w.ASN, w.To, rem)
			}
		}
	}
	for _, ev := range events {
		if !tripAS[ev.ASN] {
			t.Errorf("spurious detection outside engineered windows: %v", ev)
		}
	}
}

// binSeries reproduces outage.BuildSeries over a generated stream — the
// same binning the ingest pipeline's window-mode outage stage performs.
func binSeries(t *testing.T, st *Stream) *outage.Series {
	t.Helper()
	if st.ASDB == nil {
		t.Fatal("stream has no ASDB")
	}
	window := st.End.Sub(st.Origin)
	total := int(window/st.Bin) + 1
	s := &outage.Series{
		Origin:   st.Origin,
		Bin:      st.Bin,
		Bins:     total,
		Complete: int(window / st.Bin),
		ByAS:     make(map[asdb.ASN][]int),
	}
	for _, e := range st.Events {
		as := st.ASDB.Lookup(e.Addr)
		if as == nil {
			continue
		}
		idx := int(time.Unix(e.Time, 0).UTC().Sub(st.Origin) / st.Bin)
		if idx < 0 || idx >= total {
			continue
		}
		c := s.ByAS[as.ASN]
		if c == nil {
			c = make([]int, total)
			s.ByAS[as.ASN] = c
		}
		c[idx]++
	}
	return s
}
