package workload

import (
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/asdb"
	"hitlist6/internal/ingest"
	"hitlist6/internal/simnet"
)

// ---- churn ----

// churnStream builds a privacy-heavy world: almost every client runs
// RFC 4941 ephemeral IIDs regenerated every 2 hours, providers rotate
// delegations daily, and a sizable site fraction switches providers
// mid-study. The corpus this produces is dominated by observed-once
// addresses — unique-address growth far outpaces repeat sightings, so
// the collector's index growth and singleton-IID paths carry the load.
func churnStream(seed int64, size Size) (*Stream, error) {
	privacy := simnet.StrategyMix{}
	privacy[simnet.StratPrivacy] = 0.96
	privacy[simnet.StratStableRandom] = 0.03
	privacy[simnet.StratEUI64] = 0.01

	mobile := func(asn asdb.ASN, name, cc string, sites int) simnet.ASConfig {
		return simnet.ASConfig{
			ASN: asn, Name: name, Country: cc, Type: asdb.TypePhoneProvider,
			RoutedBits: 40, DelegationBits: 64,
			RotationInterval: 24 * time.Hour,
			Sites:            sites, DevicesPerSiteMin: 1, DevicesPerSiteMax: 1,
			ClientMix: privacy, CPEStrategy: simnet.StratStableRandom,
			FirewallProb: 0.3, Routers: 8, QueryRatePerDay: 4,
		}
	}
	residential := func(asn asdb.ASN, name, cc string, sites int) simnet.ASConfig {
		return simnet.ASConfig{
			ASN: asn, Name: name, Country: cc, Type: asdb.TypeISP,
			RoutedBits: 40, DelegationBits: 56,
			RotationInterval: 24 * time.Hour,
			Sites:            sites, DevicesPerSiteMin: 1, DevicesPerSiteMax: 4,
			ClientMix: privacy, CPEStrategy: simnet.StratStableRandom,
			FirewallProb: 0.4, Routers: 8, MobileFraction: 0.4,
			ProviderChurn: 0.15, QueryRatePerDay: 3,
		}
	}

	cfg := simnet.Config{
		Seed:  seed,
		Start: time.Date(2022, 1, 25, 0, 0, 0, 0, time.UTC),
		Days:  size.Days,
		Scale: size.Scale,
		ASes: []simnet.ASConfig{
			mobile(70101, "Churn Mobile A", "IN", 900),
			mobile(70102, "Churn Mobile B", "US", 700),
			mobile(70103, "Churn Mobile C", "CN", 600),
			residential(70104, "Churn ISP A", "US", 400),
			residential(70105, "Churn ISP B", "BR", 300),
			residential(70106, "Churn ISP C", "BR", 250),
		},
		SyntheticVendors: 20,
		IIDLifetime:      2 * time.Hour,
		RoamInterval:     4 * time.Hour,
	}
	return materialize(cfg, 6*time.Hour)
}

// ---- eui64-dense ----

// eui64DenseStream saturates the world with EUI-64 addressing: IoT-
// heavy client mixes, EUI-64 CPE fleets with a forced vendor, and
// extra MAC-reuse groups. Tracked IIDs and the shared span slab carry
// the corpus here instead of sitting at the paper's ~10% margins, and
// cross-AS MAC reuse keeps the tracking analyses honest under volume.
func eui64DenseStream(seed int64, size Size) (*Stream, error) {
	dense := simnet.StrategyMix{}
	dense[simnet.StratEUI64] = 0.80
	dense[simnet.StratPrivacy] = 0.10
	dense[simnet.StratStableRandom] = 0.06
	dense[simnet.StratDHCPCounter] = 0.04

	residential := func(asn asdb.ASN, name, cc string, sites int) simnet.ASConfig {
		return simnet.ASConfig{
			ASN: asn, Name: name, Country: cc, Type: asdb.TypeISP,
			RoutedBits: 40, DelegationBits: 56,
			RotationInterval: 7 * 24 * time.Hour,
			Sites:            sites, DevicesPerSiteMin: 2, DevicesPerSiteMax: 6,
			ClientMix: dense, CPEStrategy: simnet.StratEUI64, CPEVendor: "AVM GmbH",
			FirewallProb: 0.3, Routers: 8, QueryRatePerDay: 3,
		}
	}
	mobile := func(asn asdb.ASN, name, cc string, sites int) simnet.ASConfig {
		m := residential(asn, name, cc, sites)
		m.Type = asdb.TypePhoneProvider
		m.DelegationBits = 64
		m.DevicesPerSiteMin, m.DevicesPerSiteMax = 1, 1
		m.CPEStrategy = simnet.StratStableRandom
		m.CPEVendor = ""
		return m
	}

	cfg := simnet.Config{
		Seed:  seed,
		Start: time.Date(2022, 1, 25, 0, 0, 0, 0, time.UTC),
		Days:  size.Days,
		Scale: size.Scale,
		ASes: []simnet.ASConfig{
			residential(70201, "Dense ISP DE", "DE", 500),
			residential(70202, "Dense ISP FR", "FR", 400),
			residential(70203, "Dense ISP MX", "MX", 350),
			mobile(70204, "Dense Mobile IN", "IN", 600),
			mobile(70205, "Dense Mobile ID", "ID", 450),
		},
		SyntheticVendors: 40,
		MACReuseGroups:   6,
		MACReuseSize:     40,
		IIDLifetime:      24 * time.Hour,
		RoamInterval:     8 * time.Hour,
	}
	return materialize(cfg, 6*time.Hour)
}

// ---- outage-storm ----

// StormBin is the outage-storm scenario's detection bin width; the
// engineered windows below are sized and placed relative to it.
const StormBin = 6 * time.Hour

// StormWindow is one engineered outage window and its expected
// detection outcome, the ground truth the matrix report and the
// boundary tests assert against.
type StormWindow struct {
	ASN asdb.ASN
	// From/To bound the window (To lands exactly on a bin edge for the
	// boundary-material windows; see EndsOnBinEdge).
	From, To time.Time
	// ShouldTrip is whether outage.Detect at StormBin with default
	// thresholds (MinBins 2) must report an event overlapping the
	// window: multi-bin full-dark windows trip, a single dark bin or a
	// partially-dark trailing bin must not.
	ShouldTrip bool
	// EndsOnBinEdge marks windows whose end lands exactly on a StormBin
	// boundary — the Rebin/Tail edge cases.
	EndsOnBinEdge bool
}

// stormDays is the minimum study length the engineered windows need.
const stormDays = 8

// outageStormConfig builds the storm world and its ground truth. Query
// rates are high enough that every AS's per-bin median sits far above
// detection thresholds — the only dark bins are the engineered ones.
func outageStormConfig(seed int64, size Size) (simnet.Config, []StormWindow) {
	days := size.Days
	if days < stormDays {
		days = stormDays
	}
	start := time.Date(2022, 1, 25, 0, 0, 0, 0, time.UTC)
	stormAS := func(asn asdb.ASN, name string, outage simnet.OutageWindow) simnet.ASConfig {
		return simnet.ASConfig{
			ASN: asn, Name: name, Country: "US", Type: asdb.TypeISP,
			RoutedBits: 40, DelegationBits: 56,
			Sites: 400, DevicesPerSiteMin: 2, DevicesPerSiteMax: 4,
			ClientMix:    stormMix(),
			CPEStrategy:  simnet.StratStableRandom,
			FirewallProb: 0.2, Routers: 8,
			QueryRatePerDay: 40,
			Outages:         []simnet.OutageWindow{outage},
		}
	}
	window := func(asn asdb.ASN, startDay, hours int, trips, edge bool) StormWindow {
		from := start.AddDate(0, 0, startDay)
		return StormWindow{
			ASN: asn, From: from, To: from.Add(time.Duration(hours) * time.Hour),
			ShouldTrip: trips, EndsOnBinEdge: edge,
		}
	}
	cfg := simnet.Config{
		Seed:  seed,
		Start: start,
		Days:  days,
		Scale: size.Scale,
		ASes: []simnet.ASConfig{
			// A day-long, bin-aligned blackout: four full dark bins, the
			// unambiguous trip.
			stormAS(70301, "Storm Aligned", simnet.OutageWindow{StartDay: 2, Hours: 24}),
			// Exactly one bin dark: below MinBins, must NOT trip.
			stormAS(70302, "Storm Single Bin", simnet.OutageWindow{StartDay: 3, Hours: 6}),
			// Two dark bins ending exactly on a bin edge: trips, and the
			// end boundary is the Rebin/Tail edge case.
			stormAS(70303, "Storm Edge End", simnet.OutageWindow{StartDay: 4, Hours: 12}),
			// One full dark bin plus half of the next: the half-dark bin
			// keeps ~50% of its volume, so the dark run stays at one bin
			// and must NOT trip.
			stormAS(70304, "Storm Offset", simnet.OutageWindow{StartDay: 5, Hours: 9}),
			// Dark through the final study day: the dark run touches the
			// series tail, where Complete excludes the trailing partial
			// bin.
			stormAS(70305, "Storm Tail", simnet.OutageWindow{StartDay: days - 1, Hours: 24}),
			// A quiet control AS with no engineered outage.
			stormAS(70306, "Storm Control", simnet.OutageWindow{}),
		},
		SyntheticVendors: 10,
		IIDLifetime:      24 * time.Hour,
		RoamInterval:     8 * time.Hour,
	}
	// The zero OutageWindow on the control AS is a 0-hour no-op; drop it
	// so downAt never evaluates an empty span.
	cfg.ASes[5].Outages = nil

	windows := []StormWindow{
		window(70301, 2, 24, true, true),
		window(70302, 3, 6, false, true),
		window(70303, 4, 12, true, true),
		window(70304, 5, 9, false, false),
		window(70305, days-1, 24, true, true),
	}
	return cfg, windows
}

func stormMix() simnet.StrategyMix {
	var m simnet.StrategyMix
	m[simnet.StratPrivacy] = 0.5
	m[simnet.StratStableRandom] = 0.3
	m[simnet.StratEUI64] = 0.1
	m[simnet.StratDHCPCounter] = 0.1
	return m
}

// OutageStormSpec exposes the storm scenario's world config and ground
// truth for the boundary tests (internal/outage) and the matrix report.
func OutageStormSpec(seed int64, size Size) (simnet.Config, []StormWindow) {
	return outageStormConfig(seed, size)
}

func outageStormStream(seed int64, size Size) (*Stream, error) {
	cfg, _ := outageStormConfig(seed, size)
	return materialize(cfg, StormBin)
}

// ---- collision ----

// collisionBits is how many low bits of addr.Hash64 every cluster
// address shares. The collector's open-addressing tables index by
// Hash64 & (slots-1) and the pipeline shards by Hash64 % shards, so a
// shared 14-bit residue puts the whole cluster in one home slot for
// every table up to 2^14 slots (worst-case probe runs) and on one
// shard at 4 and 16 shards (maximal skew).
const collisionBits = 14

// splitmix advances the generator state and returns the next value:
// the seeded counter PRNG behind the synthetic profiles (deliberately
// not math/rand — the stream is part of the scenario's identity and
// must never drift with the standard library).
func splitmix(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// collisionStream fabricates the adversarial cluster: addresses mined
// (deterministically, by counter scan) to share the low collisionBits
// of their hash, plus a small uniform background population so the
// non-skewed shards are not empty. Timestamps walk the window at fixed
// stride; every address is sighted three times so records are not all
// singletons.
func collisionStream(seed int64, size Size) (*Stream, error) {
	cluster := int(50000 * size.Scale)
	if cluster < 256 {
		cluster = 256
	}
	background := cluster / 4

	state := uint64(seed) * 0x9e3779b97f4a7c15
	target := splitmix(&state) & (1<<collisionBits - 1)

	addrs := make([]addr.Addr, 0, cluster+background)
	// The cluster: scan a seeded counter, keep addresses whose hash
	// residue matches. ~2^collisionBits candidates per accept; the whole
	// mine is a few tens of millions of hashes at matrix size.
	base := uint64(0x2ade<<48) | (splitmix(&state) & 0xffff << 32)
	for c := uint64(0); len(addrs) < cluster; c++ {
		// 64 /48s so prefix-set paths see structure too.
		hi := base | (c&0x3f)<<16
		a := addr.FromParts(hi, splitmix(&state))
		if a.Hash64()&(1<<collisionBits-1) == target {
			addrs = append(addrs, a)
		}
	}
	// The background: uniform addresses, no residue constraint.
	for i := 0; i < background; i++ {
		hi := uint64(0x2bad<<48) | splitmix(&state)&0xffff_ffff
		addrs = append(addrs, addr.FromParts(hi, splitmix(&state)))
	}

	origin := time.Date(2022, 1, 25, 0, 0, 0, 0, time.UTC)
	end := origin.AddDate(0, 0, size.Days)
	window := end.Unix() - origin.Unix()

	const rounds = 3
	events := make([]ingest.Event, 0, len(addrs)*rounds)
	n := int64(len(addrs) * rounds)
	i := int64(0)
	for r := 0; r < rounds; r++ {
		for _, a := range addrs {
			events = append(events, ingest.Event{
				Addr:   a,
				Time:   origin.Unix() + i*window/n,
				Server: int32(i % NumVantages),
			})
			i++
		}
	}
	return &Stream{
		Events: events,
		Origin: origin,
		End:    end,
		Bin:    6 * time.Hour,
		// Deliberately nil: the cluster is unrouted, so the outage stage
		// sees an empty series — the scenario stresses storage, not
		// attribution.
		ASDB: nil,
	}, nil
}

// ---- cold-replay ----

// coldReplayStream doubles a paper-shaped world: the full query stream,
// then the same queries shifted into a second window of equal length
// (rotated across vantages so server attribution sees fresh spreads).
// The second pass adds no new addresses — every event is a re-sighting
// — which is exactly the regime the delta-chain checkpoints and the
// tiered corpus were built for: dirtied blocks stay a fraction of the
// corpus, and cold reads walk records that almost all carry multi-
// sighting state.
func coldReplayStream(seed int64, size Size) (*Stream, error) {
	cfg := simnet.DefaultConfig(seed, size.Scale)
	cfg.Days = size.Days
	st, err := materialize(cfg, 6*time.Hour)
	if err != nil {
		return nil, err
	}
	shift := st.End.Unix() - st.Origin.Unix()
	replay := make([]ingest.Event, len(st.Events))
	for i, ev := range st.Events {
		ev.Time += shift
		ev.Server = int32((int(ev.Server) + 13) % NumVantages)
		replay[i] = ev
	}
	st.Events = append(st.Events, replay...)
	st.End = st.End.Add(time.Duration(shift) * time.Second)
	return st, nil
}

// ---- backpressure ----

// backpressureStream is a dense paper-shaped world whose matrix cells
// run at tiny queue depths (see the profile's RunHints): replayed at
// line rate the producers outrun the drain, exercising blocking
// admission on the determinism leg and load shedding on the drop leg.
// The burstiness is in the replay, not the content — the stream itself
// stays deterministic so the blocking cells can assert byte-identical
// corpora.
func backpressureStream(seed int64, size Size) (*Stream, error) {
	cfg := simnet.DefaultConfig(seed, size.Scale)
	cfg.Days = size.Days
	for i := range cfg.ASes {
		// Double the per-device query rate: more events over the same
		// address population, so admission pressure comes from volume
		// rather than corpus growth.
		cfg.ASes[i].QueryRatePerDay *= 2
	}
	return materialize(cfg, 6*time.Hour)
}
