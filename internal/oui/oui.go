// Package oui implements the IEEE OUI (Organizationally Unique Identifier)
// registry used to resolve MAC addresses extracted from EUI-64 IIDs to
// device manufacturers (paper §5.1, Table 2).
//
// The embedded registry carries the manufacturers the paper reports in
// Table 2 with several real OUI assignments each, plus a deterministic
// synthetic fill so that simulations can draw vendor-realistic MACs. The
// paper's headline observation — that 73.9% of embedded MACs resolve to
// *no* registered manufacturer ("Unlisted"), led by the unregistered OUI
// F0:02:20 — is modeled explicitly: the registry knows a set of
// "phantom" OUIs that real devices use but the IEEE database does not list.
package oui

import (
	"fmt"
	"math/rand"
	"sort"

	"hitlist6/internal/addr"
)

// Unlisted is the vendor name returned for MACs whose OUI has no registry
// entry, matching the paper's terminology.
const Unlisted = "Unlisted"

// Registry maps OUIs to manufacturer names and can mint vendor-realistic
// MAC addresses for the simulator.
type Registry struct {
	vendors map[addr.OUI]string
	// byVendor lists OUIs per vendor, sorted for determinism.
	byVendor map[string][]addr.OUI
	// phantoms are OUIs in active use by devices yet absent from the
	// registry ("Unlisted" in Table 2); F0:02:20 is the paper's exemplar.
	phantoms []addr.OUI
}

// Vendor is one registered manufacturer with its assigned OUIs.
type Vendor struct {
	Name string
	OUIs []addr.OUI
}

// table2Vendors are the nine listed manufacturers from the paper's Table 2,
// with representative real IEEE assignments.
var table2Vendors = []Vendor{
	{"Amazon Technologies Inc.", ouis("0c47c9", "38f73d", "44650d", "6837e9", "747548", "a002dc", "f0272d", "fc65de")},
	{"Samsung Electronics Co.,Ltd", ouis("002399", "08d42b", "30cda7", "5c497d", "8425db", "a8f274", "c44202", "e8508b")},
	{"Sonos, Inc.", ouis("000e58", "347e5c", "5ca6e6", "949f3e", "b8e937")},
	{"vivo Mobile Communication Co., Ltd.", ouis("1c77f6", "503dc6", "7c6456", "a89675", "e0dcff")},
	{"Sunnovo International Limited", ouis("4cecef", "78d38d", "a4da22")},
	{"Hui Zhou Gaoshengda Technology Co.,LTD", ouis("088620", "1c967a", "40f14c", "88d7f6")},
	{"Huawei Technologies", ouis("00259e", "28fbae", "48435a", "781dba", "a4933f", "c85195", "f48e92")},
	{"Shenzhen Chuangwei-RGB Electronics", ouis("08e672", "3c0cdb", "d473c6")},
	{"Skyworth Digital Technology (Shenzhen) Co.,Ltd", ouis("14f65a", "88de7c", "cc2d83")},
	// AVM GmbH dominates the paper's geolocation result (80% of geolocated
	// EUI-64 addresses are Fritz!Box CPE).
	{"AVM GmbH", ouis("3810d5", "5c4979", "7cff4d", "c80e14", "e0286d")},
	// A few additional common vendors for simulation texture.
	{"Apple, Inc.", ouis("003ee1", "28e7cf", "68ab1e", "a860b6")},
	{"Intel Corporate", ouis("001b21", "3c5282", "a0a4c5")},
	{"TP-LINK Technologies Co.,Ltd", ouis("14cc20", "50c7bf", "c46e1f")},
	{"Xiaomi Communications Co Ltd", ouis("28e31f", "64b473", "f8a45f")},
	{"LG Electronics", ouis("001c62", "58a2b5", "cc2d8c")},
}

// defaultPhantoms are in-use but unregistered OUIs; F0:02:20 is the most
// frequent "Unlisted" OUI in the paper (52,218 distinct MACs).
var defaultPhantoms = ouis(
	"f00220", "a8aa20", "f00221", "f00222", "d0ff10", "e41022", "9cfff0",
	"b00bee", "c0ffe0", "dcca10", "f8b004", "085e55",
)

func ouis(hex ...string) []addr.OUI {
	out := make([]addr.OUI, len(hex))
	for i, h := range hex {
		if len(h) != 6 {
			panic(fmt.Sprintf("oui: bad literal %q", h))
		}
		for j := 0; j < 3; j++ {
			var b byte
			if _, err := fmt.Sscanf(h[2*j:2*j+2], "%02x", &b); err != nil {
				panic(err)
			}
			out[i][j] = b
		}
	}
	return out
}

// NewRegistry builds the embedded registry: Table 2 vendors plus
// syntheticVendors deterministic filler manufacturers (3 OUIs each).
func NewRegistry(syntheticVendors int) *Registry {
	r := &Registry{
		vendors:  make(map[addr.OUI]string),
		byVendor: make(map[string][]addr.OUI),
		phantoms: append([]addr.OUI(nil), defaultPhantoms...),
	}
	for _, v := range table2Vendors {
		r.add(v)
	}
	rng := rand.New(rand.NewSource(0x0111)) // fixed: the registry is a fixture
	for i := 0; i < syntheticVendors; i++ {
		v := Vendor{Name: fmt.Sprintf("Synthetic Devices %03d Corp.", i)}
		for j := 0; j < 3; j++ {
			o := randomOUI(rng)
			for r.vendors[o] != "" || r.isPhantom(o) {
				o = randomOUI(rng)
			}
			v.OUIs = append(v.OUIs, o)
		}
		r.add(v)
	}
	return r
}

func randomOUI(rng *rand.Rand) addr.OUI {
	var o addr.OUI
	o[0] = byte(rng.Intn(256)) &^ 0x03 // universal, unicast
	o[1] = byte(rng.Intn(256))
	o[2] = byte(rng.Intn(256))
	return o
}

func (r *Registry) add(v Vendor) {
	for _, o := range v.OUIs {
		r.vendors[o] = v.Name
	}
	r.byVendor[v.Name] = append(r.byVendor[v.Name], v.OUIs...)
	sort.Slice(r.byVendor[v.Name], func(i, j int) bool {
		a, b := r.byVendor[v.Name][i], r.byVendor[v.Name][j]
		return a[0] != b[0] && a[0] < b[0] || a[0] == b[0] && (a[1] < b[1] || a[1] == b[1] && a[2] < b[2])
	})
}

func (r *Registry) isPhantom(o addr.OUI) bool {
	for _, p := range r.phantoms {
		if p == o {
			return true
		}
	}
	return false
}

// Lookup resolves an OUI to its manufacturer, or Unlisted when the OUI has
// no registry entry (including phantom OUIs and locally administered
// addresses, which are never registered).
func (r *Registry) Lookup(o addr.OUI) string {
	if o[0]&0x02 != 0 { // locally administered: never in the registry
		return Unlisted
	}
	if name, ok := r.vendors[o]; ok {
		return name
	}
	return Unlisted
}

// LookupMAC resolves a MAC's vendor via its OUI.
func (r *Registry) LookupMAC(m addr.MAC) string { return r.Lookup(m.OUI()) }

// Vendors returns the registered vendor names, sorted.
func (r *Registry) Vendors() []string {
	out := make([]string, 0, len(r.byVendor))
	for name := range r.byVendor {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// VendorOUIs returns the OUIs assigned to a vendor (nil if unknown).
func (r *Registry) VendorOUIs(name string) []addr.OUI {
	return r.byVendor[name]
}

// Phantoms returns the in-use but unregistered OUIs.
func (r *Registry) Phantoms() []addr.OUI {
	return append([]addr.OUI(nil), r.phantoms...)
}

// MintMAC draws a vendor-realistic MAC: a uniformly random NIC suffix under
// one of the vendor's OUIs.
func (r *Registry) MintMAC(rng *rand.Rand, vendor string) (addr.MAC, error) {
	os := r.byVendor[vendor]
	if len(os) == 0 {
		return addr.MAC{}, fmt.Errorf("oui: unknown vendor %q", vendor)
	}
	o := os[rng.Intn(len(os))]
	return macUnder(rng, o), nil
}

// MintPhantomMAC draws a MAC under one of the unregistered phantom OUIs.
func (r *Registry) MintPhantomMAC(rng *rand.Rand) addr.MAC {
	o := r.phantoms[rng.Intn(len(r.phantoms))]
	return macUnder(rng, o)
}

func macUnder(rng *rand.Rand, o addr.OUI) addr.MAC {
	s := uint32(rng.Int63n(1 << 24))
	return addr.MAC{o[0], o[1], o[2], byte(s >> 16), byte(s >> 8), byte(s)}
}

// Table2VendorNames returns the nine listed manufacturers the paper's
// Table 2 reports, in paper order, for the experiment harness.
func Table2VendorNames() []string {
	names := make([]string, 0, 9)
	for _, v := range table2Vendors[:9] {
		names = append(names, v.Name)
	}
	return names
}
