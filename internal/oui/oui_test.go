package oui

import (
	"fmt"
	"math/rand"
	"testing"

	"hitlist6/internal/addr"
)

func TestLookupTable2Vendors(t *testing.T) {
	r := NewRegistry(10)
	cases := map[string]string{
		"0c:47:c9:01:02:03": "Amazon Technologies Inc.",
		"08:d4:2b:aa:bb:cc": "Samsung Electronics Co.,Ltd",
		"b8:e9:37:00:00:01": "Sonos, Inc.",
		"28:fb:ae:12:34:56": "Huawei Technologies",
		"c8:0e:14:99:88:77": "AVM GmbH",
	}
	for macStr, want := range cases {
		m := parseMAC(t, macStr)
		if got := r.LookupMAC(m); got != want {
			t.Errorf("LookupMAC(%s): got %q want %q", macStr, got, want)
		}
	}
}

func TestLookupUnlisted(t *testing.T) {
	r := NewRegistry(0)
	// The paper's exemplar unregistered OUI.
	m := parseMAC(t, "f0:02:20:12:34:56")
	if got := r.LookupMAC(m); got != Unlisted {
		t.Errorf("phantom OUI: got %q want %q", got, Unlisted)
	}
	// Locally administered MACs never resolve.
	local := parseMAC(t, "0a:47:c9:01:02:03")
	if got := r.LookupMAC(local); got != Unlisted {
		t.Errorf("local MAC: got %q want %q", got, Unlisted)
	}
}

func TestMintMAC(t *testing.T) {
	r := NewRegistry(5)
	rng := rand.New(rand.NewSource(1))
	for _, vendor := range r.Vendors() {
		m, err := r.MintMAC(rng, vendor)
		if err != nil {
			t.Fatalf("MintMAC(%q): %v", vendor, err)
		}
		if got := r.LookupMAC(m); got != vendor {
			t.Errorf("minted MAC %v resolves to %q, want %q", m, got, vendor)
		}
	}
	if _, err := r.MintMAC(rng, "No Such Vendor"); err == nil {
		t.Error("expected error for unknown vendor")
	}
}

func TestMintPhantomMAC(t *testing.T) {
	r := NewRegistry(0)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		m := r.MintPhantomMAC(rng)
		if got := r.LookupMAC(m); got != Unlisted {
			t.Fatalf("phantom MAC %v resolved to %q", m, got)
		}
		if m.IsLocal() || m.IsMulticast() {
			t.Fatalf("phantom MAC %v has local/multicast bits", m)
		}
	}
}

func TestSyntheticVendorsDisjoint(t *testing.T) {
	r := NewRegistry(50)
	seen := make(map[addr.OUI]string)
	for _, v := range r.Vendors() {
		for _, o := range r.VendorOUIs(v) {
			if prev, dup := seen[o]; dup {
				t.Fatalf("OUI %v assigned to both %q and %q", o, prev, v)
			}
			seen[o] = v
		}
	}
	for _, p := range r.Phantoms() {
		if v, dup := seen[p]; dup {
			t.Fatalf("phantom OUI %v also registered to %q", p, v)
		}
	}
}

func TestRegistryDeterministic(t *testing.T) {
	a, b := NewRegistry(20), NewRegistry(20)
	va, vb := a.Vendors(), b.Vendors()
	if len(va) != len(vb) {
		t.Fatalf("vendor counts differ: %d vs %d", len(va), len(vb))
	}
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("vendor %d differs: %q vs %q", i, va[i], vb[i])
		}
		oa, ob := a.VendorOUIs(va[i]), b.VendorOUIs(vb[i])
		if len(oa) != len(ob) {
			t.Fatalf("OUI counts differ for %q", va[i])
		}
		for j := range oa {
			if oa[j] != ob[j] {
				t.Fatalf("OUI %d differs for %q", j, va[i])
			}
		}
	}
}

func TestTable2VendorNames(t *testing.T) {
	names := Table2VendorNames()
	if len(names) != 9 {
		t.Fatalf("got %d names, want 9", len(names))
	}
	if names[0] != "Amazon Technologies Inc." {
		t.Errorf("first vendor: got %q", names[0])
	}
	r := NewRegistry(0)
	for _, n := range names {
		if len(r.VendorOUIs(n)) == 0 {
			t.Errorf("Table 2 vendor %q has no OUIs in the registry", n)
		}
	}
}

func parseMAC(t *testing.T, s string) addr.MAC {
	t.Helper()
	var m addr.MAC
	n, err := fmt.Sscanf(s, "%02x:%02x:%02x:%02x:%02x:%02x",
		&m[0], &m[1], &m[2], &m[3], &m[4], &m[5])
	if err != nil || n != 6 {
		t.Fatalf("bad MAC literal %q: %v", s, err)
	}
	return m
}
