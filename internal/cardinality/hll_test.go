package cardinality

import (
	"math"
	"math/rand"
	"testing"

	"hitlist6/internal/addr"
)

func TestNewHLLValidation(t *testing.T) {
	for _, p := range []uint8{0, 3, 17, 200} {
		if _, err := NewHLL(p); err == nil {
			t.Errorf("precision %d should fail", p)
		}
	}
	h, err := NewHLL(14)
	if err != nil {
		t.Fatal(err)
	}
	if h.SizeBytes() != 1<<14 {
		t.Errorf("size: %d", h.SizeBytes())
	}
}

func TestEstimateWithinErrorBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{100, 10_000, 500_000} {
		h, err := NewHLL(14)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			h.AddUint64(rng.Uint64())
		}
		est := h.Estimate()
		relErr := math.Abs(est-float64(n)) / float64(n)
		// Allow 5 standard errors (0.81% at precision 14).
		if relErr > 5*h.RelativeError() {
			t.Errorf("n=%d: estimate %.0f, rel err %.3f", n, est, relErr)
		}
	}
}

func TestEstimateDuplicatesIgnored(t *testing.T) {
	h, err := NewHLL(12)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100_000; i++ {
		h.AddUint64(uint64(i % 100)) // only 100 distinct
	}
	est := h.Estimate()
	if est < 80 || est > 120 {
		t.Errorf("duplicate-heavy estimate: %.1f want ~100", est)
	}
}

func TestEstimateEmpty(t *testing.T) {
	h, _ := NewHLL(10)
	if est := h.Estimate(); est != 0 {
		t.Errorf("empty estimate: %v", est)
	}
}

func TestAddAddr(t *testing.T) {
	h, _ := NewHLL(14)
	rng := rand.New(rand.NewSource(2))
	const n = 50_000
	for i := 0; i < n; i++ {
		h.AddAddr(addr.FromParts(rng.Uint64(), rng.Uint64()))
	}
	est := h.Estimate()
	relErr := math.Abs(est-n) / n
	if relErr > 5*h.RelativeError() {
		t.Errorf("addr estimate %.0f, rel err %.3f", est, relErr)
	}
	// Clustered addresses (same /64, distinct IIDs) must still count
	// distinctly — the hash must not collapse on shared hi bits.
	h2, _ := NewHLL(14)
	for i := 0; i < n; i++ {
		h2.AddAddr(addr.FromParts(0x20010db8_00000000, uint64(i)))
	}
	est2 := h2.Estimate()
	if math.Abs(est2-n)/n > 5*h2.RelativeError() {
		t.Errorf("clustered addr estimate %.0f", est2)
	}
}

func TestMergeEqualsUnion(t *testing.T) {
	a, _ := NewHLL(13)
	b, _ := NewHLL(13)
	u, _ := NewHLL(13)
	rng := rand.New(rand.NewSource(3))
	// Overlapping sets: 30k in a, 30k in b, 10k shared.
	shared := make([]uint64, 10_000)
	for i := range shared {
		shared[i] = rng.Uint64()
	}
	for i := 0; i < 20_000; i++ {
		v := rng.Uint64()
		a.AddUint64(v)
		u.AddUint64(v)
	}
	for i := 0; i < 20_000; i++ {
		v := rng.Uint64()
		b.AddUint64(v)
		u.AddUint64(v)
	}
	for _, v := range shared {
		a.AddUint64(v)
		b.AddUint64(v)
		u.AddUint64(v)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	// Merged estimate must match the union sketch exactly (register max
	// is associative), hence ~50k.
	if got, want := a.Estimate(), u.Estimate(); got != want {
		t.Errorf("merge estimate %.1f != union %.1f", got, want)
	}
	if rel := math.Abs(a.Estimate()-50_000) / 50_000; rel > 5*a.RelativeError() {
		t.Errorf("union estimate off: %.0f", a.Estimate())
	}
}

func TestMergePrecisionMismatch(t *testing.T) {
	a, _ := NewHLL(10)
	b, _ := NewHLL(12)
	if err := a.Merge(b); err == nil {
		t.Error("precision mismatch should fail")
	}
}

func BenchmarkHLLAdd(b *testing.B) {
	h, _ := NewHLL(14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.AddUint64(uint64(i))
	}
}

func BenchmarkHLLEstimate(b *testing.B) {
	h, _ := NewHLL(14)
	for i := 0; i < 1_000_000; i++ {
		h.AddUint64(uint64(i) * 0x9e3779b97f4a7c15)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Estimate()
	}
}
