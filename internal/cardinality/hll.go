// Package cardinality provides a HyperLogLog estimator for unique-address
// counting. The paper's corpus holds 7.9 *billion* unique addresses —
// counting them exactly requires the address set itself (hundreds of GB),
// while an HLL sketch answers within a couple of percent from a few
// kilobytes. The repository uses exact sets at simulation scale; this
// sketch is the piece a full-scale deployment needs, and the tests verify
// its error bounds against exact counts.
package cardinality

import (
	"fmt"
	"math"
	"math/bits"

	"hitlist6/internal/addr"
)

// HLL is a HyperLogLog sketch with 2^precision registers.
type HLL struct {
	precision uint8
	registers []uint8
}

// NewHLL creates a sketch. precision must be in [4, 16]; 14 gives a
// standard error of about 0.81% from 16 KiB.
func NewHLL(precision uint8) (*HLL, error) {
	if precision < 4 || precision > 16 {
		return nil, fmt.Errorf("cardinality: precision %d out of [4,16]", precision)
	}
	return &HLL{
		precision: precision,
		registers: make([]uint8, 1<<precision),
	}, nil
}

// mix is a 64-bit finalizer applied to raw items before bucketing.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// AddUint64 inserts a 64-bit item.
func (h *HLL) AddUint64(v uint64) {
	x := mix(v)
	idx := x >> (64 - h.precision)
	rest := x<<h.precision | 1<<(h.precision-1) // ensure termination
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > h.registers[idx] {
		h.registers[idx] = rank
	}
}

// AddAddr inserts an IPv6 address (both halves contribute via
// addr.Hash64).
func (h *HLL) AddAddr(a addr.Addr) {
	h.AddUint64(a.Hash64())
}

// Estimate returns the approximate number of distinct items inserted,
// with the standard small-range (linear counting) and large-range
// corrections.
func (h *HLL) Estimate() float64 {
	m := float64(len(h.registers))
	var sum float64
	zeros := 0
	for _, r := range h.registers {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := alphaFor(len(h.registers))
	est := alpha * m * m / sum
	// Small-range correction: linear counting.
	if est <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	// Large-range correction for 64-bit hash space is negligible below
	// ~2^57 items; omitted.
	return est
}

func alphaFor(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// Merge folds another sketch of the same precision into h, yielding the
// sketch of the union — how per-vantage counts combine into the study
// total without moving address sets around.
func (h *HLL) Merge(o *HLL) error {
	if h.precision != o.precision {
		return fmt.Errorf("cardinality: precision mismatch %d vs %d", h.precision, o.precision)
	}
	for i, r := range o.registers {
		if r > h.registers[i] {
			h.registers[i] = r
		}
	}
	return nil
}

// SizeBytes returns the sketch's memory footprint.
func (h *HLL) SizeBytes() int { return len(h.registers) }

// RelativeError returns the theoretical standard error (1.04/sqrt(m)).
func (h *HLL) RelativeError() float64 {
	return 1.04 / math.Sqrt(float64(len(h.registers)))
}
