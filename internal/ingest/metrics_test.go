package ingest

import (
	"testing"
	"time"
)

func TestRateWindowRecentRate(t *testing.T) {
	var w rateWindow
	t0 := time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)

	if _, ok := w.tick(t0, 0); ok {
		t.Error("single sample should not yield a rate")
	}
	rate, ok := w.tick(t0.Add(10*time.Second), 1000)
	if !ok || rate != 100 {
		t.Errorf("rate after 1000 events in 10s: %v (ok=%v), want 100", rate, ok)
	}

	// A long quiet stretch followed by a burst: the windowed rate must
	// reflect the recent burst, not the lifetime average.
	rate, ok = w.tick(t0.Add(20*time.Second), 1000)
	if !ok || rate != 50 {
		t.Errorf("idle decay rate: %v (ok=%v), want 50", rate, ok)
	}
	// Jump past the window: old samples pruned, rate spans retained ones.
	rate, ok = w.tick(t0.Add(200*time.Second), 901000)
	if !ok {
		t.Fatal("no rate after pruning")
	}
	// Oldest retained sample is the one at t0+20s (the two newest are
	// always kept): (901000-1000)/180s = 5000/s.
	if rate != 5000 {
		t.Errorf("post-burst rate %v, want 5000", rate)
	}
}

func TestRateWindowCounterRegression(t *testing.T) {
	var w rateWindow
	t0 := time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)
	w.tick(t0, 500)
	if _, ok := w.tick(t0.Add(time.Second), 400); ok {
		t.Error("regressing counter must not yield a rate")
	}
}

func TestRateWindowBounded(t *testing.T) {
	var w rateWindow
	t0 := time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10*maxRateSamples; i++ {
		// Sub-millisecond polling: everything stays inside the span, so
		// only the buffer cap limits growth.
		w.tick(t0.Add(time.Duration(i)*time.Millisecond), uint64(i))
	}
	if len(w.samples) > maxRateSamples {
		t.Errorf("sample buffer grew to %d (cap %d)", len(w.samples), maxRateSamples)
	}
}

func TestMetricsCorpusTelemetry(t *testing.T) {
	events := testEvents(t, 0.03, 8)
	p, err := New(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	p.Ingest(events)
	p.SnapshotNow()
	deadline := time.Now().Add(5 * time.Second)
	for p.Store().NumAddrs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("store never populated")
		}
		time.Sleep(time.Millisecond)
	}
	m := p.Metrics()
	if m.CorpusBytes == 0 {
		t.Error("CorpusBytes zero on populated store")
	}
	if m.BytesPerAddr <= 0 {
		t.Errorf("BytesPerAddr %v", m.BytesPerAddr)
	}
	// The flat layout should hold a small corpus well under 400 B/addr
	// even with slab-growth slack.
	if m.BytesPerAddr > 400 {
		t.Errorf("BytesPerAddr %.1f implausibly high for the flat layout", m.BytesPerAddr)
	}
	if m.RecentEventsPerSec < 0 {
		t.Errorf("RecentEventsPerSec %v", m.RecentEventsPerSec)
	}
	p.Close()
}
