package ingest

import (
	"testing"
	"time"
)

func TestMetricsCorpusTelemetry(t *testing.T) {
	events := testEvents(t, 0.03, 8)
	p, err := New(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	p.Ingest(events)
	p.SnapshotNow()
	deadline := time.Now().Add(5 * time.Second)
	for p.Store().NumAddrs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("store never populated")
		}
		time.Sleep(time.Millisecond)
	}
	m := p.Metrics()
	if m.CorpusBytes == 0 {
		t.Error("CorpusBytes zero on populated store")
	}
	if m.BytesPerAddr <= 0 {
		t.Errorf("BytesPerAddr %v", m.BytesPerAddr)
	}
	// The flat layout should hold a small corpus well under 400 B/addr
	// even with slab-growth slack.
	if m.BytesPerAddr > 400 {
		t.Errorf("BytesPerAddr %.1f implausibly high for the flat layout", m.BytesPerAddr)
	}
	if m.RecentEventsPerSec < 0 {
		t.Errorf("RecentEventsPerSec %v", m.RecentEventsPerSec)
	}
	p.Close()
}

// TestMetricsSingleSampleFallback pins the first-poll behaviour at the
// Metrics level: with only one window sample there is no recent
// interval yet, so RecentEventsPerSec must fall back to the lifetime
// average rather than reporting zero on a busy pipeline.
func TestMetricsSingleSampleFallback(t *testing.T) {
	p, err := New(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Ingest(testEvents(t, 0.02, 4))
	p.Quiesce() // fence: every enqueued event is folded before the poll
	m := p.Metrics()
	if m.EventsPerSec <= 0 {
		t.Fatalf("lifetime rate %v after ingesting events", m.EventsPerSec)
	}
	if m.RecentEventsPerSec != m.EventsPerSec {
		t.Errorf("first poll: recent %v != lifetime %v",
			m.RecentEventsPerSec, m.EventsPerSec)
	}
}
