package ingest

import (
	"math"
	"testing"
	"time"
)

func TestRateWindowRecentRate(t *testing.T) {
	var w rateWindow
	t0 := time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)

	if _, ok := w.tick(t0, 0); ok {
		t.Error("single sample should not yield a rate")
	}
	rate, ok := w.tick(t0.Add(10*time.Second), 1000)
	if !ok || rate != 100 {
		t.Errorf("rate after 1000 events in 10s: %v (ok=%v), want 100", rate, ok)
	}

	// A long quiet stretch followed by a burst: the windowed rate must
	// reflect the recent burst, not the lifetime average.
	rate, ok = w.tick(t0.Add(20*time.Second), 1000)
	if !ok || rate != 50 {
		t.Errorf("idle decay rate: %v (ok=%v), want 50", rate, ok)
	}
	// Jump past the window: old samples pruned, rate spans retained ones.
	rate, ok = w.tick(t0.Add(200*time.Second), 901000)
	if !ok {
		t.Fatal("no rate after pruning")
	}
	// Oldest retained sample is the one at t0+20s (the two newest are
	// always kept): (901000-1000)/180s = 5000/s.
	if rate != 5000 {
		t.Errorf("post-burst rate %v, want 5000", rate)
	}
}

func TestRateWindowCounterRegression(t *testing.T) {
	var w rateWindow
	t0 := time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)
	w.tick(t0, 500)
	if _, ok := w.tick(t0.Add(time.Second), 400); ok {
		t.Error("regressing counter must not yield a rate")
	}
}

func TestRateWindowBounded(t *testing.T) {
	var w rateWindow
	t0 := time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10*maxRateSamples; i++ {
		// Sub-millisecond polling: everything stays inside the span, so
		// only the buffer cap limits growth.
		w.tick(t0.Add(time.Duration(i)*time.Millisecond), uint64(i))
	}
	if len(w.samples) > maxRateSamples {
		t.Errorf("sample buffer grew to %d (cap %d)", len(w.samples), maxRateSamples)
	}
}

func TestMetricsCorpusTelemetry(t *testing.T) {
	events := testEvents(t, 0.03, 8)
	p, err := New(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	p.Ingest(events)
	p.SnapshotNow()
	deadline := time.Now().Add(5 * time.Second)
	for p.Store().NumAddrs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("store never populated")
		}
		time.Sleep(time.Millisecond)
	}
	m := p.Metrics()
	if m.CorpusBytes == 0 {
		t.Error("CorpusBytes zero on populated store")
	}
	if m.BytesPerAddr <= 0 {
		t.Errorf("BytesPerAddr %v", m.BytesPerAddr)
	}
	// The flat layout should hold a small corpus well under 400 B/addr
	// even with slab-growth slack.
	if m.BytesPerAddr > 400 {
		t.Errorf("BytesPerAddr %.1f implausibly high for the flat layout", m.BytesPerAddr)
	}
	if m.RecentEventsPerSec < 0 {
		t.Errorf("RecentEventsPerSec %v", m.RecentEventsPerSec)
	}
	p.Close()
}

// TestRateWindowRecoversAfterRegression pins the restore-then-poll
// sequence: a daemon that restarts from a checkpoint hands the window a
// counter far below the pre-crash samples a stats poller recorded. The
// regressing tick must yield no rate (not a huge negative or wrapped
// one), and the very next monotonic tick must produce a sane rate again.
func TestRateWindowRecoversAfterRegression(t *testing.T) {
	var w rateWindow
	t0 := time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)
	w.tick(t0, 500_000)
	if _, ok := w.tick(t0.Add(time.Second), 100); ok {
		t.Fatal("regressed counter yielded a rate")
	}
	// Counting resumed: the oldest retained sample is still the
	// pre-crash 500k, so rates stay suppressed...
	if _, ok := w.tick(t0.Add(2*time.Second), 300); ok {
		t.Error("rate against a pre-crash baseline sample")
	}
	// ...until the window prunes it, after which the post-restore
	// samples alone define the rate.
	rate, ok := w.tick(t0.Add(2*time.Second+rateWindowSpan), 400)
	if !ok {
		t.Fatal("window never recovered after a counter regression")
	}
	// Every pre-crash-era sample aged out except the newest two; the
	// oldest retained is the post-restore (t0+2s, 300), so the rate is
	// (400-300)/span — derived purely from post-restore counting.
	want := 100 / rateWindowSpan.Seconds()
	if rate != want {
		t.Errorf("post-recovery rate %v, want %v", rate, want)
	}
}

// TestRateWindowPathologicalPolling hammers the window far past
// maxRateSamples with sub-window polling and checks the derived rate
// stays exact: the buffer cap must shorten the window, never corrupt
// the rate. One event per 10ms is 100/sec whatever suffix of samples
// survives the cap.
func TestRateWindowPathologicalPolling(t *testing.T) {
	var w rateWindow
	t0 := time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 4*maxRateSamples; i++ {
		rate, ok := w.tick(t0.Add(time.Duration(i)*10*time.Millisecond), uint64(i))
		if i == 0 {
			continue
		}
		if !ok || math.Abs(rate-100) > 1e-6 {
			t.Fatalf("tick %d: rate %v (ok=%v), want 100", i, rate, ok)
		}
		if len(w.samples) > maxRateSamples {
			t.Fatalf("tick %d: buffer %d over cap %d", i, len(w.samples), maxRateSamples)
		}
	}
}

// TestMetricsSingleSampleFallback pins the first-poll behaviour at the
// Metrics level: with only one window sample there is no recent
// interval yet, so RecentEventsPerSec must fall back to the lifetime
// average rather than reporting zero on a busy pipeline.
func TestMetricsSingleSampleFallback(t *testing.T) {
	p, err := New(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Ingest(testEvents(t, 0.02, 4))
	p.Quiesce() // fence: every enqueued event is folded before the poll
	m := p.Metrics()
	if m.EventsPerSec <= 0 {
		t.Fatalf("lifetime rate %v after ingesting events", m.EventsPerSec)
	}
	if m.RecentEventsPerSec != m.EventsPerSec {
		t.Errorf("first poll: recent %v != lifetime %v",
			m.RecentEventsPerSec, m.EventsPerSec)
	}
}
