package ingest

import (
	"reflect"
	"testing"
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/asdb"
)

// stageRoutes builds a two-AS routing table for stage unit tests.
func stageRoutes(t *testing.T) *asdb.DB {
	t.Helper()
	db := asdb.NewDB()
	for _, as := range []struct {
		asn    asdb.ASN
		prefix string
	}{
		{asn: 100, prefix: "2001:db8::"},
		{asn: 200, prefix: "2001:db9::"},
	} {
		p, err := addr.NewPrefix(addr.MustParse(as.prefix), 32)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.AddAS(asdb.AS{ASN: as.asn, Prefixes: []addr.Prefix{p}}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestOutageSeriesStageWindow(t *testing.T) {
	db := stageRoutes(t)
	origin := time.Date(2022, 1, 25, 0, 0, 0, 0, time.UTC)
	end := origin.Add(10 * time.Hour)
	st := OutageSeries(db, origin, end, time.Hour)().(*OutageSeriesStage)

	a100 := addr.MustParse("2001:db8::1")
	a200 := addr.MustParse("2001:db9::1")
	unrouted := addr.MustParse("2a00::1")

	o := origin.Unix()
	st.Process(Event{Addr: a100, Time: o})                     // bin 0
	st.Process(Event{Addr: a100, Time: o + 3599})              // bin 0
	st.Process(Event{Addr: a100, Time: o + 3600})              // bin 1
	st.Process(Event{Addr: a200, Time: o + 9*3600})            // bin 9
	st.Process(Event{Addr: a200, Time: o + 10*3600})           // bin 10 (the incomplete trailing bin)
	st.Process(Event{Addr: a200, Time: o + 11*3600})           // past the window: dropped
	st.Process(Event{Addr: a100, Time: o - 2*3600})            // before the window: dropped
	st.Process(Event{Addr: unrouted, Time: o})                 // unrouted: dropped
	st.Process(Event{Addr: a100, Time: o + 5*3600, Server: 3}) // vantage is irrelevant

	s := st.Series()
	if s.Bins != 11 || s.Complete != 10 {
		t.Fatalf("series shape: bins %d complete %d", s.Bins, s.Complete)
	}
	if !s.Origin.Equal(origin) || s.Bin != time.Hour {
		t.Fatalf("series origin/bin: %v %v", s.Origin, s.Bin)
	}
	want100 := []int{2, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0}
	want200 := []int{0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1}
	if !reflect.DeepEqual(s.ByAS[100], want100) {
		t.Errorf("AS100 bins %v, want %v", s.ByAS[100], want100)
	}
	if !reflect.DeepEqual(s.ByAS[200], want200) {
		t.Errorf("AS200 bins %v, want %v", s.ByAS[200], want200)
	}
	if len(s.ByAS) != 2 {
		t.Errorf("unexpected ASes: %v", s.ByAS)
	}

	// Series() deep-copies: mutating the snapshot must not touch the stage.
	s.ByAS[100][0] = 999
	if got := st.Series().ByAS[100][0]; got != 2 {
		t.Errorf("snapshot aliases stage state: %d", got)
	}
}

func TestOutageSeriesStageMergeCommutes(t *testing.T) {
	db := stageRoutes(t)
	origin := time.Date(2022, 1, 25, 0, 0, 0, 0, time.UTC)
	end := origin.Add(4 * time.Hour)
	factory := OutageSeries(db, origin, end, time.Hour)

	build := func(events []Event) *OutageSeriesStage {
		st := factory().(*OutageSeriesStage)
		for _, ev := range events {
			st.Process(ev)
		}
		return st
	}
	a := addr.MustParse("2001:db8::1")
	b := addr.MustParse("2001:db9::2")
	evA := []Event{{Addr: a, Time: origin.Unix()}, {Addr: a, Time: origin.Unix() + 3600}}
	evB := []Event{{Addr: b, Time: origin.Unix() + 2*3600}, {Addr: b, Time: origin.Unix()}}

	ab := build(evA)
	ab.Merge(build(evB))
	ba := build(evB)
	ba.Merge(build(evA))
	if !reflect.DeepEqual(ab.Series(), ba.Series()) {
		t.Errorf("merge is not commutative: %v vs %v", ab.Series().ByAS, ba.Series().ByAS)
	}
}

func TestOutageSeriesStageLive(t *testing.T) {
	db := stageRoutes(t)
	factory := OutageSeriesLive(db, time.Hour)
	a := addr.MustParse("2001:db8::1")

	st := factory().(*OutageSeriesStage)
	base := int64(1_000_000 * 3600)               // an exact bin boundary, for readability
	st.Process(Event{Addr: a, Time: base + 1800}) // anchors origin to base
	st.Process(Event{Addr: a, Time: base + 2*3600})
	s := st.Series()
	if got := s.Origin.Unix(); got != base {
		t.Fatalf("anchored origin %d, want %d", got, base)
	}
	if s.Bins != 3 || s.Complete != 2 {
		t.Fatalf("live shape: bins %d complete %d (newest bin must be incomplete)", s.Bins, s.Complete)
	}

	// An earlier event rewinds bin 0 without losing recorded counts.
	st.Process(Event{Addr: a, Time: base - 3*3600})
	s = st.Series()
	if got := s.Origin.Unix(); got != base-3*3600 {
		t.Fatalf("rewound origin %d, want %d", got, base-3*3600)
	}
	want := []int{1, 0, 0, 1, 0, 1}
	if !reflect.DeepEqual(s.ByAS[100], want) {
		t.Errorf("live bins %v, want %v", s.ByAS[100], want)
	}

	// Merging shards anchored at different origins reconciles to the
	// earliest; empty instances merge as no-ops in either direction.
	late := factory().(*OutageSeriesStage)
	late.Process(Event{Addr: a, Time: base + 5*3600})
	st.Merge(late)
	s = st.Series()
	if s.Bins != 9 || s.ByAS[100][8] != 1 {
		t.Fatalf("cross-origin merge: bins %d counts %v", s.Bins, s.ByAS[100])
	}
	empty := factory().(*OutageSeriesStage)
	st.Merge(empty)
	if got := st.Series(); got.Bins != 9 {
		t.Errorf("empty merge changed the series: %v", got)
	}
	adopt := factory().(*OutageSeriesStage)
	adopt.Merge(st)
	if !reflect.DeepEqual(adopt.Series(), st.Series()) {
		t.Error("merging into an unanchored instance should adopt the other")
	}
}

func TestOutageSeriesBinValidation(t *testing.T) {
	db := stageRoutes(t)
	for _, bin := range []time.Duration{0, -time.Hour, 1500 * time.Millisecond} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bin %v should panic at construction", bin)
				}
			}()
			OutageSeriesLive(db, bin)
		}()
	}
}
