package ingest

import (
	"sync/atomic"
	"time"
)

// Metrics is the pipeline's atomic counter block, updated lock-free by
// producers and shard workers and readable at any time.
type Metrics struct {
	enqueued  atomic.Uint64 // events admitted into shard queues
	dropped   atomic.Uint64 // events shed at admission (DropOnFull)
	processed atomic.Uint64 // events folded into shard state
	batches   atomic.Uint64 // batches handed to shard queues
	snapshots atomic.Uint64 // shard snapshots merged into the store
	start     time.Time
}

// MetricsSnapshot is a point-in-time reading, JSON-shaped for stat
// endpoints.
type MetricsSnapshot struct {
	Enqueued      uint64  `json:"enqueued"`
	Dropped       uint64  `json:"dropped"`
	Processed     uint64  `json:"processed"`
	Batches       uint64  `json:"batches"`
	Snapshots     uint64  `json:"snapshots"`
	QueuedBatches int     `json:"queued_batches"`
	EventsPerSec  float64 `json:"events_per_sec"`
}

// Metrics returns a point-in-time reading of the counter block.
// EventsPerSec is the lifetime average processing rate; QueuedBatches
// sums the current depth of every shard queue (the backpressure
// signal).
func (p *Pipeline) Metrics() MetricsSnapshot {
	depth := 0
	for _, s := range p.shards {
		depth += len(s.in)
	}
	processed := p.metrics.processed.Load()
	elapsed := time.Since(p.metrics.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(processed) / elapsed
	}
	return MetricsSnapshot{
		Enqueued:      p.metrics.enqueued.Load(),
		Dropped:       p.metrics.dropped.Load(),
		Processed:     processed,
		Batches:       p.metrics.batches.Load(),
		Snapshots:     p.metrics.snapshots.Load(),
		QueuedBatches: depth,
		EventsPerSec:  rate,
	}
}
