package ingest

import (
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is the pipeline's atomic counter block, updated lock-free by
// producers and shard workers and readable at any time.
type Metrics struct {
	enqueued  atomic.Uint64 // events admitted into shard queues
	dropped   atomic.Uint64 // events shed at admission (DropOnFull)
	processed atomic.Uint64 // events folded into shard state
	batches   atomic.Uint64 // batches handed to shard queues
	snapshots atomic.Uint64 // shard snapshots merged into the store
	// Durable-checkpoint telemetry (CheckpointFile and the periodic
	// checkpoint ticker).
	checkpoints         atomic.Uint64
	checkpointErrors    atomic.Uint64
	lastCheckpointUnix  atomic.Int64
	lastCheckpointBytes atomic.Uint64
	start               time.Time
	recent              rateWindow
}

// MetricsSnapshot is a point-in-time reading, JSON-shaped for stat
// endpoints.
type MetricsSnapshot struct {
	Enqueued      uint64 `json:"enqueued"`
	Dropped       uint64 `json:"dropped"`
	Processed     uint64 `json:"processed"`
	Batches       uint64 `json:"batches"`
	Snapshots     uint64 `json:"snapshots"`
	QueuedBatches int    `json:"queued_batches"`
	// EventsPerSec is the lifetime average processing rate;
	// RecentEventsPerSec the rate over the trailing sample window (up to
	// ~rateWindowSpan), which is what a long-running daemon's dashboard
	// should watch — the lifetime average goes stale within hours.
	EventsPerSec       float64 `json:"events_per_sec"`
	RecentEventsPerSec float64 `json:"recent_events_per_sec"`
	// CorpusBytes estimates the merged store's resident size under the
	// flat-slab layout; BytesPerAddr divides it by unique addresses.
	CorpusBytes  uint64  `json:"corpus_bytes"`
	BytesPerAddr float64 `json:"bytes_per_addr"`
	// Checkpoints counts successful durable snapshots written;
	// CheckpointErrors failed attempts (full disk, bad path). The Last*
	// pair describes the newest good checkpoint — a serving daemon's
	// "how much would a crash lose right now" gauge.
	Checkpoints         uint64 `json:"checkpoints"`
	CheckpointErrors    uint64 `json:"checkpoint_errors"`
	LastCheckpointUnix  int64  `json:"last_checkpoint_unix,omitempty"`
	LastCheckpointBytes uint64 `json:"last_checkpoint_bytes,omitempty"`
}

// rateWindow derives a recent-window rate from (time, counter) samples
// taken at each Metrics call, pruned to the trailing span.
type rateWindow struct {
	mu      sync.Mutex
	samples []rateSample
}

type rateSample struct {
	at        time.Time
	processed uint64
}

// rateWindowSpan bounds how far back the recent rate looks. Samples are
// taken on Metrics() calls, so the effective window is the larger of the
// caller's polling interval and this span.
const rateWindowSpan = 60 * time.Second

// maxRateSamples caps the sample buffer against pathological polling.
const maxRateSamples = 256

// tick records a sample and returns the rate across the retained window;
// ok is false until two samples span a measurable interval.
func (w *rateWindow) tick(now time.Time, processed uint64) (rate float64, ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.samples = append(w.samples, rateSample{at: now, processed: processed})
	// Drop samples that fell out of the window (always keeping the two
	// newest so a slow poller still gets its last interval), and bound
	// the buffer.
	cut := 0
	for cut < len(w.samples)-2 && now.Sub(w.samples[cut+1].at) >= rateWindowSpan {
		cut++
	}
	if over := len(w.samples) - maxRateSamples; over > cut {
		cut = over
	}
	if cut > 0 {
		w.samples = append(w.samples[:0], w.samples[cut:]...)
	}
	oldest := w.samples[0]
	dt := now.Sub(oldest.at).Seconds()
	if dt <= 0 || processed < oldest.processed {
		return 0, false
	}
	return float64(processed-oldest.processed) / dt, true
}

// Metrics returns a point-in-time reading of the counter block.
// QueuedBatches sums the current depth of every shard queue (the
// backpressure signal). Each call contributes a sample to the recent-
// rate window, so periodic pollers (the /stats endpoint) get a rolling
// rate for free.
func (p *Pipeline) Metrics() MetricsSnapshot {
	depth := 0
	for _, s := range p.shards {
		depth += len(s.in)
	}
	now := time.Now()
	processed := p.metrics.processed.Load()
	elapsed := now.Sub(p.metrics.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(processed) / elapsed
	}
	recent, ok := p.metrics.recent.tick(now, processed)
	if !ok {
		// One sample (or a clock hiccup): the lifetime average is the
		// best recent estimate there is.
		recent = rate
	}
	corpusBytes := p.store.MemoryFootprint()
	bytesPerAddr := 0.0
	if n := p.store.NumAddrs(); n > 0 {
		bytesPerAddr = float64(corpusBytes) / float64(n)
	}
	return MetricsSnapshot{
		Enqueued:            p.metrics.enqueued.Load(),
		Dropped:             p.metrics.dropped.Load(),
		Processed:           processed,
		Batches:             p.metrics.batches.Load(),
		Snapshots:           p.metrics.snapshots.Load(),
		QueuedBatches:       depth,
		EventsPerSec:        rate,
		RecentEventsPerSec:  recent,
		CorpusBytes:         corpusBytes,
		BytesPerAddr:        bytesPerAddr,
		Checkpoints:         p.metrics.checkpoints.Load(),
		CheckpointErrors:    p.metrics.checkpointErrors.Load(),
		LastCheckpointUnix:  p.metrics.lastCheckpointUnix.Load(),
		LastCheckpointBytes: p.metrics.lastCheckpointBytes.Load(),
	}
}
