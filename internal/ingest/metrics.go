package ingest

import (
	"strconv"
	"time"

	"hitlist6/internal/telemetry"
)

// Metrics is the pipeline's counter block, now a set of handles into a
// telemetry.Registry: producers and shard workers update lock-free
// atomics exactly as before, while the same state renders as
// Prometheus series on /metrics and as the JSON MetricsSnapshot on
// /stats — one source of truth, two views.
type Metrics struct {
	enqueued  *telemetry.Counter // events admitted into shard queues
	dropped   *telemetry.Counter // events shed at admission (DropOnFull)
	processed *telemetry.Counter // events folded into shard state
	batches   *telemetry.Counter // batches handed to shard queues
	snapshots *telemetry.Counter // shard snapshots merged into the store
	// Durable-checkpoint telemetry (CheckpointFile and the periodic
	// checkpoint ticker).
	checkpoints         *telemetry.Counter
	deltaCheckpoints    *telemetry.Counter
	checkpointErrors    *telemetry.Counter
	lastCheckpointUnix  *telemetry.Gauge
	lastCheckpointBytes *telemetry.Gauge
	// pinErrors counts shard workers that asked for CPU affinity and
	// didn't get it (non-Linux platform, restrictive cgroup).
	pinErrors *telemetry.Counter
	start     time.Time
	recent    telemetry.RateWindow
}

// pipelineTelemetry is the per-shard/per-stage instrumentation beyond
// the counter block: latency and size distributions, queue gauges, and
// the merger/checkpoint timings. The hot-path pieces are gated by
// enabled so BenchmarkTelemetryOverhead can measure the uninstrumented
// observe loop as its baseline; production pipelines always run
// enabled.
type pipelineTelemetry struct {
	enabled bool
	// Per shard, indexed by shard.idx.
	batchSeconds   []*telemetry.Histogram // observe-loop wall time per batch
	shardEvents    []*telemetry.Counter   // events folded, per shard
	queueHighWater []*telemetry.Gauge     // deepest queue seen, in batches
	// Per stage, in Config.Stages order.
	stageSeconds []*telemetry.Histogram
	// Global distributions.
	batchEvents      *telemetry.Histogram // events per batch
	mergeSeconds     *telemetry.Histogram // ApplyShard wall time in the merger
	checkpointTime   *telemetry.Histogram // CheckpointFile wall time
	checkpointVolume *telemetry.Histogram // CheckpointFile bytes written
}

// initTelemetry registers the pipeline's metric families in reg and
// wires the counter block. Called once from New, after the store and
// shards exist. Registration is idempotent per series (see
// telemetry.Registry), so a daemon that rebuilds its pipeline keeps
// accumulating into the same counters and its scrape-time gauges
// re-bind to the live shards.
func (p *Pipeline) initTelemetry(reg *telemetry.Registry) {
	m := &p.metrics
	m.enqueued = reg.Counter("ingest_events_enqueued_total", "Events admitted into shard queues.")
	m.dropped = reg.Counter("ingest_events_dropped_total", "Events shed at admission (DropOnFull).")
	m.processed = reg.Counter("ingest_events_processed_total", "Events folded into shard state.")
	m.batches = reg.Counter("ingest_batches_total", "Batches handed to shard queues.")
	m.snapshots = reg.Counter("ingest_snapshots_merged_total", "Shard snapshots merged into the store.")
	m.checkpoints = reg.Counter("ingest_checkpoints_total", "Durable corpus checkpoints written.")
	m.deltaCheckpoints = reg.Counter("ingest_delta_checkpoints_total", "Checkpoints written as chain deltas (subset of the total).")
	m.checkpointErrors = reg.Counter("ingest_checkpoint_errors_total", "Failed checkpoint attempts.")
	m.lastCheckpointUnix = reg.Gauge("ingest_last_checkpoint_unix", "Unix time of the newest good checkpoint.")
	m.lastCheckpointBytes = reg.Gauge("ingest_last_checkpoint_bytes", "Size of the newest good checkpoint.")
	m.pinErrors = reg.Counter("ingest_pin_errors_total", "Shard workers whose CPU-affinity request failed.")

	t := &p.tel
	t.enabled = !p.cfg.noHotPathTelemetry
	t.batchEvents = reg.Histogram("ingest_batch_events",
		"Events per processed batch.", telemetry.CountBuckets())
	t.mergeSeconds = reg.Histogram("ingest_merge_seconds",
		"Wall time merging one shard snapshot into the store.", telemetry.DurationBuckets())
	t.checkpointTime = reg.Histogram("ingest_checkpoint_seconds",
		"Wall time writing one durable checkpoint (includes the quiesce).", telemetry.DurationBuckets())
	t.checkpointVolume = reg.Histogram("ingest_checkpoint_written_bytes",
		"Bytes written per durable checkpoint.", telemetry.SizeBuckets())

	t.batchSeconds = make([]*telemetry.Histogram, len(p.shards))
	t.shardEvents = make([]*telemetry.Counter, len(p.shards))
	t.queueHighWater = make([]*telemetry.Gauge, len(p.shards))
	for i, s := range p.shards {
		shard := telemetry.L("shard", strconv.Itoa(i))
		t.batchSeconds[i] = reg.Histogram("ingest_batch_seconds",
			"Observe-loop wall time per batch (collector + stages).", telemetry.DurationBuckets(), shard)
		t.shardEvents[i] = reg.Counter("ingest_shard_events_total",
			"Events folded, per shard.", shard)
		t.queueHighWater[i] = reg.Gauge("ingest_queue_high_water",
			"Deepest queue depth seen, in batches, per shard.", shard)
		sh := s
		reg.GaugeFunc("ingest_queue_depth",
			"Current queue depth in batches, per shard.",
			func() float64 { return float64(sh.queueDepth()) }, shard)
	}

	t.stageSeconds = make([]*telemetry.Histogram, len(p.mergedStages))
	for i, st := range p.mergedStages {
		t.stageSeconds[i] = reg.Histogram("ingest_stage_seconds",
			"Per-batch wall time of one enrichment stage.", telemetry.DurationBuckets(),
			telemetry.L("stage", st.Name()))
	}

	store := p.store
	reg.GaugeFunc("ingest_corpus_addresses",
		"Unique addresses in the merged store.",
		func() float64 { return float64(store.NumAddrs()) })
	reg.GaugeFunc("ingest_corpus_bytes",
		"Estimated resident bytes of the merged store.",
		func() float64 { return float64(store.MemoryFootprint()) })
}

// MetricsSnapshot is a point-in-time reading, JSON-shaped for stat
// endpoints.
type MetricsSnapshot struct {
	Enqueued      uint64 `json:"enqueued"`
	Dropped       uint64 `json:"dropped"`
	Processed     uint64 `json:"processed"`
	Batches       uint64 `json:"batches"`
	Snapshots     uint64 `json:"snapshots"`
	QueuedBatches int    `json:"queued_batches"`
	// EventsPerSec is the lifetime average processing rate;
	// RecentEventsPerSec the rate over the trailing sample window (up to
	// ~rateWindowSpan), which is what a long-running daemon's dashboard
	// should watch — the lifetime average goes stale within hours.
	EventsPerSec       float64 `json:"events_per_sec"`
	RecentEventsPerSec float64 `json:"recent_events_per_sec"`
	// CorpusBytes estimates the merged store's resident size under the
	// flat-slab layout; BytesPerAddr divides it by unique addresses.
	CorpusBytes  uint64  `json:"corpus_bytes"`
	BytesPerAddr float64 `json:"bytes_per_addr"`
	// Checkpoints counts successful durable snapshots written;
	// CheckpointErrors failed attempts (full disk, bad path). The Last*
	// pair describes the newest good checkpoint — a serving daemon's
	// "how much would a crash lose right now" gauge.
	Checkpoints uint64 `json:"checkpoints"`
	// DeltaCheckpoints is the subset of Checkpoints written as chain
	// deltas (Config.DeltaCheckpoints); ChainSeq is the corpus's position
	// in the current chain — 0 right after a full checkpoint, N after N
	// deltas on that base.
	DeltaCheckpoints    uint64 `json:"delta_checkpoints,omitempty"`
	ChainSeq            uint64 `json:"chain_seq,omitempty"`
	CheckpointErrors    uint64 `json:"checkpoint_errors"`
	LastCheckpointUnix  int64  `json:"last_checkpoint_unix,omitempty"`
	LastCheckpointBytes uint64 `json:"last_checkpoint_bytes,omitempty"`
}

// Metrics returns a point-in-time reading of the counter block.
// QueuedBatches sums the current depth of every shard queue (the
// backpressure signal). Each call contributes a sample to the recent-
// rate window, so periodic pollers (the /stats endpoint) get a rolling
// rate for free.
func (p *Pipeline) Metrics() MetricsSnapshot {
	depth := 0
	for _, s := range p.shards {
		depth += s.queueDepth()
	}
	now := time.Now()
	processed := p.metrics.processed.Value()
	elapsed := now.Sub(p.metrics.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(processed) / elapsed
	}
	recent, ok := p.metrics.recent.Tick(now, processed)
	if !ok {
		// One sample (or a clock hiccup): the lifetime average is the
		// best recent estimate there is.
		recent = rate
	}
	corpusBytes := p.store.MemoryFootprint()
	bytesPerAddr := 0.0
	if n := p.store.NumAddrs(); n > 0 {
		bytesPerAddr = float64(corpusBytes) / float64(n)
	}
	chainSeq, _ := p.store.CheckpointSeq()
	return MetricsSnapshot{
		Enqueued:            p.metrics.enqueued.Value(),
		Dropped:             p.metrics.dropped.Value(),
		Processed:           processed,
		Batches:             p.metrics.batches.Value(),
		Snapshots:           p.metrics.snapshots.Value(),
		QueuedBatches:       depth,
		EventsPerSec:        rate,
		RecentEventsPerSec:  recent,
		CorpusBytes:         corpusBytes,
		BytesPerAddr:        bytesPerAddr,
		Checkpoints:         p.metrics.checkpoints.Value(),
		DeltaCheckpoints:    p.metrics.deltaCheckpoints.Value(),
		ChainSeq:            chainSeq,
		CheckpointErrors:    p.metrics.checkpointErrors.Value(),
		LastCheckpointUnix:  p.metrics.lastCheckpointUnix.Value(),
		LastCheckpointBytes: uint64(p.metrics.lastCheckpointBytes.Value()),
	}
}
