package ingest

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"hitlist6/internal/addr"
	"hitlist6/internal/collector"
)

// parseEventLegacy is the pre-wire-speed string parser, kept verbatim
// as the reference grammar: strings.Fields splitting, strconv-backed
// strict decimals, addr.Parse. FuzzParseEventBytes holds the
// zero-allocation byte parser to it on every input — the byte walk may
// be faster, but it may not accept or decode anything differently.
func parseEventLegacy(line string) (Event, error) {
	strictInt := func(s string, bitSize int) (int64, error) {
		neg := strings.HasPrefix(s, "-")
		digits := s
		if neg {
			digits = s[1:]
		}
		if digits == "" || strings.TrimLeft(digits, "0123456789") != "" {
			return 0, fmt.Errorf("not a decimal integer")
		}
		v, err := strconv.ParseInt(s, 10, bitSize)
		if err != nil {
			return 0, err
		}
		if neg && v == 0 {
			return 0, fmt.Errorf("negative zero")
		}
		return v, nil
	}
	var ev Event
	fields := strings.Fields(line)
	if len(fields) < 2 || len(fields) > 3 {
		return ev, fmt.Errorf("ingest: want 'ts addr [server]', got %q", line)
	}
	ts, err := strictInt(fields[0], 64)
	if err != nil {
		return ev, fmt.Errorf("ingest: bad timestamp %q: %v", fields[0], err)
	}
	a, err := addr.Parse(fields[1])
	if err != nil {
		return ev, err
	}
	server := int64(-1)
	if len(fields) == 3 {
		server, err = strictInt(fields[2], 32)
		if err != nil {
			return ev, fmt.Errorf("ingest: bad server %q: %v", fields[2], err)
		}
		if server < -1 || server >= collector.MaxServers {
			return ev, fmt.Errorf("ingest: server index %d out of [-1,%d)", server, collector.MaxServers)
		}
	}
	return Event{Addr: a, Time: ts, Server: int32(server)}, nil
}

// FuzzParseEventBytes is the differential property of the wire-speed
// parser: on every input, ParseEventBytes must agree with the legacy
// string parser on accept/reject and on the decoded Event, and the
// ParseEvent wrapper must agree with both. (FuzzParseEvent separately
// pins the round-trip property; this fuzz pins that the byte rewrite
// changed nothing but the allocation count.)
//
// Run continuously with:
//
//	go test ./internal/ingest -run '^$' -fuzz '^FuzzParseEventBytes$' -fuzztime 30s
func FuzzParseEventBytes(f *testing.F) {
	for _, seed := range []string{
		"1643068800 2001:db8::1 3",
		"1643068800 2001:db8::1",
		" 1643068800\t2001:db8::1 ",
		"1643068800 ::ffff:192.0.2.1 1",
		"-9223372036854775808 :: -1",
		"9223372036854775807 ff02::fb 26",
		"9223372036854775808 ::",
		"-0 :: 0",
		"007 2001:db8::1 031",
		"1 2001:db8::1 +3",
		"1 2001:db8::1",  // non-ASCII whitespace separator
		"1 2001:db8::1 ", // non-ASCII trailing whitespace
		"1 2001:db8::1 2 3",
		"\xff\xfe 2001:db8::1",
		"   ",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		got, gotErr := ParseEventBytes(data)
		want, wantErr := parseEventLegacy(string(data))
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("ParseEventBytes(%q) err=%v, legacy err=%v: accept/reject drift", data, gotErr, wantErr)
		}
		if gotErr == nil && got != want {
			t.Fatalf("ParseEventBytes(%q) = %+v, legacy = %+v", data, got, want)
		}
		wrapped, wrappedErr := ParseEvent(string(data))
		if (wrappedErr == nil) != (gotErr == nil) || wrapped != got {
			t.Fatalf("ParseEvent(%q) = %+v (err=%v) disagrees with ParseEventBytes (%+v, err=%v)",
				data, wrapped, wrappedErr, got, gotErr)
		}
	})
}

// TestParseEventBytesZeroAlloc pins the headline property of the wire
// parser: decoding a valid event line from bytes allocates nothing —
// not for the fields, not for the address, not for the timestamp. (The
// race detector changes allocation behavior, so the exact-zero claim is
// only asserted in non-race runs; BenchmarkParseEventBytes reports the
// same number under -benchmem.)
func TestParseEventBytesZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not exact under -race")
	}
	lines := [][]byte{
		[]byte("1643068800 2001:db8::1 3"),
		[]byte("1643068800 2001:0db8:85a3:0000:0000:8a2e:0370:7334"),
		[]byte("1643068800 ::ffff:192.0.2.1 26"),
	}
	for _, line := range lines {
		avg := testing.AllocsPerRun(100, func() {
			if _, err := ParseEventBytes(line); err != nil {
				t.Fatal(err)
			}
		})
		if avg != 0 {
			t.Errorf("ParseEventBytes(%q): %.1f allocs/op, want 0", line, avg)
		}
	}
	// The reject path keeps its informative error messages (callers
	// sample-log them against the badLines counter), so it does allocate
	// — but only a bounded handful for the fmt.Errorf wrap, never
	// per-field or per-byte work proportional to the input.
	bad := []byte("99999999999999999999999999 2001:db8::1")
	avg := testing.AllocsPerRun(100, func() {
		if _, err := ParseEventBytes(bad); err == nil {
			t.Fatal("accepted overflow timestamp")
		}
	})
	if avg > 8 {
		t.Errorf("reject path: %.1f allocs/op, want a small constant", avg)
	}
}
