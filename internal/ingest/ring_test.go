package ingest

import (
	"runtime"
	"testing"
	"time"
)

func TestSPSCRingCapacity(t *testing.T) {
	for _, tc := range []struct{ depth, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16},
	} {
		if got := len(newSPSCRing(tc.depth).slots); got != tc.want {
			t.Errorf("newSPSCRing(%d): %d slots, want %d", tc.depth, got, tc.want)
		}
	}
}

func TestSPSCRingFullAndDrain(t *testing.T) {
	r := newSPSCRing(4)
	for i := 0; i < 4; i++ {
		if !r.tryPush([]Event{{Time: int64(i)}}) {
			t.Fatalf("tryPush %d refused below capacity", i)
		}
	}
	if r.tryPush(nil) {
		t.Fatal("tryPush accepted into a full ring")
	}
	if r.len() != 4 {
		t.Fatalf("len %d, want 4", r.len())
	}
	for i := 0; i < 4; i++ {
		batch, ok := r.tryPop()
		if !ok || batch[0].Time != int64(i) {
			t.Fatalf("pop %d: %v ok=%v — FIFO broken", i, batch, ok)
		}
	}
	if _, ok := r.tryPop(); ok {
		t.Fatal("tryPop from an empty ring")
	}
}

// TestSPSCRingStress runs one producer against one consumer across a
// deliberately tiny ring, with the consumer using the same park/wake
// protocol as the shard worker loop — under -race this is the proof
// that two atomics plus a doorbell really are a safe handoff: every
// batch arrives, exactly once, in order, with no lost wakeups on
// either side.
func TestSPSCRingStress(t *testing.T) {
	r := newSPSCRing(2)
	const n = 100000
	done := make(chan struct{})
	go func() {
		defer close(done)
		next := 0
		for next < n {
			batch, ok := r.tryPop()
			if !ok {
				r.sleeping.Store(true)
				if r.len() != 0 || r.closed.Load() {
					r.sleeping.Store(false)
					continue
				}
				<-r.notify
				continue
			}
			if len(batch) != 1 || batch[0].Time != int64(next) {
				t.Errorf("pop %d: got %v — loss or reorder", next, batch)
				return
			}
			next++
			if next%1024 == 0 {
				// An occasional consumer stall forces the producer through
				// its full-ring backpressure path too.
				time.Sleep(time.Microsecond)
			}
		}
	}()
	for i := 0; i < n; i++ {
		r.push([]Event{{Time: int64(i)}})
		if i%4096 == 0 {
			runtime.Gosched()
		}
	}
	r.close()
	<-done
}

// TestSPSCPipelineSnapshotDuringIngest rings the snapshot doorbell
// repeatedly while the single producer is still feeding an spsc
// pipeline: the mid-stream handoffs must not lose, duplicate, or stall
// events (run with -race; the equivalence suite separately proves the
// merged bytes are identical across queue kinds).
func TestSPSCPipelineSnapshotDuringIngest(t *testing.T) {
	events := testEvents(t, 0.02, 6)
	cfg := DefaultConfig(4)
	cfg.ShardQueue = "spsc"
	cfg.BatchSize = 16
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fed := make(chan struct{})
	go func() {
		defer close(fed)
		b := p.NewBatcher()
		for _, ev := range events {
			b.Add(ev)
		}
		b.Flush()
	}()
	for i := 0; i < 8; i++ {
		p.SnapshotNow()
	}
	<-fed
	merged := p.Close()
	if merged.TotalObservations() != uint64(len(events)) {
		t.Errorf("observations %d, want %d", merged.TotalObservations(), len(events))
	}
}
