package ingest

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"hitlist6/internal/collector"
)

// TestCheckpointRestoreEquivalence is the durable-path extension of the
// 1/4/16-shard equivalence suite (run with -race): ingest half a stream,
// checkpoint mid-ingest, restore the checkpoint into a fresh pipeline,
// finish the stream there — and the final corpus must be byte-identical
// (canonical Checksum) to an uninterrupted serial run of the whole
// stream. Both queue kinds take this path: the chan legs feed with
// concurrent producers, the spsc legs with the single producer that
// queue admits — plus PinCPUs, so the restore path is also proven under
// the wire-speed worker setup (on kernels that refuse affinity it
// degrades to a counted no-op, which must not disturb equivalence).
func TestCheckpointRestoreEquivalence(t *testing.T) {
	events := testEvents(t, 0.03, 12)
	serial := collector.New()
	for _, ev := range events {
		serial.ObserveUnix(ev.Addr, ev.Time, int(ev.Server))
	}
	want := serial.Checksum()

	feed := func(p *Pipeline, part []Event, producers int) {
		var wg sync.WaitGroup
		chunk := (len(part) + producers - 1) / producers
		for pi := 0; pi < producers; pi++ {
			lo := pi * chunk
			hi := min(lo+chunk, len(part))
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(sub []Event) {
				defer wg.Done()
				b := p.NewBatcher()
				for _, ev := range sub {
					b.Add(ev)
				}
				b.Flush()
			}(part[lo:hi])
		}
		wg.Wait()
	}

	cases := []struct {
		queue     string
		producers int
		pin       bool
	}{
		{queue: "chan", producers: 3},
		{queue: "spsc", producers: 1, pin: true}, // spsc admits at most one producer
	}
	for _, tc := range cases {
		t.Run("queue="+tc.queue, func(t *testing.T) {
			for _, shards := range []int{1, 4, 16} {
				mkcfg := func() Config {
					cfg := DefaultConfig(shards)
					cfg.BatchSize = 32
					cfg.ShardQueue = tc.queue
					cfg.PinCPUs = tc.pin
					return cfg
				}
				first, err := New(mkcfg())
				if err != nil {
					t.Fatal(err)
				}
				feed(first, events[:len(events)/2], tc.producers)

				var ckpt bytes.Buffer
				bw := bufio.NewWriter(&ckpt)
				if err := first.Checkpoint(bw); err != nil {
					t.Fatalf("shards=%d: checkpoint: %v", shards, err)
				}
				first.Close() // the interrupted process

				restored, err := collector.OpenSnapshot(bytes.NewReader(ckpt.Bytes()))
				if err != nil {
					t.Fatalf("shards=%d: restore: %v", shards, err)
				}
				cfg2 := mkcfg()
				cfg2.Seed = restored
				second, err := New(cfg2)
				if err != nil {
					t.Fatal(err)
				}
				feed(second, events[len(events)/2:], tc.producers)
				merged := second.Close()

				if got := merged.Checksum(); got != want {
					t.Errorf("shards=%d: checkpoint/restore corpus differs from serial run", shards)
				}
				if merged.TotalObservations() != uint64(len(events)) {
					t.Errorf("shards=%d: %d observations, want %d", shards,
						merged.TotalObservations(), len(events))
				}
			}
		})
	}
}

// TestCheckpointCoversFlushed: Quiesce-backed checkpoints must contain
// every event flushed before the call, not merely handed to queues.
func TestCheckpointCoversFlushed(t *testing.T) {
	events := testEvents(t, 0.02, 6)
	p, err := New(DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	p.Ingest(events) // Ingest flushes

	var ckpt bytes.Buffer
	if err := p.Checkpoint(bufio.NewWriter(&ckpt)); err != nil {
		t.Fatal(err)
	}
	restored, err := collector.OpenSnapshot(bytes.NewReader(ckpt.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.TotalObservations() != uint64(len(events)) {
		t.Fatalf("checkpoint holds %d observations, want %d (flushed before Checkpoint)",
			restored.TotalObservations(), len(events))
	}
	p.Close()
}

// TestCheckpointFileAtomicAndRestore covers the file protocol: write,
// restore, overwrite, and the missing-file case.
func TestCheckpointFileAtomicAndRestore(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.snap")

	if c, err := RestoreFile(path); err != nil || c != nil {
		t.Fatalf("missing checkpoint: got (%v, %v), want (nil, nil)", c, err)
	}

	events := testEvents(t, 0.02, 6)
	p, err := New(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	p.Ingest(events[:len(events)/2])
	if _, err := p.CheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	p.Ingest(events[len(events)/2:])
	size, err := p.CheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != size {
		t.Fatalf("checkpoint file size %v vs reported %d (err %v)", fi, size, err)
	}
	m := p.Metrics()
	if m.Checkpoints != 2 || m.CheckpointErrors != 0 || m.LastCheckpointBytes != uint64(size) {
		t.Fatalf("checkpoint metrics off: %+v", m)
	}
	merged := p.Close()

	restored, err := RestoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Checksum() != merged.Checksum() {
		t.Fatalf("restored checkpoint differs from the live corpus it captured")
	}

	// No temp litter.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "corpus.snap" {
		t.Fatalf("checkpoint dir litter: %v", entries)
	}

	// Corrupt checkpoint: RestoreFile must error, not return a husk.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if c, err := RestoreFile(path); err == nil {
		t.Fatalf("corrupt checkpoint restored: %v", c)
	}
}

// TestCheckpointTicker: a pipeline configured with CheckpointInterval
// writes checkpoints on its own.
func TestCheckpointTicker(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.snap")
	cfg := DefaultConfig(2)
	cfg.CheckpointPath = path
	cfg.CheckpointInterval = 10 * time.Millisecond
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Ingest(testEvents(t, 0.02, 4))
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := p.Metrics(); m.Checkpoints > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no periodic checkpoint within 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	merged := p.Close()
	restored, err := RestoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored == nil {
		t.Fatal("ticker reported a checkpoint but no file restores")
	}
	// The ticker may have fired before the final events flushed; the
	// checkpoint must be a prefix-consistent corpus, not necessarily the
	// final one.
	if restored.TotalObservations() > merged.TotalObservations() {
		t.Fatalf("checkpoint holds more observations (%d) than the corpus (%d)",
			restored.TotalObservations(), merged.TotalObservations())
	}
}

// TestSeedStage errors on unknown stages and seeds known ones.
func TestSeedStage(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Stages = []StageFactory{Categories()}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	seed := &CategoryStage{}
	seed.Counts[0] = 41
	if err := p.SeedStage("categories", seed); err != nil {
		t.Fatal(err)
	}
	if err := p.SeedStage("nonesuch", &CategoryStage{}); err == nil {
		t.Fatal("seeding an unknown stage succeeded")
	}
	st := p.Stage("categories").(*CategoryStage)
	if st.Counts[0] != 41 {
		t.Fatalf("seeded count %d, want 41", st.Counts[0])
	}
}
