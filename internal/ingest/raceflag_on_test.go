//go:build race

package ingest

// raceEnabled reports whether this test binary was built with the race
// detector, which perturbs exact allocation counts.
const raceEnabled = true
