//go:build linux

package ingest

import (
	"runtime"
	"syscall"
	"unsafe"
)

// pinToCPU locks the calling goroutine to its OS thread and binds that
// thread to one CPU (idx taken round-robin over the machine's CPUs).
// Pinning keeps a shard worker's collector state hot in one core's
// cache at sustained line rate instead of migrating with the
// scheduler. The thread stays locked for the goroutine's lifetime —
// shard workers run to pipeline Close, so nothing leaks.
//
// Raw sched_setaffinity(2): the stdlib syscall package exposes the
// number but no wrapper, and the mask is a plain bit array — 1024 CPUs
// worth, the kernel's historical cpu_set_t size.
func pinToCPU(idx int) error {
	cpu := idx % runtime.NumCPU()
	runtime.LockOSThread()
	var mask [16]uint64
	mask[cpu/64] = 1 << (cpu % 64)
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, // 0 = this thread
		uintptr(len(mask)*8),
		uintptr(unsafe.Pointer(&mask[0])))
	if errno != 0 {
		runtime.UnlockOSThread()
		return errno
	}
	return nil
}
