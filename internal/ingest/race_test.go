package ingest

import (
	"bytes"
	"sync"
	"testing"

	"hitlist6/internal/addr"
	"hitlist6/internal/collector"
)

// TestShardMergeEquivalence is the concurrency correctness contract of
// the pipeline (run it with -race): the same event stream, ingested
// into 1, 4 and 16 shards over each queue implementation, must merge
// into byte-identical stores — and match the serial single-collector
// corpus. Per-address updates commute, so neither the shard count, the
// queue kind, the producer interleaving, nor the snapshot schedule may
// leave a trace in the result. The "chan" runs use several concurrent
// producers; "spsc" uses the one producer its contract allows.
func TestShardMergeEquivalence(t *testing.T) {
	events := testEvents(t, 0.03, 12)
	var serial bytes.Buffer
	func() {
		c := collector.New()
		for _, ev := range events {
			c.ObserveUnix(ev.Addr, ev.Time, int(ev.Server))
		}
		if err := c.WriteCanonical(&serial); err != nil {
			t.Fatal(err)
		}
	}()

	for _, queue := range []string{"chan", "spsc"} {
		producers := 4
		if queue == "spsc" {
			producers = 1
		}
		for _, shards := range []int{1, 4, 16} {
			cfg := DefaultConfig(shards)
			cfg.BatchSize = 32 // small batches: more queue traffic under -race
			cfg.ShardQueue = queue
			p, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}

			var wg sync.WaitGroup
			chunk := (len(events) + producers - 1) / producers
			for pi := 0; pi < producers; pi++ {
				lo := pi * chunk
				hi := min(lo+chunk, len(events))
				if lo >= hi {
					continue
				}
				wg.Add(1)
				go func(part []Event) {
					defer wg.Done()
					b := p.NewBatcher()
					for _, ev := range part {
						b.Add(ev)
					}
					b.Flush()
				}(events[lo:hi])
			}
			wg.Wait()
			// Fold a mid-run snapshot into the mix for shards=4 so the
			// snapshot/merge path is also covered by the equivalence claim.
			if shards == 4 {
				p.SnapshotNow()
			}
			merged := p.Close()

			var got bytes.Buffer
			if err := merged.WriteCanonical(&got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), serial.Bytes()) {
				t.Errorf("queue=%s shards=%d: canonical encoding differs from serial (%d vs %d bytes)",
					queue, shards, got.Len(), serial.Len())
			}
		}
	}
}

// TestStoreConcurrentReaders hammers the live Store view from reader
// goroutines while ingestion and snapshots run: the single-writer /
// many-reader contract of collector.Store under -race.
func TestStoreConcurrentReaders(t *testing.T) {
	events := testEvents(t, 0.03, 8)
	cfg := DefaultConfig(4)
	cfg.Stages = []StageFactory{Categories()}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p.Store().View(func(c *collector.Collector) {
					c.Addrs(func(_ addr.Addr, _ collector.AddrRecord) bool {
						return false
					})
				})
				_ = p.Store().NumAddrs()
				_ = p.Metrics()
				p.StageView(func(stages []Stage) { _ = stages[0].Name() })
			}
		}()
	}

	half := len(events) / 2
	p.Ingest(events[:half])
	p.SnapshotNow()
	p.Ingest(events[half:])
	merged := p.Close()
	close(stop)
	readers.Wait()

	if merged.TotalObservations() != uint64(len(events)) {
		t.Errorf("observations %d, want %d", merged.TotalObservations(), len(events))
	}
}
