//go:build !linux

package ingest

import "errors"

// pinToCPU is Linux-only; elsewhere Config.PinCPUs degrades to a no-op
// counted in ingest_pin_errors_total.
func pinToCPU(int) error {
	return errors.New("cpu pinning unsupported on this platform")
}
