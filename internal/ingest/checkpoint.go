package ingest

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"hitlist6/internal/collector"
)

// Checkpointing is the pipeline's durability seam: Checkpoint writes
// the merged corpus's snapshot (see collector.Snapshot) after a full
// Quiesce, so the artifact provably contains every event flushed before
// the call; CheckpointFile adds the crash-safe file protocol (write to
// a temp file in the same directory, fsync, rename) so a torn write
// can never shadow the previous good checkpoint; RestoreFile is the
// other half, feeding Config.Seed on the next start.

// Checkpoint quiesces the pipeline and writes the merged corpus
// snapshot to w. Must not race with Close.
func (p *Pipeline) Checkpoint(w *bufio.Writer) error {
	p.Quiesce()
	if err := p.store.Snapshot(w); err != nil {
		return err
	}
	return w.Flush()
}

// AtomicWriteFile writes a file via the crash-safe protocol every
// durable artifact in this codebase shares: a temp file in the target's
// directory (so the rename is same-filesystem and atomic), buffered
// writes, flush, fsync, close, then rename. On any error the previous
// file at path — the last good checkpoint — is untouched. Returns the
// bytes written. Study checkpoints reuse this; keep crash-safety fixes
// here, in the one copy.
func AtomicWriteFile(path string, write func(w io.Writer) error) (int64, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds

	bw := bufio.NewWriterSize(tmp, 1<<20)
	err = write(bw)
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = tmp.Sync()
	}
	size := int64(0)
	if fi, statErr := tmp.Stat(); statErr == nil {
		size = fi.Size()
	}
	if closeErr := tmp.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, err
	}
	return size, nil
}

// CheckpointFile checkpoints to path atomically (see AtomicWriteFile)
// and returns the snapshot's size in bytes. Successful checkpoints
// feed the duration and bytes histograms — the distributions an
// operator watches to size the checkpoint cadence against the write
// stall it buys.
func (p *Pipeline) CheckpointFile(path string) (int64, error) {
	start := time.Now()
	size, err := AtomicWriteFile(path, func(w io.Writer) error {
		p.Quiesce()
		return p.store.Snapshot(w)
	})
	if err != nil {
		return 0, fmt.Errorf("ingest: checkpoint %s: %w", path, err)
	}
	p.metrics.checkpoints.Add(1)
	p.metrics.lastCheckpointUnix.Set(time.Now().Unix())
	p.metrics.lastCheckpointBytes.Set(size)
	p.tel.checkpointTime.ObserveDuration(time.Since(start))
	p.tel.checkpointVolume.Observe(float64(size))
	return size, nil
}

// RestoreFile loads a checkpoint written by CheckpointFile. A missing
// file is not an error — it returns (nil, nil), the empty-start case —
// while an unreadable or corrupt checkpoint returns the error for the
// caller to decide on (daemons log and start empty; batch runs abort).
func RestoreFile(path string) (*collector.Collector, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ingest: restore %s: %w", path, err)
	}
	defer f.Close()
	c, err := collector.OpenSnapshot(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("ingest: restore %s: %w", path, err)
	}
	return c, nil
}
