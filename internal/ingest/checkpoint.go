package ingest

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"hitlist6/internal/collector"
)

// Checkpointing is the pipeline's durability seam: Checkpoint writes
// the merged corpus's snapshot (see collector.Snapshot) after a full
// Quiesce, so the artifact provably contains every event flushed before
// the call; CheckpointFile adds the crash-safe file protocol (write to
// a temp file in the same directory, fsync, rename) so a torn write
// can never shadow the previous good checkpoint; RestoreFile is the
// other half, feeding Config.Seed on the next start.

// Checkpoint quiesces the pipeline and writes the merged corpus
// snapshot to w. Must not race with Close.
func (p *Pipeline) Checkpoint(w *bufio.Writer) error {
	p.Quiesce()
	if err := p.store.Snapshot(w); err != nil {
		return err
	}
	return w.Flush()
}

// AtomicWriteFile writes a file via the crash-safe protocol every
// durable artifact in this codebase shares: a temp file in the target's
// directory (so the rename is same-filesystem and atomic), buffered
// writes, flush, fsync, close, then rename. On any error the previous
// file at path — the last good checkpoint — is untouched. Returns the
// bytes written. Study checkpoints reuse this; keep crash-safety fixes
// here, in the one copy.
func AtomicWriteFile(path string, write func(w io.Writer) error) (int64, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds

	bw := bufio.NewWriterSize(tmp, 1<<20)
	err = write(bw)
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = tmp.Sync()
	}
	size := int64(0)
	if fi, statErr := tmp.Stat(); statErr == nil {
		size = fi.Size()
	}
	if closeErr := tmp.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, err
	}
	return size, nil
}

// CheckpointFile checkpoints to path atomically (see AtomicWriteFile)
// and returns the snapshot's size in bytes. Successful checkpoints
// feed the duration and bytes histograms — the distributions an
// operator watches to size the checkpoint cadence against the write
// stall it buys.
func (p *Pipeline) CheckpointFile(path string) (int64, error) {
	start := time.Now()
	size, err := AtomicWriteFile(path, func(w io.Writer) error {
		p.Quiesce()
		return p.store.Snapshot(w)
	})
	if err != nil {
		return 0, fmt.Errorf("ingest: checkpoint %s: %w", path, err)
	}
	p.metrics.checkpoints.Add(1)
	p.metrics.lastCheckpointUnix.Set(time.Now().Unix())
	p.metrics.lastCheckpointBytes.Set(size)
	p.tel.checkpointTime.ObserveDuration(time.Since(start))
	p.tel.checkpointVolume.Observe(float64(size))
	return size, nil
}

// deltaPath names the chain file carrying delta sequence seq.
func deltaPath(base string, seq uint64) string {
	return fmt.Sprintf("%s.delta.%06d", base, seq)
}

// CheckpointChain writes one checkpoint in the delta-chain protocol: a
// full snapshot to path when the chain needs (re)anchoring — no base
// yet, a previous write left the watermark ahead of the disk, or
// Config.CompactEvery deltas have accumulated — and otherwise only the
// record blocks dirtied since the last checkpoint, to
// path.delta.NNNNNN. Every file goes through AtomicWriteFile, so a torn
// write never shadows an earlier good one; a full checkpoint deletes
// the previous chain's delta files, which its base supersedes.
//
//lint:durable-path the chain protocol is what a crashed daemon restarts from
func (p *Pipeline) CheckpointChain(path string) (int64, error) {
	p.ckptMu.Lock()
	defer p.ckptMu.Unlock()
	start := time.Now()

	seq, based := p.store.CheckpointSeq()
	full := !based || p.chainBroken || seq >= uint64(p.cfg.CompactEvery)

	// marked tracks whether the corpus watermark advanced inside the
	// write: if it did and the file still failed (flush, fsync, rename),
	// the in-memory chain position is ahead of the disk and only a fresh
	// full checkpoint can re-anchor it.
	marked := false
	target := path
	write := func(w io.Writer) error {
		p.Quiesce()
		var err error
		if full {
			err = p.store.CheckpointFull(w)
		} else {
			err = p.store.CheckpointDelta(w)
		}
		if err == nil {
			marked = true
		}
		return err
	}
	if !full {
		target = deltaPath(path, seq+1)
	}
	size, err := AtomicWriteFile(target, write)
	if err != nil {
		if marked {
			p.chainBroken = true
		}
		return 0, fmt.Errorf("ingest: checkpoint %s: %w", target, err)
	}
	if full {
		p.chainBroken = false
		removeChainDeltas(path)
	} else {
		p.metrics.deltaCheckpoints.Add(1)
	}
	p.metrics.checkpoints.Add(1)
	p.metrics.lastCheckpointUnix.Set(time.Now().Unix())
	p.metrics.lastCheckpointBytes.Set(size)
	p.tel.checkpointTime.ObserveDuration(time.Since(start))
	p.tel.checkpointVolume.Observe(float64(size))
	return size, nil
}

// chainDeltaFiles maps delta sequence numbers to their files. Names
// that don't parse as a sequence (AtomicWriteFile temp litter from a
// crash) are not part of the chain and are ignored.
func chainDeltaFiles(path string) map[uint64]string {
	matches, _ := filepath.Glob(path + ".delta.*")
	files := make(map[uint64]string, len(matches))
	for _, m := range matches {
		suffix := m[len(path)+len(".delta."):]
		seq, err := strconv.ParseUint(suffix, 10, 64)
		if err != nil || seq == 0 {
			continue
		}
		files[seq] = m
	}
	return files
}

// removeChainDeltas best-effort deletes a superseded chain's delta
// files. A leftover is harmless: restore validates every delta against
// its parent, and a stale one fails that check instead of applying.
func removeChainDeltas(path string) {
	for _, f := range chainDeltaFiles(path) {
		os.Remove(f)
	}
}

// RestoreChainFiles loads a base checkpoint plus its delta chain: the
// restore half of CheckpointChain. Like RestoreFile, a missing base
// with no deltas is the empty start (nil, nil); deltas without a base,
// a gap in the sequence, or a delta that fails validation are errors —
// the chain is not trustworthy and the caller decides whether to start
// empty.
func RestoreChainFiles(path string) (*collector.Collector, error) {
	deltas := chainDeltaFiles(path)
	c, err := RestoreFile(path)
	if err != nil {
		return nil, err
	}
	if c == nil {
		if len(deltas) > 0 {
			return nil, fmt.Errorf("ingest: restore %s: %d delta files but no base checkpoint", path, len(deltas))
		}
		return nil, nil
	}
	maxSeq := uint64(0)
	for seq := range deltas {
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	for seq := uint64(1); seq <= maxSeq; seq++ {
		dp, ok := deltas[seq]
		if !ok {
			return nil, fmt.Errorf("ingest: restore %s: delta %06d missing from a chain of %d", path, seq, maxSeq)
		}
		f, err := os.Open(dp)
		if err != nil {
			return nil, fmt.Errorf("ingest: restore %s: %w", dp, err)
		}
		err = c.ApplyDelta(bufio.NewReaderSize(f, 1<<20))
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("ingest: restore %s: %w", dp, err)
		}
	}
	return c, nil
}

// RestoreFile loads a checkpoint written by CheckpointFile. A missing
// file is not an error — it returns (nil, nil), the empty-start case —
// while an unreadable or corrupt checkpoint returns the error for the
// caller to decide on (daemons log and start empty; batch runs abort).
func RestoreFile(path string) (*collector.Collector, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ingest: restore %s: %w", path, err)
	}
	defer f.Close()
	c, err := collector.OpenSnapshot(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("ingest: restore %s: %w", path, err)
	}
	return c, nil
}
