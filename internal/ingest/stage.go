package ingest

import (
	"fmt"
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/asdb"
	"hitlist6/internal/cardinality"
	"hitlist6/internal/collector"
	"hitlist6/internal/outage"
)

// Stage is a per-shard enrichment stage: Process runs inline on the
// shard worker for every event (no locking needed — each instance is
// private to one shard), and Merge folds another shard's instance into
// this one when snapshots land on the pipeline-level view. Merge must
// be commutative and associative so results are shard-count independent,
// and must leave the other instance unused afterwards.
type Stage interface {
	Name() string
	Process(ev Event)
	Merge(other Stage)
}

// StageFactory builds one private Stage instance per shard (plus one
// pipeline-level instance snapshots merge into).
type StageFactory func() Stage

// ---- Category stage ----

// CategoryStage tallies sightings per Figure-5 structural category: a
// live view of the addressing-strategy mix flowing past a vantage.
// Counts are per sighting, not per unique address (the latter needs the
// merged store).
type CategoryStage struct {
	Counts [addr.NumCategories]uint64
}

// Categories returns a CategoryStage factory.
func Categories() StageFactory {
	return func() Stage { return &CategoryStage{} }
}

// Name implements Stage.
func (s *CategoryStage) Name() string { return "categories" }

// Process implements Stage.
func (s *CategoryStage) Process(ev Event) {
	s.Counts[ev.Addr.IID().StructuralCategory()]++
}

// Merge implements Stage.
func (s *CategoryStage) Merge(other Stage) {
	o := other.(*CategoryStage)
	for i, n := range o.Counts {
		s.Counts[i] += n
	}
}

// ---- ASN stage ----

// ASNStage tallies sightings per origin AS, resolved against a routing
// table snapshot. Unrouted addresses count under ASN 0.
type ASNStage struct {
	db     *asdb.DB
	Counts map[asdb.ASN]uint64
}

// ASNs returns an ASNStage factory over the given routing DB.
func ASNs(db *asdb.DB) StageFactory {
	return func() Stage {
		return &ASNStage{db: db, Counts: make(map[asdb.ASN]uint64)}
	}
}

// Name implements Stage.
func (s *ASNStage) Name() string { return "asns" }

// Process implements Stage.
func (s *ASNStage) Process(ev Event) {
	asn, _ := s.db.OriginASN(ev.Addr)
	s.Counts[asn]++
}

// Merge implements Stage.
func (s *ASNStage) Merge(other Stage) {
	for asn, n := range other.(*ASNStage).Counts {
		s.Counts[asn] += n
	}
}

// ---- Cardinality stage ----

// HLLStage sketches unique-address cardinality per shard. At the
// paper's full scale (7.9 B uniques) the HLL union is the only
// affordable global unique count, since no single machine holds the
// exact address set.
type HLLStage struct {
	H *cardinality.HLL
}

// Cardinality returns an HLLStage factory at the given precision
// (see cardinality.NewHLL; 14 is the standard choice).
func Cardinality(precision uint8) StageFactory {
	return func() Stage {
		h, err := cardinality.NewHLL(precision)
		if err != nil {
			// Config error, surfaced at pipeline construction the first
			// time the factory runs.
			panic(err)
		}
		return &HLLStage{H: h}
	}
}

// Name implements Stage.
func (s *HLLStage) Name() string { return "cardinality" }

// Process implements Stage.
func (s *HLLStage) Process(ev Event) { s.H.AddAddr(ev.Addr) }

// Merge implements Stage.
func (s *HLLStage) Merge(other Stage) {
	// Same-precision by construction (one factory builds every
	// instance), so the only Merge error is impossible here.
	_ = s.H.Merge(other.(*HLLStage).H)
}

// ---- Outage-series stage ----

// OutageSeriesStage bins sightings into per-AS fixed-width time bins:
// outage.BuildSeries as an enrichment stage, so the passive outage
// detector consumes the same single ingest pass as every other analysis
// instead of replaying the world. Per-AS bin counts commute across
// addresses — exactly like the collector's per-address records — so
// shard instances merge by element-wise addition and the merged series
// is independent of the shard count.
//
// The stage runs in one of two modes. Window mode (OutageSeries) fixes
// [origin, end] up front and reproduces outage.BuildSeries over that
// window exactly. Live mode (OutageSeriesLive) has no window: bin 0
// anchors to the first event seen, aligned down to a bin boundary, and
// the series grows with the stream — the rolling shape a serving daemon
// detects over.
type OutageSeriesStage struct {
	db     *asdb.DB
	binSec int64
	// origin is the Unix second of bin 0; anchored reports whether it
	// has been chosen (window mode: at construction; live: first event).
	origin   int64
	originT  time.Time
	anchored bool
	// bins caps the series length in window mode; 0 grows with the
	// stream. endUnix is the window end, for Series().Complete.
	bins    int
	endUnix int64
	counts  map[asdb.ASN][]int
}

// outageBinSeconds validates the stage's bin width. The event stream
// carries Unix-second timestamps, so the bin must be a positive whole
// number of seconds; anything else panics at pipeline construction
// (a config error, like Cardinality's precision).
func outageBinSeconds(bin time.Duration) int64 {
	if bin <= 0 || bin%time.Second != 0 {
		panic(fmt.Sprintf("ingest: outage bin %v must be a positive whole number of seconds", bin))
	}
	return int64(bin / time.Second)
}

// OutageSeries returns a window-mode OutageSeriesStage factory over
// [origin, end] with the given bin width, resolving origin ASes against
// db. The merged series equals outage.BuildSeries(w, bin) for the same
// window and query stream.
func OutageSeries(db *asdb.DB, origin, end time.Time, bin time.Duration) StageFactory {
	binSec := outageBinSeconds(bin)
	bins := int(end.Sub(origin)/bin) + 1
	return func() Stage {
		return &OutageSeriesStage{
			db:       db,
			binSec:   binSec,
			origin:   origin.Unix(),
			originT:  origin,
			anchored: true,
			bins:     bins,
			endUnix:  end.Unix(),
			counts:   make(map[asdb.ASN][]int),
		}
	}
}

// OutageSeriesLive returns a live-mode OutageSeriesStage factory: no
// fixed window, bin 0 anchored to the first event, series growing with
// the stream. This is what cmd/ingestd runs for live detection.
func OutageSeriesLive(db *asdb.DB, bin time.Duration) StageFactory {
	binSec := outageBinSeconds(bin)
	return func() Stage {
		return &OutageSeriesStage{
			db:     db,
			binSec: binSec,
			counts: make(map[asdb.ASN][]int),
		}
	}
}

// Name implements Stage.
func (s *OutageSeriesStage) Name() string { return "outage" }

// Process implements Stage.
func (s *OutageSeriesStage) Process(ev Event) {
	as := s.db.Lookup(ev.Addr)
	if as == nil {
		return // unrouted, like BuildSeries
	}
	if !s.anchored {
		if ev.Time < 0 {
			return // pre-epoch garbage cannot anchor an aligned origin
		}
		s.anchor(ev.Time / s.binSec * s.binSec)
	}
	if ev.Time < s.origin && s.bins == 0 {
		if ev.Time < 0 {
			return
		}
		s.rewind(ev.Time / s.binSec * s.binSec)
	}
	// Truncation toward zero matches BuildSeries: an event less than one
	// bin before origin still lands in bin 0.
	idx := int((ev.Time - s.origin) / s.binSec)
	if idx < 0 || (s.bins > 0 && idx >= s.bins) {
		return
	}
	bucket := s.counts[as.ASN]
	if len(bucket) <= idx {
		bucket = append(bucket, make([]int, idx+1-len(bucket))...)
	}
	bucket[idx]++
	s.counts[as.ASN] = bucket
}

func (s *OutageSeriesStage) anchor(origin int64) {
	s.origin = origin
	s.originT = time.Unix(origin, 0).UTC()
	s.anchored = true
}

// rewind moves bin 0 back to an earlier aligned origin, prepending
// zeros to every AS's bins (live mode only; window origins are fixed).
func (s *OutageSeriesStage) rewind(newOrigin int64) {
	delta := int((s.origin - newOrigin) / s.binSec)
	if delta <= 0 {
		return
	}
	for asn, c := range s.counts {
		nc := make([]int, delta+len(c))
		copy(nc[delta:], c)
		s.counts[asn] = nc
	}
	s.anchor(newOrigin)
}

// Merge implements Stage. Live-mode shards may have anchored to
// different (bin-aligned) origins; counts are keyed by absolute time,
// so reconciling to the earliest origin keeps Merge commutative and
// associative.
func (s *OutageSeriesStage) Merge(other Stage) {
	o := other.(*OutageSeriesStage)
	if !o.anchored {
		return
	}
	if !s.anchored {
		s.anchor(o.origin)
		s.counts = o.counts
		return
	}
	if o.origin < s.origin {
		s.rewind(o.origin)
	}
	off := int((o.origin - s.origin) / s.binSec)
	for asn, oc := range o.counts {
		mine := s.counts[asn]
		if need := off + len(oc); len(mine) < need {
			mine = append(mine, make([]int, need-len(mine))...)
		}
		for i, n := range oc {
			mine[off+i] += n
		}
		s.counts[asn] = mine
	}
}

// AddSeries folds a previously materialized Series back into the
// stage: the restore half of study checkpointing, inverse to Series().
// The stage must share the series' bin width, and in window mode its
// origin; counts add, so seeding an empty stage reproduces the
// checkpointed state exactly and stage merges afterwards keep
// commuting.
func (s *OutageSeriesStage) AddSeries(sr *outage.Series) error {
	if sr == nil || sr.Bins == 0 {
		return nil
	}
	if int64(sr.Bin/time.Second) != s.binSec || sr.Bin%time.Second != 0 {
		return fmt.Errorf("ingest: series bin %v does not match stage bin %ds", sr.Bin, s.binSec)
	}
	origin := sr.Origin.Unix()
	if !s.anchored {
		s.anchor(origin)
	} else if origin != s.origin {
		return fmt.Errorf("ingest: series origin %d does not match stage origin %d", origin, s.origin)
	}
	if s.bins > 0 && sr.Bins > s.bins {
		return fmt.Errorf("ingest: series spans %d bins, stage window holds %d", sr.Bins, s.bins)
	}
	for asn, bins := range sr.ByAS {
		// Trim the trailing zeros Series() padded on, keeping the ragged
		// shape live accumulation produces.
		n := len(bins)
		for n > 0 && bins[n-1] == 0 {
			n--
		}
		if n == 0 {
			continue
		}
		mine := s.counts[asn]
		if len(mine) < n {
			mine = append(mine, make([]int, n-len(mine))...)
		}
		for i, v := range bins[:n] {
			mine[i] += v
		}
		s.counts[asn] = mine
	}
	return nil
}

// Series materializes the accumulated bins as an outage.Series, deep-
// copied so callers may keep it while the pipeline merges further
// snapshots. In window mode the result equals outage.BuildSeries over
// the same window; in live mode it spans bin 0 through the newest
// observed bin, with that newest bin marked incomplete (it is still
// filling).
func (s *OutageSeriesStage) Series() *outage.Series {
	bins := s.bins
	if bins == 0 {
		for _, c := range s.counts {
			if len(c) > bins {
				bins = len(c)
			}
		}
	}
	out := &outage.Series{
		Origin: s.originT,
		Bin:    time.Duration(s.binSec) * time.Second,
		Bins:   bins,
		ByAS:   make(map[asdb.ASN][]int, len(s.counts)),
	}
	if s.bins > 0 {
		out.Complete = int((s.endUnix - s.origin) / s.binSec)
	} else if bins > 0 {
		out.Complete = bins - 1
	}
	for asn, c := range s.counts {
		full := make([]int, bins)
		copy(full, c)
		out.ByAS[asn] = full
	}
	return out
}

// ---- Day-slice stage ----

// DaySliceStage collects the sightings of one 24-hour window into its
// own collector: the paper's single-day analyses (Figures 4b and 5)
// as an inline enrichment instead of a second replay pass.
type DaySliceStage struct {
	start, end int64
	Col        *collector.Collector
}

// DaySlice returns a DaySliceStage factory for [start, end) in Unix
// seconds.
func DaySlice(start, end int64) StageFactory {
	return func() Stage {
		return &DaySliceStage{start: start, end: end, Col: collector.New()}
	}
}

// Name implements Stage.
func (s *DaySliceStage) Name() string { return "dayslice" }

// Process implements Stage.
func (s *DaySliceStage) Process(ev Event) {
	if ev.Time >= s.start && ev.Time < s.end {
		s.Col.ObserveUnix(ev.Addr, ev.Time, int(ev.Server))
	}
}

// Merge implements Stage. Stage merges own their operand (the contract
// leaves other unused afterwards), so the collector's chunk-adopting
// Absorb applies rather than the deep-copying Merge.
func (s *DaySliceStage) Merge(other Stage) {
	s.Col.Absorb(other.(*DaySliceStage).Col)
}
