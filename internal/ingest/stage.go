package ingest

import (
	"hitlist6/internal/addr"
	"hitlist6/internal/asdb"
	"hitlist6/internal/cardinality"
	"hitlist6/internal/collector"
)

// Stage is a per-shard enrichment stage: Process runs inline on the
// shard worker for every event (no locking needed — each instance is
// private to one shard), and Merge folds another shard's instance into
// this one when snapshots land on the pipeline-level view. Merge must
// be commutative and associative so results are shard-count independent,
// and must leave the other instance unused afterwards.
type Stage interface {
	Name() string
	Process(ev Event)
	Merge(other Stage)
}

// StageFactory builds one private Stage instance per shard (plus one
// pipeline-level instance snapshots merge into).
type StageFactory func() Stage

// ---- Category stage ----

// CategoryStage tallies sightings per Figure-5 structural category: a
// live view of the addressing-strategy mix flowing past a vantage.
// Counts are per sighting, not per unique address (the latter needs the
// merged store).
type CategoryStage struct {
	Counts [addr.NumCategories]uint64
}

// Categories returns a CategoryStage factory.
func Categories() StageFactory {
	return func() Stage { return &CategoryStage{} }
}

// Name implements Stage.
func (s *CategoryStage) Name() string { return "categories" }

// Process implements Stage.
func (s *CategoryStage) Process(ev Event) {
	s.Counts[ev.Addr.IID().StructuralCategory()]++
}

// Merge implements Stage.
func (s *CategoryStage) Merge(other Stage) {
	o := other.(*CategoryStage)
	for i, n := range o.Counts {
		s.Counts[i] += n
	}
}

// ---- ASN stage ----

// ASNStage tallies sightings per origin AS, resolved against a routing
// table snapshot. Unrouted addresses count under ASN 0.
type ASNStage struct {
	db     *asdb.DB
	Counts map[asdb.ASN]uint64
}

// ASNs returns an ASNStage factory over the given routing DB.
func ASNs(db *asdb.DB) StageFactory {
	return func() Stage {
		return &ASNStage{db: db, Counts: make(map[asdb.ASN]uint64)}
	}
}

// Name implements Stage.
func (s *ASNStage) Name() string { return "asns" }

// Process implements Stage.
func (s *ASNStage) Process(ev Event) {
	asn, _ := s.db.OriginASN(ev.Addr)
	s.Counts[asn]++
}

// Merge implements Stage.
func (s *ASNStage) Merge(other Stage) {
	for asn, n := range other.(*ASNStage).Counts {
		s.Counts[asn] += n
	}
}

// ---- Cardinality stage ----

// HLLStage sketches unique-address cardinality per shard. At the
// paper's full scale (7.9 B uniques) the HLL union is the only
// affordable global unique count, since no single machine holds the
// exact address set.
type HLLStage struct {
	H *cardinality.HLL
}

// Cardinality returns an HLLStage factory at the given precision
// (see cardinality.NewHLL; 14 is the standard choice).
func Cardinality(precision uint8) StageFactory {
	return func() Stage {
		h, err := cardinality.NewHLL(precision)
		if err != nil {
			// Config error, surfaced at pipeline construction the first
			// time the factory runs.
			panic(err)
		}
		return &HLLStage{H: h}
	}
}

// Name implements Stage.
func (s *HLLStage) Name() string { return "cardinality" }

// Process implements Stage.
func (s *HLLStage) Process(ev Event) { s.H.AddAddr(ev.Addr) }

// Merge implements Stage.
func (s *HLLStage) Merge(other Stage) {
	// Same-precision by construction (one factory builds every
	// instance), so the only Merge error is impossible here.
	_ = s.H.Merge(other.(*HLLStage).H)
}

// ---- Day-slice stage ----

// DaySliceStage collects the sightings of one 24-hour window into its
// own collector: the paper's single-day analyses (Figures 4b and 5)
// as an inline enrichment instead of a second replay pass.
type DaySliceStage struct {
	start, end int64
	Col        *collector.Collector
}

// DaySlice returns a DaySliceStage factory for [start, end) in Unix
// seconds.
func DaySlice(start, end int64) StageFactory {
	return func() Stage {
		return &DaySliceStage{start: start, end: end, Col: collector.New()}
	}
}

// Name implements Stage.
func (s *DaySliceStage) Name() string { return "dayslice" }

// Process implements Stage.
func (s *DaySliceStage) Process(ev Event) {
	if ev.Time >= s.start && ev.Time < s.end {
		s.Col.ObserveUnix(ev.Addr, ev.Time, int(ev.Server))
	}
}

// Merge implements Stage.
func (s *DaySliceStage) Merge(other Stage) {
	s.Col.Merge(other.(*DaySliceStage).Col)
}
