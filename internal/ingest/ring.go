package ingest

import (
	"runtime"
	"sync/atomic"
	"time"
)

// spscRing is a bounded single-producer/single-consumer queue of event
// batches: a power-of-two slot array indexed by free-running head/tail
// counters, each counter alone on its cache line so the producer and
// consumer never false-share. Push and pop on the fast path are one
// atomic load plus one atomic store — no locks, no channel send, no
// goroutine parking — which is what Config.ShardQueue = "spsc" buys a
// single-producer daemon over the default buffered channel.
//
// The contract is strict: exactly one goroutine pushes (and eventually
// closes), exactly one pops. The pipeline enforces the consumer side
// (one worker per shard); the producer side is the caller's promise —
// every ingestd source is a single reader loop, so it holds there by
// construction.
//
// Blocking is cooperative. A consumer that finds the ring empty
// publishes sleeping=true, re-checks (the store and the re-check load
// are both sequentially consistent, so a concurrent push cannot slip
// between them unseen), then parks on the 1-buffered notify channel.
// A producer that observes sleeping=true after publishing its slot
// claims the flag back via CAS and drops a token in notify — at most
// one token is ever in flight, and a stale token costs the consumer
// one spurious loop iteration, never a lost wakeup.
type spscRing struct {
	slots  [][]Event
	mask   uint64
	notify chan struct{}

	_    [64]byte // keep head off the producer's line
	head atomic.Uint64
	_    [64]byte
	tail atomic.Uint64
	_    [64]byte

	closed   atomic.Bool
	sleeping atomic.Bool
}

// newSPSCRing returns a ring with capacity >= depth batches (rounded up
// to a power of two, minimum 2).
func newSPSCRing(depth int) *spscRing {
	n := 2
	for n < depth {
		n <<= 1
	}
	return &spscRing{
		slots:  make([][]Event, n),
		mask:   uint64(n - 1),
		notify: make(chan struct{}, 1),
	}
}

// tryPush publishes one batch if a slot is free. Producer-only.
func (r *spscRing) tryPush(batch []Event) bool {
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.slots)) {
		return false
	}
	r.slots[t&r.mask] = batch
	r.tail.Store(t + 1)
	r.wake()
	return true
}

// push publishes one batch, spinning then napping while the ring is
// full — the blocking-admission (backpressure) flavor of tryPush. A
// full ring implies the consumer is awake and draining, so the wait is
// bounded by one batch's processing time.
func (r *spscRing) push(batch []Event) {
	for spins := 0; !r.tryPush(batch); spins++ {
		if spins < 8 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// tryPop takes the next batch if one is available. Consumer-only.
func (r *spscRing) tryPop() ([]Event, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return nil, false
	}
	batch := r.slots[h&r.mask]
	r.slots[h&r.mask] = nil
	r.head.Store(h + 1)
	return batch, true
}

// len reports the current depth in batches. Safe from any goroutine;
// exact for the producer and consumer, a point-in-time estimate for
// observers (the telemetry gauges).
func (r *spscRing) len() int {
	return int(r.tail.Load() - r.head.Load())
}

// close marks the stream ended and wakes the consumer so it can observe
// the flag. Producer-side; push must not be called after close.
func (r *spscRing) close() {
	r.closed.Store(true)
	r.wake()
}

// wake hands the consumer a token iff it has declared intent to sleep.
// The CAS makes producer and consumer agree on who owns the flag; the
// non-blocking send is safe because only a successful CAS ever sends
// and the buffer holds the one token that can result.
func (r *spscRing) wake() {
	if r.sleeping.Load() && r.sleeping.CompareAndSwap(true, false) {
		select {
		case r.notify <- struct{}{}:
		default:
		}
	}
}
