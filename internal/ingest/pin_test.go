package ingest

import "testing"

// TestPinCPUsPipeline runs a pinned pipeline end to end. Affinity may
// legitimately be refused (non-Linux, seccomp-restricted containers) —
// the contract is that PinCPUs never affects results, only placement,
// with failures surfaced through the ingest_pin_errors_total counter
// rather than through the event path.
func TestPinCPUsPipeline(t *testing.T) {
	events := testEvents(t, 0.02, 4)
	cfg := DefaultConfig(2)
	cfg.PinCPUs = true
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Ingest(events)
	merged := p.Close()
	if merged.TotalObservations() != uint64(len(events)) {
		t.Errorf("observations %d, want %d", merged.TotalObservations(), len(events))
	}
	if n := p.metrics.pinErrors.Value(); n > uint64(p.NumShards()) {
		t.Errorf("pinErrors %d exceeds shard count %d", n, p.NumShards())
	} else if n > 0 {
		t.Logf("pinning unavailable here: %d/%d workers unpinned", n, p.NumShards())
	}
}
