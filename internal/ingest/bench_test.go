package ingest

import (
	"fmt"
	"sync"
	"testing"

	"hitlist6/internal/collector"
	"hitlist6/internal/simnet"
)

// The ingest benchmarks answer the scaling question directly: how fast
// can one machine fold the simnet event stream into the observation
// store, single-threaded versus sharded? The stream is materialized
// once (vantage pre-assigned) so every variant measures pure ingestion,
// not simulation. Run with
//
//	go test -bench BenchmarkIngest ./internal/ingest
//
// and compare the events/sec metric across shard counts; speedup over
// BenchmarkIngestSerial tracks the core count (on a single-core
// machine the sharded variants only add scheduling overhead).
var (
	benchOnce   sync.Once
	benchStream []Event
	benchErr    error
)

func benchEvents(b *testing.B) []Event {
	b.Helper()
	benchOnce.Do(func() {
		cfg := simnet.DefaultConfig(23, 0.2)
		cfg.Days = 60
		w, err := simnet.Build(cfg)
		if err != nil {
			benchErr = err
			return
		}
		i := 0
		w.GenerateQueries(func(q simnet.Query) {
			benchStream = append(benchStream, Event{
				Addr:   q.Addr,
				Time:   q.Time.Unix(),
				Server: int32(i % 27),
			})
			i++
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	if len(benchStream) == 0 {
		b.Fatal("empty benchmark stream")
	}
	return benchStream
}

// BenchmarkIngestSerial is the pre-pipeline baseline: the single
// goroutine folding every event into one collector, exactly what the
// seed's ntppool.Run did.
func BenchmarkIngestSerial(b *testing.B) {
	events := benchEvents(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := collector.New()
		for _, ev := range events {
			c.ObserveUnix(ev.Addr, ev.Time, int(ev.Server))
		}
		if c.NumAddrs() == 0 {
			b.Fatal("empty corpus")
		}
	}
	b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkIngest measures the sharded pipeline end to end (producers,
// batching, shard workers, final merge) at increasing shard counts.
func BenchmarkIngest(b *testing.B) {
	events := benchEvents(b)
	for _, shards := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			producers := shards / 2
			if producers < 1 {
				producers = 1
			}
			if producers > 4 {
				producers = 4
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := New(DefaultConfig(shards))
				if err != nil {
					b.Fatal(err)
				}
				feedConcurrently(p, events, producers)
				merged := p.Close()
				if merged.TotalObservations() != uint64(len(events)) {
					b.Fatalf("lost events: %d != %d",
						merged.TotalObservations(), len(events))
				}
			}
			b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// BenchmarkIngestEnriched is BenchmarkIngest with the full enrichment
// stack (categories + HLL cardinality) inline, the shape a production
// vantage runs.
func BenchmarkIngestEnriched(b *testing.B) {
	events := benchEvents(b)
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig(shards)
				cfg.Stages = []StageFactory{Categories(), Cardinality(14)}
				p, err := New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				feedConcurrently(p, events, max(1, shards/2))
				p.Close()
			}
			b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// BenchmarkParseEventBytes is the zero-allocation claim of the wire
// parser, asserted, not just reported: decoding a representative event
// line straight from bytes must stay at 0 allocs/op (run with
// -benchmem to see the column; the body re-checks via ReportAllocs'
// underlying counters regardless).
func BenchmarkParseEventBytes(b *testing.B) {
	line := []byte("1643068800 2001:db8:85a3::8a2e:370:7334 26")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseEventBytes(line); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if !raceEnabled && b.N > 100 {
		if avg := testing.AllocsPerRun(100, func() {
			_, _ = ParseEventBytes(line)
		}); avg != 0 {
			b.Fatalf("ParseEventBytes allocates %.1f/op, want 0", avg)
		}
	}
}

// BenchmarkIngestQueue compares the two shard-queue implementations
// under the single-producer shape they both support — the honest
// apples-to-apples read on what the spsc ring buys over a buffered
// channel (the worker loops differ only in queue mechanics).
func BenchmarkIngestQueue(b *testing.B) {
	events := benchEvents(b)
	for _, queue := range []string{"chan", "spsc"} {
		b.Run("queue="+queue, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig(4)
				cfg.ShardQueue = queue
				p, err := New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				feedConcurrently(p, events, 1)
				merged := p.Close()
				if merged.TotalObservations() != uint64(len(events)) {
					b.Fatalf("lost events: %d != %d",
						merged.TotalObservations(), len(events))
				}
			}
			b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

func feedConcurrently(p *Pipeline, events []Event, producers int) {
	var wg sync.WaitGroup
	chunk := (len(events) + producers - 1) / producers
	for pi := 0; pi < producers; pi++ {
		lo := pi * chunk
		hi := min(lo+chunk, len(events))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(part []Event) {
			defer wg.Done()
			bat := p.NewBatcher()
			for _, ev := range part {
				bat.Add(ev)
			}
			bat.Flush()
		}(events[lo:hi])
	}
	wg.Wait()
}

// BenchmarkTelemetryOverhead proves the per-shard/per-stage
// instrumentation budget: the telemetry=off variant runs the identical
// pipeline with the unexported noHotPathTelemetry knob set — the same
// loop shape minus the clock reads and histogram observations — so the
// events/sec delta between the two sub-benchmarks is exactly the
// observe-path cost of telemetry. The stage-major batch loop amortizes
// timing to two clock reads per stage per batch, which must keep the
// regression under 2%.
func BenchmarkTelemetryOverhead(b *testing.B) {
	events := benchEvents(b)
	for _, tc := range []struct {
		name string
		off  bool
	}{
		{"telemetry=off", true},
		{"telemetry=on", false},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig(4)
				cfg.Stages = []StageFactory{Categories(), Cardinality(14)}
				cfg.noHotPathTelemetry = tc.off
				p, err := New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				feedConcurrently(p, events, 2)
				merged := p.Close()
				if merged.TotalObservations() != uint64(len(events)) {
					b.Fatalf("lost events: %d != %d",
						merged.TotalObservations(), len(events))
				}
			}
			b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}
