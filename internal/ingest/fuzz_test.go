package ingest

import (
	"strings"
	"testing"

	"hitlist6/internal/addr"
	"hitlist6/internal/collector"
)

// FuzzParseEvent pins the stream codec's safety and strictness:
//
//   - never panic, on any input;
//   - every accepted line satisfies the event invariants (server in
//     [-1, MaxServers));
//   - accepted events round-trip: AppendText(ParseEvent(line)) parses
//     back to the identical event — the codec accepts nothing it could
//     not itself have written (modulo IPv6 textual aliases and
//     whitespace, which must normalize, not drift).
//
// Run continuously with:
//
//	go test ./internal/ingest -run '^$' -fuzz '^FuzzParseEvent$' -fuzztime 30s
func FuzzParseEvent(f *testing.F) {
	f.Add("1643068800 2001:db8::1 3")
	f.Add("1643068800 2001:db8::1")
	f.Add("-5 ::1 0")
	f.Add("+5 ::1 0")
	f.Add("1643068800 2001:db8::1 -1")
	f.Add("1643068800 2001:db8::1 31")
	f.Add("1643068800 2001:db8::1 32")
	f.Add("9223372036854775807 ff02::fb 26")
	f.Add("9223372036854775808 ::")
	f.Add("   ")
	f.Add("\t\r\n")
	f.Add("1643068800  2001:0db8:0000:0000:0000:0000:0000:0001  07")
	f.Add("1643068800 ::ffff:192.0.2.1 1")
	f.Add("-0 :: 0")
	f.Add("1 2001:db8::1 +3")

	f.Fuzz(func(t *testing.T, line string) {
		ev, err := ParseEvent(line)
		if err != nil {
			return
		}
		if ev.Server < -1 || ev.Server >= collector.MaxServers {
			t.Fatalf("accepted server index %d from %q", ev.Server, line)
		}
		// Round trip: what we accepted must re-encode and re-parse to the
		// same event.
		enc := string(ev.AppendText(nil))
		if !strings.HasSuffix(enc, "\n") {
			t.Fatalf("AppendText emitted no newline for %q", line)
		}
		again, err := ParseEvent(strings.TrimSuffix(enc, "\n"))
		if err != nil {
			t.Fatalf("re-encoding of accepted line %q does not parse: %q: %v", line, enc, err)
		}
		if again != ev {
			t.Fatalf("round trip drifted: %q -> %+v -> %q -> %+v", line, ev, enc, again)
		}
	})
}

// TestParseEventStrict spells out the over-accepts the fuzz property
// closed: codec-alien spellings that strconv would have waved through.
func TestParseEventStrict(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"1643068800",
		"1643068800 2001:db8::1 3 4",
		"+1643068800 2001:db8::1",     // '+' timestamp: AppendText never writes it
		"1643068800 2001:db8::1 +3",   // '+' server
		"-0 2001:db8::1",              // negative zero
		"1643068800 2001:db8::1 -2",   // below the -1 sentinel
		"1643068800 2001:db8::1 32",   // at MaxServers: would saturate
		"1643068800 2001:db8::1 9999", // far past the mask
		"0x10 2001:db8::1",
		"1_0 2001:db8::1",
		"1643068800 not-an-address",
		"1643068800 2001:db8::1 three",
		"99999999999999999999 2001:db8::1", // i64 overflow
	}
	for _, line := range bad {
		if ev, err := ParseEvent(line); err == nil {
			t.Errorf("ParseEvent(%q) accepted: %+v", line, ev)
		}
	}

	good := map[string]Event{
		"1643068800 2001:db8::1 3":  {Addr: addr.MustParse("2001:db8::1"), Time: 1643068800, Server: 3},
		"1643068800 2001:db8::1":    {Addr: addr.MustParse("2001:db8::1"), Time: 1643068800, Server: -1},
		"1643068800 2001:db8::1 -1": {Addr: addr.MustParse("2001:db8::1"), Time: 1643068800, Server: -1},
		"-86400 ::1 0":              {Addr: addr.MustParse("::1"), Time: -86400, Server: 0},
		"007 2001:db8::1 031":       {Addr: addr.MustParse("2001:db8::1"), Time: 7, Server: 31},
		" 1643068800\t2001:db8::1 ": {Addr: addr.MustParse("2001:db8::1"), Time: 1643068800, Server: -1},
	}
	for line, want := range good {
		ev, err := ParseEvent(line)
		if err != nil {
			t.Errorf("ParseEvent(%q): %v", line, err)
			continue
		}
		if ev != want {
			t.Errorf("ParseEvent(%q) = %+v, want %+v", line, ev, want)
		}
	}
}
