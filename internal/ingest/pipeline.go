package ingest

import (
	"fmt"
	"sync"
	"time"

	"hitlist6/internal/collector"
	"hitlist6/internal/telemetry"
)

// Pipeline is the sharded ingestion engine. Producers obtain Batchers
// and push Events; each event hashes to one of N shards, whose worker
// goroutine folds it into a private collector plus the configured
// enrichment stages, entirely lock-free. Snapshots (periodic, on
// demand, and at Close) hand the private state to a single merger
// goroutine that folds it into the Store — the one writer the
// concurrency model allows — so readers always have a consistent,
// slightly-stale corpus without ever touching the hot path.
type Pipeline struct {
	cfg   Config
	store *collector.Store

	shards []*shard
	merge  chan shardSnapshot

	// mergedStages[i] accumulates every shard's instance of
	// cfg.Stages[i]; guarded by stageMu (written by the merger, read by
	// StageView).
	stageMu      sync.Mutex
	mergedStages []Stage

	metrics  Metrics
	tel      pipelineTelemetry
	registry *telemetry.Registry

	workersWG sync.WaitGroup
	mergerWG  sync.WaitGroup
	tickerWG  sync.WaitGroup
	stopTick  chan struct{}

	closeOnce sync.Once
	result    *collector.Collector

	// ckptMu serializes delta-chain checkpoints (the ticker plus any on
	// -demand CheckpointChain calls); chainBroken forces the next chain
	// checkpoint to be full after a write advanced the corpus's watermark
	// without landing durably on disk.
	ckptMu      sync.Mutex
	chainBroken bool

	// free recycles batch backing arrays between producers and workers.
	// A plain channel, not a sync.Pool: Put-ting a slice into a Pool
	// boxes the slice header into an interface — one heap allocation per
	// batch, exactly the garbage the recycling exists to avoid. A
	// buffered channel of slice headers allocates nothing in steady
	// state; when it runs empty the producer falls back to make.
	free chan []Event
}

// shard is one worker's private world: its inbound batch queue (a
// buffered channel or an spsc ring, per Config.ShardQueue), a snapshot
// doorbell, and the lock-free state it owns. idx is the shard's index,
// the label its telemetry series carry.
type shard struct {
	idx    int
	in     chan []Event // ShardQueue "chan"; nil when ring is set
	ring   *spscRing    // ShardQueue "spsc"; nil when in is set
	snap   chan chan struct{}
	col    *collector.Collector
	stages []Stage
}

// queueDepth reports the shard queue's current depth in batches,
// whichever queue kind backs it.
func (s *shard) queueDepth() int {
	if s.ring != nil {
		return s.ring.len()
	}
	return len(s.in)
}

// enqueue hands a batch to the shard with blocking admission.
func (s *shard) enqueue(batch []Event) {
	if s.ring != nil {
		s.ring.push(batch)
		return
	}
	s.in <- batch
}

// tryEnqueue hands a batch to the shard without blocking; reports
// whether the queue accepted it.
func (s *shard) tryEnqueue(batch []Event) bool {
	if s.ring != nil {
		return s.ring.tryPush(batch)
	}
	select {
	case s.in <- batch:
		return true
	default:
		return false
	}
}

// shardSnapshot is the unit handed to the merger goroutine. A non-nil
// barrier (and nothing else) marks a merger fence: the merge channel is
// FIFO and the merger is the only consumer, so the barrier closing
// proves every snapshot enqueued before it has been folded in.
type shardSnapshot struct {
	col     *collector.Collector
	stages  []Stage
	barrier chan struct{}
}

// New builds and starts a pipeline. The returned pipeline is running:
// obtain Batchers (or call Ingest) to feed it, and Close to finish.
func New(cfg Config) (*Pipeline, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:      cfg,
		store:    collector.NewStore(),
		merge:    make(chan shardSnapshot, cfg.Shards),
		stopTick: make(chan struct{}),
	}
	p.metrics.start = time.Now()
	if cfg.Seed != nil {
		// The restored corpus lands before any event flows; ApplyShard
		// into the empty store is a wholesale adoption, not a merge.
		p.store.ApplyShard(cfg.Seed)
		cfg.Seed = nil
		p.cfg.Seed = nil
	}
	// Enough recycled batches for every queue slot plus one in flight on
	// each side; beyond that, putBatch lets extras go to the GC.
	p.free = make(chan []Event, cfg.Shards*(cfg.QueueDepth+2))
	p.mergedStages = make([]Stage, len(cfg.Stages))
	for i, f := range cfg.Stages {
		p.mergedStages[i] = f()
	}
	p.shards = make([]*shard, cfg.Shards)
	for i := range p.shards {
		s := &shard{
			idx:  i,
			snap: make(chan chan struct{}, 1),
			col:  collector.New(),
		}
		if cfg.ShardQueue == "spsc" {
			s.ring = newSPSCRing(cfg.QueueDepth)
		} else {
			s.in = make(chan []Event, cfg.QueueDepth)
		}
		s.stages = make([]Stage, len(cfg.Stages))
		for j, f := range cfg.Stages {
			s.stages[j] = f()
		}
		p.shards[i] = s
	}
	p.registry = cfg.Registry
	if p.registry == nil {
		p.registry = telemetry.NewRegistry()
	}
	p.initTelemetry(p.registry)
	for _, s := range p.shards {
		p.workersWG.Add(1)
		go p.runShard(s)
	}
	p.mergerWG.Add(1)
	go p.runMerger()
	if cfg.SnapshotInterval > 0 {
		p.tickerWG.Add(1)
		go p.runTicker(cfg.SnapshotInterval)
	}
	if cfg.CheckpointInterval > 0 {
		p.tickerWG.Add(1)
		go p.runCheckpointTicker(cfg.CheckpointInterval)
	}
	return p, nil
}

// Store returns the live merged view. It is empty until the first
// snapshot lands (SnapshotInterval, SnapshotNow, or Close).
func (p *Pipeline) Store() *collector.Store { return p.store }

// Registry returns the telemetry registry the pipeline's metrics live
// in: Config.Registry when one was supplied, else the pipeline's
// private registry.
func (p *Pipeline) Registry() *telemetry.Registry { return p.registry }

// NumShards returns the shard count in effect.
func (p *Pipeline) NumShards() int { return len(p.shards) }

// runShard is one worker loop: drain batches, fold events, answer
// snapshot doorbells. The channel and ring queues get separate loops —
// the channel loop is a plain select, the ring loop implements the
// sleep/wake protocol — so the chan-vs-spsc benchmark compares queue
// mechanics, not loop rewrites.
func (p *Pipeline) runShard(s *shard) {
	defer p.workersWG.Done()
	if p.cfg.PinCPUs {
		if err := pinToCPU(s.idx); err != nil {
			p.metrics.pinErrors.Add(1)
		}
	}
	if s.ring != nil {
		p.runShardRing(s)
		return
	}
	for {
		select {
		case batch, ok := <-s.in:
			if !ok {
				// Producer side closed: push the final state and exit.
				p.merge <- shardSnapshot{col: s.col, stages: s.stages}
				s.col, s.stages = nil, nil
				return
			}
			p.processBatch(s, batch)
		case done := <-s.snap:
			// Drain already-queued batches first so everything flushed
			// before SnapshotNow was called is part of the handoff.
		drain:
			for {
				select {
				case batch, ok := <-s.in:
					if !ok {
						close(done)
						p.merge <- shardSnapshot{col: s.col, stages: s.stages}
						s.col, s.stages = nil, nil
						return
					}
					p.processBatch(s, batch)
				default:
					break drain
				}
			}
			p.merge <- shardSnapshot{col: s.col, stages: s.stages}
			s.col = collector.New()
			s.stages = make([]Stage, len(p.cfg.Stages))
			for j, f := range p.cfg.Stages {
				s.stages[j] = f()
			}
			close(done)
		}
	}
}

// runShardRing is the worker loop over an spsc ring. Fast path: spin
// tryPop and fold. Empty: answer any pending snapshot doorbell, then
// park under the ring's sleep/wake protocol — publish sleep intent,
// re-check for work that raced the declaration, and only then block on
// the doorbells. Shutdown mirrors the channel loop: once the ring is
// closed and drained, push the final state and exit.
func (p *Pipeline) runShardRing(s *shard) {
	r := s.ring
	for {
		if batch, ok := r.tryPop(); ok {
			p.processBatch(s, batch)
			continue
		}
		select {
		case done := <-s.snap:
			p.snapshotShard(s, done)
			continue
		default:
		}
		if r.closed.Load() {
			if batch, ok := r.tryPop(); ok {
				// A push slipped in between the empty tryPop and the
				// closed check; fold it before finishing.
				p.processBatch(s, batch)
				continue
			}
			p.merge <- shardSnapshot{col: s.col, stages: s.stages}
			s.col, s.stages = nil, nil
			return
		}
		r.sleeping.Store(true)
		if r.len() != 0 || r.closed.Load() {
			// Work (or shutdown) raced our sleep declaration: take the
			// flag back and go around.
			r.sleeping.Store(false)
			continue
		}
		select {
		case <-r.notify:
			// wake() already cleared sleeping when it sent the token.
		case done := <-s.snap:
			r.sleeping.Store(false)
			p.snapshotShard(s, done)
		}
	}
}

// snapshotShard drains the ring, hands the shard's state to the merger,
// and resets for the next epoch — the ring loop's half of SnapshotNow.
func (p *Pipeline) snapshotShard(s *shard, done chan struct{}) {
	for {
		batch, ok := s.ring.tryPop()
		if !ok {
			break
		}
		p.processBatch(s, batch)
	}
	p.merge <- shardSnapshot{col: s.col, stages: s.stages}
	s.col = collector.New()
	s.stages = make([]Stage, len(p.cfg.Stages))
	for j, f := range p.cfg.Stages {
		s.stages[j] = f()
	}
	close(done)
}

// processBatch folds one batch into the shard's collector and stages.
// The loop is structured stage-major (collector pass, then one pass
// per stage) so each stage's wall time is measurable with two clock
// reads per batch instead of two per event — the whole point of the
// telemetry being affordable at line rate. Timing costs amortize over
// BatchSize events; the timed and untimed paths share the same loop
// shape so BenchmarkTelemetryOverhead isolates the instrumentation
// cost alone.
func (p *Pipeline) processBatch(s *shard, batch []Event) {
	cap32 := int32(p.cfg.ServerCap)
	timed := p.tel.enabled
	var start time.Time
	if timed {
		start = time.Now()
	}
	for i := range batch {
		ev := &batch[i]
		if ev.Server >= cap32 {
			// Deployment-level saturation: attribute to the last
			// distinct index the config allows (collector.ServerBit
			// would otherwise saturate at MaxServers-1 regardless).
			ev.Server = cap32 - 1
		}
		s.col.ObserveUnix(ev.Addr, ev.Time, int(ev.Server))
	}
	for si, st := range s.stages {
		var stageStart time.Time
		if timed {
			stageStart = time.Now()
		}
		for _, ev := range batch {
			st.Process(ev)
		}
		if timed {
			p.tel.stageSeconds[si].ObserveDuration(time.Since(stageStart))
		}
	}
	p.metrics.processed.Add(uint64(len(batch)))
	if timed {
		p.tel.shardEvents[s.idx].Add(uint64(len(batch)))
		p.tel.batchSeconds[s.idx].ObserveDuration(time.Since(start))
		p.tel.batchEvents.Observe(float64(len(batch)))
	}
	p.putBatch(batch)
}

// getBatch returns an empty batch with BatchSize capacity, recycled
// when one is available.
func (p *Pipeline) getBatch() []Event {
	select {
	case b := <-p.free:
		return b
	default:
		return make([]Event, 0, p.cfg.BatchSize)
	}
}

// putBatch recycles a batch's backing array; extras beyond the
// freelist's capacity are dropped for the GC.
func (p *Pipeline) putBatch(batch []Event) {
	select {
	case p.free <- batch[:0]:
	default:
	}
}

// runMerger is the single writer of the Store and the merged stages.
func (p *Pipeline) runMerger() {
	defer p.mergerWG.Done()
	for snap := range p.merge {
		if snap.barrier != nil {
			close(snap.barrier)
			continue
		}
		if snap.col != nil {
			mergeStart := time.Now()
			p.store.ApplyShard(snap.col)
			p.tel.mergeSeconds.ObserveDuration(time.Since(mergeStart))
		}
		if len(snap.stages) > 0 {
			p.stageMu.Lock()
			for i, st := range snap.stages {
				p.mergedStages[i].Merge(st)
			}
			p.stageMu.Unlock()
		}
		p.metrics.snapshots.Add(1)
	}
}

func (p *Pipeline) runTicker(every time.Duration) {
	defer p.tickerWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.SnapshotNow()
		case <-p.stopTick:
			return
		}
	}
}

// SnapshotNow asks every shard to hand its accumulated state to the
// merger and blocks until all have done so; every event Flushed before
// the call is covered by the handoff (the merge itself completes
// asynchronously, in snapshot order). Must not race with Close.
func (p *Pipeline) SnapshotNow() {
	acks := make([]chan struct{}, len(p.shards))
	for i, s := range p.shards {
		ack := make(chan struct{})
		acks[i] = ack
		s.snap <- ack
	}
	for _, ack := range acks {
		<-ack
	}
}

// Quiesce is SnapshotNow plus a merger fence: on return, every event
// Flushed before the call is not merely handed off but folded into the
// Store and the merged stages. This is the read-your-writes barrier the
// durable paths need — a checkpoint taken after Quiesce provably
// contains everything flushed before it. Must not race with Close.
func (p *Pipeline) Quiesce() {
	p.SnapshotNow()
	barrier := make(chan struct{})
	p.merge <- shardSnapshot{barrier: barrier}
	<-barrier
}

// runCheckpointTicker periodically persists the corpus to the
// configured checkpoint path. Failures are counted in Metrics (a
// daemon's stats endpoint is where a full disk shows up) and retried
// next tick.
func (p *Pipeline) runCheckpointTicker(every time.Duration) {
	defer p.tickerWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			var err error
			if p.cfg.DeltaCheckpoints {
				_, err = p.CheckpointChain(p.cfg.CheckpointPath)
			} else {
				_, err = p.CheckpointFile(p.cfg.CheckpointPath)
			}
			if err != nil {
				p.metrics.checkpointErrors.Add(1)
			}
		case <-p.stopTick:
			return
		}
	}
}

// SeedStage folds a restored stage state into the pipeline-level merged
// instance with the given name — the stage half of restore-on-start,
// pairing with Config.Seed's corpus half. The pipeline takes ownership
// of from. Call before events flow if byte-exact resume equivalence
// matters (stage merges commute, so even that is ordering-insensitive).
func (p *Pipeline) SeedStage(name string, from Stage) error {
	p.stageMu.Lock()
	defer p.stageMu.Unlock()
	for _, st := range p.mergedStages {
		if st.Name() == name {
			st.Merge(from)
			return nil
		}
	}
	return fmt.Errorf("ingest: no stage named %q to seed", name)
}

// StageView runs fn over the pipeline-level merged enrichment stages,
// in Config.Stages order. The view reflects state up to the last merged
// snapshot; after Close it is complete. fn must not retain the slice.
func (p *Pipeline) StageView(fn func(stages []Stage)) {
	p.stageMu.Lock()
	defer p.stageMu.Unlock()
	fn(p.mergedStages)
}

// Stage returns the pipeline-level merged stage with the given name, or
// nil. The same caveats as StageView apply; prefer calling it after
// Close.
func (p *Pipeline) Stage(name string) Stage {
	p.stageMu.Lock()
	defer p.stageMu.Unlock()
	for _, st := range p.mergedStages {
		if st.Name() == name {
			return st
		}
	}
	return nil
}

// Close finishes ingestion: all producers must have Flushed and stopped
// first. Every queued batch is drained, final shard snapshots merge,
// and the merged corpus is detached from the Store and returned. The
// Store remains usable (empty) and further Close calls return the same
// collector.
func (p *Pipeline) Close() *collector.Collector {
	p.closeOnce.Do(func() {
		close(p.stopTick)
		p.tickerWG.Wait()
		for _, s := range p.shards {
			if s.ring != nil {
				s.ring.close()
			} else {
				close(s.in)
			}
		}
		p.workersWG.Wait()
		close(p.merge)
		p.mergerWG.Wait()
		p.result = p.store.Detach()
	})
	return p.result
}

// ---- Producer side ----

// Batcher is a producer handle: per-shard buffers that flush to the
// shard queues as they fill. A Batcher is not safe for concurrent use —
// each producer goroutine takes its own; any number may feed one
// pipeline concurrently.
type Batcher struct {
	p    *Pipeline
	bufs [][]Event
}

// NewBatcher returns a producer handle.
func (p *Pipeline) NewBatcher() *Batcher {
	b := &Batcher{p: p, bufs: make([][]Event, len(p.shards))}
	for i := range b.bufs {
		b.bufs[i] = p.getBatch()
	}
	return b
}

// Add enqueues one event, flushing the destination shard's batch if it
// just filled.
func (b *Batcher) Add(ev Event) {
	sh := shardOf(ev.Addr, len(b.p.shards))
	buf := append(b.bufs[sh], ev)
	if len(buf) >= b.p.cfg.BatchSize {
		b.p.submit(sh, buf)
		buf = b.p.getBatch()
	}
	b.bufs[sh] = buf
}

// Flush pushes every non-empty buffered batch. Call when the producer's
// stream ends (and before Pipeline.Close).
func (b *Batcher) Flush() {
	for sh, buf := range b.bufs {
		if len(buf) == 0 {
			continue
		}
		b.p.submit(sh, buf)
		b.bufs[sh] = b.p.getBatch()
	}
}

// submit applies the admission policy for one full batch.
func (p *Pipeline) submit(sh int, batch []Event) {
	s := p.shards[sh]
	if p.cfg.DropOnFull {
		if !s.tryEnqueue(batch) {
			p.metrics.dropped.Add(uint64(len(batch)))
			p.putBatch(batch)
			return
		}
	} else {
		s.enqueue(batch)
	}
	p.metrics.enqueued.Add(uint64(len(batch)))
	p.metrics.batches.Add(1)
	if p.tel.enabled {
		// The post-send depth is the backpressure high-water signal: a
		// queue that keeps brushing QueueDepth is a pipeline one burst
		// away from blocking (or shedding) producers.
		p.tel.queueHighWater[sh].SetMax(int64(s.queueDepth()))
	}
}

// Ingest feeds a whole slice through a throwaway Batcher: the
// convenience path for replay drivers and tests.
func (p *Pipeline) Ingest(events []Event) {
	b := p.NewBatcher()
	for _, ev := range events {
		b.Add(ev)
	}
	b.Flush()
}
