package ingest

import (
	"os"
	"path/filepath"
	"testing"

	"hitlist6/internal/addr"
)

func feedSlice(t *testing.T, p *Pipeline, events []Event) {
	t.Helper()
	b := p.NewBatcher()
	for _, ev := range events {
		b.Add(ev)
	}
	b.Flush()
}

// TestCheckpointChain drives the delta-chain file protocol end to end:
// a full anchor, deltas that stay an order of magnitude smaller, chain
// restore equivalence, compaction back to a full base, and the failure
// modes restore must reject (gap, corruption, orphaned deltas).
func TestCheckpointChain(t *testing.T) {
	events := testEvents(t, 0.03, 12)
	path := filepath.Join(t.TempDir(), "corpus.snap")

	cfg := DefaultConfig(4)
	cfg.CheckpointPath = path
	cfg.DeltaCheckpoints = true
	cfg.CompactEvery = 3
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// No base yet: the first chain checkpoint is a full anchor.
	feedSlice(t, p, events[:len(events)/2])
	baseSize, err := p.CheckpointChain(path)
	if err != nil {
		t.Fatal(err)
	}
	if m := p.Metrics(); m.Checkpoints != 1 || m.DeltaCheckpoints != 0 || m.ChainSeq != 0 {
		t.Fatalf("after anchor: %+v", m)
	}

	// Each feed extends the chain with a delta file. (The size win is
	// asserted in TestCheckpointChainDeltaSize on a corpus large enough
	// for block granularity to matter; this corpus is a handful of dirty
	// blocks total.)
	step := len(events) / 20
	half := len(events) / 2
	for i := 0; i < 2; i++ {
		feedSlice(t, p, events[half+i*step:half+(i+1)*step])
		deltaSize, err := p.CheckpointChain(path)
		if err != nil {
			t.Fatal(err)
		}
		if deltaSize <= 0 || deltaSize > baseSize*2 {
			t.Fatalf("delta %d is %d bytes against a %d-byte base", i+1, deltaSize, baseSize)
		}
		if _, err := os.Stat(deltaPath(path, uint64(i+1))); err != nil {
			t.Fatalf("delta file %d: %v", i+1, err)
		}
	}
	if m := p.Metrics(); m.Checkpoints != 3 || m.DeltaCheckpoints != 2 || m.ChainSeq != 2 {
		t.Fatalf("after deltas: %+v", m)
	}

	// The chain restores to exactly the checkpointed corpus.
	restored, err := RestoreChainFiles(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Checksum() != p.Store().Checksum() {
		t.Fatal("chain restore diverges from the live corpus")
	}

	// The third delta reaches CompactEvery: the next checkpoint folds the
	// chain into a fresh full base and removes the delta files.
	feedSlice(t, p, events[half+2*step:half+3*step])
	if _, err := p.CheckpointChain(path); err != nil {
		t.Fatal(err)
	}
	feedSlice(t, p, events[half+3*step:half+4*step])
	if _, err := p.CheckpointChain(path); err != nil {
		t.Fatal(err)
	}
	if m := p.Metrics(); m.ChainSeq != 0 {
		t.Fatalf("compaction did not reset the chain: %+v", m)
	}
	if ds := chainDeltaFiles(path); len(ds) != 0 {
		t.Fatalf("compaction left delta files: %v", ds)
	}
	restored, err = RestoreChainFiles(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Checksum() != p.Store().Checksum() {
		t.Fatal("post-compaction restore diverges from the live corpus")
	}

	// Rebuild a two-delta chain to break in various ways.
	for i := 0; i < 2; i++ {
		feedSlice(t, p, events[half+(4+i)*step:half+(5+i)*step])
		if _, err := p.CheckpointChain(path); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()

	// A gap in the sequence is an error, not a silent partial restore.
	d1 := deltaPath(path, 1)
	moved := d1 + ".aside"
	if err := os.Rename(d1, moved); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreChainFiles(path); err == nil {
		t.Fatal("restore accepted a chain with a missing delta")
	}
	if err := os.Rename(moved, d1); err != nil {
		t.Fatal(err)
	}

	// A corrupted delta is rejected.
	raw, err := os.ReadFile(d1)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), raw...)
	bad[len(bad)/2] ^= 0x40
	if err := os.WriteFile(d1, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreChainFiles(path); err == nil {
		t.Fatal("restore accepted a corrupted delta")
	}
	if err := os.WriteFile(d1, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreChainFiles(path); err != nil {
		t.Fatalf("pristine chain no longer restores: %v", err)
	}

	// Deltas without their base are unrecoverable state, not empty-start.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreChainFiles(path); err == nil {
		t.Fatal("restore accepted orphaned deltas")
	}
	removeChainDeltas(path)
	if c, err := RestoreChainFiles(path); err != nil || c != nil {
		t.Fatalf("clean slate: got (%v, %v), want (nil, nil)", c, err)
	}
}

// TestCheckpointChainDeltaSize is the size-ratio acceptance bar at the
// pipeline level: on a corpus spanning many dirty-tracking blocks, a
// checkpoint after touching a small contiguous slice of it must be at
// least 10x smaller than the full base. One shard keeps the store's
// record order equal to feed order, so the touched records stay in one
// block.
func TestCheckpointChainDeltaSize(t *testing.T) {
	const n = 60000
	mk := func(i int) Event {
		h := uint64(i) * 0x9e3779b97f4a7c15
		h ^= h >> 29
		return Event{
			Addr:   addr.FromParts(0x20010db8<<32|uint64(i>>8), h|1),
			Time:   int64(1_600_000_000 + i),
			Server: int32(i % 4),
		}
	}
	path := filepath.Join(t.TempDir(), "corpus.snap")
	cfg := DefaultConfig(1)
	cfg.CheckpointPath = path
	cfg.DeltaCheckpoints = true
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	events := make([]Event, n)
	for i := range events {
		events[i] = mk(i)
	}
	feedSlice(t, p, events)
	baseSize, err := p.CheckpointChain(path)
	if err != nil {
		t.Fatal(err)
	}

	// Re-observe the first 300 addresses: one dirty block out of ~15.
	touch := make([]Event, 300)
	for i := range touch {
		touch[i] = mk(i)
		touch[i].Time += 3600
	}
	feedSlice(t, p, touch)
	deltaSize, err := p.CheckpointChain(path)
	if err != nil {
		t.Fatal(err)
	}
	if deltaSize*10 > baseSize {
		t.Fatalf("delta is %d bytes against a %d-byte base, want >= 10x smaller", deltaSize, baseSize)
	}
	restored, err := RestoreChainFiles(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Checksum() != p.Store().Checksum() {
		t.Fatal("chain restore diverges from the live corpus")
	}
}
