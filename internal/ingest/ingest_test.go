package ingest

import (
	"math"
	"sync"
	"testing"
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/asdb"
	"hitlist6/internal/collector"
	"hitlist6/internal/simnet"
)

// testEvents materializes a small deterministic event stream with
// vantage indices spread over [0, 27).
func testEvents(t testing.TB, scale float64, days int) []Event {
	t.Helper()
	cfg := simnet.DefaultConfig(17, scale)
	cfg.Days = days
	w, err := simnet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	i := 0
	w.GenerateQueries(func(q simnet.Query) {
		events = append(events, Event{
			Addr:   q.Addr,
			Time:   q.Time.Unix(),
			Server: int32(i % 27),
		})
		i++
	})
	if len(events) == 0 {
		t.Fatal("no events generated")
	}
	return events
}

// serialChecksum folds the stream into one collector the pre-pipeline
// way and returns its canonical checksum.
func serialChecksum(events []Event) [32]byte {
	c := collector.New()
	for _, ev := range events {
		c.ObserveUnix(ev.Addr, ev.Time, int(ev.Server))
	}
	return c.Checksum()
}

func TestPipelineMatchesSerial(t *testing.T) {
	events := testEvents(t, 0.03, 10)
	want := serialChecksum(events)

	for _, shards := range []int{1, 3, 8} {
		cfg := DefaultConfig(shards)
		cfg.BatchSize = 64
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p.Ingest(events)
		merged := p.Close()
		if got := merged.Checksum(); got != want {
			t.Errorf("shards=%d: merged corpus differs from serial", shards)
		}
		if merged.TotalObservations() != uint64(len(events)) {
			t.Errorf("shards=%d: %d observations, want %d",
				shards, merged.TotalObservations(), len(events))
		}
		m := p.Metrics()
		if m.Processed != uint64(len(events)) || m.Enqueued != uint64(len(events)) {
			t.Errorf("shards=%d: metrics processed=%d enqueued=%d, want %d",
				shards, m.Processed, m.Enqueued, len(events))
		}
		if m.Dropped != 0 {
			t.Errorf("shards=%d: %d drops under blocking admission", shards, m.Dropped)
		}
	}
}

func TestSnapshotNowLiveView(t *testing.T) {
	events := testEvents(t, 0.03, 10)
	p, err := New(DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	p.Ingest(events[:len(events)/2])
	p.SnapshotNow()
	// The merge is asynchronous after the shard handoff; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for p.Store().TotalObservations() < uint64(len(events)/2) {
		if time.Now().After(deadline) {
			t.Fatalf("live store stuck at %d/%d observations",
				p.Store().TotalObservations(), len(events)/2)
		}
		time.Sleep(time.Millisecond)
	}
	p.Ingest(events[len(events)/2:])
	merged := p.Close()
	if merged.TotalObservations() != uint64(len(events)) {
		t.Errorf("final observations %d, want %d",
			merged.TotalObservations(), len(events))
	}
	if got, want := merged.Checksum(), serialChecksum(events); got != want {
		t.Error("mid-run snapshot changed the final corpus")
	}
}

func TestStages(t *testing.T) {
	events := testEvents(t, 0.03, 10)
	day0 := events[0].Time
	dayEnd := day0 + 86400

	cfg := DefaultConfig(4)
	cfg.Stages = []StageFactory{
		Categories(),
		Cardinality(12),
		DaySlice(day0, dayEnd),
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Ingest(events)
	merged := p.Close()

	// Categories: per-sighting tally must equal a direct pass.
	var want [addr.NumCategories]uint64
	for _, ev := range events {
		want[ev.Addr.IID().StructuralCategory()]++
	}
	cats := p.Stage("categories").(*CategoryStage)
	if cats.Counts != want {
		t.Errorf("category counts %v, want %v", cats.Counts, want)
	}

	// Cardinality: the merged union sketch must estimate the exact
	// unique-address count within a loose multiple of its stated error.
	hll := p.Stage("cardinality").(*HLLStage)
	exact := float64(merged.NumAddrs())
	est := hll.H.Estimate()
	if rel := math.Abs(est-exact) / exact; rel > 5*hll.H.RelativeError() {
		t.Errorf("HLL estimate %.0f vs exact %.0f: rel err %.3f", est, exact, rel)
	}

	// Day slice: identical to a serially filtered collector.
	serialDay := collector.New()
	for _, ev := range events {
		if ev.Time >= day0 && ev.Time < dayEnd {
			serialDay.ObserveUnix(ev.Addr, ev.Time, int(ev.Server))
		}
	}
	if serialDay.TotalObservations() == 0 {
		t.Fatal("day slice empty; bad test window")
	}
	day := p.Stage("dayslice").(*DaySliceStage)
	if got, want := day.Col.Checksum(), serialDay.Checksum(); got != want {
		t.Error("day-slice corpus differs from serial filter")
	}

	if p.Stage("no-such-stage") != nil {
		t.Error("unknown stage name should return nil")
	}
}

func TestASNStage(t *testing.T) {
	db := asdb.NewDB()
	if err := db.AddAS(asdb.AS{ASN: 64500, Name: "Test Net", Prefixes: []addr.Prefix{
		addr.MustPrefix(addr.MustParse("2001:db8::"), 32),
	}}); err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig(4)
	cfg.Stages = []StageFactory{ASNs(db)}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Ingest([]Event{
		{Addr: addr.MustParse("2001:db8::1"), Time: 1000, Server: 0},
		{Addr: addr.MustParse("2001:db8:1::2"), Time: 1001, Server: 1},
		{Addr: addr.MustParse("2a02::1"), Time: 1002, Server: 2}, // unrouted
	})
	p.Close()

	asns := p.Stage("asns").(*ASNStage)
	if asns.Counts[64500] != 2 {
		t.Errorf("AS64500 count %d, want 2", asns.Counts[64500])
	}
	if asns.Counts[0] != 1 {
		t.Errorf("unrouted count %d, want 1", asns.Counts[0])
	}
}

func TestServerCapSaturation(t *testing.T) {
	a := addr.MustParse("2001:db8::1")
	cfg := DefaultConfig(1)
	cfg.ServerCap = 8
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Ingest([]Event{
		{Addr: a, Time: 1000, Server: 3},
		{Addr: a, Time: 1001, Server: 40}, // beyond the cap: saturates to 7
		{Addr: a, Time: 1002, Server: -1}, // unattributed: no bit
	})
	merged := p.Close()
	r, ok := merged.Get(a)
	if !ok {
		t.Fatal("address not recorded")
	}
	want := collector.ServerBit(3) | collector.ServerBit(7)
	if r.Servers != want {
		t.Errorf("server mask %#x, want %#x", r.Servers, want)
	}
}

func TestConfigValidation(t *testing.T) {
	for _, bad := range []Config{
		{Shards: -1},
		{BatchSize: -2},
		{QueueDepth: -3},
		{ServerCap: collector.MaxServers + 1},
	} {
		if _, err := New(bad); err == nil {
			t.Errorf("config %+v should be rejected", bad)
		}
	}
}

// gateStage blocks the first Process call until released: a way to wedge
// a shard worker so admission-policy behaviour is deterministic, and a
// proof the Stage plug point accepts outside implementations.
type gateStage struct {
	once    sync.Once
	release chan struct{}
}

func (g *gateStage) Name() string { return "gate" }
func (g *gateStage) Process(Event) {
	g.once.Do(func() { <-g.release })
}
func (g *gateStage) Merge(Stage) {}

func TestDropOnFullShedsLoad(t *testing.T) {
	gate := &gateStage{release: make(chan struct{})}
	cfg := Config{
		Shards:     1,
		BatchSize:  1,
		QueueDepth: 1,
		DropOnFull: true,
		Stages:     []StageFactory{func() Stage { return gate }},
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := addr.MustParse("2001:db8::42")
	b := p.NewBatcher()
	// First event wedges the worker; second fills the queue; everything
	// after must be shed rather than block this goroutine.
	for i := 0; i < 10; i++ {
		b.Add(Event{Addr: a, Time: int64(1000 + i), Server: 0})
	}
	b.Flush()
	m := p.Metrics()
	if m.Dropped == 0 {
		t.Error("no drops despite a wedged shard and full queue")
	}
	if m.Enqueued+m.Dropped != 10 {
		t.Errorf("enqueued %d + dropped %d != 10", m.Enqueued, m.Dropped)
	}
	close(gate.release)
	merged := p.Close()
	if got := merged.TotalObservations(); got != m.Enqueued {
		t.Errorf("merged %d observations, want the %d admitted", got, m.Enqueued)
	}
}

func TestParseEventRoundTrip(t *testing.T) {
	cases := []Event{
		{Addr: addr.MustParse("2001:db8::1"), Time: 1643673600, Server: 0},
		{Addr: addr.MustParse("2a02:8071:22c1:d800:beee:7bff:fe00:1"), Time: 1656633600, Server: 26},
		{Addr: addr.MustParse("::1"), Time: 0, Server: -1},
	}
	for _, want := range cases {
		line := want.AppendText(nil)
		got, err := ParseEvent(string(line[:len(line)-1]))
		if err != nil {
			t.Fatalf("%q: %v", line, err)
		}
		if got != want {
			t.Errorf("round trip %q: got %+v want %+v", line, got, want)
		}
	}
	for _, bad := range []string{
		"", "1234", "x 2001:db8::1", "1234 not-an-addr",
		"1234 2001:db8::1 banana", "1 2 3 4",
		// Server indices outside [-1, MaxServers) would be silently
		// mis-attributed (saturated onto the top bit) — the codec rejects.
		"1234 2001:db8::1 -2",
		"1234 2001:db8::1 32",
		"1234 2001:db8::1 4096",
	} {
		if _, err := ParseEvent(bad); err == nil {
			t.Errorf("ParseEvent(%q) should fail", bad)
		}
	}
}
