package ingest

import (
	"fmt"
	"strconv"
	"strings"

	"hitlist6/internal/addr"
	"hitlist6/internal/collector"
)

// Event is one NTP query sighting entering the pipeline: the client's
// source address, the Unix-seconds timestamp, and the vantage server
// that saw it (-1 when the stream carries no vantage attribution).
type Event struct {
	Addr   addr.Addr
	Time   int64
	Server int32
}

// shardOf maps an address to its shard via addr.Hash64. All sightings
// of one address land on one shard, which is what makes per-shard state
// lock-free and the merged result independent of the shard count.
func shardOf(a addr.Addr, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(a.Hash64() % uint64(shards))
}

// strictInt parses a decimal integer the way the codec writes one: an
// optional leading '-', then digits, nothing else. strconv.ParseInt is
// deliberately not used directly — it also accepts a leading '+' and an
// explicit "-0", neither of which AppendText ever emits, and a wire
// codec that accepts what it never writes invites silent producer
// drift (found by FuzzParseEvent's round-trip property).
func strictInt(s string, bitSize int) (int64, error) {
	neg := strings.HasPrefix(s, "-")
	digits := s
	if neg {
		digits = s[1:]
	}
	if digits == "" || strings.TrimLeft(digits, "0123456789") != "" {
		return 0, fmt.Errorf("not a decimal integer")
	}
	v, err := strconv.ParseInt(s, 10, bitSize)
	if err != nil {
		return 0, err
	}
	// By value, not spelling: catches "-0", "-00", "-0000…" alike.
	if neg && v == 0 {
		return 0, fmt.Errorf("negative zero")
	}
	return v, nil
}

// ParseEvent decodes the pipeline's text framing, one event per line:
//
//	<unix-seconds> <ipv6-address> [<server-index>]
//
// A missing server index means no vantage attribution (-1). This is the
// format `ingestd` accepts on files, stdin and UDP datagrams. The
// parser is strict: exactly the bytes AppendText emits round-trip, and
// every accepted line re-encodes to a line that parses to the same
// event (FuzzParseEvent pins both directions, and that the parser never
// panics on arbitrary input).
func ParseEvent(line string) (Event, error) {
	var ev Event
	fields := strings.Fields(line)
	if len(fields) < 2 || len(fields) > 3 {
		return ev, fmt.Errorf("ingest: want 'ts addr [server]', got %q", line)
	}
	ts, err := strictInt(fields[0], 64)
	if err != nil {
		return ev, fmt.Errorf("ingest: bad timestamp %q: %v", fields[0], err)
	}
	a, err := addr.Parse(fields[1])
	if err != nil {
		return ev, err
	}
	server := int64(-1)
	if len(fields) == 3 {
		server, err = strictInt(fields[2], 32)
		if err != nil {
			return ev, fmt.Errorf("ingest: bad server %q: %v", fields[2], err)
		}
		// -1 means "no vantage attribution"; anything else below zero is
		// malformed, and indices at or past the collector's bitmask width
		// would silently mis-attribute (saturate onto the top bit), so the
		// codec rejects them instead.
		if server < -1 || server >= collector.MaxServers {
			return ev, fmt.Errorf("ingest: server index %d out of [-1,%d)", server, collector.MaxServers)
		}
	}
	return Event{Addr: a, Time: ts, Server: int32(server)}, nil
}

// AppendText appends the event in ParseEvent's line format (with
// trailing newline) — the writer side of the stream codec.
func (e Event) AppendText(dst []byte) []byte {
	dst = strconv.AppendInt(dst, e.Time, 10)
	dst = append(dst, ' ')
	dst = append(dst, e.Addr.String()...)
	if e.Server >= 0 {
		dst = append(dst, ' ')
		dst = strconv.AppendInt(dst, int64(e.Server), 10)
	}
	return append(dst, '\n')
}
