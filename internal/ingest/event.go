package ingest

import (
	"errors"
	"fmt"
	"strconv"
	"unicode"
	"unicode/utf8"

	"hitlist6/internal/addr"
	"hitlist6/internal/collector"
)

// Event is one NTP query sighting entering the pipeline: the client's
// source address, the Unix-seconds timestamp, and the vantage server
// that saw it (-1 when the stream carries no vantage attribution).
type Event struct {
	Addr   addr.Addr
	Time   int64
	Server int32
}

// shardOf maps an address to its shard via addr.Hash64. All sightings
// of one address land on one shard, which is what makes per-shard state
// lock-free and the merged result independent of the shard count.
func shardOf(a addr.Addr, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(a.Hash64() % uint64(shards))
}

// Reject-path sentinels for the strict decimal parser. Allocated once:
// the wire parser must not allocate even when fed garbage at line rate.
var (
	errNotDecimal   = errors.New("not a decimal integer")
	errNegativeZero = errors.New("negative zero")
	errOutOfRange   = errors.New("value out of range")
)

// strictIntBytes parses a decimal integer the way the codec writes one:
// an optional leading '-', then digits, nothing else, value in the
// signed bitSize range. strconv.ParseInt is deliberately not used — it
// also accepts a leading '+' and an explicit "-0", neither of which
// AppendText ever emits, and a wire codec that accepts what it never
// writes invites silent producer drift (found by FuzzParseEvent's
// round-trip property). Allocation-free on every path.
func strictIntBytes(s []byte, bitSize int) (int64, error) {
	neg := len(s) > 0 && s[0] == '-'
	digits := s
	if neg {
		digits = s[1:]
	}
	if len(digits) == 0 {
		return 0, errNotDecimal
	}
	// The magnitude limit: 2^(bitSize-1) for negative values, one less
	// for positive — exactly ParseInt's range.
	limit := uint64(1) << (bitSize - 1)
	if !neg {
		limit--
	}
	var v uint64
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, errNotDecimal
		}
		d := uint64(c - '0')
		if v > limit/10 || (v == limit/10 && d > limit%10) {
			return 0, errOutOfRange
		}
		v = v*10 + d
	}
	if neg {
		// By value, not spelling: catches "-0", "-00", "-0000…" alike.
		if v == 0 {
			return 0, errNegativeZero
		}
		// -v is correct even at the 2^63 boundary, where int64(v) alone
		// would already be MinInt64.
		return -int64(v), nil
	}
	return int64(v), nil
}

// asciiSpace mirrors strings.Fields' ASCII whitespace set.
var asciiSpace = [256]uint8{'\t': 1, '\n': 1, '\v': 1, '\f': 1, '\r': 1, ' ': 1}

// ParseEventBytes decodes the pipeline's text framing straight from
// packet bytes, one event per line:
//
//	<unix-seconds> <ipv6-address> [<server-index>]
//
// A missing server index means no vantage attribution (-1). This is the
// format `ingestd` accepts on files, stdin and UDP datagrams, and the
// hot-path form of the parser: field splitting, strict decimal decoding
// and address decoding all work on the input bytes in place, with zero
// allocation on every accepted input (BenchmarkParseEventBytes pins 0
// allocs/op). The parser is strict: exactly the bytes AppendText emits
// round-trip, and every accepted line re-encodes to a line that parses
// to the same event. Field separation follows strings.Fields (runs of
// Unicode whitespace), so the byte parser and the historical string
// parser agree on every input — FuzzParseEventBytes pins the
// equivalence.
func ParseEventBytes(line []byte) (Event, error) {
	var ev Event
	var fields [3][]byte
	nf := 0
	for i := 0; i < len(line); {
		// Skip whitespace. ASCII bytes take the table; multi-byte runes
		// go through the same unicode.IsSpace test strings.Fields uses.
		if c := line[i]; c < utf8.RuneSelf {
			if asciiSpace[c] == 1 {
				i++
				continue
			}
		} else if r, w := utf8.DecodeRune(line[i:]); unicode.IsSpace(r) {
			i += w
			continue
		}
		start := i
		for i < len(line) {
			if c := line[i]; c < utf8.RuneSelf {
				if asciiSpace[c] == 1 {
					break
				}
				i++
				continue
			}
			r, w := utf8.DecodeRune(line[i:])
			if unicode.IsSpace(r) {
				break
			}
			i += w
		}
		if nf == len(fields) {
			return ev, fmt.Errorf("ingest: want 'ts addr [server]', got %q", line)
		}
		fields[nf] = line[start:i]
		nf++
	}
	if nf < 2 {
		return ev, fmt.Errorf("ingest: want 'ts addr [server]', got %q", line)
	}
	ts, err := strictIntBytes(fields[0], 64)
	if err != nil {
		return ev, fmt.Errorf("ingest: bad timestamp %q: %v", fields[0], err)
	}
	a, err := addr.ParseBytes(fields[1])
	if err != nil {
		return ev, err
	}
	server := int64(-1)
	if nf == 3 {
		server, err = strictIntBytes(fields[2], 32)
		if err != nil {
			return ev, fmt.Errorf("ingest: bad server %q: %v", fields[2], err)
		}
		// -1 means "no vantage attribution"; anything else below zero is
		// malformed, and indices at or past the collector's bitmask width
		// would silently mis-attribute (saturate onto the top bit), so the
		// codec rejects them instead.
		if server < -1 || server >= collector.MaxServers {
			return ev, fmt.Errorf("ingest: server index %d out of [-1,%d)", server, collector.MaxServers)
		}
	}
	return Event{Addr: a, Time: ts, Server: int32(server)}, nil
}

// ParseEvent is ParseEventBytes for a string — a thin wrapper kept for
// callers that already hold one. The hot ingest paths call
// ParseEventBytes directly on the packet bytes and never pay this
// conversion.
func ParseEvent(line string) (Event, error) {
	return ParseEventBytes([]byte(line))
}

// AppendText appends the event in ParseEvent's line format (with
// trailing newline) — the writer side of the stream codec.
func (e Event) AppendText(dst []byte) []byte {
	dst = strconv.AppendInt(dst, e.Time, 10)
	dst = append(dst, ' ')
	dst = append(dst, e.Addr.String()...)
	if e.Server >= 0 {
		dst = append(dst, ' ')
		dst = strconv.AppendInt(dst, int64(e.Server), 10)
	}
	return append(dst, '\n')
}
