// Package ingest implements the sharded concurrent ingestion pipeline:
// the production seam between a raw NTP query stream and the passive
// observation store. Events fan out to N collector shards by address
// hash — per-address updates commute, so same-address sightings always
// land on the same shard and every shard runs lock-free on private
// state. Batched channels amortize synchronization, an admission policy
// provides backpressure (block) or load-shedding (drop), pluggable
// enrichment stages run inline on each shard, and shard snapshots merge
// into a single-writer collector.Store that readers can query live.
//
// The paper's deployment is 27 vantage servers each feeding one stream;
// this pipeline is what one high-volume vantage (or a central
// aggregator receiving all 27) runs to keep up with line rate.
package ingest

import (
	"fmt"
	"runtime"
	"time"

	"hitlist6/internal/collector"
	"hitlist6/internal/telemetry"
)

// Config parameterizes a Pipeline.
type Config struct {
	// Shards is the number of collector shards (and worker goroutines).
	// 0 selects GOMAXPROCS capped at 8. Same-address events always hash
	// to the same shard, so results are independent of the shard count.
	Shards int
	// BatchSize is how many events a Batcher accumulates per shard
	// before handing the batch to the shard's queue. Larger batches
	// amortize channel synchronization; smaller ones reduce latency.
	// 0 selects 256.
	BatchSize int
	// QueueDepth is the per-shard queue capacity in batches. 0 selects 8.
	QueueDepth int
	// DropOnFull selects the admission policy when a shard queue is
	// full: false (default) blocks the producer — backpressure — while
	// true sheds the batch and counts it in Metrics.Dropped, which is
	// what a live UDP collector wants instead of kernel buffer bloat.
	DropOnFull bool
	// ShardQueue selects the producer→worker queue implementation:
	// "chan" (the default) is a buffered channel and supports any number
	// of concurrent producers; "spsc" is a lock-free single-producer
	// ring (see spscRing) whose fast path is two atomic operations
	// instead of a channel send — the wire-speed choice for a daemon
	// whose sources are single reader loops. "spsc" REQUIRES that at
	// most one goroutine feeds the pipeline (one Batcher, or serialized
	// Ingest calls); concurrent producers on an spsc pipeline are a data
	// race. Both queues preserve the pipeline's result exactly — the
	// shard-equivalence suite runs under each.
	ShardQueue string
	// PinCPUs pins each shard worker's OS thread to a CPU (round-robin
	// over the machine's CPUs) for cache locality at sustained line
	// rate. Linux-only; elsewhere, and on kernels that refuse the
	// affinity call, it degrades to a no-op counted in
	// ingest_pin_errors_total.
	PinCPUs bool
	// SnapshotInterval is how often shard snapshots are merged into the
	// live Store view. 0 disables periodic snapshots: the store is then
	// only populated by SnapshotNow and Close. Replay-style batch runs
	// want 0; serving daemons want something like a few seconds.
	SnapshotInterval time.Duration
	// ServerCap is the highest vantage-server count the deployment
	// attributes distinctly; events with Server >= ServerCap saturate
	// onto index ServerCap-1. It cannot exceed collector.MaxServers
	// (the AddrRecord.Servers bitmask width). 0 selects the maximum.
	ServerCap int
	// Stages are enrichment-stage factories; each shard gets a private
	// instance of every stage, and snapshots merge them into the
	// pipeline-level results readable via StageView.
	Stages []StageFactory
	// Seed, when non-nil, is a corpus the pipeline starts from — the
	// restore half of checkpointing, typically collector.OpenSnapshot's
	// result. The pipeline takes ownership (the store absorbs it before
	// any event flows), so the merged corpus is the seed plus everything
	// ingested, exactly as if the seed's observations had streamed first.
	Seed *collector.Collector
	// CheckpointPath, when non-empty, is the file the pipeline writes
	// durable corpus snapshots to (atomically: temp file + rename), every
	// CheckpointInterval. Restore-on-start is the caller's half: load the
	// file with RestoreFile and pass the corpus as Seed.
	CheckpointPath string
	// CheckpointInterval is how often the pipeline checkpoints to
	// CheckpointPath. 0 with a non-empty path means on-demand only
	// (CheckpointFile / Checkpoint).
	CheckpointInterval time.Duration
	// DeltaCheckpoints switches periodic checkpoints to the delta-chain
	// protocol: a full snapshot anchors the chain at CheckpointPath, and
	// each later checkpoint writes only the record blocks dirtied since
	// the previous one to CheckpointPath.delta.NNNNNN — on a lightly
	// -churned corpus an order of magnitude smaller and faster than a
	// full snapshot. Restore-on-start uses RestoreChainFiles.
	DeltaCheckpoints bool
	// CompactEvery bounds the delta chain: after this many deltas the
	// next checkpoint is a full one, folding the chain into a fresh base
	// and deleting the delta files. 0 means the default (16); compaction
	// only applies when DeltaCheckpoints is set.
	CompactEvery int
	// Registry, when non-nil, is the telemetry registry the pipeline
	// registers its metric families in — per-shard queue gauges, batch
	// latency and size histograms, per-stage timings, checkpoint
	// duration/bytes — so a daemon's /metrics endpoint exposes them.
	// nil selects a private registry: the pipeline is always fully
	// instrumented (Metrics() reads the same counters either way), the
	// registry just isn't shared with anyone.
	Registry *telemetry.Registry
	// noHotPathTelemetry disables the per-batch timing instrumentation
	// (time reads + histogram observations) while keeping the counter
	// block. This is not a production switch — it exists so
	// BenchmarkTelemetryOverhead can measure the uninstrumented observe
	// loop as its baseline and prove the instrumented path stays within
	// budget.
	noHotPathTelemetry bool
}

// DefaultConfig returns a replay-tuned configuration (blocking
// admission, snapshot only on Close) with n shards (0 = auto).
func DefaultConfig(n int) Config {
	return Config{Shards: n}
}

func (c *Config) fillDefaults() error {
	if c.Shards == 0 {
		c.Shards = runtime.GOMAXPROCS(0)
		if c.Shards > 8 {
			c.Shards = 8
		}
	}
	if c.Shards < 0 {
		return fmt.Errorf("ingest: Shards %d negative", c.Shards)
	}
	if c.BatchSize == 0 {
		c.BatchSize = 256
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("ingest: BatchSize %d negative", c.BatchSize)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 8
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("ingest: QueueDepth %d negative", c.QueueDepth)
	}
	switch c.ShardQueue {
	case "":
		c.ShardQueue = "chan"
	case "chan", "spsc":
	default:
		return fmt.Errorf("ingest: ShardQueue %q not one of chan, spsc", c.ShardQueue)
	}
	if c.ServerCap == 0 {
		c.ServerCap = collector.MaxServers
	}
	if c.ServerCap < 1 || c.ServerCap > collector.MaxServers {
		return fmt.Errorf("ingest: ServerCap %d out of [1,%d]",
			c.ServerCap, collector.MaxServers)
	}
	if c.CheckpointInterval < 0 {
		return fmt.Errorf("ingest: CheckpointInterval %v negative", c.CheckpointInterval)
	}
	if c.CheckpointInterval > 0 && c.CheckpointPath == "" {
		return fmt.Errorf("ingest: CheckpointInterval without CheckpointPath")
	}
	if c.CompactEvery < 0 {
		return fmt.Errorf("ingest: CompactEvery %d negative", c.CompactEvery)
	}
	if c.CompactEvery == 0 {
		c.CompactEvery = 16
	}
	return nil
}
