// Package snapfmt implements the shared on-disk framing of the durable
// corpus artifacts: collector snapshots and study checkpoints. A stream
// is a fixed 8-byte magic, a version word, a sequence of sections, and
// an end marker:
//
//	stream  = magic[8] version(u32) section* end
//	section = id(u32) size(u64) payload[size] crc32c(u32)   id != 0
//	end     = id=0(u32) size=0(u64)
//
// All integers are big-endian. Every section's payload is covered by a
// CRC-32C trailer, and the explicit end marker means truncation at any
// boundary — even between complete sections — is detectable. The framing
// reads and writes exactly its own bytes (no internal buffering or
// read-ahead), so multiple streams compose back to back on one
// io.Reader/io.Writer: a study checkpoint is framing metadata followed
// by embedded collector snapshots on the same stream.
//
// Readers must treat every decoded value as hostile until validated:
// the contract is that arbitrary, truncated or bit-flipped input yields
// an error — never a panic, never a silently corrupt result. The fuzz
// targets in internal/collector pin that contract.
package snapfmt

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
)

// MagicLen is the required length of a stream's magic string.
const MagicLen = 8

// crcTable is the Castagnoli polynomial: hardware-accelerated on the
// platforms ingest daemons run on.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ---- writer ----

// Writer frames sections onto an io.Writer. Usage: NewWriter, then for
// each section Begin / payload writes / End, then Close. The writer does
// not buffer; callers batching many small records should marshal them
// into a scratch buffer and Write it in runs (as collector snapshots
// do), or hand in a buffered writer they flush themselves.
type Writer struct {
	w         io.Writer
	crc       hash.Hash32
	inSection bool
	remaining uint64
	scratch   [12]byte
}

// NewWriter writes the stream header and returns the section writer.
// magic must be exactly MagicLen bytes.
func NewWriter(w io.Writer, magic string, version uint32) (*Writer, error) {
	if len(magic) != MagicLen {
		return nil, fmt.Errorf("snapfmt: magic %q must be %d bytes", magic, MagicLen)
	}
	sw := &Writer{w: w}
	var hdr [MagicLen + 4]byte
	copy(hdr[:], magic)
	binary.BigEndian.PutUint32(hdr[MagicLen:], version)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("snapfmt: header: %w", err)
	}
	return sw, nil
}

// Begin opens a section of exactly size payload bytes. id must be
// non-zero (zero is the end marker).
func (sw *Writer) Begin(id uint32, size uint64) error {
	if sw.inSection {
		return fmt.Errorf("snapfmt: Begin inside open section")
	}
	if id == 0 {
		return fmt.Errorf("snapfmt: section id 0 is reserved")
	}
	binary.BigEndian.PutUint32(sw.scratch[0:], id)
	binary.BigEndian.PutUint64(sw.scratch[4:], size)
	if _, err := sw.w.Write(sw.scratch[:12]); err != nil {
		return fmt.Errorf("snapfmt: section header: %w", err)
	}
	sw.inSection = true
	sw.remaining = size
	sw.crc = crc32.New(crcTable)
	return nil
}

// Write appends payload bytes to the open section.
func (sw *Writer) Write(p []byte) (int, error) {
	if !sw.inSection {
		return 0, fmt.Errorf("snapfmt: Write outside section")
	}
	if uint64(len(p)) > sw.remaining {
		return 0, fmt.Errorf("snapfmt: section overflow: %d bytes over the declared size", uint64(len(p))-sw.remaining)
	}
	n, err := sw.w.Write(p)
	sw.crc.Write(p[:n])
	sw.remaining -= uint64(n)
	if err != nil {
		return n, fmt.Errorf("snapfmt: payload: %w", err)
	}
	return n, nil
}

// End closes the open section: the declared size must be fully written,
// and the CRC trailer goes out.
func (sw *Writer) End() error {
	if !sw.inSection {
		return fmt.Errorf("snapfmt: End outside section")
	}
	if sw.remaining != 0 {
		return fmt.Errorf("snapfmt: section short by %d bytes", sw.remaining)
	}
	binary.BigEndian.PutUint32(sw.scratch[0:], sw.crc.Sum32())
	if _, err := sw.w.Write(sw.scratch[:4]); err != nil {
		return fmt.Errorf("snapfmt: crc: %w", err)
	}
	sw.inSection = false
	sw.crc = nil
	return nil
}

// Close writes the end marker. The underlying writer stays open (it may
// carry further streams).
func (sw *Writer) Close() error {
	if sw.inSection {
		return fmt.Errorf("snapfmt: Close inside open section")
	}
	for i := range sw.scratch {
		sw.scratch[i] = 0
	}
	if _, err := sw.w.Write(sw.scratch[:12]); err != nil {
		return fmt.Errorf("snapfmt: end marker: %w", err)
	}
	return nil
}

// ---- reader ----

// Reader decodes a stream written by Writer: NewReader, then Next /
// payload reads / End per section until Next returns io.EOF (the end
// marker). It reads exactly the stream's bytes from the underlying
// reader — nothing past the end marker is consumed.
type Reader struct {
	r         io.Reader
	version   uint32
	crc       hash.Hash32
	inSection bool
	remaining uint64
	scratch   [12]byte
}

// NewReader validates the stream header. magic must match what the
// writer used; the stream's version is available via Version for the
// caller to gate on.
func NewReader(r io.Reader, magic string) (*Reader, error) {
	if len(magic) != MagicLen {
		return nil, fmt.Errorf("snapfmt: magic %q must be %d bytes", magic, MagicLen)
	}
	sr := &Reader{r: r}
	var hdr [MagicLen + 4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("snapfmt: header: %w", noEOF(err))
	}
	if string(hdr[:MagicLen]) != magic {
		return nil, fmt.Errorf("snapfmt: bad magic %q, want %q", hdr[:MagicLen], magic)
	}
	sr.version = binary.BigEndian.Uint32(hdr[MagicLen:])
	return sr, nil
}

// Version returns the stream's version word.
func (sr *Reader) Version() uint32 { return sr.version }

// Next reads the next section header. It returns io.EOF — the only
// sentinel callers should treat as "clean end of stream" — when the end
// marker is reached; any truncation or framing damage is a non-EOF
// error.
func (sr *Reader) Next() (id uint32, size uint64, err error) {
	if sr.inSection {
		return 0, 0, fmt.Errorf("snapfmt: Next inside open section")
	}
	if _, err := io.ReadFull(sr.r, sr.scratch[:12]); err != nil {
		return 0, 0, fmt.Errorf("snapfmt: section header: %w", noEOF(err))
	}
	id = binary.BigEndian.Uint32(sr.scratch[0:])
	size = binary.BigEndian.Uint64(sr.scratch[4:])
	if id == 0 {
		if size != 0 {
			return 0, 0, fmt.Errorf("snapfmt: end marker carries size %d", size)
		}
		return 0, 0, io.EOF
	}
	sr.inSection = true
	sr.remaining = size
	sr.crc = crc32.New(crcTable)
	return id, size, nil
}

// Read consumes payload bytes of the open section, returning io.EOF at
// the section's declared end. Truncated underlying input surfaces as
// io.ErrUnexpectedEOF.
func (sr *Reader) Read(p []byte) (int, error) {
	if !sr.inSection {
		return 0, fmt.Errorf("snapfmt: Read outside section")
	}
	if sr.remaining == 0 {
		return 0, io.EOF
	}
	if uint64(len(p)) > sr.remaining {
		p = p[:sr.remaining]
	}
	n, err := io.ReadFull(sr.r, p)
	sr.crc.Write(p[:n])
	sr.remaining -= uint64(n)
	if err != nil {
		return n, fmt.Errorf("snapfmt: payload: %w", noEOF(err))
	}
	return n, nil
}

// End closes the open section: the payload must be fully consumed, and
// the CRC trailer must match what was read.
func (sr *Reader) End() error {
	if !sr.inSection {
		return fmt.Errorf("snapfmt: End outside section")
	}
	if sr.remaining != 0 {
		return fmt.Errorf("snapfmt: section has %d unread bytes", sr.remaining)
	}
	if _, err := io.ReadFull(sr.r, sr.scratch[:4]); err != nil {
		return fmt.Errorf("snapfmt: crc: %w", noEOF(err))
	}
	want := binary.BigEndian.Uint32(sr.scratch[:4])
	if got := sr.crc.Sum32(); got != want {
		return fmt.Errorf("snapfmt: section crc %08x, want %08x", got, want)
	}
	sr.inSection = false
	sr.crc = nil
	return nil
}

// noEOF converts a bare io.EOF into io.ErrUnexpectedEOF: inside the
// framing, a clean EOF only ever means the stream was cut short, and
// callers looping on io.EOF sentinels must not mistake truncation for
// a clean end.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
