package hitlist

import (
	"strings"
	"testing"
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/asdb"
	"hitlist6/internal/collector"
	"hitlist6/internal/simnet"
)

func TestDatasetBasics(t *testing.T) {
	d := NewDataset("test")
	a1 := addr.MustParse("2001:db8::1")
	a2 := addr.MustParse("2001:db8::2")
	d.Add(a1)
	d.Add(a1) // idempotent
	d.AddAll([]addr.Addr{a2})
	if d.Len() != 2 {
		t.Fatalf("Len: %d", d.Len())
	}
	if !d.Contains(a1) || !d.Contains(a2) {
		t.Error("membership broken")
	}
	if d.Contains(addr.MustParse("2001:db8::3")) {
		t.Error("phantom member")
	}
	if got := len(d.Addrs()); got != 2 {
		t.Errorf("Addrs: %d", got)
	}
	n := 0
	d.Each(func(addr.Addr) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop: %d", n)
	}
}

func TestIntersectionSize(t *testing.T) {
	a := NewDataset("a")
	b := NewDataset("b")
	for i := 1; i <= 10; i++ {
		a.Add(addr.FromParts(0x20010db8_00000000, uint64(i)))
	}
	for i := 6; i <= 15; i++ {
		b.Add(addr.FromParts(0x20010db8_00000000, uint64(i)))
	}
	if got := IntersectionSize(a, b); got != 5 {
		t.Errorf("intersection: %d want 5", got)
	}
	if got := IntersectionSize(b, a); got != 5 {
		t.Errorf("intersection symmetric: %d want 5", got)
	}
	if got := IntersectionSize(a, NewDataset("empty")); got != 0 {
		t.Errorf("empty intersection: %d", got)
	}
}

func TestComputeStats(t *testing.T) {
	db := asdb.NewDB()
	if err := db.AddAS(asdb.AS{ASN: 100, Prefixes: []addr.Prefix{addr.MustParsePrefix("2001:db8::/32")}}); err != nil {
		t.Fatal(err)
	}
	if err := db.AddAS(asdb.AS{ASN: 200, Prefixes: []addr.Prefix{addr.MustParsePrefix("2400::/24")}}); err != nil {
		t.Fatal(err)
	}
	d := NewDataset("d")
	d.Add(addr.MustParse("2001:db8:1:1::1"))
	d.Add(addr.MustParse("2001:db8:1:2::1")) // same /48 as above
	d.Add(addr.MustParse("2400:0:1::1"))
	ref := NewDataset("ref")
	ref.Add(addr.MustParse("2001:db8:1:1::1")) // shares addr, ASN, /48

	st := ComputeStats(d, db, ref)
	if st.Addrs != 3 || st.ASNs != 2 || st.P48s != 2 {
		t.Errorf("stats: %+v", st)
	}
	if st.AvgPer48 != 1.5 {
		t.Errorf("avg per 48: %v", st.AvgPer48)
	}
	if st.CommonAddrs != 1 || st.CommonASNs != 1 || st.CommonP48s != 1 {
		t.Errorf("common: %+v", st)
	}
	// No reference: commons zero.
	st2 := ComputeStats(d, db, nil)
	if st2.CommonAddrs != 0 || st2.CommonASNs != 0 {
		t.Errorf("nil reference commons: %+v", st2)
	}
}

func TestAliasList(t *testing.T) {
	l := NewAliasList()
	p := addr.MustParse("2001:db8:1:2::").P64()
	if l.Contains(p) {
		t.Error("empty list contains")
	}
	l.Add(p)
	l.Add(p)
	if !l.Contains(p) || l.Len() != 1 {
		t.Errorf("len=%d", l.Len())
	}
	n := 0
	l.Each(func(addr.Prefix64) bool { n++; return true })
	if n != 1 {
		t.Errorf("Each visited %d", n)
	}
}

func TestRelease48Truncation(t *testing.T) {
	d := NewDataset("corpus")
	// Two addresses in one /48, one in another; full IIDs must not leak.
	d.Add(addr.MustParse("2001:db8:aaaa:1:1234:5678:9abc:def0"))
	d.Add(addr.MustParse("2001:db8:aaaa:2::1"))
	d.Add(addr.MustParse("2400:cb00:1::99"))
	out := Release(d)
	if !strings.Contains(out, "2001:db8:aaaa::/48") {
		t.Errorf("missing /48:\n%s", out)
	}
	if !strings.Contains(out, "2400:cb00:1::/48") {
		t.Errorf("missing second /48:\n%s", out)
	}
	if strings.Contains(out, "9abc") || strings.Contains(out, "def0") {
		t.Error("full address leaked into release")
	}
	if !strings.Contains(out, "2 active /48") {
		t.Errorf("header should count 2 prefixes:\n%s", out)
	}
}

func TestFromCollector(t *testing.T) {
	c := collector.New()
	t0 := time.Date(2022, 2, 1, 0, 0, 0, 0, time.UTC)
	c.Observe(addr.MustParse("2001:db8::1"), t0, 0)
	c.Observe(addr.MustParse("2001:db8::2"), t0, 1)
	c.Observe(addr.MustParse("2001:db8::1"), t0.Add(time.Hour), 2)
	d := FromCollector("ntp", c)
	if d.Len() != 2 {
		t.Errorf("Len: %d", d.Len())
	}
}

// TestFromCollectorDeterministic pins the canonical-order contract: the
// same corpus — even built in different insertion orders — must yield
// identically ordered datasets on every run, so dataset-derived analyses
// and serializations stop depending on map iteration order.
func TestFromCollectorDeterministic(t *testing.T) {
	t0 := time.Date(2022, 2, 1, 0, 0, 0, 0, time.UTC)
	var addrs []addr.Addr
	state := uint64(0xd5)
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := 0; i < 500; i++ {
		addrs = append(addrs, addr.FromParts(next(), next()))
	}

	forward, reverse := collector.New(), collector.New()
	for i, a := range addrs {
		forward.Observe(a, t0.Add(time.Duration(i)*time.Second), 0)
	}
	for i := len(addrs) - 1; i >= 0; i-- {
		reverse.Observe(addrs[i], t0.Add(time.Duration(i)*time.Second), 0)
	}

	want := FromCollector("ntp", forward).Addrs()
	for run := 0; run < 3; run++ {
		for label, c := range map[string]*collector.Collector{"forward": forward, "reverse": reverse} {
			got := FromCollector("ntp", c).Addrs()
			if len(got) != len(want) {
				t.Fatalf("%s run %d: %d addrs, want %d", label, run, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s run %d: order diverges at %d: %s vs %s",
						label, run, i, got[i], want[i])
				}
			}
		}
	}
	// And the order is the canonical (sorted) one.
	for i := 1; i < len(want); i++ {
		prev, cur := want[i-1], want[i]
		if prev.Hi() > cur.Hi() || (prev.Hi() == cur.Hi() && prev.Lo() >= cur.Lo()) {
			t.Fatalf("dataset order not canonical at %d: %s then %s", i, prev, cur)
		}
	}
}

func TestSplit48s(t *testing.T) {
	p := addr.MustParsePrefix("2001:db8::/44")
	got := split48s(p, 0)
	if len(got) != 16 {
		t.Fatalf("/44 splits into %d /48s, want 16", len(got))
	}
	seen := make(map[addr.Prefix48]bool)
	for _, p48 := range got {
		if seen[p48] {
			t.Fatal("duplicate /48")
		}
		seen[p48] = true
		if !p.Contains(p48.Addr()) {
			t.Fatalf("/48 %s outside parent", p48)
		}
	}
	// Cap respected.
	if got := split48s(p, 4); len(got) != 4 {
		t.Errorf("cap: %d", len(got))
	}
	// Longer-than-48 prefixes collapse to their /48.
	long := addr.MustParsePrefix("2001:db8:1:2::/64")
	if got := split48s(long, 0); len(got) != 1 || got[0] != long.Addr().P48() {
		t.Errorf("long prefix: %v", got)
	}
}

func buildWorld(t testing.TB, seed int64, scale float64, days int) *simnet.World {
	t.Helper()
	cfg := simnet.DefaultConfig(seed, scale)
	cfg.Days = days
	w, err := simnet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBuildActiveHitlist(t *testing.T) {
	w := buildWorld(t, 41, 0.03, 20)
	cfg := DefaultActiveConfig(w.Origin, w.End, 7)
	cfg.Rounds = 2
	res, err := BuildActiveHitlist(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dataset.Len() == 0 {
		t.Fatal("empty hitlist")
	}
	if res.ProbesSent == 0 {
		t.Error("no probes counted")
	}
	// All routers must be present (they respond and are seeds).
	for _, r := range w.Routers() {
		if !res.Dataset.Contains(r) {
			t.Errorf("router %s missing from hitlist", r)
		}
	}
	// No published address may fall in a published aliased prefix.
	res.Dataset.Each(func(a addr.Addr) bool {
		if res.Aliases.Contains(a.P64()) {
			t.Errorf("aliased address %s in hitlist", a)
			return false
		}
		return true
	})
	// Detected aliases must be ground truth aliased.
	res.Aliases.Each(func(p addr.Prefix64) bool {
		if !w.IsAliased(p) {
			t.Errorf("false alias %s", p)
		}
		return true
	})
	// The hitlist must skew low-entropy (infrastructure), unlike the NTP
	// corpus (Figure 1).
	low, total := 0, 0
	res.Dataset.Each(func(a addr.Addr) bool {
		total++
		if a.IID().EntropyClass() == addr.LowEntropy {
			low++
		}
		return true
	})
	if low*2 < total {
		t.Errorf("hitlist entropy mix implausible: %d/%d low", low, total)
	}
}

func TestBuildCAIDA48(t *testing.T) {
	w := buildWorld(t, 42, 0.03, 20)
	d, err := BuildCAIDA48(w, CAIDAConfig{
		At:          w.Origin.Add(10 * 24 * time.Hour),
		SourceASN:   7922,
		Seed:        3,
		MaxSplit48s: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() == 0 {
		t.Fatal("empty CAIDA dataset")
	}
	// CAIDA's discoveries are nearly all low-entropy infrastructure
	// (Figure 1's leftmost curve).
	low, total := 0, 0
	d.Each(func(a addr.Addr) bool {
		total++
		if a.IID().EntropyClass() == addr.LowEntropy {
			low++
		}
		return true
	})
	if float64(low) < 0.8*float64(total) {
		t.Errorf("CAIDA entropy mix: %d/%d low", low, total)
	}
}
