package hitlist

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hitlist6/internal/addr"
)

func TestDatasetRoundTrip(t *testing.T) {
	d := NewDataset("round trip corpus")
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		// Clustered addresses (shared hi) to exercise delta encoding.
		hi := 0x20010db8_00000000 | uint64(rng.Intn(64))<<16
		d.Add(addr.FromParts(hi, rng.Uint64()))
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name {
		t.Errorf("name: %q", got.Name)
	}
	if got.Len() != d.Len() {
		t.Fatalf("len: %d want %d", got.Len(), d.Len())
	}
	d.Each(func(a addr.Addr) bool {
		if !got.Contains(a) {
			t.Fatalf("missing %s after round trip", a)
		}
		return true
	})
}

func TestDatasetRoundTripProperty(t *testing.T) {
	f := func(addrsRaw [][16]byte, name string) bool {
		if len(name) > 100 {
			name = name[:100]
		}
		d := NewDataset(name)
		for _, raw := range addrsRaw {
			d.Add(addr.Addr(raw))
		}
		var buf bytes.Buffer
		if _, err := d.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadDataset(&buf)
		if err != nil {
			return false
		}
		if got.Len() != d.Len() || got.Name != d.Name {
			return false
		}
		ok := true
		d.Each(func(a addr.Addr) bool {
			if !got.Contains(a) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDatasetCompression(t *testing.T) {
	// Clustered addresses must encode far below 16 bytes each.
	d := NewDataset("dense")
	for i := 0; i < 10000; i++ {
		d.Add(addr.FromParts(0x20010db8_00000000, uint64(i)))
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	perAddr := float64(buf.Len()) / 10000
	if perAddr > 6 {
		t.Errorf("dense corpus encodes at %.1f bytes/addr, want < 6", perAddr)
	}
}

func TestReadDatasetErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("NOPE............"),
		"truncated":   []byte("HL6D\x01"),
		"bad version": append([]byte("HL6D"), 0x63, 0x00),
	}
	for name, raw := range cases {
		if _, err := ReadDataset(bytes.NewReader(raw)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadDatasetRejectsHugeName(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("HL6D")
	buf.WriteByte(1)                                // version
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0x7f}) // absurd name length
	if _, err := ReadDataset(&buf); err == nil {
		t.Error("expected error for huge name length")
	}
}

func TestAliasListRoundTrip(t *testing.T) {
	l := NewAliasList()
	l.Add(addr.MustParse("2001:db8:1:2::").P64())
	l.Add(addr.MustParse("2400:cb00:aaaa:bbbb::").P64())
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# aliased-prefixes: 2") {
		t.Errorf("header missing:\n%s", out)
	}
	got, err := ReadAliasList(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("len: %d", got.Len())
	}
	if !got.Contains(addr.MustParse("2001:db8:1:2::").P64()) {
		t.Error("entry missing after round trip")
	}
}

func TestReadAliasListErrors(t *testing.T) {
	if _, err := ReadAliasList(strings.NewReader("not a prefix\n")); err == nil {
		t.Error("garbage line should fail")
	}
	if _, err := ReadAliasList(strings.NewReader("2001:db8::/48\n")); err == nil {
		t.Error("non-/64 prefix should fail")
	}
	// Comments and blanks are fine.
	l, err := ReadAliasList(strings.NewReader("# comment\n\n2001:db8::/64\n"))
	if err != nil || l.Len() != 1 {
		t.Errorf("comment handling: %v %d", err, l.Len())
	}
}
