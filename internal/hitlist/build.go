package hitlist

import (
	"maps"
	"math/rand"
	"slices"
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/collector"
	"hitlist6/internal/rdns"
	"hitlist6/internal/scan"
	"hitlist6/internal/simnet"
	"hitlist6/internal/tga"
)

// FromCollector converts a passive collector's corpus into a Dataset.
// Addresses are inserted in canonical (sorted) order, so two runs over
// the same corpus produce identically ordered datasets — and every
// downstream Each/Addrs consumer inherits that determinism.
func FromCollector(name string, c *collector.Collector) *Dataset {
	d := NewDataset(name)
	c.AddrsCanonical(func(a addr.Addr, _ collector.AddrRecord) bool {
		d.Add(a)
		return true
	})
	return d
}

// ActiveConfig parameterizes the IPv6-Hitlist-style active pipeline.
type ActiveConfig struct {
	// Rounds is the number of snapshot campaigns across the window
	// (the real Hitlist publishes weekly).
	Rounds int
	// Start/End bound the campaign window.
	Start, End time.Time
	// SourceASN is the measurement vantage's origin AS.
	SourceASN uint32
	// Seed drives scan permutations and target generation.
	Seed uint64
	// TGALowBytes is how many low-byte candidates (::1, ::2, ...) target
	// generation derives per discovered /64.
	TGALowBytes int
	// AliasProbes and AliasThreshold parameterize alias pre-filtering.
	AliasProbes, AliasThreshold int
	// UseEntropyIP enables the Entropy/IP-style target generation model
	// trained on each round's responsive set.
	UseEntropyIP bool
	// EntropyIPBudget is the candidate count per round for the model.
	EntropyIPBudget int
	// UseRDNS enables ip6.arpa NXDOMAIN tree-walk enumeration as a seed
	// source (Fiebig et al.).
	UseRDNS bool
	// RDNSQueryBudget bounds the DNS queries per round (0 = unlimited).
	RDNSQueryBudget uint64
}

// DefaultActiveConfig mirrors the Hitlist's cadence across a window.
func DefaultActiveConfig(start, end time.Time, seed uint64) ActiveConfig {
	return ActiveConfig{
		Rounds:          4,
		Start:           start,
		End:             end,
		SourceASN:       21928,
		Seed:            seed,
		TGALowBytes:     4,
		AliasProbes:     16,
		AliasThreshold:  12,
		UseEntropyIP:    true,
		EntropyIPBudget: 512,
		UseRDNS:         true,
		RDNSQueryBudget: 0,
	}
}

// ActiveResult is the output of the active pipeline: the hitlist plus its
// published alias list.
type ActiveResult struct {
	Dataset *Dataset
	Aliases *AliasList
	// ProbesSent counts every ICMPv6 probe the campaign emitted, for the
	// paper's active-vs-passive cost comparison.
	ProbesSent uint64
}

// BuildActiveHitlist runs the Gasser-et-al-style pipeline against the
// simulated Internet:
//
//  1. seed targets from public knowledge: router addresses (public
//     traceroute archives) and ::1 of every routed /48 (DNS/system lists);
//  2. Yarrp traces toward seeds, harvesting every responding hop (this is
//     where CPE WAN addresses surface);
//  3. target generation: low-byte candidates in every /64 learned so far;
//  4. ZMap6 verification of all candidates;
//  5. alias detection on responding /64s, publishing the alias list and
//     filtering aliased responses out of the hitlist.
//
// The result is infrastructure-heavy and client-poor — exactly the bias
// the paper demonstrates against its NTP corpus.
func BuildActiveHitlist(w *simnet.World, cfg ActiveConfig) (*ActiveResult, error) {
	res := &ActiveResult{
		Dataset: NewDataset("IPv6 Hitlist (simulated)"),
		Aliases: NewAliasList(),
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	window := cfg.End.Sub(cfg.Start)
	responsive := make(map[addr.Addr]struct{})

	// Loop-invariant seeds, built once: public traceroute archives
	// (routers) and systematic ::1 probing of routed /48s. The world's
	// router set and routing table do not change across rounds, and at
	// simulation scale re-deriving the /48 split every round dominated
	// campaign setup. Time-dependent sources (PublicSeeds, the rDNS tree
	// walk) stay inside the loop.
	staticSeeds := append([]addr.Addr(nil), w.Routers()...)
	for _, rp := range w.ASDB.RoutedPrefixes() {
		for _, p48 := range split48s(rp.Prefix, 64) {
			staticSeeds = append(staticSeeds, p48.Addr().WithIID(1))
		}
	}

	for round := 0; round < cfg.Rounds; round++ {
		at := cfg.Start.Add(window * time.Duration(round) / time.Duration(cfg.Rounds))

		// Step 1: seeds — the static sources above plus the DNS/
		// public-list snapshot (servers, dynamic-DNS CPE). The last
		// source is what gives the real Hitlist its CPE-and-server
		// middle ground.
		seeds := make([]addr.Addr, len(staticSeeds), len(staticSeeds)+256)
		copy(seeds, staticSeeds)
		seeds = append(seeds, w.PublicSeeds(at)...)
		if cfg.UseRDNS {
			// ip6.arpa tree walk over every routed prefix.
			zone := rdns.BuildZone(w, at)
			for _, rp := range w.ASDB.RoutedPrefixes() {
				seeds = append(seeds, rdns.Walk(zone, rp.Prefix, cfg.RDNSQueryBudget)...)
			}
		}

		// Step 2: Yarrp over the seeds.
		y := &scan.Yarrp{World: w, SourceASN: cfg.SourceASN, Seed: cfg.Seed + uint64(round)}
		traces, err := y.Trace(seeds, at)
		if err != nil {
			return nil, err
		}
		res.ProbesSent += y.Traces * 8 // ~8 TTL probes per trace
		discovered := scan.DiscoveredAddrs(traces)

		// Canonical views of the round's sets: everything that flows
		// into probe target lists or model training is ordered, so the
		// campaign's probe stream is identical run to run regardless of
		// map iteration order (the mapiter lint invariant).
		discSorted := sortedAddrs(discovered)
		respSorted := sortedAddrs(responsive)

		// Step 3: target generation from every /64 seen so far.
		p64s := make(map[addr.Prefix64]struct{})
		for _, a := range discSorted {
			p64s[a.P64()] = struct{}{}
		}
		for _, a := range respSorted {
			p64s[a.P64()] = struct{}{}
		}
		candidates := append([]addr.Addr(nil), discSorted...)
		for _, p := range slices.Sorted(maps.Keys(p64s)) {
			for lb := 1; lb <= cfg.TGALowBytes; lb++ {
				candidates = append(candidates, p.Addr().WithIID(addr.IID(lb)))
			}
		}

		// Step 3b: Entropy/IP-style model candidates, trained on what the
		// campaign believes is responsive so far. As on the real Internet,
		// the model inherits the training set's infrastructure bias and
		// hit rates are low — the ablation benchmarks quantify this.
		if cfg.UseEntropyIP && len(responsive)+len(discovered) >= 2 {
			train := make([]addr.Addr, 0, len(respSorted)+len(discSorted))
			train = append(train, respSorted...)
			train = append(train, discSorted...)
			if model, err := tga.NewEntropyIP(train); err == nil {
				rng := rand.New(rand.NewSource(int64(cfg.Seed) + int64(round)))
				candidates = append(candidates, model.Generate(cfg.EntropyIPBudget, rng)...)
			}
		}

		// Step 4: ZMap6 verification.
		z := &scan.ZMap6{World: w, Seed: cfg.Seed ^ uint64(round)<<8}
		results, err := z.Scan(candidates, at)
		if err != nil {
			return nil, err
		}
		res.ProbesSent += z.Sent
		for _, r := range results {
			if r.Responded {
				responsive[r.Target] = struct{}{}
			}
		}

		// Step 5: alias detection over responding /64s. responsive grew
		// in step 4, so the canonical view is rebuilt.
		hot := make(map[addr.Prefix64]int)
		for _, a := range sortedAddrs(responsive) {
			hot[a.P64()]++
		}
		for _, p := range slices.Sorted(maps.Keys(hot)) {
			if res.Aliases.Contains(p) {
				continue
			}
			if scan.DetectAlias(w, p, at, cfg.AliasProbes, cfg.AliasThreshold,
				int64(cfg.Seed)+int64(uint64(p))) {
				res.Aliases.Add(p)
			}
			res.ProbesSent += uint64(cfg.AliasProbes)
		}
	}

	// Publish: responsive addresses outside aliased prefixes.
	for _, a := range sortedAddrs(responsive) {
		if !res.Aliases.Contains(a.P64()) {
			res.Dataset.Add(a)
		}
	}
	return res, nil
}

// CAIDAConfig parameterizes the routed-/48 campaign.
type CAIDAConfig struct {
	// At is the (single) campaign date.
	At time.Time
	// SourceASN is the Ark vantage's origin AS.
	SourceASN uint32
	// Seed drives the target permutation.
	Seed uint64
	// MaxSplit48s caps the number of /48s probed per routed prefix
	// (0 = unlimited), bounding benchmark cost at large scales.
	MaxSplit48s int
}

// BuildCAIDA48 runs the CAIDA methodology (§3): split every routed prefix
// of length <= /48 into /48s — prefixes shorter than /32 get a single
// probe — and Yarrp to the ::1 of each. Discovered addresses are every
// responding hop plus responding destinations.
func BuildCAIDA48(w *simnet.World, cfg CAIDAConfig) (*Dataset, error) {
	var targets []addr.Addr
	for _, rp := range w.ASDB.RoutedPrefixes() {
		if rp.Prefix.Bits() < 32 {
			targets = append(targets, rp.Prefix.Addr().WithIID(1))
			continue
		}
		for _, p48 := range split48s(rp.Prefix, cfg.MaxSplit48s) {
			targets = append(targets, p48.Addr().WithIID(1))
		}
	}
	y := &scan.Yarrp{World: w, SourceASN: cfg.SourceASN, Seed: cfg.Seed}
	traces, err := y.Trace(targets, cfg.At)
	if err != nil {
		return nil, err
	}
	d := NewDataset("CAIDA routed /48 (simulated)")
	for _, a := range sortedAddrs(scan.DiscoveredAddrs(traces)) {
		d.Add(a)
	}
	return d, nil
}

// sortedAddrs renders an address set in canonical ascending order: the
// shape every probe target list and training set is built from, so
// active campaigns are reproducible run to run.
func sortedAddrs(set map[addr.Addr]struct{}) []addr.Addr {
	out := make([]addr.Addr, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	slices.SortFunc(out, func(x, y addr.Addr) int {
		switch {
		case x.Less(y):
			return -1
		case y.Less(x):
			return 1
		}
		return 0
	})
	return out
}

// split48s enumerates the /48s inside a prefix of length 32..48. limit
// caps the enumeration (0 = no cap).
func split48s(p addr.Prefix, limit int) []addr.Prefix48 {
	bits := p.Bits()
	if bits > 48 {
		return []addr.Prefix48{p.Addr().P48()}
	}
	n := 1 << (48 - bits)
	if limit > 0 && n > limit {
		n = limit
	}
	base := p.Addr().Hi()
	out := make([]addr.Prefix48, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, addr.Prefix48(base|uint64(i)<<16))
	}
	return out
}
