package hitlist

import (
	"math/rand"
	"testing"

	"hitlist6/internal/addr"
)

// mapIntersection is the pre-engine baseline: hash-probe every element
// of the smaller set against the larger. The sorted-merge implementation
// must agree on every overlap shape.
func mapIntersection(a, b *Dataset) int {
	set := make(map[addr.Addr]struct{}, b.Len())
	b.Each(func(x addr.Addr) bool {
		set[x] = struct{}{}
		return true
	})
	n := 0
	a.Each(func(x addr.Addr) bool {
		if _, ok := set[x]; ok {
			n++
		}
		return true
	})
	return n
}

func randAddrs(rng *rand.Rand, n int) []addr.Addr {
	out := make([]addr.Addr, n)
	for i := range out {
		// Small hi-space so overlaps and shared /48s actually happen.
		out[i] = addr.FromParts(0x20010db8_00000000|uint64(rng.Intn(64))<<16, uint64(rng.Intn(1024)))
	}
	return out
}

func fromAddrs(name string, as []addr.Addr) *Dataset {
	d := NewDataset(name)
	d.AddAll(as)
	return d
}

// TestIntersectionAdversarial drives the sorted-merge intersection
// through the overlap shapes that break merge walks: empty sides,
// identical sets, strict subsets, disjoint ranges, interleaved ranges
// and random multisets with duplicate insertions.
func TestIntersectionAdversarial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	mk := func(n int) *Dataset { return fromAddrs("d", randAddrs(rng, n)) }

	empty := NewDataset("empty")
	full := mk(500)
	cases := []struct {
		name string
		a, b *Dataset
	}{
		{"empty-empty", empty, NewDataset("e2")},
		{"empty-full", empty, full},
		{"full-empty", full, empty},
		{"identical", full, fromAddrs("same", full.Addrs())},
		{"subset", full, fromAddrs("sub", full.Addrs()[:100])},
		{"superset", fromAddrs("sub", full.Addrs()[200:]), full},
	}
	// Disjoint and interleaved ranges.
	var lowHalf, highHalf, even, odd []addr.Addr
	for i := 0; i < 400; i++ {
		a := addr.FromParts(0x20010db8_00000000, uint64(i))
		if i < 200 {
			lowHalf = append(lowHalf, a)
		} else {
			highHalf = append(highHalf, a)
		}
		if i%2 == 0 {
			even = append(even, a)
		} else {
			odd = append(odd, a)
		}
	}
	cases = append(cases,
		struct {
			name string
			a, b *Dataset
		}{"disjoint-ranges", fromAddrs("lo", lowHalf), fromAddrs("hi", highHalf)},
		struct {
			name string
			a, b *Dataset
		}{"interleaved", fromAddrs("even", even), fromAddrs("odd", odd)},
	)
	for i := 0; i < 20; i++ {
		cases = append(cases, struct {
			name string
			a, b *Dataset
		}{"random", mk(rng.Intn(300)), mk(rng.Intn(300))})
	}

	for _, tc := range cases {
		want := mapIntersection(tc.a, tc.b)
		if got := IntersectionSize(tc.a, tc.b); got != want {
			t.Errorf("%s: IntersectionSize = %d, map baseline = %d", tc.name, got, want)
		}
		if got := IntersectionSize(tc.b, tc.a); got != want {
			t.Errorf("%s (swapped): IntersectionSize = %d, map baseline = %d", tc.name, got, want)
		}
		// EachCommon must visit exactly the intersection, in canonical
		// order, with indices that resolve to equal addresses.
		visited := 0
		prevSet := false
		var prev addr.Addr
		EachCommon(tc.a, tc.b, func(ai, bi int) bool {
			x, y := tc.a.View()[ai], tc.b.View()[bi]
			if x != y {
				t.Fatalf("%s: EachCommon indices disagree: %v vs %v", tc.name, x, y)
			}
			if prevSet && !prev.Less(x) {
				t.Fatalf("%s: EachCommon out of order", tc.name)
			}
			prev, prevSet = x, true
			visited++
			return true
		})
		if visited != want {
			t.Errorf("%s: EachCommon visited %d, want %d", tc.name, visited, want)
		}
	}
}

// TestCommonP48sAgainstMapBaseline checks the merged /48 intersection
// against explicit prefix sets.
func TestCommonP48sAgainstMapBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		a := fromAddrs("a", randAddrs(rng, rng.Intn(400)))
		b := fromAddrs("b", randAddrs(rng, rng.Intn(400)))
		pa := make(map[addr.Prefix48]struct{})
		a.Each(func(x addr.Addr) bool { pa[x.P48()] = struct{}{}; return true })
		want := 0
		seen := make(map[addr.Prefix48]struct{})
		b.Each(func(x addr.Addr) bool {
			p := x.P48()
			if _, dup := seen[p]; dup {
				return true
			}
			seen[p] = struct{}{}
			if _, ok := pa[p]; ok {
				want++
			}
			return true
		})
		if got := CommonP48s(a, b); got != want {
			t.Errorf("CommonP48s = %d, map baseline = %d", got, want)
		}
	}
}

// TestDatasetSealing exercises the lazy sort-dedup seal: interleaved
// out-of-order inserts, duplicate inserts and reads.
func TestDatasetSealing(t *testing.T) {
	d := NewDataset("seal")
	a1 := addr.MustParse("2001:db8::1")
	a2 := addr.MustParse("2001:db8::2")
	a3 := addr.MustParse("2001:db8::3")
	d.Add(a3)
	d.Add(a1)
	if !d.Contains(a1) || !d.Contains(a3) || d.Contains(a2) {
		t.Fatal("membership wrong after out-of-order insert")
	}
	d.Add(a2) // insert after a read re-dirties the slab
	d.Add(a2) // duplicate
	d.Add(a3) // duplicate of an earlier element
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
	view := d.View()
	for i := 1; i < len(view); i++ {
		if !view[i-1].Less(view[i]) {
			t.Fatalf("view not strictly sorted: %v", view)
		}
	}
	// Addrs returns a copy: mutating it must not corrupt the dataset.
	cp := d.Addrs()
	cp[0] = addr.MustParse("ffff::")
	if !d.Contains(a1) {
		t.Fatal("Addrs copy aliases the dataset slab")
	}
}
