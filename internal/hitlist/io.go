package hitlist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strings"

	"hitlist6/internal/addr"
)

// Binary dataset format: a magic header, a varint count, then the sorted
// addresses delta-encoded as (varint hi-delta, varint lo) pairs — sorted
// corpora compress hard because consecutive addresses usually share the
// network half. The format is versioned and self-checking.
//
// Alias lists use the textual one-prefix-per-line format the real IPv6
// Hitlist service publishes.

const (
	datasetMagic   = "HL6D"
	datasetVersion = 1
)

// WriteTo serializes the dataset. It implements io.WriterTo.
func (d *Dataset) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	n, err := bw.WriteString(datasetMagic)
	written += int64(n)
	if err != nil {
		return written, err
	}
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		k := binary.PutUvarint(scratch[:], v)
		m, err := bw.Write(scratch[:k])
		written += int64(m)
		return err
	}
	if err := writeUvarint(datasetVersion); err != nil {
		return written, err
	}
	if err := writeUvarint(uint64(len(d.Name))); err != nil {
		return written, err
	}
	m, err := bw.WriteString(d.Name)
	written += int64(m)
	if err != nil {
		return written, err
	}
	// The dataset's backing slab is already canonical (sorted,
	// deduplicated) — exactly the order the delta encoding wants.
	addrs := d.View()
	if err := writeUvarint(uint64(len(addrs))); err != nil {
		return written, err
	}
	prevHi := uint64(0)
	for _, a := range addrs {
		hi := a.Hi()
		if err := writeUvarint(hi - prevHi); err != nil {
			return written, err
		}
		if err := writeUvarint(a.Lo()); err != nil {
			return written, err
		}
		prevHi = hi
	}
	if err := bw.Flush(); err != nil {
		return written, err
	}
	return written, nil
}

// ReadDataset deserializes a dataset written by WriteTo.
func ReadDataset(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(datasetMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("hitlist: reading magic: %w", err)
	}
	if string(magic) != datasetMagic {
		return nil, fmt.Errorf("hitlist: bad magic %q", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("hitlist: reading version: %w", err)
	}
	if version != datasetVersion {
		return nil, fmt.Errorf("hitlist: unsupported version %d", version)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("hitlist: reading name length: %w", err)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("hitlist: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("hitlist: reading name: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("hitlist: reading count: %w", err)
	}
	d := NewDataset(string(name))
	prevHi := uint64(0)
	for i := uint64(0); i < count; i++ {
		dHi, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("hitlist: address %d: %w", i, err)
		}
		lo, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("hitlist: address %d: %w", i, err)
		}
		prevHi += dHi
		d.Add(addr.FromParts(prevHi, lo))
	}
	if uint64(d.Len()) != count {
		return nil, fmt.Errorf("hitlist: %d duplicate addresses in stream", count-uint64(d.Len()))
	}
	return d, nil
}

// WriteTo serializes the alias list in the textual format the IPv6
// Hitlist service publishes: one /64 prefix per line, sorted, with a
// comment header.
func (l *AliasList) WriteTo(w io.Writer) (int64, error) {
	lines := make([]string, 0, l.Len())
	l.Each(func(p addr.Prefix64) bool {
		lines = append(lines, p.String())
		return true
	})
	sort.Strings(lines)
	var b strings.Builder
	fmt.Fprintf(&b, "# aliased-prefixes: %d\n", len(lines))
	for _, line := range lines {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// ReadAliasList parses the textual alias list format. Blank lines and
// comments are skipped; entries must be /64 prefixes.
func ReadAliasList(r io.Reader) (*AliasList, error) {
	l := NewAliasList()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		p, err := addr.ParsePrefix(line)
		if err != nil {
			return nil, fmt.Errorf("hitlist: alias list line %d: %w", lineNo, err)
		}
		if p.Bits() != 64 {
			return nil, fmt.Errorf("hitlist: alias list line %d: /%d prefix, want /64", lineNo, p.Bits())
		}
		l.Add(p.Addr().P64())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return l, nil
}
