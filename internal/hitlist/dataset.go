// Package hitlist builds and compares the three address corpora of the
// paper's Table 1: the passive NTP corpus, an IPv6-Hitlist-style active
// hitlist (seed lists + Yarrp + ZMap6 + target generation + alias
// pre-filtering, after Gasser et al.), and a CAIDA-style routed-/48 Yarrp
// campaign. It also implements the /48-truncated release format the
// paper's ethics section mandates.
package hitlist

import (
	"fmt"
	"sort"
	"strings"

	"hitlist6/internal/addr"
	"hitlist6/internal/asdb"
)

// Dataset is a named set of IPv6 addresses with set algebra and the
// aggregate statistics Table 1 reports. Iteration follows insertion
// order: builders that insert canonically (FromCollector, sorted seed
// lists) get run-to-run deterministic datasets for free, instead of
// inheriting map iteration order.
type Dataset struct {
	Name  string
	addrs map[addr.Addr]struct{}
	order []addr.Addr
}

// NewDataset returns an empty dataset.
func NewDataset(name string) *Dataset {
	return &Dataset{Name: name, addrs: make(map[addr.Addr]struct{})}
}

// Add inserts an address; duplicates keep their first position.
func (d *Dataset) Add(a addr.Addr) {
	if _, ok := d.addrs[a]; ok {
		return
	}
	d.addrs[a] = struct{}{}
	d.order = append(d.order, a)
}

// AddAll inserts every address of the slice.
func (d *Dataset) AddAll(as []addr.Addr) {
	for _, a := range as {
		d.Add(a)
	}
}

// Contains reports membership.
func (d *Dataset) Contains(a addr.Addr) bool {
	_, ok := d.addrs[a]
	return ok
}

// Len returns the number of addresses.
func (d *Dataset) Len() int { return len(d.addrs) }

// Each iterates the addresses in insertion order; returning false stops.
func (d *Dataset) Each(fn func(a addr.Addr) bool) {
	for _, a := range d.order {
		if !fn(a) {
			return
		}
	}
}

// Addrs materializes the address set in insertion order.
func (d *Dataset) Addrs() []addr.Addr {
	return append([]addr.Addr(nil), d.order...)
}

// IntersectionSize counts addresses present in both datasets.
func IntersectionSize(a, b *Dataset) int {
	small, large := a, b
	if small.Len() > large.Len() {
		small, large = large, small
	}
	n := 0
	for x := range small.addrs {
		if large.Contains(x) {
			n++
		}
	}
	return n
}

// Stats is one dataset's Table 1 row.
type Stats struct {
	Name     string
	Addrs    int
	ASNs     int
	P48s     int
	AvgPer48 float64
	// CommonAddrs/CommonASNs/CommonP48s are intersections with a
	// reference dataset (the NTP corpus in Table 1), zero when no
	// reference was supplied.
	CommonAddrs int
	CommonASNs  int
	CommonP48s  int
}

// ComputeStats derives a dataset's aggregate row. reference may be nil.
func ComputeStats(d *Dataset, db *asdb.DB, reference *Dataset) Stats {
	st := Stats{Name: d.Name, Addrs: d.Len()}
	asns := make(map[asdb.ASN]struct{})
	p48s := make(map[addr.Prefix48]struct{})
	for a := range d.addrs {
		if asn, ok := db.OriginASN(a); ok {
			asns[asn] = struct{}{}
		}
		p48s[a.P48()] = struct{}{}
	}
	st.ASNs = len(asns)
	st.P48s = len(p48s)
	if st.P48s > 0 {
		st.AvgPer48 = float64(st.Addrs) / float64(st.P48s)
	}
	if reference != nil {
		st.CommonAddrs = IntersectionSize(d, reference)
		refASNs := make(map[asdb.ASN]struct{})
		refP48s := make(map[addr.Prefix48]struct{})
		for a := range reference.addrs {
			if asn, ok := db.OriginASN(a); ok {
				refASNs[asn] = struct{}{}
			}
			refP48s[a.P48()] = struct{}{}
		}
		for asn := range asns {
			if _, ok := refASNs[asn]; ok {
				st.CommonASNs++
			}
		}
		for p := range p48s {
			if _, ok := refP48s[p]; ok {
				st.CommonP48s++
			}
		}
	}
	return st
}

// AliasList is the set of known aliased /64 prefixes a hitlist publishes
// alongside its addresses, used as the pre-filter for active campaigns.
type AliasList struct {
	prefixes map[addr.Prefix64]struct{}
}

// NewAliasList returns an empty alias list.
func NewAliasList() *AliasList {
	return &AliasList{prefixes: make(map[addr.Prefix64]struct{})}
}

// Add records an aliased /64.
func (l *AliasList) Add(p addr.Prefix64) { l.prefixes[p] = struct{}{} }

// Contains reports whether the /64 is known aliased.
func (l *AliasList) Contains(p addr.Prefix64) bool {
	_, ok := l.prefixes[p]
	return ok
}

// Len returns the number of aliased prefixes.
func (l *AliasList) Len() int { return len(l.prefixes) }

// Each iterates the aliased prefixes.
func (l *AliasList) Each(fn func(p addr.Prefix64) bool) {
	for p := range l.prefixes {
		if !fn(p) {
			return
		}
	}
}

// Release renders the dataset truncated to /48 granularity, one prefix
// per line, sorted — the paper's ethical release format ("we will only be
// releasing our dataset at the /48 level").
func Release(d *Dataset) string {
	seen := make(map[addr.Prefix48]struct{})
	for a := range d.addrs {
		seen[a.P48()] = struct{}{}
	}
	lines := make([]string, 0, len(seen))
	for p := range seen {
		lines = append(lines, p.String())
	}
	sort.Strings(lines)
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %d active /48 prefixes (addresses withheld for privacy)\n",
		d.Name, len(lines))
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}
