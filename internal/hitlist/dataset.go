// Package hitlist builds and compares the three address corpora of the
// paper's Table 1: the passive NTP corpus, an IPv6-Hitlist-style active
// hitlist (seed lists + Yarrp + ZMap6 + target generation + alias
// pre-filtering, after Gasser et al.), and a CAIDA-style routed-/48 Yarrp
// campaign. It also implements the /48-truncated release format the
// paper's ethics section mandates.
package hitlist

import (
	"fmt"
	"maps"
	"slices"
	"sort"
	"strings"

	"hitlist6/internal/addr"
	"hitlist6/internal/asdb"
)

// Dataset is a named set of IPv6 addresses with set algebra and the
// aggregate statistics Table 1 reports.
//
// Storage is one canonical sorted flat []addr.Addr — 16 bytes per
// address in a single slab instead of a GC-scanned map plus a duplicate
// order slice. Membership is binary search, intersections are linear
// merges of sorted arrays, and iteration follows canonical (ascending)
// address order, which makes every consumer deterministic regardless of
// how the dataset was built.
//
// Writes append; the slab is sort-deduplicated lazily on the first read
// after a write ("seal"). Builders that insert in canonical order
// (FromCollector, sorted serialized streams) keep the slab sorted as
// they go and never pay the sort. A sealed dataset is safe for
// concurrent reads; Add must not race with reads.
type Dataset struct {
	Name   string
	addrs  []addr.Addr
	sealed bool // addrs is sorted and deduplicated
}

// NewDataset returns an empty dataset.
func NewDataset(name string) *Dataset {
	return &Dataset{Name: name, sealed: true}
}

// Add inserts an address; duplicates are coalesced at the next seal.
func (d *Dataset) Add(a addr.Addr) {
	if n := len(d.addrs); d.sealed && n > 0 {
		last := d.addrs[n-1]
		if last == a {
			return
		}
		if a.Less(last) {
			d.sealed = false
		}
	}
	d.addrs = append(d.addrs, a)
}

// AddAll inserts every address of the slice.
func (d *Dataset) AddAll(as []addr.Addr) {
	for _, a := range as {
		d.Add(a)
	}
}

// seal sorts and deduplicates the slab in place. Reads call it before
// touching the array; it is a no-op on an already canonical dataset.
func (d *Dataset) seal() {
	if d.sealed {
		return
	}
	sort.Slice(d.addrs, func(i, j int) bool { return d.addrs[i].Less(d.addrs[j]) })
	out := d.addrs[:0]
	for i, a := range d.addrs {
		if i == 0 || a != out[len(out)-1] {
			out = append(out, a)
		}
	}
	d.addrs = out
	d.sealed = true
}

// Contains reports membership by binary search.
func (d *Dataset) Contains(a addr.Addr) bool {
	d.seal()
	i := sort.Search(len(d.addrs), func(i int) bool { return !d.addrs[i].Less(a) })
	return i < len(d.addrs) && d.addrs[i] == a
}

// Len returns the number of (distinct) addresses.
func (d *Dataset) Len() int {
	d.seal()
	return len(d.addrs)
}

// Each iterates the addresses in canonical (ascending) order; returning
// false stops.
func (d *Dataset) Each(fn func(a addr.Addr) bool) {
	d.seal()
	for _, a := range d.addrs {
		if !fn(a) {
			return
		}
	}
}

// View returns the dataset's backing slab in canonical order — the
// zero-copy accessor the analysis engine's folds scan. The slice is
// owned by the dataset: callers must treat it as read-only and must not
// hold it across a later Add.
func (d *Dataset) View() []addr.Addr {
	d.seal()
	return d.addrs
}

// Addrs materializes the address set in canonical order. The copy is the
// caller's to mutate; hot paths should use View.
func (d *Dataset) Addrs() []addr.Addr {
	d.seal()
	return append([]addr.Addr(nil), d.addrs...)
}

// IntersectionSize counts addresses present in both datasets by a linear
// merge of the two sorted slabs — no hashing, no allocation.
func IntersectionSize(a, b *Dataset) int {
	av, bv := a.View(), b.View()
	n := 0
	for i, j := 0, 0; i < len(av) && j < len(bv); {
		switch {
		case av[i] == bv[j]:
			n++
			i++
			j++
		case av[i].Less(bv[j]):
			i++
		default:
			j++
		}
	}
	return n
}

// EachCommon visits every address present in both datasets, in canonical
// order, by the same linear merge IntersectionSize runs; returning false
// stops. The index arguments are the address's positions in a.View()
// and b.View(), letting sidecar consumers read attribute columns without
// re-deriving them.
func EachCommon(a, b *Dataset, fn func(ai, bi int) bool) {
	av, bv := a.View(), b.View()
	for i, j := 0, 0; i < len(av) && j < len(bv); {
		switch {
		case av[i] == bv[j]:
			if !fn(i, j) {
				return
			}
			i++
			j++
		case av[i].Less(bv[j]):
			i++
		default:
			j++
		}
	}
}

// Stats is one dataset's Table 1 row.
type Stats struct {
	Name     string
	Addrs    int
	ASNs     int
	P48s     int
	AvgPer48 float64
	// CommonAddrs/CommonASNs/CommonP48s are intersections with a
	// reference dataset (the NTP corpus in Table 1), zero when no
	// reference was supplied.
	CommonAddrs int
	CommonASNs  int
	CommonP48s  int
}

// CountP48s returns the number of distinct /48 prefixes: a single linear
// pass, since sorting by address also sorts (and groups) by /48.
func (d *Dataset) CountP48s() int {
	n := 0
	var prev addr.Prefix48
	for i, a := range d.View() {
		if p := a.P48(); i == 0 || p != prev {
			n++
			prev = p
		}
	}
	return n
}

// CommonP48s counts /48 prefixes present in both sorted datasets: a
// linear merge over the (grouped) prefix sequences.
func CommonP48s(a, b *Dataset) int {
	av, bv := a.View(), b.View()
	n := 0
	i, j := 0, 0
	for i < len(av) && j < len(bv) {
		pa, pb := av[i].P48(), bv[j].P48()
		switch {
		case pa == pb:
			n++
			for i < len(av) && av[i].P48() == pa {
				i++
			}
			for j < len(bv) && bv[j].P48() == pb {
				j++
			}
		case pa < pb:
			i++
		default:
			j++
		}
	}
	return n
}

// asnSet collects the distinct origin ASNs of a dataset.
func asnSet(d *Dataset, db *asdb.DB) map[asdb.ASN]struct{} {
	out := make(map[asdb.ASN]struct{})
	for _, a := range d.View() {
		if asn, ok := db.OriginASN(a); ok {
			out[asn] = struct{}{}
		}
	}
	return out
}

// ComputeStats derives a dataset's aggregate row. reference may be nil.
func ComputeStats(d *Dataset, db *asdb.DB, reference *Dataset) Stats {
	st := Stats{Name: d.Name, Addrs: d.Len(), P48s: d.CountP48s()}
	asns := asnSet(d, db)
	st.ASNs = len(asns)
	if st.P48s > 0 {
		st.AvgPer48 = float64(st.Addrs) / float64(st.P48s)
	}
	if reference != nil {
		st.CommonAddrs = IntersectionSize(d, reference)
		st.CommonP48s = CommonP48s(d, reference)
		//lint:ordered counting set-intersection size is commutative; no order reaches the output
		for asn := range asnSet(reference, db) {
			if _, ok := asns[asn]; ok {
				st.CommonASNs++
			}
		}
	}
	return st
}

// AliasList is the set of known aliased /64 prefixes a hitlist publishes
// alongside its addresses, used as the pre-filter for active campaigns.
type AliasList struct {
	prefixes map[addr.Prefix64]struct{}
}

// NewAliasList returns an empty alias list.
func NewAliasList() *AliasList {
	return &AliasList{prefixes: make(map[addr.Prefix64]struct{})}
}

// Add records an aliased /64.
func (l *AliasList) Add(p addr.Prefix64) { l.prefixes[p] = struct{}{} }

// Contains reports whether the /64 is known aliased.
func (l *AliasList) Contains(p addr.Prefix64) bool {
	_, ok := l.prefixes[p]
	return ok
}

// Len returns the number of aliased prefixes.
func (l *AliasList) Len() int { return len(l.prefixes) }

// Each iterates the aliased prefixes in ascending prefix order, so
// every consumer — current and future — inherits a deterministic view
// without sorting on its own.
func (l *AliasList) Each(fn func(p addr.Prefix64) bool) {
	for _, p := range slices.Sorted(maps.Keys(l.prefixes)) {
		if !fn(p) {
			return
		}
	}
}

// Release renders the dataset truncated to /48 granularity, one prefix
// per line, sorted — the paper's ethical release format ("we will only be
// releasing our dataset at the /48 level"). The distinct prefixes fall
// out of one linear pass over the sorted slab; only the (much smaller)
// rendered lines are sorted, because the release format orders its lines
// lexicographically rather than numerically.
func Release(d *Dataset) string {
	lines := make([]string, 0, 64)
	var prev addr.Prefix48
	for i, a := range d.View() {
		if p := a.P48(); i == 0 || p != prev {
			lines = append(lines, p.String())
			prev = p
		}
	}
	sort.Strings(lines)
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %d active /48 prefixes (addresses withheld for privacy)\n",
		d.Name, len(lines))
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}
