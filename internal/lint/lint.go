// Package lint is the repo's invariant enforcement suite: custom static
// analyzers that encode the properties this codebase's correctness
// rests on — byte-identical output at any shard/worker count
// (mapiter), a GC-invisible pointer-free corpus (noptrslab), the
// crash-safe checkpoint protocol (syncdurable), and the telemetry
// naming/registration discipline (telemetryreg) — so violations are
// caught at review time instead of by the equivalence tests after the
// fact. cmd/repolint runs the suite over the whole module and blocks CI.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer/Pass/Diagnostic, analysistest-style "want"
// expectations in internal/lint/linttest) but is built purely on the
// standard library: the build environment vendors no third-party
// modules, so the driver loads type information itself via
// `go list -export` and the gc export-data importer (see load.go).
// If the module ever grows an x/tools dependency, each analyzer's Run
// is a thin shim away from being a real analysis.Analyzer.
//
// # Suppressions
//
// Every analyzer that supports suppression uses the same comment
// grammar, on the flagged line or the line directly above it:
//
//	//lint:NAME justification text
//
// The justification is mandatory: a bare directive is itself a
// diagnostic. The directives in use are //lint:ordered (mapiter) and
// //lint:durable (syncdurable); //lint:slab (noptrslab) and the
// file-scope markers //lint:deterministic and //lint:durable-path are
// opt-in annotations, not suppressions, and take no justification.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. Analyzers are stateful across the
// packages of a single run (telemetryreg accumulates the metric
// namespace), so obtain fresh values from All or the constructors —
// never share one Analyzer between concurrent runs.
type Analyzer struct {
	// Name is the analyzer's identifier, used in output and directives.
	Name string
	// Doc is a one-line description of what the analyzer enforces.
	Doc string
	// Run is invoked once per loaded package.
	Run func(*Pass)
	// Finish, if non-nil, is invoked once after Run has seen every
	// package — the hook for whole-program checks (cross-package
	// conflicts). Positions reported here were captured during Run.
	Finish func(report func(pos token.Position, format string, args ...any))
}

// All returns a fresh instance of every analyzer in the suite, in
// stable order.
func All() []*Analyzer {
	return []*Analyzer{MapIter(), NoPtrSlab(), SyncDurable(), TelemetryReg()}
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
	dirs  map[*ast.File]*fileDirectives
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// Run executes every analyzer over every package and returns the
// findings sorted by position. Each Analyzer value must be fresh (see
// Analyzer); the same slice can contain analyzers for one run only.
func Run(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
			a.Run(pass)
		}
		if a.Finish != nil {
			a.Finish(func(pos token.Position, format string, args ...any) {
				diags = append(diags, Diagnostic{
					Pos:      pos,
					File:     pos.Filename,
					Line:     pos.Line,
					Col:      pos.Column,
					Analyzer: a.Name,
					Message:  fmt.Sprintf(format, args...),
				})
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Message < b.Message
	})
	return diags
}

// ---- directives ----

// Directive is one parsed //lint:NAME comment.
type Directive struct {
	Name string // e.g. "ordered"
	Arg  string // justification / argument text, "" if none
	Pos  token.Pos
	Line int
}

type fileDirectives struct {
	byLine map[int][]Directive
	all    []Directive
}

// parseDirective decodes one comment line, returning ok=false for
// non-directive comments.
func parseDirective(text string) (name, arg string, ok bool) {
	const prefix = "//lint:"
	if !strings.HasPrefix(text, prefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, prefix)
	name, arg, _ = strings.Cut(rest, " ")
	if name == "" {
		return "", "", false
	}
	return name, strings.TrimSpace(arg), true
}

func (p *Pass) directives(f *ast.File) *fileDirectives {
	if p.dirs == nil {
		p.dirs = make(map[*ast.File]*fileDirectives)
	}
	if d, ok := p.dirs[f]; ok {
		return d
	}
	d := &fileDirectives{byLine: make(map[int][]Directive)}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			name, arg, ok := parseDirective(c.Text)
			if !ok {
				continue
			}
			dir := Directive{
				Name: name,
				Arg:  arg,
				Pos:  c.Pos(),
				Line: p.Pkg.Fset.Position(c.Pos()).Line,
			}
			d.byLine[dir.Line] = append(d.byLine[dir.Line], dir)
			d.all = append(d.all, dir)
		}
	}
	p.dirs[f] = d
	return d
}

// FileFor returns the *ast.File containing pos, or nil.
func (p *Pass) FileFor(pos token.Pos) *ast.File {
	for _, f := range p.Pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// DirectiveAt finds a //lint:name directive attached to the statement
// at pos: on the same line or on the line directly above.
func (p *Pass) DirectiveAt(pos token.Pos, name string) (Directive, bool) {
	f := p.FileFor(pos)
	if f == nil {
		return Directive{}, false
	}
	d := p.directives(f)
	line := p.Pkg.Fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		for _, dir := range d.byLine[l] {
			if dir.Name == name {
				return dir, true
			}
		}
	}
	return Directive{}, false
}

// FileHasDirective reports whether any //lint:name comment appears
// anywhere in the file containing pos — the file-scope opt-in markers
// (//lint:deterministic, //lint:durable-path).
func (p *Pass) FileHasDirective(pos token.Pos, name string) bool {
	f := p.FileFor(pos)
	if f == nil {
		return false
	}
	for _, dir := range p.directives(f).all {
		if dir.Name == name {
			return true
		}
	}
	return false
}

// Suppressed implements the shared suppression protocol: a
// //lint:name directive on the flagged line (or the line above)
// suppresses the diagnostic iff it carries a justification; a bare
// directive is reported as its own finding. Returns true when the
// caller should skip its diagnostic (either suppressed, or the
// missing-justification diagnostic was already emitted in its place).
func (p *Pass) Suppressed(pos token.Pos, name string) bool {
	dir, ok := p.DirectiveAt(pos, name)
	if !ok {
		return false
	}
	if dir.Arg == "" {
		p.Reportf(dir.Pos, "//lint:%s suppression requires a justification (\"//lint:%s why this is safe\")", name, name)
		return true
	}
	return true
}

// CommentDirective reports whether a declaration's doc or trailing
// comment group carries //lint:name (the annotation form used by
// //lint:slab on type declarations).
func CommentDirective(groups []*ast.CommentGroup, name string) bool {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			n, _, ok := parseDirective(c.Text)
			if ok && n == name {
				return true
			}
		}
	}
	return false
}
