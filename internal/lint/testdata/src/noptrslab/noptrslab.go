// Package fixture exercises the noptrslab analyzer: pointer-free slab
// types pass, every pointer-bearing field is reported at its own line,
// and unannotated types are none of the analyzer's business.
package fixture

// clean is a valid slab element: every field inlines.
//
//lint:slab
type clean struct {
	key   [16]byte
	count uint32
	when  int64
}

// withPtr smuggles a pointer — the acceptance checklist's *string
// field in a slab struct.
//
//lint:slab
type withPtr struct {
	key  [16]byte
	name *string // want `slab type withPtr is not pointer-free: field name is \*string`
}

//lint:slab
type withString struct {
	label string // want `field label is string`
}

//lint:slab
type withSlice struct {
	items []uint32 // want `field items is \[\]uint32`
}

//lint:slab
type withMap struct {
	index map[uint32]uint32 // want `field index is map\[uint32\]uint32`
}

// inner hides its pointer one level down; the finding names the path.
type inner struct {
	next *inner
}

//lint:slab
type nested struct {
	in inner // want `field in\.next is \*`
}

//lint:slab
type withArray struct {
	refs [4]*int // want `field refs\[\.\.\.\] is \*int`
}

// pair checks multi-name field flattening: one finding per name.
//
//lint:slab
type pair struct {
	a, b *uint64 // want `field a is \*uint64` `field b is \*uint64`
}

// buf is a non-struct slab type, checked as a whole.
//
//lint:slab
type buf []byte // want `slab type buf contains pointer-bearing memory`

// notSlab carries a pointer but no annotation: out of scope.
type notSlab struct {
	p *int
}

// use keeps the unexported fixtures referenced.
var use = []any{clean{}, withPtr{}, withString{}, withSlice{}, withMap{}, nested{}, withArray{}, pair{}, buf(nil), notSlab{}}
