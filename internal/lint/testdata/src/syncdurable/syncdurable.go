// Package fixture exercises the syncdurable analyzer: dropped
// durability errors in every statement position, the never-fail and
// read-only exemptions, the rename-without-fsync check, and the
// suppression grammar. The marker below opts the file in.
//
//lint:durable-path analyzer fixture
package fixture

import (
	"os"
	"strings"
)

// WriteDropped drops every error a checkpoint writer must observe.
func WriteDropped(path string, data []byte) {
	f, _ := os.Create(path)
	f.Write(data) // want `error from f\.Write dropped on a durability path`
	f.Sync()      // want `error from f\.Sync dropped on a durability path`
	f.Close()     // want `error from f\.Close dropped on a durability path`
}

// WriteDeferred defers the close of a written file: the flush error
// vanishes with the defer.
func WriteDeferred(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `error from f\.Close dropped on a durability path`
	_, err = f.Write(data)
	return err
}

// WriteBlank discards the error position by assignment.
func WriteBlank(f *os.File, data []byte) int {
	n, _ := f.Write(data) // want `error from f\.Write assigned to _ on a durability path`
	_ = f.Sync()          // want `error from f\.Sync assigned to _ on a durability path`
	return n
}

// BuildString writes through strings.Builder, whose writes are
// documented to never fail: exempt.
func BuildString(parts []string) string {
	var b strings.Builder
	for _, p := range parts {
		b.WriteString(p)
	}
	return b.String()
}

// ReadAll closes a file opened read-only in the same function: a
// dropped Close error cannot lose written bytes.
func ReadAll(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	_, err = f.Read(buf)
	return buf, err
}

// PublishUnsynced renames a file nothing fsynced: the torn-checkpoint
// hazard the atomic-write protocol exists to prevent.
func PublishUnsynced(tmp, final string, data []byte) error {
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, final) // want `os\.Rename without an fsync in PublishUnsynced`
}

// PublishSynced is the full protocol — write, sync, close, rename,
// every error observed — plus one justified suppression on the
// error-path cleanup close.
func PublishSynced(tmp, final string, data []byte) error {
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		//lint:durable best-effort cleanup; the write error being returned is the root cause
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// RenameOnly suppresses the fsync check with a justification.
func RenameOnly(tmp, final string) error {
	//lint:durable caller synced the file; this helper only publishes
	return os.Rename(tmp, final)
}

// BareSuppression shows the directive without a justification: the
// suppression itself becomes the finding.
func BareSuppression(f *os.File) {
	/* want `suppression requires a justification` */ //lint:durable
	f.Close()
}
