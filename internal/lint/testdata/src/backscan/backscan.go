// Package fixture reproduces the PR 3 scan.Backscan bug shape: the
// responsive-client list was built by ranging the probe-dedup map, so
// the published report followed map order and the golden test flaked.
// This fixture pins mapiter to keep flagging exactly that shape (and
// to accept the shape of the fix).
//
//lint:deterministic
package fixture

import "sort"

// Responsive is the bug as shipped: the output slice inherits the
// map's random order, but because nothing sorts it the analyzer has
// to treat the if-filtered collect as unsafe.
func Responsive(seen map[string]bool) []string {
	var out []string
	for target, ok := range seen { // want `range over map in determinism-critical code`
		if ok {
			out = append(out, target)
		}
	}
	return out
}

// ResponsiveFixed is the PR 3 fix: same collect, canonical sort before
// the order can escape. No finding.
func ResponsiveFixed(seen map[string]bool) []string {
	var out []string
	for target, ok := range seen {
		if ok {
			out = append(out, target)
		}
	}
	sort.Strings(out)
	return out
}
