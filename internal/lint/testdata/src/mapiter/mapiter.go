// Package fixture exercises every shape the mapiter analyzer knows:
// the flagged iterations, the recognized-safe idioms, and the
// suppression grammar. The //lint:deterministic marker below is what
// puts this package in scope — it doubles as the marker's own test.
//
//lint:deterministic
package fixture

import (
	"maps"
	"slices"
	"sort"
)

// Sum is order-insensitive in fact but not provably: flagged.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map in determinism-critical code`
		total += v
	}
	return total
}

// SumSuppressed carries the justification that blesses Sum's shape.
func SumSuppressed(m map[string]int) int {
	total := 0
	//lint:ordered integer addition commutes; no order reaches the result
	for _, v := range m {
		total += v
	}
	return total
}

// SumBare has a bare directive: the suppression itself is the finding,
// and it replaces the range-over-map diagnostic.
func SumBare(m map[string]int) int {
	total := 0
	/* want `suppression requires a justification` */ //lint:ordered
	for _, v := range m {
		total += v
	}
	return total
}

// MergeTally is the fold-merge shape from the acceptance checklist: a
// partial-result merge whose map range is exactly the kind of code
// that silently breaks shard equivalence when the merged value is
// order-sensitive.
func MergeTally(dst, src map[string]int) map[string]int {
	for k, v := range src { // want `range over map in determinism-critical code`
		dst[k] += v
	}
	return dst
}

// CollectSorted is the canonical safe idiom: collect, then sort.
func CollectSorted(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// CollectFilteredSorted keeps the idiom safe through an if-filter.
func CollectFilteredSorted(m map[string]int) []string {
	var ks []string
	for k, v := range m {
		if v > 0 {
			ks = append(ks, k)
		}
	}
	slices.Sort(ks)
	return ks
}

// CollectUnsorted collects but never sorts: the order escapes.
func CollectUnsorted(m map[string]int) []string {
	var ks []string
	for k := range m { // want `range over map in determinism-critical code`
		ks = append(ks, k)
	}
	return ks
}

// Clear is the sanctioned delete-everything loop.
func Clear(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// Repeat ranges without binding a variable: no order to observe.
func Repeat(m map[string]int, f func()) {
	for range m {
		f()
	}
}

// KeysUnsorted feeds map order straight into the return value.
func KeysUnsorted(m map[string]int) []string {
	return slices.Collect(maps.Keys(m)) // want `maps\.Keys in determinism-critical code`
}

// KeysSorted wraps the iterator in the canonical sort.
func KeysSorted(m map[string]int) []string {
	return slices.Sorted(maps.Keys(m))
}

// KeysCollectedThenSorted collects into a variable and sorts it later
// in the same block.
func KeysCollectedThenSorted(m map[string]int) []string {
	ks := slices.Collect(maps.Keys(m))
	slices.Sort(ks)
	return ks
}

// MaxValue consumes maps.Values directly: flagged at the iterator.
func MaxValue(m map[string]int) int {
	best := 0
	for v := range maps.Values(m) { // want `maps\.Values in determinism-critical code`
		if v > best {
			best = v
		}
	}
	return best
}

// KeySet justifies its maps.Keys use: a map-to-map projection.
func KeySet(m map[string]int) map[string]bool {
	out := make(map[string]bool, len(m))
	//lint:ordered map-to-set projection; the result carries no order
	for k := range maps.Keys(m) {
		out[k] = true
	}
	return out
}
