// Package fixture exercises the telemetryreg analyzer against the
// real registry API: constant-name enforcement, the PR 6 naming
// convention per metric kind, label-key hygiene, and the
// whole-program kind/help conflict checks.
package fixture

import "hitlist6/internal/telemetry"

// Register exercises the per-site naming rules.
func Register(r *telemetry.Registry, computed string) {
	r.Counter("probes_sent_total", "probes sent")
	r.Counter("probes_sent", "missing suffix") // want `counter "probes_sent" must end in _total`
	r.Gauge("queue_depth", "queued work")
	r.Gauge("queue_depth_total", "mislabeled") // want `gauge "queue_depth_total" must not end in _total`
	r.GaugeFunc("heap_bytes", "live heap", heap)
	r.Histogram("scan_latency_seconds", "probe round trips", nil)
	r.Histogram("scan_latency", "no unit", nil) // want `histogram "scan_latency" must end in a unit suffix`
	r.Counter("BadName_total", "camel case")    // want `metric name "BadName_total" violates the snake_case convention`
	r.Counter(computed, "computed name")        // want `metric name must be a compile-time string constant`
}

// Labels exercises the label-key rules.
func Labels(r *telemetry.Registry, computed string) {
	r.Counter("shards_total", "per shard", telemetry.L("shard", "0"))
	r.Counter("buckets_total", "reserved key", telemetry.L("le", "0.1")) // want `label key "le" is reserved for histogram buckets`
	r.Counter("cases_total", "camel key", telemetry.L("ShardID", "0"))   // want `label key "ShardID" violates the snake_case convention`
	r.Counter("dyn_total", "computed key", telemetry.L(computed, "0"))   // want `label key must be a compile-time string constant`
}

// Conflicts exercises the whole-program Finish checks: one name, one
// kind, one help string — anywhere in the run.
func Conflicts(a, b *telemetry.Registry) {
	a.Counter("restarts_total", "restarts")
	b.Gauge("restarts_total", "restarts") // want `gauge "restarts_total" must not end in _total` `metric "restarts_total" re-registered as gauge`
	a.Gauge("queue_items", "queue depth")
	b.Gauge("queue_items", "items queued") // want `metric "queue_items" registered with a different help string`
}

func heap() float64 { return 0 }
