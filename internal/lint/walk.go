package lint

import (
	"go/ast"
	"go/types"
)

// inspectStack walks f like ast.Inspect but hands the visitor the full
// ancestor stack (outermost first, not including n itself). Returning
// false prunes the subtree.
func inspectStack(f *ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// calleeFunc resolves a call's target to its *types.Func: package
// functions, methods, and imported functions alike. Returns nil for
// builtins, conversions, and calls through function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the named function of the named
// package (by import path).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// objOf returns the object an identifier expression refers to, looking
// through parens. Nil for non-identifiers.
func objOf(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// enclosingBlock finds the innermost *ast.BlockStmt enclosing n (whose
// ancestors are stack) along with the index, within the block's
// statement list, of the statement containing n. Returns (nil, -1) if
// n is not inside a block.
func enclosingBlock(stack []ast.Node, n ast.Node) (*ast.BlockStmt, int) {
	for i := len(stack) - 1; i >= 0; i-- {
		if blk, ok := stack[i].(*ast.BlockStmt); ok {
			// The statement within blk the stack descends through is the
			// next element of the stack — or n itself when n is a direct
			// child of the block.
			child := n
			if i+1 < len(stack) {
				child = stack[i+1]
			}
			for j, s := range blk.List {
				if s == child {
					return blk, j
				}
			}
			return blk, -1
		}
	}
	return nil, -1
}

// enclosingFunc returns the innermost function body the stack passes
// through (FuncDecl or FuncLit), or nil.
func enclosingFunc(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}
