package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matching patterns (relative to dir; ""
// means the current directory) and returns them ready for analysis.
//
// The loader is the stdlib stand-in for x/tools go/packages: one
// `go list -export -deps -json` invocation enumerates the targets and
// compiles export data for every dependency, the targets themselves are
// parsed from source (comments included — the analyzers read //lint:
// directives), and go/types resolves their imports through the gc
// export-data importer. Test files are not loaded: the invariants the
// suite enforces are properties of product code, and the deliberate
// violations in analyzer testdata must stay analyzable without
// tripping the build.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var roots []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			roots = append(roots, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, root := range roots {
		if len(root.CgoFiles) > 0 {
			// cgo sources need preprocessing the stdlib parser can't do;
			// nothing in this module uses cgo, so refuse loudly rather
			// than silently analyzing half a package.
			return nil, fmt.Errorf("lint: %s uses cgo; the lint loader cannot analyze it", root.ImportPath)
		}
		files := make([]*ast.File, 0, len(root.GoFiles))
		for _, name := range root.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(root.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: parse: %v", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		conf := types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
		}
		tpkg, err := conf.Check(root.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: typecheck %s: %v", root.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath: root.ImportPath,
			Dir:     root.Dir,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
	}
	return pkgs, nil
}
