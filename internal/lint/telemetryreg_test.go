package lint_test

import (
	"testing"

	"hitlist6/internal/lint"
	"hitlist6/internal/lint/linttest"
)

func TestTelemetryReg(t *testing.T) {
	linttest.Run(t, lint.TelemetryReg(), "./testdata/src/telemetryreg")
}
