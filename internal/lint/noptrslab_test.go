package lint_test

import (
	"testing"

	"hitlist6/internal/lint"
	"hitlist6/internal/lint/linttest"
)

func TestNoPtrSlab(t *testing.T) {
	linttest.Run(t, lint.NoPtrSlab(), "./testdata/src/noptrslab")
}
