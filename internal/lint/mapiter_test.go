package lint_test

import (
	"testing"

	"hitlist6/internal/lint"
	"hitlist6/internal/lint/linttest"
)

func TestMapIter(t *testing.T) {
	linttest.Run(t, lint.MapIter(), "./testdata/src/mapiter")
}

// TestMapIterBackscanShape pins the PR 3 regression: the exact
// collect-responses-by-map-range shape that broke Backscan's output
// determinism must stay flagged, and the sorted fix must stay clean.
func TestMapIterBackscanShape(t *testing.T) {
	linttest.Run(t, lint.MapIter(), "./testdata/src/backscan")
}
