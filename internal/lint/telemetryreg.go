package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

const telemetryPkg = "hitlist6/internal/telemetry"

// metricNameRE is the repo's naming convention from PR 6: lowercase
// snake_case, no leading/trailing/doubled underscores. (The registry's
// own runtime check is looser — it accepts anything Prometheus-legal —
// so the convention lives here.)
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// histogramUnitSuffixes are the unit suffixes PR 6 established for
// distributions: durations in seconds, volumes in bytes, small
// cardinals as events.
var histogramUnitSuffixes = []string{"_seconds", "_bytes", "_events"}

// TelemetryReg returns the telemetry hygiene analyzer. The registry is
// handle-based and instance-scoped (registration happens in pipeline
// constructors, not package init — see internal/telemetry), so rather
// than the classic "register only in init" rule this analyzer enforces
// what actually keeps the metric namespace sane here:
//
//   - every metric name (and label key) handed to Registry.Counter/
//     Gauge/GaugeFunc/Histogram must be a compile-time string constant:
//     the full namespace stays greppable, and a computed name is the
//     unbounded-cardinality / duplicate-registration hazard;
//   - names follow the PR 6 convention: snake_case, counters end in
//     _total, gauges don't, histograms end in a unit suffix (_seconds,
//     _bytes, _events);
//   - label keys are snake_case and never the reserved "le";
//   - across the whole run, one name is registered with one kind and
//     one help string — the registry panics on a kind conflict at
//     runtime and silently keeps the first help on a help conflict;
//     both are findings here (reported via the whole-program Finish
//     hook).
//
// There is no suppression: a name that breaks the convention is
// renamed, not justified.
func TelemetryReg() *Analyzer {
	type site struct {
		pos  token.Position
		kind string
		help string
	}
	regs := make(map[string][]site)

	a := &Analyzer{
		Name: "telemetryreg",
		Doc:  "enforces telemetry metric naming, constant names, and a conflict-free registry namespace",
	}
	a.Run = func(pass *Pass) {
		for _, file := range pass.Pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.Pkg.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != telemetryPkg {
					return true
				}
				if fn.Name() == "L" && fn.Signature().Recv() == nil {
					checkLabelKey(pass, call)
					return true
				}
				kind, ok := registryMethodKind(fn)
				if !ok || len(call.Args) < 2 {
					return true
				}
				name, isConst := constString(pass, call.Args[0])
				if !isConst {
					pass.Reportf(call.Args[0].Pos(), "metric name must be a compile-time string constant: computed names make the namespace ungreppable and risk unbounded series")
					return true
				}
				checkMetricName(pass, call.Args[0].Pos(), kind, name)
				help, _ := constString(pass, call.Args[1])
				regs[name] = append(regs[name], site{
					pos:  pass.Pkg.Fset.Position(call.Args[0].Pos()),
					kind: kind,
					help: help,
				})
				return true
			})
		}
	}
	a.Finish = func(report func(pos token.Position, format string, args ...any)) {
		for name, sites := range regs {
			firstKind, firstHelp := sites[0].kind, sites[0].help
			for _, s := range sites[1:] {
				if s.kind != firstKind {
					report(s.pos, "metric %q re-registered as %s (first registered as %s at %s): the registry panics on this at runtime", name, s.kind, firstKind, sites[0].pos)
				} else if s.help != firstHelp {
					report(s.pos, "metric %q registered with a different help string than at %s: exposition keeps only the first", name, sites[0].pos)
				}
			}
		}
	}
	return a
}

// registryMethodKind maps a telemetry.Registry registration method to
// its metric kind.
func registryMethodKind(fn *types.Func) (string, bool) {
	recv := fn.Signature().Recv()
	if recv == nil {
		return "", false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Registry" {
		return "", false
	}
	switch fn.Name() {
	case "Counter":
		return "counter", true
	case "Gauge", "GaugeFunc":
		return "gauge", true
	case "Histogram":
		return "histogram", true
	}
	return "", false
}

func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func checkMetricName(pass *Pass, pos token.Pos, kind, name string) {
	if !metricNameRE.MatchString(name) {
		pass.Reportf(pos, "metric name %q violates the snake_case convention (want %s)", name, metricNameRE)
		return
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(pos, "counter %q must end in _total", name)
		}
	case "gauge":
		if strings.HasSuffix(name, "_total") {
			pass.Reportf(pos, "gauge %q must not end in _total (that suffix marks counters)", name)
		}
	case "histogram":
		for _, suf := range histogramUnitSuffixes {
			if strings.HasSuffix(name, suf) {
				return
			}
		}
		pass.Reportf(pos, "histogram %q must end in a unit suffix (%s)", name, strings.Join(histogramUnitSuffixes, ", "))
	}
}

func checkLabelKey(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) < 1 {
		return
	}
	key, isConst := constString(pass, call.Args[0])
	if !isConst {
		pass.Reportf(call.Args[0].Pos(), "label key must be a compile-time string constant")
		return
	}
	if key == "le" {
		pass.Reportf(call.Args[0].Pos(), "label key \"le\" is reserved for histogram buckets")
		return
	}
	if !metricNameRE.MatchString(key) {
		pass.Reportf(call.Args[0].Pos(), "label key %q violates the snake_case convention", key)
	}
}
