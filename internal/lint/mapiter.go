package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// deterministicPkgs are the packages whose outputs must be
// byte-identical run to run and at any shard/worker count: every
// figure, table and hitlist is computed here, and the PR 3 Backscan
// incident showed how one stray map iteration quietly breaks that.
var deterministicPkgs = map[string]bool{
	"hitlist6/internal/collector": true,
	"hitlist6/internal/fold":      true,
	"hitlist6/internal/analysis":  true,
	"hitlist6/internal/hitlist":   true,
	"hitlist6/internal/outage":    true,
	"hitlist6/internal/tracking":  true,
	"hitlist6/internal/scan":      true,
	// The scenario harness asserts byte-identical reports per seed — its
	// own generation and rendering must hold the invariant it checks.
	"hitlist6/internal/workload":        true,
	"hitlist6/internal/workload/matrix": true,
}

// deterministicRootFiles are the root-package files in scope: the
// report/summary renderers whose bytes the golden tests pin.
var deterministicRootFiles = map[string]bool{
	"report.go":  true,
	"summary.go": true,
}

// MapIter returns the determinism analyzer: in determinism-critical
// code it flags `range` over a map and order-exposing maps.* iterators
// (maps.Keys, maps.Values, maps.All), unless the iteration provably
// feeds a canonical sort before anything depends on the order, or a
// //lint:ordered suppression with a justification covers it.
//
// Recognized safe shapes (no suppression needed):
//
//   - for k := range m { s = append(s, k) } followed, later in the same
//     block, by a sort.*/slices.Sort* call on s (if-filtered appends
//     count too);
//   - slices.Sorted(maps.Keys(m)) and the SortedFunc/SortedStableFunc
//     variants;
//   - x := slices.Collect(maps.Keys(m)) with a later sort on x in the
//     same block;
//   - range with no iteration variables (len-style repetition), and
//     the delete-everything loop `for k := range m { delete(m, k) }`,
//     where order cannot escape.
//
// Scope: the packages in deterministicPkgs, report.go/summary.go in
// the root package, and any file carrying a //lint:deterministic
// marker.
func MapIter() *Analyzer {
	a := &Analyzer{
		Name: "mapiter",
		Doc:  "flags nondeterministic map iteration in determinism-critical packages",
	}
	a.Run = func(pass *Pass) {
		for _, file := range pass.Pkg.Files {
			if !mapiterInScope(pass, file) {
				continue
			}
			inspectStack(file, func(n ast.Node, stack []ast.Node) bool {
				switch n := n.(type) {
				case *ast.RangeStmt:
					checkRangeStmt(pass, n, stack)
				case *ast.CallExpr:
					checkMapsCall(pass, n, stack)
				}
				return true
			})
		}
	}
	return a
}

func mapiterInScope(pass *Pass, file *ast.File) bool {
	if deterministicPkgs[pass.Pkg.PkgPath] {
		return true
	}
	if pass.Pkg.PkgPath == "hitlist6" {
		name := filepath.Base(pass.Pkg.Fset.Position(file.Pos()).Filename)
		if deterministicRootFiles[name] {
			return true
		}
	}
	return pass.FileHasDirective(file.Pos(), "deterministic")
}

func checkRangeStmt(pass *Pass, rng *ast.RangeStmt, stack []ast.Node) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	// Order can only matter if the iteration binds a variable.
	if rng.Key == nil && rng.Value == nil {
		return
	}
	if isDeleteAllLoop(pass, rng) {
		return
	}
	if collectThenSort(pass, rng, stack) {
		return
	}
	if pass.Suppressed(rng.Pos(), "ordered") {
		return
	}
	pass.Reportf(rng.Pos(), "range over map in determinism-critical code: iteration order is random; sort before use or suppress with //lint:ordered <justification>")
}

// orderExposingMapsFuncs are the stdlib maps iterators whose yield
// order is the map's random order.
var orderExposingMapsFuncs = map[string]bool{"Keys": true, "Values": true, "All": true}

func checkMapsCall(pass *Pass, call *ast.CallExpr, stack []ast.Node) {
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "maps" || !orderExposingMapsFuncs[fn.Name()] {
		return
	}
	if parent := parentCall(pass, stack, call); parent != nil {
		pfn := calleeFunc(pass.Pkg.Info, parent)
		if pfn != nil && pfn.Pkg() != nil && pfn.Pkg().Path() == "slices" {
			switch pfn.Name() {
			case "Sorted", "SortedFunc", "SortedStableFunc":
				return
			case "Collect":
				// x := slices.Collect(maps.Keys(m)) — safe iff x is sorted
				// later in the same block.
				if collectedThenSorted(pass, parent, stack) {
					return
				}
			}
		}
	}
	if pass.Suppressed(call.Pos(), "ordered") {
		return
	}
	pass.Reportf(call.Pos(), "maps.%s in determinism-critical code yields map order: wrap in slices.Sorted or suppress with //lint:ordered <justification>", fn.Name())
}

// parentCall returns the CallExpr that has call as a direct argument
// (through parens), or nil.
func parentCall(pass *Pass, stack []ast.Node, call *ast.CallExpr) *ast.CallExpr {
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.CallExpr:
			for _, arg := range p.Args {
				if ast.Unparen(arg) == call {
					return p
				}
			}
			return nil
		default:
			return nil
		}
	}
	return nil
}

// isDeleteAllLoop matches `for k := range m { delete(m, k) }`: the
// sanctioned clear idiom, where order cannot be observed.
func isDeleteAllLoop(pass *Pass, rng *ast.RangeStmt) bool {
	if rng.Value != nil || len(rng.Body.List) != 1 {
		return false
	}
	expr, ok := rng.Body.List[0].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := expr.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "delete" {
		return false
	}
	if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	mapObj := objOf(pass.Pkg.Info, rng.X)
	keyObj := objOf(pass.Pkg.Info, rng.Key)
	return mapObj != nil && keyObj != nil &&
		objOf(pass.Pkg.Info, call.Args[0]) == mapObj &&
		objOf(pass.Pkg.Info, call.Args[1]) == keyObj
}

// collectThenSort recognizes the collect-keys-then-sort idiom: every
// statement of the range body (possibly nested in if-filters) appends
// to one local slice, and that slice is sorted by a later statement of
// the enclosing block.
func collectThenSort(pass *Pass, rng *ast.RangeStmt, stack []ast.Node) bool {
	target := appendOnlyTarget(pass, rng.Body.List, nil)
	if target == nil {
		return false
	}
	blk, idx := enclosingBlock(stack, rng)
	if blk == nil || idx < 0 {
		return false
	}
	return sortedInStmts(pass, blk.List[idx+1:], target)
}

// collectedThenSorted handles x := slices.Collect(maps.Keys(m)):
// safe when the assigned variable is sorted later in the same block.
func collectedThenSorted(pass *Pass, collect *ast.CallExpr, stack []ast.Node) bool {
	// Walk out from the Collect call to the assignment statement.
	var assign *ast.AssignStmt
	for i := len(stack) - 1; i >= 0; i-- {
		if a, ok := stack[i].(*ast.AssignStmt); ok {
			assign = a
			break
		}
		if _, ok := stack[i].(ast.Stmt); ok {
			break
		}
	}
	if assign == nil || len(assign.Lhs) != 1 {
		return false
	}
	target := objOf(pass.Pkg.Info, assign.Lhs[0])
	if target == nil {
		return false
	}
	blk, idx := enclosingBlock(stack, collect)
	if blk == nil || idx < 0 {
		return false
	}
	return sortedInStmts(pass, blk.List[idx+1:], target)
}

// appendOnlyTarget returns the single local variable every statement
// appends to, or nil if the body does anything else. seed threads the
// candidate through recursion into if-filters.
func appendOnlyTarget(pass *Pass, stmts []ast.Stmt, seed types.Object) types.Object {
	target := seed
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			obj := appendAssignTarget(pass, s)
			if obj == nil {
				return nil
			}
			if target == nil {
				target = obj
			} else if target != obj {
				return nil
			}
		case *ast.IfStmt:
			if s.Else != nil || s.Init != nil {
				return nil
			}
			obj := appendOnlyTarget(pass, s.Body.List, target)
			if obj == nil {
				return nil
			}
			target = obj
		default:
			return nil
		}
	}
	return target
}

// appendAssignTarget matches `x = append(x, ...)` and returns x's
// object, or nil.
func appendAssignTarget(pass *Pass, s *ast.AssignStmt) types.Object {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return nil
	}
	lhs := objOf(pass.Pkg.Info, s.Lhs[0])
	if lhs == nil {
		return nil
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return nil
	}
	if objOf(pass.Pkg.Info, call.Args[0]) != lhs {
		return nil
	}
	return lhs
}

// sortNames are the sort/slices entry points accepted as canonical
// ordering.
func isSortFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Sort", "Stable", "Slice", "SliceStable", "Strings", "Ints", "Float64s":
			return true
		}
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}

// sortedInStmts reports whether any of stmts sorts target.
func sortedInStmts(pass *Pass, stmts []ast.Stmt, target types.Object) bool {
	for _, stmt := range stmts {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			if !isSortFunc(calleeFunc(pass.Pkg.Info, call)) {
				return true
			}
			for _, arg := range call.Args {
				if objOf(pass.Pkg.Info, arg) == target {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
