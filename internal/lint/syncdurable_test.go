package lint_test

import (
	"testing"

	"hitlist6/internal/lint"
	"hitlist6/internal/lint/linttest"
)

func TestSyncDurable(t *testing.T) {
	linttest.Run(t, lint.SyncDurable(), "./testdata/src/syncdurable")
}
