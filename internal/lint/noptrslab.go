package lint

import (
	"go/ast"
	"go/types"
)

// knownSlabTypes pins the collector's slab element structs to the
// pointer-free check even if their //lint:slab annotations are ever
// edited away: these three types are the entire resident corpus, and
// "GC never scans the corpus" (PR 3) rots silently the day one of them
// grows a pointer.
var knownSlabTypes = map[string]map[string]bool{
	"hitlist6/internal/collector": {
		"addrEntry": true,
		"iidEntry":  true,
		"spanNode":  true,
	},
}

// NoPtrSlab returns the pointer-free-slab analyzer: every type
// annotated //lint:slab (and the built-in collector slab types) must
// contain no pointer-bearing memory — no pointer, string, slice, map,
// channel, function, interface or unsafe.Pointer fields, recursively
// through embedded structs, arrays and named types from any package.
// Slab *elements* carry the invariant; the containers holding the
// slabs (Collector, u64set) own the few slice headers GC does scan.
//
// There is no suppression: a slab type with a pointer is never
// acceptable — either remove the field or remove the annotation (and
// with it the type's right to live in a slab).
func NoPtrSlab() *Analyzer {
	a := &Analyzer{
		Name: "noptrslab",
		Doc:  "proves //lint:slab-annotated types are pointer-free so GC never scans the corpus",
	}
	a.Run = func(pass *Pass) {
		known := knownSlabTypes[pass.Pkg.PkgPath]
		for _, file := range pass.Pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					annotated := CommentDirective([]*ast.CommentGroup{gd.Doc, ts.Doc, ts.Comment}, "slab") ||
						known[ts.Name.Name]
					if !annotated {
						continue
					}
					checkSlabType(pass, ts)
				}
			}
		}
	}
	return a
}

func checkSlabType(pass *Pass, ts *ast.TypeSpec) {
	obj, ok := pass.Pkg.Info.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		// A non-struct slab type (e.g. `type foo []byte`) is checked as
		// a whole.
		if path, bad := firstPointer(obj.Type(), nil); bad != nil {
			pass.Reportf(ts.Name.Pos(), "slab type %s contains pointer-bearing memory: %s (%s)", ts.Name.Name, pathOrType(ts.Name.Name, path), bad)
		}
		return
	}
	// Report at the offending top-level field so the finding lands on
	// the line to fix; the path names the nested culprit when the
	// pointer hides inside an embedded type.
	var flat []*ast.Ident
	if structAST, ok := ts.Type.(*ast.StructType); ok {
		flat = flattenFields(structAST)
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		path, bad := firstPointer(f.Type(), nil)
		if bad == nil {
			continue
		}
		pos := ts.Name.Pos()
		if i < len(flat) && flat[i] != nil {
			pos = flat[i].Pos()
		}
		pass.Reportf(pos, "slab type %s is not pointer-free: field %s is %s (GC would scan every slab chunk)",
			ts.Name.Name, pathOrType(f.Name(), path), bad)
	}
}

func pathOrType(root, path string) string {
	if path == "" {
		return root
	}
	return root + path
}

// flattenFields expands a struct's field list so that `a, b T` yields
// one entry per name, aligning indices with types.Struct fields.
func flattenFields(st *ast.StructType) []*ast.Ident {
	var out []*ast.Ident
	for _, f := range st.Fields.List {
		if len(f.Names) == 0 {
			// Embedded field: no name ident; reuse the type position via
			// a synthetic nil slot — callers fall back to the type name
			// position when out[i] is nil.
			out = append(out, nil)
			continue
		}
		out = append(out, f.Names...)
	}
	return out
}

// firstPointer walks t and returns the field path and type of the
// first pointer-bearing component, or ("", nil) if t is pointer-free.
// seen guards recursive named types.
func firstPointer(t types.Type, seen map[*types.Named]bool) (string, types.Type) {
	if named, ok := t.(*types.Named); ok {
		if seen[named] {
			return "", nil
		}
		if seen == nil {
			seen = make(map[*types.Named]bool)
		}
		seen[named] = true
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.String, types.UnsafePointer:
			return "", t
		}
		return "", nil
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return "", t
	case *types.Array:
		path, bad := firstPointer(u.Elem(), seen)
		if bad != nil {
			return "[...]" + path, bad
		}
		return "", nil
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			path, bad := firstPointer(f.Type(), seen)
			if bad != nil {
				return "." + f.Name() + path, bad
			}
		}
		return "", nil
	default:
		// Type parameters and anything exotic: conservatively reject —
		// a slab element's layout must be provably flat.
		return "", t
	}
}
