// Package linttest is the analysistest stand-in for the in-repo lint
// suite: it loads a testdata package, runs one analyzer over it, and
// checks the findings against `// want` expectations embedded in the
// source — same grammar as x/tools analysistest, one or more quoted
// regexps on the line the diagnostic should land on:
//
//	for k := range m { // want `range over map`
//
// Every want must be matched by a diagnostic on its line and every
// diagnostic must be covered by a want; anything else fails the test.
//
// When the expected diagnostic lands on a line that must end in a
// line comment — a bare //lint: directive being reported for its
// missing justification — the want rides a block comment before it:
//
//	/* want `requires a justification` */ //lint:ordered
package linttest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"hitlist6/internal/lint"
)

// expectation is one `// want` regexp with its location.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// Run loads the package at pattern (relative to the test's working
// directory, e.g. "./testdata/src/mapiter") and verifies analyzer's
// findings against its want comments. The analyzer value must be
// fresh — analyzers accumulate cross-package state.
func Run(t *testing.T, analyzer *lint.Analyzer, pattern string) {
	t.Helper()
	pkgs, err := lint.Load(".", pattern)
	if err != nil {
		t.Fatalf("loading %s: %v", pattern, err)
	}
	diags := lint.Run([]*lint.Analyzer{analyzer}, pkgs)

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					pos := pkg.Fset.Position(c.Pos())
					for _, pat := range parseWant(t, pos.String(), c.Text) {
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: pat})
					}
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.used || w.file != d.File || w.line != d.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// parseWant extracts the quoted regexps from a `// want "..." `...“
// comment. Comments without the marker yield nil.
func parseWant(t *testing.T, at, text string) []*regexp.Regexp {
	t.Helper()
	if strings.HasPrefix(text, "/*") {
		text = "// " + strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/"))
	}
	const marker = "// want "
	i := strings.Index(text, marker)
	if i < 0 {
		return nil
	}
	rest := strings.TrimSpace(text[i+len(marker):])
	var pats []*regexp.Regexp
	for rest != "" {
		var raw string
		var err error
		switch rest[0] {
		case '"':
			end := matchedQuote(rest)
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern: %s", at, rest)
			}
			raw, err = strconv.Unquote(rest[:end+1])
			rest = strings.TrimSpace(rest[end+1:])
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern: %s", at, rest)
			}
			raw = rest[1 : 1+end]
			rest = strings.TrimSpace(rest[end+2:])
		default:
			t.Fatalf("%s: malformed want pattern (expected quoted regexp): %s", at, rest)
		}
		if err != nil {
			t.Fatalf("%s: bad want pattern: %v", at, err)
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			t.Fatalf("%s: bad want regexp: %v", at, err)
		}
		pats = append(pats, re)
	}
	return pats
}

// matchedQuote returns the index of the closing '"' of a Go-quoted
// string starting at 0, honoring backslash escapes, or -1.
func matchedQuote(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i
		}
	}
	return -1
}
