package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// SyncDurable returns the durability analyzer for checkpoint/snapshot
// write paths. The contract PR 4 established: a checkpoint either
// lands complete — written, flushed, fsynced, closed, renamed, every
// step's error observed — or the previous good file is untouched.
// The analyzer flags, in scoped files:
//
//   - dropped errors from Write/WriteString/WriteByte/WriteRune/Flush/
//     Sync/Close/Rename calls (bare statement, defer, or an assignment
//     discarding the error position), except on writers that cannot
//     fail (strings.Builder, bytes.Buffer, the hash interfaces) and on
//     Close of files opened read-only with os.Open in the same
//     function;
//   - a function calling os.Rename with no fsync in sight (no .Sync()
//     call and no call to a *Sync*-named helper): the rename publishes
//     bytes that may still be in the page cache, exactly the torn
//     checkpoint the atomic-write protocol exists to prevent.
//
// Scope: internal/snapfmt, any file whose name contains "checkpoint",
// and any file carrying a //lint:durable-path marker (the annotation
// every new durable-artifact writer should start with). Suppress a
// finding with //lint:durable <justification>.
func SyncDurable() *Analyzer {
	a := &Analyzer{
		Name: "syncdurable",
		Doc:  "flags dropped write-path errors and rename-without-fsync on durability paths",
	}
	a.Run = func(pass *Pass) {
		for _, file := range pass.Pkg.Files {
			if !durableInScope(pass, file) {
				continue
			}
			inspectStack(file, func(n ast.Node, stack []ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					if call, ok := n.X.(*ast.CallExpr); ok {
						checkDroppedErr(pass, call, stack)
					}
				case *ast.DeferStmt:
					checkDroppedErr(pass, n.Call, stack)
				case *ast.GoStmt:
					checkDroppedErr(pass, n.Call, stack)
				case *ast.AssignStmt:
					checkBlankErr(pass, n, stack)
				case *ast.FuncDecl:
					checkRenameSync(pass, n)
				}
				return true
			})
		}
	}
	return a
}

func durableInScope(pass *Pass, file *ast.File) bool {
	if pass.Pkg.PkgPath == "hitlist6/internal/snapfmt" {
		return true
	}
	name := filepath.Base(pass.Pkg.Fset.Position(file.Pos()).Filename)
	if strings.Contains(name, "checkpoint") {
		return true
	}
	return pass.FileHasDirective(file.Pos(), "durable-path")
}

// droppableMethods are the calls whose error return carries the
// durability contract.
var droppableMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Flush": true, "Sync": true, "Close": true, "Rename": true,
}

// checkDroppedErr flags a call statement that discards a durability
// error entirely (ExprStmt, defer, go).
func checkDroppedErr(pass *Pass, call *ast.CallExpr, stack []ast.Node) {
	if !droppableDurabilityCall(pass, call, stack) {
		return
	}
	if pass.Suppressed(call.Pos(), "durable") {
		return
	}
	pass.Reportf(call.Pos(), "error from %s dropped on a durability path: a lost write/close/sync error means a checkpoint that lies; check it or suppress with //lint:durable <justification>", callName(call))
}

// checkBlankErr flags `_ = f.Sync()` and `n, _ := w.Write(p)`: the
// error position (always last) assigned to blank.
func checkBlankErr(pass *Pass, assign *ast.AssignStmt, stack []ast.Node) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok || len(assign.Lhs) == 0 {
		return
	}
	last, ok := ast.Unparen(assign.Lhs[len(assign.Lhs)-1]).(*ast.Ident)
	if !ok || last.Name != "_" {
		return
	}
	if !droppableDurabilityCall(pass, call, stack) {
		return
	}
	if pass.Suppressed(assign.Pos(), "durable") {
		return
	}
	pass.Reportf(assign.Pos(), "error from %s assigned to _ on a durability path; check it or suppress with //lint:durable <justification>", callName(call))
}

// droppableDurabilityCall reports whether call is a durability call
// whose dropped error the analyzer cares about.
func droppableDurabilityCall(pass *Pass, call *ast.CallExpr, stack []ast.Node) bool {
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil || !droppableMethods[fn.Name()] {
		return false
	}
	if !returnsError(pass, call) {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if fn.Signature().Recv() == nil {
		// Package function: only os.Rename matters here.
		return isPkgFunc(fn, "os", "Rename")
	}
	recvType := pass.TypeOf(sel.X)
	if recvType == nil || neverFailsWriter(recvType) {
		return false
	}
	// Close on a read-only file (opened with os.Open in this function)
	// cannot lose written bytes.
	if fn.Name() == "Close" {
		if obj := objOf(pass.Pkg.Info, sel.X); obj != nil && openedReadOnly(pass, obj, stack) {
			return false
		}
	}
	return true
}

// returnsError reports whether the call's last result is error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	switch r := t.(type) {
	case *types.Tuple:
		if r.Len() == 0 {
			return false
		}
		t = r.At(r.Len() - 1).Type()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// neverFailsWriter recognizes receiver types whose write-family
// methods are documented to never return an error.
func neverFailsWriter(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer", "hash.Hash", "hash.Hash32", "hash.Hash64":
		return true
	}
	return false
}

// openedReadOnly reports whether obj is assigned from os.Open within
// the enclosing function — the read-only file whose Close error is
// inconsequential.
func openedReadOnly(pass *Pass, obj types.Object, stack []ast.Node) bool {
	body := enclosingFunc(stack)
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || found || len(assign.Rhs) != 1 {
			return !found
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok || !isPkgFunc(calleeFunc(pass.Pkg.Info, call), "os", "Open") {
			return true
		}
		for _, lhs := range assign.Lhs {
			if objOf(pass.Pkg.Info, lhs) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkRenameSync flags functions that publish via os.Rename without
// any fsync step.
func checkRenameSync(pass *Pass, fn *ast.FuncDecl) {
	if fn.Body == nil {
		return
	}
	var rename *ast.CallExpr
	synced := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass.Pkg.Info, call)
		if callee == nil {
			return true
		}
		if isPkgFunc(callee, "os", "Rename") && rename == nil {
			rename = call
		}
		if callee.Name() == "Sync" || strings.Contains(callee.Name(), "Sync") {
			synced = true
		}
		return true
	})
	if rename == nil || synced {
		return
	}
	if pass.Suppressed(rename.Pos(), "durable") {
		return
	}
	pass.Reportf(rename.Pos(), "os.Rename without an fsync in %s: renaming an unsynced file publishes a checkpoint the disk may not hold yet; Sync before Rename or suppress with //lint:durable <justification>", fn.Name.Name)
}

func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return "call"
}
