// Package rdns implements reverse-DNS-based IPv6 address discovery: the
// ip6.arpa NXDOMAIN tree-walking technique (Fiebig et al., PAM'17;
// Borgolte et al., S&P'18) the paper's related work cites as an active
// discovery source for hitlists.
//
// The ip6.arpa zone is a 32-level nibble tree. RFC 8020-compliant servers
// answer NXDOMAIN for an empty subtree and NOERROR for an empty
// non-terminal, so a walker can enumerate every PTR record while pruning
// all dead branches — discovering each name with O(32 × 16) queries
// instead of 2^128 probes.
//
// Zone is the authoritative-server stand-in (built from the simulated
// world's devices that plausibly have PTR records), and Walk is the
// enumerator.
package rdns

import (
	"sort"
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/simnet"
)

// RCode is the subset of DNS response codes the walk distinguishes.
type RCode uint8

const (
	// NXDomain: nothing exists at or below this name (RFC 8020).
	NXDomain RCode = iota
	// NoError: the name exists (an empty non-terminal or a PTR owner).
	NoError
)

// Zone is a nibble-tree of PTR records, queried the way an
// authoritative ip6.arpa server would answer.
type Zone struct {
	root *zoneNode
	n    int
	// Queries counts lookups served, for cost accounting.
	Queries uint64
}

type zoneNode struct {
	children [16]*zoneNode
	ptr      bool // a PTR record terminates here (depth 32)
}

// NewZone returns an empty zone.
func NewZone() *Zone { return &Zone{root: &zoneNode{}} }

// Add inserts a PTR record for an address.
func (z *Zone) Add(a addr.Addr) {
	n := z.root
	for i := 0; i < 32; i++ {
		nib := nibbleAt(a, i)
		if n.children[nib] == nil {
			n.children[nib] = &zoneNode{}
		}
		n = n.children[nib]
	}
	if !n.ptr {
		z.n++
	}
	n.ptr = true
}

// Len returns the number of PTR records.
func (z *Zone) Len() int { return z.n }

// nibbleAt returns the i-th nibble of the address, most significant
// first (the label order is reversed in actual ip6.arpa names; the walk
// is isomorphic either way).
func nibbleAt(a addr.Addr, i int) int {
	b := a[i/2]
	if i%2 == 0 {
		return int(b >> 4)
	}
	return int(b & 0xf)
}

// Query answers for the name formed by the first len(nibbles) labels:
// the rcode, and the PTR target when the name is a full 32-nibble owner.
func (z *Zone) Query(nibbles []int) (RCode, bool) {
	z.Queries++
	n := z.root
	for _, nib := range nibbles {
		if nib < 0 || nib > 15 {
			return NXDomain, false
		}
		if n.children[nib] == nil {
			return NXDomain, false
		}
		n = n.children[nib]
	}
	return NoError, n.ptr && len(nibbles) == 32
}

// Walk enumerates every PTR record under the given prefix by NXDOMAIN
// tree walking. maxQueries bounds the cost (0 = unlimited); the walk
// stops early when exhausted. Results are in nibble-lexicographic order.
func Walk(z *Zone, under addr.Prefix, maxQueries uint64) []addr.Addr {
	if under.Bits()%4 != 0 {
		// ip6.arpa delegations are nibble-aligned; round down.
		under = addr.MustPrefix(under.Addr(), under.Bits()/4*4)
	}
	start := make([]int, under.Bits()/4)
	for i := range start {
		start[i] = nibbleAt(under.Addr(), i)
	}
	var out []addr.Addr
	budget := func() bool {
		return maxQueries == 0 || z.Queries < maxQueries
	}
	var rec func(nibbles []int)
	rec = func(nibbles []int) {
		if !budget() {
			return
		}
		rcode, isPTR := z.Query(nibbles)
		if rcode == NXDomain {
			return
		}
		if len(nibbles) == 32 {
			if isPTR {
				out = append(out, addrFromNibbles(nibbles))
			}
			return
		}
		for nib := 0; nib < 16; nib++ {
			rec(append(nibbles, nib))
			if !budget() {
				return
			}
		}
	}
	rec(start)
	return out
}

func addrFromNibbles(nibbles []int) addr.Addr {
	var a addr.Addr
	for i, nib := range nibbles {
		if i%2 == 0 {
			a[i/2] |= byte(nib) << 4
		} else {
			a[i/2] |= byte(nib)
		}
	}
	return a
}

// BuildZone populates a zone from the world at a point in time: servers
// nearly always carry PTR records, routers usually do (operators name
// infrastructure), CPE rarely, clients never. The per-device choice is
// deterministic in the device seed via the world's public-seed sampling
// when available; here we use the structural classes directly.
func BuildZone(w *simnet.World, at time.Time) *Zone {
	z := NewZone()
	for _, r := range w.Routers() {
		z.Add(r)
	}
	for _, d := range w.Devices() {
		var keep bool
		switch d.Kind {
		case simnet.KindServer:
			keep = true
		case simnet.KindCPE:
			// Dynamic-DNS households: reuse the public-seed notion.
			keep = hasPTRBit(d)
		}
		if keep {
			z.Add(d.AddressAt(at))
		}
	}
	return z
}

// hasPTRBit samples a stable per-device coin for CPE PTR presence.
func hasPTRBit(d *simnet.Device) bool {
	// One in four CPE households runs dynamic DNS.
	m, ok := d.MAC()
	if ok {
		return (uint32(m[5])+uint32(m[4]))%4 == 0
	}
	return d.QueryRate() != 0 && int(d.QueryRate()*100)%4 == 0
}

// SortAddrs orders addresses lexicographically; exported for tests and
// callers comparing walk output with expectations.
func SortAddrs(as []addr.Addr) {
	sort.Slice(as, func(i, j int) bool {
		for k := 0; k < 16; k++ {
			if as[i][k] != as[j][k] {
				return as[i][k] < as[j][k]
			}
		}
		return false
	})
}
