package rdns

import (
	"testing"
	"testing/quick"
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/simnet"
)

func TestZoneAddQuery(t *testing.T) {
	z := NewZone()
	a := addr.MustParse("2001:db8::1")
	z.Add(a)
	z.Add(a) // idempotent
	if z.Len() != 1 {
		t.Fatalf("Len: %d", z.Len())
	}
	// Full name resolves with a PTR.
	full := nibblesOf(a, 32)
	rcode, ptr := z.Query(full)
	if rcode != NoError || !ptr {
		t.Errorf("full query: %v %v", rcode, ptr)
	}
	// Any ancestor is an empty non-terminal (NoError, no PTR).
	rcode, ptr = z.Query(full[:8])
	if rcode != NoError || ptr {
		t.Errorf("ancestor query: %v %v", rcode, ptr)
	}
	// Sibling subtree is NXDOMAIN.
	sib := append([]int(nil), full[:8]...)
	sib[7] ^= 0x1
	if rcode, _ := z.Query(sib); rcode != NXDomain {
		t.Errorf("sibling query: %v", rcode)
	}
	// Out-of-range label.
	if rcode, _ := z.Query([]int{99}); rcode != NXDomain {
		t.Errorf("bad label: %v", rcode)
	}
}

func nibblesOf(a addr.Addr, n int) []int {
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = nibbleAt(a, i)
	}
	return out
}

func TestWalkEnumeratesExactly(t *testing.T) {
	z := NewZone()
	want := []addr.Addr{
		addr.MustParse("2001:db8::1"),
		addr.MustParse("2001:db8::2"),
		addr.MustParse("2001:db8:0:1::1"),
		addr.MustParse("2001:db8:ffff::42"),
	}
	for _, a := range want {
		z.Add(a)
	}
	// A record outside the walked prefix must not appear.
	z.Add(addr.MustParse("2400:cb00::1"))

	got := Walk(z, addr.MustParsePrefix("2001:db8::/32"), 0)
	if len(got) != len(want) {
		t.Fatalf("walked %d records, want %d: %v", len(got), len(want), got)
	}
	SortAddrs(want)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d: got %s want %s", i, got[i], want[i])
		}
	}
}

func TestWalkQueryCostScalesWithNames(t *testing.T) {
	z := NewZone()
	const names = 50
	for i := 0; i < names; i++ {
		z.Add(addr.FromParts(0x20010db8_00000000|uint64(i), uint64(i+1)))
	}
	z.Queries = 0
	got := Walk(z, addr.MustParsePrefix("2001:db8::/32"), 0)
	if len(got) != names {
		t.Fatalf("walked %d", len(got))
	}
	// The walk must be linear-ish in names (each name costs at most
	// 32 levels x 16 siblings), nowhere near brute force.
	maxQ := uint64(names * 32 * 16)
	if z.Queries > maxQ {
		t.Errorf("queries %d exceed linear bound %d", z.Queries, maxQ)
	}
	if z.Queries < names {
		t.Errorf("implausibly few queries: %d", z.Queries)
	}
}

func TestWalkBudget(t *testing.T) {
	z := NewZone()
	for i := 0; i < 100; i++ {
		z.Add(addr.FromParts(0x20010db8_00000000|uint64(i), 1))
	}
	z.Queries = 0
	full := Walk(z, addr.MustParsePrefix("2001:db8::/32"), 0)
	z.Queries = 0
	partial := Walk(z, addr.MustParsePrefix("2001:db8::/32"), 200)
	if len(partial) >= len(full) {
		t.Errorf("budgeted walk should find fewer: %d vs %d", len(partial), len(full))
	}
	if z.Queries > 200+16 {
		t.Errorf("budget overrun: %d", z.Queries)
	}
}

func TestWalkEmptyZone(t *testing.T) {
	z := NewZone()
	if got := Walk(z, addr.MustParsePrefix("::/0"), 0); len(got) != 0 {
		t.Errorf("empty zone walk: %v", got)
	}
}

func TestWalkNonNibbleAlignedPrefix(t *testing.T) {
	z := NewZone()
	a := addr.MustParse("2001:db8::7")
	z.Add(a)
	// /33 rounds down to /32.
	got := Walk(z, addr.MustParsePrefix("2001:db8::/33"), 0)
	if len(got) != 1 || got[0] != a {
		t.Errorf("walk: %v", got)
	}
}

func TestWalkRoundTripProperty(t *testing.T) {
	f := func(lo1, lo2, lo3 uint64) bool {
		z := NewZone()
		in := map[addr.Addr]bool{}
		for _, lo := range []uint64{lo1, lo2, lo3} {
			a := addr.FromParts(0x20010db8_00000000, lo)
			z.Add(a)
			in[a] = true
		}
		got := Walk(z, addr.MustParsePrefix("2001:db8::/64"), 0)
		if len(got) != len(in) {
			return false
		}
		for _, a := range got {
			if !in[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBuildZoneFromWorld(t *testing.T) {
	cfg := simnet.DefaultConfig(21, 0.05)
	cfg.Days = 10
	w, err := simnet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	at := w.Origin.Add(24 * time.Hour)
	z := BuildZone(w, at)
	if z.Len() == 0 {
		t.Fatal("empty zone")
	}
	// All routers must be enumerable.
	for _, r := range w.Routers()[:5] {
		full := nibblesOf(r, 32)
		if rcode, ptr := z.Query(full); rcode != NoError || !ptr {
			t.Errorf("router %s missing PTR", r)
		}
	}
	// A walk over one AS's routed prefix discovers only in-prefix names.
	routed := w.ASDB.Get(w.ASDB.ASNs()[0]).Prefixes[0]
	found := Walk(z, routed, 0)
	for _, a := range found {
		if !routed.Contains(a) {
			t.Errorf("walk escaped prefix: %s", a)
		}
	}
}
