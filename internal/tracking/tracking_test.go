package tracking

import (
	"strings"
	"testing"
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/asdb"
	"hitlist6/internal/collector"
	"hitlist6/internal/geodb"
	"hitlist6/internal/oui"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		ases, countries, transitions int
		want                         Class
	}{
		{1, 1, 0, NotTrackable},
		{1, 1, 2, MostlyStatic},
		{1, 1, 10, MostlyStatic}, // threshold is "more than 10"
		{1, 1, 11, PrefixReassignment},
		{2, 1, 3, ProviderChange},
		{2, 1, 50, UserMovement},
		{5, 4, 80, MACReuse},
		{3, 2, 5, MACReuse}, // many countries dominates
	}
	for _, c := range cases {
		if got := Classify(c.ases, c.countries, c.transitions); got != c.want {
			t.Errorf("Classify(%d,%d,%d): got %v want %v",
				c.ases, c.countries, c.transitions, got, c.want)
		}
	}
}

func TestClassStrings(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if c.String() == "Unknown" || c.String() == "" {
			t.Errorf("class %d unnamed", c)
		}
	}
}

// fixture builds a small corpus with known tracking patterns.
func fixture(t *testing.T) (*collector.Collector, *asdb.DB, *geodb.DB, *oui.Registry) {
	t.Helper()
	db := asdb.NewDB()
	add := func(asn asdb.ASN, name, cc, pfx string) {
		if err := db.AddAS(asdb.AS{
			ASN: asn, Name: name, Country: cc,
			Prefixes: []addr.Prefix{addr.MustParsePrefix(pfx)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	add(100, "Home ISP", "DE", "2400:100::/32")
	add(200, "Cell Carrier", "DE", "2400:200::/32")
	add(300, "Foreign ISP", "BR", "2400:300::/32")
	geo := geodb.FromASDB(db)
	reg := oui.NewRegistry(0)
	return collector.New(), db, geo, reg
}

var base = time.Date(2022, 2, 1, 0, 0, 0, 0, time.UTC)

// observeEUI64 plants sightings of mac in the given /64 bases at daily
// steps starting at day.
func observeEUI64(c *collector.Collector, mac addr.MAC, p64Hi uint64, day int) {
	iid := addr.EUI64FromMAC(mac)
	a := addr.FromParts(p64Hi, uint64(iid))
	c.Observe(a, base.AddDate(0, 0, day), 0)
}

func TestAnalyzeClasses(t *testing.T) {
	c, db, geo, reg := fixture(t)

	// Static host: one /64 throughout.
	static := addr.MAC{0x00, 0x3e, 0xe1, 1, 1, 1}
	for d := 0; d < 60; d += 10 {
		observeEUI64(c, static, 0x2400_0100_0000_0001, d)
	}

	// Prefix reassignment: 15 /64s in one AS (AS100, DE).
	renum := addr.MAC{0x00, 0x3e, 0xe1, 2, 2, 2}
	for i := 0; i < 15; i++ {
		observeEUI64(c, renum, 0x2400_0100_0000_0100+uint64(i), i)
	}

	// Provider change: two ASes same country, few /64s.
	switcher := addr.MAC{0x00, 0x3e, 0xe1, 3, 3, 3}
	observeEUI64(c, switcher, 0x2400_0100_0000_0200, 0)
	observeEUI64(c, switcher, 0x2400_0200_0000_0200, 30)

	// User movement: two ASes same country, many transitions.
	mover := addr.MAC{0x00, 0x3e, 0xe1, 4, 4, 4}
	for i := 0; i < 20; i++ {
		hi := uint64(0x2400_0100_0000_0300)
		if i%2 == 1 {
			hi = 0x2400_0200_0000_0300
		}
		observeEUI64(c, mover, hi+uint64(i), i)
	}

	// MAC reuse: two countries.
	reused := addr.MAC{0xf0, 0x02, 0x20, 5, 5, 5}
	observeEUI64(c, reused, 0x2400_0100_0000_0400, 0)
	observeEUI64(c, reused, 0x2400_0300_0000_0400, 1)

	// A non-EUI-64 high-entropy client for contrast.
	c.Observe(addr.MustParse("2400:100::1b2c:3d4e:5f60:7182"), base, 0)

	a := Analyze(c, db, geo, reg)

	if a.EUI64Addresses == 0 {
		t.Fatal("no EUI-64 addresses counted")
	}
	if len(a.MACs) != 5 {
		t.Fatalf("MACs: %d want 5", len(a.MACs))
	}
	if a.Trackable != 4 { // all but the static host
		t.Errorf("trackable: %d want 4", a.Trackable)
	}
	wantClass := map[addr.MAC]Class{
		static:   NotTrackable,
		renum:    PrefixReassignment,
		switcher: ProviderChange,
		mover:    UserMovement,
		reused:   MACReuse,
	}
	for _, m := range a.MACs {
		if want := wantClass[m.MAC]; m.Class != want {
			t.Errorf("MAC %s: class %v want %v (ases=%d cc=%d tr=%d)",
				m.MAC, m.Class, want, len(m.ASNs), len(m.Countries), m.Transitions)
		}
	}
	// Class shares sum to 1 over trackable classes.
	var sum float64
	for cl := MostlyStatic; cl < NumClasses; cl++ {
		sum += a.ClassShare(cl)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("class shares sum: %v", sum)
	}
	if a.ClassShare(NotTrackable) != 0 {
		t.Error("NotTrackable share should be excluded")
	}
}

func TestTable2AndUnlisted(t *testing.T) {
	c, db, geo, reg := fixture(t)
	// Two Apple MACs, three phantom MACs.
	observeEUI64(c, addr.MAC{0x00, 0x3e, 0xe1, 9, 9, 1}, 0x2400_0100_0000_0001, 0)
	observeEUI64(c, addr.MAC{0x00, 0x3e, 0xe1, 9, 9, 2}, 0x2400_0100_0000_0002, 0)
	observeEUI64(c, addr.MAC{0xf0, 0x02, 0x20, 9, 9, 3}, 0x2400_0100_0000_0003, 0)
	observeEUI64(c, addr.MAC{0xf0, 0x02, 0x20, 9, 9, 4}, 0x2400_0100_0000_0004, 0)
	observeEUI64(c, addr.MAC{0xf0, 0x02, 0x20, 9, 9, 5}, 0x2400_0100_0000_0005, 0)

	a := Analyze(c, db, geo, reg)
	rows := a.Table2()
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	if rows[0].Manufacturer != oui.Unlisted || rows[0].Count != 3 {
		t.Errorf("top row: %+v", rows[0])
	}
	if rows[1].Manufacturer != "Apple, Inc." || rows[1].Count != 2 {
		t.Errorf("second row: %+v", rows[1])
	}
	if got := a.UnlistedShare(); got != 0.6 {
		t.Errorf("unlisted share: %v", got)
	}
}

func TestFigure6(t *testing.T) {
	c, _, _, _ := fixture(t)
	m1 := addr.MAC{0x00, 0x3e, 0xe1, 1, 0, 1}
	observeEUI64(c, m1, 0x2400_0100_0000_0001, 0)
	observeEUI64(c, m1, 0x2400_0100_0000_0002, 14)
	m2 := addr.MAC{0x00, 0x3e, 0xe1, 1, 0, 2}
	observeEUI64(c, m2, 0x2400_0100_0000_0003, 0)

	f6a := Figure6a(c)
	if f6a.N() != 2 {
		t.Fatalf("6a N: %d", f6a.N())
	}
	if f6a.Max() != (14 * 24 * time.Hour).Seconds() {
		t.Errorf("6a max: %v", f6a.Max())
	}
	f6b := Figure6b(c)
	if f6b.N() != 2 || f6b.Max() != 2 || f6b.Min() != 1 {
		t.Errorf("6b: n=%d min=%v max=%v", f6b.N(), f6b.Min(), f6b.Max())
	}
}

func TestTimelineAndExemplar(t *testing.T) {
	c, db, geo, reg := fixture(t)
	m := addr.MAC{0x00, 0x3e, 0xe1, 7, 7, 7}
	// Two /48s in different ASes, in time order.
	observeEUI64(c, m, 0x2400_0100_0000_0001, 0)
	observeEUI64(c, m, 0x2400_0100_0000_0001, 5)
	observeEUI64(c, m, 0x2400_0200_0000_0001, 40)

	a := Analyze(c, db, geo, reg)
	ex := a.Exemplar(ProviderChange)
	if ex == nil || ex.MAC != m {
		t.Fatalf("exemplar: %+v", ex)
	}
	tl := Timeline(ex, db)
	if len(tl) != 2 {
		t.Fatalf("timeline entries: %d", len(tl))
	}
	if !tl[0].First.Before(tl[1].First) {
		t.Error("timeline not ordered")
	}
	if tl[0].ASName != "Home ISP" || tl[1].ASName != "Cell Carrier" {
		t.Errorf("AS attribution: %q, %q", tl[0].ASName, tl[1].ASName)
	}
	out := RenderTimeline(ex, db)
	for _, want := range []string{"00:3e:e1:07:07:07", "Home ISP", "Cell Carrier", "Changing providers"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if a.Exemplar(MACReuse) != nil {
		t.Error("exemplar for empty class should be nil")
	}
}
