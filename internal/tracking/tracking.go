// Package tracking implements the paper's §5 privacy analyses over the
// passive corpus: EUI-64 prevalence and manufacturer attribution (§5.1,
// Table 2), the five-way device-tracking classifier (§5.2), the lifetime
// and prefix-spread distributions of Figure 6, and the Figure 7 exemplar
// timelines.
package tracking

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/asdb"
	"hitlist6/internal/collector"
	"hitlist6/internal/fold"
	"hitlist6/internal/geodb"
	"hitlist6/internal/oui"
	"hitlist6/internal/stats"
)

// Class is the §5.2 explanation for an EUI-64 IID's re-occurrence
// pattern.
type Class uint8

const (
	// NotTrackable: the IID never changed /64 (excluded from the
	// classification universe).
	NotTrackable Class = iota
	// MostlyStatic: low AS count, low country count, few transitions
	// (paper: 86%).
	MostlyStatic
	// PrefixReassignment: one AS, one country, many /64 transitions —
	// provider renumbering (paper: 8%, Fig 7a).
	PrefixReassignment
	// MACReuse: many ASes AND many countries — several devices share the
	// identifier (paper: 0.01%, Fig 7b).
	MACReuse
	// ProviderChange: multiple ASes in one country, few transitions
	// (paper: 5%, Fig 7c).
	ProviderChange
	// UserMovement: multiple ASes in one country with many transitions —
	// a device moving between WiFi and cellular (paper: 0.44%, Fig 7d).
	UserMovement
	// NumClasses counts the classes.
	NumClasses
)

// String names the class as §5.2 does.
func (c Class) String() string {
	switch c {
	case NotTrackable:
		return "Not trackable (single /64)"
	case MostlyStatic:
		return "Mostly static hosts"
	case PrefixReassignment:
		return "Likely prefix reassignment"
	case MACReuse:
		return "Likely MAC reuse"
	case ProviderChange:
		return "Changing providers"
	case UserMovement:
		return "Likely user movement"
	default:
		return "Unknown"
	}
}

// transitionThreshold is the paper's "more than 10 transitions is high".
const transitionThreshold = 10

// P64Span is one /64 the identifier appeared in, with its sighting
// window in Unix seconds.
type P64Span struct {
	P64         addr.Prefix64
	First, Last int64
}

// MACInfo aggregates everything known about one EUI-64 identifier. All
// fields are copied out of the collector, so an analysis owns its data
// outright — it stays valid (and race-free) after the store it was read
// from keeps merging snapshots.
type MACInfo struct {
	MAC    addr.MAC
	IID    addr.IID
	Vendor string
	// First, Last and Count summarize all sightings of the identifier.
	First, Last int64
	Count       uint32
	// Spans holds the per-/64 sighting windows, sorted by prefix.
	Spans []P64Span
	// ASNs and Countries are the distinct origin networks the identifier
	// appeared in.
	ASNs      map[asdb.ASN]struct{}
	Countries map[string]struct{}
	// Transitions approximates /64 changes as (#distinct /64s - 1).
	Transitions int
	Class       Class
}

// Lifetime returns the identifier's observed lifetime.
func (m *MACInfo) Lifetime() time.Duration {
	return time.Duration(m.Last-m.First) * time.Second
}

// Classify applies the paper's heuristic to one identifier's footprint.
func Classify(numASes, numCountries, transitions int) Class {
	if transitions < 1 {
		return NotTrackable
	}
	asHigh := numASes > 1
	ccHigh := numCountries > 1
	trHigh := transitions > transitionThreshold
	switch {
	case ccHigh:
		// Many countries (necessarily with several ASes in practice):
		// simultaneous devices, i.e. vendor MAC reuse.
		return MACReuse
	case asHigh && trHigh:
		return UserMovement
	case asHigh:
		return ProviderChange
	case trHigh:
		return PrefixReassignment
	default:
		return MostlyStatic
	}
}

// Analysis is the full §5.1/§5.2 result set.
type Analysis struct {
	// EUI64Addresses is the number of unique EUI-64 addresses in the
	// corpus (paper: 238,281,703 = 3%).
	EUI64Addresses int
	// ExpectedRandom is how many random IIDs would masquerade as EUI-64
	// (corpus size / 2^16; paper: < 121,000).
	ExpectedRandom float64
	// MACs holds one entry per unique embedded MAC.
	MACs []*MACInfo
	// Trackable is the number of MACs in >= 2 /64s (paper: 14,943,429 =
	// 8.7%).
	Trackable int
	// ClassCounts tallies trackable MACs per class.
	ClassCounts [NumClasses]int
	// VendorCounts is Table 2: embedded-MAC count per manufacturer.
	VendorCounts map[string]int
}

// Analyze runs the full EUI-64 privacy analysis over a collector.
func Analyze(c *collector.Collector, db *asdb.DB, geo *geodb.DB, reg *oui.Registry) *Analysis {
	return AnalyzeWorkers(c, db, geo, reg, 1)
}

// AnalyzeWorkers is Analyze as two parallel folds: the EUI-64 address
// prevalence count over the address slab, and the per-MAC footprint
// construction over the promoted IID slab. Per-MAC work (span copy, AS
// and country attribution, classification) is independent, partials
// merge by concatenation plus counter addition, and the final MAC sort
// makes the result identical at every worker count.
func AnalyzeWorkers(c *collector.Collector, db *asdb.DB, geo *geodb.DB, reg *oui.Registry, workers int) *Analysis {
	a := &Analysis{VendorCounts: make(map[string]int)}

	// Count unique EUI-64 *addresses* for the prevalence headline.
	a.EUI64Addresses = fold.Map(c.NumAddrs(), workers,
		func(lo, hi int) int {
			n := 0
			c.AddrsRange(lo, hi, func(ad addr.Addr, _ collector.AddrRecord) bool {
				if ad.IID().IsEUI64() {
					n++
				}
				return true
			})
			return n
		},
		func(dst, src int) int { return dst + src })
	a.ExpectedRandom = float64(c.NumAddrs()) / 65536

	part := fold.Map(c.NumPromotedIIDs(), workers,
		func(lo, hi int) *Analysis {
			p := &Analysis{VendorCounts: make(map[string]int)}
			c.EUI64IIDsRange(lo, hi, func(iid addr.IID, r collector.IIDView) bool {
				mac, err := addr.MACFromEUI64(iid)
				if err != nil {
					return true
				}
				info := &MACInfo{
					MAC:       mac,
					IID:       iid,
					Vendor:    reg.LookupMAC(mac),
					First:     r.First(),
					Last:      r.Last(),
					Count:     r.Count(),
					Spans:     make([]P64Span, 0, r.NumP64s()),
					ASNs:      make(map[asdb.ASN]struct{}),
					Countries: make(map[string]struct{}),
				}
				r.P64s(func(p addr.Prefix64, sp collector.Span) bool {
					info.Spans = append(info.Spans, P64Span{P64: p, First: sp.First, Last: sp.Last})
					base := p.Addr()
					if asn, ok := db.OriginASN(base); ok {
						info.ASNs[asn] = struct{}{}
					}
					if cc := geo.Country(base); cc != "" {
						info.Countries[cc] = struct{}{}
					}
					return true
				})
				sort.Slice(info.Spans, func(i, j int) bool { return info.Spans[i].P64 < info.Spans[j].P64 })
				info.Transitions = len(info.Spans) - 1
				info.Class = Classify(len(info.ASNs), len(info.Countries), info.Transitions)
				p.MACs = append(p.MACs, info)
				p.VendorCounts[info.Vendor]++
				if info.Class != NotTrackable {
					p.Trackable++
				}
				p.ClassCounts[info.Class]++
				return true
			})
			return p
		},
		func(dst, src *Analysis) *Analysis {
			if dst == nil {
				return src
			}
			if src != nil {
				dst.MACs = append(dst.MACs, src.MACs...)
				//lint:ordered per-vendor count sums commute; the merged map carries no order
				for v, n := range src.VendorCounts {
					dst.VendorCounts[v] += n
				}
				dst.Trackable += src.Trackable
				for i, n := range src.ClassCounts {
					dst.ClassCounts[i] += n
				}
			}
			return dst
		})
	if part != nil {
		a.MACs = part.MACs
		a.VendorCounts = part.VendorCounts
		a.Trackable = part.Trackable
		a.ClassCounts = part.ClassCounts
	}
	sort.Slice(a.MACs, func(i, j int) bool {
		return macLess(a.MACs[i].MAC, a.MACs[j].MAC)
	})
	return a
}

// AnalyzeStore runs Analyze over the live merged view of a sharded
// ingest run: the Store-reader form of the §5 analysis, usable while
// collection is still in flight (the result reflects the snapshots
// merged so far, and after Pipeline.Close it is the complete corpus).
// Consuming the store instead of replaying the world is what makes
// tracking a zero-extra-pass consumer of the single ingest pass; the
// result for a finished run is identical to Analyze over a serial
// replay's collector because shard merges are lossless.
func AnalyzeStore(s *collector.Store, db *asdb.DB, geo *geodb.DB, reg *oui.Registry) *Analysis {
	var a *Analysis
	s.View(func(c *collector.Collector) {
		a = Analyze(c, db, geo, reg)
	})
	return a
}

func macLess(x, y addr.MAC) bool {
	for i := 0; i < 6; i++ {
		if x[i] != y[i] {
			return x[i] < y[i]
		}
	}
	return false
}

// ClassShare returns the fraction of *trackable* MACs in a class, the
// denominator the paper uses for its 86/8/0.01/5/0.44% split.
func (a *Analysis) ClassShare(c Class) float64 {
	if a.Trackable == 0 || c == NotTrackable {
		return 0
	}
	return float64(a.ClassCounts[c]) / float64(a.Trackable)
}

// VendorRow is one Table 2 line.
type VendorRow struct {
	Manufacturer string
	Count        int
}

// Table2 returns manufacturer counts sorted descending (ties by name),
// exactly the layout of the paper's Table 2.
func (a *Analysis) Table2() []VendorRow {
	out := make([]VendorRow, 0, len(a.VendorCounts))
	for v, n := range a.VendorCounts {
		out = append(out, VendorRow{Manufacturer: v, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Manufacturer < out[j].Manufacturer
	})
	return out
}

// UnlistedShare returns the fraction of MACs resolving to no registered
// manufacturer (paper: 73.9%).
func (a *Analysis) UnlistedShare() float64 {
	if len(a.MACs) == 0 {
		return 0
	}
	return float64(a.VendorCounts[oui.Unlisted]) / float64(len(a.MACs))
}

// Figure6a builds the CDF of EUI-64 IID lifetimes.
func Figure6a(c *collector.Collector) *stats.Distribution {
	var samples []float64
	c.EUI64IIDs(func(_ addr.IID, r collector.IIDView) bool {
		samples = append(samples, r.Lifetime().Seconds())
		return true
	})
	return stats.NewDistribution(samples)
}

// Figure6b builds the distribution of the number of /64s each EUI-64 IID
// appears in (the paper plots its CCDF).
func Figure6b(c *collector.Collector) *stats.Distribution {
	var samples []float64
	c.EUI64IIDs(func(_ addr.IID, r collector.IIDView) bool {
		samples = append(samples, float64(r.NumP64s()))
		return true
	})
	return stats.NewDistribution(samples)
}

// TimelineEntry is one prefix residence of a tracked identifier.
type TimelineEntry struct {
	Prefix48    addr.Prefix48
	ASN         asdb.ASN
	ASName      string
	Country     string
	First, Last time.Time
}

// Timeline reconstructs the Figure 7 exemplar view for one MAC: every /48
// it appeared in, with AS attribution and the sighting window, ordered by
// first sighting.
func Timeline(info *MACInfo, db *asdb.DB) []TimelineEntry {
	byP48 := make(map[addr.Prefix48]*TimelineEntry)
	for _, span := range info.Spans {
		p48 := span.P64.P48()
		e, ok := byP48[p48]
		if !ok {
			e = &TimelineEntry{
				Prefix48: p48,
				First:    time.Unix(span.First, 0).UTC(),
				Last:     time.Unix(span.Last, 0).UTC(),
			}
			if as := db.Lookup(p48.Addr()); as != nil {
				e.ASN, e.ASName, e.Country = as.ASN, as.Name, as.Country
			}
			byP48[p48] = e
		} else {
			if f := time.Unix(span.First, 0).UTC(); f.Before(e.First) {
				e.First = f
			}
			if l := time.Unix(span.Last, 0).UTC(); l.After(e.Last) {
				e.Last = l
			}
		}
	}
	out := make([]TimelineEntry, 0, len(byP48))
	for _, e := range byP48 {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].First.Equal(out[j].First) {
			return out[i].First.Before(out[j].First)
		}
		return out[i].Prefix48 < out[j].Prefix48
	})
	return out
}

// Exemplar picks the trackable MAC best illustrating a class: the one
// with the most /64s (MACReuse prefers most countries). Returns nil when
// the class is empty.
func (a *Analysis) Exemplar(c Class) *MACInfo {
	var best *MACInfo
	score := func(m *MACInfo) int {
		if c == MACReuse {
			return len(m.Countries)*1000 + len(m.Spans)
		}
		return len(m.Spans)
	}
	for _, m := range a.MACs {
		if m.Class != c {
			continue
		}
		if best == nil || score(m) > score(best) {
			best = m
		}
	}
	return best
}

// RenderTimeline prints a Figure 7-style text timeline.
func RenderTimeline(info *MACInfo, db *asdb.DB) string {
	var b strings.Builder
	fmt.Fprintf(&b, "MAC %s (%s) — %s\n", info.MAC, info.Vendor, info.Class)
	for _, e := range Timeline(info, db) {
		fmt.Fprintf(&b, "  %s  %s – %s  AS%d %s (%s)\n",
			e.Prefix48, e.First.Format("02-Jan-06"), e.Last.Format("02-Jan-06"),
			e.ASN, e.ASName, e.Country)
	}
	return b.String()
}
