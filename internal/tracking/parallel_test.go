package tracking

import (
	"math/rand"
	"reflect"
	"testing"

	"hitlist6/internal/addr"
)

// TestAnalyzeWorkerEquivalence builds a corpus with hundreds of EUI-64
// identifiers across several /64s and ASes and requires AnalyzeWorkers
// to return exactly Analyze's result at every worker count — MAC order,
// span contents, class counts, vendor tallies, floats and all.
func TestAnalyzeWorkerEquivalence(t *testing.T) {
	c, db, geo, reg := fixture(t)
	rng := rand.New(rand.NewSource(11))
	p64s := []uint64{
		0x2400_0100_0000_0001, 0x2400_0100_0000_0002, 0x2400_0100_0000_0003,
		0x2400_0200_0000_0001, 0x2400_0300_0000_0001,
	}
	for i := 0; i < 600; i++ {
		mac := addr.MAC{0x00, 0x3e, 0xe1, byte(i >> 8), byte(i), byte(rng.Intn(4))}
		// Each identifier visits 1..4 prefixes over up to 90 days.
		visits := 1 + rng.Intn(4)
		for v := 0; v < visits; v++ {
			observeEUI64(c, mac, p64s[rng.Intn(len(p64s))], rng.Intn(90))
		}
	}
	// Non-EUI-64 background traffic for the prevalence denominator.
	for i := 0; i < 5000; i++ {
		c.Observe(addr.FromParts(p64s[rng.Intn(len(p64s))], rng.Uint64()),
			base.AddDate(0, 0, rng.Intn(90)), rng.Intn(3))
	}

	want := Analyze(c, db, geo, reg)
	if len(want.MACs) == 0 || want.Trackable == 0 {
		t.Fatal("degenerate fixture: no trackable MACs")
	}
	for _, workers := range []int{2, 4, 16} {
		got := AnalyzeWorkers(c, db, geo, reg, workers)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("AnalyzeWorkers(%d) diverges from serial Analyze", workers)
		}
	}
}
