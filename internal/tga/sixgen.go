package tga

import (
	"math/rand"
	"sort"

	"hitlist6/internal/addr"
)

// SixGen is a 6Gen-inspired cluster generator (Murdock et al., IMC'17):
// seed addresses are grouped into clusters of nibble-wise similar IIDs
// within each /64; each cluster induces a wildcard range (positions where
// members disagree become free nibbles), and candidates enumerate the
// densest ranges first — the ranges most likely to contain further live
// addresses.
type SixGen struct {
	clusters []cluster
	// MaxRangeBits caps the free-nibble count per range so a single loose
	// cluster cannot eat the whole budget (default 3 nibbles = 4096
	// candidates).
	MaxRangeBits int
}

// cluster is one wildcard range: a /64, the fixed nibble pattern, and the
// free positions.
type cluster struct {
	p64     addr.Prefix64
	pattern uint64 // fixed nibble values
	free    []int  // free nibble positions (0 = most significant)
	size    int    // seeds captured
}

// density orders clusters: more members per free nibble first.
func (c cluster) density() float64 {
	return float64(c.size) / float64(1+len(c.free))
}

// NewSixGen clusters the seeds. maxDist is the nibble Hamming distance
// merged into one cluster (6Gen grows ranges while density is
// non-decreasing; this simplified variant uses a fixed radius, default 2).
func NewSixGen(seeds []addr.Addr, maxDist int) *SixGen {
	if maxDist <= 0 {
		maxDist = 2
	}
	g := &SixGen{MaxRangeBits: 3}

	// Group seeds by /64.
	byP64 := make(map[addr.Prefix64][]uint64)
	for _, a := range seeds {
		byP64[a.P64()] = append(byP64[a.P64()], uint64(a.IID()))
	}
	var p64s []addr.Prefix64
	for p := range byP64 {
		p64s = append(p64s, p)
	}
	sort.Slice(p64s, func(i, j int) bool { return p64s[i] < p64s[j] })

	for _, p := range p64s {
		iids := byP64[p]
		sort.Slice(iids, func(i, j int) bool { return iids[i] < iids[j] })
		used := make([]bool, len(iids))
		for i := range iids {
			if used[i] {
				continue
			}
			members := []uint64{iids[i]}
			used[i] = true
			for j := i + 1; j < len(iids); j++ {
				if used[j] {
					continue
				}
				if nibbleHamming(iids[i], iids[j]) <= maxDist {
					members = append(members, iids[j])
					used[j] = true
				}
			}
			g.clusters = append(g.clusters, makeCluster(p, members))
		}
	}
	sort.Slice(g.clusters, func(i, j int) bool {
		di, dj := g.clusters[i].density(), g.clusters[j].density()
		if di != dj {
			return di > dj
		}
		if g.clusters[i].p64 != g.clusters[j].p64 {
			return g.clusters[i].p64 < g.clusters[j].p64
		}
		return g.clusters[i].pattern < g.clusters[j].pattern
	})
	return g
}

// nibbleHamming counts differing nibbles between two IIDs.
func nibbleHamming(a, b uint64) int {
	x := a ^ b
	n := 0
	for i := 0; i < 16; i++ {
		if x&0xf != 0 {
			n++
		}
		x >>= 4
	}
	return n
}

// makeCluster derives the wildcard pattern from member IIDs.
func makeCluster(p addr.Prefix64, members []uint64) cluster {
	c := cluster{p64: p, pattern: members[0], size: len(members)}
	for pos := 0; pos < 16; pos++ {
		shift := uint((15 - pos) * 4)
		v := members[0] >> shift & 0xf
		for _, m := range members[1:] {
			if m>>shift&0xf != v {
				c.free = append(c.free, pos)
				c.pattern &^= 0xf << shift
				break
			}
		}
	}
	return c
}

// Clusters returns the number of ranges learned.
func (g *SixGen) Clusters() int { return len(g.clusters) }

// Name implements Generator.
func (g *SixGen) Name() string { return "6gen" }

// Generate implements Generator: ranges are expanded densest-first.
// Free-nibble combinations enumerate deterministically; rng only breaks
// ties beyond the enumeration budget.
func (g *SixGen) Generate(n int, rng *rand.Rand) []addr.Addr {
	if n <= 0 {
		return nil
	}
	out := make([]addr.Addr, 0, n)
	seen := make(map[addr.Addr]struct{}, n)
	emit := func(a addr.Addr) bool {
		if _, dup := seen[a]; dup {
			return len(out) < n
		}
		seen[a] = struct{}{}
		out = append(out, a)
		return len(out) < n
	}
	for _, c := range g.clusters {
		free := c.free
		if len(free) > g.MaxRangeBits {
			free = free[:g.MaxRangeBits]
		}
		total := 1
		for range free {
			total *= 16
		}
		for k := 0; k < total; k++ {
			iid := c.pattern
			kk := k
			for _, pos := range free {
				shift := uint((15 - pos) * 4)
				iid |= uint64(kk&0xf) << shift
				kk >>= 4
			}
			if !emit(addr.FromParts(uint64(c.p64), iid)) {
				return out
			}
		}
	}
	// Budget left after all ranges: jitter the densest ranges randomly.
	for len(out) < n && len(g.clusters) > 0 && rng != nil {
		c := g.clusters[rng.Intn(len(g.clusters))]
		iid := c.pattern
		for _, pos := range c.free {
			shift := uint((15 - pos) * 4)
			iid |= uint64(rng.Intn(16)) << shift
		}
		// Also mutate one random nibble to escape exhausted ranges.
		pos := rng.Intn(16)
		shift := uint((15 - pos) * 4)
		iid = iid&^(0xf<<shift) | uint64(rng.Intn(16))<<shift
		if !emit(addr.FromParts(uint64(c.p64), iid)) {
			break
		}
	}
	return out
}
