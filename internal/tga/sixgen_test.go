package tga

import (
	"math/rand"
	"testing"

	"hitlist6/internal/addr"
)

func TestNibbleHamming(t *testing.T) {
	cases := []struct {
		a, b uint64
		want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 0x11, 2},
		{0xffffffffffffffff, 0, 16},
		{0x1200, 0x1300, 1},
	}
	for _, c := range cases {
		if got := nibbleHamming(c.a, c.b); got != c.want {
			t.Errorf("nibbleHamming(%x, %x): got %d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSixGenClustersSimilarSeeds(t *testing.T) {
	// Four IIDs differing in one nibble cluster together; one distant IID
	// forms its own cluster.
	p64 := uint64(0x20010db8_00010000)
	seeds := []addr.Addr{
		addr.FromParts(p64, 0x1001),
		addr.FromParts(p64, 0x1002),
		addr.FromParts(p64, 0x1003),
		addr.FromParts(p64, 0x1004),
		addr.FromParts(p64, 0xdeadbeefcafe0000),
	}
	g := NewSixGen(seeds, 2)
	if g.Clusters() != 2 {
		t.Fatalf("clusters: %d want 2", g.Clusters())
	}
	// The dense cluster's wildcard expansion must contain the gaps
	// between observed members (::1005 etc.).
	cands := g.Generate(32, rand.New(rand.NewSource(1)))
	want := addr.FromParts(p64, 0x1005)
	found := false
	for _, c := range cands {
		if c == want {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("expansion missing in-range candidate %s", want)
	}
}

func TestSixGenDensestFirst(t *testing.T) {
	p64 := uint64(0x20010db8_00010000)
	var seeds []addr.Addr
	// Dense cluster: 8 members, 1 free nibble.
	for i := 0; i < 8; i++ {
		seeds = append(seeds, addr.FromParts(p64, uint64(0x2000+i)))
	}
	// Sparse cluster: 2 members far apart in another /64.
	seeds = append(seeds,
		addr.FromParts(p64+1, 0x1111000000000000),
		addr.FromParts(p64+1, 0x1111000000000001),
	)
	g := NewSixGen(seeds, 2)
	cands := g.Generate(4, rand.New(rand.NewSource(1)))
	if len(cands) != 4 {
		t.Fatalf("candidates: %d", len(cands))
	}
	// First emissions come from the densest range (the 0x200x cluster).
	for _, c := range cands {
		if c.P64() != addr.FromParts(p64, 0).P64() {
			t.Errorf("candidate %s not from densest cluster", c)
		}
	}
}

func TestSixGenBudgetAndDedupe(t *testing.T) {
	p64 := uint64(0x20010db8_00010000)
	seeds := []addr.Addr{
		addr.FromParts(p64, 1),
		addr.FromParts(p64, 2),
	}
	g := NewSixGen(seeds, 2)
	rng := rand.New(rand.NewSource(2))
	cands := g.Generate(100, rng)
	seen := make(map[addr.Addr]bool)
	for _, c := range cands {
		if seen[c] {
			t.Fatalf("duplicate %s", c)
		}
		seen[c] = true
	}
	if got := g.Generate(0, rng); got != nil {
		t.Errorf("n=0: %v", got)
	}
}

func TestSixGenMaxRangeBitsCap(t *testing.T) {
	p64 := uint64(0x20010db8_00010000)
	// Members differing in many nibbles force a wide range; the cap keeps
	// enumeration bounded.
	seeds := []addr.Addr{
		addr.FromParts(p64, 0x1111111111111111),
		addr.FromParts(p64, 0x2222222222222222),
	}
	g := NewSixGen(seeds, 16)
	if g.Clusters() != 1 {
		t.Fatalf("clusters: %d", g.Clusters())
	}
	cands := g.Generate(10000, rand.New(rand.NewSource(3)))
	if len(cands) > 10000 {
		t.Errorf("overproduced: %d", len(cands))
	}
	if len(cands) == 0 {
		t.Error("no candidates despite wide range")
	}
}

func TestSixGenDeterministicPrefix(t *testing.T) {
	seeds := fixedSeeds()
	a := NewSixGen(seeds, 2).Generate(64, rand.New(rand.NewSource(7)))
	b := NewSixGen(seeds, 2).Generate(64, rand.New(rand.NewSource(7)))
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("candidate %d differs", i)
		}
	}
}
