package tga

import (
	"math/rand"
	"testing"
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/simnet"
)

// fixedSeeds builds a training set with a crisp structure: /64s in one
// /48, IIDs of the form 0000:0000:00xx:000y (nibbles 0-11 zero except
// positions 10-11 variable, 12-14 zero, 15 variable).
func fixedSeeds() []addr.Addr {
	var out []addr.Addr
	for i := 0; i < 8; i++ {
		iid := uint64(0x10+i)<<16 | uint64(1+i%4)
		out = append(out, addr.FromParts(0x20010db8_0001_0000+uint64(i%2), iid))
	}
	return out
}

func TestNewEntropyIPValidation(t *testing.T) {
	if _, err := NewEntropyIP(nil); err == nil {
		t.Error("empty training set should fail")
	}
	if _, err := NewEntropyIP(fixedSeeds()[:1]); err == nil {
		t.Error("single seed should fail")
	}
}

func TestEntropyIPModelStructure(t *testing.T) {
	m, err := NewEntropyIP(fixedSeeds())
	if err != nil {
		t.Fatal(err)
	}
	if m.TrainedOn() != 8 {
		t.Errorf("TrainedOn: %d", m.TrainedOn())
	}
	segs := m.Segments()
	if segs == "" {
		t.Fatal("no segments")
	}
	// The top of the IID (all zeros in training) must be a fixed segment.
	if segs[0] != 'F' {
		t.Errorf("leading segment should be fixed: %s", segs)
	}
}

func TestEntropyIPGenerateRespectsStructure(t *testing.T) {
	seeds := fixedSeeds()
	m, err := NewEntropyIP(seeds)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	cands := m.Generate(64, rng)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	knownP64 := map[addr.Prefix64]bool{}
	for _, s := range seeds {
		knownP64[s.P64()] = true
	}
	seen := map[addr.Addr]bool{}
	for _, c := range cands {
		if seen[c] {
			t.Fatalf("duplicate candidate %s", c)
		}
		seen[c] = true
		if !knownP64[c.P64()] {
			t.Fatalf("candidate %s outside known /64s", c)
		}
		// The fixed high nibbles of the IID must be preserved: training
		// IIDs never exceeded 0x003f_000f.
		if uint64(c.IID())&^0xff_ffff != 0 {
			t.Fatalf("candidate %s violates learned fixed structure", c)
		}
	}
}

func TestEntropyIPGenerateDeterministic(t *testing.T) {
	m, err := NewEntropyIP(fixedSeeds())
	if err != nil {
		t.Fatal(err)
	}
	a := m.Generate(32, rand.New(rand.NewSource(5)))
	b := m.Generate(32, rand.New(rand.NewSource(5)))
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("candidate %d differs", i)
		}
	}
}

func TestEntropyIPGenerateBounds(t *testing.T) {
	m, err := NewEntropyIP(fixedSeeds())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	if got := m.Generate(0, rng); got != nil {
		t.Errorf("n=0: %v", got)
	}
	if got := m.Generate(-3, rng); got != nil {
		t.Errorf("n<0: %v", got)
	}
	if got := m.Generate(10, rng); len(got) > 10 {
		t.Errorf("overproduced: %d", len(got))
	}
}

func TestLowByteSweep(t *testing.T) {
	seeds := []addr.Addr{
		addr.MustParse("2001:db8:1:1::dead"),
		addr.MustParse("2001:db8:1:2::beef"),
		addr.MustParse("2001:db8:1:1::aaaa"), // duplicate /64
	}
	g := NewLowByte(seeds, 3)
	cands := g.Generate(100, nil)
	if len(cands) != 6 { // 2 prefixes x 3 IIDs
		t.Fatalf("candidates: %d want 6", len(cands))
	}
	want := map[string]bool{
		"2001:db8:1:1::1": true, "2001:db8:1:1::2": true, "2001:db8:1:1::3": true,
		"2001:db8:1:2::1": true, "2001:db8:1:2::2": true, "2001:db8:1:2::3": true,
	}
	for _, c := range cands {
		if !want[c.String()] {
			t.Errorf("unexpected candidate %s", c)
		}
	}
	// n cap respected.
	if got := g.Generate(4, nil); len(got) != 4 {
		t.Errorf("cap: %d", len(got))
	}
	if got := g.Generate(0, nil); got != nil {
		t.Errorf("n=0: %v", got)
	}
	if g.Name() == "" || (&EntropyIP{}).Name() == "" {
		t.Error("generators must be named")
	}
}

func TestLowByteDefaultMax(t *testing.T) {
	g := NewLowByte([]addr.Addr{addr.MustParse("2001:db8::5")}, 0)
	if g.Max != 8 {
		t.Errorf("default max: %d", g.Max)
	}
}

// TestEntropyIPAgainstWorld trains on passive observations from one AS
// and checks the model emits plausible candidates (the pipeline use).
func TestEntropyIPAgainstWorld(t *testing.T) {
	cfg := simnet.DefaultConfig(77, 0.05)
	cfg.Days = 15
	w, err := simnet.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var seeds []addr.Addr
	at := w.Origin.Add(24 * time.Hour)
	for _, d := range w.Devices() {
		if len(seeds) >= 200 {
			break
		}
		seeds = append(seeds, d.AddressAt(at))
	}
	m, err := NewEntropyIP(seeds)
	if err != nil {
		t.Fatal(err)
	}
	cands := m.Generate(500, rand.New(rand.NewSource(9)))
	if len(cands) < 100 {
		t.Fatalf("only %d candidates", len(cands))
	}
	// All candidates must be routable in the world (they reuse known
	// /64s, which are routed by construction).
	for _, c := range cands[:50] {
		if w.ASDB.Lookup(c) == nil {
			t.Fatalf("candidate %s unrouted", c)
		}
	}
}
