// Package tga implements target generation algorithms: models trained on
// known-responsive addresses that emit candidate addresses for active
// scanning. The paper's §1/§2 point out that every such model inherits
// the biases of its training hitlist — which is exactly what the
// repository's ablation benchmarks measure.
//
// Two generators are provided:
//
//   - EntropyIP, after Foremski et al.'s Entropy/IP: segments the IID's
//     sixteen nibbles by positional entropy, memorizes observed values of
//     low-entropy segments and empirical distributions for high-entropy
//     segments, and samples candidates per known /64;
//   - LowByte, the classic operator-convention sweep (::1, ::2, …,
//     ::1:1) that finds manually numbered infrastructure.
package tga

import (
	"fmt"
	"math/rand"
	"sort"

	"hitlist6/internal/addr"
	"hitlist6/internal/stats"
)

// Generator emits candidate scan targets.
type Generator interface {
	// Generate returns up to n candidate addresses.
	Generate(n int, rng *rand.Rand) []addr.Addr
	// Name identifies the generator in reports.
	Name() string
}

// segment is a run of IID nibble positions treated as one unit.
type segment struct {
	lo, hi int // nibble positions [lo, hi), 0 = most significant
	fixed  bool
	// values are observed segment values with multiplicity (sampled
	// proportionally); for fixed segments it holds the single dominant
	// value.
	values []uint64
}

// EntropyIP is the Entropy/IP-style model.
type EntropyIP struct {
	prefixes []addr.Prefix64 // known-active /64s, sampled round-robin
	segments []segment
	trained  int
}

// entropyThreshold splits fixed from variable segments: positions whose
// normalized value entropy across the training set stays below it are
// considered structural.
const entropyThreshold = 0.10

// NewEntropyIP trains a model on seed addresses. It needs at least two
// seeds to estimate positional entropy.
func NewEntropyIP(seeds []addr.Addr) (*EntropyIP, error) {
	if len(seeds) < 2 {
		return nil, fmt.Errorf("tga: need >= 2 seeds, got %d", len(seeds))
	}
	m := &EntropyIP{trained: len(seeds)}

	// Known prefixes, deduplicated and sorted for determinism.
	seen := make(map[addr.Prefix64]struct{})
	for _, a := range seeds {
		if _, dup := seen[a.P64()]; !dup {
			seen[a.P64()] = struct{}{}
			m.prefixes = append(m.prefixes, a.P64())
		}
	}
	sort.Slice(m.prefixes, func(i, j int) bool { return m.prefixes[i] < m.prefixes[j] })

	// Positional nibble entropy over the IID.
	var perPos [16][16]int
	for _, a := range seeds {
		v := uint64(a.IID())
		for pos := 15; pos >= 0; pos-- {
			perPos[pos][v&0xf]++
			v >>= 4
		}
	}
	var hs [16]float64
	for pos := 0; pos < 16; pos++ {
		hs[pos] = stats.NormalizedEntropy(perPos[pos][:], 16)
	}

	// Segment the positions into maximal runs of fixed / variable.
	start := 0
	for pos := 1; pos <= 16; pos++ {
		if pos < 16 && (hs[pos] < entropyThreshold) == (hs[start] < entropyThreshold) {
			continue
		}
		m.segments = append(m.segments, segment{
			lo: start, hi: pos, fixed: hs[start] < entropyThreshold,
		})
		start = pos
	}

	// Memorize segment values (with multiplicity, preserving intra-
	// segment correlations the way Entropy/IP's segment models do).
	for si := range m.segments {
		s := &m.segments[si]
		if s.fixed {
			// Dominant value only.
			counts := make(map[uint64]int)
			for _, a := range seeds {
				counts[segValue(uint64(a.IID()), s.lo, s.hi)]++
			}
			best, bestN := uint64(0), -1
			for v, n := range counts {
				if n > bestN || (n == bestN && v < best) {
					best, bestN = v, n
				}
			}
			s.values = []uint64{best}
			continue
		}
		for _, a := range seeds {
			s.values = append(s.values, segValue(uint64(a.IID()), s.lo, s.hi))
		}
		sort.Slice(s.values, func(i, j int) bool { return s.values[i] < s.values[j] })
	}
	return m, nil
}

// segValue extracts nibbles [lo, hi) of a 16-nibble value.
func segValue(v uint64, lo, hi int) uint64 {
	width := hi - lo
	shift := uint((16 - hi) * 4)
	mask := uint64(1)<<(uint(width)*4) - 1
	return (v >> shift) & mask
}

// segPlace positions a segment value back into the IID.
func segPlace(v uint64, lo, hi int) uint64 {
	shift := uint((16 - hi) * 4)
	return v << shift
}

// Name implements Generator.
func (m *EntropyIP) Name() string { return "entropy-ip" }

// TrainedOn returns the training set size.
func (m *EntropyIP) TrainedOn() int { return m.trained }

// Segments returns a human-readable model summary ("F" fixed, "V"
// variable), e.g. "F[0,8) V[8,16)".
func (m *EntropyIP) Segments() string {
	out := ""
	for _, s := range m.segments {
		kind := "V"
		if s.fixed {
			kind = "F"
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s[%d,%d)", kind, s.lo, s.hi)
	}
	return out
}

// Generate implements Generator: candidates cycle through the known /64s
// with IIDs assembled segment-by-segment from the learned distributions.
func (m *EntropyIP) Generate(n int, rng *rand.Rand) []addr.Addr {
	if n <= 0 || len(m.prefixes) == 0 {
		return nil
	}
	out := make([]addr.Addr, 0, n)
	dedupe := make(map[addr.Addr]struct{}, n)
	for attempts := 0; len(out) < n && attempts < 4*n+64; attempts++ {
		p := m.prefixes[attempts%len(m.prefixes)]
		var iid uint64
		for _, s := range m.segments {
			v := s.values[rng.Intn(len(s.values))]
			iid |= segPlace(v, s.lo, s.hi)
		}
		a := addr.FromParts(uint64(p), iid)
		if _, dup := dedupe[a]; dup {
			continue
		}
		dedupe[a] = struct{}{}
		out = append(out, a)
	}
	return out
}

// LowByte sweeps operator-convention IIDs across known /64s.
type LowByte struct {
	prefixes []addr.Prefix64
	// Max is the highest low-byte IID to emit per prefix (default 8).
	Max int
}

// NewLowByte builds the sweep generator over the /64s of the seeds.
func NewLowByte(seeds []addr.Addr, maxIID int) *LowByte {
	if maxIID <= 0 {
		maxIID = 8
	}
	seen := make(map[addr.Prefix64]struct{})
	g := &LowByte{Max: maxIID}
	for _, a := range seeds {
		if _, dup := seen[a.P64()]; !dup {
			seen[a.P64()] = struct{}{}
			g.prefixes = append(g.prefixes, a.P64())
		}
	}
	sort.Slice(g.prefixes, func(i, j int) bool { return g.prefixes[i] < g.prefixes[j] })
	return g
}

// Name implements Generator.
func (g *LowByte) Name() string { return "low-byte" }

// Generate implements Generator (rng is unused; the sweep is exhaustive
// and deterministic).
func (g *LowByte) Generate(n int, _ *rand.Rand) []addr.Addr {
	if n <= 0 {
		return nil
	}
	out := make([]addr.Addr, 0, n)
	for _, p := range g.prefixes {
		for i := 1; i <= g.Max; i++ {
			out = append(out, addr.FromParts(uint64(p), uint64(i)))
			if len(out) == n {
				return out
			}
		}
	}
	return out
}
