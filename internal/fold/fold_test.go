package fold

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRangesCoverExactly(t *testing.T) {
	for _, n := range []int{0, 1, 5, grain - 1, grain, grain + 1, 10 * grain, 10*grain + 3} {
		for _, workers := range []int{0, 1, 2, 7, 16} {
			seen := make([]int32, n)
			var calls atomic.Int32
			Ranges(n, workers, func(lo, hi int) {
				calls.Add(1)
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("n=%d workers=%d: bad range [%d,%d)", n, workers, lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, c)
				}
			}
			if n == 0 && calls.Load() != 0 {
				t.Errorf("n=0 made %d calls", calls.Load())
			}
		}
	}
}

// TestMapMergeOrder asserts the exactness contract: concatenation-merged
// partials reproduce the serial element order at every worker count.
func TestMapMergeOrder(t *testing.T) {
	n := 5*grain + 17
	for _, workers := range []int{1, 2, 3, 8, 16} {
		got := Map(n, workers,
			func(lo, hi int) []int {
				part := make([]int, 0, hi-lo)
				for i := lo; i < hi; i++ {
					part = append(part, i)
				}
				return part
			},
			func(dst, src []int) []int { return append(dst, src...) })
		if len(got) != n {
			t.Fatalf("workers=%d: len = %d, want %d", workers, len(got), n)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: out of order at %d: %d", workers, i, v)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got := Map(0, 8,
		func(lo, hi int) int { t.Fatal("compute called for n=0"); return 0 },
		func(dst, src int) int { return dst + src })
	if got != 0 {
		t.Fatalf("zero-value partial expected, got %d", got)
	}
}

func TestEachRunsAll(t *testing.T) {
	var ran [5]atomic.Bool
	Each(2,
		func() { ran[0].Store(true) },
		func() { ran[1].Store(true) },
		func() { ran[2].Store(true) },
		func() { ran[3].Store(true) },
		func() { ran[4].Store(true) },
	)
	for i := range ran {
		if !ran[i].Load() {
			t.Fatalf("task %d did not run", i)
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("explicit count not honored")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Error("defaulted worker count must be >= 1")
	}
}

// TestSetTiming pins the observability hook: an installed TimingFunc
// sees every dispatch (with its job count and a sane wall time),
// removing it stops the callbacks, and a nil hook never crashes a
// fold.
func TestSetTiming(t *testing.T) {
	type obs struct {
		jobs int
		wall time.Duration
	}
	var mu sync.Mutex
	var seen []obs
	SetTiming(func(jobs int, wall time.Duration) {
		mu.Lock()
		seen = append(seen, obs{jobs, wall})
		mu.Unlock()
	})
	defer SetTiming(nil)

	n := 3 * grain
	sum := Map(n, 2,
		func(lo, hi int) int { return hi - lo },
		func(dst, src int) int { return dst + src })
	if sum != n {
		t.Fatalf("Map sum = %d, want %d", sum, n)
	}
	mu.Lock()
	got := len(seen)
	mu.Unlock()
	if got != 1 {
		t.Fatalf("timing hook saw %d dispatches, want 1", got)
	}
	if seen[0].jobs < 1 || seen[0].wall < 0 {
		t.Errorf("nonsense observation %+v", seen[0])
	}

	SetTiming(nil)
	Ranges(n, 2, func(lo, hi int) {})
	mu.Lock()
	after := len(seen)
	mu.Unlock()
	if after != got {
		t.Error("removed hook still observed a dispatch")
	}
}
