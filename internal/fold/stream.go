package fold

// Stream is the bounded-readahead pipeline behind the streaming report
// path: process(i, v) runs strictly in ascending i order — the property
// every canonical-order consumer (checksums, figure folds, snapshot
// walks) needs for bit-identical output — while load(i) runs
// concurrently up to readahead items past the consumer. The window is
// what bounds memory when the items are corpus chunks paged off a
// snapshot file: at most readahead+1 loaded items exist outside the
// consumer at any instant.
//
// The first error from either side stops the pipeline: later loads may
// still be in flight when Stream returns, but their results are
// discarded and process is never called past the failed index.
func Stream[T any](n, readahead int, load func(i int) (T, error), process func(i int, v T) error) error {
	if n <= 0 {
		return nil
	}
	if readahead < 1 {
		readahead = 1
	}
	if readahead > n {
		readahead = n
	}

	type slot struct {
		v   T
		err error
	}
	// A channel of per-index result channels: the dispatcher blocks once
	// readahead results are pending, so at most readahead+1 loads run
	// ahead of the consumer, and the consumer drains in index order no
	// matter what order the loads complete in.
	pending := make(chan chan slot, readahead)
	stop := make(chan struct{})
	defer close(stop)

	go func() {
		defer close(pending)
		for i := 0; i < n; i++ {
			c := make(chan slot, 1)
			select {
			case pending <- c:
			case <-stop:
				return
			}
			go func(i int, c chan slot) {
				v, err := load(i)
				c <- slot{v: v, err: err}
			}(i, c)
		}
	}()

	i := 0
	for c := range pending {
		s := <-c
		if s.err != nil {
			return s.err
		}
		if err := process(i, s.v); err != nil {
			return err
		}
		i++
	}
	return nil
}
