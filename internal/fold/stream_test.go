package fold

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestStreamOrder(t *testing.T) {
	// Loads complete out of order (later indices finish first); process
	// must still see strictly ascending indices with the right values.
	const n = 64
	var got []int
	err := Stream(n, 8,
		func(i int) (int, error) {
			time.Sleep(time.Duration((n-i)%7) * time.Millisecond)
			return i * 3, nil
		},
		func(i, v int) error {
			if v != i*3 {
				t.Fatalf("process(%d) got %d", i, v)
			}
			got = append(got, i)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("processed %d of %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("index %d processed at position %d", v, i)
		}
	}
}

func TestStreamEmpty(t *testing.T) {
	if err := Stream(0, 4,
		func(int) (int, error) { t.Fatal("load called"); return 0, nil },
		func(int, int) error { t.Fatal("process called"); return nil },
	); err != nil {
		t.Fatal(err)
	}
}

// TestStreamBoundedReadahead blocks the consumer and counts how far the
// loads run ahead: the window is the memory bound the pager relies on.
func TestStreamBoundedReadahead(t *testing.T) {
	const n, readahead = 100, 3
	var inFlight, maxAhead atomic.Int64
	release := make(chan struct{})
	var once sync.Once
	err := Stream(n, readahead,
		func(i int) (int, error) {
			cur := inFlight.Add(1)
			for {
				old := maxAhead.Load()
				if cur <= old || maxAhead.CompareAndSwap(old, cur) {
					break
				}
			}
			return i, nil
		},
		func(i, v int) error {
			once.Do(func() {
				// Hold the first item long enough for the dispatcher to run
				// as far ahead as it ever will.
				time.Sleep(50 * time.Millisecond)
				close(release)
			})
			<-release
			inFlight.Add(-1)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// At most readahead results pending plus one in the consumer's hand,
	// plus one load racing its pending-channel send.
	if m := maxAhead.Load(); m > readahead+2 {
		t.Fatalf("loads ran %d ahead, window is %d", m, readahead)
	}
}

func TestStreamLoadError(t *testing.T) {
	boom := errors.New("boom")
	var processed atomic.Int64
	err := Stream(50, 4,
		func(i int) (int, error) {
			if i == 20 {
				return 0, boom
			}
			return i, nil
		},
		func(i, v int) error {
			if i >= 20 {
				t.Fatalf("process(%d) ran past the failed load", i)
			}
			processed.Add(1)
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if processed.Load() != 20 {
		t.Fatalf("processed %d items before the failure, want 20", processed.Load())
	}
}

func TestStreamProcessError(t *testing.T) {
	halt := errors.New("halt")
	loads := atomic.Int64{}
	err := Stream(1000, 2,
		func(i int) (int, error) {
			loads.Add(1)
			return i, nil
		},
		func(i, v int) error {
			if i == 5 {
				return halt
			}
			return nil
		})
	if !errors.Is(err, halt) {
		t.Fatalf("err = %v, want %v", err, halt)
	}
	// Early abort must not dispatch the whole range.
	if l := loads.Load(); l > 20 {
		t.Fatalf("%d loads dispatched after an abort at index 5", l)
	}
}
