// Package fold is the tiny concurrency core of the parallel analysis
// engine: deterministic fan-out/fan-in over index ranges.
//
// Every analysis in this repository is a fold — accumulate(chunk) over a
// flat array (a dataset's sorted address slab, a collector's record
// slabs) followed by merge(partials). Because each partial covers a
// contiguous index range and merge consumes the partials in ascending
// range order, the merged result sees elements in exactly the order a
// serial scan would: any accumulator whose merge is concatenation-like
// (sample slices, per-key groupings, counters) produces bit-identical
// results at every worker count. Accumulators that are commutative
// monoids (counts, maxima, register-wise HLL merges) do not even need
// the ordering, but they get it for free.
package fold

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// TimingFunc observes one completed dispatch: how many jobs (ranges or
// tasks) it fanned out and its wall time. Installed process-wide via
// SetTiming; the default (none) costs one atomic pointer load per
// dispatch — per fold, not per element, so the hook is free at any
// observation rate that matters.
type TimingFunc func(jobs int, wall time.Duration)

var timingHook atomic.Pointer[TimingFunc]

// SetTiming installs (or, with nil, removes) the process-wide dispatch
// timing hook. Daemons and studies point it at a telemetry histogram
// so every fold — figures, tracking, report sections — shows up as a
// latency distribution on /metrics.
func SetTiming(fn TimingFunc) {
	if fn == nil {
		timingHook.Store(nil)
		return
	}
	timingHook.Store(&fn)
}

// Workers normalizes a configured worker count: values <= 0 select
// GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// grain is the smallest per-range work size worth a goroutine. Ranges
// are cut no finer than this, so tiny inputs stay serial.
const grain = 2048

// ranges splits [0, n) into at most workers*4 contiguous ranges of at
// least grain elements (the 4x oversplit smooths uneven per-element
// cost, e.g. promoted IIDs with long span chains). It returns nil when
// n <= 0.
func ranges(n, workers int) [][2]int {
	if n <= 0 {
		return nil
	}
	parts := workers * 4
	if parts < 1 {
		parts = 1
	}
	step := (n + parts - 1) / parts
	if step < grain {
		step = grain
	}
	out := make([][2]int, 0, (n+step-1)/step)
	for lo := 0; lo < n; lo += step {
		hi := lo + step
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// helperTokens caps the total number of helper goroutines across every
// concurrently running fold at GOMAXPROCS. Folds nest — Report runs
// sections concurrently and each section folds again — and without a
// global cap the per-call worker counts would multiply (~workers^2
// CPU-bound goroutines). Helpers are acquired non-blocking and the
// calling goroutine always works inline, so a nested fold that finds
// the machine saturated simply degrades to a serial scan: progress is
// never gated on a token, which also makes starvation deadlocks
// impossible. The cap is fixed at the GOMAXPROCS value of package init.
var helperTokens = make(chan struct{}, runtime.GOMAXPROCS(0))

// dispatch runs fn(i) for every i in [0, jobs) on up to workers
// goroutines (the caller plus helpers) pulling from a shared cursor,
// blocking until all jobs completed.
func dispatch(jobs, workers int, fn func(i int)) {
	if jobs <= 0 {
		return
	}
	if hook := timingHook.Load(); hook != nil {
		start := time.Now()
		defer func() { (*hook)(jobs, time.Since(start)) }()
	}
	if workers > jobs {
		workers = jobs
	}
	var cursor atomic.Int64
	run := func() {
		for {
			i := int(cursor.Add(1)) - 1
			if i >= jobs {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		select {
		case helperTokens <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-helperTokens }()
				run()
			}()
		default: // machine saturated: the inline worker covers it
		}
	}
	run()
	wg.Wait()
}

// Ranges runs fn over [0, n) split across workers, blocking until every
// range completed. fn is called with disjoint [lo, hi) bounds and must
// only write state owned by its range (e.g. disjoint column segments).
// With workers <= 1 (or a small n) it degenerates to one serial call.
func Ranges(n, workers int, fn func(lo, hi int)) {
	workers = Workers(workers)
	rs := ranges(n, workers)
	dispatch(len(rs), workers, func(i int) { fn(rs[i][0], rs[i][1]) })
}

// Map computes one partial accumulator per range of [0, n) and merges
// them in ascending range order: merge(merge(p0, p1), p2)... The
// deterministic merge order is the engine's exactness contract — see the
// package comment. The zero value of T must be a valid "empty" partial
// for n == 0.
func Map[T any](n, workers int, compute func(lo, hi int) T, merge func(dst, src T) T) T {
	workers = Workers(workers)
	rs := ranges(n, workers)
	var zero T
	switch len(rs) {
	case 0:
		return zero
	case 1:
		return compute(rs[0][0], rs[0][1])
	}
	parts := make([]T, len(rs))
	dispatch(len(rs), workers, func(i int) {
		parts[i] = compute(rs[i][0], rs[i][1])
	})
	acc := parts[0]
	for _, p := range parts[1:] {
		acc = merge(acc, p)
	}
	return acc
}

// Each runs each of the supplied tasks once, at most workers at a time,
// blocking until all complete — the orchestration primitive for running
// independent analyses (report sections, sidecar builds) concurrently.
func Each(workers int, tasks ...func()) {
	dispatch(len(tasks), Workers(workers), func(i int) { tasks[i]() })
}
