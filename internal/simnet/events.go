package simnet

import (
	"math/rand"
	"sync"
	"time"

	"hitlist6/internal/addr"
)

// Query is one NTP request arriving at a pool server: the client's source
// address at the moment it asked for time.
type Query struct {
	Time   time.Time
	Addr   addr.Addr
	Device *Device
}

// GenerateQueries replays every device's NTP client behaviour across the
// study window, invoking fn for each query in per-device time order
// (queries of different devices are not globally ordered; the collector
// does not need them to be). Inter-query gaps are exponential around the
// device's rate, clamped to at least one minute, matching how NTP clients
// poll: sparse, bursty at boot, device-dependent.
//
// The callback receives the query's source address already resolved
// against prefix rotation, roaming and ephemeral-IID schedules.
func (w *World) GenerateQueries(fn func(Query)) {
	w.replays.Add(1)
	for _, d := range w.devices {
		w.generateDeviceQueries(d, fn)
	}
}

// Replays returns how many times the world's query stream has been
// generated (GenerateQueries / GenerateQueriesParallel calls). Replays
// are the O(world) cost a single-pass architecture amortizes: the study
// asserts one replay feeds collection, outage detection and tracking
// alike.
func (w *World) Replays() uint64 { return w.replays.Load() }

func (w *World) generateDeviceQueries(d *Device, fn func(Query)) {
	if d.rate <= 0 || !d.usesPool {
		return
	}
	rng := rand.New(rand.NewSource(int64(hash2(d.seed, 0x47e9))))
	meanGap := time.Duration(float64(24*time.Hour) / d.rate)
	t := d.activeFrom
	// First query shortly after power-on (boot-time sync).
	t = t.Add(time.Duration(rng.ExpFloat64() * float64(10*time.Minute)))
	for t.Before(d.activeTo) && t.Before(w.End) {
		if d.ActiveAt(t) {
			fn(Query{Time: t, Addr: d.AddressAt(t), Device: d})
		}
		gap := time.Duration(rng.ExpFloat64() * float64(meanGap))
		if gap < time.Minute {
			gap = time.Minute
		}
		t = t.Add(gap)
	}
}

// CountQueries returns the number of queries GenerateQueries will emit;
// useful for sizing collectors up front in benchmarks.
func (w *World) CountQueries() int {
	n := 0
	w.GenerateQueries(func(Query) { n++ })
	return n
}

// GenerateQueriesParallel replays the query stream across shards
// goroutines, device-partitioned, invoking fn(shard, query) — each shard
// index is only ever used by one goroutine, so callers can keep
// lock-free per-shard state (e.g. one collector each) and merge after.
// The per-device query order is preserved within a shard. shards < 1 is
// treated as 1.
func (w *World) GenerateQueriesParallel(shards int, fn func(shard int, q Query)) {
	w.replays.Add(1)
	if shards < 1 {
		shards = 1
	}
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for i := shard; i < len(w.devices); i += shards {
				w.generateDeviceQueries(w.devices[i], func(q Query) {
					fn(shard, q)
				})
			}
		}(s)
	}
	wg.Wait()
}
