package simnet

import (
	"time"

	"hitlist6/internal/addr"
)

// ProbeResult describes the outcome of one ICMPv6 probe into the world.
type ProbeResult struct {
	// Responded is true when any host answered the probe.
	Responded bool
	// FromAlias is true when the response came from an aliased prefix
	// (a single device answering for the whole network).
	FromAlias bool
	// Device is the responding device, nil for alias/router responses.
	Device *Device
	// Router is true when an infrastructure router answered.
	Router bool
}

// Probe delivers an unsolicited ICMPv6 echo request to dst at time t and
// reports what, if anything, answers. This is the single choke point both
// scanners (ZMap6 and Yarrp clones) use, so active and passive experiments
// see one consistent world.
func (w *World) Probe(dst addr.Addr, t time.Time) ProbeResult {
	n := w.asFor(dst)
	if n == nil {
		return ProbeResult{}
	}
	hi := dst.Hi()

	// Infra half of the AS space: routers and aliased prefixes.
	if hi&n.halfBit != 0 {
		if n.aliasSet[dst.P64()] {
			// Aliased prefixes answer for every address (§4.2); the
			// devices homed inside still answer individually, but a
			// prober cannot tell, which is exactly the paper's point.
			return ProbeResult{Responded: true, FromAlias: true}
		}
		if n.routerSet[dst] {
			return ProbeResult{Responded: true, Router: true}
		}
		return ProbeResult{}
	}

	// Customer half: recover the site from the slot the address implies.
	// Malformed addresses (stray bits between the routed prefix and the
	// slot field) are caught by the exact address comparison below.
	slot := (hi >> n.slotShift) & (n.slotCount() - 1)
	site := n.siteForSlot(t, w.Origin, slot)
	if site == nil {
		return ProbeResult{}
	}
	if d := site.deviceWithAddress(dst, t); d != nil {
		return ProbeResult{Responded: true, Device: d}
	}
	return ProbeResult{}
}

// deviceWithAddress finds a device (or the CPE) whose current address is
// exactly a, is powered on, and is not firewalled.
func (s *Site) deviceWithAddress(a addr.Addr, t time.Time) *Device {
	if s.cpe != nil && !s.cpe.firewalled && s.cpe.ActiveAt(t) && s.cpe.AddressAt(t) == a {
		return s.cpe
	}
	for _, d := range s.devices {
		if d.firewalled || !d.ActiveAt(t) {
			continue
		}
		if d.AddressAt(t) == a {
			return d
		}
	}
	return nil
}

// asFor maps an address to its origin asNet via the routing table.
func (w *World) asFor(a addr.Addr) *asNet {
	as := w.ASDB.Lookup(a)
	if as == nil {
		return nil
	}
	return w.asByASN[as.ASN]
}

// IsAliased reports whether the /64 is one of the world's aliased
// prefixes (ground truth, used to validate alias detection).
func (w *World) IsAliased(p addr.Prefix64) bool {
	n := w.asFor(p.Addr())
	return n != nil && n.aliasSet[p]
}
