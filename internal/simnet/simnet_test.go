package simnet

import (
	"testing"
	"testing/quick"
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/asdb"
)

// tinyConfig is a fast world for unit tests.
func tinyConfig(seed int64) Config {
	cfg := DefaultConfig(seed, 0.05)
	cfg.Days = 30
	return cfg
}

func buildTiny(t testing.TB, seed int64) *World {
	t.Helper()
	w, err := Build(tinyConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBuildValidation(t *testing.T) {
	bad := tinyConfig(1)
	bad.Days = 0
	if _, err := Build(bad); err == nil {
		t.Error("Days=0 should fail")
	}
	bad = tinyConfig(1)
	bad.Scale = 0
	if _, err := Build(bad); err == nil {
		t.Error("Scale=0 should fail")
	}
	bad = tinyConfig(1)
	bad.ASes = []ASConfig{{ASN: 1, RoutedBits: 8, DelegationBits: 56}}
	if _, err := Build(bad); err == nil {
		t.Error("RoutedBits=8 should fail")
	}
	bad = tinyConfig(1)
	bad.ASes = []ASConfig{{ASN: 1, RoutedBits: 40, DelegationBits: 60}}
	if _, err := Build(bad); err == nil {
		t.Error("DelegationBits=60 should fail")
	}
}

func TestWorldDeterminism(t *testing.T) {
	w1 := buildTiny(t, 99)
	w2 := buildTiny(t, 99)
	if len(w1.Devices()) != len(w2.Devices()) {
		t.Fatalf("device counts differ: %d vs %d", len(w1.Devices()), len(w2.Devices()))
	}
	mid := w1.Origin.Add(13 * 24 * time.Hour)
	for i := range w1.Devices() {
		a1 := w1.Devices()[i].AddressAt(mid)
		a2 := w2.Devices()[i].AddressAt(mid)
		if a1 != a2 {
			t.Fatalf("device %d addresses differ: %s vs %s", i, a1, a2)
		}
	}
}

func TestAddressesRoutedToOwnAS(t *testing.T) {
	w := buildTiny(t, 3)
	mid := w.Origin.Add(7 * 24 * time.Hour)
	for _, d := range w.Devices() {
		a := d.AddressAt(mid)
		as := w.ASDB.Lookup(a)
		if as == nil {
			t.Fatalf("device address %s is unrouted", a)
		}
		if uint32(as.ASN) != d.ASNAt(mid) {
			t.Fatalf("device address %s: LPM says AS%d, device says AS%d",
				a, as.ASN, d.ASNAt(mid))
		}
	}
}

// TestProbeFindsCurrentAddresses is the central consistency property: a
// probe to a non-firewalled device's current address must get a response,
// and the responder must be that device.
func TestProbeFindsCurrentAddresses(t *testing.T) {
	w := buildTiny(t, 4)
	times := []time.Time{
		w.Origin.Add(time.Hour),
		w.Origin.Add(5 * 24 * time.Hour),
		w.Origin.Add(20 * 24 * time.Hour),
	}
	checked := 0
	for _, d := range w.Devices() {
		if d.Firewalled() {
			continue
		}
		for _, tm := range times {
			if !d.ActiveAt(tm) {
				continue
			}
			a := d.AddressAt(tm)
			res := w.Probe(a, tm)
			if !res.Responded {
				t.Fatalf("probe to live device address %s at %v got no response (kind=%v strat=%v aliased=%v)",
					a, tm, d.Kind, d.Strategy, d.SiteAt(tm).aliased)
			}
			if !res.FromAlias && res.Device != d {
				t.Fatalf("probe to %s answered by wrong device", a)
			}
			checked++
		}
	}
	if checked < 100 {
		t.Fatalf("too few probe checks ran: %d", checked)
	}
}

func TestProbeFirewalledSilent(t *testing.T) {
	w := buildTiny(t, 5)
	tm := w.Origin.Add(48 * time.Hour)
	tested := 0
	for _, d := range w.Devices() {
		if !d.Firewalled() || !d.ActiveAt(tm) || d.SiteAt(tm).aliased {
			continue
		}
		if res := w.Probe(d.AddressAt(tm), tm); res.Responded {
			t.Fatalf("firewalled device %s responded", d.AddressAt(tm))
		}
		tested++
	}
	if tested == 0 {
		t.Fatal("no firewalled devices in tiny world")
	}
}

func TestProbeStaleAddressSilent(t *testing.T) {
	w := buildTiny(t, 6)
	early := w.Origin.Add(2 * time.Hour)
	late := w.Origin.Add(25 * 24 * time.Hour)
	stale := 0
	for _, d := range w.Devices() {
		if d.Strategy != StratPrivacy || d.SiteAt(early).aliased {
			continue
		}
		aEarly := d.AddressAt(early)
		if d.AddressAt(late) == aEarly {
			continue // address happened to persist
		}
		if res := w.Probe(aEarly, late); res.Responded && res.Device == d {
			t.Fatalf("stale address %s still answered by same device weeks later", aEarly)
		}
		stale++
		if stale > 200 {
			break
		}
	}
	if stale == 0 {
		t.Fatal("no ephemeral devices found")
	}
}

func TestAliasedPrefixRespondsToAnything(t *testing.T) {
	w := buildTiny(t, 7)
	aliased := w.AliasedPrefixes()
	if len(aliased) == 0 {
		t.Fatal("tiny world has no aliased prefixes")
	}
	tm := w.Origin.Add(time.Hour)
	f := func(iid uint64) bool {
		p := aliased[iid%uint64(len(aliased))]
		a := addr.FromParts(uint64(p), iid)
		res := w.Probe(a, tm)
		return res.Responded && res.FromAlias
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for _, p := range aliased {
		if !w.IsAliased(p) {
			t.Errorf("IsAliased(%s) = false", p)
		}
	}
}

func TestRandomProbesMostlySilent(t *testing.T) {
	w := buildTiny(t, 8)
	tm := w.Origin.Add(time.Hour)
	// Random IIDs inside real customer /64s: must not respond (the odds
	// of hitting a live random IID are ~2^-64).
	responded := 0
	n := 0
	for _, d := range w.Devices() {
		if d.SiteAt(tm).aliased {
			continue
		}
		p := d.Prefix64At(tm)
		probe := addr.FromParts(uint64(p), hash2(uint64(n), 0xabad1dea))
		if probe == d.AddressAt(tm) {
			continue
		}
		if w.Probe(probe, tm).Responded {
			responded++
		}
		n++
		if n >= 500 {
			break
		}
	}
	if responded != 0 {
		t.Errorf("%d/%d random probes in non-aliased /64s responded", responded, n)
	}
}

func TestRoutersRespond(t *testing.T) {
	w := buildTiny(t, 9)
	tm := w.Origin.Add(time.Hour)
	routers := w.Routers()
	if len(routers) == 0 {
		t.Fatal("no routers")
	}
	for _, r := range routers {
		res := w.Probe(r, tm)
		if !res.Responded || !res.Router {
			t.Fatalf("router %s did not respond: %+v", r, res)
		}
	}
	// Router IIDs must be the low-entropy memorable kind.
	for _, r := range routers {
		if r.IID().EntropyClass() != addr.LowEntropy {
			t.Errorf("router %s IID is not low entropy", r)
		}
	}
}

func TestPrefixRotationChangesDelegation(t *testing.T) {
	w := buildTiny(t, 10)
	var rotating *Site
	for _, s := range w.Sites() {
		if s.as.cfg.RotationInterval > 0 && !s.aliased && s.as2 == nil {
			rotating = s
			break
		}
	}
	if rotating == nil {
		t.Fatal("no rotating site")
	}
	interval := rotating.as.cfg.RotationInterval
	t0 := w.Origin.Add(time.Hour)
	t1 := t0.Add(interval)
	p0 := rotating.Delegated(t0, w.Origin)
	p1 := rotating.Delegated(t1, w.Origin)
	if p0 == p1 {
		t.Errorf("delegated prefix did not rotate across an epoch: %s", p0)
	}
	// Within one epoch the prefix is stable.
	if rotating.Delegated(t0.Add(time.Minute), w.Origin) != p0 {
		t.Error("prefix changed within an epoch")
	}
}

func TestSlotPermutationInvertible(t *testing.T) {
	f := func(seed, epoch uint64, idxRaw uint32, bitsRaw uint8) bool {
		bits := 4 + int(bitsRaw)%20 // 4..23
		idx := uint64(idxRaw) & (1<<bits - 1)
		slot := affinePerm(seed, epoch, idx, bits)
		return affinePermInv(seed, epoch, slot, bits) == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSlotPermutationIsPermutation(t *testing.T) {
	const bits = 8
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 1<<bits; i++ {
		s := affinePerm(42, 7, i, bits)
		if s >= 1<<bits {
			t.Fatalf("slot %d out of range", s)
		}
		if seen[s] {
			t.Fatalf("slot %d produced twice", s)
		}
		seen[s] = true
	}
}

func TestRoamingPhonesAppearInTwoASes(t *testing.T) {
	w := buildTiny(t, 11)
	roamers := 0
	for _, d := range w.Devices() {
		if !d.Roams() {
			continue
		}
		roamers++
		seenASN := make(map[uint32]bool)
		for h := 0; h < 200; h++ {
			tm := w.Origin.Add(time.Duration(h) * 6 * time.Hour)
			if tm.After(w.End) {
				break
			}
			seenASN[d.ASNAt(tm)] = true
		}
		if len(seenASN) < 2 {
			t.Errorf("roaming device never changed AS: %v", seenASN)
		}
	}
	if roamers == 0 {
		t.Fatal("no roaming phones in tiny world")
	}
}

func TestProviderChurnMovesSites(t *testing.T) {
	w := buildTiny(t, 12)
	churned := 0
	for _, s := range w.Sites() {
		if s.as2 == nil {
			continue
		}
		churned++
		before := s.ASNAt(s.switchAt.Add(-time.Hour))
		after := s.ASNAt(s.switchAt.Add(time.Hour))
		if before == after {
			t.Errorf("site did not change ASN at switch time")
		}
		// Devices at the old address must be unreachable after the switch.
		for _, d := range s.devices {
			if d.Firewalled() || !d.ActiveAt(s.switchAt.Add(time.Hour)) || d.Roams() {
				continue
			}
			oldAddr := d.AddressAt(s.switchAt.Add(-time.Hour))
			res := w.Probe(oldAddr, s.switchAt.Add(time.Hour))
			if res.Responded && res.Device == d {
				t.Errorf("device answered at pre-switch address after provider change")
			}
		}
	}
	if churned == 0 {
		t.Skip("no churned sites at this scale/seed")
	}
}

func TestMACReuseSpansASes(t *testing.T) {
	w := buildTiny(t, 13)
	byMAC := make(map[addr.MAC][]*Device)
	for _, d := range w.Devices() {
		if m, ok := d.MAC(); ok && d.reused {
			byMAC[m] = append(byMAC[m], d)
		}
	}
	if len(byMAC) == 0 {
		t.Fatal("no reused MACs")
	}
	for m, devs := range byMAC {
		if len(devs) < 2 {
			t.Errorf("MAC %s reused by only %d devices", m, len(devs))
			continue
		}
		asns := make(map[asdb.ASN]bool)
		for _, d := range devs {
			asns[d.HomeSite().as.cfg.ASN] = true
		}
		if len(asns) < 2 {
			t.Errorf("MAC %s reuse confined to one AS", m)
		}
	}
}

func TestTraceRouteShape(t *testing.T) {
	w := buildTiny(t, 14)
	tm := w.Origin.Add(time.Hour)
	var target *Device
	for _, d := range w.Devices() {
		if !d.Firewalled() && d.ActiveAt(tm) && d.Kind != KindServer && !d.SiteAt(tm).aliased {
			target = d
			break
		}
	}
	if target == nil {
		t.Fatal("no target found")
	}
	dst := target.AddressAt(tm)
	hops := w.TraceRoute(21928, dst, tm)
	if len(hops) < 2 {
		t.Fatalf("trace too short: %+v", hops)
	}
	// TTLs strictly increasing.
	for i := 1; i < len(hops); i++ {
		if hops[i].TTL <= hops[i-1].TTL {
			t.Errorf("TTLs not increasing: %+v", hops)
		}
	}
	last := hops[len(hops)-1]
	if !last.Dest || last.Addr != dst {
		t.Errorf("responsive destination missing from trace end: %+v", last)
	}
	// Determinism.
	again := w.TraceRoute(21928, dst, tm)
	if len(again) != len(hops) {
		t.Error("trace not deterministic")
	}
	// Unrouted destination -> no trace.
	if got := w.TraceRoute(21928, addr.MustParse("3fff::1"), tm); got != nil {
		t.Errorf("unrouted trace: %+v", got)
	}
}

func TestGenerateQueriesRespectsWindows(t *testing.T) {
	w := buildTiny(t, 15)
	n := 0
	w.GenerateQueries(func(q Query) {
		n++
		if q.Time.Before(w.Origin) || q.Time.After(w.End) {
			t.Fatalf("query outside study window: %v", q.Time)
		}
		if !q.Device.ActiveAt(q.Time) {
			t.Fatalf("query from inactive device at %v", q.Time)
		}
		if q.Addr != q.Device.AddressAt(q.Time) {
			t.Fatal("query address inconsistent with device schedule")
		}
	})
	if n == 0 {
		t.Fatal("no queries generated")
	}
	if got := w.CountQueries(); got != n {
		t.Errorf("CountQueries: got %d want %d", got, n)
	}
}

func TestGenerateQueriesDeterministic(t *testing.T) {
	w1 := buildTiny(t, 16)
	w2 := buildTiny(t, 16)
	var a, b []Query
	w1.GenerateQueries(func(q Query) { a = append(a, q) })
	w2.GenerateQueries(func(q Query) { b = append(b, q) })
	if len(a) != len(b) {
		t.Fatalf("query counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Time != b[i].Time || a[i].Addr != b[i].Addr {
			t.Fatalf("query %d differs", i)
		}
	}
}

func TestStrategyMixPick(t *testing.T) {
	var m StrategyMix
	m[StratEUI64] = 1
	for i := uint64(0); i < 100; i++ {
		if got := m.pick(hash2(i, 1)); got != StratEUI64 {
			t.Fatalf("pick from single-weight mix: got %v", got)
		}
	}
	var zero StrategyMix
	if got := zero.pick(1); got != StratPrivacy {
		t.Errorf("zero mix should default to privacy, got %v", got)
	}
}

func TestKindAndStrategyStrings(t *testing.T) {
	for k := DeviceKind(0); k < NumDeviceKinds; k++ {
		if k.String() == "unknown" {
			t.Errorf("kind %d unnamed", k)
		}
	}
	for s := IIDStrategy(0); s < NumIIDStrategies; s++ {
		if s.String() == "unknown" {
			t.Errorf("strategy %d unnamed", s)
		}
	}
}

func TestEUI64DevicesEmitEUI64Addresses(t *testing.T) {
	w := buildTiny(t, 17)
	tm := w.Origin.Add(time.Hour)
	found := 0
	for _, d := range w.Devices() {
		if d.Strategy != StratEUI64 {
			continue
		}
		a := d.AddressAt(tm)
		if !a.IID().IsEUI64() {
			t.Fatalf("EUI-64 device address %s lacks FFFE marker", a)
		}
		m, ok := d.MAC()
		if !ok {
			t.Fatal("EUI-64 device without MAC")
		}
		got, err := addr.MACFromEUI64(a.IID())
		if err != nil || got != m {
			t.Fatalf("MAC recovery mismatch: %v vs %v", got, m)
		}
		found++
	}
	if found == 0 {
		t.Fatal("no EUI-64 devices")
	}
}

func TestDefaultInternetSane(t *testing.T) {
	ases := DefaultInternet()
	if len(ases) < 20 {
		t.Fatalf("only %d ASes", len(ases))
	}
	seen := make(map[asdb.ASN]bool)
	for _, ac := range ases {
		if seen[ac.ASN] {
			t.Fatalf("duplicate ASN %d", ac.ASN)
		}
		seen[ac.ASN] = true
		if err := validateASConfig(ac); err != nil {
			t.Errorf("AS %d invalid: %v", ac.ASN, err)
		}
	}
	// The paper's named ASes must be present.
	for _, want := range []asdb.ASN{55836, 21928, 4134, 9808, 23693, 45609, 7922, 27699, 268424} {
		if !seen[want] {
			t.Errorf("AS %d missing from default Internet", want)
		}
	}
}
