package simnet

// DeviceKind is the coarse device class; it drives NTP query rates,
// responsiveness, and which IID strategies are plausible.
type DeviceKind uint8

const (
	// KindPhone is a mobile handset: high churn, mobile between ASes.
	KindPhone DeviceKind = iota
	// KindComputer is a desktop/laptop behind a CPE.
	KindComputer
	// KindIoT is a smart-home/IoT device: always on, frequently EUI-64.
	KindIoT
	// KindServer is a host with a stable address, often in hosting ASes.
	KindServer
	// KindCPE is customer premises equipment (home router WAN side).
	KindCPE
	// KindRouter is core/edge infrastructure.
	KindRouter
	// NumDeviceKinds counts the kinds.
	NumDeviceKinds
)

// String names the kind.
func (k DeviceKind) String() string {
	switch k {
	case KindPhone:
		return "phone"
	case KindComputer:
		return "computer"
	case KindIoT:
		return "iot"
	case KindServer:
		return "server"
	case KindCPE:
		return "cpe"
	case KindRouter:
		return "router"
	default:
		return "unknown"
	}
}

// IIDStrategy is how a device forms the low 64 bits of its address.
type IIDStrategy uint8

const (
	// StratPrivacy is RFC 4941 ephemeral fully random IIDs, regenerated
	// every IIDLifetime.
	StratPrivacy IIDStrategy = iota
	// StratStableRandom is RFC 7217-style random but stable per prefix.
	StratStableRandom
	// StratEUI64 embeds the interface MAC (the paper's privacy villain).
	StratEUI64
	// StratLowByte is operator-style ::1, ::2 addresses.
	StratLowByte
	// StratLow2Bytes sets only the low two bytes.
	StratLow2Bytes
	// StratDHCPCounter is DHCPv6 sequential assignment (low entropy,
	// small values, not single-byte).
	StratDHCPCounter
	// StratV4Embedded embeds the interface's IPv4 address in the IID.
	StratV4Embedded
	// StratRandomLow4 randomizes only the low four bytes, zeroing the top
	// four — the Reliance Jio pattern called out in §4.3.
	StratRandomLow4
	// NumIIDStrategies counts the strategies.
	NumIIDStrategies
)

// String names the strategy.
func (s IIDStrategy) String() string {
	switch s {
	case StratPrivacy:
		return "privacy"
	case StratStableRandom:
		return "stable-random"
	case StratEUI64:
		return "eui64"
	case StratLowByte:
		return "low-byte"
	case StratLow2Bytes:
		return "low-2-bytes"
	case StratDHCPCounter:
		return "dhcpv6-counter"
	case StratV4Embedded:
		return "v4-embedded"
	case StratRandomLow4:
		return "random-low4"
	default:
		return "unknown"
	}
}

// StrategyMix is a weighted distribution over IID strategies; weights need
// not sum to 1 (they are normalized when sampled).
type StrategyMix [NumIIDStrategies]float64

// pick samples a strategy from the mix using hash h.
func (m StrategyMix) pick(h uint64) IIDStrategy {
	var total float64
	for _, w := range m {
		total += w
	}
	if total <= 0 {
		return StratPrivacy
	}
	x := unit(h) * total
	for i, w := range m {
		if x < w {
			return IIDStrategy(i)
		}
		x -= w
	}
	return StratPrivacy
}
