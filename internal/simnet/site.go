package simnet

import (
	"time"

	"hitlist6/internal/addr"
)

// Site is one customer attachment: a delegated prefix within an AS holding
// a CPE and client devices. Cellular attachments are single-device sites
// in carrier ASes. A site's delegated prefix at time t is a pure function
// of (site index, the AS's rotation epoch at t), implemented as an
// epoch-keyed affine permutation of the slot space so the mapping is
// invertible — Respond can recover the site from a probed address.
type Site struct {
	seed uint64
	as   *asNet
	idx  int

	// Provider change (Fig 7c): after switchAt the site lives in as2 at
	// slot idx2. A zero switchAt means the site never moves.
	as2      *asNet
	idx2     int
	switchAt time.Time

	// aliased sites live inside one of the AS's aliased /64s.
	aliased bool
	alias64 addr.Prefix64

	devices []*Device
	cpe     *Device
}

// asAt returns the AS (and the slot index) serving the site at time t.
func (s *Site) asAt(t time.Time) (*asNet, int) {
	if s.as2 != nil && !s.switchAt.IsZero() && !t.Before(s.switchAt) {
		return s.as2, s.idx2
	}
	return s.as, s.idx
}

// ASNAt returns the site's origin ASN at time t.
func (s *Site) ASNAt(t time.Time) uint32 {
	n, _ := s.asAt(t)
	return uint32(n.cfg.ASN)
}

// affinePerm maps a slot index through the epoch-keyed permutation
// slot = (a*idx + b) mod 2^k with a odd (hence invertible mod 2^k).
func affinePerm(seed, epoch uint64, idx uint64, bits int) uint64 {
	mask := uint64(1)<<bits - 1
	a := hash3(seed, epoch, 0xa0a0) | 1
	b := hash3(seed, epoch, 0xb0b0)
	return (a*idx + b) & mask
}

// affinePermInv inverts affinePerm for the same (seed, epoch, bits).
func affinePermInv(seed, epoch uint64, slot uint64, bits int) uint64 {
	mask := uint64(1)<<bits - 1
	a := hash3(seed, epoch, 0xa0a0) | 1
	b := hash3(seed, epoch, 0xb0b0)
	// Newton's iteration for the inverse of an odd number mod 2^64:
	// each step doubles the number of correct low bits.
	inv := a
	for i := 0; i < 5; i++ {
		inv *= 2 - a*inv
	}
	return ((slot - b) * inv) & mask
}

// slotAt returns the customer slot the site occupies at time t within the
// AS serving it then.
func (s *Site) slotAt(t time.Time, origin time.Time) (n *asNet, slot uint64) {
	n, idx := s.asAt(t)
	e := epochOf(t, origin, n.cfg.RotationInterval)
	return n, affinePerm(n.seed, e, uint64(idx), n.permBits())
}

// Subnet64 returns the /64 holding the given site subnet at time t.
// For /64-delegation (mobile) sites the subnet argument must be 0.
func (s *Site) Subnet64(t time.Time, origin time.Time, subnet byte) addr.Prefix64 {
	if s.aliased {
		return s.alias64
	}
	n, slot := s.slotAt(t, origin)
	hi := n.baseHi | slot<<n.slotShift
	if n.cfg.DelegationBits == 56 {
		hi |= uint64(subnet)
	}
	return addr.Prefix64(hi)
}

// Delegated returns the site's full delegated prefix at time t (/56 or
// /64 depending on the serving AS).
func (s *Site) Delegated(t time.Time, origin time.Time) addr.Prefix {
	n, slot := s.slotAt(t, origin)
	if s.aliased {
		return s.alias64.Prefix()
	}
	hi := n.baseHi | slot<<n.slotShift
	return addr.MustPrefix(addr.FromParts(hi, 0), n.cfg.DelegationBits)
}

// Devices returns the site's client devices (excluding the CPE).
func (s *Site) Devices() []*Device { return s.devices }

// Country returns the site's physical country: where the household is.
// It does not change when the site switches providers (the paper's Fig 7c
// device moved between two *Brazilian* ISPs).
func (s *Site) Country() string { return s.as.cfg.Country }

// JitterUV returns two deterministic values in [0, 1) unique to the site,
// used by the wardriving simulator to place the household within its
// country.
func (s *Site) JitterUV() (float64, float64) {
	return unit(hash2(s.seed, 0x6e0)), unit(hash2(s.seed, 0x6e1))
}

// CPE returns the site's CPE device, nil for cellular attachments.
func (s *Site) CPE() *Device { return s.cpe }

// siteForSlot inverts slotAt: given a slot observed at time t, return the
// site occupying it, or nil. The caller must then verify the full address
// matches, since unoccupied slots alias to out-of-range site indices.
func (n *asNet) siteForSlot(t time.Time, origin time.Time, slot uint64) *Site {
	e := epochOf(t, origin, n.cfg.RotationInterval)
	if slot >= 1<<n.permBits() {
		return nil
	}
	idx := affinePermInv(n.seed, e, slot, n.permBits())
	if idx >= uint64(len(n.sites)) {
		return nil
	}
	site := n.sites[idx]
	// The site must actually be served by this AS at t (provider churn
	// moves sites between ASes).
	cur, curIdx := site.asAt(t)
	if cur != n || uint64(curIdx) != idx {
		return nil
	}
	if site.aliased {
		return nil // aliased sites do not occupy customer slots
	}
	return site
}
