package simnet

import (
	"time"

	"hitlist6/internal/addr"
)

// Device is one host in the simulated Internet. Its address at any time
// is a pure function of its seed and the world's schedule parameters.
type Device struct {
	seed     uint64
	world    *World
	Kind     DeviceKind
	Strategy IIDStrategy

	// mac is set for EUI-64 devices (and any device the builder gives a
	// MAC, e.g. AVM CPE).
	mac    addr.MAC
	hasMAC bool
	reused bool // MAC shared across devices (MAC-reuse group)

	site     *Site // home attachment
	cellSite *Site // cellular attachment for roaming phones
	roamSalt uint64

	subnet     byte
	firewalled bool
	// usesPool is whether the device's OS points at pool.ntp.org at all:
	// Windows, Apple and post-Oreo Android devices use vendor time
	// servers instead (§2.3), so they exist, respond to scans, and appear
	// in DNS — but never in the passive corpus.
	usesPool bool
	rate     float64 // mean NTP queries per day
	v4       uint32  // for StratV4Embedded
	dhcpIdx  uint16  // for StratDHCPCounter

	activeFrom, activeTo time.Time
}

// MAC returns the device MAC address and whether it has one.
func (d *Device) MAC() (addr.MAC, bool) { return d.mac, d.hasMAC }

func (d *Device) setMAC(m addr.MAC) { d.mac, d.hasMAC = m, true }

// HomeSite returns the device's home attachment.
func (d *Device) HomeSite() *Site { return d.site }

// Roams reports whether the device splits time between home WiFi and a
// cellular carrier.
func (d *Device) Roams() bool { return d.cellSite != nil }

// Firewalled reports whether the device drops unsolicited probes.
func (d *Device) Firewalled() bool { return d.firewalled }

// QueryRate returns the device's mean NTP queries/day.
func (d *Device) QueryRate() float64 { return d.rate }

// UsesPool reports whether the device synchronizes against the NTP Pool
// (as opposed to a vendor time service).
func (d *Device) UsesPool() bool { return d.usesPool }

// ActiveWindow returns the interval during which the device is powered on.
func (d *Device) ActiveWindow() (from, to time.Time) {
	return d.activeFrom, d.activeTo
}

// ActiveAt reports whether the device is powered on and connected at t:
// inside its activity window and not cut off by an AS-wide outage.
func (d *Device) ActiveAt(t time.Time) bool {
	if t.Before(d.activeFrom) || t.After(d.activeTo) {
		return false
	}
	n, _ := d.SiteAt(t).asAt(t)
	return !n.downAt(t)
}

// SiteAt returns the site the device is attached to at time t: roaming
// phones alternate between home and cellular on the world's RoamInterval.
func (d *Device) SiteAt(t time.Time) *Site {
	if d.cellSite == nil {
		return d.site
	}
	e := epochOf(t, d.world.Origin, d.world.cfg.RoamInterval)
	// Roughly half the roam epochs are spent on cellular.
	if hash3(d.seed^d.roamSalt, e, 0x40a3)&1 == 1 {
		return d.cellSite
	}
	return d.site
}

// Prefix64At returns the /64 the device sits in at time t.
func (d *Device) Prefix64At(t time.Time) addr.Prefix64 {
	site := d.SiteAt(t)
	sub := d.subnet
	if site != d.site {
		sub = 0 // cellular /64 delegations have a single subnet
	}
	return site.Subnet64(t, d.world.Origin, sub)
}

// IIDAt returns the device's Interface Identifier at time t within the
// /64 it occupies then. Stable strategies ignore t; RFC 7217-style stable
// random IIDs depend on the prefix; privacy addresses depend on the IID
// epoch.
func (d *Device) IIDAt(t time.Time, p64 addr.Prefix64) addr.IID {
	switch d.Strategy {
	case StratPrivacy:
		e := epochOf(t, d.world.Origin, d.world.cfg.IIDLifetime)
		return addr.IID(hash3(d.seed, e, 0x9f1d))
	case StratStableRandom:
		return addr.IID(hash3(d.seed, uint64(p64), 0x57ab))
	case StratEUI64:
		return addr.EUI64FromMAC(d.mac)
	case StratLowByte:
		return addr.IID(1 + d.seed%250)
	case StratLow2Bytes:
		return addr.IID(0x100 + d.seed%0xfe00)
	case StratDHCPCounter:
		return addr.IID(uint64(d.dhcpIdx))
	case StratV4Embedded:
		return addr.IID(uint64(d.v4))
	case StratRandomLow4:
		e := epochOf(t, d.world.Origin, d.world.cfg.IIDLifetime)
		return addr.IID(hash3(d.seed, e, 0x1074) & 0xffffffff)
	default:
		return addr.IID(hash3(d.seed, 0, 0))
	}
}

// AddressAt returns the device's full IPv6 address at time t.
func (d *Device) AddressAt(t time.Time) addr.Addr {
	p64 := d.Prefix64At(t)
	return addr.FromParts(uint64(p64), uint64(d.IIDAt(t, p64)))
}

// ASNAt returns the origin ASN of the device's address at time t.
func (d *Device) ASNAt(t time.Time) uint32 {
	return d.SiteAt(t).ASNAt(t)
}
