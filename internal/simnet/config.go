package simnet

import (
	"time"

	"hitlist6/internal/asdb"
)

// ASConfig describes one Autonomous System of the simulated Internet.
type ASConfig struct {
	ASN     asdb.ASN
	Name    string
	Country string
	Type    asdb.ASType

	// RoutedBits is the length of the AS's single routed prefix
	// (36–44 are sensible; shorter prefixes explode the CAIDA-style
	// routed-/48 probe count). The prefix itself is assigned by the world
	// builder from a disjoint allocation plan.
	RoutedBits int

	// DelegationBits is the size of customer delegations: 56 for
	// residential ISPs (a /56 with 256 /64 subnets) or 64 for mobile
	// carriers (one /64 per subscriber).
	DelegationBits int

	// RotationInterval is how often the provider renumbers customer
	// delegations (0 = static). §2.1: some providers rotate every 24h.
	RotationInterval time.Duration

	// Sites is the number of customer sites (before the global scale
	// multiplier).
	Sites int

	// DevicesPerSite bounds the number of client devices per site
	// (uniform in [Min, Max]).
	DevicesPerSiteMin, DevicesPerSiteMax int

	// ClientMix is the IID strategy distribution for client devices.
	ClientMix StrategyMix

	// CPEStrategy is the WAN-side IID strategy for the site's CPE.
	// ISPs that ship AVM Fritz!Box CPE use StratEUI64 (§5.3).
	CPEStrategy IIDStrategy
	// CPEVendor, when non-empty, forces the CPE MAC vendor (e.g. "AVM
	// GmbH" for German ISPs).
	CPEVendor string

	// FirewallProb is the probability a client device sits behind a
	// stateful firewall and ignores unsolicited probes.
	FirewallProb float64

	// Routers is the number of low-byte-addressed infrastructure routers
	// in the AS's infra /48.
	Routers int

	// AliasedPrefixes is the number of aliased /64s (every address
	// responds) carved out of the AS's alias /48. Typical for hosting.
	AliasedPrefixes int

	// AliasedSites is the number of customer sites placed *inside*
	// aliased /64s (§4.2 finds 3.8M NTP clients in aliased prefixes).
	AliasedSites int

	// MobileFraction is the fraction of phones that roam between this AS
	// (their home WiFi) and a cellular carrier.
	MobileFraction float64

	// ProviderChurn is the fraction of sites that switch to another
	// provider mid-study (§5.2 "changing providers", Fig 7c).
	ProviderChurn float64

	// QueryRatePerDay is the mean NTP query rate per client device; the
	// effective per-device rate varies around it by device kind.
	QueryRatePerDay float64

	// Outages lists scheduled connectivity losses for the whole AS:
	// during an outage no device in the AS sends NTP queries or answers
	// probes. Used by the outage-detection application (§1 lists outage
	// detection among the benefits of hitlists).
	Outages []OutageWindow
}

// OutageWindow is one scheduled AS-wide connectivity loss.
type OutageWindow struct {
	// StartDay is the study day the outage begins (0-based).
	StartDay int
	// Hours is the outage duration.
	Hours int
}

// Config describes a whole simulated Internet plus the study window.
type Config struct {
	// Seed drives all randomness; one seed reproduces one Internet.
	Seed int64
	// Start is the study origin (paper: 25 January 2022).
	Start time.Time
	// Days is the study length in days (paper: ~218).
	Days int
	// Scale multiplies every ASConfig.Sites; 1.0 is the default study
	// size, tests use much smaller values.
	Scale float64
	// ASes lists the Autonomous Systems to build.
	ASes []ASConfig
	// SyntheticVendors is passed to the OUI registry.
	SyntheticVendors int
	// MACReuseGroups creates groups of devices in distinct ASes sharing
	// one MAC address (§5.2 "likely MAC reuse", Fig 7b).
	MACReuseGroups int
	// MACReuseSize is how many devices share each reused MAC.
	MACReuseSize int
	// IIDLifetime is the privacy-address regeneration interval.
	IIDLifetime time.Duration
	// RoamInterval is how often roaming phones re-decide their location.
	RoamInterval time.Duration
}

// clientMixMobile reflects modern handset OSes: overwhelmingly RFC 4941
// privacy addresses, a little EUI-64 from old builds.
func clientMixMobile() StrategyMix {
	var m StrategyMix
	m[StratPrivacy] = 0.90
	m[StratStableRandom] = 0.05
	m[StratEUI64] = 0.03
	m[StratDHCPCounter] = 0.02
	return m
}

// clientMixResidential reflects home LANs: privacy addresses for phones
// and laptops, a noticeable EUI-64 share from IoT and smart-home gear.
func clientMixResidential() StrategyMix {
	var m StrategyMix
	m[StratPrivacy] = 0.72
	m[StratStableRandom] = 0.12
	m[StratEUI64] = 0.10
	m[StratDHCPCounter] = 0.05
	m[StratV4Embedded] = 0.01
	return m
}

// clientMixJio is the bimodal Reliance Jio pattern §4.3 reports: most
// devices fully random, about a third randomizing only the low 4 bytes.
func clientMixJio() StrategyMix {
	var m StrategyMix
	m[StratPrivacy] = 0.60
	m[StratRandomLow4] = 0.33
	m[StratEUI64] = 0.04
	m[StratStableRandom] = 0.03
	return m
}

// clientMixHosting reflects servers: stable, memorable, or v4-derived.
func clientMixHosting() StrategyMix {
	var m StrategyMix
	m[StratLowByte] = 0.35
	m[StratLow2Bytes] = 0.15
	m[StratV4Embedded] = 0.15
	m[StratStableRandom] = 0.25
	m[StratDHCPCounter] = 0.10
	return m
}

// DefaultInternet builds the default AS roster. It names the ASes the
// paper's Figure 4 and Figure 7 discuss (T-Mobile, Reliance Jio, Chinanet,
// China Mobile, Telekomunikasi Selular, Bharti Airtel, Comcast, China
// Unicom, Telefonica Brasil, Nova Santos Telecom, German AVM-heavy ISPs)
// plus hosting and synthetic filler ASes. Countries follow the paper's
// top-5 (IN, CN, US, BR, ID).
func DefaultInternet() []ASConfig {
	mobile := func(asn asdb.ASN, name, cc string, sites int, rate float64) ASConfig {
		return ASConfig{
			ASN: asn, Name: name, Country: cc, Type: asdb.TypePhoneProvider,
			RoutedBits: 40, DelegationBits: 64,
			RotationInterval: 36 * time.Hour,
			Sites:            sites, DevicesPerSiteMin: 1, DevicesPerSiteMax: 1,
			ClientMix: clientMixMobile(), CPEStrategy: StratStableRandom,
			FirewallProb: 0.30, Routers: 10, QueryRatePerDay: rate,
		}
	}
	residential := func(asn asdb.ASN, name, cc string, sites int) ASConfig {
		return ASConfig{
			ASN: asn, Name: name, Country: cc, Type: asdb.TypeISP,
			RoutedBits: 40, DelegationBits: 56,
			RotationInterval: 30 * 24 * time.Hour,
			Sites:            sites, DevicesPerSiteMin: 1, DevicesPerSiteMax: 5,
			ClientMix: clientMixResidential(), CPEStrategy: StratStableRandom,
			FirewallProb: 0.40, Routers: 12, MobileFraction: 0.35,
			ProviderChurn: 0.02, QueryRatePerDay: 1.6,
		}
	}

	jio := mobile(55836, "Reliance Jio", "IN", 800, 1.2)
	jio.ClientMix = clientMixJio()
	airtel := mobile(45609, "Bharti Airtel", "IN", 450, 1.1)
	chinanet := residential(4134, "Chinanet", "CN", 180)
	chinanet.QueryRatePerDay = 2.0
	chinaMobile := mobile(9808, "China Mobile", "CN", 700, 1.3)
	unicom := residential(4837, "China Unicom", "CN", 110)
	tmobile := mobile(21928, "T-Mobile", "US", 750, 1.5)
	telsel := mobile(23693, "Telekomunikasi Selular", "ID", 600, 1.0)
	telsel.ClientMix[StratRandomLow4] = 0.22 // §4.3: lower-entropy subpopulation
	telsel.ClientMix[StratPrivacy] = 0.68
	comcast := residential(7922, "Comcast", "US", 150)
	telefonicaBR := residential(27699, "Telefonica Brasil", "BR", 120)
	telefonicaBR.ProviderChurn = 0.10
	novaSantos := residential(268424, "Nova Santos Telecom", "BR", 40)
	dtag := residential(3320, "Deutsche Telekom", "DE", 130)
	dtag.CPEStrategy = StratEUI64
	dtag.CPEVendor = "AVM GmbH"
	dtag.RotationInterval = 24 * time.Hour // German ISPs renumber daily
	vodafoneDE := residential(3209, "Vodafone Germany", "DE", 80)
	vodafoneDE.CPEStrategy = StratEUI64
	vodafoneDE.CPEVendor = "AVM GmbH"
	telmex := residential(8151, "Uninet (Telmex)", "MX", 60)
	telmex.CPEStrategy = StratEUI64
	orangeFR := residential(3215, "Orange France", "FR", 55)
	orangeFR.CPEStrategy = StratEUI64
	postLU := residential(6661, "POST Luxembourg", "LU", 20)
	postLU.CPEStrategy = StratEUI64

	hosting := func(asn asdb.ASN, name, cc string, sites, aliased, aliasedSites int) ASConfig {
		return ASConfig{
			ASN: asn, Name: name, Country: cc, Type: asdb.TypeHosting,
			RoutedBits: 40, DelegationBits: 56,
			Sites: sites, DevicesPerSiteMin: 1, DevicesPerSiteMax: 3,
			ClientMix: clientMixHosting(), CPEStrategy: StratLowByte,
			FirewallProb: 0.10, Routers: 8,
			AliasedPrefixes: aliased, AliasedSites: aliasedSites,
			QueryRatePerDay: 2.5,
		}
	}
	hetzner := hosting(24940, "Hetzner Online", "DE", 70, 40, 14)
	ovh := hosting(16276, "OVH", "FR", 60, 30, 11)
	linode := hosting(63949, "Linode", "US", 45, 22, 8)

	out := []ASConfig{
		jio, airtel, chinanet, chinaMobile, unicom, tmobile, telsel,
		comcast, telefonicaBR, novaSantos, dtag, vodafoneDE, telmex,
		orangeFR, postLU, hetzner, ovh, linode,
	}

	// Synthetic filler eyeball ISPs across many countries so the dataset
	// spans the paper's long tail of 175 countries.
	countries := []string{
		"JP", "KR", "AU", "BH", "BG", "HK", "NL", "PL", "SG", "ZA", "ES",
		"SE", "TW", "GB", "VN", "TH", "MY", "PH", "EG", "NG", "AR", "CL",
		"CO", "TR", "IT", "CZ", "RO", "UA", "CA",
	}
	for i, cc := range countries {
		as := residential(asdb.ASN(64512+i), "Synthetic ISP "+cc, cc, 25)
		if i%3 == 0 {
			as = mobile(asdb.ASN(64512+i), "Synthetic Mobile "+cc, cc, 25, 1.0)
		}
		out = append(out, as)
	}
	return out
}

// DefaultConfig is the study-sized configuration: the default Internet at
// the given scale over the paper's observation window.
func DefaultConfig(seed int64, scale float64) Config {
	return Config{
		Seed:             seed,
		Start:            time.Date(2022, 1, 25, 0, 0, 0, 0, time.UTC),
		Days:             218, // 25 Jan – 31 Aug 2022
		Scale:            scale,
		ASes:             DefaultInternet(),
		SyntheticVendors: 40,
		MACReuseGroups:   3,
		MACReuseSize:     28,
		IIDLifetime:      12 * time.Hour,
		RoamInterval:     8 * time.Hour,
	}
}
