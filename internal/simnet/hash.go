// Package simnet implements the simulated IPv6 Internet that stands in for
// the live networks the paper measured. It models the phenomena every one
// of the paper's analyses depends on:
//
//   - ASes with routed prefixes, countries and ASdb-style types;
//   - customer sites holding delegated /56s (or single /64s) that rotate on
//     provider-specific schedules (§5.2 "likely prefix reassignment");
//   - devices with per-OS IID strategies: ephemeral privacy addresses
//     (RFC 4941), EUI-64 SLAAC, DHCPv6 counters, operator low-byte
//     addresses, and IPv4-embedded IIDs (Figure 5's seven categories);
//   - CPE firewalls that drop unsolicited inbound probes (§4.2);
//   - aliased /64s where every address responds (§4.2);
//   - device mobility between WiFi and cellular ASes, provider changes,
//     and vendor MAC reuse (§5.2's five tracking classes);
//   - router infrastructure with memorable low-byte IIDs discovered by
//     traceroute (the CAIDA dataset's near-zero entropy in Figure 1).
//
// All state is derived, not stored: a device's address at time t is a pure
// function of (device seed, site rotation epoch, IID epoch), so passive
// collection, later backscanning, and active scans all see a consistent
// world without a mutable global timeline. Determinism is total: one seed
// reproduces one Internet.
package simnet

import "time"

// mix64 is a SplitMix64-style finalizer: a fast, high-quality 64-bit mixing
// function used to derive all per-entity randomness from (seed, counter)
// pairs without storing state.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hash2 combines two 64-bit values.
func hash2(a, b uint64) uint64 { return mix64(a ^ mix64(b)) }

// hash3 combines three 64-bit values.
func hash3(a, b, c uint64) uint64 { return mix64(a ^ mix64(b^mix64(c))) }

// unit maps a hash to [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// Epoch indexing: the simulation measures time as seconds since the study
// start; schedules are derived from integer epoch numbers.

// epochOf returns which interval-sized epoch t falls in, relative to the
// study origin. A zero or negative interval means "never changes": epoch 0.
func epochOf(t time.Time, origin time.Time, interval time.Duration) uint64 {
	if interval <= 0 {
		return 0
	}
	d := t.Sub(origin)
	if d < 0 {
		return 0
	}
	return uint64(d / interval)
}
