package simnet

import (
	"sort"
	"time"

	"hitlist6/internal/addr"
)

// PublicSeeds models the public data sources real hitlist pipelines
// bootstrap from (DNS AAAA zones, certificate transparency, public domain
// lists): the stable, publicly-named subset of the Internet as of time t.
// That is servers (which carry DNS names), a fraction of CPE (dynamic-DNS
// users), and a sliver of always-on computers.
//
// The sample is deterministic per device, so repeated snapshot rounds see
// consistent "public knowledge" — exactly how a weekly hitlist behaves.
func (w *World) PublicSeeds(t time.Time) []addr.Addr {
	var out []addr.Addr
	for _, d := range w.devices {
		var p float64
		switch d.Kind {
		case KindServer:
			p = 0.9 // nearly all servers have AAAA records
		case KindCPE:
			p = 0.45 // dynamic-DNS households
		case KindComputer:
			p = 0.06
		default:
			continue
		}
		if unit(hash2(d.seed, 0xd05)) >= p {
			continue
		}
		out = append(out, d.AddressAt(t))
	}
	sort.Slice(out, func(i, j int) bool {
		for k := 0; k < 16; k++ {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}
