package simnet

import "testing"

// TestBuildASDBMatchesWorld pins that the standalone routing DB (used
// by live consumers that never build a world) attributes a built
// world's addresses exactly as the world's own table does.
func TestBuildASDBMatchesWorld(t *testing.T) {
	cfg := DefaultConfig(11, 0.03)
	cfg.Days = 5
	w, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db, err := BuildASDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumASes() != w.ASDB.NumASes() {
		t.Fatalf("%d ASes vs world's %d", db.NumASes(), w.ASDB.NumASes())
	}
	checked := 0
	w.GenerateQueries(func(q Query) {
		if checked >= 2000 {
			return
		}
		checked++
		wantASN, wantOK := w.ASDB.OriginASN(q.Addr)
		gotASN, gotOK := db.OriginASN(q.Addr)
		if wantOK != gotOK || wantASN != gotASN {
			t.Fatalf("attribution of %v: (%d,%v) vs world (%d,%v)",
				q.Addr, gotASN, gotOK, wantASN, wantOK)
		}
	})
	if checked == 0 {
		t.Fatal("no queries checked")
	}
}
