package simnet

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/asdb"
	"hitlist6/internal/geodb"
	"hitlist6/internal/oui"
)

// World is a fully built simulated Internet. All methods are safe for
// concurrent readers once built.
type World struct {
	cfg    Config
	Origin time.Time
	End    time.Time

	ASDB *asdb.DB
	Geo  *geodb.DB
	OUI  *oui.Registry

	ases    []*asNet
	asByASN map[asdb.ASN]*asNet
	devices []*Device
	sites   []*Site

	// replays counts query-stream generations; see Replays.
	replays atomic.Uint64
}

// asNet is the runtime state of one AS.
type asNet struct {
	cfg     ASConfig
	seed    uint64
	baseHi  uint64 // routed prefix base, /32-aligned slab
	halfBit uint64 // bit splitting customer space from infra space
	// slotBits is the width of the customer slot field
	// (DelegationBits - RoutedBits - 1).
	slotBits int
	// windowBits is the active permutation window (<= slotBits), frozen
	// after world construction; see windowBitsFor.
	windowBits int
	slotShift  uint // 64 - DelegationBits
	infra48Hi  uint64
	alias48Hi  uint64
	sites      []*Site
	routerSet  map[addr.Addr]bool
	routers    []addr.Addr
	aliased    []addr.Prefix64 // aliased /64s, all within alias48
	aliasSet   map[addr.Prefix64]bool
	// outages are resolved AS-wide downtime windows.
	outages []outageSpan
}

// outageSpan is a resolved outage window.
type outageSpan struct{ from, to time.Time }

// downAt reports whether the AS is suffering an outage at t.
func (n *asNet) downAt(t time.Time) bool {
	for _, o := range n.outages {
		if !t.Before(o.from) && t.Before(o.to) {
			return true
		}
	}
	return false
}

func (n *asNet) slotCount() uint64 { return 1 << n.slotBits }

// permBits returns the active permutation window width: windowBits once
// the world is frozen, the full slot space during construction.
func (n *asNet) permBits() int {
	if n.windowBits > 0 {
		return n.windowBits
	}
	return n.slotBits
}

// Build constructs a World from a Config. It is deterministic in
// Config.Seed.
func Build(cfg Config) (*World, error) {
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("simnet: Days must be positive")
	}
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("simnet: Scale must be positive")
	}
	if cfg.IIDLifetime <= 0 {
		cfg.IIDLifetime = 24 * time.Hour
	}
	if cfg.RoamInterval <= 0 {
		cfg.RoamInterval = 8 * time.Hour
	}
	w := &World{
		cfg:     cfg,
		Origin:  cfg.Start,
		End:     cfg.Start.AddDate(0, 0, cfg.Days),
		ASDB:    asdb.NewDB(),
		OUI:     oui.NewRegistry(cfg.SyntheticVendors),
		asByASN: make(map[asdb.ASN]*asNet),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	for i, ac := range cfg.ASes {
		if err := validateASConfig(ac); err != nil {
			return nil, fmt.Errorf("simnet: AS %d (%s): %w", ac.ASN, ac.Name, err)
		}
		n, err := w.buildAS(i, ac, rng)
		if err != nil {
			return nil, err
		}
		w.ases = append(w.ases, n)
		w.asByASN[ac.ASN] = n
	}
	w.linkRoaming(rng)
	w.applyProviderChurn(rng)
	w.applyMACReuse(rng)
	// Freeze each AS's slot window now that all sites (including cellular
	// attachments and churned-in sites) are placed: delegations permute
	// within a window ~4x the site count, packing customers into few /48s
	// the way real providers allocate densely from the bottom of their
	// space. This is what gives the passive corpus its high
	// addresses-per-/48 density (Table 1).
	for _, n := range w.ases {
		n.windowBits = windowBitsFor(len(n.sites), n.slotBits)
	}
	w.Geo = geodb.FromASDB(w.ASDB)
	return w, nil
}

// windowBitsFor sizes the slot permutation window: the smallest power of
// two holding 4x the sites, floored at 10 bits so prefix rotation crosses
// /48 boundaries (a /56-delegating AS's 1024-slot window spans four /48s,
// reproducing Fig 7a's cross-/48 renumbering), clamped to the full slot
// space.
func windowBitsFor(sites, slotBits int) int {
	bits := 10
	for 1<<bits < 4*sites {
		bits++
	}
	if bits > slotBits {
		bits = slotBits
	}
	return bits
}

func validateASConfig(ac ASConfig) error {
	if ac.RoutedBits < 33 || ac.RoutedBits > 47 {
		return fmt.Errorf("RoutedBits %d out of range [33,47]", ac.RoutedBits)
	}
	if ac.DelegationBits != 56 && ac.DelegationBits != 64 {
		return fmt.Errorf("DelegationBits must be 56 or 64, got %d", ac.DelegationBits)
	}
	if ac.DelegationBits-ac.RoutedBits-1 < 1 {
		return fmt.Errorf("no room for customer slots (/%d routed, /%d delegations)",
			ac.RoutedBits, ac.DelegationBits)
	}
	if ac.Sites < 0 || ac.Routers < 0 {
		return fmt.Errorf("negative Sites or Routers")
	}
	// Routers occupy the bottom /48s of the infra half; the alias /48
	// sits at its midpoint and must not collide.
	if half48s := 1 << (48 - ac.RoutedBits - 1); ac.Routers >= half48s/2 {
		return fmt.Errorf("Routers %d exceeds infra /48 budget %d", ac.Routers, half48s/2)
	}
	return nil
}

// routedPrefixFor returns the routed prefix and /32-aligned slab base
// of the idx-th configured AS: each AS owns a disjoint /32 slab under
// 2400::/12 and announces its first RoutedBits. Both Build and
// BuildASDB derive routing state from this one rule, so a routing DB
// built without a world attributes a world's addresses identically.
func routedPrefixFor(idx int, ac ASConfig) (addr.Prefix, uint64, error) {
	baseHi := uint64(0x24000000+idx) << 32
	p, err := addr.NewPrefix(addr.FromParts(baseHi, 0), ac.RoutedBits)
	return p, baseHi, err
}

// BuildASDB constructs only the routing database of a config's AS
// topology — the ASN/prefix/name/country table a full Build would
// produce, without sites, devices or churn. Live consumers attributing
// an external event stream to ASes (cmd/ingestd's outage detector) use
// it to avoid paying for world construction.
func BuildASDB(cfg Config) (*asdb.DB, error) {
	db := asdb.NewDB()
	for i, ac := range cfg.ASes {
		if err := validateASConfig(ac); err != nil {
			return nil, fmt.Errorf("simnet: AS %d (%s): %w", ac.ASN, ac.Name, err)
		}
		routed, _, err := routedPrefixFor(i, ac)
		if err != nil {
			return nil, err
		}
		if err := db.AddAS(asdb.AS{
			ASN: ac.ASN, Name: ac.Name, Country: ac.Country, Type: ac.Type,
			Prefixes: []addr.Prefix{routed},
		}); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func (w *World) buildAS(idx int, ac ASConfig, rng *rand.Rand) (*asNet, error) {
	routed, baseHi, err := routedPrefixFor(idx, ac)
	if err != nil {
		return nil, err
	}
	n := &asNet{
		cfg:       ac,
		seed:      hash2(uint64(w.cfg.Seed), uint64(ac.ASN)),
		baseHi:    baseHi,
		halfBit:   1 << (63 - ac.RoutedBits),
		slotBits:  ac.DelegationBits - ac.RoutedBits - 1,
		slotShift: uint(64 - ac.DelegationBits),
		routerSet: make(map[addr.Addr]bool),
		aliasSet:  make(map[addr.Prefix64]bool),
	}
	// The infra half is carved into /48s: routers get one /48 each from
	// the bottom (so routed-/48 campaigns find ~1 address per /48, as
	// CAIDA does), and the alias /48 sits at the half's midpoint.
	n.infra48Hi = n.baseHi | n.halfBit
	half48s := uint64(1) << (48 - ac.RoutedBits - 1)
	n.alias48Hi = n.infra48Hi | (half48s/2)<<16

	for _, o := range ac.Outages {
		from := w.Origin.AddDate(0, 0, o.StartDay)
		n.outages = append(n.outages, outageSpan{
			from: from,
			to:   from.Add(time.Duration(o.Hours) * time.Hour),
		})
	}

	if err := w.ASDB.AddAS(asdb.AS{
		ASN: ac.ASN, Name: ac.Name, Country: ac.Country, Type: ac.Type,
		Prefixes: []addr.Prefix{routed},
	}); err != nil {
		return nil, err
	}

	// Infrastructure routers: memorable low-byte IIDs, one router per
	// infra /48 — exactly the addresses traceroute discovers, at the
	// paper's CAIDA density of ~1 address per /48. Router counts scale
	// with the world so infrastructure keeps its relative share.
	numRouters := int(float64(ac.Routers)*w.cfg.Scale + 0.5)
	if numRouters < 2 {
		numRouters = 2
	}
	if numRouters > ac.Routers {
		numRouters = ac.Routers
	}
	for j := 0; j < numRouters; j++ {
		a := addr.FromParts(n.infra48Hi|uint64(j)<<16, uint64(1+j%4))
		n.routers = append(n.routers, a)
		n.routerSet[a] = true
	}

	// Aliased /64s inside the alias /48.
	for j := 0; j < ac.AliasedPrefixes; j++ {
		p := addr.Prefix64(n.alias48Hi | uint64(j))
		n.aliased = append(n.aliased, p)
		n.aliasSet[p] = true
	}

	// Customer sites. Aliased-site counts scale with the site count so
	// that the aliased share of the population is scale-invariant.
	numSites := int(float64(ac.Sites)*w.cfg.Scale + 0.5)
	numAliasedSites := int(float64(ac.AliasedSites)*w.cfg.Scale + 0.5)
	for s := 0; s < numSites; s++ {
		site := &Site{
			seed: hash3(n.seed, uint64(s), 0x517e),
			as:   n,
			idx:  s,
		}
		if s < numAliasedSites && len(n.aliased) > 0 {
			site.aliased = true
			site.alias64 = n.aliased[s%len(n.aliased)]
		}
		n.sites = append(n.sites, site)
		w.sites = append(w.sites, site)
		w.populateSite(site, rng)
	}
	return n, nil
}

// populateSite creates the site's CPE and client devices.
func (w *World) populateSite(site *Site, rng *rand.Rand) {
	ac := site.as.cfg
	mobileCarrier := ac.DelegationBits == 64

	if !mobileCarrier {
		// Residential/hosting sites get a CPE on subnet 0.
		cpe := w.newDevice(site, KindCPE, rng)
		cpe.Strategy = ac.CPEStrategy
		if cpe.Strategy == StratEUI64 {
			cpe.setMAC(w.mintVendorMAC(rng, ac.CPEVendor, KindCPE))
		}
		cpe.subnet = 0
		cpe.firewalled = rng.Float64() < 0.15 // CPE mostly respond (§4.2)
		cpe.rate = ac.QueryRatePerDay * 2
		cpe.usesPool = rng.Float64() < poolShare(KindCPE)
		site.cpe = cpe
	}

	nDev := ac.DevicesPerSiteMin
	if ac.DevicesPerSiteMax > ac.DevicesPerSiteMin {
		nDev += rng.Intn(ac.DevicesPerSiteMax - ac.DevicesPerSiteMin + 1)
	}
	for i := 0; i < nDev; i++ {
		kind := w.pickKind(ac, rng)
		d := w.newDevice(site, kind, rng)
		d.Strategy = ac.ClientMix.pick(rng.Uint64())
		if d.Strategy == StratEUI64 {
			d.setMAC(w.mintVendorMAC(rng, "", kind))
		}
		if d.Strategy == StratV4Embedded {
			d.v4 = uint32(rng.Int63n(1 << 32))
		}
		if d.Strategy == StratDHCPCounter {
			d.dhcpIdx = uint16(0x100 + rng.Intn(0x400))
		}
		if mobileCarrier {
			d.subnet = 0
		} else {
			d.subnet = byte(1 + rng.Intn(255))
		}
		d.firewalled = rng.Float64() < ac.FirewallProb
		d.rate = ac.QueryRatePerDay * kindRateFactor(kind)
		d.usesPool = rng.Float64() < poolShare(kind)

		// Activity window: a fraction of devices are present for the whole
		// study; the rest appear for a limited window, producing the large
		// observed-once population of Figure 2(a).
		switch {
		case rng.Float64() < 0.35:
			d.activeFrom, d.activeTo = w.Origin, w.End
		default:
			studySec := w.End.Sub(w.Origin).Seconds()
			start := w.Origin.Add(time.Duration(rng.Float64()*studySec) * time.Second)
			dur := time.Duration(rng.ExpFloat64() * float64(21*24*time.Hour))
			d.activeFrom, d.activeTo = start, minTime(start.Add(dur), w.End)
		}
	}
}

func minTime(a, b time.Time) time.Time {
	if a.Before(b) {
		return a
	}
	return b
}

// poolShare is the fraction of each device class that points at the NTP
// Pool rather than a vendor time service (§2.3: Windows/Apple/modern
// Android never visit the Pool; Linux distributions and IoT vendor zones
// do).
func poolShare(k DeviceKind) float64 {
	switch k {
	case KindPhone:
		return 0.50
	case KindComputer:
		return 0.60
	case KindIoT:
		return 0.80
	case KindServer:
		return 0.35
	case KindCPE:
		return 0.45
	default:
		return 0.5
	}
}

func kindRateFactor(k DeviceKind) float64 {
	switch k {
	case KindIoT:
		return 3
	case KindServer:
		return 5
	case KindComputer:
		return 1.3
	case KindCPE:
		return 2
	default:
		return 1
	}
}

func (w *World) pickKind(ac ASConfig, rng *rand.Rand) DeviceKind {
	switch ac.Type {
	case asdb.TypePhoneProvider:
		return KindPhone
	case asdb.TypeHosting:
		return KindServer
	default:
		x := rng.Float64()
		switch {
		case x < 0.35:
			return KindPhone
		case x < 0.62:
			return KindComputer
		default:
			return KindIoT
		}
	}
}

// mintVendorMAC draws a MAC for an EUI-64 device. The paper finds 73.9% of
// embedded MACs resolve to no registered vendor, led by phantom OUIs like
// F0:02:20; we reproduce that bias, weighting listed vendors by their
// Table 2 counts.
func (w *World) mintVendorMAC(rng *rand.Rand, forced string, kind DeviceKind) addr.MAC {
	if forced != "" {
		m, err := w.OUI.MintMAC(rng, forced)
		if err == nil {
			return m
		}
	}
	phantomProb := 0.78
	if kind == KindIoT {
		phantomProb = 0.85
	}
	if rng.Float64() < phantomProb {
		return w.OUI.MintPhantomMAC(rng)
	}
	m, err := w.OUI.MintMAC(rng, pickTable2Vendor(rng))
	if err != nil {
		return w.OUI.MintPhantomMAC(rng)
	}
	return m
}

// table2Weights are the Table 2 listed-manufacturer counts (in thousands).
var table2Weights = []struct {
	name   string
	weight float64
}{
	{"Amazon Technologies Inc.", 19090},
	{"Samsung Electronics Co.,Ltd", 2684},
	{"Sonos, Inc.", 1633},
	{"vivo Mobile Communication Co., Ltd.", 1331},
	{"Sunnovo International Limited", 1194},
	{"Hui Zhou Gaoshengda Technology Co.,LTD", 1067},
	{"Huawei Technologies", 876},
	{"Shenzhen Chuangwei-RGB Electronics", 861},
	{"Skyworth Digital Technology (Shenzhen) Co.,Ltd", 723},
}

func pickTable2Vendor(rng *rand.Rand) string {
	var total float64
	for _, v := range table2Weights {
		total += v.weight
	}
	x := rng.Float64() * total
	for _, v := range table2Weights {
		if x < v.weight {
			return v.name
		}
		x -= v.weight
	}
	return table2Weights[0].name
}

func (w *World) newDevice(site *Site, kind DeviceKind, rng *rand.Rand) *Device {
	d := &Device{
		seed:       hash3(site.seed, uint64(len(site.devices)), 0xdef1ce),
		Kind:       kind,
		site:       site,
		activeFrom: w.Origin,
		activeTo:   w.End,
		world:      w,
	}
	site.devices = append(site.devices, d)
	w.devices = append(w.devices, d)
	return d
}

// linkRoaming attaches cellular sites to roaming phones in residential
// ASes. Each roaming phone gets a dedicated /64 slot in a carrier AS and
// splits its time between home WiFi and cellular (§5.2 "likely user
// movement", Fig 7d).
func (w *World) linkRoaming(rng *rand.Rand) {
	var carriers []*asNet
	for _, n := range w.ases {
		if n.cfg.Type == asdb.TypePhoneProvider {
			carriers = append(carriers, n)
		}
	}
	if len(carriers) == 0 {
		return
	}
	for _, n := range w.ases {
		if n.cfg.MobileFraction <= 0 || n.cfg.Type == asdb.TypePhoneProvider {
			continue
		}
		for _, site := range n.sites {
			for _, d := range site.devices {
				if d.Kind != KindPhone || rng.Float64() >= n.cfg.MobileFraction {
					continue
				}
				// Prefer a carrier in the same country.
				var carrier *asNet
				for _, c := range carriers {
					if c.cfg.Country == n.cfg.Country {
						carrier = c
						break
					}
				}
				if carrier == nil {
					carrier = carriers[rng.Intn(len(carriers))]
				}
				cell := &Site{
					seed: hash3(carrier.seed, uint64(len(carrier.sites)), 0xce11),
					as:   carrier,
					idx:  len(carrier.sites),
				}
				cell.devices = []*Device{d}
				carrier.sites = append(carrier.sites, cell)
				w.sites = append(w.sites, cell)
				d.cellSite = cell
				d.roamSalt = rng.Uint64()
			}
		}
	}
}

// applyProviderChurn moves a fraction of sites to a different provider at
// a mid-study date (Fig 7c: Telefonica Brasil -> Nova Santos Telecom).
func (w *World) applyProviderChurn(rng *rand.Rand) {
	var residential []*asNet
	for _, n := range w.ases {
		if n.cfg.Type == asdb.TypeISP {
			residential = append(residential, n)
		}
	}
	if len(residential) < 2 {
		return
	}
	studySec := w.End.Sub(w.Origin).Seconds()
	for _, n := range residential {
		if n.cfg.ProviderChurn <= 0 {
			continue
		}
		for _, site := range n.sites {
			// Only home sites churn, once: a site that already switched
			// into this AS must not be bounced again (it could land back
			// on its original provider).
			if site.aliased || site.as != n || site.as2 != nil {
				continue
			}
			if rng.Float64() >= n.cfg.ProviderChurn {
				continue
			}
			// Prefer a same-country provider: a household switching ISPs
			// stays in its country.
			var target *asNet
			perm := rng.Perm(len(residential))
			for _, i := range perm {
				cand := residential[i]
				if cand != n && cand.cfg.Country == n.cfg.Country {
					target = cand
					break
				}
			}
			if target == nil {
				for _, i := range perm {
					if residential[i] != n {
						target = residential[i]
						break
					}
				}
			}
			if target == nil {
				continue
			}
			site.as2 = target
			site.idx2 = len(target.sites)
			target.sites = append(target.sites, site)
			// Switch somewhere in the middle 60% of the study.
			frac := 0.2 + 0.6*rng.Float64()
			site.switchAt = w.Origin.Add(time.Duration(frac*studySec) * time.Second)
		}
	}
}

// applyMACReuse makes groups of EUI-64 devices in distinct ASes share one
// MAC (Fig 7b: one MAC in 70 ASes). Manufacturers reusing address space
// produce simultaneous sightings of "one" identifier in many networks.
func (w *World) applyMACReuse(rng *rand.Rand) {
	if w.cfg.MACReuseGroups <= 0 || w.cfg.MACReuseSize <= 1 {
		return
	}
	// Group size scales with the world so reuse stays a rare phenomenon
	// (0.01% of trackable MACs in the paper) at any scale.
	groupSize := int(float64(w.cfg.MACReuseSize)*w.cfg.Scale + 0.5)
	if groupSize < 2 {
		groupSize = 2
	}
	byAS := make(map[asdb.ASN][]*Device)
	var asns []asdb.ASN
	for _, d := range w.devices {
		// CPE are excluded (vendor MAC reuse is an IoT/client phenomenon,
		// and the geolocation experiment needs CPE MACs intact), as are
		// roaming phones (their MACs must stay unique so §5.2's "likely
		// user movement" class remains observable).
		if d.Strategy != StratEUI64 || d.reused || d.Kind == KindCPE || d.cellSite != nil {
			continue
		}
		asn := d.site.as.cfg.ASN
		if len(byAS[asn]) == 0 {
			asns = append(asns, asn)
		}
		byAS[asn] = append(byAS[asn], d)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	if len(asns) < 2 {
		return
	}
	for g := 0; g < w.cfg.MACReuseGroups; g++ {
		// Collect candidates first, cycling across ASes (staggered by
		// group) so every group spans several networks; only commit the
		// shared MAC when at least two distinct ASes are represented.
		var chosen []*Device
		asnsUsed := make(map[asdb.ASN]bool)
		for i := 0; len(chosen) < groupSize && i < len(asns)*4; i++ {
			asn := asns[(g+i)%len(asns)]
			pool := byAS[asn]
			if len(pool) == 0 {
				continue
			}
			chosen = append(chosen, pool[len(pool)-1])
			byAS[asn] = pool[:len(pool)-1]
			asnsUsed[asn] = true
		}
		if len(asnsUsed) < 2 {
			// Not enough diversity left; put the devices back and stop.
			for _, d := range chosen {
				asn := d.site.as.cfg.ASN
				byAS[asn] = append(byAS[asn], d)
			}
			break
		}
		shared := w.OUI.MintPhantomMAC(rng)
		for _, d := range chosen {
			d.setMAC(shared)
			d.reused = true
		}
	}
}

// Config returns the configuration the world was built from.
func (w *World) Config() Config { return w.cfg }

// Devices returns every device (phones, computers, IoT, servers, CPE).
func (w *World) Devices() []*Device { return w.devices }

// Sites returns every customer site, including cellular attachments.
func (w *World) Sites() []*Site { return w.sites }

// Routers returns every infrastructure router address, per AS, in
// deterministic order.
func (w *World) Routers() []addr.Addr {
	var out []addr.Addr
	for _, n := range w.ases {
		out = append(out, n.routers...)
	}
	return out
}

// AliasedPrefixes returns every aliased /64.
func (w *World) AliasedPrefixes() []addr.Prefix64 {
	var out []addr.Prefix64
	for _, n := range w.ases {
		out = append(out, n.aliased...)
	}
	return out
}

// IIDLifetime returns the privacy-address regeneration interval.
func (w *World) IIDLifetime() time.Duration { return w.cfg.IIDLifetime }
