package simnet

import (
	"testing"
	"time"

	"hitlist6/internal/asdb"
)

func TestPublicSeedsDeterministicAndStable(t *testing.T) {
	w := buildTiny(t, 51)
	at := w.Origin.Add(36 * time.Hour)
	a := w.PublicSeeds(at)
	b := w.PublicSeeds(at)
	if len(a) == 0 {
		t.Fatal("no public seeds")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed %d differs", i)
		}
	}
	// Sorted output.
	for i := 1; i < len(a); i++ {
		if a[i-1].Hi() > a[i].Hi() {
			t.Fatal("seeds not sorted")
		}
	}
	// Only server/CPE/computer addresses qualify; resolve via probing the
	// address at the snapshot time and checking device kinds.
	for _, s := range a[:min(20, len(a))] {
		res := w.Probe(s, at)
		if res.Device != nil {
			switch res.Device.Kind {
			case KindServer, KindCPE, KindComputer:
			default:
				t.Fatalf("public seed from %v device", res.Device.Kind)
			}
		}
	}
}

func TestPoolShareSplitsPopulation(t *testing.T) {
	w := buildTiny(t, 52)
	users, nonUsers := 0, 0
	for _, d := range w.Devices() {
		if d.UsesPool() {
			users++
		} else {
			nonUsers++
		}
	}
	if users == 0 || nonUsers == 0 {
		t.Fatalf("pool split degenerate: %d users / %d non-users", users, nonUsers)
	}
	// Pool users should be a majority-ish but not all (class shares are
	// 0.35–0.80).
	frac := float64(users) / float64(users+nonUsers)
	if frac < 0.3 || frac > 0.9 {
		t.Errorf("pool share %.2f outside configured band", frac)
	}
	// Non-pool devices never query.
	w.GenerateQueries(func(q Query) {
		if !q.Device.UsesPool() {
			t.Fatal("query from non-pool device")
		}
	})
}

func TestOutageWindowResolution(t *testing.T) {
	cfg := tinyConfig(53)
	for i := range cfg.ASes {
		if cfg.ASes[i].ASN == 7922 {
			cfg.ASes[i].Outages = []OutageWindow{{StartDay: 3, Hours: 12}}
		}
	}
	w, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := w.asByASN[asdb.ASN(7922)]
	mid := w.Origin.AddDate(0, 0, 3).Add(6 * time.Hour)
	if !n.downAt(mid) {
		t.Error("AS not down mid-outage")
	}
	if n.downAt(mid.Add(12 * time.Hour)) {
		t.Error("AS down after outage end")
	}
	if n.downAt(w.Origin) {
		t.Error("AS down before outage")
	}
	// Other ASes unaffected.
	if w.asByASN[asdb.ASN(4134)].downAt(mid) {
		t.Error("unrelated AS down")
	}
}

func TestKindRateFactorsPositive(t *testing.T) {
	for k := DeviceKind(0); k < NumDeviceKinds; k++ {
		if kindRateFactor(k) <= 0 {
			t.Errorf("kind %v rate factor non-positive", k)
		}
		if poolShare(k) <= 0 || poolShare(k) > 1 {
			t.Errorf("kind %v pool share out of (0,1]", k)
		}
	}
}

func TestWindowBitsFor(t *testing.T) {
	cases := []struct {
		sites, slotBits, want int
	}{
		{1, 23, 10},   // floor
		{300, 23, 11}, // 4*300=1200 -> 2^11
		{10000, 23, 16},
		{1 << 22, 15, 15}, // clamped to slot space
	}
	for _, c := range cases {
		if got := windowBitsFor(c.sites, c.slotBits); got != c.want {
			t.Errorf("windowBitsFor(%d,%d): got %d want %d", c.sites, c.slotBits, got, c.want)
		}
	}
}

func TestDelegationsPackIntoFewP48s(t *testing.T) {
	// The density property behind Table 1: all customer /64s of an AS fit
	// inside a handful of /48s.
	w := buildTiny(t, 54)
	at := w.Origin.Add(time.Hour)
	for _, n := range w.ases {
		if len(n.sites) == 0 {
			continue
		}
		p48s := make(map[uint64]bool)
		for _, s := range n.sites {
			if s.aliased {
				continue
			}
			p48s[uint64(s.Subnet64(at, w.Origin, 1).P48())] = true
		}
		// Window of 2^10 /56 slots spans at most 4 /48s (plus /64-deleg
		// carriers: 1024 /64s fit inside one /48... allow slack).
		if len(p48s) > 64 {
			t.Errorf("AS%d customer /64s spread over %d /48s", n.cfg.ASN, len(p48s))
		}
	}
}
