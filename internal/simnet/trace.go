package simnet

import (
	"time"

	"hitlist6/internal/addr"
)

// Hop is one traceroute hop: the responding router (or endpoint) address
// at a TTL.
type Hop struct {
	TTL  int
	Addr addr.Addr
	// Dest is true when the hop is the destination itself answering.
	Dest bool
}

// TraceRoute returns the hop sequence a Yarrp-style traceroute from a
// vantage in srcASN toward dst observes at time t. The path is a
// deterministic function of (source AS, destination AS): a couple of
// backbone routers from intermediate ASes, the destination AS's core and
// edge routers, the site CPE when the destination is a customer address,
// and finally the destination itself when it answers probes.
//
// Roughly 10% of hops are silent (routers that do not decrement-and-reply),
// modelled by skipping them deterministically, so traces contain TTL gaps
// exactly as real Yarrp output does.
func (w *World) TraceRoute(srcASN uint32, dst addr.Addr, t time.Time) []Hop {
	dstNet := w.asFor(dst)
	if dstNet == nil {
		return nil
	}
	pathSeed := hash3(uint64(srcASN), uint64(dstNet.cfg.ASN), 0x7ace)

	var hops []Hop
	ttl := 1
	appendRouter := func(a addr.Addr, h uint64) {
		// ~10% silent hops: TTL advances with no response recorded.
		if unit(mix64(h^uint64(ttl))) < 0.10 {
			ttl++
			return
		}
		hops = append(hops, Hop{TTL: ttl, Addr: a})
		ttl++
	}

	// Backbone: 2–3 routers drawn from other ASes' infra.
	nBackbone := 2 + int(pathSeed%2)
	for i := 0; i < nBackbone; i++ {
		transit := w.ases[hash3(pathSeed, uint64(i), 0xbb)%uint64(len(w.ases))]
		if len(transit.routers) == 0 {
			continue
		}
		r := transit.routers[hash3(pathSeed, uint64(i), 0xcc)%uint64(len(transit.routers))]
		appendRouter(r, hash3(pathSeed, uint64(i), 0xdd))
	}

	// Destination AS core + edge routers.
	if len(dstNet.routers) > 0 {
		appendRouter(dstNet.routers[0], hash3(pathSeed, 100, 0xee))
		if len(dstNet.routers) > 1 {
			edge := dstNet.routers[1+hash3(pathSeed, 101, 0xef)%uint64(len(dstNet.routers)-1)]
			appendRouter(edge, hash3(pathSeed, 102, 0xf0))
		}
	}

	// Customer destinations: the site's CPE WAN address is the last hop
	// before the host. This is how active campaigns discover CPE.
	hi := dst.Hi()
	if hi&dstNet.halfBit == 0 {
		slot := (hi >> dstNet.slotShift) & (dstNet.slotCount() - 1)
		if site := dstNet.siteForSlot(t, w.Origin, slot); site != nil && site.cpe != nil {
			if site.cpe.ActiveAt(t) && !site.cpe.firewalled {
				hops = append(hops, Hop{TTL: ttl, Addr: site.cpe.AddressAt(t)})
			}
			ttl++
		}
	}

	// Destination reply, if it answers probes at all.
	if res := w.Probe(dst, t); res.Responded {
		hops = append(hops, Hop{TTL: ttl, Addr: dst, Dest: true})
	}
	return hops
}
