package addrset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hitlist6/internal/addr"
)

func buildFrom(addrs ...addr.Addr) *Set {
	b := NewBuilder(len(addrs))
	for _, a := range addrs {
		b.Add(a)
	}
	return b.Build()
}

func TestBuildSortsAndDedupes(t *testing.T) {
	s := buildFrom(
		addr.MustParse("2001:db8::3"),
		addr.MustParse("2001:db8::1"),
		addr.MustParse("2001:db8::2"),
		addr.MustParse("2001:db8::1"), // dup
	)
	if s.Len() != 3 {
		t.Fatalf("len: %d", s.Len())
	}
	for i := 1; i < s.Len(); i++ {
		if !(s.At(i-1).Lo() < s.At(i).Lo()) {
			t.Fatal("not sorted")
		}
	}
}

func TestContainsMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewBuilder(0)
	model := make(map[addr.Addr]bool)
	for i := 0; i < 5000; i++ {
		a := addr.FromParts(rng.Uint64()&0xff, rng.Uint64()&0xfff)
		b.Add(a)
		model[a] = true
	}
	s := b.Build()
	if s.Len() != len(model) {
		t.Fatalf("len: %d want %d", s.Len(), len(model))
	}
	for i := 0; i < 5000; i++ {
		a := addr.FromParts(rng.Uint64()&0xff, rng.Uint64()&0xfff)
		if s.Contains(a) != model[a] {
			t.Fatalf("Contains(%s) disagrees with model", a)
		}
	}
}

func TestEachOrderAndStop(t *testing.T) {
	s := buildFrom(
		addr.MustParse("2001:db8::2"),
		addr.MustParse("2001:db8::1"),
	)
	var got []addr.Addr
	s.Each(func(a addr.Addr) bool { got = append(got, a); return true })
	if len(got) != 2 || got[0].Lo() != 1 {
		t.Errorf("order: %v", got)
	}
	n := 0
	s.Each(func(addr.Addr) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop: %d", n)
	}
}

func TestIntersectionAndUnion(t *testing.T) {
	mk := func(lo ...uint64) *Set {
		b := NewBuilder(len(lo))
		for _, v := range lo {
			b.Add(addr.FromParts(0x20010db8_00000000, v))
		}
		return b.Build()
	}
	a := mk(1, 2, 3, 4, 5)
	b := mk(4, 5, 6, 7)
	if got := IntersectionSize(a, b); got != 2 {
		t.Errorf("intersection: %d", got)
	}
	u := Union(a, b)
	if u.Len() != 7 {
		t.Errorf("union: %d", u.Len())
	}
	for v := uint64(1); v <= 7; v++ {
		if !u.Contains(addr.FromParts(0x20010db8_00000000, v)) {
			t.Errorf("union missing %d", v)
		}
	}
	// Empty cases.
	empty := buildFrom()
	if IntersectionSize(a, empty) != 0 {
		t.Error("intersection with empty")
	}
	if Union(empty, b).Len() != b.Len() {
		t.Error("union with empty")
	}
}

func TestUnionMatchesModel(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		ba, bb := NewBuilder(0), NewBuilder(0)
		model := make(map[addr.Addr]bool)
		for _, x := range xs {
			a := addr.FromParts(1, uint64(x))
			ba.Add(a)
			model[a] = true
		}
		for _, y := range ys {
			a := addr.FromParts(1, uint64(y))
			bb.Add(a)
			model[a] = true
		}
		u := Union(ba.Build(), bb.Build())
		if u.Len() != len(model) {
			return false
		}
		ok := true
		u.Each(func(a addr.Addr) bool {
			if !model[a] {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCountPrefix48(t *testing.T) {
	s := buildFrom(
		addr.MustParse("2001:db8:1:1::1"),
		addr.MustParse("2001:db8:1:2::1"), // same /48
		addr.MustParse("2001:db8:2::1"),
		addr.MustParse("2400::1"),
	)
	if got := s.CountPrefix48(); got != 3 {
		t.Errorf("CountPrefix48: %d", got)
	}
	if got := buildFrom().CountPrefix48(); got != 0 {
		t.Errorf("empty: %d", got)
	}
}

func TestRangeOfPrefix(t *testing.T) {
	s := buildFrom(
		addr.MustParse("2001:db8:1::1"),
		addr.MustParse("2001:db8:1::2"),
		addr.MustParse("2001:db8:2::1"),
		addr.MustParse("2400::1"),
	)
	lo, hi := s.RangeOfPrefix(addr.MustParsePrefix("2001:db8:1::/48"))
	if hi-lo != 2 {
		t.Fatalf("range size: %d", hi-lo)
	}
	for i := lo; i < hi; i++ {
		if s.At(i).P48() != addr.MustParse("2001:db8:1::").P48() {
			t.Errorf("out-of-prefix member %s", s.At(i))
		}
	}
	lo, hi = s.RangeOfPrefix(addr.MustParsePrefix("3fff::/32"))
	if hi != lo {
		t.Errorf("missing prefix should yield empty range")
	}
}

// Benchmarks: the compact set against a map, at identical content.

func benchContent(n int) []addr.Addr {
	rng := rand.New(rand.NewSource(7))
	out := make([]addr.Addr, n)
	for i := range out {
		out[i] = addr.FromParts(rng.Uint64(), rng.Uint64())
	}
	return out
}

func BenchmarkSetContains(b *testing.B) {
	content := benchContent(1 << 16)
	bl := NewBuilder(len(content))
	for _, a := range content {
		bl.Add(a)
	}
	s := bl.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Contains(content[i%len(content)])
	}
}

func BenchmarkMapContains(b *testing.B) {
	content := benchContent(1 << 16)
	m := make(map[addr.Addr]struct{}, len(content))
	for _, a := range content {
		m[a] = struct{}{}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = m[content[i%len(content)]]
	}
}

func BenchmarkSetIntersection(b *testing.B) {
	content := benchContent(1 << 16)
	bl1, bl2 := NewBuilder(0), NewBuilder(0)
	for i, a := range content {
		if i%2 == 0 {
			bl1.Add(a)
		}
		if i%3 == 0 {
			bl2.Add(a)
		}
	}
	s1, s2 := bl1.Build(), bl2.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IntersectionSize(s1, s2)
	}
}
