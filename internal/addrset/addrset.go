// Package addrset provides a compact, immutable sorted set of IPv6
// addresses. At hitlist scale the difference matters: a Go map keyed on
// 16-byte arrays costs ~80–100 bytes per entry in buckets and overhead,
// while this representation stores exactly 16 bytes per address in one
// slab and answers membership by binary search. The paper's 7.9B-address
// corpus fits in ~127 GB this way versus ~700 GB as a map.
//
// Build with Builder (amortized O(n log n)), then query concurrently —
// the built set is immutable.
package addrset

import (
	"sort"

	"hitlist6/internal/addr"
)

// Set is an immutable sorted address set.
type Set struct {
	addrs []addr.Addr // sorted, deduplicated
}

// Builder accumulates addresses for a Set.
type Builder struct {
	addrs []addr.Addr
}

// NewBuilder returns a builder with optional capacity hint.
func NewBuilder(capacity int) *Builder {
	if capacity < 0 {
		capacity = 0
	}
	return &Builder{addrs: make([]addr.Addr, 0, capacity)}
}

// Add appends an address (duplicates are removed at Build).
func (b *Builder) Add(a addr.Addr) { b.addrs = append(b.addrs, a) }

// Build sorts, deduplicates, and freezes the set. The builder must not
// be used afterwards.
func (b *Builder) Build() *Set {
	sort.Slice(b.addrs, func(i, j int) bool { return less(b.addrs[i], b.addrs[j]) })
	out := b.addrs[:0]
	for i, a := range b.addrs {
		if i == 0 || a != out[len(out)-1] {
			out = append(out, a)
		}
	}
	s := &Set{addrs: out}
	b.addrs = nil
	return s
}

func less(a, b addr.Addr) bool {
	ah, bh := a.Hi(), b.Hi()
	if ah != bh {
		return ah < bh
	}
	return a.Lo() < b.Lo()
}

// Len returns the number of addresses.
func (s *Set) Len() int { return len(s.addrs) }

// Contains answers membership by binary search.
func (s *Set) Contains(a addr.Addr) bool {
	i := sort.Search(len(s.addrs), func(i int) bool { return !less(s.addrs[i], a) })
	return i < len(s.addrs) && s.addrs[i] == a
}

// At returns the i-th address in sorted order.
func (s *Set) At(i int) addr.Addr { return s.addrs[i] }

// Each iterates in sorted order; returning false stops.
func (s *Set) Each(fn func(a addr.Addr) bool) {
	for _, a := range s.addrs {
		if !fn(a) {
			return
		}
	}
}

// IntersectionSize counts common addresses by merge-walking both sorted
// slabs in O(n+m) — no hashing, no allocation.
func IntersectionSize(a, b *Set) int {
	i, j, n := 0, 0, 0
	for i < len(a.addrs) && j < len(b.addrs) {
		switch {
		case a.addrs[i] == b.addrs[j]:
			n++
			i++
			j++
		case less(a.addrs[i], b.addrs[j]):
			i++
		default:
			j++
		}
	}
	return n
}

// Union merges two sets into a new one in O(n+m).
func Union(a, b *Set) *Set {
	out := make([]addr.Addr, 0, len(a.addrs)+len(b.addrs))
	i, j := 0, 0
	for i < len(a.addrs) && j < len(b.addrs) {
		switch {
		case a.addrs[i] == b.addrs[j]:
			out = append(out, a.addrs[i])
			i++
			j++
		case less(a.addrs[i], b.addrs[j]):
			out = append(out, a.addrs[i])
			i++
		default:
			out = append(out, b.addrs[j])
			j++
		}
	}
	out = append(out, a.addrs[i:]...)
	out = append(out, b.addrs[j:]...)
	return &Set{addrs: out}
}

// CountPrefix48 counts distinct /48s by a single sorted pass.
func (s *Set) CountPrefix48() int {
	n := 0
	var prev addr.Prefix48
	for i, a := range s.addrs {
		p := a.P48()
		if i == 0 || p != prev {
			n++
			prev = p
		}
	}
	return n
}

// RangeOfPrefix returns the index range [lo, hi) of addresses inside p,
// enabling per-prefix slicing without scans.
func (s *Set) RangeOfPrefix(p addr.Prefix) (lo, hi int) {
	base := p.Addr()
	lo = sort.Search(len(s.addrs), func(i int) bool { return !less(s.addrs[i], base) })
	hi = lo
	for hi < len(s.addrs) && p.Contains(s.addrs[hi]) {
		hi++
	}
	return lo, hi
}
