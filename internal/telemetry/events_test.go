package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestEventRingBoundedAndOrdered(t *testing.T) {
	r := NewEventRing(4)
	for i := 0; i < 10; i++ {
		r.Record("INFO", fmt.Sprintf("event %d", i), nil)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		want := fmt.Sprintf("event %d", 6+i)
		if ev.Msg != want {
			t.Errorf("event[%d] = %q, want %q (oldest-first)", i, ev.Msg, want)
		}
		if ev.Seq != uint64(6+i) {
			t.Errorf("event[%d].Seq = %d, want %d", i, ev.Seq, 6+i)
		}
	}
}

func TestEventRingHTTP(t *testing.T) {
	r := NewEventRing(8)
	r.Record("WARN", "checkpoint failed", map[string]string{"path": "/tmp/x"})
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var reply struct {
		Total  uint64  `json:"total"`
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Total != 1 || len(reply.Events) != 1 || reply.Events[0].Attrs["path"] != "/tmp/x" {
		t.Errorf("reply = %+v", reply)
	}
}

func TestLoggerFeedsRing(t *testing.T) {
	ring := NewEventRing(16)
	var out strings.Builder
	log, err := NewLogger(LogOptions{Level: "debug", Format: "json", Output: &out, Ring: ring})
	if err != nil {
		t.Fatal(err)
	}
	log.Info("restored corpus", "addrs", 123)
	log.WithGroup("ingest").With("shard", 2).Warn("queue full")

	evs := ring.Events()
	if len(evs) != 2 {
		t.Fatalf("ring saw %d events, want 2", len(evs))
	}
	if evs[0].Msg != "restored corpus" || evs[0].Attrs["addrs"] != "123" {
		t.Errorf("first event = %+v", evs[0])
	}
	if evs[1].Level != "WARN" || evs[1].Attrs["ingest.shard"] != "2" {
		t.Errorf("grouped attrs not flattened: %+v", evs[1])
	}
	// The base JSON handler still got both lines.
	if n := strings.Count(out.String(), "\n"); n != 2 {
		t.Errorf("base handler wrote %d lines, want 2:\n%s", n, out.String())
	}
	var line map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(out.String(), "\n", 2)[0]), &line); err != nil {
		t.Fatalf("log output not JSON: %v", err)
	}
}

func TestLoggerLevelAndFormatValidation(t *testing.T) {
	if _, err := NewLogger(LogOptions{Level: "loud"}); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := NewLogger(LogOptions{Format: "xml"}); err == nil {
		t.Error("bad format accepted")
	}
	var out strings.Builder
	log, err := NewLogger(LogOptions{Level: "warn", Format: "text", Output: &out})
	if err != nil {
		t.Fatal(err)
	}
	log.Info("suppressed")
	log.Warn("emitted")
	if strings.Contains(out.String(), "suppressed") || !strings.Contains(out.String(), "emitted") {
		t.Errorf("level filtering wrong:\n%s", out.String())
	}
}

func TestHealthEndpoints(t *testing.T) {
	h := NewHealth()
	probe := func(t *testing.T, which string) (int, string) {
		t.Helper()
		rec := httptest.NewRecorder()
		switch which {
		case "healthz":
			h.LivenessHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		case "readyz":
			h.ReadinessHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
		}
		return rec.Code, rec.Body.String()
	}

	if code, body := probe(t, "healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("healthz before ready: %d %q", code, body)
	}
	if code, body := probe(t, "readyz"); code != 503 || !strings.Contains(body, "starting") {
		t.Errorf("readyz before ready: %d %q", code, body)
	}
	h.SetReady()
	if code, body := probe(t, "readyz"); code != 200 || !strings.Contains(body, "ready") {
		t.Errorf("readyz when ready: %d %q", code, body)
	}
	h.SetNotReady("shutting down")
	if code, body := probe(t, "readyz"); code != 503 || !strings.Contains(body, "shutting down") {
		t.Errorf("readyz during shutdown: %d %q", code, body)
	}
	if code, _ := probe(t, "healthz"); code != 200 {
		t.Error("healthz must stay 200 while not ready")
	}
}
