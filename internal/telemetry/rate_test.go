package telemetry

import (
	"math"
	"testing"
	"time"
)

func TestRateWindowRecentRate(t *testing.T) {
	var w RateWindow
	t0 := time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)

	if _, ok := w.Tick(t0, 0); ok {
		t.Error("single sample should not yield a rate")
	}
	rate, ok := w.Tick(t0.Add(10*time.Second), 1000)
	if !ok || rate != 100 {
		t.Errorf("rate after 1000 events in 10s: %v (ok=%v), want 100", rate, ok)
	}

	// A long quiet stretch followed by a burst: the windowed rate must
	// reflect the recent burst, not the lifetime average.
	rate, ok = w.Tick(t0.Add(20*time.Second), 1000)
	if !ok || rate != 50 {
		t.Errorf("idle decay rate: %v (ok=%v), want 50", rate, ok)
	}
	// Jump past the window: old samples pruned, rate spans retained ones.
	rate, ok = w.Tick(t0.Add(200*time.Second), 901000)
	if !ok {
		t.Fatal("no rate after pruning")
	}
	// Oldest retained sample is the one at t0+20s (the two newest are
	// always kept): (901000-1000)/180s = 5000/s.
	if rate != 5000 {
		t.Errorf("post-burst rate %v, want 5000", rate)
	}
}

func TestRateWindowCounterRegression(t *testing.T) {
	var w RateWindow
	t0 := time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)
	w.Tick(t0, 500)
	if _, ok := w.Tick(t0.Add(time.Second), 400); ok {
		t.Error("regressing counter must not yield a rate")
	}
}

func TestRateWindowBounded(t *testing.T) {
	var w RateWindow
	t0 := time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10*maxRateSamples; i++ {
		// Sub-millisecond polling: everything stays inside the span, so
		// only the buffer cap limits growth.
		w.Tick(t0.Add(time.Duration(i)*time.Millisecond), uint64(i))
	}
	if len(w.samples) > maxRateSamples {
		t.Errorf("sample buffer grew to %d (cap %d)", len(w.samples), maxRateSamples)
	}
}

// TestRateWindowRecoversAfterRegression pins the restore-then-poll
// sequence: a daemon that restarts from a checkpoint hands the window a
// counter far below the pre-crash samples a stats poller recorded. The
// regressing tick must yield no rate (not a huge negative or wrapped
// one), and the very next monotonic tick must produce a sane rate again.
func TestRateWindowRecoversAfterRegression(t *testing.T) {
	var w RateWindow
	t0 := time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)
	w.Tick(t0, 500_000)
	if _, ok := w.Tick(t0.Add(time.Second), 100); ok {
		t.Fatal("regressed counter yielded a rate")
	}
	// Counting resumed: the oldest retained sample is still the
	// pre-crash 500k, so rates stay suppressed...
	if _, ok := w.Tick(t0.Add(2*time.Second), 300); ok {
		t.Error("rate against a pre-crash baseline sample")
	}
	// ...until the window prunes it, after which the post-restore
	// samples alone define the rate.
	rate, ok := w.Tick(t0.Add(2*time.Second+RateWindowSpan), 400)
	if !ok {
		t.Fatal("window never recovered after a counter regression")
	}
	// Every pre-crash-era sample aged out except the newest two; the
	// oldest retained is the post-restore (t0+2s, 300), so the rate is
	// (400-300)/span — derived purely from post-restore counting.
	want := 100 / RateWindowSpan.Seconds()
	if rate != want {
		t.Errorf("post-recovery rate %v, want %v", rate, want)
	}
}

// TestRateWindowPathologicalPolling hammers the window far past
// maxRateSamples with sub-window polling and checks the derived rate
// stays exact: the buffer cap must shorten the window, never corrupt
// the rate. One event per 10ms is 100/sec whatever suffix of samples
// survives the cap.
func TestRateWindowPathologicalPolling(t *testing.T) {
	var w RateWindow
	t0 := time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 4*maxRateSamples; i++ {
		rate, ok := w.Tick(t0.Add(time.Duration(i)*10*time.Millisecond), uint64(i))
		if i == 0 {
			continue
		}
		if !ok || math.Abs(rate-100) > 1e-6 {
			t.Fatalf("tick %d: rate %v (ok=%v), want 100", i, rate, ok)
		}
		if len(w.samples) > maxRateSamples {
			t.Fatalf("tick %d: buffer %d over cap %d", i, len(w.samples), maxRateSamples)
		}
	}
}
