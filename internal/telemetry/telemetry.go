// Package telemetry is the production observability substrate shared by
// every daemon in this repository: a zero-dependency metrics registry
// (atomic counters, gauges, and fixed-bucket histograms, all lock-free
// on the update path) that renders the Prometheus text exposition
// format, plus the structured-logging setup, a bounded recent-events
// ring for /debug/events, and liveness/readiness handlers.
//
// The design constraint is the ingest hot path: a pipeline folding
// millions of events per second cannot afford a lock, a map lookup, or
// an allocation per observation. Registration (the only part that
// locks or allocates) happens once at setup; the returned *Counter,
// *Gauge and *Histogram handles are then plain atomics the hot path
// updates directly. Exposition walks the registry under its lock, but
// scrapes are rare and never block updates.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension, e.g. {Key: "shard", Value: "3"}.
// Labels are rendered once at registration; the hot path never touches
// them.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// ---- Metric kinds ----

// Counter is a monotonically increasing value: one atomic, nothing
// else. The zero handle is not usable — obtain one from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down (queue depths, timestamps,
// sizes). Stored as int64; use a GaugeFunc for float-valued readings.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// SetMax raises the gauge to v if v is larger — the high-water-mark
// update, lock-free via CAS.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current reading.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution: per-bucket atomic counts
// (lock-free increments), plus a CAS-maintained float sum. Bucket
// bounds are upper bounds in ascending order; observations above the
// last bound land in the implicit +Inf bucket. Exposition renders the
// standard Prometheus cumulative _bucket/_sum/_count triplet.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // math.Float64bits of the running sum
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	// Linear scan: bucket lists are short (≤ ~16) and most observations
	// land in the low buckets, so this beats a binary search in practice.
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds (the Prometheus base
// unit for time).
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// ---- Bucket presets ----

// ExponentialBuckets returns n upper bounds starting at start, each
// factor times the previous. Panics on invalid parameters (a setup-time
// config error, like an invalid HLL precision).
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("telemetry: invalid bucket spec (start=%g factor=%g n=%d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets spans 1µs–4s in powers of 4: wide enough for a
// per-batch observe loop (tens of µs) and a multi-GB checkpoint
// (seconds) on one scale.
func DurationBuckets() []float64 { return ExponentialBuckets(1e-6, 4, 12) }

// SizeBuckets spans 1KiB–4GiB in powers of 4, for byte-valued
// distributions (checkpoint sizes, snapshot streams).
func SizeBuckets() []float64 { return ExponentialBuckets(1024, 4, 12) }

// CountBuckets spans 1–4096 in powers of 2, for small cardinal
// distributions (events per batch).
func CountBuckets() []float64 { return ExponentialBuckets(1, 2, 13) }

// ---- Registry ----

// Registry holds named metric families, each with one or more labeled
// series. Registration is idempotent: asking for an existing
// name+labels returns the same handle (so a restarted pipeline sharing
// a daemon's registry keeps accumulating into the same series), while
// re-registering a name with a different kind or bucket layout panics —
// that is a programming error, not an operational condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// metricKind discriminates family types in the exposition output.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type family struct {
	name   string
	help   string
	kind   metricKind
	order  []string // label strings in registration order
	series map[string]*series
}

type series struct {
	labels  string // pre-rendered `key="value",...` (no braces), "" for none
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// lookup finds or creates the (family, series) slot for name+labels,
// enforcing kind consistency. Caller holds r.mu.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label) (*family, *series, bool) {
	if !metricNameRE.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)", name, kind, f.kind))
	}
	ls := renderLabels(labels)
	if s, ok := f.series[ls]; ok {
		return f, s, true
	}
	s := &series{labels: ls}
	f.series[ls] = s
	f.order = append(f.order, ls)
	return f, s, false
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if !metricNameRE.MatchString(l.Key) {
			panic(fmt.Sprintf("telemetry: invalid label name %q", l.Key))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// Counter registers (or finds) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, s, existed := r.lookup(name, help, kindCounter, labels)
	if !existed {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, s, existed := r.lookup(name, help, kindGauge, labels)
	if !existed {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge series whose value is computed at scrape
// time — the right shape for readings that already exist elsewhere
// (queue depths, corpus footprints): zero hot-path cost, always
// current. Re-registering replaces the function (latest wins), so a
// restarted pipeline's closures displace the dead one's.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, s, _ := r.lookup(name, help, kindGauge, labels)
	s.gaugeFn = fn
}

// Histogram registers (or finds) a histogram series over the given
// ascending upper bounds (see the bucket presets). A re-registration
// with different bounds panics.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %s bounds not ascending", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, s, existed := r.lookup(name, help, kindHistogram, labels)
	if !existed {
		s.hist = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)+1),
		}
		return s.hist
	}
	if len(s.hist.bounds) != len(bounds) {
		panic(fmt.Sprintf("telemetry: histogram %s re-registered with different buckets", name))
	}
	for i, b := range bounds {
		if s.hist.bounds[i] != b {
			panic(fmt.Sprintf("telemetry: histogram %s re-registered with different buckets", name))
		}
	}
	return s.hist
}

// WritePrometheus renders every family in the text exposition format
// (version 0.0.4), families sorted by name, series in registration
// order within a family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	// Snapshot the family pointers under the lock; the atomic reads
	// below are safe without it, and rendering outside the lock keeps
	// slow writers from blocking registration.
	fams := make([]*family, len(names))
	sers := make([][]*series, len(names))
	for i, name := range names {
		f := r.families[name]
		fams[i] = f
		ss := make([]*series, len(f.order))
		for j, ls := range f.order {
			ss[j] = f.series[ls]
		}
		sers[i] = ss
	}
	r.mu.Unlock()

	var b strings.Builder
	for i, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range sers[i] {
			writeSeries(&b, f, s)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSeries(b *strings.Builder, f *family, s *series) {
	switch f.kind {
	case kindCounter:
		writeSample(b, f.name, s.labels, "", float64(s.counter.Value()))
	case kindGauge:
		if s.gaugeFn != nil {
			writeSample(b, f.name, s.labels, "", s.gaugeFn())
		} else {
			writeSample(b, f.name, s.labels, "", float64(s.gauge.Value()))
		}
	case kindHistogram:
		h := s.hist
		var cum uint64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			writeSample(b, f.name+"_bucket", s.labels, formatLE(bound), float64(cum))
		}
		cum += h.counts[len(h.bounds)].Load()
		writeSample(b, f.name+"_bucket", s.labels, "+Inf", float64(cum))
		writeSample(b, f.name+"_sum", s.labels, "", h.Sum())
		writeSample(b, f.name+"_count", s.labels, "", float64(cum))
	}
}

func formatLE(bound float64) string {
	return strconv.FormatFloat(bound, 'g', -1, 64)
}

// writeSample emits one `name{labels,le="x"} value` line. le is the
// histogram bucket bound ("" for non-bucket samples).
func writeSample(b *strings.Builder, name, labels, le string, v float64) {
	b.WriteString(name)
	if labels != "" || le != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if le != "" {
			if labels != "" {
				b.WriteByte(',')
			}
			b.WriteString(`le="`)
			b.WriteString(le)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	switch {
	case math.IsInf(v, 1):
		b.WriteString("+Inf")
	case math.IsInf(v, -1):
		b.WriteString("-Inf")
	case math.IsNaN(v):
		b.WriteString("NaN")
	default:
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	b.WriteByte('\n')
}

// ContentType is the Prometheus text exposition content type /metrics
// must serve.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns the /metrics HTTP handler for this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		if err := r.WritePrometheus(w); err != nil {
			// Headers are gone; nothing useful to report to the client.
			return
		}
	})
}
