package telemetry

import (
	"math"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "events seen")
	c.Add(41)
	c.Inc()
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	g := r.Gauge("test_depth", "queue depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	g.SetMax(3)
	if g.Value() != 5 {
		t.Error("SetMax lowered the gauge")
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Errorf("SetMax did not raise: %d", g.Value())
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "help", L("shard", "0"))
	b := r.Counter("dup_total", "help", L("shard", "0"))
	if a != b {
		t.Error("re-registration returned a different counter")
	}
	other := r.Counter("dup_total", "help", L("shard", "1"))
	if other == a {
		t.Error("distinct labels shared a counter")
	}
	// Kind conflicts are programming errors: they must panic loudly
	// rather than silently alias a counter as a gauge.
	defer func() {
		if recover() == nil {
			t.Error("kind conflict did not panic")
		}
	}()
	r.Gauge("dup_total", "help")
}

func TestGaugeFuncLatestWins(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("fn_gauge", "computed", func() float64 { return 1 })
	r.GaugeFunc("fn_gauge", "computed", func() float64 { return 2 })
	out := expose(t, r)
	if !strings.Contains(out, "fn_gauge 2\n") {
		t.Errorf("replaced GaugeFunc not in effect:\n%s", out)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-5.56) > 1e-9 {
		t.Fatalf("sum = %v, want 5.56", h.Sum())
	}
	out := expose(t, r)
	for _, want := range []string{
		`test_seconds_bucket{le="0.01"} 2`,
		`test_seconds_bucket{le="0.1"} 3`,
		`test_seconds_bucket{le="1"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		`test_seconds_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	h.ObserveDuration(50 * time.Millisecond)
	if h.Count() != 6 {
		t.Error("ObserveDuration did not land")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_seconds", "latency", DurationBuckets())
	var wg sync.WaitGroup
	const goroutines, per = 8, 10000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(g%4) * 1e-5)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*per)
	}
}

func TestBucketPresets(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"duration": DurationBuckets(),
		"size":     SizeBuckets(),
		"count":    CountBuckets(),
	} {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Errorf("%s buckets not ascending at %d", name, i)
			}
		}
	}
	if b := DurationBuckets(); b[0] != 1e-6 || b[len(b)-1] < 4 {
		t.Errorf("duration bucket span unexpected: %v", b)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "h", L("path", "a\"b\\c\nd")).Inc()
	out := expose(t, r)
	if !strings.Contains(out, `esc_total{path="a\"b\\c\nd"} 1`) {
		t.Errorf("label escaping wrong:\n%s", out)
	}
}

// ValidateExposition asserts LintExposition finds nothing wrong.
func ValidateExposition(t *testing.T, text string) {
	t.Helper()
	for _, p := range LintExposition(text) {
		t.Error(p)
	}
}

func expose(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestWritePrometheusWellFormed(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_events_total", "events", L("shard", "0")).Add(10)
	r.Counter("app_events_total", "events", L("shard", "1")).Add(20)
	r.Gauge("app_depth", "depth").Set(3)
	r.GaugeFunc("app_computed", "computed", func() float64 { return 1.5 })
	r.Histogram("app_seconds", "latency", DurationBuckets()).Observe(0.02)
	out := expose(t, r)
	ValidateExposition(t, out)
	// Families render sorted by name, series in registration order.
	if !regexp.MustCompile(`(?s)app_computed.*app_depth.*app_events_total.*app_seconds`).MatchString(out) {
		t.Errorf("families not sorted:\n%s", out)
	}
	shard0 := strings.Index(out, `app_events_total{shard="0"}`)
	shard1 := strings.Index(out, `app_events_total{shard="1"}`)
	if shard0 < 0 || shard1 < 0 || shard1 < shard0 {
		t.Errorf("series order wrong:\n%s", out)
	}
}

func TestMetricsHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, ContentType)
	}
	ValidateExposition(t, rec.Body.String())
}
