package telemetry

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"sync"
	"time"
)

// Event is one entry in the recent-events ring: a timestamped,
// leveled, structured record of something the process did — the
// trace-what-just-happened view /debug/events serves.
type Event struct {
	Seq   uint64            `json:"seq"`
	Time  time.Time         `json:"time"`
	Level string            `json:"level"`
	Msg   string            `json:"msg"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// EventRing is a bounded in-memory ring of recent Events. Writers
// overwrite the oldest entry once full, so memory is fixed no matter
// how long the daemon runs. It is not a hot-path structure — entries
// are operational events (checkpoints, restores, source transitions,
// outage rescans), not per-packet records — so a plain mutex is fine.
type EventRing struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever recorded; buf[next%len] is the next slot
}

// DefaultEventRingSize is the ring capacity daemons use unless
// configured otherwise.
const DefaultEventRingSize = 256

// NewEventRing returns a ring holding the last n events (n <= 0
// selects DefaultEventRingSize).
func NewEventRing(n int) *EventRing {
	if n <= 0 {
		n = DefaultEventRingSize
	}
	return &EventRing{buf: make([]Event, n)}
}

// Record appends one event. attrs may be nil.
func (r *EventRing) Record(level, msg string, attrs map[string]string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next%uint64(len(r.buf))] = Event{
		Seq:   r.next,
		Time:  time.Now().UTC(),
		Level: level,
		Msg:   msg,
		Attrs: attrs,
	}
	r.next++
}

// Events returns the retained events, oldest first.
func (r *EventRing) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	count := r.next
	if count > n {
		count = n
	}
	out := make([]Event, 0, count)
	for i := r.next - count; i < r.next; i++ {
		out = append(out, r.buf[i%n])
	}
	return out
}

// eventsReply is the /debug/events JSON shape.
type eventsReply struct {
	Total  uint64  `json:"total"`
	Events []Event `json:"events"`
}

// ServeHTTP renders the ring as JSON: the /debug/events endpoint.
func (r *EventRing) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	r.mu.Lock()
	total := r.next
	r.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(eventsReply{Total: total, Events: r.Events()})
}

// ---- slog bridge ----

// ringHandler tees every slog record into an EventRing before
// delegating to the base handler, so structured log lines and
// /debug/events stay one stream.
type ringHandler struct {
	base  slog.Handler
	ring  *EventRing
	attrs map[string]string // accumulated WithAttrs context
	group string            // dotted WithGroup prefix
}

// RingHandler wraps base so every record it handles is also captured
// in ring.
func RingHandler(base slog.Handler, ring *EventRing) slog.Handler {
	return &ringHandler{base: base, ring: ring}
}

func (h *ringHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.base.Enabled(ctx, level)
}

func (h *ringHandler) Handle(ctx context.Context, rec slog.Record) error {
	attrs := make(map[string]string, len(h.attrs)+rec.NumAttrs())
	for k, v := range h.attrs {
		attrs[k] = v
	}
	rec.Attrs(func(a slog.Attr) bool {
		h.flatten(attrs, h.group, a)
		return true
	})
	if len(attrs) == 0 {
		attrs = nil
	}
	h.ring.Record(rec.Level.String(), rec.Message, attrs)
	return h.base.Handle(ctx, rec)
}

func (h *ringHandler) flatten(into map[string]string, prefix string, a slog.Attr) {
	key := a.Key
	if prefix != "" {
		key = prefix + "." + key
	}
	if a.Value.Kind() == slog.KindGroup {
		for _, ga := range a.Value.Group() {
			h.flatten(into, key, ga)
		}
		return
	}
	into[key] = a.Value.Resolve().String()
}

func (h *ringHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	merged := make(map[string]string, len(h.attrs)+len(attrs))
	for k, v := range h.attrs {
		merged[k] = v
	}
	for _, a := range attrs {
		h.flatten(merged, h.group, a)
	}
	return &ringHandler{base: h.base.WithAttrs(attrs), ring: h.ring, attrs: merged, group: h.group}
}

func (h *ringHandler) WithGroup(name string) slog.Handler {
	group := name
	if h.group != "" {
		group = h.group + "." + name
	}
	return &ringHandler{base: h.base.WithGroup(name), ring: h.ring, attrs: h.attrs, group: group}
}
