package telemetry

import (
	"regexp"
	"strings"
)

// expositionLine accepts the line shapes the text exposition format
// allows (as this renderer emits them): HELP/TYPE comments and sample
// lines with optional labels.
var expositionLine = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+` +
		`|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (\+Inf|-Inf|NaN|[-+0-9.eE]+))$`)

// LintExposition checks a Prometheus text exposition document for
// well-formedness and returns one message per problem (nil when
// clean): every line must parse, every sample must sit inside its
// family's TYPE block, and histogram families must carry the full
// _bucket/_sum/_count triplet. The handler tests and the CI telemetry
// smoke test share this check.
func LintExposition(text string) []string {
	var problems []string
	typed := map[string]string{}
	cur := ""
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			problems = append(problems, "malformed line: "+line)
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			typed[f[2]] = f[3]
			cur = f[2]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if typed[name] == "" && typed[base] == "" {
			problems = append(problems, "sample without TYPE: "+name)
		}
		if cur != name && cur != base {
			problems = append(problems, "sample outside its family block: "+name)
		}
	}
	for fam, kind := range typed {
		if kind != "histogram" {
			continue
		}
		for _, suffix := range []string{"_bucket{", "_sum", "_count"} {
			if !strings.Contains(text, fam+suffix) {
				problems = append(problems, "histogram "+fam+" missing "+suffix+" samples")
			}
		}
	}
	return problems
}
