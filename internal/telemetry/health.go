package telemetry

import (
	"fmt"
	"net/http"
	"sync"
)

// Health tracks the process's readiness for the standard /healthz and
// /readyz endpoints. Liveness (healthz) is unconditional — if the
// handler runs, the process is alive. Readiness (readyz) is a gate the
// daemon flips: not ready while restoring or shutting down, ready while
// the pipeline is accepting work. Load balancers and orchestration
// probes key off the status codes; the bodies are for humans.
type Health struct {
	mu     sync.Mutex
	ready  bool
	reason string
}

// NewHealth returns a Health that starts not ready ("starting").
func NewHealth() *Health {
	return &Health{reason: "starting"}
}

// SetReady marks the process ready.
func (h *Health) SetReady() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ready, h.reason = true, ""
}

// SetNotReady marks the process not ready, with the reason readyz
// reports.
func (h *Health) SetNotReady(reason string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ready, h.reason = false, reason
}

// Ready reports the current state.
func (h *Health) Ready() (bool, string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ready, h.reason
}

// LivenessHandler serves /healthz: always 200 "ok".
func (h *Health) LivenessHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
}

// ReadinessHandler serves /readyz: 200 "ready" or 503 "not ready:
// <reason>".
func (h *Health) ReadinessHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ready, reason := h.Ready(); !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "not ready: %s\n", reason)
			return
		}
		fmt.Fprintln(w, "ready")
	})
}
