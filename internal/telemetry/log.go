package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// LogOptions configures the shared structured-logging setup. Every
// daemon in this repository builds its logger through NewLogger so the
// flag surface (-log.level, -log.format) and the output conventions
// stay uniform.
type LogOptions struct {
	// Level is the minimum level emitted: "debug", "info" (default),
	// "warn" or "error".
	Level string
	// Format selects the handler: "text" (default, human-oriented
	// key=value lines) or "json" (one JSON object per line, for log
	// shippers).
	Format string
	// Output defaults to os.Stderr.
	Output io.Writer
	// Ring, when non-nil, captures every emitted record into the
	// recent-events ring as well (see RingHandler), so /debug/events
	// mirrors the log stream.
	Ring *EventRing
}

// ParseLevel maps a -log.level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("telemetry: unknown log level %q (debug|info|warn|error)", s)
}

// NewLogger builds a *slog.Logger per the options.
func NewLogger(opts LogOptions) (*slog.Logger, error) {
	level, err := ParseLevel(opts.Level)
	if err != nil {
		return nil, err
	}
	out := opts.Output
	if out == nil {
		out = os.Stderr
	}
	hopts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch strings.ToLower(strings.TrimSpace(opts.Format)) {
	case "", "text":
		h = slog.NewTextHandler(out, hopts)
	case "json":
		h = slog.NewJSONHandler(out, hopts)
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (text|json)", opts.Format)
	}
	if opts.Ring != nil {
		h = RingHandler(h, opts.Ring)
	}
	return slog.New(h), nil
}
