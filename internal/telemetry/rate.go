package telemetry

import (
	"sync"
	"time"
)

// RateWindow derives a recent-window rate from (time, counter) samples:
// each Tick records one reading of a monotonically increasing counter
// and returns the rate across the retained trailing window. It exists
// for the "recent events per second" class of stats — a long-running
// daemon's lifetime average goes stale within hours, while the window
// tracks what the process is doing now. The ingest pipeline uses one
// per counter it exposes a recent rate for (pipeline-processed events,
// socket-level datagram arrivals); anything with a counter and a
// poller can.
//
// The zero value is ready to use. Safe for concurrent use.
type RateWindow struct {
	mu      sync.Mutex
	samples []rateSample
}

type rateSample struct {
	at    time.Time
	count uint64
}

// RateWindowSpan bounds how far back the recent rate looks. Samples
// are taken on Tick calls, so the effective window is the larger of
// the caller's polling interval and this span.
const RateWindowSpan = 60 * time.Second

// maxRateSamples caps the sample buffer against pathological polling.
const maxRateSamples = 256

// Tick records a sample and returns the rate across the retained
// window; ok is false until two samples span a measurable interval,
// and on counter regression (a daemon restarted from a checkpoint
// behind the poller's last reading) until the stale baseline ages out.
func (w *RateWindow) Tick(now time.Time, count uint64) (rate float64, ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.samples = append(w.samples, rateSample{at: now, count: count})
	// Drop samples that fell out of the window (always keeping the two
	// newest so a slow poller still gets its last interval), and bound
	// the buffer.
	cut := 0
	for cut < len(w.samples)-2 && now.Sub(w.samples[cut+1].at) >= RateWindowSpan {
		cut++
	}
	if over := len(w.samples) - maxRateSamples; over > cut {
		cut = over
	}
	if cut > 0 {
		w.samples = append(w.samples[:0], w.samples[cut:]...)
	}
	oldest := w.samples[0]
	dt := now.Sub(oldest.at).Seconds()
	if dt <= 0 || count < oldest.count {
		return 0, false
	}
	return float64(count-oldest.count) / dt, true
}
