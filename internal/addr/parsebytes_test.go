package addr

import "testing"

// FuzzParseBytes pins ParseBytes to Parse: the byte parser and the
// string parser must agree on accept/reject and on the decoded address
// for every input. This is the invariant that lets the wire-speed
// ingest path decode addresses straight from packet bytes without a
// second grammar creeping in.
//
// Run continuously with:
//
//	go test ./internal/addr -run '^$' -fuzz '^FuzzParseBytes$' -fuzztime 30s
func FuzzParseBytes(f *testing.F) {
	for _, seed := range []string{
		"", "::", "::1", "2001:db8::1", "2001:0db8:0000:0000:0000:0000:0000:0001",
		"1:2:3:4:5:6:7:8", "1:2:3:4:5:6:7:8:9", "1::2::3", "a:::b", "a::::b",
		"::ffff:192.0.2.1", "1:2:3:4:5:6:1.2.3.4", "::1.2.3.4.5", "::0.0.0.000000001",
		"::256.1.1.1", "fe80::1%eth0", "[::1]", "2001:DB8::A", "12345::", ":::",
		"1::", "::%", "0x1::", "1_0::", "1.2.3.4", "::ffff:1.2..3",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		got, gotErr := ParseBytes(data)
		want, wantErr := Parse(string(data))
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("ParseBytes(%q) err=%v, Parse err=%v: accept/reject drift", data, gotErr, wantErr)
		}
		if gotErr == nil && got != want {
			t.Fatalf("ParseBytes(%q) = %v, Parse = %v", data, got, want)
		}
	})
}

// TestParseBytesTable spells out the corners the fuzz property covers
// statistically: compression, embedded IPv4 (with the leading-zero and
// misplacement quirks of the reference parser), double-gap rejection,
// and case-insensitive hex.
func TestParseBytesTable(t *testing.T) {
	accept := []string{
		"::", "::1", "1::", "2001:db8::1", "2001:DB8::a",
		"1:2:3:4:5:6:7:8", "::ffff:192.0.2.1", "1:2:3:4:5:6:1.2.3.4",
		"::0.0.0.000000001", "0:0:0:0:0:0:0:0",
	}
	for _, s := range accept {
		got, err := ParseBytes([]byte(s))
		if err != nil {
			t.Errorf("ParseBytes(%q): %v", s, err)
			continue
		}
		if want := MustParse(s); got != want {
			t.Errorf("ParseBytes(%q) = %v, want %v", s, got, want)
		}
	}
	reject := []string{
		"", ":", ":::", "1::2::3", "a::::b", "1:2:3:4:5:6:7:8:9",
		"1:2:3:4:5:6:7", "12345::", "g::", "0x1::", "1_0::",
		"fe80::1%eth0", "[::1]", "::256.1.1.1", "::1.2.3", "::1.2.3.4.5",
		"1.2.3.4::5:6:7:8", "1:2:3:4:5:6:7:1.2.3.4", "::ffff:1.2..3",
		"2001:db8::1 ", " ::1",
	}
	for _, s := range reject {
		if a, err := ParseBytes([]byte(s)); err == nil {
			t.Errorf("ParseBytes(%q) accepted: %v", s, a)
		}
		if _, err := Parse(s); err == nil {
			t.Errorf("reference Parse(%q) accepted — reject table is wrong", s)
		}
	}
}
