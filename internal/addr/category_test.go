package addr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEntropyExtremes(t *testing.T) {
	// All-same nibbles: entropy 0.
	if e := IID(0).NormalizedEntropy(); e != 0 {
		t.Errorf("zero IID entropy: got %v", e)
	}
	if e := IID(0xffffffffffffffff).NormalizedEntropy(); e != 0 {
		t.Errorf("all-f IID entropy: got %v", e)
	}
	// The paper's own example: 0123:4567:89ab:cdef has entropy exactly 1.0.
	if e := IID(0x0123456789abcdef).NormalizedEntropy(); e != 1 {
		t.Errorf("pangram IID entropy: got %v want 1", e)
	}
}

func TestEntropyLowForOperatorAddresses(t *testing.T) {
	// ::1-style IIDs must land firmly in the low band.
	for _, v := range []uint64{1, 2, 0x100, 0x1001} {
		e := IID(v).NormalizedEntropy()
		if e >= 0.25 {
			t.Errorf("IID %x entropy %v, want < 0.25", v, e)
		}
		if IID(v).EntropyClass() != LowEntropy {
			t.Errorf("IID %x not classed low", v)
		}
	}
}

func TestEntropyHighForRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	high := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if IID(rng.Uint64()).EntropyClass() == HighEntropy {
			high++
		}
	}
	// Roughly 83% of uniformly random 16-nibble IIDs exceed 0.75
	// normalized entropy (mean ≈ 0.86).
	if high < n*3/4 {
		t.Errorf("only %d/%d random IIDs classed high", high, n)
	}
}

func TestEntropyBounds(t *testing.T) {
	f := func(v uint64) bool {
		e := IID(v).NormalizedEntropy()
		return e >= 0 && e <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassOf(t *testing.T) {
	cases := []struct {
		e    float64
		want EntropyClass
	}{
		{0, LowEntropy}, {0.2499, LowEntropy}, {0.25, MediumEntropy},
		{0.5, MediumEntropy}, {0.75, MediumEntropy}, {0.7501, HighEntropy}, {1, HighEntropy},
	}
	for _, c := range cases {
		if got := ClassOf(c.e); got != c.want {
			t.Errorf("ClassOf(%v): got %v want %v", c.e, got, c.want)
		}
	}
}

func TestEntropyClassString(t *testing.T) {
	for _, c := range []EntropyClass{LowEntropy, MediumEntropy, HighEntropy} {
		if c.String() == "Unknown" || c.String() == "" {
			t.Errorf("class %d has no name", c)
		}
	}
}

func TestStructuralCategory(t *testing.T) {
	cases := []struct {
		iid  uint64
		want Category
	}{
		{0, CatZeroes},
		{0x01, CatLowByte},
		{0xff, CatLowByte},
		{0x100, CatLow2Bytes},
		{0xffff, CatLow2Bytes},
		{0x10000, CatLowEntropy}, // ::1:0000 - very low entropy
		{0x0123456789abcdef, CatHighEntropy},
		// Eight 0-nibbles, four 1s, four 2s: H = 1.5 bits, normalized
		// 0.375, squarely medium.
		{0x0000000011112222, CatMediumEntropy},
	}
	for _, c := range cases {
		if got := IID(c.iid).StructuralCategory(); got != c.want {
			t.Errorf("StructuralCategory(%x): got %v want %v", c.iid, got, c.want)
		}
	}
}

func TestCategorizeV4Override(t *testing.T) {
	// A v4-hex embedded IID (192.0.2.1 -> c0000201) is medium/low entropy
	// structurally but becomes v4-Mapped once confirmed.
	iid := IID(0xc0000201)
	if got := iid.Categorize(true); got != CatV4Mapped {
		t.Errorf("confirmed v4: got %v", got)
	}
	if got := iid.Categorize(false); got == CatV4Mapped {
		t.Error("unconfirmed candidate must not be v4-Mapped")
	}
	// Structural low-byte wins even when "confirmed".
	if got := IID(0x01).Categorize(true); got != CatLowByte {
		t.Errorf("low byte with v4 flag: got %v", got)
	}
}

func TestCategoryString(t *testing.T) {
	for c := Category(0); c < NumCategories; c++ {
		if c.String() == "Unknown" || c.String() == "" {
			t.Errorf("category %d has no name", c)
		}
	}
}

func TestV4HexCandidate(t *testing.T) {
	// 192.0.2.1 packed in the low 32 bits.
	v4, ok := IID(0xc0000201).V4MappedCandidate(V4Hex)
	if !ok || v4 != 0xc0000201 {
		t.Errorf("V4Hex: got %x ok=%v", v4, ok)
	}
	// High bits set: not a low-32 embedding.
	if _, ok := IID(0x1_c0000201).V4MappedCandidate(V4Hex); ok {
		t.Error("V4Hex should reject IIDs with upper bits set")
	}
	if _, ok := IID(0).V4MappedCandidate(V4Hex); ok {
		t.Error("V4Hex should reject zero")
	}
}

func TestV4HighCandidate(t *testing.T) {
	v4, ok := IID(0xc0000201_00000000).V4MappedCandidate(V4High)
	if !ok || v4 != 0xc0000201 {
		t.Errorf("V4High: got %x ok=%v", v4, ok)
	}
	if _, ok := IID(0xc0000201_00000001).V4MappedCandidate(V4High); ok {
		t.Error("V4High should reject IIDs with lower bits set")
	}
}

func TestV4DottedCandidate(t *testing.T) {
	// 192.168.1.20 written as groups :192:168:1:20.
	iid := IID(0x0192_0168_0001_0020)
	v4, ok := iid.V4MappedCandidate(V4Dotted)
	if !ok {
		t.Fatal("expected dotted candidate")
	}
	want := uint32(192)<<24 | 168<<16 | 1<<8 | 20
	if v4 != want {
		t.Errorf("V4Dotted: got %08x want %08x", v4, want)
	}
	// Group with hex digit > 9 cannot be decimal.
	if _, ok := IID(0x01ab_0168_0001_0020).V4MappedCandidate(V4Dotted); ok {
		t.Error("V4Dotted should reject non-decimal digits")
	}
	// Group reading "300" exceeds octet range.
	if _, ok := IID(0x0300_0168_0001_0020).V4MappedCandidate(V4Dotted); ok {
		t.Error("V4Dotted should reject octet > 255")
	}
}

func TestV4AnyCandidate(t *testing.T) {
	// 10.0.0.1 as dotted groups reads :10:0:0:1, i.e. 0x0010_..._0001.
	iid := IID(0x0010_0000_0000_0001)
	cands := iid.V4AnyCandidate()
	if len(cands) == 0 {
		t.Fatal("expected at least the dotted candidate")
	}
	found := false
	for _, c := range cands {
		if c == uint32(10)<<24|1 {
			found = true
		}
	}
	if !found {
		t.Errorf("10.0.0.1 candidate missing from %v", cands)
	}
}

func TestNibbleCountsSum(t *testing.T) {
	f := func(v uint64) bool {
		counts := IID(v).NibbleCounts()
		sum := 0
		for _, c := range counts {
			sum += c
		}
		return sum == 16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
