package addr

// Category is one of the seven addressing categories of Figure 5. The
// paper assigns each address to exactly one category; structural categories
// (Zeroes, Low Byte, Low 2 Bytes, v4-mapped) take precedence over the
// entropy bands so that, e.g., ::1 is "Low Byte" rather than "Low Entropy".
type Category uint8

const (
	// CatZeroes is the all-zero IID ("Zeroes").
	CatZeroes Category = iota
	// CatLowByte has only the least significant byte set ("Low Byte").
	CatLowByte
	// CatLow2Bytes has only the two least significant bytes set, with the
	// second byte nonzero ("Low 2 Bytes").
	CatLow2Bytes
	// CatV4Mapped embeds an IPv4 address in the IID ("v4-Mapped"). Because
	// random IIDs occasionally look v4-embedded, the paper only accepts the
	// category after AS-level corroboration; see V4MappedCandidate and
	// analysis.CategorizeDataset.
	CatV4Mapped
	// CatLowEntropy is normalized entropy < 0.25 ("Entropy < 0.25").
	CatLowEntropy
	// CatMediumEntropy is 0.25 <= e <= 0.75.
	CatMediumEntropy
	// CatHighEntropy is e > 0.75.
	CatHighEntropy
	// NumCategories is the category count; useful for arrays.
	NumCategories
)

// String names the category as the Figure 5 axis labels do.
func (c Category) String() string {
	switch c {
	case CatZeroes:
		return "Zeroes"
	case CatLowByte:
		return "Low Byte"
	case CatLow2Bytes:
		return "Low 2 Bytes"
	case CatV4Mapped:
		return "v4-Mapped"
	case CatLowEntropy:
		return "Entropy < 0.25"
	case CatMediumEntropy:
		return "0.25 <= Entropy <= 0.75"
	case CatHighEntropy:
		return "Entropy > 0.75"
	default:
		return "Unknown"
	}
}

// StructuralCategory classifies the IID using only its bit pattern,
// returning one of the structural categories or, failing those, the
// entropy band. v4-mapped detection is NOT applied here because it needs
// AS-level corroboration; use Categorize with a confirmed v4 set, or
// V4MappedCandidate to extract candidates.
func (iid IID) StructuralCategory() Category {
	v := uint64(iid)
	switch {
	case v == 0:
		return CatZeroes
	case v&^0xff == 0:
		return CatLowByte
	case v&^0xffff == 0:
		return CatLow2Bytes
	}
	switch iid.EntropyClass() {
	case LowEntropy:
		return CatLowEntropy
	case MediumEntropy:
		return CatMediumEntropy
	default:
		return CatHighEntropy
	}
}

// Categorize classifies the IID, treating it as v4-mapped when confirmedV4
// is true (the caller established AS-level corroboration per the paper's
// two-rule filter). Structural zero/low-byte categories still win, since a
// low-byte IID cannot meaningfully embed an IPv4 address.
func (iid IID) Categorize(confirmedV4 bool) Category {
	c := iid.StructuralCategory()
	if confirmedV4 && c != CatZeroes && c != CatLowByte && c != CatLow2Bytes {
		return CatV4Mapped
	}
	return c
}

// V4Embedding is one of the three IPv4-in-IID encodings the paper checks.
type V4Embedding uint8

const (
	// V4Hex is the address packed into the low 32 bits
	// (…:0102:0304 for 1.2.3.4).
	V4Hex V4Embedding = iota
	// V4Dotted is the decimal octets written as the four hex groups
	// (…:1:2:3:4 or with multi-digit octets …:192:168:1:20).
	V4Dotted
	// V4High is the address packed into the top 32 bits of the IID.
	V4High
)

// V4MappedCandidate extracts the IPv4 address a given embedding would
// imply. ok is false when the bit pattern cannot carry that embedding
// (e.g. dotted groups exceeding 255). Callers must corroborate candidates
// against AS data before trusting them — that is the whole point of the
// paper's two-rule filter (>=100 instances in the AS and >=10% of the AS's
// addresses).
func (iid IID) V4MappedCandidate(e V4Embedding) (v4 uint32, ok bool) {
	v := uint64(iid)
	switch e {
	case V4Hex:
		if v>>32 != 0 {
			return 0, false
		}
		return uint32(v), v != 0
	case V4High:
		if v&0xffffffff != 0 {
			return 0, false
		}
		return uint32(v >> 32), v != 0
	case V4Dotted:
		var out uint32
		for shift := 48; shift >= 0; shift -= 16 {
			g := (v >> uint(shift)) & 0xffff
			// Each group must read as a decimal octet when printed in hex
			// notation, i.e. its hex digits are 0-9 and value <= 0x255 with
			// each nibble <= 9, forming a number <= 255 read as decimal.
			oct, okOct := hexGroupAsDecimalOctet(uint16(g))
			if !okOct {
				return 0, false
			}
			out = out<<8 | uint32(oct)
		}
		return out, out != 0
	default:
		return 0, false
	}
}

// hexGroupAsDecimalOctet interprets a 16-bit group's hex digits as a
// decimal number and reports whether it is a valid IPv4 octet. For
// example group 0x0192 reads "192" -> 192, ok; 0x01ab contains non-decimal
// digits -> not ok; 0x0300 reads "300" -> out of range.
func hexGroupAsDecimalOctet(g uint16) (byte, bool) {
	val := 0
	for shift := 12; shift >= 0; shift -= 4 {
		d := int(g>>uint(shift)) & 0xf
		if d > 9 {
			return 0, false
		}
		val = val*10 + d
	}
	if val > 255 {
		return 0, false
	}
	return byte(val), true
}

// V4AnyCandidate returns the candidate IPv4 values for all three encodings
// that structurally fit this IID.
func (iid IID) V4AnyCandidate() []uint32 {
	var out []uint32
	for _, e := range []V4Embedding{V4Hex, V4Dotted, V4High} {
		if v4, ok := iid.V4MappedCandidate(e); ok {
			out = append(out, v4)
		}
	}
	return out
}
