package addr

import (
	"testing"
	"testing/quick"
)

func TestEUI64KnownVector(t *testing.T) {
	// RFC 4291 App. A example: MAC 00:00:5E:10:00:52 ->
	// IID 0200:5EFF:FE10:0052 (U/L bit inverted, FFFE inserted).
	m := MAC{0x00, 0x00, 0x5e, 0x10, 0x00, 0x52}
	iid := EUI64FromMAC(m)
	if uint64(iid) != 0x02005efffe100052 {
		t.Fatalf("EUI64FromMAC: got %016x", uint64(iid))
	}
	if !iid.IsEUI64() {
		t.Fatal("IsEUI64 false for constructed EUI-64")
	}
	back, err := MACFromEUI64(iid)
	if err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Fatalf("round trip: got %v want %v", back, m)
	}
}

func TestEUI64RoundTripProperty(t *testing.T) {
	f := func(m MAC) bool {
		iid := EUI64FromMAC(m)
		if !iid.IsEUI64() {
			return false
		}
		back, err := MACFromEUI64(iid)
		return err == nil && back == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsEUI64Negative(t *testing.T) {
	for _, v := range []uint64{0, 1, 0xdeadbeefcafef00d, 0x02005eff_fd100052} {
		if IID(v).IsEUI64() {
			t.Errorf("IID %016x should not be EUI-64", v)
		}
	}
	if _, err := MACFromEUI64(IID(42)); err == nil {
		t.Error("MACFromEUI64 should fail on non-EUI-64 IID")
	}
}

func TestEUI64Addr(t *testing.T) {
	p := MustParse("2001:db8:1:2::").P64()
	m := MAC{0xa8, 0xaa, 0x20, 0x01, 0x02, 0x03}
	a := EUI64Addr(p, m)
	if a.P64() != p {
		t.Error("prefix not preserved")
	}
	got, err := MACFromEUI64(a.IID())
	if err != nil || got != m {
		t.Errorf("MAC recovery: got %v err %v", got, err)
	}
	// The U/L inversion must show in the textual address: a8 ^ 02 = aa.
	if a.String() != "2001:db8:1:2:aaaa:20ff:fe01:203" {
		t.Errorf("unexpected address %q", a)
	}
}

func TestMACFlags(t *testing.T) {
	if (MAC{0x00, 0, 0, 0, 0, 0}).IsLocal() {
		t.Error("universal MAC reported local")
	}
	if !(MAC{0x02, 0, 0, 0, 0, 0}).IsLocal() {
		t.Error("local MAC not reported local")
	}
	if !(MAC{0x01, 0, 0, 0, 0, 0}).IsMulticast() {
		t.Error("multicast bit not detected")
	}
}

func TestMACStrings(t *testing.T) {
	m := MAC{0xf0, 0x02, 0x20, 0xab, 0xcd, 0xef}
	if got := m.String(); got != "f0:02:20:ab:cd:ef" {
		t.Errorf("MAC String: %q", got)
	}
	if got := m.OUI().String(); got != "F0:02:20" {
		t.Errorf("OUI String: %q", got)
	}
}

func TestNICSuffixOffsets(t *testing.T) {
	m := MAC{0, 1, 2, 0x00, 0x00, 0x10}
	if m.NICSuffix() != 0x10 {
		t.Fatalf("NICSuffix: got %x", m.NICSuffix())
	}
	plus := m.AddOffset(5)
	if plus.NICSuffix() != 0x15 {
		t.Errorf("AddOffset(+5): got %x", plus.NICSuffix())
	}
	if plus.OUI() != m.OUI() {
		t.Error("AddOffset changed the OUI")
	}
	minus := m.AddOffset(-0x20)
	// 0x10 - 0x20 wraps mod 2^24.
	if minus.NICSuffix() != 0xfffff0 {
		t.Errorf("AddOffset(-0x20): got %x", minus.NICSuffix())
	}
	if got := m.SuffixOffset(plus); got != 5 {
		t.Errorf("SuffixOffset: got %d want 5", got)
	}
	if got := plus.SuffixOffset(m); got != -5 {
		t.Errorf("SuffixOffset reverse: got %d want -5", got)
	}
}

func TestSuffixOffsetProperty(t *testing.T) {
	f := func(m MAC, off int32) bool {
		off %= 1 << 22 // stay within the wrap-free band
		shifted := m.AddOffset(off)
		return m.SuffixOffset(shifted) == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
