// Package addr implements the IPv6 address machinery the paper's analyses
// are built on: a compact 128-bit address value type, Interface Identifier
// (IID) extraction, EUI-64 encoding and MAC recovery, IPv4-embedded address
// detection, nibble-level normalized Shannon entropy, prefix arithmetic for
// the /32–/64 aggregations the paper uses, and the seven addressing
// categories of Figure 5.
//
// Addr is a value type ([16]byte under the hood) so it can key maps without
// allocation, following the fixed-size-endpoint idiom used by high-volume
// packet processing libraries.
package addr

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv6 address as a comparable 16-byte value.
type Addr [16]byte

// MAC is a 48-bit IEEE 802 MAC address as a comparable value type.
type MAC [6]byte

// Parse parses an IPv6 address in any RFC 4291 textual form (full,
// compressed with "::", embedded IPv4 dotted-quad suffix).
func Parse(s string) (Addr, error) {
	var a Addr
	if s == "" {
		return a, fmt.Errorf("addr: empty address")
	}
	// Handle the optional zone (rejected) and surrounding brackets.
	if strings.ContainsAny(s, "%[]") {
		return a, fmt.Errorf("addr: zones/brackets not supported: %q", s)
	}
	// Split on "::" (at most one allowed).
	var headStr, tailStr string
	switch parts := strings.Split(s, "::"); len(parts) {
	case 1:
		headStr = parts[0]
	case 2:
		headStr, tailStr = parts[0], parts[1]
	default:
		return a, fmt.Errorf("addr: multiple '::' in %q", s)
	}
	hasGap := strings.Contains(s, "::")

	parseGroups := func(str string, allowV4 bool) ([]uint16, error) {
		if str == "" {
			return nil, nil
		}
		fields := strings.Split(str, ":")
		out := make([]uint16, 0, len(fields)+1)
		for i, f := range fields {
			if strings.Contains(f, ".") {
				// Embedded IPv4: must be the final field of the address.
				if !allowV4 || i != len(fields)-1 {
					return nil, fmt.Errorf("addr: misplaced IPv4 in %q", s)
				}
				v4, err := parseIPv4(f)
				if err != nil {
					return nil, err
				}
				out = append(out, uint16(v4>>16), uint16(v4&0xffff))
				continue
			}
			if f == "" {
				return nil, fmt.Errorf("addr: empty group in %q", s)
			}
			if len(f) > 4 {
				return nil, fmt.Errorf("addr: group too long in %q", s)
			}
			v, err := strconv.ParseUint(f, 16, 16)
			if err != nil {
				return nil, fmt.Errorf("addr: bad group %q in %q", f, s)
			}
			out = append(out, uint16(v))
		}
		return out, nil
	}

	head, err := parseGroups(headStr, !hasGap)
	if err != nil {
		return a, err
	}
	tail, err := parseGroups(tailStr, true)
	if err != nil {
		return a, err
	}
	total := len(head) + len(tail)
	if hasGap {
		if total >= 8 {
			return a, fmt.Errorf("addr: '::' with full groups in %q", s)
		}
	} else if total != 8 {
		return a, fmt.Errorf("addr: need 8 groups, got %d in %q", total, s)
	}
	for i, g := range head {
		a[2*i] = byte(g >> 8)
		a[2*i+1] = byte(g)
	}
	for i, g := range tail {
		pos := 8 - len(tail) + i
		a[2*pos] = byte(g >> 8)
		a[2*pos+1] = byte(g)
	}
	return a, nil
}

func parseIPv4(s string) (uint32, error) {
	octets := strings.Split(s, ".")
	if len(octets) != 4 {
		return 0, fmt.Errorf("addr: bad IPv4 %q", s)
	}
	var v uint32
	for _, o := range octets {
		n, err := strconv.ParseUint(o, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("addr: bad IPv4 octet %q", o)
		}
		v = v<<8 | uint32(n)
	}
	return v, nil
}

// MustParse is Parse that panics on error; for tests and literals.
func MustParse(s string) Addr {
	a, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String renders the address in canonical RFC 5952 form (lowercase,
// longest run of zero groups compressed, ties to the leftmost run, runs of
// length one not compressed).
func (a Addr) String() string {
	var groups [8]uint16
	for i := range groups {
		groups[i] = uint16(a[2*i])<<8 | uint16(a[2*i+1])
	}
	// Find longest run of zero groups (length >= 2).
	bestStart, bestLen := -1, 1
	runStart, runLen := -1, 0
	for i := 0; i <= 8; i++ {
		if i < 8 && groups[i] == 0 {
			if runStart < 0 {
				runStart, runLen = i, 0
			}
			runLen++
			continue
		}
		if runStart >= 0 && runLen > bestLen {
			bestStart, bestLen = runStart, runLen
		}
		runStart, runLen = -1, 0
	}
	var b strings.Builder
	for i := 0; i < 8; i++ {
		if i == bestStart {
			b.WriteString("::")
			i += bestLen - 1
			continue
		}
		if i > 0 && !(bestStart >= 0 && i == bestStart+bestLen) {
			b.WriteByte(':')
		}
		b.WriteString(strconv.FormatUint(uint64(groups[i]), 16))
	}
	if bestStart == 0 && bestLen == 8 {
		return "::"
	}
	s := b.String()
	return s
}

// Hi returns the upper 64 bits (the network portion).
func (a Addr) Hi() uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(a[i])
	}
	return v
}

// Lo returns the lower 64 bits (the Interface Identifier).
func (a Addr) Lo() uint64 {
	var v uint64
	for i := 8; i < 16; i++ {
		v = v<<8 | uint64(a[i])
	}
	return v
}

// FromParts builds an address from 64-bit network and IID halves.
func FromParts(hi, lo uint64) Addr {
	var a Addr
	for i := 7; i >= 0; i-- {
		a[i] = byte(hi)
		hi >>= 8
	}
	for i := 15; i >= 8; i-- {
		a[i] = byte(lo)
		lo >>= 8
	}
	return a
}

// IID is the lower 64 bits of an IPv6 address as a comparable value.
type IID uint64

// IID returns the address's Interface Identifier.
func (a Addr) IID() IID { return IID(a.Lo()) }

// IsZero reports whether the address is all zeros ("::").
func (a Addr) IsZero() bool { return a == Addr{} }

// Less reports whether a sorts before b in canonical (numeric) order:
// the one definition of "sorted addresses" shared by the collector's
// canonical encoding, dataset serialization and deterministic campaign
// ordering.
func (a Addr) Less(b Addr) bool {
	if ha, hb := a.Hi(), b.Hi(); ha != hb {
		return ha < hb
	}
	return a.Lo() < b.Lo()
}

// WithIID returns a copy of the address with its lower 64 bits replaced.
func (a Addr) WithIID(iid IID) Addr { return FromParts(a.Hi(), uint64(iid)) }
