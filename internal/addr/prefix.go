package addr

import (
	"fmt"
	"strconv"
	"strings"
)

// Prefix is an IPv6 CIDR prefix with length 0–128. The address is stored
// masked, so two Prefix values describing the same network compare equal
// and may be used as map keys.
type Prefix struct {
	addr Addr
	bits uint8
}

// NewPrefix masks a to bits and returns the resulting prefix.
func NewPrefix(a Addr, bits int) (Prefix, error) {
	if bits < 0 || bits > 128 {
		return Prefix{}, fmt.Errorf("addr: invalid prefix length %d", bits)
	}
	return Prefix{addr: Mask(a, bits), bits: uint8(bits)}, nil
}

// MustPrefix is NewPrefix that panics on error.
func MustPrefix(a Addr, bits int) Prefix {
	p, err := NewPrefix(a, bits)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses "2001:db8::/32" notation.
func ParsePrefix(s string) (Prefix, error) {
	i := strings.LastIndexByte(s, '/')
	if i < 0 {
		return Prefix{}, fmt.Errorf("addr: missing '/' in prefix %q", s)
	}
	a, err := Parse(s[:i])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return Prefix{}, fmt.Errorf("addr: bad prefix length in %q", s)
	}
	return NewPrefix(a, bits)
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Addr returns the masked base address of the prefix.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns the prefix length.
func (p Prefix) Bits() int { return int(p.bits) }

// String renders CIDR notation.
func (p Prefix) String() string {
	return p.addr.String() + "/" + strconv.Itoa(int(p.bits))
}

// Contains reports whether a falls inside the prefix.
func (p Prefix) Contains(a Addr) bool {
	return Mask(a, int(p.bits)) == p.addr
}

// Overlaps reports whether two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.bits <= q.bits {
		return p.Contains(q.addr)
	}
	return q.Contains(p.addr)
}

// Mask zeroes all but the first bits bits of a.
func Mask(a Addr, bits int) Addr {
	if bits >= 128 {
		return a
	}
	if bits <= 0 {
		return Addr{}
	}
	fullBytes := bits / 8
	rem := bits % 8
	var out Addr
	copy(out[:fullBytes], a[:fullBytes])
	if rem > 0 {
		out[fullBytes] = a[fullBytes] & (byte(0xff) << (8 - rem))
	}
	return out
}

// Prefix64 and Prefix48 are comparable keys for the aggregation levels the
// paper uses constantly: per-/64 (customer subnet) and per-/48 (release
// granularity). They are the upper bits of the address packed in a uint64
// for compactness; a /48 key has its low 16 bits zero.
type (
	Prefix64 uint64 // upper 64 bits of the address
	Prefix48 uint64 // upper 48 bits, shifted left 16
)

// P64 returns the address's /64 key.
func (a Addr) P64() Prefix64 { return Prefix64(a.Hi()) }

// P48 returns the address's /48 key.
func (a Addr) P48() Prefix48 { return Prefix48(a.Hi() &^ 0xffff) }

// P48 returns the /48 containing the /64.
func (p Prefix64) P48() Prefix48 { return Prefix48(uint64(p) &^ 0xffff) }

// Addr returns the base address (::) of the /64.
func (p Prefix64) Addr() Addr { return FromParts(uint64(p), 0) }

// Addr returns the base address of the /48.
func (p Prefix48) Addr() Addr { return FromParts(uint64(p), 0) }

// Prefix returns the /64 as a generic Prefix.
func (p Prefix64) Prefix() Prefix { return MustPrefix(p.Addr(), 64) }

// Prefix returns the /48 as a generic Prefix.
func (p Prefix48) Prefix() Prefix { return MustPrefix(p.Addr(), 48) }

// String renders the /64 in CIDR notation.
func (p Prefix64) String() string { return p.Prefix().String() }

// String renders the /48 in CIDR notation.
func (p Prefix48) String() string { return p.Prefix().String() }
