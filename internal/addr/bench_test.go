package addr

import (
	"math/rand"
	"testing"
)

func benchAddrs(n int) []Addr {
	rng := rand.New(rand.NewSource(1))
	out := make([]Addr, n)
	for i := range out {
		out[i] = FromParts(rng.Uint64(), rng.Uint64())
	}
	return out
}

func BenchmarkParse(b *testing.B) {
	cases := []string{
		"2001:db8::1",
		"2001:db8:abcd:ef01:2345:6789:abcd:ef01",
		"::ffff:192.168.1.1",
		"fe80::200:5aee:feaa:20a2",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(cases[i%len(cases)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkString(b *testing.B) {
	addrs := benchAddrs(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = addrs[i%len(addrs)].String()
	}
}

func BenchmarkNormalizedEntropy(b *testing.B) {
	addrs := benchAddrs(1024)
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += addrs[i%len(addrs)].IID().NormalizedEntropy()
	}
	_ = acc
}

func BenchmarkEUI64RoundTrip(b *testing.B) {
	m := MAC{0xc8, 0x0e, 0x14, 1, 2, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iid := EUI64FromMAC(m)
		got, err := MACFromEUI64(iid)
		if err != nil || got != m {
			b.Fatal("round trip failed")
		}
	}
}

func BenchmarkStructuralCategory(b *testing.B) {
	addrs := benchAddrs(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = addrs[i%len(addrs)].IID().StructuralCategory()
	}
}

func BenchmarkP48(b *testing.B) {
	addrs := benchAddrs(1024)
	b.ResetTimer()
	var acc Prefix48
	for i := 0; i < b.N; i++ {
		acc ^= addrs[i%len(addrs)].P48()
	}
	_ = acc
}
