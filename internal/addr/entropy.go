package addr

import "hitlist6/internal/stats"

// The paper measures IID randomness as the normalized Shannon entropy of
// the IID's sixteen hex nibbles (alphabet size 16, so the normalizer is
// log2(16) = 4 bits). A fully random IID tends toward 1.0; an operator
// IID like ::1 is near 0. The paper's Figure 4 caveat applies: entropy is
// an imperfect randomness proxy (0123:4567:89ab:cdef scores 1.0).

// EntropyClass buckets IIDs the way Figures 2(b), 4 and 5 do.
type EntropyClass uint8

const (
	// LowEntropy is normalized entropy < 0.25.
	LowEntropy EntropyClass = iota
	// MediumEntropy is 0.25 <= e <= 0.75.
	MediumEntropy
	// HighEntropy is e > 0.75.
	HighEntropy
)

// String names the class as the paper's figure legends do.
func (c EntropyClass) String() string {
	switch c {
	case LowEntropy:
		return "Low IID Entropy (< 0.25)"
	case MediumEntropy:
		return "Medium IID Entropy (0.25 <= x <= 0.75)"
	case HighEntropy:
		return "High IID Entropy (> 0.75)"
	default:
		return "Unknown"
	}
}

// ClassOf buckets a normalized entropy value.
func ClassOf(e float64) EntropyClass {
	switch {
	case e < 0.25:
		return LowEntropy
	case e <= 0.75:
		return MediumEntropy
	default:
		return HighEntropy
	}
}

// NormalizedEntropy returns the normalized Shannon entropy of the IID's 16
// nibbles, in [0, 1].
func (iid IID) NormalizedEntropy() float64 {
	var counts [16]int
	v := uint64(iid)
	for i := 0; i < 16; i++ {
		counts[v&0xf]++
		v >>= 4
	}
	return stats.NormalizedEntropy(counts[:], 16)
}

// EntropyClass buckets the IID's normalized entropy.
func (iid IID) EntropyClass() EntropyClass {
	return ClassOf(iid.NormalizedEntropy())
}

// NibbleCounts returns the IID's nibble histogram; exposed for the ablation
// benchmarks comparing entropy implementations.
func (iid IID) NibbleCounts() [16]int {
	var counts [16]int
	v := uint64(iid)
	for i := 0; i < 16; i++ {
		counts[v&0xf]++
		v >>= 4
	}
	return counts
}
