package addr

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestParseCanonical(t *testing.T) {
	cases := []struct{ in, want string }{
		{"::", "::"},
		{"::1", "::1"},
		{"2001:db8::", "2001:db8::"},
		{"2001:0db8:0000:0000:0000:0000:0000:0001", "2001:db8::1"},
		{"2001:db8:0:0:1:0:0:1", "2001:db8::1:0:0:1"},
		{"fe80::200:5aee:feaa:20a2", "fe80::200:5aee:feaa:20a2"},
		{"2001:DB8::A", "2001:db8::a"},
		{"1:2:3:4:5:6:7:8", "1:2:3:4:5:6:7:8"},
		{"::ffff:192.168.1.1", "::ffff:c0a8:101"},
		{"64:ff9b::1.2.3.4", "64:ff9b::102:304"},
		{"0:0:0:0:0:0:0:0", "::"},
	}
	for _, c := range cases {
		a, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := a.String(); got != c.want {
			t.Errorf("Parse(%q).String(): got %q want %q", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", ":::", "1:2:3", "1:2:3:4:5:6:7:8:9", "g::1", "12345::",
		"1::2::3", "::1%eth0", "[::1]", "1.2.3.4", "::256.1.1.1",
		"::1.2.3", "1.2.3.4::1", "2001:db8:::1",
		"1:2:3:4:5:6:7:8::", "::1:2:3:4:5:6:7:8",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): expected error", s)
		}
	}
}

// TestParseAgainstNetip cross-validates our parser/formatter against the
// standard library on randomized addresses.
func TestParseAgainstNetip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		var raw [16]byte
		rng.Read(raw[:])
		// Inject zero runs to exercise compression.
		if i%3 == 0 {
			start := rng.Intn(12)
			n := rng.Intn(16 - start)
			for j := start; j < start+n; j++ {
				raw[j] = 0
			}
		}
		std := netip.AddrFrom16(raw)
		var a Addr = raw
		if got, want := a.String(), std.String(); got != want {
			t.Fatalf("format mismatch for %x: got %q want %q", raw, got, want)
		}
		back, err := Parse(std.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", std.String(), err)
		}
		if back != a {
			t.Fatalf("round trip mismatch for %q", std.String())
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	f := func(raw [16]byte) bool {
		var a Addr = raw
		b, err := Parse(a.String())
		return err == nil && b == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHiLoFromParts(t *testing.T) {
	a := MustParse("2001:db8:1:2:a:b:c:d")
	if a.Hi() != 0x20010db800010002 {
		t.Errorf("Hi: got %x", a.Hi())
	}
	if a.Lo() != 0x000a000b000c000d {
		t.Errorf("Lo: got %x", a.Lo())
	}
	if FromParts(a.Hi(), a.Lo()) != a {
		t.Error("FromParts round trip failed")
	}
}

func TestFromPartsProperty(t *testing.T) {
	f := func(hi, lo uint64) bool {
		a := FromParts(hi, lo)
		return a.Hi() == hi && a.Lo() == lo && a.IID() == IID(lo)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWithIID(t *testing.T) {
	a := MustParse("2001:db8::1")
	b := a.WithIID(IID(0xdeadbeefcafef00d))
	if b.Hi() != a.Hi() {
		t.Error("WithIID changed the network half")
	}
	if uint64(b.IID()) != 0xdeadbeefcafef00d {
		t.Errorf("IID: got %x", b.IID())
	}
}

func TestIsZero(t *testing.T) {
	if !MustParse("::").IsZero() {
		t.Error(":: should be zero")
	}
	if MustParse("::1").IsZero() {
		t.Error("::1 should not be zero")
	}
}

func TestMaskAndPrefix(t *testing.T) {
	a := MustParse("2001:db8:abcd:ef01:2345:6789:abcd:ef01")
	cases := []struct {
		bits int
		want string
	}{
		{0, "::"},
		{16, "2001::"},
		{32, "2001:db8::"},
		{48, "2001:db8:abcd::"},
		{52, "2001:db8:abcd:e000::"},
		{64, "2001:db8:abcd:ef01::"},
		{128, "2001:db8:abcd:ef01:2345:6789:abcd:ef01"},
	}
	for _, c := range cases {
		if got := Mask(a, c.bits).String(); got != c.want {
			t.Errorf("Mask(%d): got %q want %q", c.bits, got, c.want)
		}
	}
}

func TestPrefixParseContains(t *testing.T) {
	p := MustParsePrefix("2001:db8::/32")
	if p.Bits() != 32 {
		t.Errorf("bits: got %d", p.Bits())
	}
	if !p.Contains(MustParse("2001:db8:ffff::1")) {
		t.Error("should contain 2001:db8:ffff::1")
	}
	if p.Contains(MustParse("2001:db9::1")) {
		t.Error("should not contain 2001:db9::1")
	}
	if got := p.String(); got != "2001:db8::/32" {
		t.Errorf("String: got %q", got)
	}
}

func TestPrefixMaskedEquality(t *testing.T) {
	p1 := MustParsePrefix("2001:db8::1/32")
	p2 := MustParsePrefix("2001:db8:ffff::/32")
	if p1 != p2 {
		t.Error("prefixes covering the same network should compare equal")
	}
}

func TestPrefixErrors(t *testing.T) {
	for _, s := range []string{"2001:db8::", "2001:db8::/129", "2001:db8::/-1", "2001:db8::/x", "nonsense/32"} {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q): expected error", s)
		}
	}
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustParsePrefix("2001:db8::/32")
	b := MustParsePrefix("2001:db8:1::/48")
	c := MustParsePrefix("2001:db9::/32")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes should overlap")
	}
	if a.Overlaps(c) {
		t.Error("disjoint prefixes should not overlap")
	}
}

func TestP64P48(t *testing.T) {
	a := MustParse("2001:db8:abcd:ef01::42")
	if got := a.P64().String(); got != "2001:db8:abcd:ef01::/64" {
		t.Errorf("P64: got %q", got)
	}
	if got := a.P48().String(); got != "2001:db8:abcd::/48" {
		t.Errorf("P48: got %q", got)
	}
	if a.P64().P48() != a.P48() {
		t.Error("P64 -> P48 disagreement")
	}
	if !a.P48().Prefix().Contains(a) {
		t.Error("P48 prefix should contain the address")
	}
}

func TestP48GroupsSiblings(t *testing.T) {
	a := MustParse("2001:db8:abcd:0001::1")
	b := MustParse("2001:db8:abcd:ff00::2")
	c := MustParse("2001:db8:abce::1")
	if a.P48() != b.P48() {
		t.Error("same /48 expected")
	}
	if a.P48() == c.P48() {
		t.Error("different /48 expected")
	}
}
