package addr

import "fmt"

// ParseBytes is Parse for a byte slice, built for the wire-speed ingest
// path: it decodes an IPv6 address straight out of packet bytes with no
// string conversion and no allocation on any accepted input (errors, a
// reject-path-only cost, may allocate their message). The accepted
// grammar is byte-for-byte identical to Parse's — FuzzParseBytes pins
// that the two parsers agree on accept/reject and on the decoded value
// for every input — so the two can never drift apart.
//
// The implementation walks the bytes once per region (head groups, gap,
// tail groups) with fixed-size group buffers instead of strings.Split's
// intermediate slices.
func ParseBytes(b []byte) (Addr, error) {
	var a Addr
	if len(b) == 0 {
		return a, fmt.Errorf("addr: empty address")
	}
	// Zones and brackets are rejected wholesale, as in Parse. These are
	// ASCII bytes, so a byte scan is exact even on UTF-8 input.
	for _, c := range b {
		if c == '%' || c == '[' || c == ']' {
			return a, fmt.Errorf("addr: zones/brackets not supported: %q", b)
		}
	}
	// Locate the "::" gap with strings.Split's non-overlapping scan:
	// the first occurrence splits; a second occurrence in the remainder
	// means three-plus parts, which Parse rejects.
	gap := -1
	for i := 0; i+1 < len(b); i++ {
		if b[i] == ':' && b[i+1] == ':' {
			if gap < 0 {
				gap = i
				i++ // continue the scan after the matched pair
				continue
			}
			return a, fmt.Errorf("addr: multiple '::' in %q", b)
		}
	}
	head, tail := b, []byte(nil)
	hasGap := gap >= 0
	if hasGap {
		head, tail = b[:gap], b[gap+2:]
	}

	var hg, tg [8]uint16
	hn, err := parseGroupsBytes(head, b, !hasGap, &hg)
	if err != nil {
		return a, err
	}
	tn, err := parseGroupsBytes(tail, b, true, &tg)
	if err != nil {
		return a, err
	}
	total := hn + tn
	if hasGap {
		if total >= 8 {
			return a, fmt.Errorf("addr: '::' with full groups in %q", b)
		}
	} else if total != 8 {
		return a, fmt.Errorf("addr: need 8 groups, got %d in %q", total, b)
	}
	for i := 0; i < hn; i++ {
		a[2*i] = byte(hg[i] >> 8)
		a[2*i+1] = byte(hg[i])
	}
	for i := 0; i < tn; i++ {
		pos := 8 - tn + i
		a[2*pos] = byte(tg[i] >> 8)
		a[2*pos+1] = byte(tg[i])
	}
	return a, nil
}

// parseGroupsBytes parses a colon-separated group list into dst and
// returns the group count. allowV4 permits a dotted-quad as the final
// field (consuming two groups), mirroring Parse's parseGroups. whole is
// the full address, for error text only.
func parseGroupsBytes(s, whole []byte, allowV4 bool, dst *[8]uint16) (int, error) {
	if len(s) == 0 {
		return 0, nil
	}
	n := 0
	start := 0
	for {
		end := start
		dotted := false
		for end < len(s) && s[end] != ':' {
			if s[end] == '.' {
				dotted = true
			}
			end++
		}
		f := s[start:end]
		last := end == len(s)
		if dotted {
			// Embedded IPv4: must be the final field of the region.
			if !allowV4 || !last {
				return 0, fmt.Errorf("addr: misplaced IPv4 in %q", whole)
			}
			v4, err := parseIPv4Bytes(f)
			if err != nil {
				return 0, err
			}
			if n+2 > 8 {
				return 0, fmt.Errorf("addr: need 8 groups, got more in %q", whole)
			}
			dst[n] = uint16(v4 >> 16)
			dst[n+1] = uint16(v4)
			n += 2
		} else {
			if len(f) == 0 {
				return 0, fmt.Errorf("addr: empty group in %q", whole)
			}
			if len(f) > 4 {
				return 0, fmt.Errorf("addr: group too long in %q", whole)
			}
			var v uint32
			for _, c := range f {
				d := hexDigit(c)
				if d < 0 {
					return 0, fmt.Errorf("addr: bad group %q in %q", f, whole)
				}
				v = v<<4 | uint32(d)
			}
			if n >= 8 {
				return 0, fmt.Errorf("addr: need 8 groups, got more in %q", whole)
			}
			dst[n] = uint16(v)
			n++
		}
		if last {
			return n, nil
		}
		start = end + 1
	}
}

// parseIPv4Bytes decodes a dotted-quad exactly as Parse's parseIPv4
// does via strconv.ParseUint(octet, 10, 8): exactly four octets, digits
// only, any number of leading zeros, value at most 255.
func parseIPv4Bytes(f []byte) (uint32, error) {
	var v uint32
	octets := 0
	start := 0
	for i := 0; i <= len(f); i++ {
		if i < len(f) && f[i] != '.' {
			continue
		}
		o := f[start:i]
		start = i + 1
		octets++
		if octets > 4 || len(o) == 0 {
			return 0, fmt.Errorf("addr: bad IPv4 %q", f)
		}
		var n uint32
		for _, c := range o {
			if c < '0' || c > '9' {
				return 0, fmt.Errorf("addr: bad IPv4 octet %q", o)
			}
			n = n*10 + uint32(c-'0')
			if n > 255 {
				return 0, fmt.Errorf("addr: bad IPv4 octet %q", o)
			}
		}
		v = v<<8 | n
	}
	if octets != 4 {
		return 0, fmt.Errorf("addr: bad IPv4 %q", f)
	}
	return v, nil
}

// hexDigit returns the value of an ASCII hex digit, or -1. Exactly the
// digit set strconv.ParseUint(s, 16, 16) accepts: 0-9, a-f, A-F.
func hexDigit(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}
