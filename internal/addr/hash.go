package addr

import "math/bits"

// murmurMix is the Murmur3/SplitMix-style 64-bit finalizer used to
// spread structured address bits.
func murmurMix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Hash64 returns a well-mixed 64-bit hash of the full 128-bit address:
// both halves pass through the finalizer and combine with a rotate so
// structured networks (low-entropy IIDs, shared prefixes) still spread
// uniformly. It is the one address hash shared by consumers that need
// dispersion — HLL cardinality sketching, ingest shard selection.
func (a Addr) Hash64() uint64 {
	return murmurMix(a.Hi()) ^ bits.RotateLeft64(murmurMix(a.Lo()), 31)
}
