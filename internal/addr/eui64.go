package addr

import "fmt"

// EUI-64 SLAAC embeds a MAC address into an IID by inserting 0xFF 0xFE
// between the third and fourth bytes of the MAC and inverting the
// Universal/Local bit (bit 1, i.e. the second-least-significant bit) of the
// first byte. The paper exploits exactly this reversible construction for
// tracking (§5.2) and geolocation (§5.3).

// ulBit is the Universal/Local bit within the first MAC byte.
const ulBit = 0x02

// EUI64FromMAC builds the 64-bit IID for a MAC per RFC 4291 App. A.
func EUI64FromMAC(m MAC) IID {
	b0 := m[0] ^ ulBit
	return IID(uint64(b0)<<56 | uint64(m[1])<<48 | uint64(m[2])<<40 |
		0xff<<32 | 0xfe<<24 |
		uint64(m[3])<<16 | uint64(m[4])<<8 | uint64(m[5]))
}

// IsEUI64 reports whether the IID has the 0xFFFE marker in bytes 4–5 of the
// IID (bytes 11–12 of the address). A randomly generated IID matches with
// probability 2^-16, which the paper's §5.1 explicitly accounts for.
func (iid IID) IsEUI64() bool {
	return uint64(iid)>>24&0xffff == 0xfffe
}

// MACFromEUI64 recovers the embedded MAC from an EUI-64 IID. It returns an
// error when the IID lacks the 0xFFFE marker.
func MACFromEUI64(iid IID) (MAC, error) {
	if !iid.IsEUI64() {
		return MAC{}, fmt.Errorf("addr: IID %016x is not EUI-64", uint64(iid))
	}
	v := uint64(iid)
	return MAC{
		byte(v>>56) ^ ulBit,
		byte(v >> 48),
		byte(v >> 40),
		byte(v >> 16),
		byte(v >> 8),
		byte(v),
	}, nil
}

// EUI64Addr builds a full address from a /64 prefix and a MAC.
func EUI64Addr(p Prefix64, m MAC) Addr {
	return FromParts(uint64(p), uint64(EUI64FromMAC(m)))
}

// OUI is the 24-bit Organizationally Unique Identifier: the vendor-assigned
// first three bytes of a MAC address.
type OUI [3]byte

// OUI returns the MAC's vendor prefix.
func (m MAC) OUI() OUI { return OUI{m[0], m[1], m[2]} }

// IsLocal reports whether the MAC has the locally-administered bit set
// (such addresses are not vendor-assigned and resolve to no OUI).
func (m MAC) IsLocal() bool { return m[0]&ulBit != 0 }

// IsMulticast reports whether the MAC's group bit is set.
func (m MAC) IsMulticast() bool { return m[0]&0x01 != 0 }

// String renders the MAC in colon-separated lowercase hex.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// String renders the OUI in colon-separated uppercase hex, the IEEE
// registry convention.
func (o OUI) String() string {
	return fmt.Sprintf("%02X:%02X:%02X", o[0], o[1], o[2])
}

// NICSuffix returns the device-specific lower 24 bits of the MAC as an
// integer, used by the geolocation offset-linkage analysis.
func (m MAC) NICSuffix() uint32 {
	return uint32(m[3])<<16 | uint32(m[4])<<8 | uint32(m[5])
}

// WithNICSuffix returns a MAC with the same OUI and the given 24-bit
// device suffix.
func (m MAC) WithNICSuffix(suffix uint32) MAC {
	return MAC{m[0], m[1], m[2], byte(suffix >> 16), byte(suffix >> 8), byte(suffix)}
}

// AddOffset returns the MAC whose 24-bit NIC suffix differs by off
// (mod 2^24), keeping the OUI fixed. Vendors commonly assign the wired and
// wireless interfaces of one device nearby suffixes within the same OUI;
// this is the structure the Rye–Beverly geolocation linkage exploits.
func (m MAC) AddOffset(off int32) MAC {
	s := int64(m.NICSuffix()) + int64(off)
	const mod = 1 << 24
	s = ((s % mod) + mod) % mod
	return m.WithNICSuffix(uint32(s))
}

// SuffixOffset returns the signed difference to.NICSuffix()-m.NICSuffix()
// wrapped to the range (-2^23, 2^23].
func (m MAC) SuffixOffset(to MAC) int32 {
	d := int64(to.NICSuffix()) - int64(m.NICSuffix())
	const mod = 1 << 24
	if d > mod/2 {
		d -= mod
	}
	if d <= -mod/2 {
		d += mod
	}
	return int32(d)
}
