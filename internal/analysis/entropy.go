// Package analysis computes the paper's evaluation artifacts from built
// datasets and collectors: the Table 1 dataset comparison, the entropy
// CDFs of Figures 1, 3 and 4, the lifetime distributions of Figure 2, and
// the seven-category addressing breakdown of Figure 5.
package analysis

import (
	"sort"

	"hitlist6/internal/addr"
	"hitlist6/internal/asdb"
	"hitlist6/internal/hitlist"
	"hitlist6/internal/stats"
)

// EntropyDistribution builds the empirical distribution of normalized IID
// Shannon entropy over a dataset (one curve of Figure 1).
func EntropyDistribution(d *hitlist.Dataset) *stats.Distribution {
	samples := make([]float64, 0, d.Len())
	d.Each(func(a addr.Addr) bool {
		samples = append(samples, a.IID().NormalizedEntropy())
		return true
	})
	return stats.NewDistribution(samples)
}

// EntropyDistributionOfIntersection builds the entropy distribution over
// the addresses common to two datasets (Figure 1's "NTP ∩ Hitlist" and
// "NTP ∩ CAIDA" curves).
func EntropyDistributionOfIntersection(a, b *hitlist.Dataset) *stats.Distribution {
	small, large := a, b
	if small.Len() > large.Len() {
		small, large = large, small
	}
	var samples []float64
	small.Each(func(x addr.Addr) bool {
		if large.Contains(x) {
			samples = append(samples, x.IID().NormalizedEntropy())
		}
		return true
	})
	return stats.NewDistribution(samples)
}

// Figure1 bundles the five curves of Figure 1.
type Figure1 struct {
	NTP, Hitlist, CAIDA    *stats.Distribution
	NTPxHitlist, NTPxCAIDA *stats.Distribution
}

// ComputeFigure1 builds every Figure 1 curve.
func ComputeFigure1(ntp, hl, caida *hitlist.Dataset) *Figure1 {
	return &Figure1{
		NTP:         EntropyDistribution(ntp),
		Hitlist:     EntropyDistribution(hl),
		CAIDA:       EntropyDistribution(caida),
		NTPxHitlist: EntropyDistributionOfIntersection(ntp, hl),
		NTPxCAIDA:   EntropyDistributionOfIntersection(ntp, caida),
	}
}

// ASEntropy is one AS's entropy curve with its address count (Figure 4).
type ASEntropy struct {
	ASN   asdb.ASN
	Name  string
	Count int
	Dist  *stats.Distribution
}

// TopASEntropy groups a dataset by origin AS and returns the entropy
// distributions of the topN most-observed ASes, descending by address
// count (Figures 4a and 4b).
func TopASEntropy(d *hitlist.Dataset, db *asdb.DB, topN int) []ASEntropy {
	samplesByAS := make(map[asdb.ASN][]float64)
	d.Each(func(a addr.Addr) bool {
		if asn, ok := db.OriginASN(a); ok {
			samplesByAS[asn] = append(samplesByAS[asn], a.IID().NormalizedEntropy())
		}
		return true
	})
	out := make([]ASEntropy, 0, len(samplesByAS))
	for asn, samples := range samplesByAS {
		e := ASEntropy{ASN: asn, Count: len(samples)}
		if as := db.Get(asn); as != nil {
			e.Name = as.Name
		}
		e.Dist = stats.NewDistribution(samples)
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].ASN < out[j].ASN
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out
}

// ASTypeShare tallies the fraction of a dataset's addresses per ASdb
// type (§4.1's "Phone Provider" comparison).
func ASTypeShare(d *hitlist.Dataset, db *asdb.DB) map[asdb.ASType]float64 {
	counts := make(map[asdb.ASType]int)
	total := 0
	d.Each(func(a addr.Addr) bool {
		if as := db.Lookup(a); as != nil {
			counts[as.Type]++
			total++
		}
		return true
	})
	out := make(map[asdb.ASType]float64, len(counts))
	if total == 0 {
		return out
	}
	for ty, n := range counts {
		out[ty] = float64(n) / float64(total)
	}
	return out
}
