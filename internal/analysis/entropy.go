// Package analysis computes the paper's evaluation artifacts from built
// datasets and collectors: the Table 1 dataset comparison, the entropy
// CDFs of Figures 1, 3 and 4, the lifetime distributions of Figure 2, and
// the seven-category addressing breakdown of Figure 5.
//
// Every computation here is expressed as a fold — accumulate over a
// contiguous range of a dataset's sorted slab (or a collector's record
// slab), then merge partials in range order — so each runs shard-parallel
// on the worker count the caller passes and produces bit-identical
// results at every worker count (see internal/fold). The per-address
// attributes feeding the folds come from a Sidecar, computed once per
// dataset and shared by every figure.
package analysis

import (
	"sort"

	"hitlist6/internal/asdb"
	"hitlist6/internal/fold"
	"hitlist6/internal/hitlist"
	"hitlist6/internal/stats"
)

// EntropyDistribution builds the empirical distribution of normalized IID
// Shannon entropy over a dataset (one curve of Figure 1).
func EntropyDistribution(d *hitlist.Dataset) *stats.Distribution {
	view := d.View()
	samples := make([]float64, len(view))
	for i, a := range view {
		samples[i] = a.IID().NormalizedEntropy()
	}
	return stats.TakeDistribution(samples)
}

// EntropyDist builds the dataset-level entropy distribution from the
// sidecar's precomputed column.
func (sc *Sidecar) EntropyDist() *stats.Distribution {
	// The column stays alive for other consumers; copy before the
	// in-place sort.
	return stats.NewDistribution(sc.Entropy)
}

// EntropyDistributionOfIntersection builds the entropy distribution over
// the addresses common to two datasets (Figure 1's "NTP ∩ Hitlist" and
// "NTP ∩ CAIDA" curves): a linear merge of the two sorted slabs.
func EntropyDistributionOfIntersection(a, b *hitlist.Dataset) *stats.Distribution {
	av := a.View()
	var samples []float64
	hitlist.EachCommon(a, b, func(ai, _ int) bool {
		samples = append(samples, av[ai].IID().NormalizedEntropy())
		return true
	})
	return stats.TakeDistribution(samples)
}

// intersectionEntropy is EntropyDistributionOfIntersection reading the
// entropy from a's sidecar column instead of recomputing it.
func intersectionEntropy(a, b *Sidecar) *stats.Distribution {
	var samples []float64
	hitlist.EachCommon(a.D, b.D, func(ai, _ int) bool {
		samples = append(samples, a.Entropy[ai])
		return true
	})
	return stats.TakeDistribution(samples)
}

// Figure1 bundles the five curves of Figure 1.
type Figure1 struct {
	NTP, Hitlist, CAIDA    *stats.Distribution
	NTPxHitlist, NTPxCAIDA *stats.Distribution
}

// ComputeFigure1 builds every Figure 1 curve.
func ComputeFigure1(ntp, hl, caida *hitlist.Dataset) *Figure1 {
	return ComputeFigure1Sidecar(
		BuildSidecar(ntp, nil, 1),
		BuildSidecar(hl, nil, 1),
		BuildSidecar(caida, nil, 1), 1)
}

// ComputeFigure1Sidecar builds the Figure 1 curves from prebuilt
// sidecars, the five curves in parallel.
func ComputeFigure1Sidecar(ntp, hl, caida *Sidecar, workers int) *Figure1 {
	f := &Figure1{}
	fold.Each(workers,
		func() { f.NTP = ntp.EntropyDist() },
		func() { f.Hitlist = hl.EntropyDist() },
		func() { f.CAIDA = caida.EntropyDist() },
		func() { f.NTPxHitlist = intersectionEntropy(ntp, hl) },
		func() { f.NTPxCAIDA = intersectionEntropy(ntp, caida) },
	)
	return f
}

// ASEntropy is one AS's entropy curve with its address count (Figure 4).
type ASEntropy struct {
	ASN   asdb.ASN
	Name  string
	Count int
	Dist  *stats.Distribution
}

// TopASEntropy groups a dataset by origin AS and returns the entropy
// distributions of the topN most-observed ASes, descending by address
// count (Figures 4a and 4b).
func TopASEntropy(d *hitlist.Dataset, db *asdb.DB, topN int) []ASEntropy {
	return TopASEntropySidecar(BuildSidecar(d, db, 1), db, topN, 1)
}

// TopASEntropySidecar is TopASEntropy over a prebuilt sidecar: the AS
// grouping is shared (ByAS) and the per-AS distributions reuse the
// entropy column, built in parallel across ASes.
func TopASEntropySidecar(sc *Sidecar, db *asdb.DB, topN int, workers int) []ASEntropy {
	byAS := sc.ByAS(workers)
	out := make([]ASEntropy, 0, len(byAS))
	//lint:ordered every append is washed by the (Count, ASN) total-order sort below
	for asn, idxs := range byAS {
		e := ASEntropy{ASN: asn, Count: len(idxs)}
		if as := db.Get(asn); as != nil {
			e.Name = as.Name
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].ASN < out[j].ASN
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	// A handful of heavy items, not many cheap ones: dispatch one task
	// per AS (fold.Ranges' element grain would lump them onto one
	// worker).
	tasks := make([]func(), len(out))
	for i := range out {
		i := i
		tasks[i] = func() {
			idxs := byAS[out[i].ASN]
			samples := make([]float64, len(idxs))
			for j, ix := range idxs {
				samples[j] = sc.Entropy[ix]
			}
			out[i].Dist = stats.TakeDistribution(samples)
		}
	}
	fold.Each(workers, tasks...)
	return out
}

// ASTypeShare tallies the fraction of a dataset's addresses per ASdb
// type (§4.1's "Phone Provider" comparison).
func ASTypeShare(d *hitlist.Dataset, db *asdb.DB) map[asdb.ASType]float64 {
	return ASTypeShareSidecar(BuildSidecar(d, db, 1), 1)
}

// asTypeCounts is the ASTypeShare fold accumulator.
type asTypeCounts struct {
	counts [asdb.NumASTypes]int
	total  int
}

// ASTypeShareSidecar is ASTypeShare as a parallel fold over the sidecar's
// type column.
func ASTypeShareSidecar(sc *Sidecar, workers int) map[asdb.ASType]float64 {
	acc := fold.Map(sc.Len(), workers,
		func(lo, hi int) asTypeCounts {
			var p asTypeCounts
			for i := lo; i < hi; i++ {
				if sc.HasAS[i] {
					p.counts[sc.ASType[i]]++
					p.total++
				}
			}
			return p
		},
		func(dst, src asTypeCounts) asTypeCounts {
			for i := range dst.counts {
				dst.counts[i] += src.counts[i]
			}
			dst.total += src.total
			return dst
		})
	out := make(map[asdb.ASType]float64)
	if acc.total == 0 {
		return out
	}
	for ty, n := range acc.counts {
		if n > 0 {
			out[asdb.ASType(ty)] = float64(n) / float64(acc.total)
		}
	}
	return out
}
