package analysis

import (
	"math/rand"
	"strings"
	"testing"

	"hitlist6/internal/addr"
	"hitlist6/internal/hitlist"
)

func TestDetectBimodal(t *testing.T) {
	// Clearly bimodal: half around 0.5, half around 0.85.
	var vals []float64
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			vals = append(vals, 0.50+0.03*rng.Float64())
		} else {
			vals = append(vals, 0.85+0.03*rng.Float64())
		}
	}
	ok, lo, hi := detectBimodal(vals)
	if !ok {
		t.Fatal("bimodal distribution not detected")
	}
	if lo < 0.45 || lo > 0.58 || hi < 0.82 || hi > 0.92 {
		t.Errorf("modes: %.3f / %.3f", lo, hi)
	}

	// Unimodal: one tight cluster.
	vals = vals[:0]
	for i := 0; i < 200; i++ {
		vals = append(vals, 0.85+0.02*rng.Float64())
	}
	if ok, _, _ := detectBimodal(vals); ok {
		t.Error("unimodal distribution flagged bimodal")
	}

	// Too few samples.
	if ok, _, _ := detectBimodal([]float64{0.1, 0.9}); ok {
		t.Error("tiny sample flagged bimodal")
	}

	// Imbalanced: 95/5 split is not bimodal by our share rule.
	vals = vals[:0]
	for i := 0; i < 190; i++ {
		vals = append(vals, 0.85)
	}
	for i := 0; i < 10; i++ {
		vals = append(vals, 0.3)
	}
	if ok, _, _ := detectBimodal(vals); ok {
		t.Error("imbalanced split flagged bimodal")
	}
}

func TestInferStrategiesJioSignature(t *testing.T) {
	db := testDB(t)
	d := hitlist.NewDataset("jio-like")
	rng := rand.New(rand.NewSource(2))
	// AS100: 60% full random, 40% low-4 random — the Jio signature.
	for i := 0; i < 300; i++ {
		var iid uint64
		if i%5 < 3 {
			iid = rng.Uint64()
		} else {
			iid = rng.Uint64() & 0xffffffff
			if iid < 0x10000000 {
				iid |= 0x10000000 // keep it out of the low-byte bucket
			}
		}
		d.Add(addr.FromParts(0x2400_0100_0000_0000|uint64(i), iid))
	}
	// AS200: operator low-byte only.
	for i := 0; i < 50; i++ {
		d.Add(addr.FromParts(0x2400_0200_0000_0000|uint64(i), uint64(1+i%5)))
	}

	profiles := InferStrategies(d, db, 0)
	if len(profiles) != 2 {
		t.Fatalf("profiles: %d", len(profiles))
	}
	jio := profiles[0]
	if jio.ASN != 100 {
		t.Fatalf("top AS: %d", jio.ASN)
	}
	if jio.FullRandShare < 0.4 || jio.FullRandShare > 0.8 {
		t.Errorf("full-rand share: %.2f", jio.FullRandShare)
	}
	if jio.Low4RandShare < 0.25 || jio.Low4RandShare > 0.55 {
		t.Errorf("low4-rand share: %.2f", jio.Low4RandShare)
	}
	if !jio.Bimodal {
		t.Error("Jio-style AS not flagged bimodal")
	}
	ops := profiles[1]
	if ops.LowByteShare < 0.9 {
		t.Errorf("operator AS low-byte share: %.2f", ops.LowByteShare)
	}
	if ops.Bimodal {
		t.Error("operator AS flagged bimodal")
	}
}

func TestInferStrategiesEUI64(t *testing.T) {
	db := testDB(t)
	d := hitlist.NewDataset("eui")
	for i := 0; i < 30; i++ {
		m := addr.MAC{0xc8, 0x0e, 0x14, byte(i), 1, 2}
		d.Add(addr.EUI64Addr(addr.FromParts(0x2400_0300_0000_0000, 0).P64(), m))
	}
	profiles := InferStrategies(d, db, 1)
	if len(profiles) != 1 {
		t.Fatalf("profiles: %d", len(profiles))
	}
	if profiles[0].EUI64Share < 0.99 {
		t.Errorf("EUI-64 share: %.2f", profiles[0].EUI64Share)
	}
}

func TestRenderStrategies(t *testing.T) {
	out := RenderStrategies([]StrategyProfile{{
		ASN: 55836, Name: "Reliance Jio", Count: 1000,
		FullRandShare: 0.6, Low4RandShare: 0.33,
		Bimodal: true, ModeLow: 0.5, ModeHigh: 0.86,
	}})
	for _, want := range []string{"Reliance Jio", "Section 4.3", "yes (0.50 / 0.86)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
