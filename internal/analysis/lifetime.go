package analysis

import (
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/collector"
	"hitlist6/internal/stats"
)

// LifetimeMarks are the x-axis tick durations the paper's Figure 2 uses.
var LifetimeMarks = []time.Duration{
	time.Second, time.Minute, time.Hour,
	24 * time.Hour, 7 * 24 * time.Hour, 30 * 24 * time.Hour, 180 * 24 * time.Hour,
}

// AddressLifetimes builds the distribution of observed address lifetimes
// in seconds (Figure 2a's CCDF input).
func AddressLifetimes(c *collector.Collector) *stats.Distribution {
	samples := make([]float64, 0, c.NumAddrs())
	c.Addrs(func(_ addr.Addr, r collector.AddrRecord) bool {
		samples = append(samples, r.Lifetime().Seconds())
		return true
	})
	return stats.NewDistribution(samples)
}

// Figure2a is the CCDF of address lifetimes evaluated at the paper's
// marks, plus the headline fractions the paper quotes in §4.1.
type Figure2a struct {
	CCDF []stats.CDFPoint
	// ObservedOnce is the fraction of addresses with zero lifetime
	// (paper: "more than 60% of them are observed only once").
	ObservedOnce float64
	// WeekOrLonger, MonthOrLonger, SixMonthsOrLonger are the long-tail
	// fractions (paper: 1.2%, 0.4%, 0.03%).
	WeekOrLonger, MonthOrLonger, SixMonthsOrLonger float64
}

// ComputeFigure2a evaluates Figure 2a from the collector.
func ComputeFigure2a(c *collector.Collector) *Figure2a {
	dist := AddressLifetimes(c)
	marks := make([]float64, len(LifetimeMarks))
	for i, m := range LifetimeMarks {
		marks[i] = m.Seconds()
	}
	f := &Figure2a{CCDF: dist.CCDFAt(marks)}
	n := float64(dist.N())
	if n == 0 {
		return f
	}
	f.ObservedOnce = dist.CDF(0)
	f.WeekOrLonger = dist.CCDF((7*24*time.Hour - time.Second).Seconds())
	f.MonthOrLonger = dist.CCDF((30*24*time.Hour - time.Second).Seconds())
	f.SixMonthsOrLonger = dist.CCDF((180 * 24 * time.Hour).Seconds())
	return f
}

// Figure2b is the CDF of IID lifetimes split by entropy class.
type Figure2b struct {
	// ByClass maps each entropy class to its lifetime distribution.
	ByClass map[addr.EntropyClass]*stats.Distribution
	// ObservedOnce per class (paper: low-entropy IIDs are seen once ~10%
	// more often, yet persist longer).
	ObservedOnce map[addr.EntropyClass]float64
	// WeekOrLonger per class (paper: 10% of low vs <=5% of med/high).
	WeekOrLonger map[addr.EntropyClass]float64
}

// ComputeFigure2b evaluates Figure 2b from the collector.
func ComputeFigure2b(c *collector.Collector) *Figure2b {
	samples := map[addr.EntropyClass][]float64{}
	c.IIDs(func(iid addr.IID, r collector.IIDView) bool {
		cls := iid.EntropyClass()
		samples[cls] = append(samples[cls], r.Lifetime().Seconds())
		return true
	})
	f := &Figure2b{
		ByClass:      make(map[addr.EntropyClass]*stats.Distribution),
		ObservedOnce: make(map[addr.EntropyClass]float64),
		WeekOrLonger: make(map[addr.EntropyClass]float64),
	}
	week := (7*24*time.Hour - time.Second).Seconds()
	for cls, s := range samples {
		d := stats.NewDistribution(s)
		f.ByClass[cls] = d
		f.ObservedOnce[cls] = d.CDF(0)
		f.WeekOrLonger[cls] = d.CCDF(week)
	}
	return f
}
