package analysis

import (
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/collector"
	"hitlist6/internal/fold"
	"hitlist6/internal/stats"
)

// LifetimeMarks are the x-axis tick durations the paper's Figure 2 uses.
var LifetimeMarks = []time.Duration{
	time.Second, time.Minute, time.Hour,
	24 * time.Hour, 7 * 24 * time.Hour, 30 * 24 * time.Hour, 180 * 24 * time.Hour,
}

// appendFloats is the fold merge for sample gathering: concatenation in
// range order reproduces the serial scan's sample sequence exactly.
func appendFloats(dst, src []float64) []float64 { return append(dst, src...) }

// AddrSource is the address-record half of a corpus: everything the
// address-level folds need, satisfied by a live *collector.Collector
// and by a tier-paged *pager.Corpus alike. The folds only require that
// concurrent AddrsRange calls over disjoint ranges are safe and that
// every index in [0, NumAddrs) yields exactly one record — they are
// insensitive to which order the implementation stores records in.
type AddrSource interface {
	NumAddrs() int
	AddrsRange(lo, hi int, fn func(a addr.Addr, r collector.AddrRecord) bool)
}

// AddressLifetimes builds the distribution of observed address lifetimes
// in seconds (Figure 2a's CCDF input) as a parallel fold over the
// corpus's address records.
func AddressLifetimes(c AddrSource, workers int) *stats.Distribution {
	samples := fold.Map(c.NumAddrs(), workers,
		func(lo, hi int) []float64 {
			part := make([]float64, 0, hi-lo)
			c.AddrsRange(lo, hi, func(_ addr.Addr, r collector.AddrRecord) bool {
				part = append(part, r.Lifetime().Seconds())
				return true
			})
			return part
		}, appendFloats)
	return stats.TakeDistribution(samples)
}

// Figure2a is the CCDF of address lifetimes evaluated at the paper's
// marks, plus the headline fractions the paper quotes in §4.1.
type Figure2a struct {
	CCDF []stats.CDFPoint
	// ObservedOnce is the fraction of addresses with zero lifetime
	// (paper: "more than 60% of them are observed only once").
	ObservedOnce float64
	// WeekOrLonger, MonthOrLonger, SixMonthsOrLonger are the long-tail
	// fractions (paper: 1.2%, 0.4%, 0.03%).
	WeekOrLonger, MonthOrLonger, SixMonthsOrLonger float64
}

// ComputeFigure2a evaluates Figure 2a from an address source.
func ComputeFigure2a(c AddrSource) *Figure2a {
	return ComputeFigure2aWorkers(c, 1)
}

// ComputeFigure2aWorkers is ComputeFigure2a on the given worker count.
func ComputeFigure2aWorkers(c AddrSource, workers int) *Figure2a {
	dist := AddressLifetimes(c, workers)
	marks := make([]float64, len(LifetimeMarks))
	for i, m := range LifetimeMarks {
		marks[i] = m.Seconds()
	}
	f := &Figure2a{CCDF: dist.CCDFAt(marks)}
	n := float64(dist.N())
	if n == 0 {
		return f
	}
	f.ObservedOnce = dist.CDF(0)
	f.WeekOrLonger = dist.CCDF((7*24*time.Hour - time.Second).Seconds())
	f.MonthOrLonger = dist.CCDF((30*24*time.Hour - time.Second).Seconds())
	f.SixMonthsOrLonger = dist.CCDF((180 * 24 * time.Hour).Seconds())
	return f
}

// Figure2b is the CDF of IID lifetimes split by entropy class.
type Figure2b struct {
	// ByClass maps each entropy class to its lifetime distribution.
	ByClass map[addr.EntropyClass]*stats.Distribution
	// ObservedOnce per class (paper: low-entropy IIDs are seen once ~10%
	// more often, yet persist longer).
	ObservedOnce map[addr.EntropyClass]float64
	// WeekOrLonger per class (paper: 10% of low vs <=5% of med/high).
	WeekOrLonger map[addr.EntropyClass]float64
}

// numEntropyClasses sizes the per-class fold accumulators (Low/Medium/
// High).
const numEntropyClasses = int(addr.HighEntropy) + 1

// ComputeFigure2b evaluates Figure 2b from the collector.
func ComputeFigure2b(c *collector.Collector) *Figure2b {
	return ComputeFigure2bWorkers(c, 1)
}

// ComputeFigure2bWorkers is ComputeFigure2b as a parallel fold over the
// collector's IID table.
func ComputeFigure2bWorkers(c *collector.Collector, workers int) *Figure2b {
	samples := fold.Map(c.NumIIDSlots(), workers,
		func(lo, hi int) *[numEntropyClasses][]float64 {
			part := &[numEntropyClasses][]float64{}
			c.IIDSlotsRange(lo, hi, func(iid addr.IID, r collector.IIDView) bool {
				cls := iid.EntropyClass()
				part[cls] = append(part[cls], r.Lifetime().Seconds())
				return true
			})
			return part
		},
		func(dst, src *[numEntropyClasses][]float64) *[numEntropyClasses][]float64 {
			if dst == nil {
				return src
			}
			if src != nil {
				for i := range dst {
					dst[i] = append(dst[i], src[i]...)
				}
			}
			return dst
		})
	f := &Figure2b{
		ByClass:      make(map[addr.EntropyClass]*stats.Distribution),
		ObservedOnce: make(map[addr.EntropyClass]float64),
		WeekOrLonger: make(map[addr.EntropyClass]float64),
	}
	if samples == nil {
		return f
	}
	week := (7*24*time.Hour - time.Second).Seconds()
	for cls, s := range samples {
		if len(s) == 0 {
			continue
		}
		d := stats.TakeDistribution(s)
		f.ByClass[addr.EntropyClass(cls)] = d
		f.ObservedOnce[addr.EntropyClass(cls)] = d.CDF(0)
		f.WeekOrLonger[addr.EntropyClass(cls)] = d.CCDF(week)
	}
	return f
}
