package analysis

import (
	"sync"

	"hitlist6/internal/addr"
	"hitlist6/internal/asdb"
	"hitlist6/internal/fold"
	"hitlist6/internal/hitlist"
)

// Sidecar is a dataset's per-address attribute cache: one columnar array
// per attribute, index-aligned with the dataset's canonical sorted slab
// (Dataset.View). Every figure, Table 1 and the strategy inference read
// the same columns, so the asdb trie walk, the nibble-entropy loop and
// the IPv4-embedding decode run exactly once per address per dataset —
// instead of once per analysis — and the columns are filled by one
// parallel pass (disjoint index ranges write disjoint column segments,
// so workers never coordinate).
//
// A built sidecar is immutable and safe for concurrent readers; the
// lazily built per-AS grouping is guarded by a sync.Once so concurrent
// report sections can share it.
type Sidecar struct {
	D *hitlist.Dataset

	// Entropy is the normalized IID nibble entropy.
	Entropy []float64
	// HasAS reports whether the address is routed; ASN and ASType are
	// only meaningful where it is true. These columns (and V4Cand/Cat)
	// are nil on an entropy-only sidecar — one built with a nil AS
	// database.
	HasAS  []bool
	ASN    []asdb.ASN
	ASType []asdb.ASType
	// V4Cand reports whether the IID decodes as an embedded IPv4 address
	// under any of the paper's three encodings; Cat is the Figure 5
	// category with the v4 embedding unconfirmed (Categorize(false)).
	// Confirmed categories are recomputed per accepted AS — see
	// categorizeSidecar.
	V4Cand []bool
	Cat    []addr.Category

	byAS     map[asdb.ASN][]int32
	byASOnce sync.Once
}

// BuildSidecar computes a dataset's attribute columns in one parallel
// pass. A nil db builds the entropy-only sidecar — no AS, v4-candidacy
// or category columns — for consumers like Figure 1 that read nothing
// but the Entropy column; the skipped decodes are most of a full
// build's per-address cost.
func BuildSidecar(d *hitlist.Dataset, db *asdb.DB, workers int) *Sidecar {
	view := d.View()
	n := len(view)
	sc := &Sidecar{
		D:       d,
		Entropy: make([]float64, n),
	}
	if db == nil {
		fold.Ranges(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sc.Entropy[i] = view[i].IID().NormalizedEntropy()
			}
		})
		return sc
	}
	sc.HasAS = make([]bool, n)
	sc.ASN = make([]asdb.ASN, n)
	sc.ASType = make([]asdb.ASType, n)
	sc.V4Cand = make([]bool, n)
	sc.Cat = make([]addr.Category, n)
	fold.Ranges(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a := view[i]
			iid := a.IID()
			sc.Entropy[i] = iid.NormalizedEntropy()
			sc.V4Cand[i] = len(iid.V4AnyCandidate()) > 0
			sc.Cat[i] = iid.Categorize(false)
			if as := db.Lookup(a); as != nil {
				sc.HasAS[i] = true
				sc.ASN[i] = as.ASN
				sc.ASType[i] = as.Type
			}
		}
	})
	return sc
}

// Len returns the number of addresses (and rows in every column).
func (sc *Sidecar) Len() int { return len(sc.Entropy) }

// ByAS groups the dataset's row indices by origin AS (routed rows only),
// each group in ascending index — i.e. canonical address — order. It is
// computed once, in parallel, on first use and shared by Table 1,
// Figures 4a/4b, Figure 5's volume filter and the strategy inference.
func (sc *Sidecar) ByAS(workers int) map[asdb.ASN][]int32 {
	sc.byASOnce.Do(func() {
		if sc.HasAS == nil { // entropy-only sidecar: nothing is routed
			sc.byAS = map[asdb.ASN][]int32{}
			return
		}
		sc.byAS = fold.Map(sc.Len(), workers,
			func(lo, hi int) map[asdb.ASN][]int32 {
				part := make(map[asdb.ASN][]int32)
				for i := lo; i < hi; i++ {
					if sc.HasAS[i] {
						part[sc.ASN[i]] = append(part[sc.ASN[i]], int32(i))
					}
				}
				return part
			},
			func(dst, src map[asdb.ASN][]int32) map[asdb.ASN][]int32 {
				// Ascending range order keeps each group's indices sorted.
				//lint:ordered per-key appends are independent; fold merges partials in ascending range order
				for asn, idxs := range src {
					dst[asn] = append(dst[asn], idxs...)
				}
				return dst
			})
	})
	return sc.byAS
}
