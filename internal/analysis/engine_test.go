package analysis

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"hitlist6/internal/addr"
	"hitlist6/internal/asdb"
	"hitlist6/internal/collector"
	"hitlist6/internal/hitlist"
)

// engineDB builds a small AS database whose prefixes cover the synthetic
// address space the engine tests draw from.
func engineDB(t testing.TB) *asdb.DB {
	t.Helper()
	db := asdb.NewDB()
	types := []asdb.ASType{asdb.TypeISP, asdb.TypePhoneProvider, asdb.TypeHosting, asdb.TypeEducation}
	for i := 0; i < 8; i++ {
		prefix, err := addr.ParsePrefix(fmt.Sprintf("2001:db8:%x00::/40", i))
		if err != nil {
			t.Fatal(err)
		}
		if err := db.AddAS(asdb.AS{
			ASN:      asdb.ASN(100 + i),
			Name:     fmt.Sprintf("AS-%d", i),
			Country:  "DE",
			Type:     types[i%len(types)],
			Prefixes: []addr.Prefix{prefix},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// engineDataset draws a mixed synthetic population: random IIDs, low-byte
// IIDs, EUI-64 IIDs and v4-embedded IIDs spread over the engineDB ASes,
// plus some unrouted addresses.
func engineDataset(t testing.TB, seed int64, n int) *hitlist.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := hitlist.NewDataset("engine")
	for i := 0; i < n; i++ {
		var hi uint64
		if rng.Intn(10) == 0 {
			hi = 0x2400cb00_00000000 | uint64(rng.Intn(64))<<16 // unrouted
		} else {
			// 2001:db8:XY00::/40 per AS X, /48s varying in Y.
			hi = 0x20010db8_00000000 | uint64(rng.Intn(8))<<24 | uint64(rng.Intn(256))<<16
		}
		var lo uint64
		switch rng.Intn(6) {
		case 0:
			lo = uint64(rng.Intn(4) + 1) // low byte
		case 1:
			lo = uint64(rng.Uint32()) // low-4 random
		case 2: // EUI-64
			mac := uint64(rng.Intn(4096))
			lo = (mac&0xffffff)<<40 | 0xfffe<<24 | (mac >> 24 & 0xffffff) | 0x02000000_00000000
		case 3: // v4-embedded-ish (dotted decimal in hextets)
			lo = 0x00000000_c0a80000 | uint64(rng.Intn(256))
		default:
			lo = rng.Uint64() // fully random
		}
		d.Add(addr.FromParts(hi, lo))
	}
	return d
}

// TestSidecarColumnsMatchDirectComputation checks every column against
// the per-address primitives it caches.
func TestSidecarColumnsMatchDirectComputation(t *testing.T) {
	db := engineDB(t)
	d := engineDataset(t, 1, 3000)
	for _, workers := range []int{1, 4, 16} {
		sc := BuildSidecar(d, db, workers)
		view := d.View()
		if sc.Len() != len(view) {
			t.Fatalf("workers=%d: sidecar rows %d != dataset %d", workers, sc.Len(), len(view))
		}
		for i, a := range view {
			iid := a.IID()
			if sc.Entropy[i] != iid.NormalizedEntropy() {
				t.Fatalf("workers=%d row %d: entropy mismatch", workers, i)
			}
			if sc.V4Cand[i] != (len(iid.V4AnyCandidate()) > 0) {
				t.Fatalf("workers=%d row %d: v4cand mismatch", workers, i)
			}
			if sc.Cat[i] != iid.Categorize(false) {
				t.Fatalf("workers=%d row %d: category mismatch", workers, i)
			}
			asn, ok := db.OriginASN(a)
			if sc.HasAS[i] != ok {
				t.Fatalf("workers=%d row %d: HasAS mismatch", workers, i)
			}
			if ok {
				if sc.ASN[i] != asn {
					t.Fatalf("workers=%d row %d: ASN mismatch", workers, i)
				}
				if sc.ASType[i] != db.Lookup(a).Type {
					t.Fatalf("workers=%d row %d: ASType mismatch", workers, i)
				}
			}
		}
	}
}

// TestEngineWorkerEquivalence runs every sidecar analysis at 1/4/16
// workers and requires exactly equal results (reflect.DeepEqual on the
// result structures — including float64 fields, which must not drift).
func TestEngineWorkerEquivalence(t *testing.T) {
	db := engineDB(t)
	ntp := engineDataset(t, 1, 4000)
	hl := engineDataset(t, 2, 2500)
	caida := engineDataset(t, 3, 1000)

	type results struct {
		T1    *Table1
		F1    *Figure1
		F5    *Figure5
		Top   []ASEntropy
		Strat []StrategyProfile
		Share map[asdb.ASType]float64
	}
	run := func(workers int) results {
		scNTP := BuildSidecar(ntp, db, workers)
		scHL := BuildSidecar(hl, db, workers)
		scCAIDA := BuildSidecar(caida, db, workers)
		return results{
			T1:    ComputeTable1Sidecar(scNTP, scHL, scCAIDA, workers),
			F1:    ComputeFigure1Sidecar(scNTP, scHL, scCAIDA, workers),
			F5:    ComputeFigure5Sidecar(scNTP, scHL, workers),
			Top:   TopASEntropySidecar(scNTP, db, 5, workers),
			Strat: InferStrategiesSidecar(scNTP, db, 6, workers),
			Share: ASTypeShareSidecar(scNTP, workers),
		}
	}
	base := run(1)
	for _, workers := range []int{4, 16} {
		got := run(workers)
		if !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d: engine results diverge from serial", workers)
		}
	}

	// The sidecar paths must also agree with the legacy one-shot
	// entry points.
	if !reflect.DeepEqual(base.T1, ComputeTable1(ntp, hl, caida, db)) {
		t.Error("ComputeTable1Sidecar != ComputeTable1")
	}
	if !reflect.DeepEqual(base.F5, ComputeFigure5(ntp, hl, db)) {
		t.Error("ComputeFigure5Sidecar != ComputeFigure5")
	}
	if !reflect.DeepEqual(base.Top, TopASEntropy(ntp, db, 5)) {
		t.Error("TopASEntropySidecar != TopASEntropy")
	}
	if !reflect.DeepEqual(base.Strat, InferStrategies(ntp, db, 6)) {
		t.Error("InferStrategiesSidecar != InferStrategies")
	}
	if !reflect.DeepEqual(base.Share, ASTypeShare(ntp, db)) {
		t.Error("ASTypeShareSidecar != ASTypeShare")
	}
}

// TestFigure2WorkerEquivalence folds the collector-side figures across
// worker counts.
func TestFigure2WorkerEquivalence(t *testing.T) {
	c := collector.New()
	rng := rand.New(rand.NewSource(5))
	base := time.Date(2022, 1, 25, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 30000; i++ {
		hi := 0x20010db8_00000000 | uint64(rng.Intn(512))<<16
		lo := rng.Uint64()
		if i%7 == 0 {
			lo = uint64(rng.Intn(4) + 1)
		}
		ts := base.Add(time.Duration(rng.Intn(200*24*3600)) * time.Second)
		c.Observe(addr.FromParts(hi, lo), ts, rng.Intn(3))
		if i%3 == 0 { // repeat sightings give nonzero lifetimes
			c.Observe(addr.FromParts(hi, lo), ts.Add(time.Duration(rng.Intn(3600*24*40))*time.Second), rng.Intn(3))
		}
	}
	f2aBase := ComputeFigure2aWorkers(c, 1)
	f2bBase := ComputeFigure2bWorkers(c, 1)
	for _, workers := range []int{4, 16} {
		if got := ComputeFigure2aWorkers(c, workers); !reflect.DeepEqual(got, f2aBase) {
			t.Errorf("Figure2a diverges at %d workers", workers)
		}
		if got := ComputeFigure2bWorkers(c, workers); !reflect.DeepEqual(got, f2bBase) {
			t.Errorf("Figure2b diverges at %d workers", workers)
		}
	}
	if f2aBase.ObservedOnce <= 0 || math.IsNaN(f2aBase.ObservedOnce) {
		t.Error("degenerate Figure 2a")
	}
}
