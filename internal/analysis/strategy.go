package analysis

import (
	"fmt"
	"sort"
	"strings"

	"hitlist6/internal/addr"
	"hitlist6/internal/asdb"
	"hitlist6/internal/fold"
	"hitlist6/internal/hitlist"
	"hitlist6/internal/stats"
)

// §4.3's addressing-strategy analysis: the paper inspects per-AS entropy
// curves and infers, e.g., that Reliance Jio runs two address-assignment
// schemes (full 8-byte randomization and low-4-byte randomization). This
// module automates that inference: per AS, it fingerprints the IID
// population and detects multi-modal entropy structure.

// StrategyProfile is one AS's inferred addressing behaviour.
type StrategyProfile struct {
	ASN  asdb.ASN
	Name string
	// Addresses analyzed.
	Count int
	// Shares of structural fingerprints.
	EUI64Share    float64
	LowByteShare  float64
	Low4RandShare float64 // top 4 IID bytes zero, bottom 4 high-entropy
	FullRandShare float64 // all 8 bytes high-entropy
	OtherShare    float64
	// Bimodal is true when the entropy distribution has two well-
	// separated modes (the Jio signature).
	Bimodal bool
	// ModeLow and ModeHigh are the sub-population entropy medians when
	// Bimodal (low/high of the two clusters).
	ModeLow, ModeHigh float64
}

// bimodalGap is the minimum separation between entropy cluster means to
// call a distribution bimodal.
const bimodalGap = 0.18

// InferStrategies profiles the topN most-observed ASes of a dataset.
func InferStrategies(d *hitlist.Dataset, db *asdb.DB, topN int) []StrategyProfile {
	return InferStrategiesSidecar(BuildSidecar(d, db, 1), db, topN, 1)
}

// InferStrategiesSidecar is InferStrategies over a prebuilt sidecar: the
// per-AS grouping is shared (ByAS), the entropy column replaces the
// per-IID recomputation, and the per-AS profiles build in parallel.
func InferStrategiesSidecar(sc *Sidecar, db *asdb.DB, topN int, workers int) []StrategyProfile {
	byAS := sc.ByAS(workers)
	profiles := make([]StrategyProfile, 0, len(byAS))
	for asn, idxs := range byAS {
		profiles = append(profiles, StrategyProfile{ASN: asn, Count: len(idxs)})
	}
	sort.Slice(profiles, func(i, j int) bool {
		if profiles[i].Count != profiles[j].Count {
			return profiles[i].Count > profiles[j].Count
		}
		return profiles[i].ASN < profiles[j].ASN
	})
	if topN > 0 && len(profiles) > topN {
		profiles = profiles[:topN]
	}
	view := sc.D.View()
	// One task per AS: few heavy profiles, so per-item dispatch rather
	// than grained ranges.
	tasks := make([]func(), len(profiles))
	for i := range profiles {
		p := &profiles[i]
		tasks[i] = func() {
			profileAS(p, byAS[p.ASN], view, sc.Entropy)
			if as := db.Get(p.ASN); as != nil {
				p.Name = as.Name
			}
		}
	}
	fold.Each(workers, tasks...)
	return profiles
}

// profileAS fingerprints one AS's IID population. idxs are the AS's rows
// in the dataset slab (canonical order); entropy is the sidecar column.
func profileAS(p *StrategyProfile, idxs []int32, view []addr.Addr, entropy []float64) {
	if len(idxs) == 0 {
		return
	}
	entropies := make([]float64, 0, len(idxs))
	for _, ix := range idxs {
		iid := view[ix].IID()
		e := entropy[ix]
		entropies = append(entropies, e)
		v := uint64(iid)
		switch {
		case iid.IsEUI64():
			p.EUI64Share++
		case v&^0xffff == 0:
			p.LowByteShare++ // low byte or low-2-bytes
		case v>>32 == 0 && addr.IID(v).EntropyClass() != addr.LowEntropy:
			p.Low4RandShare++
		case e > 0.75:
			p.FullRandShare++
		default:
			p.OtherShare++
		}
	}
	n := float64(len(idxs))
	p.EUI64Share /= n
	p.LowByteShare /= n
	p.Low4RandShare /= n
	p.FullRandShare /= n
	p.OtherShare /= n
	p.Bimodal, p.ModeLow, p.ModeHigh = detectBimodal(entropies)
}

// detectBimodal runs a tiny 1-D 2-means clustering on the entropy values
// and reports whether two well-populated, well-separated clusters exist.
func detectBimodal(values []float64) (bool, float64, float64) {
	if len(values) < 20 {
		return false, 0, 0
	}
	d := stats.NewDistribution(values)
	// Initialize means at the 20th/80th percentiles.
	lo, hi := d.Quantile(0.2), d.Quantile(0.8)
	if hi-lo < 1e-9 {
		return false, 0, 0
	}
	var nLo, nHi int
	for iter := 0; iter < 16; iter++ {
		var sumLo, sumHi float64
		nLo, nHi = 0, 0
		mid := (lo + hi) / 2
		for _, v := range values {
			if v < mid {
				sumLo += v
				nLo++
			} else {
				sumHi += v
				nHi++
			}
		}
		if nLo == 0 || nHi == 0 {
			return false, 0, 0
		}
		newLo, newHi := sumLo/float64(nLo), sumHi/float64(nHi)
		if newLo == lo && newHi == hi {
			break
		}
		lo, hi = newLo, newHi
	}
	// Both clusters must hold a meaningful share and sit apart.
	minShare := 0.15
	total := float64(len(values))
	if float64(nLo)/total < minShare || float64(nHi)/total < minShare {
		return false, 0, 0
	}
	if hi-lo < bimodalGap {
		return false, 0, 0
	}
	return true, lo, hi
}

// RenderStrategies formats the §4.3 analysis.
func RenderStrategies(profiles []StrategyProfile) string {
	var b strings.Builder
	tb := stats.NewTable(
		"Section 4.3: per-AS addressing strategies (paper: Jio runs full- and low-4-byte randomization side by side)",
		"AS", "Addrs", "FullRand", "Low4Rand", "EUI-64", "LowByte", "Bimodal")
	for _, p := range profiles {
		bimodal := "-"
		if p.Bimodal {
			bimodal = fmt.Sprintf("yes (%.2f / %.2f)", p.ModeLow, p.ModeHigh)
		}
		tb.AddRow(fmt.Sprintf("AS%d %s", p.ASN, p.Name),
			stats.Comma(int64(p.Count)),
			stats.Pct(p.FullRandShare, 1),
			stats.Pct(p.Low4RandShare, 1),
			stats.Pct(p.EUI64Share, 1),
			stats.Pct(p.LowByteShare, 1),
			bimodal)
	}
	b.WriteString(tb.String())
	return b.String()
}
