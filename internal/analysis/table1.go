package analysis

import (
	"fmt"

	"hitlist6/internal/asdb"
	"hitlist6/internal/hitlist"
	"hitlist6/internal/stats"
)

// Table1 holds the three dataset rows of the paper's Table 1, with the
// NTP corpus as the reference for the "Common" columns.
type Table1 struct {
	NTP, Hitlist, CAIDA hitlist.Stats
}

// ComputeTable1 derives the dataset-comparison table.
func ComputeTable1(ntp, hl, caida *hitlist.Dataset, db *asdb.DB) *Table1 {
	return &Table1{
		NTP:     hitlist.ComputeStats(ntp, db, nil),
		Hitlist: hitlist.ComputeStats(hl, db, ntp),
		CAIDA:   hitlist.ComputeStats(caida, db, ntp),
	}
}

// Render prints the table in the paper's layout.
func (t *Table1) Render() string {
	tb := stats.NewTable("Table 1: Comparison of IPv6 datasets",
		"Dataset", "IPv6 Addresses", "Common", "ASNs", "Common", "/48s", "Common", "Avg/48")
	row := func(s hitlist.Stats, isRef bool) {
		common := func(v int) string {
			if isRef {
				return "-"
			}
			return stats.Comma(int64(v))
		}
		tb.AddRow(s.Name,
			stats.Comma(int64(s.Addrs)), common(s.CommonAddrs),
			stats.Comma(int64(s.ASNs)), common(s.CommonASNs),
			stats.Comma(int64(s.P48s)), common(s.CommonP48s),
			fmt.Sprintf("%.1f", s.AvgPer48))
	}
	row(t.NTP, true)
	row(t.Hitlist, false)
	row(t.CAIDA, false)
	return tb.String()
}
