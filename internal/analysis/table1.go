package analysis

import (
	"fmt"

	"hitlist6/internal/asdb"
	"hitlist6/internal/fold"
	"hitlist6/internal/hitlist"
	"hitlist6/internal/stats"
)

// Table1 holds the three dataset rows of the paper's Table 1, with the
// NTP corpus as the reference for the "Common" columns.
type Table1 struct {
	NTP, Hitlist, CAIDA hitlist.Stats
}

// ComputeTable1 derives the dataset-comparison table.
func ComputeTable1(ntp, hl, caida *hitlist.Dataset, db *asdb.DB) *Table1 {
	return ComputeTable1Sidecar(
		BuildSidecar(ntp, db, 1),
		BuildSidecar(hl, db, 1),
		BuildSidecar(caida, db, 1), 1)
}

// ComputeTable1Sidecar derives Table 1 from prebuilt sidecars: the AS
// column replaces the per-address trie walks, the /48 columns fall out
// of linear passes over the sorted slabs, and the address intersections
// are sorted merges. The three rows compute in parallel.
func ComputeTable1Sidecar(ntp, hl, caida *Sidecar, workers int) *Table1 {
	t := &Table1{}
	fold.Each(workers,
		func() { t.NTP = sidecarStats(ntp, nil, workers) },
		func() { t.Hitlist = sidecarStats(hl, ntp, workers) },
		func() { t.CAIDA = sidecarStats(caida, ntp, workers) },
	)
	return t
}

// sidecarStats computes one dataset's Table 1 row. reference may be nil.
func sidecarStats(sc, reference *Sidecar, workers int) hitlist.Stats {
	st := hitlist.Stats{Name: sc.D.Name, Addrs: sc.Len(), P48s: sc.D.CountP48s()}
	asns := sc.ByAS(workers)
	st.ASNs = len(asns)
	if st.P48s > 0 {
		st.AvgPer48 = float64(st.Addrs) / float64(st.P48s)
	}
	if reference != nil {
		st.CommonAddrs = hitlist.IntersectionSize(sc.D, reference.D)
		st.CommonP48s = hitlist.CommonP48s(sc.D, reference.D)
		//lint:ordered counting set-intersection size is commutative; no order reaches the output
		for asn := range reference.ByAS(workers) {
			if _, ok := asns[asn]; ok {
				st.CommonASNs++
			}
		}
	}
	return st
}

// Render prints the table in the paper's layout.
func (t *Table1) Render() string {
	tb := stats.NewTable("Table 1: Comparison of IPv6 datasets",
		"Dataset", "IPv6 Addresses", "Common", "ASNs", "Common", "/48s", "Common", "Avg/48")
	row := func(s hitlist.Stats, isRef bool) {
		common := func(v int) string {
			if isRef {
				return "-"
			}
			return stats.Comma(int64(v))
		}
		tb.AddRow(s.Name,
			stats.Comma(int64(s.Addrs)), common(s.CommonAddrs),
			stats.Comma(int64(s.ASNs)), common(s.CommonASNs),
			stats.Comma(int64(s.P48s)), common(s.CommonP48s),
			fmt.Sprintf("%.1f", s.AvgPer48))
	}
	row(t.NTP, true)
	row(t.Hitlist, false)
	row(t.CAIDA, false)
	return tb.String()
}
